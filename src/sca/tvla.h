// Fixed-vs-random TVLA (Test Vector Leakage Assessment) over the
// simulated power rig.
//
// Classic non-specific Welch's t-test: collect power traces for a fixed
// operand class and a random operand class, accumulate per-cycle sample
// moments with Welford's algorithm, and compute the per-cycle t
// statistic. |t| > 4.5 at any cycle rejects the "no leakage" null at the
// conventional TVLA confidence.
//
// Numerical contract: traces are accumulated one at a time in the order
// add_* is called. The campaign layer feeds them in task-index order, so
// the resulting doubles — and therefore the t-trace digest — are
// bit-identical for any worker thread count.
//
// The rig's power model is instruction-class-based, not data-based, so
// on this simulator TVLA detects exactly operand-dependent *control
// flow*: the straight-line kernels produce |t| that stays at noise
// level, while the EEA inversion's data-dependent loop structure drives
// |t| far past the threshold (and additionally leaks through trace
// length). That is the designed boundary of the model, and what makes
// the pair of clean/leaky expectations a meaningful self-test of the
// detector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "measure/power_trace.h"

namespace eccm0::sca {

/// Welch's t statistic from two summarised samples (mean, sample
/// variance, count). Returns 0 when either side has n < 2, and +/-inf
/// when the pooled variance is zero but the means differ (a noiseless
/// rig with a genuinely different mean — infinitely significant).
double welch_t(double mean_a, double var_a, std::uint64_t n_a,
               double mean_b, double var_b, std::uint64_t n_b);

/// Streaming per-cycle moment accumulator (Welford). Ragged-aware:
/// traces of different lengths contribute to the cycles they cover, and
/// each cycle keeps its own observation count.
class WelfordTrace {
 public:
  void add(const measure::PowerTrace& trace);

  std::size_t max_len() const { return cells_.size(); }
  std::uint64_t traces() const { return traces_; }
  std::uint64_t count(std::size_t cycle) const;
  double mean(std::size_t cycle) const;
  /// Unbiased sample variance (0 when fewer than 2 observations).
  double variance(std::size_t cycle) const;

 private:
  struct Cell {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
  };
  std::vector<Cell> cells_;
  std::uint64_t traces_ = 0;
};

struct TvlaSummary {
  double threshold = 4.5;
  std::uint64_t fixed_traces = 0;
  std::uint64_t random_traces = 0;
  std::size_t compared_cycles = 0;  ///< cycles where both classes have n >= 2
  double max_abs_t = 0.0;
  std::size_t max_cycle = 0;        ///< cycle index of max_abs_t
  /// Cycles where |t| > threshold on the full sample — includes the
  /// small-sample false positives a long trace accumulates.
  std::size_t cycles_over_raw = 0;
  /// Cycles CONFIRMED by the duplicated test: |t| > threshold with the
  /// same sign in both independent halves of the data. A noise artifact
  /// has to recur, same place same direction, in disjoint trace sets.
  std::size_t cycles_over = 0;
  bool length_leak = false;  ///< the two classes differ in trace length
  bool leaky = false;        ///< cycles_over > 0 || length_leak
};

/// Leakage verdicts follow the duplicated-test practice (Goodwill et
/// al.): traces are routed alternately into two independent halves, and
/// only a cycle whose |t| exceeds the threshold in BOTH halves, with the
/// same sign, counts as a confirmed leak. The plain full-sample t-trace
/// stays available for export and inspection; its lone excursions over a
/// few thousand cycles are exactly the false positives the duplicated
/// criterion exists to reject.
class Tvla {
 public:
  explicit Tvla(double threshold = 4.5) : threshold_(threshold) {}

  void add_fixed(const measure::PowerTrace& t) {
    fixed_.add(t);
    half_fixed_[n_fixed_++ % 2].add(t);
  }
  void add_random(const measure::PowerTrace& t) {
    random_.add(t);
    half_random_[n_random_++ % 2].add(t);
  }

  const WelfordTrace& fixed() const { return fixed_; }
  const WelfordTrace& random() const { return random_; }

  /// Per-cycle Welch t on the full sample, over the cycles both classes
  /// observed at least twice (trailing cycles covered by one class only
  /// are a length leak, reported in summary(), not a t value).
  std::vector<double> t_trace() const;

  TvlaSummary summary() const;

 private:
  static std::vector<double> t_of(const WelfordTrace& fixed,
                                  const WelfordTrace& random);

  double threshold_;
  std::uint64_t n_fixed_ = 0;
  std::uint64_t n_random_ = 0;
  WelfordTrace fixed_;
  WelfordTrace random_;
  WelfordTrace half_fixed_[2];
  WelfordTrace half_random_[2];
};

}  // namespace eccm0::sca
