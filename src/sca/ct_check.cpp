#include "sca/ct_check.h"

#include <limits>
#include <stdexcept>

#include "common/rng.h"
#include "ec/curve.h"
#include "ec/scalarmul.h"
#include "gf2/k233.h"
#include "gf2/traced.h"
#include "ecp/curve.h"
#include "mpint/uint.h"
#include "telemetry/metrics.h"
#include "telemetry/progress.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"
#include "workloads/spec.h"

namespace eccm0::sca {
namespace {

using gf2::k233::Fe;
using gf2::k233::Prod;

Fe random_fe(Rng& rng) {
  Fe a;
  for (auto& w : a) w = static_cast<std::uint32_t>(rng.next_u64());
  a.back() &= gf2::k233::kTopMask;
  return a;
}

Fe random_nonzero_fe(Rng& rng) {
  Fe a = random_fe(rng);
  a[0] |= 1;
  return a;
}

}  // namespace

void load_kernel_operands(const std::string& kernel, armvm::Memory& mem,
                          Rng& rng) {
  // Prime-field kernel family: curve-tagged registry entries. Operands
  // are fresh uniform residues below p each call (in-domain for mont/
  // sqr, plain nonzero for inv, < p*R for redc), so trace comparison
  // exercises data-dependent paths the same way the gf2 recipes do.
  if (workloads::KernelRegistry::instance().contains(kernel) &&
      !workloads::KernelRegistry::instance().info(kernel).binary_field) {
    const workloads::CurveRef& curve = workloads::curve_from_name(
        workloads::KernelRegistry::instance().info(kernel).curve);
    const ecp::PrimeCurve& pc = workloads::prime_curve(curve);
    const std::size_t n = curve.limbs;
    const auto words = [n](const mpint::UInt& v) {
      std::vector<std::uint32_t> w(n, 0);
      const auto limbs = v.limbs();
      for (std::size_t i = 0; i < limbs.size() && i < n; ++i) w[i] = limbs[i];
      return w;
    };
    workloads::load_prime_modulus(mem, curve);
    if (kernel.ends_with("-mul") || kernel.ends_with("-mont") ||
        kernel.ends_with("-sqr")) {
      workloads::load_prime_mul_inputs(
          mem, words(mpint::UInt::random_below(rng, pc.p)),
          words(mpint::UInt::random_below(rng, pc.p)));
    } else if (kernel.ends_with("-redc")) {
      std::vector<std::uint32_t> wide(2 * n, 0);
      const mpint::UInt t =
          mpint::UInt::random_below(rng, pc.p << (32 * n));
      const auto limbs = t.limbs();
      for (std::size_t i = 0; i < limbs.size() && i < wide.size(); ++i) {
        wide[i] = limbs[i];
      }
      workloads::load_prime_wide_input(mem, wide);
    } else if (kernel.ends_with("-inv")) {
      mpint::UInt a = mpint::UInt::random_below(rng, pc.p);
      if (a.is_zero()) a = 1;
      workloads::load_prime_inv_input(mem, words(a));
    } else {
      throw std::invalid_argument(
          "load_kernel_operands: no operand recipe for prime kernel '" +
          kernel + "'");
    }
    return;
  }
  if (kernel == "mul" || kernel == "mul-raw" || kernel == "mul-plain" ||
      kernel == "mul-plain-raw") {
    const Fe x = random_fe(rng);
    const Fe y = random_fe(rng);
    std::uint32_t xs[8], ys[8];
    for (int i = 0; i < 8; ++i) {
      xs[i] = x[i];
      ys[i] = y[i];
    }
    workloads::load_mul_inputs(mem, xs, ys);
  } else if (kernel == "sqr") {
    workloads::load_sqr_table(mem);
    const Fe a = random_fe(rng);
    std::uint32_t as[8];
    for (int i = 0; i < 8; ++i) as[i] = a[i];
    workloads::load_sqr_input(mem, as);
  } else if (kernel == "reduce") {
    Prod wide;
    gf2::k233::mul_ld(wide, random_fe(rng), random_fe(rng));
    std::uint32_t ws[16];
    for (int i = 0; i < 16; ++i) ws[i] = wide[i];
    workloads::load_reduce_input(mem, ws);
  } else if (kernel == "lut") {
    const Fe y = random_fe(rng);
    std::uint32_t zero[8] = {}, ys[8];
    for (int i = 0; i < 8; ++i) ys[i] = y[i];
    workloads::load_mul_inputs(mem, zero, ys);
  } else if (kernel == "inv") {
    const Fe a = random_nonzero_fe(rng);
    std::uint32_t as[8];
    for (int i = 0; i < 8; ++i) as[i] = a[i];
    workloads::load_inv_input(mem, as);
  } else {
    throw std::invalid_argument(
        "load_kernel_operands: no operand recipe for kernel '" + kernel +
        "'");
  }
}

CtReport check_kernel_constant_trace(const CtConfig& cfg) {
  if (cfg.runs < 2) {
    throw std::invalid_argument(
        "check_kernel_constant_trace: need at least 2 runs to compare");
  }
  const armvm::ProgramRef prog = workloads::kernel(cfg.kernel);
  const Rng base(cfg.seed);

  CtReport rep;
  rep.target = cfg.kernel;
  rep.runs = cfg.runs;
  rep.constant = true;
  rep.constant_addresses = true;
  rep.min_cycles = std::numeric_limits<std::uint64_t>::max();

  TraceDigest ref;
  TraceDigest cur;
  telemetry::Histogram run_cycles;
  for (unsigned run = 0; run < cfg.runs; ++run) {
    Rng op_rng = base.split(run);
    armvm::Memory mem(workloads::kKernelRamSize);
    load_kernel_operands(cfg.kernel, mem, op_rng);
    armvm::Cpu cpu(prog, mem, cfg.engine);
    TraceDigest& d = run == 0 ? ref : cur;
    d.clear();
    cpu.set_trace_sink(&d);
    cpu.call(prog->entry("entry"), {});
    run_cycles.record(d.cycles());
    if (cfg.progress != nullptr) cfg.progress->tick();
    if (d.cycles() < rep.min_cycles) rep.min_cycles = d.cycles();
    if (d.cycles() > rep.max_cycles) rep.max_cycles = d.cycles();
    if (run > 0 && rep.constant_addresses) {
      const Divergence strict = first_divergence(ref, cur, *prog, true);
      if (strict.diverged) {
        rep.constant_addresses = false;
        rep.first = strict;
      }
    }
    if (run > 0 && rep.constant &&
        first_divergence(ref, cur, *prog, false).diverged) {
      rep.constant = false;
    }
  }
  rep.trace_len = ref.instructions();
  rep.ref_cycles = ref.cycles();
  rep.digest = ref.digest(/*with_addresses=*/false);
  if (cfg.metrics != nullptr) {
    cfg.metrics->counter("ct.runs").add(cfg.runs);
    cfg.metrics->counter("ct.divergent").add(rep.constant ? 0 : 1);
    cfg.metrics->merge_histogram("ct.run_cycles", telemetry::Unit::kCycles,
                                 run_cycles);
  }
  return rep;
}

LadderReport check_ladder_op_mix(unsigned scalars, std::uint64_t seed) {
  const auto& curve = ec::BinaryCurve::sect233k1();
  ec::CurveOps ops(curve);
  const ec::AffinePoint g = ec::AffinePoint::make(curve.gx, curve.gy);
  const Rng base(seed);

  LadderReport rep;
  rep.scalars = scalars;
  rep.uniform = true;
  bool have_ref = false;
  for (unsigned s = 0; s < scalars; ++s) {
    Rng krng = base.split(s);
    const mpint::UInt k = mpint::UInt::random_below(krng, curve.order);
    std::vector<ec::FieldOpCounts> steps;
    ec::mul_ladder(ops, g, k, &steps);
    for (const ec::FieldOpCounts& st : steps) {
      if (!have_ref) {
        rep.step_mix = st;
        have_ref = true;
      } else if (!(st == rep.step_mix)) {
        rep.uniform = false;
      }
      ++rep.steps;
    }
  }
  return rep;
}

WtnafReport check_wtnaf_op_mix(unsigned scalars, std::uint64_t seed,
                               unsigned w) {
  const auto& curve = ec::BinaryCurve::sect233k1();
  ec::CurveOps ops(curve);
  const ec::AffinePoint g = ec::AffinePoint::make(curve.gx, curve.gy);
  const Rng base(seed);

  WtnafReport rep;
  rep.scalars = scalars;
  rep.w = w;
  rep.min_total = std::numeric_limits<std::uint64_t>::max();
  for (unsigned s = 0; s < scalars; ++s) {
    Rng krng = base.split(s);
    const mpint::UInt k = mpint::UInt::random_below(krng, curve.order);
    ops.reset_counts();
    ec::mul_wtnaf(ops, g, k, w);
    const ec::FieldOpCounts c = ops.counts();
    const std::uint64_t total = c.mul + c.sqr + c.inv + c.add;
    if (total < rep.min_total) rep.min_total = total;
    if (total > rep.max_total) rep.max_total = total;
  }
  rep.uniform = rep.min_total == rep.max_total;
  return rep;
}

TracedMixReport check_traced_op_mix(unsigned samples, std::uint64_t seed,
                                    double tolerance) {
  const Rng base(seed);

  TracedMixReport rep;
  rep.samples = samples;
  rep.tolerance = tolerance;
  rep.mul_min = rep.sqr_min = rep.inv_min =
      std::numeric_limits<std::uint64_t>::max();
  for (unsigned s = 0; s < samples; ++s) {
    Rng rng = base.split(s);
    const Fe a = random_nonzero_fe(rng);
    const Fe b = random_fe(rng);

    costmodel::OpRecorder mul_rec;
    gf2::traced::mul_traced(a, b, mul_rec);
    const std::uint64_t m = mul_rec.counts().total();
    if (m < rep.mul_min) rep.mul_min = m;
    if (m > rep.mul_max) rep.mul_max = m;

    costmodel::OpRecorder sqr_rec;
    Fe sq;
    gf2::traced::sqr_traced(sq, a, sqr_rec);
    const std::uint64_t q = sqr_rec.counts().total();
    if (q < rep.sqr_min) rep.sqr_min = q;
    if (q > rep.sqr_max) rep.sqr_max = q;

    costmodel::OpRecorder inv_rec;
    gf2::traced::inv_traced(a, inv_rec);
    const std::uint64_t v = inv_rec.counts().total();
    if (v < rep.inv_min) rep.inv_min = v;
    if (v > rep.inv_max) rep.inv_max = v;
  }
  const auto spread = [](std::uint64_t lo, std::uint64_t hi) {
    return lo == 0 ? 0.0
                   : static_cast<double>(hi - lo) / static_cast<double>(lo);
  };
  rep.mul_spread = spread(rep.mul_min, rep.mul_max);
  rep.inv_spread = spread(rep.inv_min, rep.inv_max);
  rep.mul_within_tolerance = rep.mul_spread <= tolerance;
  rep.sqr_uniform = rep.sqr_min == rep.sqr_max;
  rep.inv_flagged = rep.inv_spread > tolerance;
  return rep;
}

}  // namespace eccm0::sca
