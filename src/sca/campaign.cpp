#include "sca/campaign.h"

#include <bit>

#include "common/rng.h"
#include "sca/ct_check.h"
#include "sca/digest.h"
#include "sim/batch.h"
#include "telemetry/metrics.h"
#include "telemetry/progress.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"

namespace eccm0::sca {

TvlaCampaignResult run_tvla_campaign(const TvlaCampaignConfig& cfg) {
  const armvm::ProgramRef prog = workloads::kernel(cfg.kernel);
  const Rng base(cfg.seed);
  // The fixed class replays one operand draw from a stream no task id
  // reaches (task ids are dense from 0), so it is stable under
  // traces_per_class changes.
  const Rng fixed_stream = base.split(0xF17'ED00ull);

  const std::uint64_t n_tasks = 2ull * cfg.traces_per_class;
  sim::BatchExecutor exec(cfg.threads);
  exec.set_metrics(cfg.metrics);
  std::vector<measure::PowerTrace> traces =
      exec.map<measure::PowerTrace>(n_tasks, [&](std::uint64_t i) {
        Rng task_rng = base.split(i);
        measure::RigConfig rig = cfg.rig;
        rig.seed = task_rng.next_u64();  // fresh noise for every trace
        measure::PowerRig pow(rig);

        armvm::Memory mem(workloads::kKernelRamSize);
        if ((i & 1) == 0) {
          Rng op_rng = fixed_stream;  // same draw for every fixed task
          load_kernel_operands(cfg.kernel, mem, op_rng);
        } else {
          load_kernel_operands(cfg.kernel, mem, task_rng);
        }
        armvm::Cpu cpu(prog, mem, cfg.engine);
        cpu.set_trace_sink(&pow);
        cpu.call(prog->entry("entry"), {});
        if (cfg.progress != nullptr) cfg.progress->tick();
        return pow.trace();
      });

  // Serial, index-ordered accumulation: the doubles come out the same
  // for any thread count.
  Tvla tvla(cfg.threshold);
  telemetry::Histogram trace_cycles;
  for (std::uint64_t i = 0; i < n_tasks; ++i) {
    const measure::PowerTrace& t = traces[static_cast<std::size_t>(i)];
    trace_cycles.record(t.size());  // one rig sample per simulated cycle
    if ((i & 1) == 0) {
      tvla.add_fixed(t);
    } else {
      tvla.add_random(t);
    }
  }
  if (cfg.metrics != nullptr) {
    cfg.metrics->counter("tvla.traces").add(n_tasks);
    cfg.metrics->merge_histogram("tvla.trace_cycles",
                                 telemetry::Unit::kCycles, trace_cycles);
  }

  TvlaCampaignResult res;
  res.summary = tvla.summary();
  res.t_trace = tvla.t_trace();
  res.traces = n_tasks;
  std::uint64_t h = mix64(0, tvla.fixed().max_len());
  h = mix64(h, tvla.random().max_len());
  for (double t : res.t_trace) h = mix64(h, std::bit_cast<std::uint64_t>(t));
  res.t_digest = h;
  return res;
}

}  // namespace eccm0::sca
