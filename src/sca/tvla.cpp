#include "sca/tvla.h"

#include <cmath>
#include <limits>

namespace eccm0::sca {

double welch_t(double mean_a, double var_a, std::uint64_t n_a,
               double mean_b, double var_b, std::uint64_t n_b) {
  if (n_a < 2 || n_b < 2) return 0.0;
  const double se2 = var_a / static_cast<double>(n_a) +
                     var_b / static_cast<double>(n_b);
  const double diff = mean_a - mean_b;
  if (se2 <= 0.0) {
    if (diff == 0.0) return 0.0;
    return diff > 0.0 ? std::numeric_limits<double>::infinity()
                      : -std::numeric_limits<double>::infinity();
  }
  return diff / std::sqrt(se2);
}

void WelfordTrace::add(const measure::PowerTrace& trace) {
  if (trace.size() > cells_.size()) cells_.resize(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    Cell& c = cells_[i];
    ++c.n;
    const double delta = trace[i] - c.mean;
    c.mean += delta / static_cast<double>(c.n);
    c.m2 += delta * (trace[i] - c.mean);
  }
  ++traces_;
}

std::uint64_t WelfordTrace::count(std::size_t cycle) const {
  return cycle < cells_.size() ? cells_[cycle].n : 0;
}

double WelfordTrace::mean(std::size_t cycle) const {
  return cycle < cells_.size() ? cells_[cycle].mean : 0.0;
}

double WelfordTrace::variance(std::size_t cycle) const {
  if (cycle >= cells_.size() || cells_[cycle].n < 2) return 0.0;
  return cells_[cycle].m2 / static_cast<double>(cells_[cycle].n - 1);
}

std::vector<double> Tvla::t_of(const WelfordTrace& fixed,
                               const WelfordTrace& random) {
  const std::size_t len =
      fixed.max_len() < random.max_len() ? fixed.max_len() : random.max_len();
  std::vector<double> t;
  t.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (fixed.count(i) < 2 || random.count(i) < 2) break;
    t.push_back(welch_t(fixed.mean(i), fixed.variance(i), fixed.count(i),
                        random.mean(i), random.variance(i), random.count(i)));
  }
  return t;
}

std::vector<double> Tvla::t_trace() const { return t_of(fixed_, random_); }

TvlaSummary Tvla::summary() const {
  TvlaSummary s;
  s.threshold = threshold_;
  s.fixed_traces = fixed_.traces();
  s.random_traces = random_.traces();
  const std::vector<double> t = t_trace();
  s.compared_cycles = t.size();
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double a = std::fabs(t[i]);
    if (a > s.max_abs_t) {
      s.max_abs_t = a;
      s.max_cycle = i;
    }
    if (a > threshold_) ++s.cycles_over_raw;
  }
  const std::vector<double> ta = t_of(half_fixed_[0], half_random_[0]);
  const std::vector<double> tb = t_of(half_fixed_[1], half_random_[1]);
  const std::size_t n = ta.size() < tb.size() ? ta.size() : tb.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(ta[i]) > threshold_ && std::fabs(tb[i]) > threshold_ &&
        (ta[i] > 0) == (tb[i] > 0)) {
      ++s.cycles_over;
    }
  }
  s.length_leak = fixed_.max_len() != random_.max_len();
  s.leaky = s.cycles_over > 0 || s.length_leak;
  return s;
}

}  // namespace eccm0::sca
