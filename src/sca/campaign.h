// Parallel TVLA campaign over the VM kernels.
//
// Trace collection is embarrassingly parallel and runs through
// sim::BatchExecutor; the statistics are order-sensitive doubles, so
// accumulation happens afterwards, serially, in task-index order. The
// class schedule and every task's randomness are pure functions of
// (seed, task index) — task 2i is a fixed-class trace, task 2i+1 a
// random-class trace, each with its own Rng::split rig-noise stream —
// so the full result, down to the last bit of the t-trace digest, is
// identical for any --threads value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "measure/power_trace.h"
#include "sca/tvla.h"

namespace eccm0::telemetry {
class MetricsRegistry;
class ProgressMeter;
}

namespace eccm0::sca {

struct TvlaCampaignConfig {
  std::string kernel = "mul";  ///< workloads::KernelRegistry name
  unsigned traces_per_class = 50;
  std::uint64_t seed = 0x7E57ED;
  unsigned threads = 1;  ///< 0 = hardware concurrency (sim::BatchExecutor)
  double threshold = 4.5;
  measure::RigConfig rig;  ///< rig.seed is ignored: re-split per task
  /// Execution engine (`--engine=`). Trace collection is traced, so the
  /// threaded engine falls back per-instruction; t-digests are
  /// engine-independent by construction.
  armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode;
  /// Optional telemetry (nullptr = off). The `tvla.trace_cycles`
  /// histogram is recorded at the serial index-ordered accumulation
  /// from trace lengths (simulated cycles), so it is thread-count-
  /// invariant; the progress meter ticks once per collected trace.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::ProgressMeter* progress = nullptr;
};

struct TvlaCampaignResult {
  TvlaSummary summary;
  std::vector<double> t_trace;  ///< per-cycle Welch t, export-ready
  /// Order-sensitive fold over the exact bit patterns of t_trace (plus
  /// both class trace lengths) — the thread-count-invariance witness the
  /// CI gate compares against the committed serial baseline.
  std::uint64_t t_digest = 0;
  std::uint64_t traces = 0;  ///< total traces collected (2 * per class)
};

/// Collect 2 * traces_per_class power traces of cfg.kernel (fixed
/// operands on even task indices, fresh random operands on odd ones) and
/// run the fixed-vs-random Welch test.
TvlaCampaignResult run_tvla_campaign(const TvlaCampaignConfig& cfg);

}  // namespace eccm0::sca
