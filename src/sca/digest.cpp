#include "sca/digest.h"

#include <iomanip>
#include <sstream>

namespace eccm0::sca {

void TraceDigest::on_retire(const armvm::TraceEvent& ev) {
  RetireRecord r;
  r.pc = ev.pc;
  if (ev.num_costs > 0) r.cls0 = static_cast<std::uint8_t>(ev.costs[0].cls);
  if (ev.num_costs > 1) r.cls1 = static_cast<std::uint8_t>(ev.costs[1].cls);
  r.cycles = static_cast<std::uint8_t>(ev.cycles());
  r.num_accesses = ev.num_accesses;
  std::uint64_t h = 0;
  for (unsigned i = 0; i < ev.num_accesses; ++i) {
    const armvm::MemAccess& a = ev.accesses[i];
    h = mix64(h, (static_cast<std::uint64_t>(a.addr) << 8) |
                     (static_cast<std::uint64_t>(a.width) << 1) |
                     (a.store ? 1u : 0u));
  }
  r.addr_hash = h;
  records_.push_back(r);
  cycles_ += r.cycles;
}

std::uint64_t TraceDigest::digest(bool with_addresses) const {
  std::uint64_t h = 0;
  for (const RetireRecord& r : records_) {
    h = mix64(h, r.pc);
    h = mix64(h, (static_cast<std::uint64_t>(r.cls0) << 24) |
                     (static_cast<std::uint64_t>(r.cls1) << 16) |
                     (static_cast<std::uint64_t>(r.cycles) << 8) |
                     r.num_accesses);
    if (with_addresses) h = mix64(h, r.addr_hash);
  }
  return h;
}

std::string symbol_at(const armvm::Program& prog, std::uint32_t pc) {
  // Labels map to byte addresses; the enclosing one is the greatest
  // label address <= pc.
  const std::string* best_name = nullptr;
  std::uint32_t best_addr = 0;
  for (const auto& [name, addr] : prog.symbols()) {
    if (addr <= pc && (best_name == nullptr || addr >= best_addr)) {
      best_name = &name;
      best_addr = addr;
    }
  }
  if (best_name == nullptr) return "?";
  if (best_addr == pc) return *best_name;
  std::ostringstream os;
  os << *best_name << "+0x" << std::hex << (pc - best_addr);
  return os.str();
}

Divergence first_divergence(const TraceDigest& a, const TraceDigest& b,
                            const armvm::Program& prog,
                            bool with_addresses) {
  Divergence d;
  const auto& ra = a.records();
  const auto& rb = b.records();
  const std::size_t n = ra.size() < rb.size() ? ra.size() : rb.size();
  for (std::size_t i = 0; i < n; ++i) {
    const bool timing_equal =
        ra[i].pc == rb[i].pc && ra[i].cls0 == rb[i].cls0 &&
        ra[i].cls1 == rb[i].cls1 && ra[i].cycles == rb[i].cycles &&
        ra[i].num_accesses == rb[i].num_accesses;
    if (timing_equal && (!with_addresses || ra[i].addr_hash == rb[i].addr_hash))
      continue;
    d.diverged = true;
    d.index = i;
    d.pc_a = ra[i].pc;
    d.pc_b = rb[i].pc;
    d.symbol_a = symbol_at(prog, d.pc_a);
    d.symbol_b = symbol_at(prog, d.pc_b);
    if (ra[i].pc != rb[i].pc) {
      d.reason = "pc";
    } else if (ra[i].cls0 != rb[i].cls0 || ra[i].cls1 != rb[i].cls1) {
      d.reason = "class";
    } else if (ra[i].cycles != rb[i].cycles) {
      d.reason = "cycles";
    } else {
      d.reason = "addresses";
    }
    return d;
  }
  if (ra.size() != rb.size()) {
    d.diverged = true;
    d.index = n;
    const auto& longer = ra.size() > rb.size() ? ra : rb;
    d.pc_a = ra.size() > n ? ra[n].pc : 0;
    d.pc_b = rb.size() > n ? rb[n].pc : 0;
    const std::uint32_t pc = longer[n].pc;
    d.symbol_a = ra.size() > n ? symbol_at(prog, pc) : "<ended>";
    d.symbol_b = rb.size() > n ? symbol_at(prog, pc) : "<ended>";
    d.reason = "length";
  }
  return d;
}

}  // namespace eccm0::sca
