// Constant-trace verification — does a routine's architectural footprint
// depend on its operands?
//
// Two levels, matching the two places the paper's code exists in this
// repo:
//
//   * VM level (`check_kernel_constant_trace`): run a registry kernel
//     over many random operand draws and diff the TraceDigest of every
//     run against the first, under two criteria:
//       - constant TIMING (pc + instruction-class sequence + cycle
//         costs + access counts): what constant time/energy means on the
//         cacheless M0+, where SRAM access cost is address-independent.
//         The straight-line K-233 kernels (mul, sqr, reduce, lut) must
//         match record-for-record; the looping EEA inversion must not —
//         its divergence report names the first data-dependent branch by
//         pc and enclosing label.
//       - constant ADDRESSES (timing + the memory-address stream): the
//         stricter criterion a cache-bearing host would need. Running
//         the checker surfaced that mul and sqr FAIL it — both index
//         their lookup tables by operand nibbles/bytes (LD window scan,
//         squaring table), the classic table-lookup leak. Only reduce
//         and lut touch operand-independent addresses.
//
//   * Host level: `check_ladder_op_mix` asserts the Montgomery ladder
//     retires the exact same FieldOpCounts bag per processed bit for any
//     scalar (6M + 5S + 3A per step — CurveOps deltas, bitwise equal).
//     `check_wtnaf_op_mix` runs the same assertion over wTNAF kP and is
//     expected to FAIL — per-scalar totals swing with the digit pattern,
//     which is precisely the leak the ladder removes.
//     `check_traced_op_mix` prices the field routines with gf2::traced
//     and reports their operand spread: sqr is exactly uniform, mul
//     jitters by well under 1% (live-range trimming in the inter-pass
//     shift — the abstract-op model's only data dependence), and the EEA
//     inversion spreads by double-digit percentages, flagging it at host
//     level too.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "ec/ops.h"
#include "sca/digest.h"

namespace eccm0::telemetry {
class MetricsRegistry;
class ProgressMeter;
}

namespace eccm0::sca {

struct CtConfig {
  std::string kernel = "mul";  ///< workloads::KernelRegistry name
  unsigned runs = 16;          ///< random operand draws (>= 2)
  std::uint64_t seed = 0xC7C41EC;
  /// Execution engine (`--engine=`). Digest runs are traced, so the
  /// threaded engine takes its per-instruction fallback — the report is
  /// engine-independent by construction, and this exists to prove it.
  armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode;
  /// Optional telemetry (nullptr = off): `ct.runs` / `ct.divergent`
  /// counters and a `ct.run_cycles` histogram, recorded in the serial
  /// run loop; the progress meter ticks once per verified run.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::ProgressMeter* progress = nullptr;
};

struct CtReport {
  std::string target;
  unsigned runs = 0;
  /// The M0+ verdict: pc/class/cycle stream is operand-independent.
  bool constant = false;
  /// The strict verdict: the memory-address stream too. Implies
  /// `constant`; false for the table-indexed kernels (mul, sqr).
  bool constant_addresses = false;
  std::uint64_t trace_len = 0;   ///< retired instructions, reference run
  std::uint64_t ref_cycles = 0;  ///< cycles of the reference run
  std::uint64_t min_cycles = 0;  ///< min / max across all runs: equal to
  std::uint64_t max_cycles = 0;  ///< ref_cycles for a timing-constant kernel
  /// Timing-projection fold of the reference run (addresses excluded) —
  /// operand-independent, hence seed-stable, for a timing-constant
  /// kernel; the value the CI gate pins.
  std::uint64_t digest = 0;
  Divergence first;  ///< first strict divergence found (if any)
};

/// Run the named kernel `cfg.runs` times over independent random
/// operands (Rng::split per run) and diff every run against the first.
/// Supported kernels: the K-233 set — mul / mul-raw / mul-plain /
/// mul-plain-raw / sqr / reduce / lut / inv. Throws std::invalid_argument
/// for anything else (no operand recipe).
CtReport check_kernel_constant_trace(const CtConfig& cfg);

/// The per-kernel operand recipe behind the checker, shared with the
/// TVLA campaign: draw fresh operands from `rng` and write them into the
/// gen.h RAM slots the named kernel reads (the reduce kernel gets a
/// realistic wide operand — the raw LD product of two random in-field
/// elements). Throws std::invalid_argument for unsupported kernels.
void load_kernel_operands(const std::string& kernel, armvm::Memory& mem,
                          Rng& rng);

struct LadderReport {
  unsigned scalars = 0;
  std::uint64_t steps = 0;  ///< total ladder iterations examined
  bool uniform = false;     ///< every step's delta equals step_mix
  ec::FieldOpCounts step_mix;  ///< the per-bit bag (first step observed)
};

/// Exact per-step FieldOpCounts uniformity of mul_ladder on sect233k1
/// over `scalars` random scalars below the group order.
LadderReport check_ladder_op_mix(unsigned scalars, std::uint64_t seed);

struct WtnafReport {
  unsigned scalars = 0;
  unsigned w = 0;
  bool uniform = false;        ///< expected false: totals differ by scalar
  std::uint64_t min_total = 0; ///< min / max field ops over one full kP
  std::uint64_t max_total = 0;
};

/// Same experiment over wTNAF kP: total counted field ops per scalar.
WtnafReport check_wtnaf_op_mix(unsigned scalars, std::uint64_t seed,
                               unsigned w = 4);

struct TracedMixReport {
  unsigned samples = 0;
  double tolerance = 0.0;      ///< relative spread allowed for mul
  std::uint64_t mul_min = 0, mul_max = 0;  ///< mul_traced total ops
  std::uint64_t sqr_min = 0, sqr_max = 0;
  std::uint64_t inv_min = 0, inv_max = 0;
  double mul_spread = 0.0;     ///< (max - min) / min
  double inv_spread = 0.0;
  bool mul_within_tolerance = false;
  bool sqr_uniform = false;    ///< exact: min == max
  bool inv_flagged = false;    ///< spread above tolerance (expected true)
};

/// Operand spread of the gf2::traced abstract-op totals over `samples`
/// random in-field operands. `tolerance` bounds the relative spread a
/// routine may show and still count as uniform; the default 2% is an
/// order of magnitude above mul's observed trim jitter (~0.6%) and an
/// order below inv's data dependence (tens of percent).
TracedMixReport check_traced_op_mix(unsigned samples, std::uint64_t seed,
                                    double tolerance = 0.02);

}  // namespace eccm0::sca
