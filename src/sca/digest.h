// Compact per-run trace digests — the primitive of the constant-trace
// verifier.
//
// A TraceDigest is a TraceSink that records the operand-independence-
// relevant projection of a run: the retired instruction-class sequence,
// the per-retirement cycle cost, and the ordered memory-address stream
// (hashed per event). Two runs of a genuinely constant-trace kernel over
// different operands produce record-for-record identical digests; the
// first differing record names the first architectural divergence by
// retirement index and pc, and `Program::symbols` turns the pc into the
// enclosing label for the report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "armvm/cpu.h"
#include "armvm/program.h"

namespace eccm0::sca {

/// 64-bit stream fold used for every digest in this subsystem (the same
/// recipe the throughput bench uses for its output digests).
constexpr std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
}

/// One retired instruction, compacted to what leakage assessment needs.
struct RetireRecord {
  std::uint32_t pc = 0;
  std::uint8_t cls0 = 0xFF;      ///< first cost class (0xFF = unused)
  std::uint8_t cls1 = 0xFF;      ///< second cost class (LDM/STM overhead)
  std::uint8_t cycles = 0;       ///< total cycles of the event
  std::uint8_t num_accesses = 0;
  std::uint64_t addr_hash = 0;   ///< ordered fold of (addr, width, store)

  friend bool operator==(const RetireRecord&, const RetireRecord&) = default;
};

class TraceDigest final : public armvm::TraceSink {
 public:
  void on_retire(const armvm::TraceEvent& ev) override;

  void clear() {
    records_.clear();
    cycles_ = 0;
  }

  const std::vector<RetireRecord>& records() const { return records_; }
  std::uint64_t instructions() const { return records_.size(); }
  std::uint64_t cycles() const { return cycles_; }

  /// Order-sensitive 64-bit fold over the recorded stream. With
  /// `with_addresses` false, the memory-address hashes are left out of
  /// the fold — the timing projection (class sequence + cycle costs +
  /// access counts), which is the operand-invariant a cacheless M0+
  /// needs for constant time and energy.
  std::uint64_t digest(bool with_addresses = true) const;

 private:
  std::vector<RetireRecord> records_;
  std::uint64_t cycles_ = 0;
};

/// Where two recorded runs first differ.
struct Divergence {
  bool diverged = false;
  std::uint64_t index = 0;  ///< retirement index of the first difference
  std::uint32_t pc_a = 0;
  std::uint32_t pc_b = 0;
  std::string symbol_a;  ///< enclosing label of pc_a (run A)
  std::string symbol_b;
  std::string reason;    ///< "class" | "cycles" | "addresses" | "length"
};

/// Record-by-record comparison; symbols are resolved against `prog` (the
/// label at or before the diverging pc). Runs that retire different
/// instruction counts diverge with reason "length" at the shorter run's
/// end. With `with_addresses` false, only the timing projection is
/// compared (address-stream differences — e.g. LUT reads indexed by
/// operand nibbles — are not divergences).
Divergence first_divergence(const TraceDigest& a, const TraceDigest& b,
                            const armvm::Program& prog,
                            bool with_addresses = true);

/// Enclosing label of a code address, "+0x.." suffixed when pc lies
/// inside the label's body; "?" when no label covers it.
std::string symbol_at(const armvm::Program& prog, std::uint32_t pc);

}  // namespace eccm0::sca
