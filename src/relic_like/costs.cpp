#include "relic_like/costs.h"

#include "workloads/runner.h"
#include "common/rng.h"
#include "gf2/traced.h"

namespace eccm0::relic_like {
namespace {

struct Measurements {
  std::uint64_t mul_fixed = 0;
  std::uint64_t mul_plain = 0;
  std::uint64_t mul_lut = 0;
  std::uint64_t sqr = 0;
  std::uint64_t inv_c = 0;
  double mul_pj_per_cycle = 11.9;
};

const Measurements& measurements() {
  static const Measurements m = [] {
    Measurements r;
    asmkernels::KernelVm vm;
    Rng rng(0xC0575);
    gf2::k233::Fe x, y;
    rng.fill(x);
    rng.fill(y);
    x[7] &= gf2::k233::kTopMask;
    y[7] &= gf2::k233::kTopMask;
    const auto fixed =
        vm.mul(asmkernels::MulKernel::kFixedRegisters, x, y, true).stats;
    r.mul_fixed = fixed.cycles;
    r.mul_plain =
        vm.mul(asmkernels::MulKernel::kPlainMemory, x, y, true).stats.cycles;
    r.mul_lut = vm.lut_cycles(y);
    r.sqr = vm.sqr(x).stats.cycles;
    const auto e = fixed.energy();
    r.mul_pj_per_cycle = e.energy_pj / static_cast<double>(e.cycles);
    // Inversion: the looping EEA Thumb routine measured on the VM (the
    // paper kept inversion in compiled C; our measured kernel lands in
    // the same band, ~130k vs their 142k cycles). Average over a few
    // operands since the iteration count is data-dependent.
    std::uint64_t inv_sum = 0;
    constexpr int kInvReps = 4;
    for (int i = 0; i < kInvReps; ++i) {
      gf2::k233::Fe a;
      rng.fill(a);
      a[7] &= gf2::k233::kTopMask;
      if (gf2::k233::is_zero(a)) a[0] = 1;
      inv_sum += vm.inv(a).stats.cycles;
    }
    r.inv_c = inv_sum / kInvReps;
    return r;
  }();
  return m;
}

/// Per-call overhead, mechanically: the kernel ABI copies both operands
/// into the fixed slots (16 word stores), reads the result back (8 loads),
/// plus prologue/epilogue and the call itself.
constexpr std::uint64_t kCallOverheadAsm = 110;
/// A C implementation passes pointers but still pays save/restore, loop
/// setup and the call; measured C functions on M0+ typically burn ~60.
constexpr std::uint64_t kCallOverheadC = 60;
/// A generic-width library adds argument validation and dynamic-length
/// loops around every routine.
constexpr std::uint64_t kCallOverheadGeneric = 160;

/// TNAF recoding constants, calibrated so that ~236 digits cost the
/// paper's measured "TNAF Representation" 178k cycles (the recoding is
/// RELIC's in the paper; only the total is published).
constexpr std::uint64_t kTnafPerDigit = 580;
constexpr std::uint64_t kTnafFixed = 40000;

/// Generic-width (RELIC-style) overhead on the word-unrolled C multiply:
/// word loops are not unrolled, every access re-indexes, and the API is
/// width-generic. Calibrated against the paper's measured RELIC kP on
/// this exact core (5.62M cycles / 117.1 ms @ 48 MHz).
constexpr double kGenericMulFactor = 1.55;
/// Generic table squaring with per-byte loops instead of unrolled code
/// (same calibration anchor).
constexpr double kGenericSqrFactor = 2.6;

}  // namespace

const ec::FieldCostTable& proposed_asm_costs() {
  static const ec::FieldCostTable t = [] {
    const Measurements& m = measurements();
    ec::FieldCostTable c;
    c.name = "this work (asm)";
    c.mul = m.mul_fixed;
    c.mul_lut = m.mul_lut;
    c.sqr = m.sqr;
    c.inv = m.inv_c;
    c.pj_per_cycle = m.mul_pj_per_cycle;
    c.call_overhead = kCallOverheadAsm;
    c.tnaf_per_digit = kTnafPerDigit;
    c.tnaf_fixed = kTnafFixed;
    return c;
  }();
  return t;
}

const ec::FieldCostTable& proposed_c_costs() {
  static const ec::FieldCostTable t = [] {
    const Measurements& m = measurements();
    ec::FieldCostTable c;
    c.name = "this work (C)";
    c.mul = m.mul_plain;
    c.mul_lut = m.mul_lut;
    c.sqr = m.sqr;  // the squaring kernel shape survives compilation
    c.inv = m.inv_c;
    c.pj_per_cycle = m.mul_pj_per_cycle;
    c.call_overhead = kCallOverheadC;
    c.tnaf_per_digit = kTnafPerDigit;
    c.tnaf_fixed = kTnafFixed;
    return c;
  }();
  return t;
}

const ec::FieldCostTable& relic_like_costs() {
  static const ec::FieldCostTable t = [] {
    const Measurements& m = measurements();
    ec::FieldCostTable c;
    c.name = "RELIC-like";
    c.mul = static_cast<std::uint64_t>(
        static_cast<double>(m.mul_plain) * kGenericMulFactor);
    c.mul_lut = static_cast<std::uint64_t>(
        static_cast<double>(m.mul_lut) * kGenericMulFactor);
    c.sqr = static_cast<std::uint64_t>(static_cast<double>(m.sqr) *
                                       kGenericSqrFactor);
    c.inv = m.inv_c;
    c.pj_per_cycle = m.mul_pj_per_cycle;
    c.call_overhead = kCallOverheadGeneric;
    c.point_copy = 90;
    c.tnaf_per_digit = kTnafPerDigit;
    c.tnaf_fixed = kTnafFixed;
    return c;
  }();
  return t;
}

}  // namespace eccm0::relic_like
