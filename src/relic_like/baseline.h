// RELIC-style baseline implementation facade (paper section 4.2.1).
//
// The paper's first implementation "relies exclusively on the RELIC
// toolkit": generic wTNAF with w = 4 for both random and fixed point
// multiplication over sect233k1. This facade reproduces that
// configuration on our own generic code paths and prices it with the
// RELIC-like cost table.
#pragma once

#include "ec/costing.h"
#include "relic_like/costs.h"

namespace eccm0::relic_like {

class RelicBaseline {
 public:
  RelicBaseline();

  /// Random point multiplication kP (w = 4, table built at runtime).
  ec::CostedRun kp(const ec::AffinePoint& p, const mpint::UInt& k) const;
  /// Fixed point multiplication kG (w = 4 — RELIC's generic path also
  /// recomputes with the same window; only the table is cached).
  ec::CostedRun kg(const mpint::UInt& k) const;

  const ec::BinaryCurve& curve() const { return *curve_; }

 private:
  const ec::BinaryCurve* curve_;
};

}  // namespace eccm0::relic_like
