#include "relic_like/baseline.h"

namespace eccm0::relic_like {

RelicBaseline::RelicBaseline() : curve_(&ec::BinaryCurve::sect233k1()) {}

ec::CostedRun RelicBaseline::kp(const ec::AffinePoint& p,
                                const mpint::UInt& k) const {
  return ec::cost_point_mul(*curve_, p, k, 4, /*fixed_base=*/false,
                            relic_like_costs());
}

ec::CostedRun RelicBaseline::kg(const mpint::UInt& k) const {
  const ec::AffinePoint g = ec::AffinePoint::make(curve_->gx, curve_->gy);
  // RELIC's fixed-point path caches the precomputation but keeps w = 4.
  return ec::cost_point_mul(*curve_, g, k, 4, /*fixed_base=*/true,
                            relic_like_costs());
}

}  // namespace eccm0::relic_like
