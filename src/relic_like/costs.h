// Cost-table presets for the three implementations Table 4/6/7 compare:
//
//   proposed_asm — the paper's implementation: LD-with-fixed-registers
//                  multiply and table squaring measured on the Thumb VM,
//                  EEA inversion from the traced C model (the paper also
//                  kept inversion in C, Table 6).
//   proposed_c   — the same algorithms compiled as plain C: the compiler
//                  cannot pin the product vector, so multiplication is the
//                  all-memory kernel (VM-measured).
//   relic_like   — a generic-width C library in the style of RELIC:
//                  plain-memory multiply with generic-loop overhead,
//                  generic table squaring, heavier per-call API costs.
//
// Bookkeeping constants are mechanically justified in costs.cpp; the two
// TNAF-recoding constants are calibrated to the paper's measured "TNAF
// Representation" row, because the paper (like us) delegates recoding to
// RELIC and publishes only the total.
#pragma once

#include "ec/costing.h"

namespace eccm0::relic_like {

/// Measures the kernels once (lazily) and returns the price tables.
const ec::FieldCostTable& proposed_asm_costs();
const ec::FieldCostTable& proposed_c_costs();
const ec::FieldCostTable& relic_like_costs();

}  // namespace eccm0::relic_like
