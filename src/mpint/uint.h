// Arbitrary-precision unsigned integers on 32-bit limbs.
//
// Substrate for everything the paper delegates to RELIC's integer layer:
// curve orders, TNAF/Solinas scalar recoding, ECDSA modular arithmetic and
// the prime-field baselines. Little-endian limbs, always normalised.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/words.h"

namespace eccm0::mpint {

/// Limb count at which operator* switches from schoolbook to Karatsuba.
/// Deliberately above every ECC operand size in this repo (n <= 8 limbs
/// plus 2n-limb products), so the curve baselines keep the schoolbook
/// operation counts the committed manifests were measured with; the
/// crossover itself is characterised by the bench_prime_vs_binary
/// Karatsuba-threshold ablation.
inline constexpr std::size_t kKaratsubaThreshold = 24;

class UInt {
 public:
  UInt() = default;
  /// From a small value.
  UInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics
  explicit UInt(std::vector<Word> limbs);

  static UInt from_hex(std::string_view hex);
  /// 2^e.
  static UInt pow2(std::size_t e);
  /// Uniform value in [0, bound), bound > 0.
  static UInt random_below(Rng& rng, const UInt& bound);

  bool is_zero() const { return w_.empty(); }
  bool is_odd() const { return !w_.empty() && (w_[0] & 1u); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  std::span<const Word> limbs() const { return w_; }
  /// Low 64 bits.
  std::uint64_t low_u64() const;
  std::string to_hex() const;

  std::strong_ordering operator<=>(const UInt& o) const;
  bool operator==(const UInt& o) const = default;

  UInt operator+(const UInt& o) const;
  /// Precondition: *this >= o (checked, throws std::underflow_error).
  UInt operator-(const UInt& o) const;
  UInt operator*(const UInt& o) const;
  UInt operator<<(std::size_t bits) const;
  UInt operator>>(std::size_t bits) const;
  UInt& operator+=(const UInt& o) { return *this = *this + o; }
  UInt& operator-=(const UInt& o) { return *this = *this - o; }

  /// Zeroize the limb storage (non-elidable volatile overwrite) and
  /// release it, leaving the value zero. For ECDSA nonces and other
  /// per-use secrets whose residue must not linger in freed heap.
  void wipe();

  /// Quotient and remainder; divisor must be non-zero.
  static std::pair<UInt, UInt> divmod(const UInt& a, const UInt& b);
  UInt operator/(const UInt& o) const { return divmod(*this, o).first; }
  UInt operator%(const UInt& o) const { return divmod(*this, o).second; }

 private:
  void normalize();
  std::vector<Word> w_;
};

/// (a + b) mod m, operands already reduced.
UInt addmod(const UInt& a, const UInt& b, const UInt& m);
/// (a - b) mod m, operands already reduced.
UInt submod(const UInt& a, const UInt& b, const UInt& m);
UInt mulmod(const UInt& a, const UInt& b, const UInt& m);
UInt powmod(UInt base, UInt exp, const UInt& m);
/// Inverse of a modulo m (gcd(a, m) = 1); throws std::domain_error.
UInt invmod(const UInt& a, const UInt& m);

}  // namespace eccm0::mpint
