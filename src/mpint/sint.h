// Signed arbitrary-precision integers (sign + magnitude over UInt).
//
// Used by the Solinas TNAF machinery, where scalars live in Z[tau] with
// negative coordinates throughout.
#pragma once

#include <cstdint>
#include <string>

#include "mpint/uint.h"

namespace eccm0::mpint {

class SInt {
 public:
  SInt() = default;
  SInt(std::int64_t v);  // NOLINT(google-explicit-constructor)
  SInt(UInt mag, bool negative = false);

  bool is_zero() const { return mag_.is_zero(); }
  bool is_neg() const { return neg_; }
  bool is_odd() const { return mag_.is_odd(); }
  const UInt& abs() const { return mag_; }
  /// -1, 0, +1.
  int sign() const { return is_zero() ? 0 : (neg_ ? -1 : 1); }
  /// Value as int64 (caller guarantees it fits; checked).
  std::int64_t to_i64() const;
  std::string to_string() const;

  SInt operator-() const { return SInt{mag_, !neg_}; }
  SInt operator+(const SInt& o) const;
  SInt operator-(const SInt& o) const { return *this + (-o); }
  SInt operator*(const SInt& o) const;
  SInt operator<<(std::size_t bits) const {
    return SInt{mag_ << bits, neg_};
  }
  SInt& operator+=(const SInt& o) { return *this = *this + o; }
  SInt& operator-=(const SInt& o) { return *this = *this - o; }

  bool operator==(const SInt& o) const {
    return mag_ == o.mag_ && (neg_ == o.neg_ || mag_.is_zero());
  }
  bool operator<(const SInt& o) const;
  bool operator<=(const SInt& o) const { return *this < o || *this == o; }
  bool operator>(const SInt& o) const { return o < *this; }
  bool operator>=(const SInt& o) const { return o <= *this; }

  /// Floor division by a positive divisor: result q with a = q*b + r,
  /// 0 <= r < b.
  static SInt div_floor(const SInt& a, const UInt& b);
  /// Round-to-nearest division by a positive divisor (ties toward +inf).
  static SInt div_round(const SInt& a, const UInt& b);
  /// Euclidean remainder in [0, b).
  static UInt mod_euclid(const SInt& a, const UInt& b);

  /// Signed residue "mods 2^w": the unique r = a (mod 2^w) with
  /// -2^(w-1) <= r < 2^(w-1).
  std::int64_t mods_pow2(unsigned w) const;

  /// True exact halving (precondition: even).
  SInt half() const;

 private:
  void fix_zero() {
    if (mag_.is_zero()) neg_ = false;
  }
  UInt mag_;
  bool neg_ = false;
};

}  // namespace eccm0::mpint
