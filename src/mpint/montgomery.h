// Montgomery modular arithmetic context for odd moduli.
//
// Substrate for the prime-field baselines (secp192r1/224r1/256r1): the
// paper's comparison targets (MIRACL, Micro ECC) are prime-curve libraries
// whose inner loop is Montgomery/Comba multiplication — MUL/ADD heavy,
// which is exactly the instruction-mix contrast the paper's energy
// argument rests on.
#pragma once

#include "mpint/uint.h"

namespace eccm0::mpint {

class Montgomery {
 public:
  /// modulus must be odd and > 2.
  explicit Montgomery(UInt modulus);

  const UInt& modulus() const { return m_; }
  std::size_t limbs() const { return n_; }

  /// Map into the Montgomery domain: a * R mod m (R = 2^(32n)).
  UInt to_mont(const UInt& a) const;
  /// Map out of the Montgomery domain: a * R^-1 mod m.
  UInt from_mont(const UInt& a) const;

  /// Montgomery product: a * b * R^-1 mod m (both operands in-domain).
  UInt mul(const UInt& a, const UInt& b) const;
  UInt sqr(const UInt& a) const { return mul(a, a); }
  /// In-domain addition/subtraction.
  UInt add(const UInt& a, const UInt& b) const { return addmod(a, b, m_); }
  UInt sub(const UInt& a, const UInt& b) const { return submod(a, b, m_); }

  /// base^exp with base in-domain; result in-domain.
  UInt pow(const UInt& base, const UInt& exp) const;
  /// Inverse of an in-domain value (prime modulus assumed): a^(m-2).
  UInt inv(const UInt& a) const;

  /// 1 in the Montgomery domain (R mod m).
  UInt one() const { return r_mod_m_; }

  /// The REDC word multiplier -m^-1 mod 2^32 — exposed so the VM prime
  /// kernels can be loaded with the exact constant this oracle uses.
  Word m0_inv() const { return m0_inv_; }

 private:
  UInt redc(std::vector<Word> t) const;

  UInt m_;
  std::size_t n_ = 0;
  Word m0_inv_ = 0;  ///< -m^-1 mod 2^32
  UInt r_mod_m_;     ///< R mod m
  UInt r2_mod_m_;    ///< R^2 mod m
};

}  // namespace eccm0::mpint
