#include "mpint/sint.h"

#include <stdexcept>

namespace eccm0::mpint {

SInt::SInt(std::int64_t v)
    : mag_(v < 0 ? UInt{static_cast<std::uint64_t>(-(v + 1)) + 1}
                 : UInt{static_cast<std::uint64_t>(v)}),
      neg_(v < 0) {}

SInt::SInt(UInt mag, bool negative) : mag_(std::move(mag)), neg_(negative) {
  fix_zero();
}

std::int64_t SInt::to_i64() const {
  if (mag_.bit_length() > 63) {
    throw std::overflow_error("SInt::to_i64: value does not fit");
  }
  const auto v = static_cast<std::int64_t>(mag_.low_u64());
  return neg_ ? -v : v;
}

std::string SInt::to_string() const {
  return (neg_ ? "-0x" : "0x") + mag_.to_hex();
}

SInt SInt::operator+(const SInt& o) const {
  if (neg_ == o.neg_) return SInt{mag_ + o.mag_, neg_};
  if (mag_ >= o.mag_) return SInt{mag_ - o.mag_, neg_};
  return SInt{o.mag_ - mag_, o.neg_};
}

SInt SInt::operator*(const SInt& o) const {
  return SInt{mag_ * o.mag_, neg_ != o.neg_};
}

bool SInt::operator<(const SInt& o) const {
  if (neg_ != o.neg_) {
    if (is_zero() && o.is_zero()) return false;
    return neg_;
  }
  return neg_ ? o.mag_ < mag_ : mag_ < o.mag_;
}

SInt SInt::div_floor(const SInt& a, const UInt& b) {
  auto [q, r] = UInt::divmod(a.mag_, b);
  if (!a.neg_) return SInt{q, false};
  // Negative dividend: floor(-m / b) = -(ceil(m / b)).
  if (!r.is_zero()) q = q + UInt{1};
  return SInt{q, true};
}

SInt SInt::div_round(const SInt& a, const UInt& b) {
  // round(a / b) = floor((2a + b) / (2b)) for b > 0.
  const SInt num = (a << 1) + SInt{b, false};
  return div_floor(num, b << 1);
}

UInt SInt::mod_euclid(const SInt& a, const UInt& b) {
  const UInt r = a.mag_ % b;
  if (!a.neg_ || r.is_zero()) return r;
  return b - r;
}

std::int64_t SInt::mods_pow2(unsigned w) const {
  if (w == 0 || w >= 63) throw std::invalid_argument("mods_pow2: bad w");
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  std::uint64_t low = mag_.low_u64() & mask;
  if (neg_ && low != 0) low = (std::uint64_t{1} << w) - low;  // a mod 2^w
  const std::uint64_t half = std::uint64_t{1} << (w - 1);
  return low >= half ? static_cast<std::int64_t>(low) -
                           static_cast<std::int64_t>(std::uint64_t{1} << w)
                     : static_cast<std::int64_t>(low);
}

SInt SInt::half() const {
  if (mag_.is_odd()) throw std::domain_error("SInt::half of odd value");
  return SInt{mag_ >> 1, neg_};
}

}  // namespace eccm0::mpint
