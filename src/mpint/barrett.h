// Barrett reduction context: fast repeated reduction modulo a fixed
// (not necessarily odd) modulus using a precomputed reciprocal — the
// classic alternative to Montgomery when operands arrive in plain
// representation, e.g. the mod-n arithmetic of ECDSA.
#pragma once

#include "mpint/uint.h"

namespace eccm0::mpint {

class Barrett {
 public:
  /// modulus > 1 (odd or even).
  explicit Barrett(UInt modulus);

  const UInt& modulus() const { return m_; }

  /// x mod m for x < m^2 (asserted by construction of all call sites:
  /// products of reduced operands).
  UInt reduce(const UInt& x) const;

  UInt mul(const UInt& a, const UInt& b) const { return reduce(a * b); }
  UInt sqr(const UInt& a) const { return reduce(a * a); }
  UInt add(const UInt& a, const UInt& b) const { return addmod(a, b, m_); }
  UInt sub(const UInt& a, const UInt& b) const { return submod(a, b, m_); }
  UInt pow(const UInt& base, const UInt& exp) const;

 private:
  UInt m_;
  UInt mu_;          ///< floor(2^(2*32*k) / m)
  std::size_t k_;    ///< limb count of m
};

}  // namespace eccm0::mpint
