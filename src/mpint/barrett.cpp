#include "mpint/barrett.h"

#include <stdexcept>

namespace eccm0::mpint {

Barrett::Barrett(UInt modulus) : m_(std::move(modulus)) {
  if (m_ <= UInt{1}) {
    throw std::invalid_argument("Barrett: modulus must be > 1");
  }
  k_ = m_.limbs().size();
  mu_ = UInt::pow2(2 * 32 * k_) / m_;
}

UInt Barrett::reduce(const UInt& x) const {
  if (x < m_) return x;
  // q = floor( floor(x / b^(k-1)) * mu / b^(k+1) ), r = x - q*m, then at
  // most two conditional subtractions (HAC Alg 14.42).
  const UInt q1 = x >> (32 * (k_ - 1));
  const UInt q2 = q1 * mu_;
  const UInt q3 = q2 >> (32 * (k_ + 1));
  UInt r = x - q3 * m_;
  while (r >= m_) r = r - m_;
  return r;
}

UInt Barrett::pow(const UInt& base, const UInt& exp) const {
  UInt result{1};
  UInt b = reduce(base);
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mul(result, b);
    b = sqr(b);
  }
  return result;
}

}  // namespace eccm0::mpint
