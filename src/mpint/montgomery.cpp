#include "mpint/montgomery.h"

#include <stdexcept>

namespace eccm0::mpint {
namespace {

/// -m^-1 mod 2^32 by Newton iteration (m odd).
Word neg_inv32(Word m) {
  Word x = m;  // correct mod 2^3... iterate to full width
  for (int i = 0; i < 5; ++i) x *= 2 - m * x;  // x = m^-1 mod 2^32
  return static_cast<Word>(0u - x);
}

}  // namespace

Montgomery::Montgomery(UInt modulus) : m_(std::move(modulus)) {
  if (!m_.is_odd() || m_ <= UInt{2}) {
    throw std::invalid_argument("Montgomery: modulus must be odd and > 2");
  }
  n_ = m_.limbs().size();
  m0_inv_ = neg_inv32(m_.limbs()[0]);
  r_mod_m_ = UInt::pow2(32 * n_) % m_;
  r2_mod_m_ = mulmod(r_mod_m_, r_mod_m_, m_);
}

UInt Montgomery::redc(std::vector<Word> t) const {
  // t has up to 2n limbs; extend for carries.
  t.resize(2 * n_ + 1, 0);
  const auto m = m_.limbs();
  for (std::size_t i = 0; i < n_; ++i) {
    const Word u = t[i] * m0_inv_;
    DWord carry = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      const DWord s = static_cast<DWord>(u) * m[j] + t[i + j] + carry;
      t[i + j] = static_cast<Word>(s);
      carry = s >> 32;
    }
    for (std::size_t j = i + n_; carry != 0; ++j) {
      const DWord s = static_cast<DWord>(t[j]) + carry;
      t[j] = static_cast<Word>(s);
      carry = s >> 32;
    }
  }
  UInt r{std::vector<Word>(t.begin() + static_cast<std::ptrdiff_t>(n_),
                           t.end())};
  if (r >= m_) r = r - m_;
  return r;
}

UInt Montgomery::to_mont(const UInt& a) const {
  const UInt reduced = a % m_;
  return mul(reduced, r2_mod_m_);
}

UInt Montgomery::from_mont(const UInt& a) const {
  std::vector<Word> t(a.limbs().begin(), a.limbs().end());
  return redc(std::move(t));
}

UInt Montgomery::mul(const UInt& a, const UInt& b) const {
  const UInt p = a * b;
  std::vector<Word> t(p.limbs().begin(), p.limbs().end());
  return redc(std::move(t));
}

UInt Montgomery::pow(const UInt& base, const UInt& exp) const {
  UInt result = r_mod_m_;  // 1 in-domain
  UInt b = base;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mul(result, b);
    b = mul(b, b);
  }
  return result;
}

UInt Montgomery::inv(const UInt& a) const {
  return pow(a, m_ - UInt{2});
}

}  // namespace eccm0::mpint
