#include "mpint/uint.h"

#include <algorithm>
#include <stdexcept>

#include "common/hex.h"
#include "common/secure_wipe.h"

namespace eccm0::mpint {

UInt::UInt(std::uint64_t v) {
  if (v != 0) w_.push_back(static_cast<Word>(v));
  if (v >> 32) w_.push_back(static_cast<Word>(v >> 32));
}

UInt::UInt(std::vector<Word> limbs) : w_(std::move(limbs)) { normalize(); }

void UInt::normalize() {
  while (!w_.empty() && w_.back() == 0) w_.pop_back();
}

UInt UInt::from_hex(std::string_view hex) { return UInt{words_from_hex(hex)}; }

void UInt::wipe() { common::secure_wipe(w_); }

UInt UInt::pow2(std::size_t e) {
  std::vector<Word> w(e / kWordBits + 1, 0);
  w.back() = Word{1} << (e % kWordBits);
  return UInt{std::move(w)};
}

UInt UInt::random_below(Rng& rng, const UInt& bound) {
  if (bound.is_zero()) throw std::domain_error("random_below: zero bound");
  const std::size_t bits = bound.bit_length();
  const std::size_t n = words_for_bits(bits);
  const Word top_mask =
      bits % kWordBits == 0 ? ~Word{0} : (Word{1} << (bits % kWordBits)) - 1;
  // Rejection sampling keeps the distribution uniform.
  for (;;) {
    std::vector<Word> w(n);
    rng.fill(w);
    w.back() &= top_mask;
    UInt v{std::move(w)};
    if (v < bound) return v;
  }
}

std::size_t UInt::bit_length() const {
  if (w_.empty()) return 0;
  return (w_.size() - 1) * kWordBits + top_bit(w_.back()) + 1;
}

bool UInt::bit(std::size_t i) const {
  if (i / kWordBits >= w_.size()) return false;
  return get_bit(w_, i);
}

std::uint64_t UInt::low_u64() const {
  std::uint64_t v = w_.empty() ? 0 : w_[0];
  if (w_.size() > 1) v |= static_cast<std::uint64_t>(w_[1]) << 32;
  return v;
}

std::string UInt::to_hex() const { return words_to_hex(w_); }

std::strong_ordering UInt::operator<=>(const UInt& o) const {
  if (w_.size() != o.w_.size()) return w_.size() <=> o.w_.size();
  for (std::size_t i = w_.size(); i-- > 0;) {
    if (w_[i] != o.w_[i]) return w_[i] <=> o.w_[i];
  }
  return std::strong_ordering::equal;
}

UInt UInt::operator+(const UInt& o) const {
  const std::vector<Word>& a = w_.size() >= o.w_.size() ? w_ : o.w_;
  const std::vector<Word>& b = w_.size() >= o.w_.size() ? o.w_ : w_;
  std::vector<Word> r(a.size() + 1, 0);
  DWord carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    DWord s = carry + a[i] + (i < b.size() ? b[i] : 0);
    r[i] = static_cast<Word>(s);
    carry = s >> 32;
  }
  r[a.size()] = static_cast<Word>(carry);
  return UInt{std::move(r)};
}

UInt UInt::operator-(const UInt& o) const {
  if (*this < o) throw std::underflow_error("UInt subtraction underflow");
  std::vector<Word> r(w_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < w_.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(w_[i]) -
                     (i < o.w_.size() ? o.w_[i] : 0) - borrow;
    borrow = d < 0 ? 1 : 0;
    r[i] = static_cast<Word>(d + (borrow << 32));
  }
  return UInt{std::move(r)};
}

UInt UInt::operator*(const UInt& o) const {
  if (is_zero() || o.is_zero()) return {};
  if (std::min(w_.size(), o.w_.size()) >= kKaratsubaThreshold) {
    // Karatsuba: split both operands at half the wider one and trade
    // one quarter-size product for linear adds/shifts.
    const std::size_t h = std::max(w_.size(), o.w_.size()) / 2;
    const auto split = [h](const std::vector<Word>& w) {
      const std::size_t cut = std::min(h, w.size());
      return std::pair<UInt, UInt>{
          UInt(std::vector<Word>(w.begin(), w.begin() + cut)),
          UInt(std::vector<Word>(w.begin() + cut, w.end()))};
    };
    const auto [a0, a1] = split(w_);
    const auto [b0, b1] = split(o.w_);
    const UInt z0 = a0 * b0;
    const UInt z2 = a1 * b1;
    const UInt z1 = (a0 + a1) * (b0 + b1) - z0 - z2;
    return (z2 << (2 * h * kWordBits)) + (z1 << (h * kWordBits)) + z0;
  }
  std::vector<Word> r(w_.size() + o.w_.size(), 0);
  for (std::size_t i = 0; i < w_.size(); ++i) {
    DWord carry = 0;
    for (std::size_t j = 0; j < o.w_.size(); ++j) {
      DWord cur = static_cast<DWord>(w_[i]) * o.w_[j] + r[i + j] + carry;
      r[i + j] = static_cast<Word>(cur);
      carry = cur >> 32;
    }
    r[i + o.w_.size()] += static_cast<Word>(carry);
  }
  return UInt{std::move(r)};
}

UInt UInt::operator<<(std::size_t bits) const {
  if (is_zero()) return {};
  const std::size_t wj = bits / kWordBits;
  const unsigned b = bits % kWordBits;
  std::vector<Word> r(w_.size() + wj + 1, 0);
  for (std::size_t i = 0; i < w_.size(); ++i) {
    r[i + wj] |= b == 0 ? w_[i] : (w_[i] << b);
    if (b != 0) r[i + wj + 1] |= w_[i] >> (kWordBits - b);
  }
  return UInt{std::move(r)};
}

UInt UInt::operator>>(std::size_t bits) const {
  const std::size_t wj = bits / kWordBits;
  const unsigned b = bits % kWordBits;
  if (wj >= w_.size()) return {};
  std::vector<Word> r(w_.size() - wj, 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = b == 0 ? w_[i + wj] : (w_[i + wj] >> b);
    if (b != 0 && i + wj + 1 < w_.size()) {
      r[i] |= w_[i + wj + 1] << (kWordBits - b);
    }
  }
  return UInt{std::move(r)};
}

std::pair<UInt, UInt> UInt::divmod(const UInt& a, const UInt& b) {
  if (b.is_zero()) throw std::domain_error("UInt division by zero");
  if (a < b) return {UInt{}, a};
  if (b.w_.size() == 1) {
    // Fast single-limb path.
    const Word d = b.w_[0];
    std::vector<Word> q(a.w_.size(), 0);
    DWord rem = 0;
    for (std::size_t i = a.w_.size(); i-- > 0;) {
      DWord cur = (rem << 32) | a.w_[i];
      q[i] = static_cast<Word>(cur / d);
      rem = cur % d;
    }
    return {UInt{std::move(q)}, UInt{static_cast<std::uint64_t>(rem)}};
  }
  // Knuth Algorithm D. Normalise so the divisor's top limb has its high
  // bit set.
  const unsigned shift = kWordBits - 1 - top_bit(b.w_.back());
  const UInt an = a << shift;
  const UInt bn = b << shift;
  const std::size_t n = bn.w_.size();
  const std::size_t m = an.w_.size() - n;
  std::vector<Word> u(an.w_.begin(), an.w_.end());
  u.push_back(0);  // u has m + n + 1 limbs
  const std::vector<Word>& v = bn.w_;
  std::vector<Word> q(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat from the top two limbs of the current remainder.
    const DWord top = (static_cast<DWord>(u[j + n]) << 32) | u[j + n - 1];
    DWord q_hat = top / v[n - 1];
    DWord r_hat = top % v[n - 1];
    while (q_hat >> 32 ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >> 32) break;
    }
    // Multiply-subtract u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    DWord carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const DWord p = q_hat * v[i] + carry;
      carry = p >> 32;
      const std::int64_t d =
          static_cast<std::int64_t>(u[i + j]) -
          static_cast<std::int64_t>(static_cast<Word>(p)) - borrow;
      u[i + j] = static_cast<Word>(d);
      borrow = d < 0 ? 1 : 0;
    }
    const std::int64_t d = static_cast<std::int64_t>(u[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<Word>(d);
    if (d < 0) {
      // q_hat was one too large: add back.
      --q_hat;
      DWord c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const DWord s = static_cast<DWord>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<Word>(s);
        c = s >> 32;
      }
      u[j + n] = static_cast<Word>(u[j + n] + c);
    }
    q[j] = static_cast<Word>(q_hat);
  }
  u.resize(n);
  return {UInt{std::move(q)}, UInt{std::move(u)} >> shift};
}

UInt addmod(const UInt& a, const UInt& b, const UInt& m) {
  UInt s = a + b;
  if (s >= m) s = s - m;
  return s;
}

UInt submod(const UInt& a, const UInt& b, const UInt& m) {
  if (a >= b) return a - b;
  return a + m - b;
}

UInt mulmod(const UInt& a, const UInt& b, const UInt& m) {
  return (a * b) % m;
}

UInt powmod(UInt base, UInt exp, const UInt& m) {
  UInt result{1};
  base = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
  }
  return result;
}

UInt invmod(const UInt& a, const UInt& m) {
  // Extended Euclid with signed bookkeeping done via (value, negative) on
  // UInts: track x s.t. a*x = g (mod m).
  UInt r0 = m;
  UInt r1 = a % m;
  // x coefficients for a: x0 = 0, x1 = 1, values mod m.
  UInt x0{0};
  UInt x1{1};
  while (!r1.is_zero()) {
    const auto [q, r2] = UInt::divmod(r0, r1);
    r0 = r1;
    r1 = r2;
    const UInt t = submod(x0, mulmod(q, x1, m), m);
    x0 = x1;
    x1 = t;
  }
  if (!(r0 == UInt{1})) throw std::domain_error("invmod: not invertible");
  return x0;
}

}  // namespace eccm0::mpint
