#include "workloads/spec.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "asmkernels/gen.h"
#include "common/rng.h"
#include "ec/costing.h"
#include "ec/curve.h"
#include "ecp/costing.h"
#include "ecp/curve.h"
#include "workloads/registry.h"

namespace eccm0::workloads {

namespace {

const std::vector<CurveRef>& curve_table() {
  static const std::vector<CurveRef> kCurves = {
      {"sect233k1", true, 233, 8, ""},
      {"secp192r1", false, 192, 6, "p192"},
      {"secp224r1", false, 224, 7, "p224"},
      {"secp256r1", false, 256, 8, "p256"},
  };
  return kCurves;
}

/// Fixed-width little-endian words of a UInt (zero padded).
std::vector<std::uint32_t> to_words(const mpint::UInt& v, std::size_t n) {
  std::vector<std::uint32_t> w(n, 0);
  const auto limbs = v.limbs();
  for (std::size_t i = 0; i < limbs.size() && i < n; ++i) w[i] = limbs[i];
  return w;
}

/// Field-op mix of the `index`-th point multiplication of a transaction
/// on `curve` (index 0 is the shared kP mix seed 0x7AB1E4; higher
/// indices draw successive deterministic scalars).
ec::FieldOpCounts derive_mix(const CurveRef& curve, unsigned index) {
  if (curve.binary_field) {
    if (index == 0) return kp_mix_sect233k1();
    Rng rng(0x7AB1E4 + index);
    const auto& k233 = ec::BinaryCurve::sect233k1();
    const ec::AffinePoint g = ec::AffinePoint::make(k233.gx, k233.gy);
    const mpint::UInt k = mpint::UInt::random_below(rng, k233.order);
    const ec::CostedRun costed =
        ec::cost_point_mul(k233, g, k, 4, false, ec::FieldCostTable{});
    return costed.main_ops + costed.precomp_ops;
  }
  Rng rng(0x7AB1E4 + index);
  const ecp::PrimeCurve& pc = prime_curve(curve);
  const mpint::UInt k = mpint::UInt::random_below(rng, pc.order);
  const ecp::PrimeCostedRun costed = ecp::cost_point_mul_p(pc, k, 4);
  return {costed.ops.mul, costed.ops.sqr, costed.ops.inv, costed.ops.add};
}

const ec::FieldOpCounts& cached_mix(const CurveRef& curve, unsigned index) {
  static std::mutex mu;
  static std::map<std::string, ec::FieldOpCounts> cache;
  std::lock_guard<std::mutex> lock(mu);
  const std::string key = curve.name + "#" + std::to_string(index);
  auto it = cache.find(key);
  if (it == cache.end()) it = cache.emplace(key, derive_mix(curve, index)).first;
  return it->second;
}

void mix64(std::uint64_t& h, std::uint32_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
}

}  // namespace

const ecp::PrimeCurve& prime_curve(const CurveRef& curve) {
  if (curve.name == "secp192r1") return ecp::PrimeCurve::secp192r1();
  if (curve.name == "secp224r1") return ecp::PrimeCurve::secp224r1();
  if (curve.name == "secp256r1") return ecp::PrimeCurve::secp256r1();
  throw std::invalid_argument("no prime curve for " + curve.name);
}

const CurveRef& curve_from_name(const std::string& name) {
  for (const CurveRef& c : curve_table()) {
    if (c.name == name) return c;
  }
  std::string known;
  for (const CurveRef& c : curve_table()) {
    if (!known.empty()) known += ", ";
    known += c.name;
  }
  throw std::invalid_argument("unknown curve '" + name + "' (known: " + known +
                              ")");
}

std::vector<std::string> workload_curve_names() {
  std::vector<std::string> out;
  for (const CurveRef& c : curve_table()) out.push_back(c.name);
  std::sort(out.begin(), out.end());
  return out;
}

const ec::FieldOpCounts& op_mix(const CurveRef& curve) {
  return cached_mix(curve, 0);
}

WorkloadSpec make_workload(const std::string& transaction,
                           const std::string& curve_name) {
  unsigned muls = 0;
  if (transaction == "kp") {
    muls = 1;
  } else if (transaction == "ecdh") {
    muls = 2;  // keygen kG + shared-secret kP (one party)
  } else if (transaction == "ecdsa") {
    muls = 3;  // sign nonce kG + verify u1*G, u2*Q
  } else {
    throw std::invalid_argument("unknown transaction '" + transaction +
                                "' (known: kp, ecdh, ecdsa)");
  }
  const CurveRef& curve = curve_from_name(curve_name);
  WorkloadSpec s;
  s.name = transaction + "-" + curve.name;
  s.curve = curve;
  s.transaction = transaction;
  s.point_muls = muls;
  if (curve.binary_field) {
    s.mul_kernel = "mul";
    s.sqr_kernel = "sqr";
    s.inv_kernel = "inv";
  } else {
    s.mul_kernel = curve.kernel_tag + "-mont";
    s.sqr_kernel = curve.kernel_tag + "-sqr";
    s.inv_kernel = curve.kernel_tag + "-inv";
  }
  for (unsigned i = 0; i < muls; ++i) {
    const ec::FieldOpCounts& m = cached_mix(curve, i);
    s.ops.mul += m.mul;
    s.ops.sqr += m.sqr;
    s.ops.inv += m.inv;
    s.ops.add += m.add;
  }
  return s;
}

WorkloadSpec kp_workload(const std::string& c) { return make_workload("kp", c); }
WorkloadSpec ecdh_workload(const std::string& c) {
  return make_workload("ecdh", c);
}
WorkloadSpec ecdsa_workload(const std::string& c) {
  return make_workload("ecdsa", c);
}

const PrimeOperands& PrimeOperands::standard(const CurveRef& curve) {
  static std::mutex mu;
  static std::map<std::string, PrimeOperands> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(curve.name);
  if (it == cache.end()) {
    const ecp::PrimeCurve& pc = prime_curve(curve);
    const std::size_t n = curve.limbs;
    Rng rng(0x7151CA7);
    PrimeOperands o;
    // Any residue < p is a valid Montgomery-domain element.
    o.x = to_words(mpint::UInt::random_below(rng, pc.p), n);
    o.y = to_words(mpint::UInt::random_below(rng, pc.p), n);
    mpint::UInt a = mpint::UInt::random_below(rng, pc.p);
    if (a.is_zero()) a = mpint::UInt(1);
    o.a = to_words(a, n);
    // REDC input must stay below m*R (any Montgomery intermediate does).
    const mpint::UInt bound = pc.p << (32 * n);
    o.wide = to_words(mpint::UInt::random_below(rng, bound), 2 * n);
    it = cache.emplace(curve.name, std::move(o)).first;
  }
  return it->second;
}

void load_prime_modulus(armvm::Memory& mem, const CurveRef& curve) {
  const ecp::PrimeCurve& pc = prime_curve(curve);
  const std::vector<std::uint32_t> m = to_words(pc.p, curve.limbs);
  for (std::size_t w = 0; w < m.size(); ++w) {
    mem.poke32(armvm::kRamBase + asmkernels::kPModOff + 4 * w, m[w]);
  }
  mem.poke32(armvm::kRamBase + asmkernels::kPM0Off, pc.mont->m0_inv());
}

void load_prime_mul_inputs(armvm::Memory& mem,
                           const std::vector<std::uint32_t>& x,
                           const std::vector<std::uint32_t>& y) {
  for (std::size_t w = 0; w < x.size(); ++w) {
    mem.poke32(armvm::kRamBase + asmkernels::kXOff + 4 * w, x[w]);
  }
  for (std::size_t w = 0; w < y.size(); ++w) {
    mem.poke32(armvm::kRamBase + asmkernels::kYOff + 4 * w, y[w]);
  }
}

void load_prime_inv_input(armvm::Memory& mem,
                          const std::vector<std::uint32_t>& a) {
  for (std::size_t w = 0; w < a.size(); ++w) {
    mem.poke32(armvm::kRamBase + asmkernels::kInOff + 4 * w, a[w]);
  }
}

void load_prime_wide_input(armvm::Memory& mem,
                           const std::vector<std::uint32_t>& wide) {
  for (std::size_t w = 0; w < wide.size(); ++w) {
    mem.poke32(armvm::kRamBase + asmkernels::kWideOff + 4 * w, wide[w]);
  }
}

ReplayImages ReplayImages::resolve(const WorkloadSpec& spec) {
  return ReplayImages{kernel(spec.mul_kernel), kernel(spec.sqr_kernel),
                      kernel(spec.inv_kernel)};
}

ReplayResult replay(const WorkloadSpec& spec, armvm::Cpu::DecodeMode mode,
                    const armvm::MemModelConfig& mem_model, unsigned reps) {
  return replay(spec, ReplayImages::resolve(spec), mode, mem_model, reps);
}

ReplayResult replay(const WorkloadSpec& spec, const ReplayImages& images,
                    armvm::Cpu::DecodeMode mode,
                    const armvm::MemModelConfig& mem_model, unsigned reps) {
  KernelMachine mul(images.mul, mode, mem_model);
  KernelMachine sqr(images.sqr, mode, mem_model);
  KernelMachine inv(images.inv, mode, mem_model);

  unsigned out_words = 8;
  std::uint32_t mul_out_off = asmkernels::kVOff;
  if (spec.curve.binary_field) {
    const KernelOperands& od = KernelOperands::standard();
    load_mul_inputs(mul.mem(), od.x, od.y);
    load_sqr_table(sqr.mem());
    load_sqr_input(sqr.mem(), od.a);
  } else {
    const PrimeOperands& od = PrimeOperands::standard(spec.curve);
    load_prime_modulus(mul.mem(), spec.curve);
    load_prime_mul_inputs(mul.mem(), od.x, od.y);
    load_prime_modulus(sqr.mem(), spec.curve);
    load_prime_mul_inputs(sqr.mem(), od.x, od.y);
    load_prime_modulus(inv.mem(), spec.curve);
    load_prime_inv_input(inv.mem(), od.a);
    out_words = spec.curve.limbs;
    mul_out_off = asmkernels::kOutOff;  // Montgomery kernels reduce
  }

  ReplayResult r;
  for (unsigned rep = 0; rep < reps; ++rep) {
    for (std::uint64_t i = 0; i < spec.ops.mul; ++i) mul.call();
    for (std::uint64_t i = 0; i < spec.ops.sqr; ++i) sqr.call();
    for (std::uint64_t i = 0; i < spec.ops.inv; ++i) {
      if (spec.curve.binary_field) {
        // The gf2 EEA kernel consumes its scratch state; re-seed so
        // every inversion runs the same trace.
        const KernelOperands& od = KernelOperands::standard();
        load_inv_input(inv.mem(), od.a);
      }
      inv.call();
    }
  }
  r.stats = mul.cpu().stats();
  r.stats.instructions +=
      sqr.cpu().stats().instructions + inv.cpu().stats().instructions;
  r.stats.cycles += sqr.cpu().stats().cycles + inv.cpu().stats().cycles;
  r.stats.histogram += sqr.cpu().stats().histogram;
  r.stats.histogram += inv.cpu().stats().histogram;
  r.fused_retired = mul.cpu().fused_retired() + sqr.cpu().fused_retired() +
                    inv.cpu().fused_retired();
  for (unsigned w = 0; w < out_words; ++w) {
    mix64(r.output_digest,
          mul.mem().load32(armvm::kRamBase + mul_out_off + 4 * w));
    mix64(r.output_digest,
          sqr.mem().load32(armvm::kRamBase + asmkernels::kOutOff + 4 * w));
    mix64(r.output_digest,
          inv.mem().load32(armvm::kRamBase + asmkernels::kOutOff + 4 * w));
  }
  return r;
}

}  // namespace eccm0::workloads
