// Harness that runs the generated Thumb kernels on the armvm core,
// giving measured Cortex-M0+ cycle counts and energy for the K-233
// field arithmetic (paper Tables 5 and 6).
//
// The kernel images are resolved through the KernelRegistry: assembled
// and predecoded once per process, shared by every KernelVm instance
// (and every other harness) as immutable ProgramRefs.
#pragma once

#include "armvm/cpu.h"
#include "armvm/program.h"
#include "gf2/k233.h"

namespace eccm0::workloads {

/// Which multiplication kernel to run.
enum class MulKernel {
  kFixedRegisters,  ///< the paper's LD with fixed registers (hand asm)
  kPlainMemory,     ///< plain LD, everything in RAM ("C compiler" shape)
};

class KernelVm {
 public:
  KernelVm();

  struct MulResult {
    gf2::k233::Prod product;   ///< raw 16-word product (reduce = false)
    gf2::k233::Fe reduced;     ///< reduced result (reduce = true)
    armvm::RunStats stats;
  };
  /// Multiply x*y; if `reduce`, the kernel also folds mod z^233+z^74+1.
  MulResult mul(MulKernel kernel, const gf2::k233::Fe& x,
                const gf2::k233::Fe& y, bool reduce);

  struct FeResult {
    gf2::k233::Fe value;
    armvm::RunStats stats;
  };
  /// Modular squaring via the halfword table kernel.
  FeResult sqr(const gf2::k233::Fe& a);
  /// Standalone reduction of a 16-word product.
  FeResult reduce(const gf2::k233::Prod& wide);
  /// EEA inversion (looping Thumb routine). Precondition: a != 0.
  FeResult inv(const gf2::k233::Fe& a);

  /// K-163 instantiation of the multiplication kernels (n = 6,
  /// pentanomial reduction).
  using Fe163 = std::array<std::uint32_t, 6>;
  struct Mul163Result {
    std::array<std::uint32_t, 12> product;  ///< raw (reduce = false)
    Fe163 reduced;                          ///< folded (reduce = true)
    armvm::RunStats stats;
  };
  Mul163Result mul_k163(MulKernel kernel, const Fe163& x, const Fe163& y,
                        bool reduce);

  /// Cycles of the LUT-generation phase alone (the "Multiply
  /// Precomputation" share of one multiplication).
  std::uint64_t lut_cycles(const gf2::k233::Fe& y);

  /// Static code sizes in bytes (for the report).
  std::size_t code_bytes_mul_fixed() const;
  std::size_t code_bytes_sqr() const;

 private:
  armvm::ProgramRef mul_fixed_raw_, mul_fixed_mod_;
  armvm::ProgramRef mul_plain_raw_, mul_plain_mod_;
  armvm::ProgramRef sqr_, reduce_, lut_only_, inv_;
  armvm::ProgramRef mul163_fixed_raw_, mul163_fixed_mod_;
  armvm::ProgramRef mul163_plain_raw_, mul163_plain_mod_;
};

}  // namespace eccm0::workloads

namespace eccm0::asmkernels {
// The harness lived in asmkernels before the workloads library existed;
// keep the old names usable.
using MulKernel = workloads::MulKernel;
using KernelVm = workloads::KernelVm;
}  // namespace eccm0::asmkernels
