// The paper's core workload, factored out of the benches: the K-233
// field-kernel mix of one real wTNAF w=4 kP on sect233k1, the standard
// deterministic operands every harness feeds those kernels, and a
// KernelMachine that bundles one private execution context (Cpu +
// Memory) over a shared registry image.
//
// bench_vm_throughput, bench_profile, ecctool and the faultsim campaign
// previously each re-derived this mix and re-assembled these kernels;
// they now all resolve through here, so the numbers are one definition
// instead of four copies.
#pragma once

#include <cstdint>
#include <string>

#include "armvm/cpu.h"
#include "ec/costing.h"

namespace eccm0::workloads {

/// RAM size every field-kernel machine uses (gen.h layout fits in 2 KiB).
inline constexpr std::size_t kKernelRamSize = 0x800;

/// Field-op counts of one real wTNAF w=4 kP on sect233k1 (table build +
/// Horner loop), derived once from the fixed mix seed 0x7AB1E4 and
/// cached. This is the schedule bench_vm_throughput and bench_profile
/// replay.
const ec::FieldOpCounts& kp_mix_sect233k1();

/// The standard deterministic kernel operands (seed 0x7151CA7): x, y
/// are in-field multiplication inputs, a is a nonzero in-field
/// squaring/inversion input. Same values in every bench, so histograms
/// and output digests are comparable across harnesses.
struct KernelOperands {
  std::uint32_t x[8];
  std::uint32_t y[8];
  std::uint32_t a[8];

  static const KernelOperands& standard();
};

/// Input loaders for the gen.h RAM layout.
void load_mul_inputs(armvm::Memory& mem, const std::uint32_t (&x)[8],
                     const std::uint32_t (&y)[8]);
void load_sqr_table(armvm::Memory& mem);
/// Squaring input (kInOff). Does NOT write the table; call
/// load_sqr_table once per Memory.
void load_sqr_input(armvm::Memory& mem, const std::uint32_t (&a)[8]);
/// Inversion input (kInOff). The EEA kernel consumes its scratch state,
/// so re-load before every call for a reproducible trace.
void load_inv_input(armvm::Memory& mem, const std::uint32_t (&a)[8]);
/// 16-word unreduced product into the standalone reduce kernel's wide
/// buffer (kWideOff).
void load_reduce_input(armvm::Memory& mem, const std::uint32_t (&wide)[16]);

/// One shared immutable image + one private execution context. Cheap to
/// construct (the registry already holds the predecoded image), so
/// parallel workers build one per thread over the same ProgramRef.
/// `mem_model` selects the RAM protection scheme (raw by default; see
/// armvm/memmodel.h) — kernels run identically under every model, only
/// cycle/energy accounting and fault surfaces change.
class KernelMachine {
 public:
  explicit KernelMachine(
      const std::string& kernel_name,
      armvm::Cpu::DecodeMode mode = armvm::Cpu::DecodeMode::kPredecode,
      const armvm::MemModelConfig& mem_model = {});
  KernelMachine(armvm::ProgramRef prog,
                armvm::Cpu::DecodeMode mode = armvm::Cpu::DecodeMode::kPredecode,
                const armvm::MemModelConfig& mem_model = {});

  const armvm::Program& prog() const { return *prog_; }
  const armvm::ProgramRef& prog_ref() const { return prog_; }
  armvm::Memory& mem() { return mem_; }
  armvm::Cpu& cpu() { return cpu_; }

  /// Run the kernel's "entry" label to completion.
  armvm::RunStats call() { return cpu_.call(prog_->entry("entry"), {}); }

 private:
  armvm::ProgramRef prog_;
  armvm::Memory mem_;
  armvm::Cpu cpu_;
};

}  // namespace eccm0::workloads
