#include "workloads/runner.h"

#include "asmkernels/gen.h"
#include "gf2/sqr_table.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"

namespace eccm0::workloads {
namespace {

using gf2::k233::Fe;
using gf2::k233::Prod;

void write_fe(armvm::Memory& mem, std::uint32_t offset, const Fe& v) {
  mem.write_words(armvm::kRamBase + offset,
                  std::span<const std::uint32_t>(v.data(), v.size()));
}

}  // namespace

KernelVm::KernelVm()
    : mul_fixed_raw_(kernel("mul-raw")),
      mul_fixed_mod_(kernel("mul")),
      mul_plain_raw_(kernel("mul-plain-raw")),
      mul_plain_mod_(kernel("mul-plain")),
      sqr_(kernel("sqr")),
      reduce_(kernel("reduce")),
      lut_only_(kernel("lut")),
      inv_(kernel("inv")),
      mul163_fixed_raw_(kernel("mul163-raw")),
      mul163_fixed_mod_(kernel("mul163")),
      mul163_plain_raw_(kernel("mul163-plain-raw")),
      mul163_plain_mod_(kernel("mul163-plain")) {}

KernelVm::Mul163Result KernelVm::mul_k163(MulKernel kernel, const Fe163& x,
                                          const Fe163& y, bool reduce) {
  const armvm::ProgramRef& prog =
      kernel == MulKernel::kFixedRegisters
          ? (reduce ? mul163_fixed_mod_ : mul163_fixed_raw_)
          : (reduce ? mul163_plain_mod_ : mul163_plain_raw_);
  armvm::Memory mem(kKernelRamSize);
  mem.write_words(armvm::kRamBase + asmkernels::kXOff,
                  std::span<const std::uint32_t>(x.data(), x.size()));
  mem.write_words(armvm::kRamBase + asmkernels::kYOff,
                  std::span<const std::uint32_t>(y.data(), y.size()));
  armvm::Cpu cpu(prog, mem);
  Mul163Result r;
  r.stats = cpu.call(prog->entry("entry"), {});
  if (reduce) {
    const auto words = mem.read_words(armvm::kRamBase + asmkernels::kVOff, 6);
    for (std::size_t i = 0; i < 6; ++i) r.reduced[i] = words[i];
  } else {
    const auto words = mem.read_words(armvm::kRamBase + asmkernels::kVOff, 12);
    for (std::size_t i = 0; i < 12; ++i) r.product[i] = words[i];
  }
  return r;
}

KernelVm::FeResult KernelVm::inv(const Fe& a) {
  armvm::Memory mem(kKernelRamSize);
  write_fe(mem, asmkernels::kInOff, a);
  armvm::Cpu cpu(inv_, mem);
  FeResult r;
  r.stats = cpu.call(inv_->entry("entry"), {});
  const auto words = mem.read_words(armvm::kRamBase + asmkernels::kOutOff, 8);
  for (std::size_t i = 0; i < 8; ++i) r.value[i] = words[i];
  return r;
}

std::uint64_t KernelVm::lut_cycles(const Fe& y) {
  armvm::Memory mem(kKernelRamSize);
  write_fe(mem, asmkernels::kYOff, y);
  armvm::Cpu cpu(lut_only_, mem);
  return cpu.call(lut_only_->entry("entry"), {}).cycles;
}

KernelVm::MulResult KernelVm::mul(MulKernel kernel, const Fe& x, const Fe& y,
                                  bool reduce) {
  const armvm::ProgramRef& prog =
      kernel == MulKernel::kFixedRegisters
          ? (reduce ? mul_fixed_mod_ : mul_fixed_raw_)
          : (reduce ? mul_plain_mod_ : mul_plain_raw_);
  armvm::Memory mem(kKernelRamSize);
  write_fe(mem, asmkernels::kXOff, x);
  write_fe(mem, asmkernels::kYOff, y);
  armvm::Cpu cpu(prog, mem);
  MulResult r;
  r.stats = cpu.call(prog->entry("entry"), {});
  if (reduce) {
    const auto words = mem.read_words(armvm::kRamBase + asmkernels::kVOff, 8);
    for (std::size_t i = 0; i < 8; ++i) r.reduced[i] = words[i];
  } else {
    const auto words = mem.read_words(armvm::kRamBase + asmkernels::kVOff, 16);
    for (std::size_t i = 0; i < 16; ++i) r.product[i] = words[i];
  }
  return r;
}

KernelVm::FeResult KernelVm::sqr(const Fe& a) {
  armvm::Memory mem(kKernelRamSize);
  load_sqr_table(mem);
  write_fe(mem, asmkernels::kInOff, a);
  armvm::Cpu cpu(sqr_, mem);
  FeResult r;
  r.stats = cpu.call(sqr_->entry("entry"), {});
  const auto words = mem.read_words(armvm::kRamBase + asmkernels::kOutOff, 8);
  for (std::size_t i = 0; i < 8; ++i) r.value[i] = words[i];
  return r;
}

KernelVm::FeResult KernelVm::reduce(const Prod& wide) {
  armvm::Memory mem(kKernelRamSize);
  mem.write_words(armvm::kRamBase + asmkernels::kWideOff,
                  std::span<const std::uint32_t>(wide.data(), wide.size()));
  armvm::Cpu cpu(reduce_, mem);
  FeResult r;
  r.stats = cpu.call(reduce_->entry("entry"), {});
  const auto words = mem.read_words(armvm::kRamBase + asmkernels::kOutOff, 8);
  for (std::size_t i = 0; i < 8; ++i) r.value[i] = words[i];
  return r;
}

std::size_t KernelVm::code_bytes_mul_fixed() const {
  return mul_fixed_mod_->code_bytes();
}

std::size_t KernelVm::code_bytes_sqr() const { return sqr_->code_bytes(); }

}  // namespace eccm0::workloads
