#include "workloads/kp_mix.h"

#include <utility>

#include "asmkernels/gen.h"
#include "common/rng.h"
#include "ec/curve.h"
#include "gf2/sqr_table.h"
#include "workloads/registry.h"

namespace eccm0::workloads {

const ec::FieldOpCounts& kp_mix_sect233k1() {
  static const ec::FieldOpCounts kMix = [] {
    Rng rng(0x7AB1E4);
    const auto& k233 = ec::BinaryCurve::sect233k1();
    const ec::AffinePoint g = ec::AffinePoint::make(k233.gx, k233.gy);
    const mpint::UInt k = mpint::UInt::random_below(rng, k233.order);
    const ec::CostedRun costed =
        ec::cost_point_mul(k233, g, k, 4, false, ec::FieldCostTable{});
    return costed.main_ops + costed.precomp_ops;
  }();
  return kMix;
}

const KernelOperands& KernelOperands::standard() {
  static const KernelOperands kOps = [] {
    KernelOperands o;
    Rng rng(0x7151CA7);
    for (int w = 0; w < 8; ++w) {
      o.x[w] = static_cast<std::uint32_t>(rng.next_u64());
      o.y[w] = static_cast<std::uint32_t>(rng.next_u64());
      o.a[w] = static_cast<std::uint32_t>(rng.next_u64());
    }
    o.x[7] &= 0x1FF;  // keep operands in-field (233 bits)
    o.y[7] &= 0x1FF;
    o.a[7] &= 0x1FF;
    o.a[0] |= 1;  // inversion input must be nonzero
    return o;
  }();
  return kOps;
}

// Loaders go through poke32/poke16: harness setup must not charge
// wait-state cycles or advance the scrub clock on protected memory.
void load_mul_inputs(armvm::Memory& mem, const std::uint32_t (&x)[8],
                     const std::uint32_t (&y)[8]) {
  for (int w = 0; w < 8; ++w) {
    mem.poke32(armvm::kRamBase + asmkernels::kXOff + 4 * w, x[w]);
    mem.poke32(armvm::kRamBase + asmkernels::kYOff + 4 * w, y[w]);
  }
}

void load_sqr_table(armvm::Memory& mem) {
  for (unsigned i = 0; i < 256; ++i) {
    mem.poke16(armvm::kRamBase + asmkernels::kSqrTabOff + 2 * i,
               gf2::kSquareTable[i]);
  }
}

void load_sqr_input(armvm::Memory& mem, const std::uint32_t (&a)[8]) {
  for (int w = 0; w < 8; ++w) {
    mem.poke32(armvm::kRamBase + asmkernels::kInOff + 4 * w, a[w]);
  }
}

void load_inv_input(armvm::Memory& mem, const std::uint32_t (&a)[8]) {
  load_sqr_input(mem, a);  // same kInOff slot
}

void load_reduce_input(armvm::Memory& mem, const std::uint32_t (&wide)[16]) {
  for (int w = 0; w < 16; ++w) {
    mem.poke32(armvm::kRamBase + asmkernels::kWideOff + 4 * w, wide[w]);
  }
}

KernelMachine::KernelMachine(const std::string& kernel_name,
                             armvm::Cpu::DecodeMode mode,
                             const armvm::MemModelConfig& mem_model)
    : KernelMachine(kernel(kernel_name), mode, mem_model) {}

KernelMachine::KernelMachine(armvm::ProgramRef prog, armvm::Cpu::DecodeMode mode,
                             const armvm::MemModelConfig& mem_model)
    : prog_(std::move(prog)),
      mem_(kKernelRamSize, mem_model),
      cpu_(prog_, mem_, mode) {}

}  // namespace eccm0::workloads
