#include "workloads/registry.h"

#include <stdexcept>
#include <utility>

#include "armvm/asm.h"
#include "asmkernels/gen.h"

namespace eccm0::workloads {

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry r;
  return r;
}

KernelRegistry::KernelRegistry() {
  using namespace eccm0::asmkernels;
  entries_["mul"] = {[] { return gen_mul_fixed(true); }, nullptr};
  entries_["mul-raw"] = {[] { return gen_mul_fixed(false); }, nullptr};
  entries_["mul-plain"] = {[] { return gen_mul_plain(true); }, nullptr};
  entries_["mul-plain-raw"] = {[] { return gen_mul_plain(false); }, nullptr};
  entries_["sqr"] = {[] { return gen_sqr(); }, nullptr};
  entries_["reduce"] = {[] { return gen_reduce(); }, nullptr};
  entries_["lut"] = {[] { return gen_lut_only(); }, nullptr};
  entries_["inv"] = {[] { return gen_inv(); }, nullptr};
  entries_["mul163"] = {[] { return gen_mul_k163_fixed(true); }, nullptr};
  entries_["mul163-raw"] = {[] { return gen_mul_k163_fixed(false); }, nullptr};
  entries_["mul163-plain"] = {[] { return gen_mul_k163_plain(true); }, nullptr};
  entries_["mul163-plain-raw"] = {[] { return gen_mul_k163_plain(false); },
                                  nullptr};
}

armvm::ProgramRef KernelRegistry::get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("KernelRegistry: no workload named '" + name +
                            "'");
  }
  if (!it->second.image) {
    it->second.image = armvm::assemble(it->second.build());
  }
  return it->second.image;
}

void KernelRegistry::add(const std::string& name, Builder build) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(name)) {
    throw std::invalid_argument("KernelRegistry: duplicate workload '" + name +
                                "'");
  }
  entries_[name] = {std::move(build), nullptr};
}

bool KernelRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

std::vector<std::string> KernelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

armvm::ProgramRef kernel(const std::string& name) {
  return KernelRegistry::instance().get(name);
}

}  // namespace eccm0::workloads
