#include "workloads/registry.h"

#include <stdexcept>
#include <utility>

#include "armvm/asm.h"
#include "asmkernels/gen.h"

namespace eccm0::workloads {

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry r;
  return r;
}

KernelRegistry::KernelRegistry() {
  using namespace eccm0::asmkernels;
  const KernelInfo k233{"sect233k1", true, 8};
  const KernelInfo k163{"sect163k1", true, 6};
  entries_["mul"] = {[] { return gen_mul_fixed(true); }, nullptr, k233};
  entries_["mul-raw"] = {[] { return gen_mul_fixed(false); }, nullptr, k233};
  entries_["mul-plain"] = {[] { return gen_mul_plain(true); }, nullptr, k233};
  entries_["mul-plain-raw"] = {[] { return gen_mul_plain(false); }, nullptr,
                               k233};
  entries_["sqr"] = {[] { return gen_sqr(); }, nullptr, k233};
  entries_["reduce"] = {[] { return gen_reduce(); }, nullptr, k233};
  entries_["lut"] = {[] { return gen_lut_only(); }, nullptr, k233};
  entries_["inv"] = {[] { return gen_inv(); }, nullptr, k233};
  entries_["mul163"] = {[] { return gen_mul_k163_fixed(true); }, nullptr, k163};
  entries_["mul163-raw"] = {[] { return gen_mul_k163_fixed(false); }, nullptr,
                            k163};
  entries_["mul163-plain"] = {[] { return gen_mul_k163_plain(true); }, nullptr,
                              k163};
  entries_["mul163-plain-raw"] = {[] { return gen_mul_k163_plain(false); },
                                  nullptr, k163};
  // Prime-field kernel family: one Montgomery arithmetic set per secp
  // curve, named <tag>-<op> so WorkloadSpec can derive the set from the
  // curve tag alone.
  struct PrimeTag {
    const char* tag;
    const char* curve;
    unsigned n;
  };
  for (const PrimeTag& p : {PrimeTag{"p192", "secp192r1", 6},
                            PrimeTag{"p224", "secp224r1", 7},
                            PrimeTag{"p256", "secp256r1", 8}}) {
    const KernelInfo info{p.curve, false, p.n};
    const unsigned n = p.n;
    const std::string t = p.tag;
    entries_[t + "-mul"] = {[n] { return gen_prime_mul(n); }, nullptr, info};
    entries_[t + "-mont"] = {[n] { return gen_prime_mont(n, false); }, nullptr,
                             info};
    entries_[t + "-sqr"] = {[n] { return gen_prime_mont(n, true); }, nullptr,
                            info};
    entries_[t + "-redc"] = {[n] { return gen_prime_redc(n); }, nullptr, info};
    entries_[t + "-inv"] = {[n] { return gen_prime_inv(n); }, nullptr, info};
  }
}

armvm::ProgramRef KernelRegistry::get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("KernelRegistry: no workload named '" + name +
                            "'");
  }
  if (!it->second.image) {
    it->second.image = armvm::assemble(it->second.build());
  }
  return it->second.image;
}

void KernelRegistry::add(const std::string& name, Builder build,
                         KernelInfo info) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(name)) {
    throw std::invalid_argument("KernelRegistry: duplicate workload '" + name +
                                "'");
  }
  entries_[name] = {std::move(build), nullptr, std::move(info)};
}

bool KernelRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

KernelInfo KernelRegistry::info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("KernelRegistry: no workload named '" + name +
                            "'");
  }
  return it->second.info;
}

std::vector<std::string> KernelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

armvm::ProgramRef kernel(const std::string& name) {
  return KernelRegistry::instance().get(name);
}

}  // namespace eccm0::workloads
