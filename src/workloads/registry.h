// Central registry of named workload images.
//
// Every harness in this repo — KernelVm, the throughput/profile benches,
// the fault-campaign engine, ecctool — used to assemble its own copy of
// the same Thumb kernels. The registry builds each image exactly once,
// lazily, and hands out the shared immutable armvm::ProgramRef; a new
// workload is one `add()` call away. Resolution is thread-safe, so
// parallel campaign workers can resolve images concurrently.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "armvm/program.h"

namespace eccm0::workloads {

class KernelRegistry {
 public:
  /// A builder returns the assembler source of the workload; it runs at
  /// most once, on first resolution.
  using Builder = std::function<std::string()>;

  /// Process-wide instance, seeded with the built-in kernel set:
  ///   mul / mul-raw           fixed-register LD K-233 mul (mod / raw)
  ///   mul-plain / mul-plain-raw  plain-memory comparator
  ///   sqr, reduce, lut, inv   the remaining K-233 field kernels
  ///   mul163 / mul163-raw / mul163-plain / mul163-plain-raw  K-163
  static KernelRegistry& instance();

  /// Resolve `name` to its shared image, assembling+predecoding it on
  /// first use. Throws std::out_of_range for unknown names.
  armvm::ProgramRef get(const std::string& name);

  /// Register a new named workload. Throws std::invalid_argument if the
  /// name is already taken.
  void add(const std::string& name, Builder build);

  bool contains(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;

 private:
  KernelRegistry();

  struct Entry {
    Builder build;
    armvm::ProgramRef image;  ///< null until first get()
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Shorthand for KernelRegistry::instance().get(name).
armvm::ProgramRef kernel(const std::string& name);

}  // namespace eccm0::workloads
