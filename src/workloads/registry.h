// Central registry of named, curve-tagged workload images.
//
// Every harness in this repo — KernelVm, the throughput/profile benches,
// the fault-campaign engine, ecctool — used to assemble its own copy of
// the same Thumb kernels. The registry builds each image exactly once,
// lazily, and hands out the shared immutable armvm::ProgramRef; a new
// workload is one `add()` call away. Each entry carries a KernelInfo
// tag (curve name, field family, limb count) so curve-agnostic harnesses
// — WorkloadSpec, `ecctool kernels`, the campaign drivers — can select
// and describe kernels without hard-wiring a kernel list. Resolution is
// thread-safe, so parallel campaign workers can resolve images
// concurrently.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "armvm/program.h"

namespace eccm0::workloads {

/// Curve/field tag attached to every registry entry.
struct KernelInfo {
  std::string curve;         ///< e.g. "sect233k1", "secp192r1"; "" = untagged
  bool binary_field = true;  ///< GF(2^m) vs GF(p)
  unsigned limbs = 8;        ///< field-element words the kernel operates on
};

class KernelRegistry {
 public:
  /// A builder returns the assembler source of the workload; it runs at
  /// most once, on first resolution.
  using Builder = std::function<std::string()>;

  /// Process-wide instance, seeded with the built-in kernel set:
  ///   sect233k1 (binary): mul / mul-raw (fixed-register LD, mod / raw),
  ///     mul-plain / mul-plain-raw, sqr, reduce, lut, inv
  ///   sect163k1 (binary): mul163 / mul163-raw / -plain / -plain-raw
  ///   secp192r1/224r1/256r1 (prime): pNNN-mul (school-book raw),
  ///     pNNN-mont / pNNN-sqr (Montgomery mul/sqr), pNNN-redc, pNNN-inv
  static KernelRegistry& instance();

  /// Resolve `name` to its shared image, assembling+predecoding it on
  /// first use. Throws std::out_of_range for unknown names.
  armvm::ProgramRef get(const std::string& name);

  /// Register a new named workload with its curve tag. Throws
  /// std::invalid_argument if the name is already taken.
  void add(const std::string& name, Builder build, KernelInfo info = {});

  bool contains(const std::string& name) const;
  /// Curve/field tag of a registered workload. Throws std::out_of_range
  /// for unknown names.
  KernelInfo info(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;

 private:
  KernelRegistry();

  struct Entry {
    Builder build;
    armvm::ProgramRef image;  ///< null until first get()
    KernelInfo info;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Shorthand for KernelRegistry::instance().get(name).
armvm::ProgramRef kernel(const std::string& name);

}  // namespace eccm0::workloads
