// Curve-agnostic workload descriptions.
//
// A WorkloadSpec bundles everything a harness needs to run a field-level
// workload on the VM without knowing which curve family it came from:
// the registry kernel names, the deterministic operand recipe, the
// expected field-op mix of the transaction, and the curve/field tag.
// kp_mix_sect233k1() generalizes here to op_mix(curve) over both field
// families, and the protocol transactions (a complete ECDH agreement,
// an ECDSA sign+verify) become replayable specs, so the campaigns, the
// sca rig, the profiler and the benches all operate on one abstraction
// instead of the historical gf2-only kernel list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "armvm/cpu.h"
#include "ec/ops.h"
#include "workloads/kp_mix.h"

namespace eccm0::ecp {
struct PrimeCurve;
}

namespace eccm0::workloads {

/// A curve the workload layer can drive end-to-end (kernels registered,
/// operand recipe known, host oracle available).
struct CurveRef {
  std::string name;          ///< "sect233k1", "secp192r1", ...
  bool binary_field = true;  ///< GF(2^m) vs GF(p)
  unsigned bits = 0;
  unsigned limbs = 0;
  /// Registry prefix of the prime kernel family ("p192"...); empty for
  /// the binary curves whose kernels keep their historical names.
  std::string kernel_tag;
};

/// Resolve a --curve= value. Throws std::invalid_argument (listing the
/// known names) for unknown curves — the benches map that to exit 2.
const CurveRef& curve_from_name(const std::string& name);

/// Names accepted by curve_from_name, sorted.
std::vector<std::string> workload_curve_names();

/// The host ecp::PrimeCurve backing a prime-field CurveRef (oracle,
/// Montgomery context, generator). Throws std::invalid_argument for
/// binary curves.
const ecp::PrimeCurve& prime_curve(const CurveRef& curve);

/// Field-op counts of one real w=4 point multiplication on `curve`
/// (wTNAF on the binary side, Jacobian wNAF via ecp on the prime side),
/// derived once per curve from the shared mix seed 0x7AB1E4 and cached.
/// For sect233k1 this is exactly kp_mix_sect233k1().
const ec::FieldOpCounts& op_mix(const CurveRef& curve);

/// A replayable workload: kernels + operands + expected op mix.
struct WorkloadSpec {
  std::string name;         ///< e.g. "kp-secp192r1", "ecdh-sect233k1"
  CurveRef curve;
  std::string transaction;  ///< "kp" | "ecdh" | "ecdsa"
  /// Scalar multiplications in one transaction: kP = 1, ECDH agreement
  /// (keygen kG + shared-secret kP, one party) = 2, ECDSA sign+verify
  /// (nonce kG + u1*G + u2*Q) = 3.
  unsigned point_muls = 1;
  /// Registry kernel names replayed for the mix's mul/sqr/inv counts.
  std::string mul_kernel, sqr_kernel, inv_kernel;
  /// Total field-op mix of the transaction (order-field host arithmetic
  /// — hashing, the ECDSA mod-n algebra — is outside the VM budget, as
  /// in the paper's energy accounting).
  ec::FieldOpCounts ops;
};

/// Build the kP / ECDH / ECDSA spec for a curve. `transaction` must be
/// one of "kp", "ecdh", "ecdsa"; throws std::invalid_argument otherwise
/// (and for unknown curves).
WorkloadSpec make_workload(const std::string& transaction,
                           const std::string& curve_name);
WorkloadSpec kp_workload(const std::string& curve_name);
WorkloadSpec ecdh_workload(const std::string& curve_name);
WorkloadSpec ecdsa_workload(const std::string& curve_name);

/// Deterministic prime-kernel operands (per-curve, seed 0x7151CA7 like
/// KernelOperands::standard): x, y are in-field Montgomery-domain
/// multiplication inputs, a is a nonzero plain-domain inversion input,
/// wide is a 2n-word REDC input < m*R.
struct PrimeOperands {
  std::vector<std::uint32_t> x, y, a, wide;
  static const PrimeOperands& standard(const CurveRef& curve);
};

/// Loaders for the prime kernels' RAM layout (modulus block + operand
/// slots; poke, so no wait-state charges on protected memory).
void load_prime_modulus(armvm::Memory& mem, const CurveRef& curve);
void load_prime_mul_inputs(armvm::Memory& mem,
                           const std::vector<std::uint32_t>& x,
                           const std::vector<std::uint32_t>& y);
void load_prime_inv_input(armvm::Memory& mem,
                          const std::vector<std::uint32_t>& a);
void load_prime_wide_input(armvm::Memory& mem,
                           const std::vector<std::uint32_t>& wide);

/// Replay result: accumulated VM stats over every kernel call of the
/// spec, plus an order-sensitive digest of all kernel-output words (the
/// engine-equivalence witness).
struct ReplayResult {
  armvm::RunStats stats;
  std::uint64_t output_digest = 0;
  std::uint64_t fused_retired = 0;
};

/// A spec's three kernel images, pre-resolved from the KernelRegistry.
/// This is the per-worker registry shard of the serve front-end: each
/// service worker resolves the images it needs once, so the request hot
/// path never takes the registry mutex, and every replay over the same
/// shard shares the same immutable Program images.
struct ReplayImages {
  armvm::ProgramRef mul, sqr, inv;
  static ReplayImages resolve(const WorkloadSpec& spec);
};

/// Run the spec's field-op mix as one VM workload (mul/sqr/inv kernel
/// calls in mix order), `reps` times. Deterministic: same spec, mode
/// and mem model give bit-identical stats and digest.
ReplayResult replay(const WorkloadSpec& spec, armvm::Cpu::DecodeMode mode,
                    const armvm::MemModelConfig& mem_model = {},
                    unsigned reps = 1);

/// replay() over pre-resolved images — bit-identical to the registry
/// path by construction (the registry hands out the same ProgramRefs).
ReplayResult replay(const WorkloadSpec& spec, const ReplayImages& images,
                    armvm::Cpu::DecodeMode mode,
                    const armvm::MemModelConfig& mem_model = {},
                    unsigned reps = 1);

}  // namespace eccm0::workloads
