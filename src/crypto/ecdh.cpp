#include "crypto/ecdh.h"

#include <stdexcept>

#include "common/secure_wipe.h"

namespace eccm0::crypto {

using ec::AffinePoint;
using ec::CurveOps;
using mpint::UInt;

Ecdh::Ecdh(const ec::BinaryCurve& curve) : curve_(&curve) {
  CurveOps ops(curve);
  g_table_ =
      ec::make_wtnaf_table(ops, AffinePoint::make(curve.gx, curve.gy), 6);
}

UInt Ecdh::random_scalar(HmacDrbg& rng) const {
  const std::size_t bytes = (curve_->order.bit_length() + 15) / 8;
  for (;;) {
    std::vector<std::uint8_t> buf(bytes);
    rng.generate(buf);
    // Big-endian bytes -> UInt, then reject out-of-range values. The
    // raw bytes are scalar material; wipe them once converted.
    UInt v;
    for (std::uint8_t b : buf) v = (v << 8) + UInt{b};
    common::secure_wipe(buf);
    v = v % curve_->order;
    if (!v.is_zero()) return v;
    v.wipe();
  }
}

KeyPair Ecdh::generate(HmacDrbg& rng) const {
  const UInt d = random_scalar(rng);
  CurveOps ops(*curve_);
  return {d, ec::mul_wtnaf(ops, g_table_, d)};
}

AffinePoint Ecdh::shared_point(const UInt& d, const AffinePoint& peer) const {
  CurveOps ops(*curve_);
  return ec::mul_wtnaf(ops, peer, d, 4);
}

Digest Ecdh::shared_secret(const UInt& d, const AffinePoint& peer) const {
  const AffinePoint p = shared_point(d, peer);
  if (p.inf) {
    // Contributory behaviour: reject degenerate agreements loudly.
    throw std::invalid_argument("Ecdh: degenerate shared point");
  }
  // KDF(x) = SHA-256 over the big-endian x-coordinate. The hex image of
  // the shared x is itself the secret; wipe it after hashing.
  std::string hex = curve_->f().to_hex(p.x);
  const Digest out = Sha256::hash(hex);
  common::secure_wipe(hex);
  return out;
}

bool Ecdh::valid_public_key(const AffinePoint& q) const {
  if (q.inf) return false;
  CurveOps ops(*curve_);
  if (!ops.on_curve(q)) return false;
  return ec::mul_wtnaf(ops, q, curve_->order, 4).inf;
}

}  // namespace eccm0::crypto
