#include "crypto/ecdsa.h"

#include <stdexcept>
#include <vector>

namespace eccm0::crypto {

using ec::AffinePoint;
using ec::CurveOps;
using mpint::UInt;

Ecdsa::Ecdsa(const ec::BinaryCurve& curve) : ecdh_(curve) {}

UInt Ecdsa::hash_to_int(std::string_view msg) const {
  const Digest h = Sha256::hash(msg);
  UInt e;
  for (std::uint8_t b : h) e = (e << 8) + UInt{b};
  const std::size_t nbits = curve().order.bit_length();
  if (256 > nbits) e = e >> (256 - nbits);
  return e % curve().order;
}

UInt Ecdsa::x_mod_n(const AffinePoint& p) const {
  const auto& f = curve().f();
  std::vector<Word> limbs(p.x.begin(), p.x.begin() + f.words());
  return UInt{std::move(limbs)} % curve().order;
}

Signature Ecdsa::sign(const UInt& d, std::string_view msg) const {
  const UInt& n = curve().order;
  const UInt e = hash_to_int(msg);
  // Deterministic nonce stream seeded with d || H(m).
  std::vector<std::uint8_t> seed;
  for (char c : d.to_hex()) seed.push_back(static_cast<std::uint8_t>(c));
  const Digest h = Sha256::hash(msg);
  seed.insert(seed.end(), h.begin(), h.end());
  HmacDrbg drbg(seed);
  CurveOps ops(curve());
  const AffinePoint g = AffinePoint::make(curve().gx, curve().gy);
  for (;;) {
    const UInt k = ecdh_.random_scalar(drbg);
    const AffinePoint kg = ec::mul_wtnaf(ops, g, k, 6);
    if (kg.inf) continue;
    const UInt r = x_mod_n(kg);
    if (r.is_zero()) continue;
    const UInt s =
        mulmod(invmod(k, n), addmod(e, mulmod(r, d, n), n), n);
    if (s.is_zero()) continue;
    return {r, s};
  }
}

bool Ecdsa::verify(const AffinePoint& q, std::string_view msg,
                   const Signature& sig) const {
  const UInt& n = curve().order;
  if (sig.r.is_zero() || sig.s.is_zero() || sig.r >= n || sig.s >= n) {
    return false;
  }
  CurveOps ops(curve());
  if (q.inf || !ops.on_curve(q)) return false;
  const UInt e = hash_to_int(msg);
  const UInt w = invmod(sig.s, n);
  const UInt u1 = mulmod(e, w, n);
  const UInt u2 = mulmod(sig.r, w, n);
  const AffinePoint g = AffinePoint::make(curve().gx, curve().gy);
  const AffinePoint p =
      ops.add(ec::mul_wtnaf(ops, g, u1, 4), ec::mul_wtnaf(ops, q, u2, 4));
  if (p.inf) return false;
  return x_mod_n(p) == sig.r;
}

}  // namespace eccm0::crypto
