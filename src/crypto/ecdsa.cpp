#include "crypto/ecdsa.h"

#include <stdexcept>
#include <vector>

#include "common/secure_wipe.h"
#include "ec/protect.h"

namespace eccm0::crypto {

using ec::AffinePoint;
using ec::CurveOps;
using mpint::UInt;

Ecdsa::Ecdsa(const ec::BinaryCurve& curve) : ecdh_(curve) {}

UInt Ecdsa::hash_to_int(std::string_view msg) const {
  const Digest h = Sha256::hash(msg);
  UInt e;
  for (std::uint8_t b : h) e = (e << 8) + UInt{b};
  const std::size_t nbits = curve().order.bit_length();
  if (256 > nbits) e = e >> (256 - nbits);
  return e % curve().order;
}

UInt Ecdsa::x_mod_n(const AffinePoint& p) const {
  const auto& f = curve().f();
  std::vector<Word> limbs(p.x.begin(), p.x.begin() + f.words());
  return UInt{std::move(limbs)} % curve().order;
}

Signature Ecdsa::sign(const UInt& d, std::string_view msg,
                      const SignOpts& opts) const {
  const UInt& n = curve().order;
  const UInt e = hash_to_int(msg);
  // Deterministic nonce stream seeded with d || H(m). The seed embeds
  // the private key, so it is wiped the moment the DRBG has absorbed it.
  std::string d_hex = d.to_hex();
  std::vector<std::uint8_t> seed;
  for (char c : d_hex) seed.push_back(static_cast<std::uint8_t>(c));
  common::secure_wipe(d_hex);
  const Digest h = Sha256::hash(msg);
  seed.insert(seed.end(), h.begin(), h.end());
  HmacDrbg drbg(seed);
  common::secure_wipe(seed);
  CurveOps ops(curve());
  if (tamper_) ops.set_mul_tamper(tamper_);
  const AffinePoint g = AffinePoint::make(curve().gx, curve().gy);
  for (;;) {
    // Per-signature secrets: the nonce k and its inverse are wiped on
    // every exit from the loop body — leaking either reveals d.
    UInt k = ecdh_.random_scalar(drbg);
    const AffinePoint kg = ec::mul_wtnaf(ops, g, k, 6);
    if (kg.inf) {
      k.wipe();
      continue;
    }
    const UInt r = x_mod_n(kg);
    if (r.is_zero()) {
      k.wipe();
      continue;
    }
    UInt kinv = invmod(k, n);
    k.wipe();
    const UInt s = mulmod(kinv, addmod(e, mulmod(r, d, n), n), n);
    kinv.wipe();
    if (s.is_zero()) continue;
    const Signature sig{r, s};
    if (opts.coherence_check) {
      // Verify-after-sign against Q = d*G: a fault anywhere in the
      // pipeline above produces a signature that cannot verify, so the
      // faulty value is refused instead of released.
      CurveOps clean(curve());
      const AffinePoint q = ec::mul_wtnaf(clean, g, d, 6);
      if (!verify(q, msg, sig)) {
        throw ec::FaultDetectedError(
            ec::FaultDetectedError::Check::kSignCoherence,
            "Ecdsa::sign: signature failed verify-after-sign");
      }
    }
    return sig;
  }
}

bool Ecdsa::verify(const AffinePoint& q, std::string_view msg,
                   const Signature& sig) const {
  const UInt& n = curve().order;
  if (sig.r.is_zero() || sig.s.is_zero() || sig.r >= n || sig.s >= n) {
    return false;
  }
  CurveOps ops(curve());
  if (q.inf || !ops.on_curve(q)) return false;
  const UInt e = hash_to_int(msg);
  const UInt w = invmod(sig.s, n);
  const UInt u1 = mulmod(e, w, n);
  const UInt u2 = mulmod(sig.r, w, n);
  const AffinePoint g = AffinePoint::make(curve().gx, curve().gy);
  const AffinePoint p =
      ops.add(ec::mul_wtnaf(ops, g, u1, 4), ec::mul_wtnaf(ops, q, u2, 4));
  if (p.inf) return false;
  return x_mod_n(p) == sig.r;
}

}  // namespace eccm0::crypto
