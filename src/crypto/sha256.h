// SHA-256 (FIPS 180-4). Substrate for HMAC, the deterministic-nonce DRBG
// and ECDSA message digests — the symmetric half of the hybrid
// cryptosystem the paper's introduction motivates.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace eccm0::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  /// Finalizes; the object must be reset() before reuse.
  Digest finish();

  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view s);

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
  std::uint64_t total_ = 0;
};

std::string to_hex(const Digest& d);

}  // namespace eccm0::crypto
