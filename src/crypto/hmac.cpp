#include "crypto/hmac.h"

#include <algorithm>

namespace eccm0::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> msg) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const Digest d = Sha256::hash(key);
    std::copy(d.begin(), d.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  std::array<std::uint8_t, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(msg);
  const Digest id = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(id);
  return outer.finish();
}

HmacDrbg::HmacDrbg(std::span<const std::uint8_t> seed) {
  k_.fill(0x00);
  v_.fill(0x01);
  update(seed);
}

void HmacDrbg::update(std::span<const std::uint8_t> material) {
  // K = HMAC(K, V || 0x00 || material); V = HMAC(K, V); then with 0x01 if
  // material is non-empty.
  for (std::uint8_t sep : {std::uint8_t{0x00}, std::uint8_t{0x01}}) {
    std::vector<std::uint8_t> data(v_.begin(), v_.end());
    data.push_back(sep);
    data.insert(data.end(), material.begin(), material.end());
    const Digest nk = hmac_sha256(k_, data);
    std::copy(nk.begin(), nk.end(), k_.begin());
    const Digest nv = hmac_sha256(k_, v_);
    std::copy(nv.begin(), nv.end(), v_.begin());
    if (material.empty()) break;
  }
}

void HmacDrbg::generate(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    const Digest nv = hmac_sha256(k_, v_);
    std::copy(nv.begin(), nv.end(), v_.begin());
    const std::size_t n = std::min<std::size_t>(32, out.size() - off);
    std::copy_n(v_.begin(), n, out.begin() + static_cast<std::ptrdiff_t>(off));
    off += n;
  }
  update({});
}

void HmacDrbg::reseed(std::span<const std::uint8_t> material) {
  update(material);
}

}  // namespace eccm0::crypto
