// HMAC-SHA256 (RFC 2104) and HMAC-DRBG (SP 800-90A style) — deterministic
// key/nonce generation for the ECC layer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.h"

namespace eccm0::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> msg);

/// Deterministic byte generator: HMAC-DRBG without the optional
/// personalization/reseed machinery the paper's use cases don't need.
class HmacDrbg {
 public:
  explicit HmacDrbg(std::span<const std::uint8_t> seed);

  /// Fill `out` with pseudorandom bytes.
  void generate(std::span<std::uint8_t> out);
  /// Mix additional entropy/material into the state.
  void reseed(std::span<const std::uint8_t> material);

 private:
  void update(std::span<const std::uint8_t> material);

  std::array<std::uint8_t, 32> k_;
  std::array<std::uint8_t, 32> v_;
};

}  // namespace eccm0::crypto
