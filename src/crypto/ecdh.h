// ECDH key agreement over a Koblitz binary curve — the paper's target
// workload: PKC for key exchange in a hybrid WSN cryptosystem, with kG
// (fixed-point, w=6) for key generation and kP (random-point, w=4) for
// the shared secret.
#pragma once

#include "crypto/hmac.h"
#include "ec/curve.h"
#include "ec/scalarmul.h"
#include "mpint/uint.h"

namespace eccm0::crypto {

struct KeyPair {
  mpint::UInt d;       ///< private scalar in [1, n-1]
  ec::AffinePoint q;   ///< public point d*G
};

class Ecdh {
 public:
  explicit Ecdh(const ec::BinaryCurve& curve = ec::BinaryCurve::sect233k1());

  const ec::BinaryCurve& curve() const { return *curve_; }

  /// Uniform private scalar in [1, n-1] from the DRBG.
  mpint::UInt random_scalar(HmacDrbg& rng) const;
  /// Key generation: fixed-point multiplication (paper kG path, w = 6).
  KeyPair generate(HmacDrbg& rng) const;
  /// Raw shared point: d * peer (paper kP path, w = 4).
  ec::AffinePoint shared_point(const mpint::UInt& d,
                               const ec::AffinePoint& peer) const;
  /// KDF(x-coordinate): the symmetric key both sides derive.
  Digest shared_secret(const mpint::UInt& d,
                       const ec::AffinePoint& peer) const;
  /// Public-key validation: on curve, not infinity, n*Q = infinity.
  bool valid_public_key(const ec::AffinePoint& q) const;

 private:
  const ec::BinaryCurve* curve_;
  ec::WtnafTable g_table_;  ///< w = 6 precomputation for G (offline)
};

}  // namespace eccm0::crypto
