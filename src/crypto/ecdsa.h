// ECDSA over Koblitz binary curves with deterministic nonces
// (RFC 6979-style: the nonce is derived from the key and message through
// HMAC-DRBG, so no on-node entropy source is required — the realistic
// choice for the paper's sensor-node setting).
#pragma once

#include <string_view>

#include "crypto/ecdh.h"

namespace eccm0::crypto {

struct Signature {
  mpint::UInt r;
  mpint::UInt s;
};

class Ecdsa {
 public:
  explicit Ecdsa(const ec::BinaryCurve& curve = ec::BinaryCurve::sect233k1());

  const ec::BinaryCurve& curve() const { return ecdh_.curve(); }

  KeyPair generate(HmacDrbg& rng) const { return ecdh_.generate(rng); }

  Signature sign(const mpint::UInt& d, std::string_view msg) const;
  bool verify(const ec::AffinePoint& q, std::string_view msg,
              const Signature& sig) const;

 private:
  /// Leftmost order-bits of SHA-256(msg) as an integer mod n.
  mpint::UInt hash_to_int(std::string_view msg) const;
  /// x-coordinate of a point as an integer mod n.
  mpint::UInt x_mod_n(const ec::AffinePoint& p) const;

  Ecdh ecdh_;
};

}  // namespace eccm0::crypto
