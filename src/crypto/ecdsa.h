// ECDSA over Koblitz binary curves with deterministic nonces
// (RFC 6979-style: the nonce is derived from the key and message through
// HMAC-DRBG, so no on-node entropy source is required — the realistic
// choice for the paper's sensor-node setting).
#pragma once

#include <string_view>

#include "crypto/ecdh.h"

namespace eccm0::crypto {

struct Signature {
  mpint::UInt r;
  mpint::UInt s;
};

/// Hardening knobs for sign().
struct SignOpts {
  /// Verify the freshly produced signature against Q = d*G before
  /// releasing it (verify-after-sign). A fault anywhere in the signing
  /// computation — nonce multiplication, modular arithmetic — yields a
  /// signature that fails its own verification, so the faulty value
  /// never leaves the node (Bellcore-style fault attacks need it to).
  /// Costs roughly one extra verify (~2 scalar multiplications).
  bool coherence_check = false;
};

class Ecdsa {
 public:
  explicit Ecdsa(const ec::BinaryCurve& curve = ec::BinaryCurve::sect233k1());

  const ec::BinaryCurve& curve() const { return ecdh_.curve(); }

  KeyPair generate(HmacDrbg& rng) const { return ecdh_.generate(rng); }

  /// Throws ec::FaultDetectedError (kSignCoherence) when
  /// opts.coherence_check is set and the signature fails verify-after-sign.
  Signature sign(const mpint::UInt& d, std::string_view msg,
                 const SignOpts& opts = {}) const;
  bool verify(const ec::AffinePoint& q, std::string_view msg,
              const Signature& sig) const;

  /// Fault-injection seam: tamper hook installed on the CurveOps that
  /// sign() uses for its nonce multiplication k*G. Testing only.
  void set_mul_tamper(ec::CurveOps::MulTamper t) { tamper_ = std::move(t); }

 private:
  /// Leftmost order-bits of SHA-256(msg) as an integer mod n.
  mpint::UInt hash_to_int(std::string_view msg) const;
  /// x-coordinate of a point as an integer mod n.
  mpint::UInt x_mod_n(const ec::AffinePoint& p) const;

  Ecdh ecdh_;
  ec::CurveOps::MulTamper tamper_;
};

}  // namespace eccm0::crypto
