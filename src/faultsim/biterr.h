// Bernoulli bit-error injection over a Memory's physical storage.
//
// Models low-voltage SRAM retention failures: every *storage* bit — the
// 32 data bits of every word plus whatever check bits the attached
// memory model adds (33 for parity, 39 for SECDED) — flips
// independently with probability `ber`. Injection happens at load time,
// before the VM runs, so the per-step / predecoded / threaded engines
// all execute against the same corrupted image and stay bit-identical.
//
// Determinism contract: the flip pattern is a pure function of the Rng
// stream handed in (campaigns pass an Rng::split per run), and the
// Bernoulli draw is an integer threshold compare on the top 53 bits of
// each SplitMix64 output — no libm, so committed campaign baselines are
// byte-identical across platforms.
#pragma once

#include <cstdint>

#include "armvm/cpu.h"
#include "common/rng.h"

namespace eccm0::faultsim {

struct BitErrorStats {
  std::uint64_t flipped_bits = 0;
  std::uint64_t words_touched = 0;  ///< words with at least one flip
  std::uint64_t storage_bits = 0;   ///< bits examined (words x bits/word)
};

/// Flip each storage bit of `mem` with probability `ber` (clamped to
/// [0, 1]; rates below 2^-53 never fire). Draws exactly
/// words x storage_bits_per_word() variates from `rng` regardless of
/// how many flips land, so consumers can rely on the stream position.
BitErrorStats inject_bit_errors(armvm::Memory& mem, double ber, Rng& rng);

}  // namespace eccm0::faultsim
