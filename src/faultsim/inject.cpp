#include "faultsim/inject.h"

#include <utility>
#include <vector>

#include "armvm/codec.h"
#include "armvm/isa.h"

namespace eccm0::faultsim {

const char* fault_model_name(FaultModel m) {
  switch (m) {
    case FaultModel::kRegisterFlip: return "register-flip";
    case FaultModel::kRamFlip: return "ram-flip";
    case FaultModel::kInstructionSkip: return "instruction-skip";
    case FaultModel::kOpcodeFlip: return "opcode-flip";
  }
  return "unknown-model";
}

FaultSpec sample_spec(Rng& rng, FaultModel model, std::uint64_t max_index,
                      std::uint32_t ram_words) {
  FaultSpec s;
  s.model = model;
  s.index = max_index == 0 ? 0 : rng.next_below(max_index);
  switch (model) {
    case FaultModel::kRegisterFlip:
      s.reg = static_cast<unsigned>(rng.next_below(16));
      s.bit = static_cast<unsigned>(rng.next_below(32));
      break;
    case FaultModel::kRamFlip:
      s.ram_word = static_cast<std::uint32_t>(rng.next_below(ram_words));
      s.bit = static_cast<unsigned>(rng.next_below(32));
      break;
    case FaultModel::kInstructionSkip:
      break;
    case FaultModel::kOpcodeFlip:
      s.bit = static_cast<unsigned>(rng.next_below(16));
      break;
  }
  return s;
}

namespace {

/// Apply `spec` to the stopped core. `extra` accumulates instructions and
/// cycles retired outside the main core (the opcode-flip model executes
/// the corrupted instruction on a scratch core). Returns false when the
/// injected instruction itself halted the program.
bool apply_fault(armvm::Cpu& cpu, armvm::Memory& ram,
                 const armvm::Program& prog, const FaultSpec& spec,
                 std::uint64_t& extra_instructions,
                 std::uint64_t& extra_cycles) {
  switch (spec.model) {
    case FaultModel::kRegisterFlip:
      cpu.set_reg(spec.reg, cpu.reg(spec.reg) ^ (1u << spec.bit));
      return true;
    case FaultModel::kRamFlip: {
      const std::uint32_t addr = armvm::kRamBase + 4u * spec.ram_word;
      ram.store32(addr, ram.load32(addr) ^ (1u << spec.bit));
      return true;
    }
    case FaultModel::kInstructionSkip: {
      const std::uint32_t pc = cpu.reg(armvm::kPC);
      const std::size_t idx = pc / 2;
      unsigned halfwords = 1;
      if (pc % 2 == 0 && idx < prog.code().size()) {
        try {
          halfwords = armvm::decode(prog.code(), idx).halfwords;
        } catch (const armvm::Fault&) {
          // Skipping an undecodable slot: glitch past one halfword.
        }
      }
      cpu.set_reg(armvm::kPC, pc + 2u * halfwords);
      return true;
    }
    case FaultModel::kOpcodeFlip: {
      const std::uint32_t pc = cpu.reg(armvm::kPC);
      const std::size_t idx = pc / 2;
      if (pc % 2 != 0 || idx >= prog.code().size()) {
        // PC already derailed; the next step faults on its own.
        return true;
      }
      // The corruption is transient (one fetch), so the pristine
      // predecode cache of the main core must not see it: execute the
      // one corrupted instruction on a scratch per-step core sharing
      // RAM, then hand the architectural state back.
      std::vector<std::uint16_t> corrupted = prog.code();
      corrupted[idx] = static_cast<std::uint16_t>(
          corrupted[idx] ^ (1u << spec.bit));
      armvm::Cpu scratch(std::move(corrupted), ram,
                         armvm::Cpu::DecodeMode::kPerStep);
      scratch.set_arch_state(cpu.arch_state());
      const bool running = scratch.step();  // typed Fault => crash
      cpu.set_arch_state(scratch.arch_state());
      extra_instructions += scratch.stats().instructions;
      extra_cycles += scratch.stats().cycles;
      return running;
    }
  }
  return true;
}

}  // namespace

/// Shared tail of the replayed and forked paths: `cpu` is already
/// positioned (at reset, or at a restored checkpoint); step to the
/// trigger if it is still ahead, apply the fault, run to halt/crash.
InjectedRun resume_with_fault(armvm::Cpu& cpu, armvm::Memory& ram,
                              const armvm::Program& prog,
                              const FaultSpec& spec,
                              std::uint64_t max_instructions) {
  InjectedRun out;
  std::uint64_t extra_instructions = 0;
  std::uint64_t extra_cycles = 0;
  try {
    bool running = true;
    while (running && cpu.stats().instructions < spec.index) {
      running = cpu.step();
    }
    if (running) {
      out.injected = true;
      running = apply_fault(cpu, ram, prog, spec, extra_instructions,
                            extra_cycles);
    }
    while (running) {
      if (cpu.stats().instructions + extra_instructions > max_instructions) {
        // Watchdog: a fault that sends the core into an endless loop is
        // observable on a real node as a reset, not a wrong answer.
        armvm::BudgetFault f("faultsim: watchdog budget exceeded",
                             cpu.reg(armvm::kPC));
        f.attach_state(cpu.arch_state());
        throw f;
      }
      running = cpu.step();
    }
  } catch (const armvm::Fault& f) {
    out.outcome = RunOutcome::kCrashed;
    out.fault_kind = f.kind();
    out.fault_message = f.message();
    if (f.has_state()) out.fault_state = f.state();
  }
  out.instructions = cpu.stats().instructions + extra_instructions;
  out.cycles = cpu.stats().cycles + extra_cycles;
  return out;
}

InjectedRun run_with_fault(const armvm::ProgramRef& prog, armvm::Memory& ram,
                           const FaultSpec& spec,
                           std::uint64_t max_instructions,
                           armvm::Cpu::DecodeMode engine) {
  armvm::Cpu cpu(prog, ram, engine);
  cpu.set_reg(armvm::kLR, armvm::kReturnSentinel);
  cpu.set_reg(armvm::kPC, prog->entry("entry"));
  return resume_with_fault(cpu, ram, *prog, spec, max_instructions);
}

armvm::MachineSnapshot checkpoint_at(const armvm::ProgramRef& prog,
                                     armvm::Memory& ram, std::uint64_t index,
                                     armvm::Cpu::DecodeMode engine) {
  armvm::Cpu cpu(prog, ram, engine);
  cpu.set_reg(armvm::kLR, armvm::kReturnSentinel);
  cpu.set_reg(armvm::kPC, prog->entry("entry"));
  bool running = true;
  while (running && cpu.stats().instructions < index) {
    running = cpu.step();
  }
  return cpu.snapshot();
}

InjectedRun run_with_fault_forked(const armvm::ProgramRef& prog,
                                  armvm::Memory& ram,
                                  const armvm::MachineSnapshot& at_injection,
                                  const FaultSpec& spec,
                                  std::uint64_t max_instructions,
                                  armvm::Cpu::DecodeMode engine) {
  armvm::Cpu cpu(prog, ram, engine);
  cpu.restore(at_injection);
  return resume_with_fault(cpu, ram, *prog, spec, max_instructions);
}

}  // namespace eccm0::faultsim
