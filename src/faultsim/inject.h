// Deterministic fault injection on the armvm core.
//
// A fault campaign needs three things: a typed vocabulary of what can go
// wrong (FaultModel/FaultSpec), a way to run a Thumb program with exactly
// one seeded fault applied at a chosen retirement index (run_with_fault),
// and a classification of how the run ended (InjectedRun). Everything is
// driven by explicit seeds — the same FaultSpec on the same program and
// memory image always produces the same outcome, so campaigns replay
// bit-for-bit.
//
// The injector leans on the typed armvm::Fault hierarchy: a fault that
// derails the core surfaces as a BusFault / AlignmentFault / DecodeFault
// (or BudgetFault via the watchdog budget), each carrying the
// architectural state at the crash.
#pragma once

#include <cstdint>
#include <string>

#include "armvm/asm.h"
#include "armvm/cpu.h"
#include "common/rng.h"

namespace eccm0::faultsim {

/// Physical fault models, in rough order of attacker capability.
enum class FaultModel : std::uint8_t {
  kRegisterFlip,     ///< flip one bit of one core register
  kRamFlip,          ///< flip one bit of one RAM word
  kInstructionSkip,  ///< skip exactly one instruction (clock glitch)
  kOpcodeFlip,       ///< flip one bit of the fetched opcode (transient)
};
inline constexpr unsigned kNumFaultModels = 4;
const char* fault_model_name(FaultModel m);

/// One concrete injection: `model` applied just before the instruction
/// with retirement index `index` executes.
struct FaultSpec {
  FaultModel model = FaultModel::kRegisterFlip;
  std::uint64_t index = 0;    ///< retirement index of the injection point
  unsigned reg = 0;           ///< kRegisterFlip: target register (0..15)
  unsigned bit = 0;           ///< bit to flip (0..31 reg/ram, 0..15 opcode)
  std::uint32_t ram_word = 0; ///< kRamFlip: word offset from RAM base
};

/// Draw a uniform FaultSpec for `model` with the injection point in
/// [0, max_index) and RAM targets in [0, ram_words).
FaultSpec sample_spec(Rng& rng, FaultModel model, std::uint64_t max_index,
                      std::uint32_t ram_words);

enum class RunOutcome : std::uint8_t {
  kCompleted,  ///< ran to its BX LR / halt — result may still be wrong
  kCrashed,    ///< raised an armvm::Fault (or tripped the watchdog budget)
};

/// What happened to one injected run.
struct InjectedRun {
  RunOutcome outcome = RunOutcome::kCompleted;
  /// False when the program retired fewer than `spec.index` instructions,
  /// i.e. the fault window closed before the trigger fired.
  bool injected = false;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  // Crash details (outcome == kCrashed).
  armvm::FaultKind fault_kind = armvm::FaultKind::kBusFault;
  std::string fault_message;
  armvm::ArchState fault_state;
};

/// Execute `prog` (entry label "entry", no arguments) against `ram`,
/// applying `spec` at its trigger point. Never throws for architectural
/// faults — they are the experiment, and come back classified.
///
/// `engine` selects the execution engine of the injected core (the
/// `--engine=` flag of the campaign harnesses). The injector always
/// retires one instruction per step — the trigger is a retirement
/// index, and the watchdog counts between retirements — so outcomes
/// are bit-identical across engines; the engine choice A/Bs the decode
/// path (per-step decode vs the shared predecode cache).
InjectedRun run_with_fault(
    const armvm::ProgramRef& prog, armvm::Memory& ram, const FaultSpec& spec,
    std::uint64_t max_instructions = 1'000'000,
    armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode);

/// Capture the fault-window checkpoint: a fresh run of `prog` (entry
/// label "entry") stepped cleanly to retirement index `index` — or to
/// completion, if the program is shorter — snapshotted there. A clean
/// program is assumed; architectural faults before the checkpoint
/// propagate. `ram` holds the program's input image and is consumed by
/// the stepping.
armvm::MachineSnapshot checkpoint_at(
    const armvm::ProgramRef& prog, armvm::Memory& ram, std::uint64_t index,
    armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode);

/// Fork a checkpointed run: restore `at_injection` (taken by
/// checkpoint_at at spec.index) into a fresh context over the same
/// program and continue with `spec` applied — bit-identical outcome,
/// instruction and cycle counts to run_with_fault replaying from reset,
/// without re-executing the prefix. This is what lets a campaign that
/// injects many specs at one index pay the prefix once.
InjectedRun run_with_fault_forked(
    const armvm::ProgramRef& prog, armvm::Memory& ram,
    const armvm::MachineSnapshot& at_injection, const FaultSpec& spec,
    std::uint64_t max_instructions = 1'000'000,
    armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode);

}  // namespace eccm0::faultsim
