// Fault-injection campaign against the paper's kP workload.
//
// Each injected run computes k*P on sect233k1 with the production wTNAF
// path, but exactly one field multiplication inside it is executed on
// the armvm Thumb kernel (the paper's fixed-register LD multiplier)
// under a seeded FaultSpec. The faulted product — or the crash — then
// propagates through the rest of the scalar multiplication exactly as
// it would on a glitched node. Every run is classified against each
// countermeasure profile of ec::scalarmul_protected, producing the
// detection-coverage matrix (profile x fault model -> % silent
// corruption) that bench_fault_campaign prints.
//
// Determinism: one seed fixes (P, k), the golden result, the faulted
// multiplication's position and every FaultSpec. Same seed, same
// campaign, bit for bit.
#pragma once

#include <array>
#include <cstdint>

#include "ec/costing.h"
#include "ec/protect.h"
#include "faultsim/inject.h"

namespace eccm0::faultsim {

/// Classification of one injected kP run under one protection profile.
enum class Outcome : std::uint8_t {
  kCorrect,     ///< result equals the golden kP (fault absorbed / missed)
  kDetected,    ///< an enabled countermeasure refused the wrong result
  kCrashed,     ///< the core raised a typed armvm::Fault (or watchdog)
  kSilentWrong, ///< wrong result released with no indication — the loss
};
const char* outcome_name(Outcome o);

struct OutcomeTally {
  std::uint64_t correct = 0;
  std::uint64_t detected = 0;
  std::uint64_t crashed = 0;
  std::uint64_t silent = 0;

  std::uint64_t total() const { return correct + detected + crashed + silent; }
  double silent_rate() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(silent) /
                              static_cast<double>(total());
  }
  void add(Outcome o);
};

/// Cumulative countermeasure profiles, weakest to strongest.
struct ProtectionProfile {
  const char* name;
  ec::ProtectOpts opts;
};
inline constexpr unsigned kNumProfiles = 4;
const std::array<ProtectionProfile, kNumProfiles>& protection_profiles();

/// Clean-run (no fault) cost of one profile, priced with a
/// FieldCostTable: what the countermeasures cost when nothing goes wrong.
struct ProfileCost {
  ec::FieldOpCounts ops;
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
};

struct ModelResult {
  FaultModel model = FaultModel::kRegisterFlip;
  std::uint64_t runs = 0;
  std::uint64_t injected = 0;  ///< runs whose fault window actually fired
  std::array<OutcomeTally, kNumProfiles> per_profile;
};

struct CampaignConfig {
  std::uint64_t seed = 0xECC0FA17u;
  std::uint64_t runs_per_model = 1000;
  /// Worker threads for the batch executor (0 = hardware concurrency).
  /// Results are bit-identical regardless of the thread count: every
  /// run's RNG stream is split from (seed, model, run index) alone and
  /// tallies aggregate in run order.
  unsigned threads = 1;
  /// Execution engine of the injected armvm core (`--engine=`). The
  /// tally is engine-independent (see run_with_fault); this exists to
  /// A/B the engines under fault load.
  armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode;
};

struct CampaignResult {
  CampaignConfig config;
  std::array<ModelResult, kNumFaultModels> models;
  std::array<ProfileCost, kNumProfiles> costs;
};

class KpFaultCampaign {
 public:
  explicit KpFaultCampaign(
      std::uint64_t seed,
      armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode);

  /// Inject `runs` seeded faults of `model`, one per kP computation,
  /// fanned across `threads` workers (1 = serial; 0 = hardware
  /// concurrency). The tally is independent of the thread count.
  ModelResult run_model(FaultModel model, std::uint64_t runs,
                        unsigned threads = 1);

  /// Clean-run field-op counts of each profile priced with `prices`.
  std::array<ProfileCost, kNumProfiles> profile_costs(
      const ec::FieldCostTable& prices);

  const ec::AffinePoint& golden() const { return golden_; }

 private:
  /// Everything one injected kP run observes; enough to classify it
  /// under every countermeasure profile.
  struct RunObservation {
    bool crashed = false;
    bool vm_injected = false;
    bool wrong = false;
    bool inf = false;
    bool oncurve = true;
    bool order_ok = true;
    bool collapsed = false;
  };
  /// Evaluate one injection. Pure function of (seed, model, run) over
  /// the campaign's immutable state — safe to call from any thread.
  RunObservation evaluate_run(FaultModel model, std::uint64_t run) const;

  std::uint64_t seed_;
  armvm::Cpu::DecodeMode engine_;
  const ec::BinaryCurve& curve_;
  ec::AffinePoint p_;
  mpint::UInt k_;
  ec::AffinePoint golden_;
  armvm::ProgramRef mul_prog_;      ///< fixed-register LD mul, reducing
  std::uint64_t kernel_retires_;    ///< instruction count of a clean mul
  std::uint64_t muls_per_kp_;       ///< fmul invocations in one clean kP
};

/// Run the whole matrix: every fault model x every profile, plus the
/// clean-run overhead column (priced with the proposed-asm cost table).
CampaignResult run_kp_campaign(const CampaignConfig& config);

}  // namespace eccm0::faultsim
