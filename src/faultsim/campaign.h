// Fault-injection campaign against the paper's kP workload, on either
// field family.
//
// Each injected run computes k*P with the production scalar-mult path
// of the selected curve (wTNAF on sect233k1, Jacobian wNAF on the secp
// prime curves), but exactly one field multiplication inside it is
// executed on the armvm Thumb kernel (the fixed-register LD multiplier
// for GF(2^m), the Montgomery multiplier for GF(p)) under a seeded
// FaultSpec. The faulted product — or the crash — then
// propagates through the rest of the scalar multiplication exactly as
// it would on a glitched node. Every run is classified against each
// countermeasure profile of ec::scalarmul_protected, producing the
// detection-coverage matrix (profile x fault model -> % silent
// corruption) that bench_fault_campaign prints.
//
// Determinism: one seed fixes (P, k), the golden result, the faulted
// multiplication's position and every FaultSpec. Same seed, same
// campaign, bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "armvm/memmodel.h"
#include "ec/costing.h"
#include "ec/protect.h"
#include "ecp/ops.h"
#include "faultsim/inject.h"

namespace eccm0::telemetry {
class MetricsRegistry;
class ProgressMeter;
}

namespace eccm0::faultsim {

/// Classification of one injected kP run under one protection profile.
enum class Outcome : std::uint8_t {
  kCorrect,     ///< result equals the golden kP (fault absorbed / missed)
  kDetected,    ///< an enabled countermeasure refused the wrong result
  kCrashed,     ///< the core raised a typed armvm::Fault (or watchdog)
  kSilentWrong, ///< wrong result released with no indication — the loss
};
const char* outcome_name(Outcome o);

struct OutcomeTally {
  std::uint64_t correct = 0;
  std::uint64_t detected = 0;
  std::uint64_t crashed = 0;
  std::uint64_t silent = 0;

  std::uint64_t total() const { return correct + detected + crashed + silent; }
  double silent_rate() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(silent) /
                              static_cast<double>(total());
  }
  void add(Outcome o);
};

/// Cumulative countermeasure profiles, weakest to strongest.
struct ProtectionProfile {
  const char* name;
  ec::ProtectOpts opts;
};
inline constexpr unsigned kNumProfiles = 4;
const std::array<ProtectionProfile, kNumProfiles>& protection_profiles();

/// Clean-run (no fault) cost of one profile, priced with a
/// FieldCostTable: what the countermeasures cost when nothing goes wrong.
struct ProfileCost {
  ec::FieldOpCounts ops;
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
};

struct ModelResult {
  FaultModel model = FaultModel::kRegisterFlip;
  std::uint64_t runs = 0;
  std::uint64_t injected = 0;  ///< runs whose fault window actually fired
  std::array<OutcomeTally, kNumProfiles> per_profile;
};

struct CampaignConfig {
  std::uint64_t seed = 0xECC0FA17u;
  std::uint64_t runs_per_model = 1000;
  /// Workload curve (`--curve=`): sect233k1 or a secp prime curve.
  /// Unknown names throw std::invalid_argument at campaign construction.
  std::string curve = "sect233k1";
  /// Worker threads for the batch executor (0 = hardware concurrency).
  /// Results are bit-identical regardless of the thread count: every
  /// run's RNG stream is split from (seed, model, run index) alone and
  /// tallies aggregate in run order.
  unsigned threads = 1;
  /// Execution engine of the injected armvm core (`--engine=`). The
  /// tally is engine-independent (see run_with_fault); this exists to
  /// A/B the engines under fault load.
  armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode;
  /// Optional telemetry (nullptr = off, zero cost). Classification
  /// counters and the `campaign.kp.vm_cycles` histogram are recorded at
  /// the serial run-order tally, so the snapshot is identical for any
  /// `threads`; the progress meter ticks once per completed run.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::ProgressMeter* progress = nullptr;
};

struct CampaignResult {
  CampaignConfig config;
  std::array<ModelResult, kNumFaultModels> models;
  std::array<ProfileCost, kNumProfiles> costs;
};

class KpFaultCampaign {
 public:
  explicit KpFaultCampaign(
      std::uint64_t seed,
      armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode,
      const std::string& curve = "sect233k1");

  /// Inject `runs` seeded faults of `model`, one per kP computation,
  /// fanned across `threads` workers (1 = serial; 0 = hardware
  /// concurrency). The tally is independent of the thread count.
  ModelResult run_model(FaultModel model, std::uint64_t runs,
                        unsigned threads = 1);

  /// Clean-run field-op counts of each profile priced with `prices`.
  std::array<ProfileCost, kNumProfiles> profile_costs(
      const ec::FieldCostTable& prices);

  const ec::AffinePoint& golden() const { return golden_; }

  /// Optional telemetry hookup (see CampaignConfig::metrics/progress).
  void set_metrics(telemetry::MetricsRegistry* m) { metrics_ = m; }
  void set_progress(telemetry::ProgressMeter* p) { progress_ = p; }

 private:
  /// Everything one injected kP run observes; enough to classify it
  /// under every countermeasure profile.
  struct RunObservation {
    bool crashed = false;
    bool vm_injected = false;
    bool wrong = false;
    bool inf = false;
    bool oncurve = true;
    bool order_ok = true;
    bool collapsed = false;
    /// Simulated cycles of the injected VM kernel run (captured even
    /// when it crashed) — deterministic, unlike wall time, so it can
    /// feed a manifest histogram.
    std::uint64_t vm_cycles = 0;
  };
  /// Evaluate one injection. Pure function of (seed, model, run) over
  /// the campaign's immutable state — safe to call from any thread.
  RunObservation evaluate_run(FaultModel model, std::uint64_t run) const;
  /// Prime-curve variant of evaluate_run (the kernel splice goes
  /// through ecp::PrimeCurveOps::set_mul_tamper instead).
  RunObservation evaluate_run_p(FaultModel model, std::uint64_t run) const;

  std::uint64_t seed_;
  armvm::Cpu::DecodeMode engine_;
  bool prime_ = false;
  const ec::BinaryCurve& curve_;
  ec::AffinePoint p_;
  mpint::UInt k_;
  ec::AffinePoint golden_;
  const ecp::PrimeCurve* pcurve_ = nullptr;  ///< set when prime_
  ecp::AffinePointP pp_;
  ecp::AffinePointP pgolden_;
  armvm::ProgramRef mul_prog_;      ///< LD mul (gf2) or Montgomery mul
  std::uint32_t data_words_ = 0;    ///< RAM-flip target region, in words
  std::uint64_t kernel_retires_;    ///< instruction count of a clean mul
  std::uint64_t muls_per_kp_;       ///< fmul invocations in one clean kP
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::ProgressMeter* progress_ = nullptr;
};

/// Run the whole matrix: every fault model x every profile, plus the
/// clean-run overhead column (priced with the proposed-asm cost table).
CampaignResult run_kp_campaign(const CampaignConfig& config);

// ---- Memory-reliability campaign (SRAM bit errors vs codeword models)
//
// Same experiment shape as KpFaultCampaign — one VM-executed field
// multiplication spliced into a golden kP — but the perturbation is
// physical: the kernel's RAM is Bernoulli bit-error injected at a swept
// BER before the run, under each memory model (raw / parity / SECDED,
// armvm/memmodel.h). The classification separates what the *hardware*
// caught (integrity faults), what it silently repaired (SECDED
// corrections), and what fell through to the PR-2 software
// countermeasure profiles.

/// Classification of one bit-error-injected kP run under one
/// (memory model, protection profile) pair.
enum class MemOutcome : std::uint8_t {
  kCorrect,      ///< right result, storage never needed repair
  kCorrected,    ///< right result after >=1 SECDED single-bit repair
  kDetected,     ///< hardware integrity fault OR software refusal
  kCrashed,      ///< non-integrity armvm::Fault / watchdog
  kSilentWrong,  ///< wrong result released with no indication — the loss
};
const char* mem_outcome_name(MemOutcome o);

struct MemOutcomeTally {
  std::uint64_t correct = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  std::uint64_t crashed = 0;
  std::uint64_t silent = 0;

  std::uint64_t total() const {
    return correct + corrected + detected + crashed + silent;
  }
  double silent_rate() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(silent) /
                              static_cast<double>(total());
  }
  void add(MemOutcome o);

  friend bool operator==(const MemOutcomeTally&,
                         const MemOutcomeTally&) = default;
};

/// One (memory model x BER) cell of the sweep matrix.
struct MemCell {
  double ber = 0.0;
  std::uint64_t flipped_bits = 0;       ///< injected across the cell's runs
  std::uint64_t hw_corrections = 0;     ///< decode-time single-bit repairs
  std::uint64_t scrub_corrections = 0;  ///< repairs by scrubbing passes
  std::array<MemOutcomeTally, kNumProfiles> per_profile;
};

struct MemModelReport {
  armvm::MemModelConfig config;
  /// Clean-run (no injected errors) cost of one VM mul kernel call
  /// under this model — the codeword scheme's cycle/energy overhead.
  std::uint64_t clean_cycles = 0;
  double clean_energy_pj = 0.0;
  std::vector<MemCell> cells;  ///< one per swept BER
};

struct MemCampaignConfig {
  std::uint64_t seed = 0xECC0BE44u;
  std::uint64_t runs_per_cell = 200;
  /// Workload curve (`--curve=`), same contract as CampaignConfig.
  std::string curve = "sect233k1";
  unsigned threads = 1;
  armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode;
  /// Raw storage bit-error probabilities to sweep.
  std::vector<double> bers = {1e-6, 1e-5, 1e-4, 1e-3};
  /// SECDED scrub period in protected accesses (0 = off); raw/parity
  /// never scrub (the Memory constructor rejects it).
  std::uint64_t scrub_interval = 0;
  std::vector<armvm::MemModelKind> models = {armvm::MemModelKind::kRaw,
                                             armvm::MemModelKind::kParity,
                                             armvm::MemModelKind::kSecded};
  /// Optional telemetry (nullptr = off) — same discipline as
  /// CampaignConfig: deterministic tallies recorded serially in run
  /// order, progress ticked per completed run.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::ProgressMeter* progress = nullptr;
};

struct MemCampaignResult {
  MemCampaignConfig config;
  std::vector<MemModelReport> models;
};

class MemFaultCampaign {
 public:
  explicit MemFaultCampaign(
      std::uint64_t seed,
      armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode,
      const std::string& curve = "sect233k1");

  /// Sweep every BER for one memory model configuration,
  /// `runs_per_cell` injected kP runs per cell, fanned across `threads`
  /// workers (1 = serial; 0 = hardware concurrency). Tallies are
  /// bit-identical regardless of the thread count.
  MemModelReport run_model(const armvm::MemModelConfig& config,
                           const std::vector<double>& bers,
                           std::uint64_t runs_per_cell, unsigned threads = 1);

  const ec::AffinePoint& golden() const { return golden_; }

  /// Optional telemetry hookup (see MemCampaignConfig::metrics/progress).
  void set_metrics(telemetry::MetricsRegistry* m) { metrics_ = m; }
  void set_progress(telemetry::ProgressMeter* p) { progress_ = p; }

 private:
  struct RunObservation {
    bool crashed = false;    ///< non-integrity fault
    bool integrity = false;  ///< MemoryIntegrityFault (hardware detection)
    bool wrong = false;
    bool inf = false;
    bool oncurve = true;
    bool order_ok = true;
    bool collapsed = false;
    std::uint64_t flipped = 0;
    std::uint64_t hw_corrections = 0;
    std::uint64_t scrub_corrections = 0;
    std::uint64_t vm_cycles = 0;  ///< simulated cycles of the kernel run
  };
  /// Pure function of (seed, model kind, cell, run) over the campaign's
  /// immutable state — safe to call from any thread.
  RunObservation evaluate_run(const armvm::MemModelConfig& config,
                              unsigned cell, double ber,
                              std::uint64_t run) const;
  /// Prime-curve variant (kernel splice via PrimeCurveOps tamper).
  RunObservation evaluate_run_p(const armvm::MemModelConfig& config,
                                unsigned cell, double ber,
                                std::uint64_t run) const;

  std::uint64_t seed_;
  armvm::Cpu::DecodeMode engine_;
  bool prime_ = false;
  const ec::BinaryCurve& curve_;
  ec::AffinePoint p_;
  mpint::UInt k_;
  ec::AffinePoint golden_;
  const ecp::PrimeCurve* pcurve_ = nullptr;  ///< set when prime_
  ecp::AffinePointP pp_;
  ecp::AffinePointP pgolden_;
  armvm::ProgramRef mul_prog_;
  std::uint64_t muls_per_kp_ = 0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::ProgressMeter* progress_ = nullptr;
};

/// Run the whole BER x memory-model x protection-profile matrix.
MemCampaignResult run_mem_campaign(const MemCampaignConfig& config);

}  // namespace eccm0::faultsim
