#include "faultsim/campaign.h"

#include <span>

#include "asmkernels/gen.h"
#include "ecp/costing.h"
#include "faultsim/biterr.h"
#include "gf2/k233.h"
#include "relic_like/costs.h"
#include "sim/batch.h"
#include "telemetry/metrics.h"
#include "telemetry/progress.h"
#include "workloads/registry.h"
#include "workloads/spec.h"

namespace eccm0::faultsim {

using ec::AffinePoint;
using ec::CurveOps;
using mpint::UInt;

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: return "correct";
    case Outcome::kDetected: return "detected";
    case Outcome::kCrashed: return "crashed";
    case Outcome::kSilentWrong: return "silent-wrong";
  }
  return "unknown-outcome";
}

void OutcomeTally::add(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: ++correct; break;
    case Outcome::kDetected: ++detected; break;
    case Outcome::kCrashed: ++crashed; break;
    case Outcome::kSilentWrong: ++silent; break;
  }
}

const std::array<ProtectionProfile, kNumProfiles>& protection_profiles() {
  static const std::array<ProtectionProfile, kNumProfiles> kProfiles = {{
      {"none", ec::ProtectOpts::none()},
      {"validate-input", {true, false, false}},
      {"+recheck-result", {true, true, false}},
      {"+order-check", ec::ProtectOpts::all()},
  }};
  return kProfiles;
}

namespace {

/// The mul kernel's data region: product + operands + LUT
/// (gen.h layout, 0x000..0x280). RAM flips land here.
constexpr std::uint32_t kKernelDataWords = asmkernels::kSqrTabOff / 4;
constexpr std::size_t kKernelRamSize = 0x800;
/// Clean kernel runs ~2k instructions; anything past this looped.
constexpr std::uint64_t kKernelBudget = 200'000;

/// Thrown out of the tamper hook when the injected kernel run crashed,
/// unwinding the whole scalar multiplication the way a node reset would.
struct CrashSignal {};

gf2::k233::Fe to_fe(const gf2::Elem& e) {
  gf2::k233::Fe f{};
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = e[i];
  return f;
}

gf2::Elem from_fe(const gf2::k233::Fe& f) {
  gf2::Elem e{};
  for (std::size_t i = 0; i < f.size(); ++i) e[i] = f[i];
  return e;
}

void write_fe(armvm::Memory& mem, std::uint32_t offset,
              const gf2::k233::Fe& v) {
  mem.write_words(armvm::kRamBase + offset,
                  std::span<const std::uint32_t>(v.data(), v.size()));
}

std::uint64_t priced_cycles(const ec::FieldOpCounts& ops,
                            const ec::FieldCostTable& t) {
  return ops.mul * (t.mul + t.call_overhead) +
         ops.sqr * (t.sqr + t.call_overhead) +
         ops.inv * (t.inv + t.call_overhead) +
         ops.add * (t.fadd + t.call_overhead);
}

/// Seed-derived golden experiment shared by both campaigns: the fixed
/// (P, k), the golden kP, and the fmul sample space of one clean kP.
/// The RNG consumption order is load-bearing — it reproduces the exact
/// stream the original KpFaultCampaign constructor drew, so committed
/// campaign baselines (BENCH_fault_campaign.json) are unchanged.
struct GoldenKp {
  AffinePoint p;
  UInt k;
  AffinePoint golden;
  std::uint64_t muls_per_kp = 0;
};

/// Prime-curve analogue of GoldenKp, derived with the same seed
/// discipline (its own stream — the binary stream is untouched, so the
/// committed binary campaign baselines are byte-identical).
struct GoldenKpP {
  ecp::AffinePointP p;
  UInt k;
  ecp::AffinePointP golden;
  std::uint64_t muls_per_kp = 0;
};

GoldenKpP derive_golden_p(const ecp::PrimeCurve& curve, std::uint64_t seed) {
  GoldenKpP out;
  Rng rng(seed);
  ecp::PrimeCurveOps ops(curve);
  const ecp::AffinePointP g = ops.generator();
  UInt r;
  do {
    r = UInt::random_below(rng, curve.order);
  } while (r.is_zero());
  out.p = ecp::mul_wnaf_p(ops, g, r, 4);
  do {
    out.k = UInt::random_below(rng, curve.order);
  } while (out.k.is_zero());
  out.golden = ecp::mul_wnaf_p(ops, out.p, out.k, 4);

  ecp::PrimeCurveOps counting(curve);
  (void)ecp::mul_wnaf_p(counting, out.p, out.k, 4);
  out.muls_per_kp = counting.counts().mul;
  return out;
}

/// Write a UInt's low `n` limbs (zero padded) into kernel RAM.
void write_uint(armvm::Memory& mem, std::uint32_t offset, const UInt& v,
                std::size_t n) {
  const auto limbs = v.limbs();
  for (std::size_t i = 0; i < n; ++i) {
    mem.store32(armvm::kRamBase + offset + 4 * static_cast<std::uint32_t>(i),
                i < limbs.size() ? limbs[i] : 0);
  }
}

UInt read_uint(armvm::Memory& mem, std::uint32_t offset, std::size_t n) {
  std::vector<std::uint32_t> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = mem.load32(armvm::kRamBase + offset +
                      4 * static_cast<std::uint32_t>(i));
  }
  return UInt(std::move(w));
}

/// FieldCostTable view of the n-limb prime-field cost model, so both
/// families price their profile-overhead column through priced_cycles.
ec::FieldCostTable prime_cost_table(std::size_t limbs) {
  const ecp::PrimeFieldCosts pc = ecp::m0plus_prime_costs(limbs);
  ec::FieldCostTable t;
  t.name = "m0plus-prime";
  t.mul = pc.mul;
  t.sqr = pc.sqr;
  t.inv = pc.inv;
  t.fadd = pc.add;
  t.call_overhead = pc.call_overhead;
  t.pj_per_cycle = pc.pj_per_cycle;
  return t;
}

GoldenKp derive_golden(const ec::BinaryCurve& curve, std::uint64_t seed) {
  GoldenKp out;
  Rng rng(seed);
  CurveOps ops(curve);
  const AffinePoint g = AffinePoint::make(curve.gx, curve.gy);
  // Seed-derived experiment point and scalar (both kept fixed across the
  // campaign so every injection perturbs the same golden computation).
  UInt r;
  do {
    r = UInt::random_below(rng, curve.order);
  } while (r.is_zero());
  out.p = ec::mul_wtnaf(ops, g, r, 4);
  do {
    out.k = UInt::random_below(rng, curve.order);
  } while (out.k.is_zero());
  out.golden = ec::mul_wtnaf(ops, out.p, out.k, 4);

  // How many fmul calls one clean kP (table build + Horner loop) makes:
  // the sample space for which multiplication gets the fault.
  CurveOps counting(curve);
  const ec::WtnafTable t = ec::make_wtnaf_table(counting, out.p, 4);
  (void)ec::mul_wtnaf_ld(counting, t, out.k);
  out.muls_per_kp = counting.counts().mul;
  return out;
}

}  // namespace

KpFaultCampaign::KpFaultCampaign(std::uint64_t seed,
                                 armvm::Cpu::DecodeMode engine,
                                 const std::string& curve)
    : seed_(seed),
      engine_(engine),
      curve_(ec::BinaryCurve::sect233k1()) {
  const workloads::CurveRef& ref = workloads::curve_from_name(curve);
  prime_ = !ref.binary_field;
  if (!prime_ && ref.name != "sect233k1") {
    throw std::invalid_argument(
        "KpFaultCampaign: unsupported binary curve '" + ref.name + "'");
  }
  FaultSpec never;
  never.index = ~std::uint64_t{0};
  if (prime_) {
    pcurve_ = &workloads::prime_curve(ref);
    mul_prog_ = workloads::kernel(ref.kernel_tag + "-mont");
    // RAM flips may land anywhere in the prime layout's live data
    // (product..modulus block).
    data_words_ = (asmkernels::kPM0Off + 4) / 4;
    GoldenKpP golden = derive_golden_p(*pcurve_, seed);
    pp_ = golden.p;
    k_ = golden.k;
    pgolden_ = golden.golden;
    muls_per_kp_ = golden.muls_per_kp;

    // Clean kernel retirement count on representative operands: unlike
    // the unrolled gf2 kernel the Montgomery loop's carry propagation
    // is mildly data-dependent, but the spec window only needs a
    // representative bound — indices past the actual retirement simply
    // never fire (counted in `injected`).
    armvm::Memory mem(kKernelRamSize);
    workloads::load_prime_modulus(mem, ref);
    write_uint(mem, asmkernels::kXOff, pp_.x, ref.limbs);
    write_uint(mem, asmkernels::kYOff, pp_.y, ref.limbs);
    const InjectedRun clean =
        run_with_fault(mul_prog_, mem, never, kKernelBudget, engine_);
    kernel_retires_ = clean.instructions;
    return;
  }
  mul_prog_ = workloads::kernel("mul");
  data_words_ = kKernelDataWords;
  GoldenKp golden = derive_golden(curve_, seed);
  p_ = golden.p;
  k_ = golden.k;
  golden_ = golden.golden;
  muls_per_kp_ = golden.muls_per_kp;

  // Clean kernel retirement count: the injection window for specs. The
  // kernel is straight-line (generator-unrolled), so the count is
  // operand-independent.
  armvm::Memory mem(kKernelRamSize);
  write_fe(mem, asmkernels::kXOff, to_fe(p_.x));
  write_fe(mem, asmkernels::kYOff, to_fe(p_.y));
  const InjectedRun clean = run_with_fault(mul_prog_, mem, never,
                                           kKernelBudget, engine_);
  kernel_retires_ = clean.instructions;
}

KpFaultCampaign::RunObservation KpFaultCampaign::evaluate_run(
    FaultModel model, std::uint64_t run) const {
  if (prime_) return evaluate_run_p(model, run);
  // Per-run stream: child `run` of the per-model stream. A pure function
  // of (seed, model, run), so any thread can evaluate any run and the
  // campaign is independent of scheduling order.
  const Rng model_stream(seed_ ^ (0x9E3779B97F4A7C15ull *
                                  (static_cast<std::uint64_t>(model) + 2)));
  Rng rng = model_stream.split(run);
  const std::uint64_t target = rng.next_below(muls_per_kp_);
  const FaultSpec spec =
      sample_spec(rng, model, kernel_retires_, data_words_);

  // One evaluation per injection; the observations below are enough to
  // classify it under every countermeasure set.
  RunObservation obs;
  bool fired = false;
  CurveOps ops(curve_);
  ops.set_mul_tamper([&](std::uint64_t idx, const gf2::Elem& a,
                         const gf2::Elem& b, gf2::Elem& out) {
    if (fired || idx != target) return;
    fired = true;
    armvm::Memory mem(kKernelRamSize);
    write_fe(mem, asmkernels::kXOff, to_fe(a));
    write_fe(mem, asmkernels::kYOff, to_fe(b));
    const InjectedRun vm = run_with_fault(mul_prog_, mem, spec,
                                          kKernelBudget, engine_);
    obs.vm_injected = vm.injected;
    obs.vm_cycles = vm.cycles;
    if (vm.outcome == RunOutcome::kCrashed) throw CrashSignal{};
    const auto words =
        mem.read_words(armvm::kRamBase + asmkernels::kVOff, 8);
    gf2::k233::Fe fe{};
    for (std::size_t i = 0; i < fe.size(); ++i) fe[i] = words[i];
    out = from_fe(fe);
  });
  try {
    const ec::WtnafTable t = ec::make_wtnaf_table(ops, p_, 4, &obs.collapsed);
    const ec::LDPoint q_ld = ec::mul_wtnaf_ld(ops, t, k_, &obs.collapsed);
    obs.inf = q_ld.is_inf();
    obs.oncurve = ops.on_curve_ld(q_ld);
    const AffinePoint q = ops.to_affine(q_ld);
    obs.wrong = !(q == golden_);
    if (obs.wrong && obs.oncurve && !obs.inf) {
      // Lazy: the order check only matters for the rare faults that
      // land back on the curve. Doubling-based on purpose — the
      // tau-adic expansion of n is all zeros, so mul_wtnaf(Q, n) would
      // pass everything (see protect.cpp).
      obs.order_ok =
          ec::mul_wnaf(ops, q, curve_.order, 4) == AffinePoint::infinity();
    }
  } catch (const CrashSignal&) {
    obs.crashed = true;
  }
  return obs;
}

KpFaultCampaign::RunObservation KpFaultCampaign::evaluate_run_p(
    FaultModel model, std::uint64_t run) const {
  // Same stream discipline as the binary path: pure in (seed, model,
  // run), so the tally is thread-count invariant.
  const Rng model_stream(seed_ ^ (0x9E3779B97F4A7C15ull *
                                  (static_cast<std::uint64_t>(model) + 2)));
  Rng rng = model_stream.split(run);
  const std::uint64_t target = rng.next_below(muls_per_kp_);
  const FaultSpec spec =
      sample_spec(rng, model, kernel_retires_, data_words_);

  const workloads::CurveRef& ref = workloads::curve_from_name(pcurve_->name);
  const std::size_t n = ref.limbs;
  RunObservation obs;
  bool fired = false;
  ecp::PrimeCurveOps ops(*pcurve_);
  ops.set_mul_tamper([&](std::uint64_t idx, const UInt& a, const UInt& b,
                         UInt& out) {
    if (fired || idx != target) return;
    fired = true;
    armvm::Memory mem(kKernelRamSize);
    workloads::load_prime_modulus(mem, ref);
    write_uint(mem, asmkernels::kXOff, a, n);
    write_uint(mem, asmkernels::kYOff, b, n);
    const InjectedRun vm =
        run_with_fault(mul_prog_, mem, spec, kKernelBudget, engine_);
    obs.vm_injected = vm.injected;
    obs.vm_cycles = vm.cycles;
    if (vm.outcome == RunOutcome::kCrashed) throw CrashSignal{};
    // The splice boundary reduces the (possibly faulted) raw kernel
    // output into [0, p): the host Montgomery oracle's add/sub assume
    // reduced operands, and a fault that escapes the field is still a
    // wrong in-field value afterwards.
    out = read_uint(mem, asmkernels::kOutOff, n) % pcurve_->p;
  });
  try {
    const ecp::AffinePointP q = ecp::mul_wnaf_p(ops, pp_, k_, 4);
    obs.inf = q.inf;
    obs.oncurve = q.inf ? true : ops.on_curve(q);
    obs.wrong = !ops.eq(q, pgolden_);
    if (obs.wrong && obs.oncurve && !obs.inf) {
      // Doubling-based order check, as on the binary side.
      obs.order_ok = ecp::mul_wnaf_p(ops, q, pcurve_->order, 4).inf;
    }
  } catch (const CrashSignal&) {
    obs.crashed = true;
  }
  return obs;
}

ModelResult KpFaultCampaign::run_model(FaultModel model, std::uint64_t runs,
                                       unsigned threads) {
  ModelResult res;
  res.model = model;
  res.runs = runs;
  sim::BatchExecutor pool(threads);
  pool.set_metrics(metrics_);
  telemetry::ProgressMeter* progress = progress_;
  const std::vector<RunObservation> observations =
      pool.map<RunObservation>(runs, [&](std::size_t run) {
        RunObservation obs = evaluate_run(model, static_cast<std::uint64_t>(run));
        if (progress != nullptr) progress->tick();
        return obs;
      });

  // Tally serially in run order, so the result is byte-for-byte the
  // same whatever the worker count.
  const auto& profiles = protection_profiles();
  for (const RunObservation& obs : observations) {
    if (obs.vm_injected) ++res.injected;
    for (unsigned p = 0; p < kNumProfiles; ++p) {
      const ec::ProtectOpts& o = profiles[p].opts;
      Outcome outcome;
      if (obs.crashed) {
        outcome = Outcome::kCrashed;
      } else if (!obs.wrong) {
        outcome = Outcome::kCorrect;
      } else {
        bool detected = false;
        if (o.recheck_result) {
          // The protected path refuses an off-curve result, an
          // impossible identity (kP = inf with validated 0 < k < n), and
          // a mid-loop identity collapse (whose rebuilt endpoint is a
          // valid wrong point the two end checks cannot see).
          detected = obs.inf || !obs.oncurve || obs.collapsed;
        }
        if (!detected && o.order_check && obs.oncurve && !obs.inf) {
          detected = !obs.order_ok;
        }
        outcome = detected ? Outcome::kDetected : Outcome::kSilentWrong;
      }
      res.per_profile[p].add(outcome);
    }
  }

  if (metrics_ != nullptr) {
    // Recorded here, in serial run order, from deterministic per-run
    // observations — so the snapshot is the same for any thread count.
    const std::string prefix =
        std::string("campaign.kp.") + fault_model_name(model) + ".";
    metrics_->counter(prefix + "runs").add(runs);
    metrics_->counter(prefix + "injected").add(res.injected);
    const auto& names = protection_profiles();
    for (unsigned p = 0; p < kNumProfiles; ++p) {
      const std::string pp = prefix + names[p].name + ".";
      const OutcomeTally& t = res.per_profile[p];
      metrics_->counter(pp + "correct").add(t.correct);
      metrics_->counter(pp + "detected").add(t.detected);
      metrics_->counter(pp + "crashed").add(t.crashed);
      metrics_->counter(pp + "silent-wrong").add(t.silent);
    }
    telemetry::Histogram cycles;
    for (const RunObservation& obs : observations) cycles.record(obs.vm_cycles);
    metrics_->merge_histogram("campaign.kp.vm_cycles",
                              telemetry::Unit::kCycles, cycles);
  }
  return res;
}

std::array<ProfileCost, kNumProfiles> KpFaultCampaign::profile_costs(
    const ec::FieldCostTable& prices) {
  std::array<ProfileCost, kNumProfiles> out;
  const auto& profiles = protection_profiles();
  for (unsigned p = 0; p < kNumProfiles; ++p) {
    if (prime_) {
      // Prime-side equivalent of ec::scalarmul_protected's clean run:
      // the same checks, counted through PrimeCurveOps.
      ecp::PrimeCurveOps ops(*pcurve_);
      const ec::ProtectOpts& o = profiles[p].opts;
      if (o.validate_input) (void)ops.on_curve(pp_);
      const ecp::AffinePointP q = ecp::mul_wnaf_p(ops, pp_, k_, 4);
      if (o.recheck_result) (void)ops.on_curve(q);
      if (o.order_check) (void)ecp::mul_wnaf_p(ops, q, pcurve_->order, 4);
      const ecp::PrimeOpCounts& c = ops.counts();
      out[p].ops = {c.mul, c.sqr, c.inv, c.add};
    } else {
      CurveOps ops(curve_);
      (void)ec::scalarmul_protected(ops, p_, k_, 4, profiles[p].opts);
      out[p].ops = ops.counts();
    }
    out[p].cycles = priced_cycles(out[p].ops, prices);
    out[p].energy_uj =
        static_cast<double>(out[p].cycles) * prices.pj_per_cycle * 1e-6;
  }
  return out;
}

// ---- Memory-reliability campaign -------------------------------------

const char* mem_outcome_name(MemOutcome o) {
  switch (o) {
    case MemOutcome::kCorrect: return "correct";
    case MemOutcome::kCorrected: return "corrected";
    case MemOutcome::kDetected: return "detected";
    case MemOutcome::kCrashed: return "crashed";
    case MemOutcome::kSilentWrong: return "silent-wrong";
  }
  return "unknown-outcome";
}

void MemOutcomeTally::add(MemOutcome o) {
  switch (o) {
    case MemOutcome::kCorrect: ++correct; break;
    case MemOutcome::kCorrected: ++corrected; break;
    case MemOutcome::kDetected: ++detected; break;
    case MemOutcome::kCrashed: ++crashed; break;
    case MemOutcome::kSilentWrong: ++silent; break;
  }
}

MemFaultCampaign::MemFaultCampaign(std::uint64_t seed,
                                   armvm::Cpu::DecodeMode engine,
                                   const std::string& curve)
    : seed_(seed),
      engine_(engine),
      curve_(ec::BinaryCurve::sect233k1()) {
  const workloads::CurveRef& ref = workloads::curve_from_name(curve);
  prime_ = !ref.binary_field;
  if (!prime_ && ref.name != "sect233k1") {
    throw std::invalid_argument(
        "MemFaultCampaign: unsupported binary curve '" + ref.name + "'");
  }
  if (prime_) {
    pcurve_ = &workloads::prime_curve(ref);
    mul_prog_ = workloads::kernel(ref.kernel_tag + "-mont");
    GoldenKpP golden = derive_golden_p(*pcurve_, seed);
    pp_ = golden.p;
    k_ = golden.k;
    pgolden_ = golden.golden;
    muls_per_kp_ = golden.muls_per_kp;
    return;
  }
  mul_prog_ = workloads::kernel("mul");
  GoldenKp golden = derive_golden(curve_, seed);
  p_ = golden.p;
  k_ = golden.k;
  golden_ = golden.golden;
  muls_per_kp_ = golden.muls_per_kp;
}

MemFaultCampaign::RunObservation MemFaultCampaign::evaluate_run(
    const armvm::MemModelConfig& config, unsigned cell, double ber,
    std::uint64_t run) const {
  if (prime_) return evaluate_run_p(config, cell, ber, run);
  // Per-run stream: child `run` of the per-cell stream, a pure function
  // of (seed, model kind, cell index, run index) — same scheme as
  // KpFaultCampaign, so any thread can evaluate any run.
  const Rng cell_stream(
      seed_ ^ (0x9E3779B97F4A7C15ull *
               ((static_cast<std::uint64_t>(config.kind) + 2) * 64 + cell)));
  Rng rng = cell_stream.split(run);
  const std::uint64_t target = rng.next_below(muls_per_kp_);

  RunObservation obs;
  bool fired = false;
  CurveOps ops(curve_);
  ops.set_mul_tamper([&](std::uint64_t idx, const gf2::Elem& a,
                         const gf2::Elem& b, gf2::Elem& out) {
    if (fired || idx != target) return;
    fired = true;
    armvm::Memory mem(kKernelRamSize, config);
    write_fe(mem, asmkernels::kXOff, to_fe(a));
    write_fe(mem, asmkernels::kYOff, to_fe(b));
    // Load-time injection: the storage is corrupted before the core
    // runs, so every engine sees the same image (and the raw model's
    // flips land directly in the operands the kernel will read).
    const BitErrorStats errs = inject_bit_errors(mem, ber, rng);
    obs.flipped = errs.flipped_bits;
    const auto harvest = [&] {
      obs.hw_corrections = mem.corrections();
      obs.scrub_corrections = mem.scrub_corrections();
    };
    FaultSpec never;
    never.index = ~std::uint64_t{0};
    const InjectedRun vm =
        run_with_fault(mul_prog_, mem, never, kKernelBudget, engine_);
    obs.vm_cycles = vm.cycles;
    if (vm.outcome == RunOutcome::kCrashed) {
      harvest();
      obs.integrity = vm.fault_kind == armvm::FaultKind::kMemoryIntegrity;
      throw CrashSignal{};
    }
    gf2::k233::Fe fe{};
    try {
      const auto words =
          mem.read_words(armvm::kRamBase + asmkernels::kVOff, 8);
      for (std::size_t i = 0; i < fe.size(); ++i) fe[i] = words[i];
    } catch (const armvm::MemoryIntegrityFault&) {
      // The product word itself is rotten: detected at readout.
      harvest();
      obs.integrity = true;
      throw CrashSignal{};
    }
    harvest();
    out = from_fe(fe);
  });
  try {
    const ec::WtnafTable t = ec::make_wtnaf_table(ops, p_, 4, &obs.collapsed);
    const ec::LDPoint q_ld = ec::mul_wtnaf_ld(ops, t, k_, &obs.collapsed);
    obs.inf = q_ld.is_inf();
    obs.oncurve = ops.on_curve_ld(q_ld);
    const AffinePoint q = ops.to_affine(q_ld);
    obs.wrong = !(q == golden_);
    if (obs.wrong && obs.oncurve && !obs.inf) {
      obs.order_ok =
          ec::mul_wnaf(ops, q, curve_.order, 4) == AffinePoint::infinity();
    }
  } catch (const CrashSignal&) {
    obs.crashed = !obs.integrity;
  }
  return obs;
}

MemFaultCampaign::RunObservation MemFaultCampaign::evaluate_run_p(
    const armvm::MemModelConfig& config, unsigned cell, double ber,
    std::uint64_t run) const {
  // Same stream discipline as the binary path.
  const Rng cell_stream(
      seed_ ^ (0x9E3779B97F4A7C15ull *
               ((static_cast<std::uint64_t>(config.kind) + 2) * 64 + cell)));
  Rng rng = cell_stream.split(run);
  const std::uint64_t target = rng.next_below(muls_per_kp_);

  const workloads::CurveRef& ref = workloads::curve_from_name(pcurve_->name);
  const std::size_t n = ref.limbs;
  RunObservation obs;
  bool fired = false;
  ecp::PrimeCurveOps ops(*pcurve_);
  ops.set_mul_tamper([&](std::uint64_t idx, const UInt& a, const UInt& b,
                         UInt& out) {
    if (fired || idx != target) return;
    fired = true;
    armvm::Memory mem(kKernelRamSize, config);
    workloads::load_prime_modulus(mem, ref);
    write_uint(mem, asmkernels::kXOff, a, n);
    write_uint(mem, asmkernels::kYOff, b, n);
    const BitErrorStats errs = inject_bit_errors(mem, ber, rng);
    obs.flipped = errs.flipped_bits;
    const auto harvest = [&] {
      obs.hw_corrections = mem.corrections();
      obs.scrub_corrections = mem.scrub_corrections();
    };
    FaultSpec never;
    never.index = ~std::uint64_t{0};
    const InjectedRun vm =
        run_with_fault(mul_prog_, mem, never, kKernelBudget, engine_);
    obs.vm_cycles = vm.cycles;
    if (vm.outcome == RunOutcome::kCrashed) {
      harvest();
      obs.integrity = vm.fault_kind == armvm::FaultKind::kMemoryIntegrity;
      throw CrashSignal{};
    }
    UInt got;
    try {
      got = read_uint(mem, asmkernels::kOutOff, n);
    } catch (const armvm::MemoryIntegrityFault&) {
      // The result word itself is rotten: detected at readout.
      harvest();
      obs.integrity = true;
      throw CrashSignal{};
    }
    harvest();
    // Reduce at the splice boundary (see KpFaultCampaign::evaluate_run_p).
    out = got % pcurve_->p;
  });
  try {
    const ecp::AffinePointP q = ecp::mul_wnaf_p(ops, pp_, k_, 4);
    obs.inf = q.inf;
    obs.oncurve = q.inf ? true : ops.on_curve(q);
    obs.wrong = !ops.eq(q, pgolden_);
    if (obs.wrong && obs.oncurve && !obs.inf) {
      obs.order_ok = ecp::mul_wnaf_p(ops, q, pcurve_->order, 4).inf;
    }
  } catch (const CrashSignal&) {
    obs.crashed = !obs.integrity;
  }
  return obs;
}

MemModelReport MemFaultCampaign::run_model(const armvm::MemModelConfig& config,
                                           const std::vector<double>& bers,
                                           std::uint64_t runs_per_cell,
                                           unsigned threads) {
  MemModelReport rep;
  rep.config = config;

  // Clean-run cost of one mul kernel call under this model: the
  // codeword scheme's cycle/energy overhead with no errors injected.
  {
    armvm::Memory mem(kKernelRamSize, config);
    if (prime_) {
      const workloads::CurveRef& ref =
          workloads::curve_from_name(pcurve_->name);
      workloads::load_prime_modulus(mem, ref);
      write_uint(mem, asmkernels::kXOff, pp_.x, ref.limbs);
      write_uint(mem, asmkernels::kYOff, pp_.y, ref.limbs);
    } else {
      write_fe(mem, asmkernels::kXOff, to_fe(p_.x));
      write_fe(mem, asmkernels::kYOff, to_fe(p_.y));
    }
    armvm::Cpu cpu(mul_prog_, mem, engine_);
    const armvm::RunStats st =
        cpu.call(mul_prog_->entry("entry"), {}, kKernelBudget);
    rep.clean_cycles = st.cycles;
    rep.clean_energy_pj = st.energy().energy_pj;
  }

  sim::BatchExecutor pool(threads);
  pool.set_metrics(metrics_);
  telemetry::ProgressMeter* progress = progress_;
  const auto& profiles = protection_profiles();
  for (unsigned c = 0; c < bers.size(); ++c) {
    MemCell cell;
    cell.ber = bers[c];
    const std::vector<RunObservation> observations =
        pool.map<RunObservation>(runs_per_cell, [&](std::size_t run) {
          RunObservation obs = evaluate_run(config, c, cell.ber,
                                            static_cast<std::uint64_t>(run));
          if (progress != nullptr) progress->tick();
          return obs;
        });
    // Tally serially in run order — byte-identical for any worker count.
    for (const RunObservation& obs : observations) {
      cell.flipped_bits += obs.flipped;
      cell.hw_corrections += obs.hw_corrections;
      cell.scrub_corrections += obs.scrub_corrections;
      const bool repaired = obs.hw_corrections + obs.scrub_corrections > 0;
      for (unsigned p = 0; p < kNumProfiles; ++p) {
        const ec::ProtectOpts& o = profiles[p].opts;
        MemOutcome outcome;
        if (obs.integrity) {
          // The memory system refused the data — detection regardless
          // of any software profile.
          outcome = MemOutcome::kDetected;
        } else if (obs.crashed) {
          outcome = MemOutcome::kCrashed;
        } else if (!obs.wrong) {
          outcome = repaired ? MemOutcome::kCorrected : MemOutcome::kCorrect;
        } else {
          bool detected = false;
          if (o.recheck_result) {
            detected = obs.inf || !obs.oncurve || obs.collapsed;
          }
          if (!detected && o.order_check && obs.oncurve && !obs.inf) {
            detected = !obs.order_ok;
          }
          outcome = detected ? MemOutcome::kDetected : MemOutcome::kSilentWrong;
        }
        cell.per_profile[p].add(outcome);
      }
    }
    if (metrics_ != nullptr) {
      // Serial run-order tally of deterministic observations — summed
      // across cells, so one counter set per (model, profile, outcome).
      const std::string prefix =
          std::string("campaign.mem.") + armvm::mem_model_name(config.kind) +
          ".";
      metrics_->counter(prefix + "runs").add(runs_per_cell);
      metrics_->counter(prefix + "flipped_bits").add(cell.flipped_bits);
      metrics_->counter(prefix + "hw_corrections").add(cell.hw_corrections);
      metrics_->counter(prefix + "scrub_corrections")
          .add(cell.scrub_corrections);
      for (unsigned p = 0; p < kNumProfiles; ++p) {
        const std::string pp = prefix + profiles[p].name + ".";
        const MemOutcomeTally& t = cell.per_profile[p];
        metrics_->counter(pp + "correct").add(t.correct);
        metrics_->counter(pp + "corrected").add(t.corrected);
        metrics_->counter(pp + "detected").add(t.detected);
        metrics_->counter(pp + "crashed").add(t.crashed);
        metrics_->counter(pp + "silent-wrong").add(t.silent);
      }
      telemetry::Histogram cycles;
      for (const RunObservation& obs : observations) {
        cycles.record(obs.vm_cycles);
      }
      metrics_->merge_histogram("campaign.mem.vm_cycles",
                                telemetry::Unit::kCycles, cycles);
    }
    rep.cells.push_back(cell);
  }
  return rep;
}

MemCampaignResult run_mem_campaign(const MemCampaignConfig& config) {
  MemCampaignResult res;
  res.config = config;
  MemFaultCampaign campaign(config.seed, config.engine, config.curve);
  campaign.set_metrics(config.metrics);
  campaign.set_progress(config.progress);
  for (armvm::MemModelKind kind : config.models) {
    const armvm::MemModelConfig mc = armvm::MemModelConfig::for_kind(
        kind,
        kind == armvm::MemModelKind::kSecded ? config.scrub_interval : 0);
    res.models.push_back(
        campaign.run_model(mc, config.bers, config.runs_per_cell,
                           config.threads));
  }
  return res;
}

CampaignResult run_kp_campaign(const CampaignConfig& config) {
  CampaignResult res;
  res.config = config;
  KpFaultCampaign campaign(config.seed, config.engine, config.curve);
  campaign.set_metrics(config.metrics);
  campaign.set_progress(config.progress);
  const FaultModel models[kNumFaultModels] = {
      FaultModel::kRegisterFlip, FaultModel::kRamFlip,
      FaultModel::kInstructionSkip, FaultModel::kOpcodeFlip};
  for (unsigned m = 0; m < kNumFaultModels; ++m) {
    res.models[m] =
        campaign.run_model(models[m], config.runs_per_model, config.threads);
  }
  // Price the profile-overhead column with the matching field family's
  // cost model.
  const workloads::CurveRef& ref = workloads::curve_from_name(config.curve);
  res.costs = campaign.profile_costs(
      ref.binary_field ? relic_like::proposed_asm_costs()
                       : prime_cost_table(ref.limbs));
  return res;
}

}  // namespace eccm0::faultsim
