#include "faultsim/biterr.h"

namespace eccm0::faultsim {

BitErrorStats inject_bit_errors(armvm::Memory& mem, double ber, Rng& rng) {
  BitErrorStats st;
  const auto words = static_cast<std::uint32_t>(mem.size() / 4);
  const unsigned bits = mem.storage_bits_per_word();
  st.storage_bits = std::uint64_t{words} * bits;
  // P(flip) = threshold / 2^53, exact for any ber that is a multiple of
  // 2^-53. The compare uses the top 53 bits of each draw — the same
  // bits a uniform double would see, without ever touching floating
  // point at injection time.
  const double clamped = ber <= 0.0 ? 0.0 : (ber >= 1.0 ? 1.0 : ber);
  const auto threshold =
      static_cast<std::uint64_t>(clamped * 9007199254740992.0);  // 2^53
  for (std::uint32_t w = 0; w < words; ++w) {
    bool touched = false;
    for (unsigned b = 0; b < bits; ++b) {
      if ((rng.next_u64() >> 11) < threshold) {
        mem.flip_storage_bit(w, b);
        ++st.flipped_bits;
        touched = true;
      }
    }
    if (touched) ++st.words_touched;
  }
  return st;
}

}  // namespace eccm0::faultsim
