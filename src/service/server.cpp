#include "service/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "armvm/dispatch.h"
#include "profile/profiler.h"
#include "workloads/registry.h"

namespace eccm0::service {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A typed handler failure that maps to a wire error code.
struct OpError {
  wire::ErrorCode code;
  std::string message;
};

std::uint64_t param_u64(const telemetry::Json& params, const char* key,
                        std::uint64_t fallback) {
  const telemetry::Json* v = params.get(key);
  if (v == nullptr) return fallback;
  if (v->kind() != telemetry::Json::Kind::kNumber) {
    throw OpError{wire::ErrorCode::kBadParam,
                  std::string("param '") + key + "' must be a number"};
  }
  // as_u64 is strtoull underneath, which wraps "-1" to 2^64-1 — a
  // negative count must be a typed rejection, not a 10^19 work order.
  if (!v->token().empty() && v->token()[0] == '-') {
    throw OpError{wire::ErrorCode::kBadParam,
                  std::string("param '") + key +
                      "' must be a non-negative integer"};
  }
  return v->as_u64();
}

std::string param_str(const telemetry::Json& params, const char* key,
                      const std::string& fallback) {
  const telemetry::Json* v = params.get(key);
  if (v == nullptr) return fallback;
  if (v->kind() != telemetry::Json::Kind::kString) {
    throw OpError{wire::ErrorCode::kBadParam,
                  std::string("param '") + key + "' must be a string"};
  }
  return v->as_string();
}

bool is_workload_op(const std::string& op) {
  return op == "kp" || op == "ecdh" || op == "ecdsa";
}

bool is_known_op(const std::string& op) {
  return is_workload_op(op) || op == "campaign" || op == "memfault" ||
         op == "sca" || op == "profile" || op == "sleep";
}

telemetry::Json ops_json(const ec::FieldOpCounts& ops) {
  telemetry::Json o = telemetry::Json::object();
  o.set("mul", telemetry::Json::number(ops.mul));
  o.set("sqr", telemetry::Json::number(ops.sqr));
  o.set("inv", telemetry::Json::number(ops.inv));
  o.set("add", telemetry::Json::number(ops.add));
  return o;
}

telemetry::Json tally_json(const faultsim::OutcomeTally& t) {
  telemetry::Json o = telemetry::Json::object();
  o.set("correct", telemetry::Json::number(t.correct));
  o.set("detected", telemetry::Json::number(t.detected));
  o.set("crashed", telemetry::Json::number(t.crashed));
  o.set("silent", telemetry::Json::number(t.silent));
  return o;
}

telemetry::Json mem_tally_json(const faultsim::MemOutcomeTally& t) {
  telemetry::Json o = telemetry::Json::object();
  o.set("correct", telemetry::Json::number(t.correct));
  o.set("corrected", telemetry::Json::number(t.corrected));
  o.set("detected", telemetry::Json::number(t.detected));
  o.set("crashed", telemetry::Json::number(t.crashed));
  o.set("silent", telemetry::Json::number(t.silent));
  return o;
}

/// The `profile` op: one kernel on the cycle-accurate VM under the
/// symbol-attributed profiler; payload carries totals plus the hottest
/// functions by self cycles. Deterministic for fixed params.
telemetry::Json profile_payload_for(const std::string& kernel_name,
                                    unsigned calls,
                                    armvm::Cpu::DecodeMode engine,
                                    const armvm::MemModelConfig& mem_model) {
  workloads::KernelMachine km(workloads::kernel(kernel_name), engine,
                              mem_model);
  profile::Profiler prof(km.prog());
  km.cpu().set_trace_sink(&prof);
  const workloads::KernelInfo info =
      workloads::KernelRegistry::instance().info(kernel_name);
  for (unsigned c = 0; c < calls; ++c) {
    if (info.binary_field) {
      const workloads::KernelOperands& od =
          workloads::KernelOperands::standard();
      workloads::load_mul_inputs(km.mem(), od.x, od.y);
      workloads::load_sqr_table(km.mem());
      workloads::load_inv_input(km.mem(), od.a);
    } else {
      const workloads::CurveRef& curve =
          workloads::curve_from_name(info.curve);
      const workloads::PrimeOperands& od =
          workloads::PrimeOperands::standard(curve);
      workloads::load_prime_modulus(km.mem(), curve);
      workloads::load_prime_mul_inputs(km.mem(), od.x, od.y);
      workloads::load_prime_inv_input(km.mem(), od.a);
      workloads::load_prime_wide_input(km.mem(), od.wide);
    }
    km.call();
  }
  const armvm::RunStats s = km.cpu().stats();

  telemetry::Json p = telemetry::Json::object();
  p.set("kernel", telemetry::Json::str(kernel_name));
  p.set("calls", telemetry::Json::number(std::uint64_t{calls}));
  p.set("instructions", telemetry::Json::number(s.instructions));
  p.set("cycles", telemetry::Json::number(s.cycles));
  p.set("energy_uj", telemetry::Json::number(s.energy().energy_uj()));
  telemetry::Json fns = telemetry::Json::array();
  for (const profile::Profiler::FunctionStats& f : prof.functions()) {
    telemetry::Json fj = telemetry::Json::object();
    fj.set("name", telemetry::Json::str(f.name));
    fj.set("calls", telemetry::Json::number(f.calls));
    fj.set("instructions", telemetry::Json::number(f.instructions));
    fj.set("self_cycles", telemetry::Json::number(f.self_cycles));
    fj.set("inclusive_cycles", telemetry::Json::number(f.inclusive_cycles));
    fns.push(std::move(fj));
  }
  p.set("functions", std::move(fns));
  return p;
}

}  // namespace

// ---- payload builders -----------------------------------------------

telemetry::Json workload_payload(const workloads::WorkloadSpec& spec,
                                 unsigned reps,
                                 const workloads::ReplayResult& result,
                                 armvm::Cpu::DecodeMode engine,
                                 const armvm::MemModelConfig& mem_model) {
  telemetry::Json p = telemetry::Json::object();
  p.set("workload", telemetry::Json::str(spec.name));
  p.set("transaction", telemetry::Json::str(spec.transaction));
  p.set("curve", telemetry::Json::str(spec.curve.name));
  p.set("point_muls", telemetry::Json::number(std::uint64_t{spec.point_muls}));
  p.set("reps", telemetry::Json::number(std::uint64_t{reps}));
  p.set("engine", telemetry::Json::str(armvm::decode_mode_name(engine)));
  p.set("mem_model",
        telemetry::Json::str(armvm::mem_model_name(mem_model.kind)));
  p.set("ops", ops_json(spec.ops));
  p.set("instructions", telemetry::Json::number(result.stats.instructions));
  p.set("cycles", telemetry::Json::number(result.stats.cycles));
  p.set("energy_uj",
        telemetry::Json::number(result.stats.energy().energy_uj()));
  p.set("fused_retired", telemetry::Json::number(result.fused_retired));
  p.set("output_digest", telemetry::Json::number(result.output_digest));
  return p;
}

telemetry::Json campaign_payload(const faultsim::CampaignResult& result) {
  const auto& profiles = faultsim::protection_profiles();
  telemetry::Json p = telemetry::Json::object();
  p.set("seed", telemetry::Json::number(result.config.seed));
  p.set("runs_per_model",
        telemetry::Json::number(result.config.runs_per_model));
  p.set("curve", telemetry::Json::str(result.config.curve));
  p.set("engine", telemetry::Json::str(
                      armvm::decode_mode_name(result.config.engine)));
  telemetry::Json models = telemetry::Json::array();
  for (const faultsim::ModelResult& m : result.models) {
    telemetry::Json mj = telemetry::Json::object();
    mj.set("model", telemetry::Json::str(faultsim::fault_model_name(m.model)));
    mj.set("runs", telemetry::Json::number(m.runs));
    mj.set("injected", telemetry::Json::number(m.injected));
    telemetry::Json per = telemetry::Json::array();
    for (unsigned i = 0; i < faultsim::kNumProfiles; ++i) {
      telemetry::Json pj = telemetry::Json::object();
      pj.set("profile", telemetry::Json::str(profiles[i].name));
      pj.set("tally", tally_json(m.per_profile[i]));
      per.push(std::move(pj));
    }
    mj.set("per_profile", std::move(per));
    models.push(std::move(mj));
  }
  p.set("models", std::move(models));
  telemetry::Json costs = telemetry::Json::array();
  for (unsigned i = 0; i < faultsim::kNumProfiles; ++i) {
    telemetry::Json cj = telemetry::Json::object();
    cj.set("profile", telemetry::Json::str(profiles[i].name));
    cj.set("ops", ops_json(result.costs[i].ops));
    cj.set("cycles", telemetry::Json::number(result.costs[i].cycles));
    cj.set("energy_uj", telemetry::Json::number(result.costs[i].energy_uj));
    costs.push(std::move(cj));
  }
  p.set("costs", std::move(costs));
  return p;
}

telemetry::Json mem_campaign_payload(
    const faultsim::MemCampaignResult& result) {
  const auto& profiles = faultsim::protection_profiles();
  telemetry::Json p = telemetry::Json::object();
  p.set("seed", telemetry::Json::number(result.config.seed));
  p.set("runs_per_cell", telemetry::Json::number(result.config.runs_per_cell));
  p.set("curve", telemetry::Json::str(result.config.curve));
  telemetry::Json models = telemetry::Json::array();
  for (const faultsim::MemModelReport& m : result.models) {
    telemetry::Json mj = telemetry::Json::object();
    mj.set("model",
           telemetry::Json::str(armvm::mem_model_name(m.config.kind)));
    mj.set("clean_cycles", telemetry::Json::number(m.clean_cycles));
    mj.set("clean_energy_pj", telemetry::Json::number(m.clean_energy_pj));
    telemetry::Json cells = telemetry::Json::array();
    for (const faultsim::MemCell& c : m.cells) {
      telemetry::Json cj = telemetry::Json::object();
      cj.set("ber", telemetry::Json::number(c.ber));
      cj.set("flipped_bits", telemetry::Json::number(c.flipped_bits));
      cj.set("hw_corrections", telemetry::Json::number(c.hw_corrections));
      cj.set("scrub_corrections",
             telemetry::Json::number(c.scrub_corrections));
      telemetry::Json per = telemetry::Json::array();
      for (unsigned i = 0; i < faultsim::kNumProfiles; ++i) {
        telemetry::Json pj = telemetry::Json::object();
        pj.set("profile", telemetry::Json::str(profiles[i].name));
        pj.set("tally", mem_tally_json(c.per_profile[i]));
        per.push(std::move(pj));
      }
      cj.set("per_profile", std::move(per));
      cells.push(std::move(cj));
    }
    mj.set("cells", std::move(cells));
    models.push(std::move(mj));
  }
  p.set("models", std::move(models));
  return p;
}

telemetry::Json ct_payload(const sca::CtReport& report) {
  telemetry::Json p = telemetry::Json::object();
  p.set("kernel", telemetry::Json::str(report.target));
  p.set("runs", telemetry::Json::number(std::uint64_t{report.runs}));
  p.set("constant", telemetry::Json::boolean(report.constant));
  p.set("constant_addresses",
        telemetry::Json::boolean(report.constant_addresses));
  p.set("trace_len", telemetry::Json::number(report.trace_len));
  p.set("ref_cycles", telemetry::Json::number(report.ref_cycles));
  p.set("min_cycles", telemetry::Json::number(report.min_cycles));
  p.set("max_cycles", telemetry::Json::number(report.max_cycles));
  p.set("digest", telemetry::Json::number(report.digest));
  return p;
}

// ---- Connection ------------------------------------------------------

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

bool Server::Connection::send(const telemetry::Json& doc) {
  const std::string body = doc.dump();
  std::lock_guard<std::mutex> lock(write_mu);
  return wire::write_frame(fd, body);
}

// ---- Server ----------------------------------------------------------

struct Server::WorkerState {
  std::map<std::string, workloads::ReplayImages> images;
  std::map<std::string, workloads::WorkloadSpec> specs;
};

Server::Server(const ServerConfig& config)
    : config_(config),
      metrics_(config.metrics != nullptr ? config.metrics : &own_metrics_),
      exec_(config.workers),
      queue_(config.queue_depth != 0
                 ? config.queue_depth
                 : throw std::invalid_argument(
                       "serve: queue_depth must be nonzero")) {
  if (config_.max_batch == 0) config_.max_batch = 1;
}

Server::~Server() { stop(); }

void Server::start() {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(lfd, 64) < 0) {
    const int err = errno;
    ::close(lfd);
    throw std::runtime_error(std::string("serve: cannot listen on port ") +
                             std::to_string(config_.port) + ": " +
                             std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(lfd, std::memory_order_release);

  running_.store(true, std::memory_order_release);
  metrics_->gauge("serve.workers").set(exec_.threads());
  metrics_->gauge("serve.queue_depth").set(queue_.capacity());
  acceptor_ = std::thread([this] { accept_loop(); });
  pool_ = std::thread([this] {
    try {
      exec_.run_workers([this](unsigned w) { worker_loop(w); });
    } catch (...) {
      // A worker died outside per-job handling (should not happen);
      // request teardown rather than wedging clients forever.
      stop_requested_.store(true, std::memory_order_release);
    }
  });
}

void Server::stop() {
  stop_requested_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);

  // Serialize the teardown itself: a second concurrent caller (e.g.
  // the destructor racing a wait() thread) must block until the first
  // stop() has finished joining, not return into member destruction
  // while threads are still live.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;

  // The acceptor may be blocked in ::accept on this fd; shutdown wakes
  // it. The exchange keeps the fd value itself race-free with the
  // acceptor's per-iteration snapshot.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (acceptor_.joinable()) acceptor_.join();

  // Closing the queue lets workers drain what is already admitted and
  // then exit; jobs in flight still get their responses. try_push fails
  // once the queue is closed, so a session racing this close gets a
  // failed push and answers `shutting_down` itself — no admitted job is
  // ever destroyed unanswered.
  queue_.close();
  if (pool_.joinable()) pool_.join();

  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
    for (const std::weak_ptr<Connection>& w : conns_) {
      if (std::shared_ptr<Connection> c = w.lock()) {
        ::shutdown(c->fd, SHUT_RDWR);
      }
    }
    conns_.clear();
  }
  for (std::thread& t : sessions) {
    if (t.joinable()) t.join();
  }
}

void Server::wait() {
  while (!stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop();
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // stop() already retired the socket
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed (stop()) or fatal
    }
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    conns_.push_back(conn);
    sessions_.emplace_back(
        [this, conn = std::move(conn)] { session_loop(conn); });
  }
}

void Server::session_loop(std::shared_ptr<Connection> conn) {
  telemetry::Counter& busy = metrics_->counter("serve.busy");
  std::string body;
  for (;;) {
    bool bad_frame = false;
    if (!wire::read_frame(conn->fd, body, &bad_frame)) {
      if (bad_frame) {
        // The stream is desynchronized; answer once, then hang up.
        conn->send(wire::make_error(0, "", wire::ErrorCode::kBadFrame,
                                    "bad frame length prefix"));
      }
      break;
    }
    telemetry::Json doc;
    try {
      doc = telemetry::Json::parse(body);
    } catch (const std::exception& e) {
      conn->send(
          wire::make_error(0, "", wire::ErrorCode::kBadJson, e.what()));
      continue;
    }
    wire::RequestParse parsed = wire::parse_request(doc);
    if (!parsed.ok) {
      conn->send(wire::make_error(parsed.req.id, parsed.req.op, parsed.code,
                                  parsed.message));
      continue;
    }
    wire::Request& req = parsed.req;

    // Control-plane ops answer inline from the session thread: they
    // must work even when the work queue is saturated.
    if (req.op == "ping") {
      telemetry::Json p = telemetry::Json::object();
      p.set("pong", telemetry::Json::boolean(true));
      conn->send(wire::make_response(req.id, req.op, std::move(p)));
      continue;
    }
    if (req.op == "stats") {
      conn->send(wire::make_response(req.id, req.op, stats_payload()));
      continue;
    }
    if (req.op == "shutdown") {
      telemetry::Json p = telemetry::Json::object();
      p.set("stopping", telemetry::Json::boolean(true));
      conn->send(wire::make_response(req.id, req.op, std::move(p)));
      stop_requested_.store(true, std::memory_order_release);
      continue;
    }
    if (!is_known_op(req.op)) {
      conn->send(wire::make_error(req.id, req.op,
                                  wire::ErrorCode::kUnknownOp,
                                  "op '" + req.op + "' is not served"));
      continue;
    }
    if (stop_requested()) {
      conn->send(wire::make_error(req.id, req.op,
                                  wire::ErrorCode::kShuttingDown,
                                  "server is draining"));
      continue;
    }
    const std::uint64_t id = req.id;
    const std::string op = req.op;
    Job job{conn, std::move(req), now_ns()};
    if (!queue_.try_push(std::move(job))) {
      if (queue_.closed()) {
        conn->send(wire::make_error(id, op, wire::ErrorCode::kShuttingDown,
                                    "server is draining"));
      } else {
        busy.add(1);
        conn->send(wire::make_error(
            id, op, wire::ErrorCode::kBusy,
            "work queue full (depth " + std::to_string(queue_.capacity()) +
                "); retry"));
      }
    }
  }
  ::shutdown(conn->fd, SHUT_RD);
}

telemetry::Json Server::stats_payload() const {
  telemetry::Json p = telemetry::Json::object();
  p.set("workers", telemetry::Json::number(std::uint64_t{exec_.threads()}));
  p.set("queue_depth", telemetry::Json::number(
                           static_cast<std::uint64_t>(queue_.capacity())));
  p.set("queued", telemetry::Json::number(
                      static_cast<std::uint64_t>(queue_.size_approx())));
  p.set("metrics", metrics_->snapshot_json(/*include_wall=*/true));
  return p;
}

telemetry::Json Server::handle(WorkerState& state, const Job& job) {
  const wire::Request& req = job.req;
  try {
    if (is_workload_op(req.op)) {
      const std::string curve = param_str(req.params, "curve", "sect233k1");
      const std::uint64_t reps64 = param_u64(req.params, "reps", 1);
      if (reps64 == 0 || reps64 > 1000) {
        throw OpError{wire::ErrorCode::kBadParam,
                      "param 'reps' must be in [1, 1000]"};
      }
      const unsigned reps = static_cast<unsigned>(reps64);
      const std::string key = req.op + "-" + curve;
      auto it = state.specs.find(key);
      if (it == state.specs.end()) {
        // First sight of this workload on this worker: resolve the spec
        // and its kernel images once; afterwards the hot path never
        // touches the registry mutex.
        workloads::WorkloadSpec spec = workloads::make_workload(req.op, curve);
        state.images.emplace(key, workloads::ReplayImages::resolve(spec));
        it = state.specs.emplace(key, std::move(spec)).first;
      }
      const workloads::WorkloadSpec& spec = it->second;
      const workloads::ReplayResult result = workloads::replay(
          spec, state.images.at(key), config_.engine, config_.mem_model, reps);
      metrics_->record("serve." + req.op + ".vm_cycles",
                       telemetry::Unit::kCycles, result.stats.cycles);
      return workload_payload(spec, reps, result, config_.engine,
                              config_.mem_model);
    }
    if (req.op == "campaign") {
      faultsim::CampaignConfig cfg;
      cfg.curve = param_str(req.params, "curve", cfg.curve);
      cfg.seed = param_u64(req.params, "seed", cfg.seed);
      const std::uint64_t runs = param_u64(req.params, "runs", 50);
      if (runs == 0 || runs > 1000) {
        throw OpError{wire::ErrorCode::kBadParam,
                      "param 'runs' must be in [1, 1000]"};
      }
      cfg.runs_per_model = runs;
      cfg.threads = 1;  // the serve workers are the parallelism
      cfg.engine = config_.engine;
      return campaign_payload(faultsim::run_kp_campaign(cfg));
    }
    if (req.op == "memfault") {
      faultsim::MemCampaignConfig cfg;
      cfg.curve = param_str(req.params, "curve", cfg.curve);
      cfg.seed = param_u64(req.params, "seed", cfg.seed);
      const std::uint64_t runs = param_u64(req.params, "runs", 20);
      if (runs == 0 || runs > 1000) {
        throw OpError{wire::ErrorCode::kBadParam,
                      "param 'runs' must be in [1, 1000]"};
      }
      cfg.runs_per_cell = runs;
      cfg.threads = 1;
      cfg.engine = config_.engine;
      return mem_campaign_payload(faultsim::run_mem_campaign(cfg));
    }
    if (req.op == "sca") {
      sca::CtConfig cfg;
      cfg.kernel = param_str(req.params, "kernel", cfg.kernel);
      cfg.seed = param_u64(req.params, "seed", cfg.seed);
      const std::uint64_t runs = param_u64(req.params, "runs", cfg.runs);
      if (runs < 2 || runs > 1000) {
        throw OpError{wire::ErrorCode::kBadParam,
                      "param 'runs' must be in [2, 1000]"};
      }
      cfg.runs = static_cast<unsigned>(runs);
      cfg.engine = config_.engine;
      return ct_payload(sca::check_kernel_constant_trace(cfg));
    }
    if (req.op == "profile") {
      const std::string kernel = param_str(req.params, "kernel", "mul");
      const std::uint64_t calls = param_u64(req.params, "calls", 1);
      if (calls == 0 || calls > 1000) {
        throw OpError{wire::ErrorCode::kBadParam,
                      "param 'calls' must be in [1, 1000]"};
      }
      return profile_payload_for(kernel, static_cast<unsigned>(calls),
                                 config_.engine, config_.mem_model);
    }
    if (req.op == "sleep") {
      // Diagnostic op: hold a worker for `ms` milliseconds. Exists so
      // tests and benches can saturate the bounded queue on purpose.
      const std::uint64_t ms = param_u64(req.params, "ms", 10);
      if (ms > 5000) {
        throw OpError{wire::ErrorCode::kBadParam,
                      "param 'ms' must be <= 5000"};
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      telemetry::Json p = telemetry::Json::object();
      p.set("slept_ms", telemetry::Json::number(ms));
      return p;
    }
  } catch (const OpError&) {
    throw;
  } catch (const std::invalid_argument& e) {
    throw OpError{wire::ErrorCode::kBadParam, e.what()};
  } catch (const std::exception& e) {
    throw OpError{wire::ErrorCode::kInternal, e.what()};
  }
  throw OpError{wire::ErrorCode::kUnknownOp,
                "op '" + req.op + "' is not served"};
}

void Server::finish(const Job& job, const telemetry::Json& response,
                    bool ok) {
  job.conn->send(response);
  metrics_->counter("serve.requests").add(1);
  if (!ok) metrics_->counter("serve.errors").add(1);
  metrics_->record("serve." + job.req.op + ".latency_ns",
                   telemetry::Unit::kNanos, now_ns() - job.enqueue_ns);
}

void Server::worker_loop(unsigned worker) {
  (void)worker;
  WorkerState state;
  telemetry::Counter& coalesced = metrics_->counter("serve.coalesced");
  Job first;
  while (queue_.pop_wait(first)) {
    std::vector<Job> batch;
    batch.push_back(std::move(first));
    if (config_.coalesce) {
      Job more;
      while (batch.size() < config_.max_batch && queue_.try_pop(more)) {
        batch.push_back(std::move(more));
      }
    }
    std::vector<bool> done(batch.size(), false);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (done[i]) continue;
      // Coalescing is deduplication: requests with the same op and the
      // same params dump share one library call, and every requester
      // gets the byte-identical payload — so a coalesced response
      // cannot differ from an uncoalesced one.
      std::vector<std::size_t> group{i};
      if (is_workload_op(batch[i].req.op)) {
        const std::string key =
            batch[i].req.op + "\n" + batch[i].req.params.dump();
        for (std::size_t j = i + 1; j < batch.size(); ++j) {
          if (done[j] || !is_workload_op(batch[j].req.op)) continue;
          if (batch[j].req.op + "\n" + batch[j].req.params.dump() == key) {
            group.push_back(j);
          }
        }
      }
      telemetry::Json payload;
      OpError err{wire::ErrorCode::kInternal, ""};
      bool ok = true;
      try {
        payload = handle(state, batch[i]);
      } catch (const OpError& e) {
        ok = false;
        err = e;
      }
      for (std::size_t j : group) {
        const telemetry::Json response =
            ok ? wire::make_response(batch[j].req.id, batch[j].req.op,
                                     payload)
               : wire::make_error(batch[j].req.id, batch[j].req.op, err.code,
                                  err.message);
        finish(batch[j], response, ok);
        done[j] = true;
      }
      if (group.size() > 1) coalesced.add(group.size() - 1);
    }
  }
}

}  // namespace eccm0::service
