// Minimal blocking client of the serve wire protocol: connect, send one
// eccm0.req.v1 frame, read one eccm0.resp.v1 frame. One outstanding
// request per Client — callers that want pipelining write frames
// themselves (see wire.h); `ecctool client` and the loopback tests are
// the intended users.
#pragma once

#include <cstdint>
#include <string>

#include "service/wire.h"
#include "telemetry/json.h"

namespace eccm0::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to 127.0.0.1:port. Throws std::runtime_error on failure.
  void connect_to(std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request and block for its response document. Throws
  /// std::runtime_error on a transport failure (peer gone, bad frame).
  telemetry::Json call(const std::string& op, telemetry::Json params);

  /// Send raw bytes as one frame and read back one response document —
  /// the malformed-request test path (`ecctool client --raw`).
  telemetry::Json call_raw(const std::string& body);

  /// The socket fd (for tests that want to speak frames directly).
  int fd() const { return fd_; }

 private:
  telemetry::Json read_response();

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace eccm0::service
