#include "service/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace eccm0::service {

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::connect_to(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int r;
  do {
    r = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    const int err = errno;
    close();
    throw std::runtime_error(std::string("client: cannot connect to port ") +
                             std::to_string(port) + ": " +
                             std::strerror(err));
  }
}

telemetry::Json Client::read_response() {
  std::string body;
  if (!wire::read_frame(fd_, body)) {
    throw std::runtime_error("client: connection closed mid-response");
  }
  return telemetry::Json::parse(body);
}

telemetry::Json Client::call(const std::string& op, telemetry::Json params) {
  if (fd_ < 0) throw std::runtime_error("client: not connected");
  const telemetry::Json req =
      wire::make_request(next_id_++, op, std::move(params));
  if (!wire::write_frame(fd_, req.dump())) {
    throw std::runtime_error("client: send failed");
  }
  return read_response();
}

telemetry::Json Client::call_raw(const std::string& body) {
  if (fd_ < 0) throw std::runtime_error("client: not connected");
  if (!wire::write_frame(fd_, body)) {
    throw std::runtime_error("client: send failed");
  }
  return read_response();
}

}  // namespace eccm0::service
