// The serve front-end: a long-running loopback service exposing the
// repo's crypto workloads (kP, ECDH agreement, ECDSA sign+verify) and
// campaign jobs (fault, memfault, sca, profile) over the versioned wire
// schema of wire.h (DESIGN.md §14).
//
// Threading model:
//
//   acceptor thread ──► session threads (one per connection)
//                            │  parse + validate; ping/stats/shutdown
//                            │  answered inline, work ops enqueued
//                            ▼
//                  sim::MpmcQueue<Job> (bounded; full ⇒ typed `busy`)
//                            │
//                            ▼
//          sim::BatchExecutor::run_workers — N worker threads, each
//          with a private workloads::ReplayImages shard (the registry
//          mutex is off the request hot path) and a coalescing drain:
//          identical concurrent workload requests are computed once
//          and every requester gets the byte-identical payload.
//
// Identity contract: every served payload is built by the same
// payload builders (workload_payload, campaign_payload, ...) a direct
// library call would use, over the same deterministic library results —
// so a response payload is bit-identical to the equivalent in-process
// call for any worker count, coalesced or not. The loopback tests and
// bench_serve hold this as an acceptance gate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "armvm/cpu.h"
#include "armvm/memmodel.h"
#include "faultsim/campaign.h"
#include "sca/ct_check.h"
#include "service/wire.h"
#include "sim/batch.h"
#include "sim/mpmc_queue.h"
#include "telemetry/metrics.h"
#include "workloads/spec.h"

namespace eccm0::service {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// with Server::port() after start()).
  std::uint16_t port = 0;
  /// Worker threads draining the queue (0 = hardware concurrency).
  unsigned workers = 1;
  /// Bound of the work queue. Must be nonzero — a server that can admit
  /// no work is a configuration error, and the constructor throws
  /// std::invalid_argument rather than wedging every client.
  std::size_t queue_depth = 64;
  /// Execution engine / memory model for every VM run the server does.
  armvm::Cpu::DecodeMode engine = armvm::Cpu::DecodeMode::kPredecode;
  armvm::MemModelConfig mem_model{};
  /// Coalesce identical concurrent workload requests into one run.
  bool coalesce = true;
  /// Max jobs one worker drains per coalescing pass.
  std::size_t max_batch = 16;
  /// Optional external registry; the server owns a private one when
  /// null (the `stats` op serves whichever is active).
  telemetry::MetricsRegistry* metrics = nullptr;
};

class Server {
 public:
  /// Validates the config (throws std::invalid_argument on
  /// queue_depth == 0). Does not open the socket — that is start().
  explicit Server(const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind 127.0.0.1:port, start the acceptor, sessions and worker pool.
  /// Throws std::runtime_error if the socket cannot be opened.
  void start();

  /// Drain and tear everything down (idempotent, also under concurrent
  /// callers: later callers block until the first teardown finishes):
  /// stop accepting, close the queue (queued jobs still get answered),
  /// join workers, then sessions. Safe to call from any thread except
  /// a session/worker.
  void stop();

  /// Block until a `shutdown` request (or stop()) arrives, then stop().
  void wait();

  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  /// True once a `shutdown` request was served (or stop() began).
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  telemetry::MetricsRegistry& metrics() { return *metrics_; }
  const ServerConfig& config() const { return config_; }

 private:
  /// One accepted connection. The session thread owns the read side;
  /// workers write responses under the mutex. The fd closes when the
  /// last reference drops.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    /// Serialize and frame `doc` (thread-safe). False on a dead peer.
    bool send(const telemetry::Json& doc);
    int fd;
    std::mutex write_mu;
  };

  struct Job {
    std::shared_ptr<Connection> conn;
    wire::Request req;
    std::uint64_t enqueue_ns = 0;
  };

  /// Per-worker state: the ReplayImages registry shard, keyed by
  /// workload name, resolved once per (worker, workload).
  struct WorkerState;

  void accept_loop();
  void session_loop(std::shared_ptr<Connection> conn);
  void worker_loop(unsigned worker);
  /// Serve one job group leader; returns the payload (throws typed).
  telemetry::Json handle(WorkerState& state, const Job& job);
  telemetry::Json stats_payload() const;
  void finish(const Job& job, const telemetry::Json& response, bool ok);

  ServerConfig config_;
  telemetry::MetricsRegistry own_metrics_;
  telemetry::MetricsRegistry* metrics_;
  sim::BatchExecutor exec_;
  sim::MpmcQueue<Job> queue_;

  /// Atomic: stop() retires it (exchange to -1, then close) while the
  /// acceptor snapshots it per iteration.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  /// Guards the teardown in stop(); stopped_ is written under it.
  std::mutex stop_mu_;
  bool stopped_ = false;

  std::thread acceptor_;
  std::thread pool_;
  std::mutex sessions_mu_;
  std::vector<std::thread> sessions_;
  std::vector<std::weak_ptr<Connection>> conns_;
};

// ---- payload builders -----------------------------------------------
//
// The serve handlers and the direct library path share these builders;
// byte-comparing their dumps is how tests prove the service adds
// nothing and loses nothing.

/// Payload of the kp / ecdh / ecdsa ops: the workload identity, its
/// field-op mix, and the deterministic replay result (cycles,
/// instructions, fused pairs, output digest) under `engine`/`mem_model`.
telemetry::Json workload_payload(const workloads::WorkloadSpec& spec,
                                 unsigned reps,
                                 const workloads::ReplayResult& result,
                                 armvm::Cpu::DecodeMode engine,
                                 const armvm::MemModelConfig& mem_model);

/// Payload of the `campaign` op: the full fault-model × protection-
/// profile detection matrix plus clean-run countermeasure costs.
telemetry::Json campaign_payload(const faultsim::CampaignResult& result);

/// Payload of the `memfault` op: the BER × memory-model × profile sweep.
telemetry::Json mem_campaign_payload(const faultsim::MemCampaignResult& result);

/// Payload of the `sca` op: the constant-trace verdicts of one kernel.
telemetry::Json ct_payload(const sca::CtReport& report);

}  // namespace eccm0::service
