#include "service/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace eccm0::service::wire {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad_frame";
    case ErrorCode::kBadJson: return "bad_json";
    case ErrorCode::kBadSchema: return "bad_schema";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownOp: return "unknown_op";
    case ErrorCode::kBadParam: return "bad_param";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

RequestParse parse_request(const telemetry::Json& doc) {
  RequestParse out;
  if (!doc.is_object()) {
    out.code = ErrorCode::kBadRequest;
    out.message = "request is not a JSON object";
    return out;
  }
  // Recover the id first so even schema errors correlate to a request.
  const telemetry::Json* id = doc.get("id");
  if (id != nullptr && id->kind() == telemetry::Json::Kind::kNumber) {
    out.req.id = id->as_u64();
  }
  const telemetry::Json* schema = doc.get("schema");
  if (schema == nullptr ||
      schema->kind() != telemetry::Json::Kind::kString) {
    out.code = ErrorCode::kBadSchema;
    out.message = std::string("missing schema tag; this server speaks ") +
                  kRequestSchema;
    return out;
  }
  if (schema->as_string() != kRequestSchema) {
    out.code = ErrorCode::kBadSchema;
    out.message = "unsupported schema '" + schema->as_string() +
                  "'; this server speaks " + kRequestSchema;
    return out;
  }
  if (id == nullptr || id->kind() != telemetry::Json::Kind::kNumber) {
    out.code = ErrorCode::kBadRequest;
    out.message = "request 'id' must be a number";
    return out;
  }
  const telemetry::Json* op = doc.get("op");
  if (op == nullptr || op->kind() != telemetry::Json::Kind::kString ||
      op->as_string().empty()) {
    out.code = ErrorCode::kBadRequest;
    out.message = "request 'op' must be a non-empty string";
    return out;
  }
  out.req.op = op->as_string();
  const telemetry::Json* params = doc.get("params");
  if (params != nullptr) {
    if (!params->is_object()) {
      out.code = ErrorCode::kBadRequest;
      out.message = "request 'params' must be an object";
      return out;
    }
    out.req.params = *params;
  }
  out.ok = true;
  return out;
}

telemetry::Json make_request(std::uint64_t id, const std::string& op,
                             telemetry::Json params) {
  telemetry::Json req = telemetry::Json::object();
  req.set("schema", telemetry::Json::str(kRequestSchema));
  req.set("id", telemetry::Json::number(id));
  req.set("op", telemetry::Json::str(op));
  req.set("params", std::move(params));
  return req;
}

namespace {

telemetry::Json response_head(std::uint64_t id, const std::string& op,
                              bool ok) {
  telemetry::Json resp = telemetry::Json::object();
  resp.set("schema", telemetry::Json::str(kResponseSchema));
  resp.set("id", telemetry::Json::number(id));
  resp.set("op", telemetry::Json::str(op));
  resp.set("ok", telemetry::Json::boolean(ok));
  return resp;
}

}  // namespace

telemetry::Json make_response(std::uint64_t id, const std::string& op,
                              telemetry::Json payload) {
  telemetry::Json resp = response_head(id, op, true);
  resp.set("payload", std::move(payload));
  return resp;
}

telemetry::Json make_error(std::uint64_t id, const std::string& op,
                           ErrorCode code, const std::string& message) {
  telemetry::Json resp = response_head(id, op, false);
  telemetry::Json err = telemetry::Json::object();
  err.set("code", telemetry::Json::str(error_code_name(code)));
  err.set("message", telemetry::Json::str(message));
  resp.set("error", std::move(err));
  return resp;
}

namespace {

bool read_exact(int fd, void* buf, std::size_t n, bool* saw_any) {
  std::uint8_t* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) return false;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
    if (saw_any != nullptr) *saw_any = true;
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(buf);
  std::size_t put = 0;
  while (put < n) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not SIGPIPE.
    const ssize_t r = ::send(fd, p + put, n - put, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool read_frame(int fd, std::string& body, bool* bad_frame) {
  if (bad_frame != nullptr) *bad_frame = false;
  std::uint8_t prefix[4];
  if (!read_exact(fd, prefix, sizeof(prefix), nullptr)) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            static_cast<std::uint32_t>(prefix[1]) << 8 |
                            static_cast<std::uint32_t>(prefix[2]) << 16 |
                            static_cast<std::uint32_t>(prefix[3]) << 24;
  if (len == 0 || len > kMaxFrameBytes) {
    if (bad_frame != nullptr) *bad_frame = true;
    return false;
  }
  body.resize(len);
  return read_exact(fd, body.data(), len, nullptr);
}

bool write_frame(int fd, const std::string& body) {
  if (body.empty() || body.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(len & 0xFF),
      static_cast<std::uint8_t>(len >> 8 & 0xFF),
      static_cast<std::uint8_t>(len >> 16 & 0xFF),
      static_cast<std::uint8_t>(len >> 24 & 0xFF)};
  if (!write_exact(fd, prefix, sizeof(prefix))) return false;
  return write_exact(fd, body.data(), body.size());
}

}  // namespace eccm0::service::wire
