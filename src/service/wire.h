// Versioned wire schema of the serve front-end (DESIGN.md §14).
//
// Transport: length-prefixed frames over a stream socket — a 4-byte
// little-endian byte count followed by that many bytes of UTF-8 JSON.
// One frame carries one request or one response envelope:
//
//   request  { "schema": "eccm0.req.v1",  "id": u64, "op": "...",
//              "params": { op-specific } }
//   response { "schema": "eccm0.resp.v1", "id": u64, "op": "...",
//              "ok": bool,
//              "error":   { "code": "...", "message": "..." }   (!ok)
//              "payload": { op-owned shape }                    (ok) }
//
// Key order is fixed (insertion-ordered telemetry::Json, the same
// discipline as the eccm0.run.v1 manifest): schema, id, op, ok, then
// error or payload. Error codes are a closed, stable set — clients
// may switch on the strings below; messages are human-readable and
// carry no contract. An unknown request schema version gets a typed
// `bad_schema` response on the same connection, never a disconnect.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/json.h"

namespace eccm0::service::wire {

inline constexpr const char* kRequestSchema = "eccm0.req.v1";
inline constexpr const char* kResponseSchema = "eccm0.resp.v1";

/// Hard bound on one frame's body; a larger announced length is a
/// protocol error (bad_frame) and desynchronizes the stream, so the
/// server responds and then closes that connection.
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

/// Stable, closed error-code set of eccm0.resp.v1.
enum class ErrorCode : std::uint8_t {
  kBadFrame,      ///< unframeable bytes (zero/oversized length prefix)
  kBadJson,       ///< frame body is not parseable JSON
  kBadSchema,     ///< unknown/missing request schema version
  kBadRequest,    ///< envelope malformed (id/op missing or mistyped)
  kUnknownOp,     ///< op is not served
  kBadParam,      ///< op-specific parameter invalid
  kBusy,          ///< bounded work queue full — backpressure, retry later
  kShuttingDown,  ///< server is draining; no new work accepted
  kInternal,      ///< handler threw; message carries what()
};

/// The wire spelling of a code ("bad_frame", "busy", ...). Stable.
const char* error_code_name(ErrorCode code);

/// Parsed request envelope.
struct Request {
  std::uint64_t id = 0;
  std::string op;
  telemetry::Json params = telemetry::Json::object();
};

/// Validate a parsed request document against eccm0.req.v1. On failure
/// returns false and fills code/message (id is recovered when present
/// so the error response can still correlate).
struct RequestParse {
  bool ok = false;
  Request req;
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};
RequestParse parse_request(const telemetry::Json& doc);

/// Build the request envelope in wire key order.
telemetry::Json make_request(std::uint64_t id, const std::string& op,
                             telemetry::Json params);

/// Build a success response (ok, payload) in wire key order.
telemetry::Json make_response(std::uint64_t id, const std::string& op,
                              telemetry::Json payload);

/// Build a typed error response (ok=false, error object) in wire key
/// order.
telemetry::Json make_error(std::uint64_t id, const std::string& op,
                           ErrorCode code, const std::string& message);

// ---- framing over a connected stream socket --------------------------

/// Read one length-prefixed frame into `body`. Returns false on clean
/// EOF before the prefix, on transport error, or on a bad length
/// (`*bad_frame` distinguishes the last case when non-null).
bool read_frame(int fd, std::string& body, bool* bad_frame = nullptr);

/// Write one length-prefixed frame. False on transport error.
bool write_frame(int fd, const std::string& body);

}  // namespace eccm0::service::wire
