#include "profile/heatmap.h"

#include <algorithm>

namespace eccm0::profile {

std::vector<std::pair<std::size_t, std::uint64_t>> MemHeatmap::hottest(
    std::size_t n) const {
  std::vector<std::pair<std::size_t, std::uint64_t>> all;
  for (std::size_t w = 0; w < loads_.size(); ++w) {
    if (traffic_at(w) != 0) all.emplace_back(w, traffic_at(w));
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (all.size() > n) all.resize(n);
  return all;
}

void MemHeatmap::clear() {
  std::fill(loads_.begin(), loads_.end(), 0);
  std::fill(stores_.begin(), stores_.end(), 0);
  total_loads_ = total_stores_ = code_reads_ = 0;
}

}  // namespace eccm0::profile
