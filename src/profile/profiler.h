// Symbol-attributed profiler over the armvm's rich trace events.
//
// The paper's whole argument is an attribution claim — on the M0+ the
// 2-cycle loads/stores dominate, and the fixed-register LD multiplication
// wins by keeping the hottest product words out of memory. RunStats can
// only say how much a routine cost in aggregate; this sink says *where*
// the cycles, instructions and Table-3 energy went, per function and per
// call site, by following BL/BLX/BX retirement with a shadow call stack
// and naming frames through the assembler's `Program::symbols` map.
//
// Shadow-stack rules (documented in DESIGN.md):
//  - BL/BLX retire  -> push a frame for the branch target; the call
//    instruction's own cycles belong to the caller.
//  - an indirect transfer (BX, POP {..,pc}, MOV/ADD pc, ..) whose target
//    matches a frame's return address -> pop to and including that frame
//    (frames skipped over were tail-called and end here too).
//  - an indirect transfer onto a *label* address with no matching return
//    address -> tail call: the top frame is replaced, inheriting the
//    original return address.
//  - BKPT or a branch to the return sentinel ends the run: every open
//    frame closes, and the next event starts a fresh root activation
//    (persistent kernel machines re-enter `entry` once per call()).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "armvm/asm.h"
#include "armvm/cpu.h"
#include "costmodel/energy.h"

namespace eccm0::profile {

class Profiler final : public armvm::TraceSink {
 public:
  /// Flat + inclusive attribution for one function (a BL/BLX target, a
  /// tail-call target, or the root entry point).
  struct FunctionStats {
    std::string name;
    std::uint32_t addr = 0;
    std::uint64_t calls = 0;
    std::uint64_t instructions = 0;  ///< retired while this fn was on top
    std::uint64_t self_cycles = 0;
    std::uint64_t inclusive_cycles = 0;
    costmodel::CycleHistogram self_hist;
    costmodel::CycleHistogram inclusive_hist;

    double self_energy_pj(const costmodel::InstructionEnergyTable& t =
                              costmodel::kM0PlusEnergy) const {
      return costmodel::energy_of(self_hist, t).energy_pj;
    }
    double inclusive_energy_pj(const costmodel::InstructionEnergyTable& t =
                                   costmodel::kM0PlusEnergy) const {
      return costmodel::energy_of(inclusive_hist, t).energy_pj;
    }
  };

  struct CallSite {
    std::uint32_t site_pc = 0;  ///< address of the BL/BLX (or tail branch)
    std::string caller;
    std::string callee;
    std::uint64_t count = 0;
  };

  /// One completed function activation on the simulated cycle clock —
  /// the unit of the Chrome-trace timeline export.
  struct Span {
    std::string name;
    std::uint64_t begin_cycle = 0;
    std::uint64_t end_cycle = 0;
    unsigned depth = 0;  ///< 0 = root
  };

  explicit Profiler(const armvm::Program& prog);

  void on_retire(const armvm::TraceEvent& ev) override;

  /// Close any still-open activations at the last seen cycle. Idempotent;
  /// the accessors below call it themselves.
  void finalize();

  /// Per-function attribution, hottest self-cycles first.
  std::vector<FunctionStats> functions();
  /// Per-call-site counts, most frequent first.
  std::vector<CallSite> call_sites();
  /// Completed activations in begin-cycle order.
  const std::vector<Span>& spans();
  /// Collapsed stacks ("root;callee" -> self cycles), flamegraph format.
  const std::map<std::string, std::uint64_t>& collapsed_stacks();

  /// Totals over every event seen — these match the Cpu's RunStats
  /// exactly (cycles, instructions) and its Table-3 energy report.
  std::uint64_t total_cycles() const { return total_cycles_; }
  std::uint64_t total_instructions() const { return total_instructions_; }
  const costmodel::CycleHistogram& total_histogram() const {
    return total_hist_;
  }
  double total_energy_pj(const costmodel::InstructionEnergyTable& t =
                             costmodel::kM0PlusEnergy) const {
    return costmodel::energy_of(total_hist_, t).energy_pj;
  }

 private:
  struct Frame {
    std::size_t fn = 0;
    std::uint32_t return_addr = 0;
    std::size_t span = 0;     ///< index into spans_
    bool recursive = false;   ///< same fn already deeper on the stack
  };

  std::size_t fn_index(std::uint32_t addr);
  std::string name_of(std::uint32_t addr) const;
  void push_frame(std::size_t fn, std::uint32_t return_addr,
                  std::uint64_t begin_cycle);
  void pop_frame(std::uint64_t end_cycle);
  void rebuild_signature();

  std::map<std::uint32_t, std::string> symbols_;  ///< addr -> label
  std::vector<FunctionStats> fns_;
  std::unordered_map<std::uint32_t, std::size_t> fn_by_addr_;
  /// (site PC, callee fn) -> (caller fn at call time, count).
  std::map<std::pair<std::uint32_t, std::size_t>,
           std::pair<std::size_t, std::uint64_t>>
      call_sites_;
  std::vector<Frame> stack_;
  std::vector<Span> spans_;
  std::map<std::string, std::uint64_t> collapsed_;
  std::string signature_;  ///< ';'-joined names of the current stack
  bool run_open_ = false;
  std::uint64_t last_cycle_ = 0;  ///< clock after the last seen event
  std::uint64_t total_cycles_ = 0;
  std::uint64_t total_instructions_ = 0;
  costmodel::CycleHistogram total_hist_;
};

}  // namespace eccm0::profile
