// Exporters for the profiler's timeline and stacks:
//  - Chrome trace-event JSON on the simulated cycle clock (one complete
//    "X" event per function activation) — loadable in Perfetto / chrome
//    about:tracing, one track per profiled machine.
//  - Collapsed-stack text ("root;callee <self-cycles>"), the input format
//    of Brendan Gregg's flamegraph.pl and speedscope.
#pragma once

#include <span>
#include <string>

#include "costmodel/energy.h"
#include "profile/profiler.h"

namespace eccm0::profile {

/// One timeline track: a profiled machine with a display name.
struct NamedProfile {
  std::string name;
  Profiler* profiler = nullptr;
};

/// Serialize the tracks' spans as Chrome trace-event JSON. Timestamps are
/// microseconds of simulated time at `clock_hz` (the paper's 48 MHz by
/// default); each track becomes its own tid with a thread_name record.
std::string chrome_trace_json(std::span<const NamedProfile> tracks,
                              double clock_hz = costmodel::kClockHz);

/// Collapsed stacks of every track, cycle-weighted, one line per stack.
/// Track names prefix the stacks when more than one track is given.
std::string collapsed_stack_text(std::span<const NamedProfile> tracks);

/// Serialize a per-cycle scalar series (a TVLA t-trace, a power
/// waveform) as a Chrome counter track ("ph":"C") on the same simulated
/// clock as chrome_trace_json, so leakage peaks can be inspected in
/// Perfetto next to the function timeline. Non-finite samples are
/// clamped to +/-1e9 (Chrome's JSON dialect has no Infinity literal).
std::string counter_track_json(const std::string& name,
                               std::span<const double> values,
                               double clock_hz = costmodel::kClockHz);

/// Write `content` to `path`; returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace eccm0::profile
