#include "profile/trace_export.h"

#include <cstdio>

namespace eccm0::profile {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
      out += buf;
    } else {
      out += ch;
    }
  }
  return out;
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string chrome_trace_json(std::span<const NamedProfile> tracks,
                              double clock_hz) {
  const double us_per_cycle = 1e6 / clock_hz;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) out += ',';
    out += ev;
    first = false;
  };
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    const unsigned tid = static_cast<unsigned>(t) + 1;
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(tid) + ",\"args\":{\"name\":\"" +
         json_escape(tracks[t].name) + "\"}}");
    for (const Profiler::Span& s : tracks[t].profiler->spans()) {
      const std::uint64_t dur_cycles = s.end_cycle - s.begin_cycle;
      emit("{\"name\":\"" + json_escape(s.name) +
           "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + fmt(static_cast<double>(s.begin_cycle) *
                            us_per_cycle) +
           ",\"dur\":" + fmt(static_cast<double>(dur_cycles) * us_per_cycle) +
           ",\"args\":{\"cycles\":" + std::to_string(dur_cycles) +
           ",\"depth\":" + std::to_string(s.depth) + "}}");
    }
  }
  out += "]}";
  return out;
}

std::string collapsed_stack_text(std::span<const NamedProfile> tracks) {
  std::string out;
  for (const NamedProfile& t : tracks) {
    const std::string prefix =
        tracks.size() > 1 ? json_escape(t.name) + ";" : std::string{};
    for (const auto& [stack, cycles] : t.profiler->collapsed_stacks()) {
      out += prefix + stack + " " + std::to_string(cycles) + "\n";
    }
  }
  return out;
}

std::string counter_track_json(const std::string& name,
                               std::span<const double> values,
                               double clock_hz) {
  const double us_per_cycle = 1e6 / clock_hz;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  const std::string escaped = json_escape(name);
  for (std::size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    if (v != v) v = 0.0;  // NaN
    if (v > 1e9) v = 1e9;
    if (v < -1e9) v = -1e9;
    if (i != 0) out += ',';
    out += "{\"name\":\"" + escaped +
           "\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":" +
           fmt(static_cast<double>(i) * us_per_cycle) +
           ",\"args\":{\"value\":" + fmt(v) + "}}";
  }
  out += "]}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace eccm0::profile
