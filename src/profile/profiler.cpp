#include "profile/profiler.h"

#include <algorithm>
#include <cstdio>

namespace eccm0::profile {

using armvm::Op;

Profiler::Profiler(const armvm::Program& prog) {
  for (const auto& [name, addr] : prog.symbols()) {
    symbols_.emplace(addr, name);  // first (alphabetical) label wins
  }
}

std::string Profiler::name_of(std::uint32_t addr) const {
  char buf[48];
  auto it = symbols_.upper_bound(addr);
  if (it == symbols_.begin()) {
    std::snprintf(buf, sizeof(buf), "0x%x", addr);
    return buf;
  }
  --it;
  if (it->first == addr) return it->second;
  std::snprintf(buf, sizeof(buf), "%s+0x%x", it->second.c_str(),
                addr - it->first);
  return buf;
}

std::size_t Profiler::fn_index(std::uint32_t addr) {
  auto it = fn_by_addr_.find(addr);
  if (it != fn_by_addr_.end()) return it->second;
  FunctionStats fs;
  fs.name = name_of(addr);
  fs.addr = addr;
  fns_.push_back(std::move(fs));
  fn_by_addr_.emplace(addr, fns_.size() - 1);
  return fns_.size() - 1;
}

void Profiler::rebuild_signature() {
  signature_.clear();
  for (const Frame& f : stack_) {
    if (!signature_.empty()) signature_ += ';';
    signature_ += fns_[f.fn].name;
  }
}

void Profiler::push_frame(std::size_t fn, std::uint32_t return_addr,
                          std::uint64_t begin_cycle) {
  bool recursive = false;
  for (const Frame& f : stack_) {
    if (f.fn == fn) {
      recursive = true;
      break;
    }
  }
  fns_[fn].calls += 1;
  spans_.push_back({fns_[fn].name, begin_cycle, begin_cycle,
                    static_cast<unsigned>(stack_.size())});
  stack_.push_back({fn, return_addr, spans_.size() - 1, recursive});
  rebuild_signature();
}

void Profiler::pop_frame(std::uint64_t end_cycle) {
  spans_[stack_.back().span].end_cycle = end_cycle;
  stack_.pop_back();
}

void Profiler::on_retire(const armvm::TraceEvent& ev) {
  if (!run_open_) {
    // First event of a run (or re-entry of a persistent kernel machine
    // after BKPT): open the root activation at the event's PC.
    push_frame(fn_index(ev.pc), armvm::kReturnSentinel, ev.cycle);
    run_open_ = true;
  }

  const unsigned cyc = ev.cycles();
  last_cycle_ = ev.cycle + cyc;
  total_cycles_ += cyc;
  total_instructions_ += 1;

  FunctionStats& top = fns_[stack_.back().fn];
  top.instructions += 1;
  top.self_cycles += cyc;
  for (unsigned i = 0; i < ev.num_costs; ++i) {
    total_hist_.add(ev.costs[i].cls, ev.costs[i].cycles);
    top.self_hist.add(ev.costs[i].cls, ev.costs[i].cycles);
  }
  for (const Frame& f : stack_) {
    if (f.recursive) continue;  // count recursive activations once
    FunctionStats& fs = fns_[f.fn];
    fs.inclusive_cycles += cyc;
    for (unsigned i = 0; i < ev.num_costs; ++i) {
      fs.inclusive_hist.add(ev.costs[i].cls, ev.costs[i].cycles);
    }
  }
  collapsed_[signature_] += cyc;

  // Shadow-stack maintenance from the retired control transfer.
  const Op op = ev.ins.op;
  const std::uint32_t np = ev.next_pc;
  if (op == Op::kBkpt || np == armvm::kReturnSentinel) {
    while (!stack_.empty()) pop_frame(last_cycle_);
    run_open_ = false;
    signature_.clear();
    return;
  }
  if (op == Op::kBl || op == Op::kBlx) {
    const std::uint32_t ret = ev.pc + (op == Op::kBl ? 4u : 2u);
    const std::size_t caller = stack_.back().fn;
    const std::size_t callee = fn_index(np);
    auto& site = call_sites_[{ev.pc, callee}];
    site.first = caller;
    site.second += 1;
    push_frame(callee, ret, last_cycle_);
    return;
  }
  const bool indirect =
      op == Op::kBx || (op == Op::kPop && (ev.ins.reg_list & 0x100u) != 0) ||
      ((op == Op::kMovHi || op == Op::kAddHi) && ev.ins.rd == armvm::kPC);
  if (!indirect) return;
  // A return pops to (and including) the frame whose return address the
  // transfer lands on; frames skipped over were tail-called and end too.
  for (std::size_t i = stack_.size(); i-- > 1;) {
    if (stack_[i].return_addr == np) {
      while (stack_.size() > i) pop_frame(last_cycle_);
      rebuild_signature();
      return;
    }
  }
  // No matching return address: landing exactly on a label is a tail
  // call — replace the top frame, inheriting its return address.
  if (symbols_.count(np) != 0 && stack_.size() > 1) {
    const std::uint32_t ret = stack_.back().return_addr;
    const std::size_t caller = stack_.back().fn;
    pop_frame(last_cycle_);
    const std::size_t callee = fn_index(np);
    auto& site = call_sites_[{ev.pc, callee}];
    site.first = caller;
    site.second += 1;
    push_frame(callee, ret, last_cycle_);
  }
}

void Profiler::finalize() {
  if (!run_open_) return;
  while (!stack_.empty()) pop_frame(last_cycle_);
  run_open_ = false;
  signature_.clear();
}

std::vector<Profiler::FunctionStats> Profiler::functions() {
  finalize();
  std::vector<FunctionStats> out = fns_;
  std::sort(out.begin(), out.end(),
            [](const FunctionStats& a, const FunctionStats& b) {
              return a.self_cycles > b.self_cycles;
            });
  return out;
}

std::vector<Profiler::CallSite> Profiler::call_sites() {
  finalize();
  std::vector<CallSite> out;
  for (const auto& [key, val] : call_sites_) {
    CallSite cs;
    cs.site_pc = key.first;
    cs.caller = fns_[val.first].name;
    cs.callee = fns_[key.second].name;
    cs.count = val.second;
    out.push_back(std::move(cs));
  }
  std::sort(out.begin(), out.end(), [](const CallSite& a, const CallSite& b) {
    return a.count > b.count;
  });
  return out;
}

const std::vector<Profiler::Span>& Profiler::spans() {
  finalize();
  return spans_;
}

const std::map<std::string, std::uint64_t>& Profiler::collapsed_stacks() {
  finalize();
  return collapsed_;
}

}  // namespace eccm0::profile
