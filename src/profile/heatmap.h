// Per-word load/store heatmap of the simulated SRAM.
//
// Counts every data access a traced run makes, bucketed by the RAM word
// it touches (sub-word accesses count against their containing word).
// Summarized over the kernel RAM layout (asmkernels/gen.h offsets) this
// observationally verifies the paper's fixed-register claim: the product
// words the LD multiplication pins in registers show near-zero traffic,
// while the plain-memory variant hammers them on every inner step.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "armvm/cpu.h"

namespace eccm0::profile {

class MemHeatmap final : public armvm::TraceSink {
 public:
  explicit MemHeatmap(std::size_t ram_bytes)
      : loads_(ram_bytes / 4, 0), stores_(ram_bytes / 4, 0) {}

  void on_retire(const armvm::TraceEvent& ev) override {
    for (unsigned i = 0; i < ev.num_accesses; ++i) {
      const armvm::MemAccess& a = ev.accesses[i];
      if (a.addr < armvm::kRamBase) {
        ++code_reads_;  // literal pools / code-space loads
        continue;
      }
      const std::size_t w = (a.addr - armvm::kRamBase) / 4;
      if (w >= loads_.size()) continue;
      if (a.store) {
        ++stores_[w];
        ++total_stores_;
      } else {
        ++loads_[w];
        ++total_loads_;
      }
    }
  }

  std::size_t words() const { return loads_.size(); }
  std::uint64_t loads_at(std::size_t word) const { return loads_[word]; }
  std::uint64_t stores_at(std::size_t word) const { return stores_[word]; }
  std::uint64_t traffic_at(std::size_t word) const {
    return loads_[word] + stores_[word];
  }
  std::uint64_t total_loads() const { return total_loads_; }
  std::uint64_t total_stores() const { return total_stores_; }
  /// PC-relative literal loads etc. — data reads outside RAM.
  std::uint64_t code_reads() const { return code_reads_; }

  /// A named span of the RAM layout, in words.
  struct Region {
    std::string name;
    std::uint32_t byte_offset = 0;
    std::uint32_t num_words = 0;
  };

  struct RegionReport {
    std::string name;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t peak_word_traffic = 0;  ///< hottest single word
  };

  RegionReport summarize(const Region& r) const {
    RegionReport out;
    out.name = r.name;
    const std::size_t first = r.byte_offset / 4;
    for (std::uint32_t i = 0; i < r.num_words; ++i) {
      const std::size_t w = first + i;
      if (w >= loads_.size()) break;
      out.loads += loads_[w];
      out.stores += stores_[w];
      if (traffic_at(w) > out.peak_word_traffic) {
        out.peak_word_traffic = traffic_at(w);
      }
    }
    return out;
  }

  std::vector<RegionReport> summarize(std::span<const Region> rs) const {
    std::vector<RegionReport> out;
    out.reserve(rs.size());
    for (const Region& r : rs) out.push_back(summarize(r));
    return out;
  }

  /// The `n` hottest words as (word index, loads+stores), descending.
  std::vector<std::pair<std::size_t, std::uint64_t>> hottest(
      std::size_t n) const;

  void clear();

 private:
  std::vector<std::uint64_t> loads_;
  std::vector<std::uint64_t> stores_;
  std::uint64_t total_loads_ = 0;
  std::uint64_t total_stores_ = 0;
  std::uint64_t code_reads_ = 0;
};

}  // namespace eccm0::profile
