// Run manifest: the one JSON envelope every bench and ecctool subcommand
// emits, so downstream tooling (CI schema checks, `ecctool stats`,
// cross-commit perf tracking) reads a single shape:
//
//   {
//     "schema":  "eccm0.run.v1",
//     "tool":    "bench_memfault" | "ecctool campaign" | ...,
//     "build":   { "compiler": ..., "build_type": ... },
//     "run":     { tool config: seed, engine, mem, threads, iters, ... },
//     "payload": { the tool's own numbers, shape owned by the tool },
//     "metrics": { MetricsRegistry snapshot, deterministic units only }
//   }
//
// Key order is fixed (insertion-ordered Json) and wall-clock metrics are
// excluded, so a fixed seed + thread count reproduces the file byte for
// byte. `payload` precedes `metrics` so incremental writers can stream
// the payload and append the snapshot last.
#pragma once

#include <string>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace eccm0::telemetry {

inline constexpr const char* kManifestSchema = "eccm0.run.v1";

struct BuildInfo {
  std::string compiler;    ///< from __VERSION__
  std::string build_type;  ///< from the ECCM0_BUILD_TYPE compile definition
};

BuildInfo build_info();

/// The "build" object of the envelope.
Json build_info_json();

/// Assembles the envelope incrementally; to_json() emits the fixed key
/// order above regardless of call order here.
class RunManifest {
 public:
  explicit RunManifest(std::string tool) : tool_(std::move(tool)) {}

  /// The "run" config object; add fields with set(). Insertion order is
  /// preserved, so add them in a fixed order.
  Json& run() { return run_; }

  void set_payload(Json payload) { payload_ = std::move(payload); }
  /// Splice a pre-serialized payload (e.g. a bench::JsonWriter string).
  void set_payload_raw(std::string json) { payload_ = Json::raw(std::move(json)); }
  void set_metrics(const MetricsRegistry& reg) {
    metrics_ = reg.snapshot_json();
  }

  Json to_json() const;
  std::string dump() const { return to_json().dump(); }
  /// Write dump() + '\n' to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::string tool_;
  Json run_ = Json::object();
  Json payload_ = Json::object();
  Json metrics_ = Json::object();
};

/// True iff `doc` looks like a manifest envelope (schema tag + required
/// sections) — the same predicate the CI jq check applies.
bool is_manifest(const Json& doc);

}  // namespace eccm0::telemetry
