// Minimal ordered JSON value model for the telemetry layer.
//
// The bench/report.h JsonWriter is write-only; the run-manifest story
// needs the other direction too (`ecctool stats` pretty-prints a saved
// manifest), so this header carries a tiny DOM with a strict
// recursive-descent parser and a deterministic serializer. Two rules
// keep manifests byte-stable across runs:
//
//   * objects preserve insertion order (a std::vector of pairs, no
//     hashing) — building the same manifest twice dumps the same bytes;
//   * numbers parsed from text keep their original spelling, and
//     numbers built programmatically are formatted exactly like
//     bench::JsonWriter ("%.6g" for doubles, full decimal for
//     integers), so a parse/dump round trip is the identity.
//
// Not a general-purpose JSON library: no \uXXXX decoding beyond
// pass-through, 64-bit integers only, throws std::invalid_argument on
// malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eccm0::telemetry {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,  ///< stored as its token text (exact round trip)
    kString,
    kArray,
    kObject,
    kRaw,  ///< pre-serialized splice, dumped verbatim (never parsed back)
  };

  Json() = default;

  // ---- constructors ---------------------------------------------------
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(std::uint64_t v);
  static Json number(std::int64_t v);
  static Json number(double v);  ///< "%.6g", JsonWriter-compatible
  /// Number node carrying an exact token spelling (the parser uses this
  /// so a parse/dump round trip preserves the source bytes).
  static Json number_token(std::string token);
  static Json str(std::string s);
  static Json array();
  static Json object();
  /// Splice pre-serialized JSON (e.g. a bench::JsonWriter payload).
  static Json raw(std::string json);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // ---- building -------------------------------------------------------
  /// Append (object) — duplicate keys are kept; get() returns the first.
  Json& set(std::string key, Json value);
  /// Append (array).
  Json& push(Json value);

  // ---- reading --------------------------------------------------------
  /// First member named `key`, or nullptr (object only).
  const Json* get(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  const std::vector<Json>& items() const { return items_; }
  std::size_t size() const {
    return kind_ == Kind::kObject ? members_.size() : items_.size();
  }

  bool as_bool() const { return scalar_ == "true"; }
  const std::string& as_string() const { return scalar_; }
  /// Numeric token text (kNumber) — what dump() would emit.
  const std::string& token() const { return scalar_; }
  double as_f64() const;
  std::uint64_t as_u64() const;  ///< truncates; 0 for non-numeric text

  // ---- serialization --------------------------------------------------
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Strict parse of a complete JSON document (trailing garbage rejected).
  /// Throws std::invalid_argument with an offset on malformed input.
  static Json parse(std::string_view text);

  static std::string escape(std::string_view s);

 private:
  Kind kind_ = Kind::kNull;
  std::string scalar_;  ///< bool/number token, string payload, or raw JSON
  std::vector<std::pair<std::string, Json>> members_;  ///< kObject
  std::vector<Json> items_;                            ///< kArray
};

}  // namespace eccm0::telemetry
