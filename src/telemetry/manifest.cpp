#include "telemetry/manifest.h"

#include <cstdio>

namespace eccm0::telemetry {

#ifndef ECCM0_BUILD_TYPE
#define ECCM0_BUILD_TYPE "unknown"
#endif

BuildInfo build_info() {
  BuildInfo b;
#if defined(__VERSION__)
  b.compiler = __VERSION__;
#else
  b.compiler = "unknown";
#endif
  b.build_type = ECCM0_BUILD_TYPE;
  return b;
}

Json build_info_json() {
  const BuildInfo b = build_info();
  Json j = Json::object();
  j.set("compiler", Json::str(b.compiler));
  j.set("build_type", Json::str(b.build_type));
  return j;
}

Json RunManifest::to_json() const {
  Json j = Json::object();
  j.set("schema", Json::str(kManifestSchema));
  j.set("tool", Json::str(tool_));
  j.set("build", build_info_json());
  j.set("run", run_);
  j.set("payload", payload_);
  j.set("metrics", metrics_);
  return j;
}

bool RunManifest::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = dump();
  std::fputs(text.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

bool is_manifest(const Json& doc) {
  if (!doc.is_object()) return false;
  const Json* schema = doc.get("schema");
  if (schema == nullptr || schema->as_string() != kManifestSchema) return false;
  return doc.get("tool") != nullptr && doc.get("build") != nullptr &&
         doc.get("run") != nullptr && doc.get("payload") != nullptr &&
         doc.get("metrics") != nullptr;
}

}  // namespace eccm0::telemetry
