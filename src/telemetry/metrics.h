// Sharded metrics substrate: named counters, gauges, and log-bucket
// latency histograms with exact-rank quantile queries.
//
// Design rules, in the order they mattered:
//
//   * Zero cost when disabled. Nothing in the hot path owns a registry;
//     instrumented components hold a `MetricsRegistry*` that defaults to
//     nullptr and guard every touch with a null check — the same
//     discipline the tracing hook uses (PR 3), so the untraced /
//     unmetered configuration keeps its existing codegen.
//
//   * Deterministic output. Snapshots iterate a sorted name map, so the
//     emitted JSON does not depend on registration order (which can vary
//     with thread interleaving). Metrics carry a Unit; wall-clock
//     metrics (Unit::kNanos) are recorded and printable but excluded
//     from manifest snapshots, because byte-identical manifests across
//     runs is an acceptance criterion and wall time never is.
//
//   * Associative merge. Histogram is a plain value type (no locks, no
//     atomics) so each worker can record into a private shard;
//     Histogram::merge is commutative and associative over the recorded
//     multiset, so merging shards in worker-index order yields the same
//     histogram for any thread count that saw the same values.
//
// Bucketing is the HdrHistogram scheme: values below 2*kSubBuckets are
// their own bucket (exact); above that, each power-of-two octave is
// split into kSubBuckets linear sub-buckets, bounding relative error by
// 2^-kSubBucketBits (3.125%). Quantiles return the bucket floor at the
// exact rank ceil(q*count), clamped to the recorded [min, max].
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.h"

namespace eccm0::telemetry {

/// What a metric's values measure. kNanos marks wall-clock data, which
/// snapshot_json() omits by default to keep manifests deterministic.
enum class Unit : std::uint8_t { kCount, kCycles, kBytes, kNanos };

const char* unit_name(Unit u);
inline bool is_wall_unit(Unit u) { return u == Unit::kNanos; }

/// Monotonic event count. Increments are lock-free; callers on hot
/// paths should look the counter up once and keep the reference.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins sample of a level (queue depth, worker count, ...).
class Gauge {
 public:
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Log-bucket histogram of uint64 samples. Plain value type: recording
/// is single-writer (use one shard per worker and merge), merge is
/// associative + commutative, and equal recorded multisets produce
/// equal state regardless of recording order.
class Histogram {
 public:
  /// Sub-buckets per octave = 2^kSubBucketBits; also the relative-error
  /// bound exponent (3.125% at 5 bits).
  static constexpr unsigned kSubBucketBits = 5;
  static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;

  /// Bucket index of a value. Values < 2*kSubBuckets map to themselves.
  static std::size_t index_of(std::uint64_t v);
  /// Smallest value mapping to bucket `index` (inverse of index_of on
  /// bucket floors).
  static std::uint64_t bucket_floor(std::size_t index);

  void record(std::uint64_t v);
  /// Fold `other` in: state becomes the histogram of the union multiset.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at exact rank ceil(q*count) (1-based, clamped to [1, count]),
  /// reported as its bucket floor clamped to [min, max]. Exact for
  /// values below 2*kSubBuckets and for bucket-floor values; otherwise
  /// within 2^-kSubBucketBits relative error. Returns 0 when empty.
  std::uint64_t quantile(double q) const;

  /// Occupied buckets as (floor, count) pairs in ascending floor order —
  /// the full distribution, for snapshots and counter-track export.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> nonzero_buckets() const;

  bool operator==(const Histogram& other) const = default;

 private:
  std::vector<std::uint64_t> buckets_;  ///< grown on demand
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Named metric store. Lookup is mutex-guarded (cache the returned
/// reference outside loops); returned references stay valid for the
/// registry's lifetime. Snapshots iterate names in sorted order.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, Unit unit = Unit::kCount);
  Gauge& gauge(std::string_view name, Unit unit = Unit::kCount);

  /// Record one sample into the named histogram (locked per call —
  /// fine for per-run tallies; workers in tight loops should record
  /// into a private Histogram shard and merge_histogram() it once).
  void record(std::string_view name, Unit unit, std::uint64_t value);
  /// Fold a worker shard into the named histogram.
  void merge_histogram(std::string_view name, Unit unit,
                       const Histogram& shard);

  /// Copy of a named histogram (empty histogram if absent).
  Histogram histogram_copy(std::string_view name) const;
  std::uint64_t counter_value(std::string_view name) const;
  std::uint64_t gauge_value(std::string_view name) const;

  /// Deterministic snapshot: sorted names; counters/gauges as values,
  /// histograms as {count,min,max,sum,mean,p50,p90,p99,buckets,unit}
  /// where buckets is the [floor, count] distribution. Metrics with a
  /// wall-clock unit are omitted unless `include_wall`.
  Json snapshot_json(bool include_wall = false) const;

  /// Human-readable dump (includes wall-clock metrics) for stderr.
  void print(std::FILE* out) const;

 private:
  struct Hist {
    Unit unit = Unit::kCycles;
    Histogram h;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::pair<Unit, Counter>, std::less<>> counters_;
  std::map<std::string, std::pair<Unit, Gauge>, std::less<>> gauges_;
  std::map<std::string, Hist, std::less<>> hists_;
};

}  // namespace eccm0::telemetry
