#include "telemetry/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace eccm0::telemetry {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.scalar_ = b ? "true" : "false";
  return j;
}

Json Json::number(std::uint64_t v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::number(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  j.scalar_ = buf;
  return j;
}

Json Json::number_token(std::string token) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::move(token);
  return j;
}

Json Json::str(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.scalar_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::raw(std::string json) {
  Json j;
  j.kind_ = Kind::kRaw;
  j.scalar_ = std::move(json);
  return j;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) throw std::invalid_argument("set() on non-object");
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) throw std::invalid_argument("push() on non-array");
  items_.push_back(std::move(value));
  return *this;
}

const Json* Json::get(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::as_f64() const { return std::strtod(scalar_.c_str(), nullptr); }

std::uint64_t Json::as_u64() const {
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
    case Kind::kNumber:
    case Kind::kRaw:
      out += scalar_;
      break;
    case Kind::kString:
      out += '"';
      out += escape(scalar_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : items_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool try_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // Basic-plane code points only; encode as UTF-8.
            if (v < 0x80) {
              out += static_cast<char>(v);
            } else if (v < 0x800) {
              out += static_cast<char>(0xC0 | (v >> 6));
              out += static_cast<char>(0x80 | (v & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (v >> 12));
              out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (v & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("bad number");
    return Json::number_token(std::string(text_.substr(start, pos_ - start)));
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') {
      ++pos_;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return obj;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string_body();
        skip_ws();
        expect(':');
        obj.set(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos_;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return arr;
      }
      for (;;) {
        arr.push(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Json::str(parse_string_body());
    if (try_literal("true")) return Json::boolean(true);
    if (try_literal("false")) return Json::boolean(false);
    if (try_literal("null")) return Json::null();
    return parse_number();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace eccm0::telemetry
