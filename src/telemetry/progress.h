// Live completion reporting for long campaigns, behind the shared
// `--progress[=off|plain]` flag. Output goes to stderr only, so a
// campaign piping `--json` stdout or writing a manifest file never gets
// polluted. "plain" prints newline-terminated milestone lines (log- and
// CI-friendly, no terminal control codes); "off" is free: tick() is a
// relaxed increment and one predictable branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace eccm0::telemetry {

enum class ProgressMode : std::uint8_t { kOff, kPlain };

/// "off" | "plain" -> mode; throws std::invalid_argument otherwise.
ProgressMode progress_mode_from_name(std::string_view name);

/// Thread-safe milestone printer: ~20 lines per run plus the final
/// count. The worker that crosses a milestone prints it, so each line
/// appears exactly once regardless of thread count.
class ProgressMeter {
 public:
  ProgressMeter(ProgressMode mode, std::string label, std::uint64_t total);

  void tick(std::uint64_t n = 1);
  std::uint64_t done() const { return done_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> done_{0};
  std::uint64_t total_;
  std::uint64_t stride_;
  ProgressMode mode_;
  std::string label_;
};

}  // namespace eccm0::telemetry
