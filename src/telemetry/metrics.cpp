#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace eccm0::telemetry {

const char* unit_name(Unit u) {
  switch (u) {
    case Unit::kCount: return "count";
    case Unit::kCycles: return "cycles";
    case Unit::kBytes: return "bytes";
    case Unit::kNanos: return "nanos";
  }
  return "?";
}

std::size_t Histogram::index_of(std::uint64_t v) {
  if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);
  const unsigned exp = 63u - static_cast<unsigned>(std::countl_zero(v));
  const unsigned shift = exp - kSubBucketBits;
  return (static_cast<std::size_t>(shift) << kSubBucketBits) +
         static_cast<std::size_t>(v >> shift);
}

std::uint64_t Histogram::bucket_floor(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint64_t sub = kSubBuckets + (index & (kSubBuckets - 1));
  const unsigned shift = static_cast<unsigned>(index >> kSubBucketBits) - 1;
  return sub << shift;
}

void Histogram::record(std::uint64_t v) {
  const std::size_t idx = index_of(v);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  const double raw = std::ceil(q * static_cast<double>(count_));
  std::uint64_t rank = raw < 1.0 ? 1 : static_cast<std::uint64_t>(raw);
  rank = std::min(rank, count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      return std::clamp(bucket_floor(i), min_, max_);
    }
  }
  return max_;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Histogram::nonzero_buckets()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) out.emplace_back(bucket_floor(i), buckets_[i]);
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name, Unit unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(std::string(name));
  if (inserted) it->second.first = unit;
  return it->second.second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Unit unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(std::string(name));
  if (inserted) it->second.first = unit;
  return it->second.second;
}

void MetricsRegistry::record(std::string_view name, Unit unit,
                             std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = hists_.try_emplace(std::string(name));
  if (inserted) it->second.unit = unit;
  it->second.h.record(value);
}

void MetricsRegistry::merge_histogram(std::string_view name, Unit unit,
                                      const Histogram& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = hists_.try_emplace(std::string(name));
  if (inserted) it->second.unit = unit;
  it->second.h.merge(shard);
}

Histogram MetricsRegistry::histogram_copy(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  return it == hists_.end() ? Histogram{} : it->second.h;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.second.value();
}

std::uint64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.second.value();
}

namespace {

Json histogram_json(const Histogram& h) {
  Json j = Json::object();
  j.set("count", Json::number(h.count()));
  j.set("min", Json::number(h.min()));
  j.set("max", Json::number(h.max()));
  j.set("sum", Json::number(h.sum()));
  j.set("mean", Json::number(h.mean()));
  j.set("p50", Json::number(h.quantile(0.50)));
  j.set("p90", Json::number(h.quantile(0.90)));
  j.set("p99", Json::number(h.quantile(0.99)));
  Json buckets = Json::array();
  for (const auto& [floor, count] : h.nonzero_buckets()) {
    Json pair = Json::array();
    pair.push(Json::number(floor));
    pair.push(Json::number(count));
    buckets.push(std::move(pair));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

}  // namespace

Json MetricsRegistry::snapshot_json(bool include_wall) const {
  std::lock_guard<std::mutex> lock(mu_);
  Json out = Json::object();
  Json counters = Json::object();
  for (const auto& [name, entry] : counters_) {
    if (!include_wall && is_wall_unit(entry.first)) continue;
    counters.set(name, Json::number(entry.second.value()));
  }
  Json gauges = Json::object();
  for (const auto& [name, entry] : gauges_) {
    if (!include_wall && is_wall_unit(entry.first)) continue;
    gauges.set(name, Json::number(entry.second.value()));
  }
  Json hists = Json::object();
  for (const auto& [name, entry] : hists_) {
    if (!include_wall && is_wall_unit(entry.unit)) continue;
    Json h = histogram_json(entry.h);
    h.set("unit", Json::str(unit_name(entry.unit)));
    hists.set(name, std::move(h));
  }
  if (counters.size() != 0) out.set("counters", std::move(counters));
  if (gauges.size() != 0) out.set("gauges", std::move(gauges));
  if (hists.size() != 0) out.set("histograms", std::move(hists));
  return out;
}

void MetricsRegistry::print(std::FILE* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : counters_) {
    std::fprintf(out, "  %-44s %12llu %s\n", name.c_str(),
                 static_cast<unsigned long long>(entry.second.value()),
                 unit_name(entry.first));
  }
  for (const auto& [name, entry] : gauges_) {
    std::fprintf(out, "  %-44s %12llu %s (gauge)\n", name.c_str(),
                 static_cast<unsigned long long>(entry.second.value()),
                 unit_name(entry.first));
  }
  for (const auto& [name, entry] : hists_) {
    const Histogram& h = entry.h;
    std::fprintf(out,
                 "  %-44s n=%llu min=%llu p50=%llu p90=%llu p99=%llu "
                 "max=%llu mean=%.1f %s\n",
                 name.c_str(), static_cast<unsigned long long>(h.count()),
                 static_cast<unsigned long long>(h.min()),
                 static_cast<unsigned long long>(h.quantile(0.50)),
                 static_cast<unsigned long long>(h.quantile(0.90)),
                 static_cast<unsigned long long>(h.quantile(0.99)),
                 static_cast<unsigned long long>(h.max()), h.mean(),
                 unit_name(entry.unit));
  }
}

}  // namespace eccm0::telemetry
