#include "telemetry/progress.h"

#include <cstdio>
#include <stdexcept>

namespace eccm0::telemetry {

ProgressMode progress_mode_from_name(std::string_view name) {
  if (name == "off") return ProgressMode::kOff;
  if (name == "plain") return ProgressMode::kPlain;
  throw std::invalid_argument("unknown progress mode '" + std::string(name) +
                              "' (expected off|plain)");
}

ProgressMeter::ProgressMeter(ProgressMode mode, std::string label,
                             std::uint64_t total)
    : total_(total),
      stride_(total / 20 == 0 ? 1 : total / 20),
      mode_(mode),
      label_(std::move(label)) {}

void ProgressMeter::tick(std::uint64_t n) {
  const std::uint64_t now =
      done_.fetch_add(n, std::memory_order_relaxed) + n;
  if (mode_ == ProgressMode::kOff) return;
  // A tick of n > 1 may skip over a milestone; report when the increment
  // crossed one (or finished), printing the count actually reached.
  const bool crossed = (now / stride_) != ((now - n) / stride_);
  if (crossed || now >= total_) {
    std::fprintf(stderr, "%s: %llu/%llu\n", label_.c_str(),
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(total_));
  }
}

}  // namespace eccm0::telemetry
