// Operation accounting in the style of the paper's Tables 1 and 2.
//
// The paper models a field-multiplication routine as a bag of abstract
// operations — memory reads, memory writes, XORs, shifts — and converts the
// bag to cycles with "memory operations take 2 cycles, everything else 1".
// The traced gf2 multipliers tick an OpRecorder as they execute so the same
// model can be regenerated from running code.
#pragma once

#include <cstdint>

namespace eccm0::costmodel {

/// Counts of the abstract operations the paper's model distinguishes.
struct OpCounts {
  std::uint64_t mem_read = 0;   ///< word loads from RAM
  std::uint64_t mem_write = 0;  ///< word stores to RAM
  std::uint64_t xor_ops = 0;    ///< XOR / OR word ops (paper's "XOR" column)
  std::uint64_t shift = 0;      ///< single-word shift ops
  std::uint64_t add = 0;        ///< integer add/sub (prime-field model)
  std::uint64_t mul = 0;        ///< integer multiply (prime-field model)
  std::uint64_t mov = 0;        ///< register-to-register moves
  std::uint64_t other = 0;      ///< bookkeeping not in the paper's columns

  constexpr std::uint64_t memory_ops() const { return mem_read + mem_write; }
  constexpr std::uint64_t total() const {
    return mem_read + mem_write + xor_ops + shift + add + mul + mov + other;
  }

  constexpr OpCounts& operator+=(const OpCounts& o) {
    mem_read += o.mem_read;
    mem_write += o.mem_write;
    xor_ops += o.xor_ops;
    shift += o.shift;
    add += o.add;
    mul += o.mul;
    mov += o.mov;
    other += o.other;
    return *this;
  }
  friend constexpr OpCounts operator+(OpCounts a, const OpCounts& b) {
    a += b;
    return a;
  }
  friend constexpr OpCounts operator-(const OpCounts& a, const OpCounts& b) {
    return {a.mem_read - b.mem_read, a.mem_write - b.mem_write,
            a.xor_ops - b.xor_ops,  a.shift - b.shift,
            a.add - b.add,          a.mul - b.mul,
            a.mov - b.mov,          a.other - b.other};
  }
  friend constexpr bool operator==(const OpCounts&, const OpCounts&) = default;
};

/// Mutable recorder handed to traced algorithm implementations.
class OpRecorder {
 public:
  constexpr void read(std::uint64_t n = 1) { c_.mem_read += n; }
  constexpr void write(std::uint64_t n = 1) { c_.mem_write += n; }
  constexpr void xor_op(std::uint64_t n = 1) { c_.xor_ops += n; }
  constexpr void shift(std::uint64_t n = 1) { c_.shift += n; }
  constexpr void add(std::uint64_t n = 1) { c_.add += n; }
  constexpr void mul(std::uint64_t n = 1) { c_.mul += n; }
  constexpr void mov(std::uint64_t n = 1) { c_.mov += n; }
  constexpr void other(std::uint64_t n = 1) { c_.other += n; }

  constexpr const OpCounts& counts() const { return c_; }
  constexpr void reset() { c_ = {}; }

 private:
  OpCounts c_;
};

/// The paper's cycle model (Table 2 footnote): a memory operation costs
/// `mem_cycles`, every other counted operation costs `alu_cycles`.
struct CycleModel {
  unsigned mem_cycles = 2;
  unsigned alu_cycles = 1;

  constexpr std::uint64_t cycles(const OpCounts& c) const {
    return c.memory_ops() * mem_cycles +
           (c.total() - c.memory_ops()) * alu_cycles;
  }
};

}  // namespace eccm0::costmodel
