// Per-instruction energy model of the Cortex-M0+ (paper Table 3) and the
// derived whole-routine energy/power accounting used for Table 4.
//
// Table 3 gives energy **per cycle** for each instruction class at 48 MHz.
// A 2-cycle LDR therefore costs 2 x 10.98 pJ. Instructions the paper did
// not measure are extrapolated from the measured ones; each extrapolation
// is documented next to its value.
#pragma once

#include <cstdint>

#include "costmodel/opcount.h"

namespace eccm0::costmodel {

/// Instruction classes for energy accounting. Shared with the ARM VM, which
/// maps every executed Thumb instruction onto one of these.
enum class InstrClass {
  kLdr,     // memory load (LDR/LDRB/LDRH/LDM/POP, per transferred word)
  kStr,     // memory store (STR/STRB/STRH/STM/PUSH, per transferred word)
  kLsl,     // logical shift left
  kLsr,     // logical shift right / arithmetic shift / rotate
  kEor,     // XOR (also AND/ORR/BIC/MVN: same datapath activity class)
  kAdd,     // ADD/ADC/SUB/SBC/RSB/CMP/CMN (adder datapath)
  kMul,     // MULS
  kMov,     // register move / immediate move
  kBranch,  // B/BL/BX (per cycle, incl. pipeline refill cycles)
  kOther,   // NOP and anything unmodelled
  kMemWait, // wait-state cycles charged by protected memory models
  kCount,
};

/// Energy per *cycle* in picojoule for each instruction class.
struct InstructionEnergyTable {
  double pj_per_cycle[static_cast<int>(InstrClass::kCount)];

  constexpr double pj(InstrClass c) const {
    return pj_per_cycle[static_cast<int>(c)];
  }
};

/// The paper's measured values (Table 3) plus documented extrapolations.
constexpr InstructionEnergyTable kM0PlusEnergy{{
    10.98,  // kLdr    measured (LDR)
    10.98,  // kStr    extrapolated: store = load on the M0+ bus model
    12.21,  // kLsl    measured (LSL)
    12.05,  // kLsr    measured (LSR)
    12.43,  // kEor    measured (XOR)
    13.45,  // kAdd    measured (ADD)
    12.14,  // kMul    measured (MUL)
    11.50,  // kMov    extrapolated: cheapest datapath op, below LSR
    11.75,  // kBranch extrapolated: fetch-dominated, near the table median
    11.75,  // kOther  extrapolated: table median
    10.98,  // kMemWait extrapolated: SRAM/codeword array activity, same
            //          bus-dominated class as LDR (check-bit fetch + syndrome
            //          logic stalls the core exactly like a slow load)
}};

/// Cortex-M0+ clock used throughout the paper.
inline constexpr double kClockHz = 48e6;

/// Histogram of executed cycles per instruction class.
struct CycleHistogram {
  std::uint64_t cycles[static_cast<int>(InstrClass::kCount)] = {};

  constexpr void add(InstrClass c, std::uint64_t n) {
    cycles[static_cast<int>(c)] += n;
  }
  constexpr std::uint64_t total_cycles() const {
    std::uint64_t t = 0;
    for (auto c : cycles) t += c;
    return t;
  }
  constexpr CycleHistogram& operator+=(const CycleHistogram& o) {
    for (int i = 0; i < static_cast<int>(InstrClass::kCount); ++i) {
      cycles[i] += o.cycles[i];
    }
    return *this;
  }

  friend constexpr bool operator==(const CycleHistogram&,
                                   const CycleHistogram&) = default;
};

/// Energy/time/power summary for one routine execution, the quantities the
/// paper reports in Tables 4 and its Section 4.2 prose.
struct EnergyReport {
  std::uint64_t cycles = 0;
  double energy_pj = 0.0;

  constexpr double energy_uj() const { return energy_pj * 1e-6; }
  constexpr double time_ms() const { return cycles / kClockHz * 1e3; }
  /// Average power in microwatt while the routine runs.
  constexpr double avg_power_uw() const {
    return cycles == 0 ? 0.0 : energy_pj * 1e-12 / (cycles / kClockHz) * 1e6;
  }
};

/// Integrate a cycle histogram against an energy table.
constexpr EnergyReport energy_of(const CycleHistogram& h,
                                 const InstructionEnergyTable& t =
                                     kM0PlusEnergy) {
  EnergyReport r;
  for (int i = 0; i < static_cast<int>(InstrClass::kCount); ++i) {
    r.cycles += h.cycles[i];
    r.energy_pj += static_cast<double>(h.cycles[i]) * t.pj_per_cycle[i];
  }
  return r;
}

/// Convert abstract operation counts (the Table 1/2 model) into a cycle
/// histogram under the 2-cycle-memory model, for energy estimation of
/// routines that were modelled rather than run on the VM.
constexpr CycleHistogram histogram_of(const OpCounts& c,
                                      const CycleModel& m = {}) {
  CycleHistogram h;
  h.add(InstrClass::kLdr, c.mem_read * m.mem_cycles);
  h.add(InstrClass::kStr, c.mem_write * m.mem_cycles);
  h.add(InstrClass::kEor, c.xor_ops * m.alu_cycles);
  h.add(InstrClass::kLsl, c.shift * m.alu_cycles);
  h.add(InstrClass::kAdd, c.add * m.alu_cycles);
  h.add(InstrClass::kMul, c.mul * m.alu_cycles);
  h.add(InstrClass::kMov, c.mov * m.alu_cycles);
  h.add(InstrClass::kOther, c.other * m.alu_cycles);
  return h;
}

}  // namespace eccm0::costmodel
