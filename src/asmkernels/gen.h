// Thumb-1 source generators for the K-233 field kernels.
//
// The kernels are emitted as assembly text (loops unrolled by the
// generator, exactly as a hand-optimiser would) and assembled/run on the
// armvm core, which yields *measured* Cortex-M0+ cycle counts for Tables
// 5 and 6 rather than modelled ones.
//
// Fixed RAM layout shared by the multiplication kernels (offsets from the
// base register r3 = RAM base):
//   0x000  v    16-word product / reduced result
//   0x040  x    8-word multiplier (scanned operand)
//   0x060  y    8-word multiplicand (LUT operand)
//   0x080  LUT  16 entries x 8 words (u(z)*y(z), u < 16)
// Squaring/reduction kernels:
//   0x280  256-entry halfword squaring table
//   0x480  8-word input a
//   0x4C0  8-word output r
//   0x500  16-word wide buffer
#pragma once

#include <cstdint>
#include <string>

namespace eccm0::asmkernels {

inline constexpr std::uint32_t kVOff = 0x000;
inline constexpr std::uint32_t kXOff = 0x040;
inline constexpr std::uint32_t kYOff = 0x060;
inline constexpr std::uint32_t kLutOff = 0x080;
inline constexpr std::uint32_t kSqrTabOff = 0x280;
inline constexpr std::uint32_t kInOff = 0x480;
inline constexpr std::uint32_t kOutOff = 0x4C0;
inline constexpr std::uint32_t kWideOff = 0x500;

/// Lopez-Dahab w=4 multiplication with the paper's fixed-register layout:
/// v[3..11] pinned (v[5..8] in lo registers r4-r7, v[3],v[4],v[9..11] in
/// hi registers r8-r12), v[0..2] and v[12..15] in RAM. If `reduce` is
/// true the kernel folds the product modulo z^233+z^74+1 in place.
std::string gen_mul_fixed(bool reduce);

/// Plain Lopez-Dahab w=4 with the whole product vector in RAM — the shape
/// a C compiler produces (no register pinning); the paper's Table 6
/// "C language" comparator.
std::string gen_mul_plain(bool reduce);

/// The same two kernels instantiated for K-163's field F(2^163)
/// (pentanomial x^163+x^7+x^6+x^3+1, n = 6, window v[2..8] pinned) —
/// the paper's method ported to the other NIST Koblitz field we model.
std::string gen_mul_k163_fixed(bool reduce);
std::string gen_mul_k163_plain(bool reduce);

/// Table-based modular squaring (256-entry halfword table) + reduction.
std::string gen_sqr();

/// Standalone word-at-a-time reduction of the 16-word wide buffer into
/// the output slot.
std::string gen_reduce();

/// Only the w=4 lookup-table generation (T[u] = u*y) — isolates the
/// "Multiply Precomputation" share of a multiplication (Table 7).
std::string gen_lut_only();

/// Field inversion by the Extended Euclidean Algorithm for binary
/// polynomials — a genuine looping/branching Thumb routine (pointer-swap
/// instead of content-swap, shift-function subroutine, degree scan).
/// Input at kInOff, result at kOutOff; scratch at kInvUOff..: this is the
/// "compiled-shape" inversion the paper kept in C (Table 6 lists no
/// assembly column for it).
std::string gen_inv();

inline constexpr std::uint32_t kInvUOff = 0x600;
inline constexpr std::uint32_t kInvVOff = 0x620;
inline constexpr std::uint32_t kInvG1Off = 0x640;
inline constexpr std::uint32_t kInvG2Off = 0x660;
inline constexpr std::uint32_t kInvVarsOff = 0x6C0;

// ---------------------------------------------------------------------
// Prime-field kernels (secp192r1/224r1/256r1 over mpint Montgomery
// arithmetic). Same 2 KiB RAM layout, extended with a modulus block:
//   0x700  m       n-word modulus (n = 6, 7, 8)
//   0x720  m0inv   one word, -m[0]^-1 mod 2^32 (Montgomery constant)
// Operands reuse the gf2 slots: x at kXOff, y at kYOff, standalone
// inputs at kInOff / kWideOff, reduced results at kOutOff, raw products
// at kVOff. The EEA inversion reuses the kInvUOff.. scratch vectors.
// MULS on the M0+ is 32x32->32, so the 64-bit partial products are
// built by a 16x16 decomposition subroutine (mul64) — the school-book
// "compiled shape" the paper's selection model prices for prime fields.
inline constexpr std::uint32_t kPModOff = 0x700;
inline constexpr std::uint32_t kPM0Off = 0x720;

/// School-book n x n -> 2n word multiplication (operand scanning, MAC
/// via the 16x16 decomposition). x at kXOff, y at kYOff, raw 2n-word
/// product at kVOff. No reduction.
std::string gen_prime_mul(unsigned n);

/// Montgomery multiplication: school-book product into the wide buffer
/// followed by an in-place word-by-word REDC (mirrors
/// mpint::Montgomery::redc including the final conditional subtract).
/// x at kXOff, y at kYOff, m/m0inv at kPModOff/kPM0Off, n-word result
/// (Montgomery domain) at kOutOff. With `square` the y operand is read
/// from kXOff, giving the squaring kernel.
std::string gen_prime_mont(unsigned n, bool square);

/// Standalone REDC of a caller-loaded 2n-word value t at kWideOff
/// (t < m*R required, as for any Montgomery intermediate); result
/// t*R^-1 mod m at kOutOff.
std::string gen_prime_redc(unsigned n);

/// Modular inversion by the binary extended Euclidean algorithm
/// (HAC 14.61): plain-domain input a at kInOff, a^-1 mod m at kOutOff,
/// scratch u/v/x1/x2 in the kInvUOff.. vectors. A genuine looping and
/// branching routine, like the gf2 EEA kernel.
std::string gen_prime_inv(unsigned n);

}  // namespace eccm0::asmkernels
