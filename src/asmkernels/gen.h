// Thumb-1 source generators for the K-233 field kernels.
//
// The kernels are emitted as assembly text (loops unrolled by the
// generator, exactly as a hand-optimiser would) and assembled/run on the
// armvm core, which yields *measured* Cortex-M0+ cycle counts for Tables
// 5 and 6 rather than modelled ones.
//
// Fixed RAM layout shared by the multiplication kernels (offsets from the
// base register r3 = RAM base):
//   0x000  v    16-word product / reduced result
//   0x040  x    8-word multiplier (scanned operand)
//   0x060  y    8-word multiplicand (LUT operand)
//   0x080  LUT  16 entries x 8 words (u(z)*y(z), u < 16)
// Squaring/reduction kernels:
//   0x280  256-entry halfword squaring table
//   0x480  8-word input a
//   0x4C0  8-word output r
//   0x500  16-word wide buffer
#pragma once

#include <cstdint>
#include <string>

namespace eccm0::asmkernels {

inline constexpr std::uint32_t kVOff = 0x000;
inline constexpr std::uint32_t kXOff = 0x040;
inline constexpr std::uint32_t kYOff = 0x060;
inline constexpr std::uint32_t kLutOff = 0x080;
inline constexpr std::uint32_t kSqrTabOff = 0x280;
inline constexpr std::uint32_t kInOff = 0x480;
inline constexpr std::uint32_t kOutOff = 0x4C0;
inline constexpr std::uint32_t kWideOff = 0x500;

/// Lopez-Dahab w=4 multiplication with the paper's fixed-register layout:
/// v[3..11] pinned (v[5..8] in lo registers r4-r7, v[3],v[4],v[9..11] in
/// hi registers r8-r12), v[0..2] and v[12..15] in RAM. If `reduce` is
/// true the kernel folds the product modulo z^233+z^74+1 in place.
std::string gen_mul_fixed(bool reduce);

/// Plain Lopez-Dahab w=4 with the whole product vector in RAM — the shape
/// a C compiler produces (no register pinning); the paper's Table 6
/// "C language" comparator.
std::string gen_mul_plain(bool reduce);

/// The same two kernels instantiated for K-163's field F(2^163)
/// (pentanomial x^163+x^7+x^6+x^3+1, n = 6, window v[2..8] pinned) —
/// the paper's method ported to the other NIST Koblitz field we model.
std::string gen_mul_k163_fixed(bool reduce);
std::string gen_mul_k163_plain(bool reduce);

/// Table-based modular squaring (256-entry halfword table) + reduction.
std::string gen_sqr();

/// Standalone word-at-a-time reduction of the 16-word wide buffer into
/// the output slot.
std::string gen_reduce();

/// Only the w=4 lookup-table generation (T[u] = u*y) — isolates the
/// "Multiply Precomputation" share of a multiplication (Table 7).
std::string gen_lut_only();

/// Field inversion by the Extended Euclidean Algorithm for binary
/// polynomials — a genuine looping/branching Thumb routine (pointer-swap
/// instead of content-swap, shift-function subroutine, degree scan).
/// Input at kInOff, result at kOutOff; scratch at kInvUOff..: this is the
/// "compiled-shape" inversion the paper kept in C (Table 6 lists no
/// assembly column for it).
std::string gen_inv();

inline constexpr std::uint32_t kInvUOff = 0x600;
inline constexpr std::uint32_t kInvVOff = 0x620;
inline constexpr std::uint32_t kInvG1Off = 0x640;
inline constexpr std::uint32_t kInvG2Off = 0x660;
inline constexpr std::uint32_t kInvVarsOff = 0x6C0;

}  // namespace eccm0::asmkernels
