// Thumb-1 source generators for the prime-field kernels (gen.h).
//
// The M0+ has no UMULL: MULS is 32x32->32, so every 64-bit partial
// product goes through a 16x16 decomposition subroutine (mul64). The
// kernels are looping routines with subroutine calls — the "compiled
// shape" the paper's selection model assumes for prime fields, in
// contrast to the unrolled fixed-register gf2 kernels — and they mirror
// mpint::Montgomery::redc word for word (including the final
// conditional subtract), so the host library is the bit-exact oracle.
#include "asmkernels/gen.h"

#include <stdexcept>

namespace eccm0::asmkernels {
namespace {

struct Src {
  std::string text;
  /// One instruction/label line.
  void l(const std::string& s) {
    text += s;
    text += '\n';
  }
};

std::string n2s(unsigned v) { return std::to_string(v); }

/// dst = RAM base + off (off a multiple of 8 below 2 KiB); base in
/// `base` (a low register), dst != base.
void emit_addr(Src& s, const std::string& dst, std::uint32_t off,
               const std::string& base) {
  if (off % 8 != 0 || off / 8 > 255) throw std::invalid_argument("bad offset");
  s.l("    movs " + dst + ", #" + n2s(off >> 3));
  s.l("    lsls " + dst + ", " + dst + ", #3");
  s.l("    add  " + dst + ", " + base);
}

/// mul64 subroutine: {r1:r0} = r0 * r1 (full 64-bit product via 16x16
/// halves); clobbers r2-r5, leaf (bx lr).
void emit_mul64(Src& s) {
  s.l("mul64:");
  s.l("    uxth r2, r0");
  s.l("    lsrs r3, r0, #16");
  s.l("    uxth r4, r1");
  s.l("    lsrs r5, r1, #16");
  s.l("    movs r0, r2");
  s.l("    muls r0, r4             ; al*bl");
  s.l("    muls r2, r5             ; al*bh");
  s.l("    muls r4, r3             ; ah*bl");
  s.l("    muls r3, r5             ; ah*bh");
  s.l("    adds r2, r2, r4         ; mid = al*bh + ah*bl");
  s.l("    movs r4, #0");
  s.l("    adcs r4, r4");
  s.l("    lsls r4, r4, #16");
  s.l("    adds r3, r3, r4         ; hi += mid carry << 16");
  s.l("    lsrs r4, r2, #16");
  s.l("    adds r3, r3, r4         ; hi += mid >> 16");
  s.l("    lsls r2, r2, #16");
  s.l("    adds r0, r0, r2         ; lo = al*bl + mid << 16");
  s.l("    movs r4, #0");
  s.l("    adcs r4, r4");
  s.l("    adds r1, r3, r4");
  s.l("    bx   lr");
}

/// Operand-scanning product of the n-word operands at base+xoff and
/// base+yoff, accumulated into the zeroed buffer at r8 (t[i+j] += lo,
/// carry chained; t[i+n] = carry). Register budget: r12 = RAM base,
/// r8 = product, r9 = x[i], r10 = carry, r7 = i*4, r6 = j*4.
void emit_product(Src& s, unsigned n, std::uint32_t xoff, std::uint32_t yoff) {
  s.l("    movs r7, #0             ; i*4");
  s.l("pp_outer:");
  s.l("    mov  r0, r12");
  s.l("    movs r1, #" + n2s(xoff));
  s.l("    add  r0, r1");
  s.l("    ldr  r0, [r0, r7]");
  s.l("    mov  r9, r0             ; x[i]");
  s.l("    movs r0, #0");
  s.l("    mov  r10, r0            ; carry");
  s.l("    movs r6, #0             ; j*4");
  s.l("pp_inner:");
  s.l("    mov  r0, r12");
  s.l("    movs r1, #" + n2s(yoff));
  s.l("    add  r0, r1");
  s.l("    ldr  r1, [r0, r6]       ; y[j]");
  s.l("    mov  r0, r9");
  s.l("    bl   mul64");
  s.l("    mov  r2, r10");
  s.l("    adds r0, r0, r2         ; lo += carry");
  s.l("    movs r2, #0");
  s.l("    adcs r2, r2");
  s.l("    adds r1, r1, r2");
  s.l("    mov  r2, r8");
  s.l("    add  r2, r7");
  s.l("    add  r2, r6             ; &t[i+j]");
  s.l("    ldr  r3, [r2, #0]");
  s.l("    adds r0, r0, r3         ; lo += t[i+j]");
  s.l("    movs r3, #0");
  s.l("    adcs r3, r3");
  s.l("    adds r1, r1, r3");
  s.l("    str  r0, [r2, #0]");
  s.l("    mov  r10, r1            ; carry = hi");
  s.l("    adds r6, #4");
  s.l("    cmp  r6, #" + n2s(4 * n));
  s.l("    blt  pp_inner");
  s.l("    mov  r2, r8");
  s.l("    add  r2, r7");
  s.l("    mov  r0, r10");
  s.l("    str  r0, [r2, #" + n2s(4 * n) + "] ; t[i+n] = carry");
  s.l("    adds r7, #4");
  s.l("    cmp  r7, #" + n2s(4 * n));
  s.l("    blt  pp_outer");
}

/// Word-by-word Montgomery REDC of the (2n+1)-word t at r8, in place —
/// a transliteration of mpint::Montgomery::redc. Needs the RAM base in
/// r12 on entry (consumed: r12 becomes the per-row u). After this,
/// r9 = &m and the reduced value is t[n..2n] (top word 0 or 1).
void emit_redc(Src& s, unsigned n) {
  s.l("    mov  r0, r12");
  emit_addr(s, "r1", kPModOff, "r0");
  s.l("    mov  r9, r1             ; &m");
  emit_addr(s, "r2", kPM0Off, "r0");
  s.l("    ldr  r2, [r2, #0]");
  s.l("    mov  r10, r2            ; m0inv");
  s.l("    movs r7, #0             ; i*4");
  s.l("rd_outer:");
  s.l("    mov  r0, r8");
  s.l("    ldr  r0, [r0, r7]       ; t[i]");
  s.l("    mov  r1, r10");
  s.l("    muls r0, r1             ; u = t[i] * m0inv (mod 2^32)");
  s.l("    mov  r12, r0");
  s.l("    movs r1, #0");
  s.l("    mov  r11, r1            ; carry");
  s.l("    movs r6, #0             ; j*4");
  s.l("rd_inner:");
  s.l("    mov  r1, r9");
  s.l("    ldr  r1, [r1, r6]       ; m[j]");
  s.l("    mov  r0, r12");
  s.l("    bl   mul64              ; u * m[j]");
  s.l("    mov  r2, r11");
  s.l("    adds r0, r0, r2");
  s.l("    movs r2, #0");
  s.l("    adcs r2, r2");
  s.l("    adds r1, r1, r2");
  s.l("    mov  r2, r8");
  s.l("    add  r2, r7");
  s.l("    add  r2, r6");
  s.l("    ldr  r3, [r2, #0]");
  s.l("    adds r0, r0, r3");
  s.l("    movs r3, #0");
  s.l("    adcs r3, r3");
  s.l("    adds r1, r1, r3");
  s.l("    str  r0, [r2, #0]");
  s.l("    mov  r11, r1");
  s.l("    adds r6, #4");
  s.l("    cmp  r6, #" + n2s(4 * n));
  s.l("    blt  rd_inner");
  s.l("    mov  r2, r8");
  s.l("    add  r2, r7             ; &t[i]; r6 = 4n = carry offset");
  s.l("rd_carry:");
  s.l("    mov  r0, r11");
  s.l("    cmp  r0, #0");
  s.l("    beq  rd_next");
  s.l("    ldr  r1, [r2, r6]");
  s.l("    adds r1, r1, r0");
  s.l("    str  r1, [r2, r6]");
  s.l("    movs r0, #0");
  s.l("    adcs r0, r0");
  s.l("    mov  r11, r0");
  s.l("    adds r6, #4");
  s.l("    mov  r0, r7");
  s.l("    add  r0, r6");
  s.l("    cmp  r0, #" + n2s(8 * n + 4));
  s.l("    blt  rd_carry");
  s.l("rd_next:");
  s.l("    adds r7, #4");
  s.l("    cmp  r7, #" + n2s(4 * n));
  s.l("    blt  rd_outer");
}

/// Conditional final subtract: r = t[n..2n] (top word in t[2n]); write
/// r >= m ? r - m : r to kOutOff (= t - 0x40). Expects r8 = &t,
/// r9 = &m.
void emit_condsub(Src& s, unsigned n) {
  s.l("    mov  r4, r8");
  s.l("    subs r4, #64            ; out = kOutOff");
  s.l("    mov  r3, r8");
  s.l("    movs r0, #" + n2s(4 * n));
  s.l("    add  r3, r0             ; &t[n]");
  s.l("    mov  r0, r8");
  s.l("    ldr  r0, [r0, #" + n2s(8 * n) + "] ; t[2n] (0 or 1)");
  s.l("    cmp  r0, #0");
  s.l("    bne  cs_sub             ; top bit set -> r >= m");
  s.l("    movs r6, #" + n2s(4 * n));
  s.l("cs_cmp:");
  s.l("    subs r6, #4");
  s.l("    ldr  r1, [r3, r6]");
  s.l("    mov  r2, r9");
  s.l("    ldr  r2, [r2, r6]");
  s.l("    cmp  r1, r2");
  s.l("    bhi  cs_sub");
  s.l("    blo  cs_copy");
  s.l("    cmp  r6, #0");
  s.l("    bne  cs_cmp             ; all equal: r == m -> subtract");
  s.l("cs_sub:");
  s.l("    movs r6, #0");
  s.l("    movs r5, #1             ; saved carry (1 = no borrow)");
  s.l("cs_sl:");
  s.l("    lsrs r0, r5, #1         ; C := saved carry");
  s.l("    ldr  r0, [r3, r6]");
  s.l("    mov  r1, r9");
  s.l("    ldr  r1, [r1, r6]");
  s.l("    sbcs r0, r1");
  s.l("    movs r5, #0");
  s.l("    adcs r5, r5");
  s.l("    str  r0, [r4, r6]");
  s.l("    adds r6, #4");
  s.l("    cmp  r6, #" + n2s(4 * n));
  s.l("    blt  cs_sl");
  s.l("    b    cs_done");
  s.l("cs_copy:");
  s.l("    movs r6, #0");
  s.l("cs_cl:");
  s.l("    ldr  r0, [r3, r6]");
  s.l("    str  r0, [r4, r6]");
  s.l("    adds r6, #4");
  s.l("    cmp  r6, #" + n2s(4 * n));
  s.l("    blt  cs_cl");
  s.l("cs_done:");
  s.l("    bkpt");
}

void check_n(unsigned n) {
  if (n < 2 || n > 8) throw std::invalid_argument("prime kernel limbs");
}

}  // namespace

std::string gen_prime_mul(unsigned n) {
  check_n(n);
  Src s;
  s.l("entry:");
  s.l("    movs r0, #1");
  s.l("    lsls r0, r0, #29        ; RAM base");
  s.l("    mov  r12, r0");
  s.l("    mov  r8, r0             ; product at kVOff = 0");
  s.l("    movs r1, #0");
  s.l("    movs r2, #" + n2s(8 * n));
  s.l("pz:");
  s.l("    subs r2, #4");
  s.l("    str  r1, [r0, r2]");
  s.l("    bne  pz");
  emit_product(s, n, kXOff, kYOff);
  s.l("    bkpt");
  emit_mul64(s);
  return s.text;
}

std::string gen_prime_mont(unsigned n, bool square) {
  check_n(n);
  Src s;
  s.l("entry:");
  s.l("    movs r0, #1");
  s.l("    lsls r0, r0, #29        ; RAM base");
  s.l("    mov  r12, r0");
  emit_addr(s, "r1", kWideOff, "r0");
  s.l("    mov  r8, r1             ; t = wide buffer");
  s.l("    movs r2, #0");
  s.l("    movs r3, #" + n2s(8 * n + 4) + " ; zero t[0..2n]");
  s.l("mz:");
  s.l("    subs r3, #4");
  s.l("    str  r2, [r1, r3]");
  s.l("    bne  mz");
  emit_product(s, n, kXOff, square ? kXOff : kYOff);
  emit_redc(s, n);
  emit_condsub(s, n);
  emit_mul64(s);
  return s.text;
}

std::string gen_prime_redc(unsigned n) {
  check_n(n);
  Src s;
  s.l("entry:");
  s.l("    movs r0, #1");
  s.l("    lsls r0, r0, #29        ; RAM base");
  s.l("    mov  r12, r0");
  emit_addr(s, "r1", kWideOff, "r0");
  s.l("    mov  r8, r1             ; t = caller-loaded wide buffer");
  s.l("    movs r2, #0");
  s.l("    str  r2, [r1, #" + n2s(8 * n) + "] ; zero-extend t[2n]");
  emit_redc(s, n);
  emit_condsub(s, n);
  emit_mul64(s);
  return s.text;
}

std::string gen_prime_inv(unsigned n) {
  check_n(n);
  const std::string w = n2s(4 * n);
  Src s;
  // Pointer map (set once, read-only in the loop): r8 = &u, r9 = &v,
  // r10 = &x1, r11 = &x2, r12 = &m. Subroutines clobber r0-r5 only.
  s.l("entry:");
  s.l("    movs r0, #1");
  s.l("    lsls r0, r0, #29        ; RAM base");
  emit_addr(s, "r1", kInOff, "r0");
  emit_addr(s, "r2", kInvUOff, "r0");
  s.l("    mov  r8, r2");
  s.l("    movs r4, #0");
  s.l("pi_cpu:");
  s.l("    ldr  r3, [r1, r4]");
  s.l("    str  r3, [r2, r4]       ; u = a");
  s.l("    adds r4, #4");
  s.l("    cmp  r4, #" + w);
  s.l("    blt  pi_cpu");
  emit_addr(s, "r1", kPModOff, "r0");
  s.l("    mov  r12, r1            ; &m");
  emit_addr(s, "r2", kInvVOff, "r0");
  s.l("    mov  r9, r2");
  s.l("    movs r4, #0");
  s.l("pi_cpv:");
  s.l("    ldr  r3, [r1, r4]");
  s.l("    str  r3, [r2, r4]       ; v = m");
  s.l("    adds r4, #4");
  s.l("    cmp  r4, #" + w);
  s.l("    blt  pi_cpv");
  emit_addr(s, "r2", kInvG1Off, "r0");
  s.l("    mov  r10, r2");
  s.l("    movs r3, #0");
  s.l("    movs r4, #0");
  s.l("pi_z1:");
  s.l("    str  r3, [r2, r4]");
  s.l("    adds r4, #4");
  s.l("    cmp  r4, #" + w);
  s.l("    blt  pi_z1");
  s.l("    movs r3, #1");
  s.l("    str  r3, [r2, #0]       ; x1 = 1");
  emit_addr(s, "r2", kInvG2Off, "r0");
  s.l("    mov  r11, r2");
  s.l("    movs r3, #0");
  s.l("    movs r4, #0");
  s.l("pi_z2:");
  s.l("    str  r3, [r2, r4]       ; x2 = 0");
  s.l("    adds r4, #4");
  s.l("    cmp  r4, #" + w);
  s.l("    blt  pi_z2");
  s.l("pi_loop:");
  s.l("    mov  r0, r8");
  s.l("    bl   iszero             ; gcd(0, m): degenerate-input guard");
  s.l("    cmp  r0, #1");
  s.l("    beq  pi_ret2");
  s.l("    mov  r0, r8");
  s.l("    bl   isone");
  s.l("    cmp  r0, #1");
  s.l("    beq  pi_ret1");
  s.l("    mov  r0, r9");
  s.l("    bl   isone");
  s.l("    cmp  r0, #1");
  s.l("    beq  pi_ret2");
  s.l("pi_uev:");
  s.l("    mov  r0, r8");
  s.l("    ldr  r1, [r0, #0]");
  s.l("    lsrs r1, r1, #1         ; C = u bit 0");
  s.l("    bcs  pi_vev");
  s.l("    bl   shr1u              ; u /= 2");
  s.l("    mov  r0, r10");
  s.l("    bl   halvem             ; x1 = x1/2 mod m");
  s.l("    b    pi_uev");
  s.l("pi_vev:");
  s.l("    mov  r0, r9");
  s.l("    ldr  r1, [r0, #0]");
  s.l("    lsrs r1, r1, #1");
  s.l("    bcs  pi_diff");
  s.l("    bl   shr1u              ; v /= 2");
  s.l("    mov  r0, r11");
  s.l("    bl   halvem             ; x2 = x2/2 mod m");
  s.l("    b    pi_vev");
  s.l("pi_diff:");
  s.l("    mov  r0, r8");
  s.l("    mov  r1, r9");
  s.l("    bl   uge");
  s.l("    cmp  r0, #1");
  s.l("    bne  pi_lt");
  s.l("    mov  r0, r8");
  s.l("    mov  r1, r9");
  s.l("    bl   usub               ; u -= v");
  s.l("    mov  r0, r10");
  s.l("    mov  r1, r11");
  s.l("    bl   submod             ; x1 = (x1 - x2) mod m");
  s.l("    b    pi_loop");
  s.l("pi_lt:");
  s.l("    mov  r0, r9");
  s.l("    mov  r1, r8");
  s.l("    bl   usub               ; v -= u");
  s.l("    mov  r0, r11");
  s.l("    mov  r1, r10");
  s.l("    bl   submod             ; x2 = (x2 - x1) mod m");
  s.l("    b    pi_loop");
  s.l("pi_ret1:");
  s.l("    mov  r1, r10");
  s.l("    b    pi_out");
  s.l("pi_ret2:");
  s.l("    mov  r1, r11");
  s.l("pi_out:");
  s.l("    movs r0, #1");
  s.l("    lsls r0, r0, #29");
  emit_addr(s, "r2", kOutOff, "r0");
  s.l("    movs r4, #0");
  s.l("pi_cpo:");
  s.l("    ldr  r3, [r1, r4]");
  s.l("    str  r3, [r2, r4]");
  s.l("    adds r4, #4");
  s.l("    cmp  r4, #" + w);
  s.l("    blt  pi_cpo");
  s.l("    bkpt");
  // --- subroutines (leaf; clobber r0-r5; r12 = &m read-only) ---
  s.l("iszero:");
  s.l("    movs r2, #0");
  s.l("iz_l:");
  s.l("    ldr  r1, [r0, r2]");
  s.l("    cmp  r1, #0");
  s.l("    bne  iz_no");
  s.l("    adds r2, #4");
  s.l("    cmp  r2, #" + w);
  s.l("    blt  iz_l");
  s.l("    movs r0, #1");
  s.l("    bx   lr");
  s.l("iz_no:");
  s.l("    movs r0, #0");
  s.l("    bx   lr");
  s.l("isone:");
  s.l("    ldr  r1, [r0, #0]");
  s.l("    cmp  r1, #1");
  s.l("    bne  io_no");
  s.l("    movs r2, #4");
  s.l("io_l:");
  s.l("    cmp  r2, #" + w);
  s.l("    bge  io_yes");
  s.l("    ldr  r1, [r0, r2]");
  s.l("    cmp  r1, #0");
  s.l("    bne  io_no");
  s.l("    adds r2, #4");
  s.l("    b    io_l");
  s.l("io_yes:");
  s.l("    movs r0, #1");
  s.l("    bx   lr");
  s.l("io_no:");
  s.l("    movs r0, #0");
  s.l("    bx   lr");
  s.l("shr1u:                      ; [r0] >>= 1, zero fill");
  s.l("    movs r2, #0");
  s.l("    movs r3, #" + w);
  s.l("sh_l:");
  s.l("    subs r3, #4");
  s.l("    ldr  r1, [r0, r3]");
  s.l("    lsls r4, r1, #31        ; outgoing bit");
  s.l("    lsrs r1, r1, #1");
  s.l("    orrs r1, r2");
  s.l("    str  r1, [r0, r3]");
  s.l("    movs r2, r4");
  s.l("    cmp  r3, #0");
  s.l("    bne  sh_l");
  s.l("    bx   lr");
  s.l("halvem:                     ; [r0] = [r0]/2 mod m (m odd)");
  s.l("    ldr  r1, [r0, #0]");
  s.l("    lsrs r1, r1, #1");
  s.l("    bcc  hv_sh0             ; even: plain shift");
  s.l("    movs r3, #0             ; odd: += m first, keep carry-out");
  s.l("    movs r5, #0");
  s.l("hv_add:");
  s.l("    lsrs r2, r5, #1         ; C := saved carry");
  s.l("    ldr  r1, [r0, r3]");
  s.l("    mov  r2, r12");
  s.l("    ldr  r2, [r2, r3]");
  s.l("    adcs r1, r2");
  s.l("    movs r5, #0");
  s.l("    adcs r5, r5");
  s.l("    str  r1, [r0, r3]");
  s.l("    adds r3, #4");
  s.l("    cmp  r3, #" + w);
  s.l("    blt  hv_add");
  s.l("    lsls r2, r5, #31        ; carry-out becomes the top bit");
  s.l("    b    hv_sh");
  s.l("hv_sh0:");
  s.l("    movs r2, #0");
  s.l("hv_sh:");
  s.l("    movs r3, #" + w);
  s.l("hv_l:");
  s.l("    subs r3, #4");
  s.l("    ldr  r1, [r0, r3]");
  s.l("    lsls r4, r1, #31");
  s.l("    lsrs r1, r1, #1");
  s.l("    orrs r1, r2");
  s.l("    str  r1, [r0, r3]");
  s.l("    movs r2, r4");
  s.l("    cmp  r3, #0");
  s.l("    bne  hv_l");
  s.l("    bx   lr");
  s.l("uge:                        ; r0 = ([r0] >= [r1])");
  s.l("    movs r3, #" + w);
  s.l("ug_l:");
  s.l("    subs r3, #4");
  s.l("    ldr  r2, [r0, r3]");
  s.l("    ldr  r4, [r1, r3]");
  s.l("    cmp  r2, r4");
  s.l("    bhi  ug_yes");
  s.l("    blo  ug_no");
  s.l("    cmp  r3, #0");
  s.l("    bne  ug_l");
  s.l("ug_yes:");
  s.l("    movs r0, #1");
  s.l("    bx   lr");
  s.l("ug_no:");
  s.l("    movs r0, #0");
  s.l("    bx   lr");
  s.l("usub:                       ; [r0] -= [r1] (caller: no borrow)");
  s.l("    movs r3, #0");
  s.l("    movs r5, #1");
  s.l("us_l:");
  s.l("    lsrs r2, r5, #1");
  s.l("    ldr  r2, [r0, r3]");
  s.l("    ldr  r4, [r1, r3]");
  s.l("    sbcs r2, r4");
  s.l("    movs r5, #0");
  s.l("    adcs r5, r5");
  s.l("    str  r2, [r0, r3]");
  s.l("    adds r3, #4");
  s.l("    cmp  r3, #" + w);
  s.l("    blt  us_l");
  s.l("    bx   lr");
  s.l("submod:                     ; [r0] = ([r0] - [r1]) mod m");
  s.l("    movs r3, #" + w);
  s.l("sm_c:");
  s.l("    subs r3, #4");
  s.l("    ldr  r2, [r0, r3]");
  s.l("    ldr  r4, [r1, r3]");
  s.l("    cmp  r2, r4");
  s.l("    bhi  sm_sub");
  s.l("    blo  sm_addm");
  s.l("    cmp  r3, #0");
  s.l("    bne  sm_c");
  s.l("sm_sub:                     ; dst >= src: plain subtract");
  s.l("    movs r3, #0");
  s.l("    movs r5, #1");
  s.l("sm_s:");
  s.l("    lsrs r2, r5, #1");
  s.l("    ldr  r2, [r0, r3]");
  s.l("    ldr  r4, [r1, r3]");
  s.l("    sbcs r2, r4");
  s.l("    movs r5, #0");
  s.l("    adcs r5, r5");
  s.l("    str  r2, [r0, r3]");
  s.l("    adds r3, #4");
  s.l("    cmp  r3, #" + w);
  s.l("    blt  sm_s");
  s.l("    bx   lr");
  s.l("sm_addm:                    ; dst < src: dst += m, then subtract");
  s.l("    movs r3, #0");
  s.l("    movs r5, #0");
  s.l("sm_a:");
  s.l("    lsrs r2, r5, #1");
  s.l("    ldr  r2, [r0, r3]");
  s.l("    mov  r4, r12");
  s.l("    ldr  r4, [r4, r3]");
  s.l("    adcs r2, r4");
  s.l("    movs r5, #0");
  s.l("    adcs r5, r5");
  s.l("    str  r2, [r0, r3]");
  s.l("    adds r3, #4");
  s.l("    cmp  r3, #" + w);
  s.l("    blt  sm_a");
  s.l("    b    sm_sub             ; borrow cancels the dropped carry");
  return s.text;
}

}  // namespace eccm0::asmkernels
