#include "asmkernels/runner.h"

#include "asmkernels/gen.h"
#include "gf2/sqr_table.h"

namespace eccm0::asmkernels {
namespace {

constexpr std::size_t kRamSize = 0x800;

using gf2::k233::Fe;
using gf2::k233::Prod;

void write_fe(armvm::Memory& mem, std::uint32_t offset, const Fe& v) {
  mem.write_words(armvm::kRamBase + offset,
                  std::span<const std::uint32_t>(v.data(), v.size()));
}

void write_sqr_table(armvm::Memory& mem) {
  for (unsigned i = 0; i < 256; ++i) {
    mem.store16(armvm::kRamBase + kSqrTabOff + 2 * i, gf2::kSquareTable[i]);
  }
}

}  // namespace

KernelVm::KernelVm()
    : mul_fixed_raw_(armvm::assemble(gen_mul_fixed(false))),
      mul_fixed_mod_(armvm::assemble(gen_mul_fixed(true))),
      mul_plain_raw_(armvm::assemble(gen_mul_plain(false))),
      mul_plain_mod_(armvm::assemble(gen_mul_plain(true))),
      sqr_(armvm::assemble(gen_sqr())),
      reduce_(armvm::assemble(gen_reduce())),
      lut_only_(armvm::assemble(gen_lut_only())),
      inv_(armvm::assemble(gen_inv())),
      mul163_fixed_raw_(armvm::assemble(gen_mul_k163_fixed(false))),
      mul163_fixed_mod_(armvm::assemble(gen_mul_k163_fixed(true))),
      mul163_plain_raw_(armvm::assemble(gen_mul_k163_plain(false))),
      mul163_plain_mod_(armvm::assemble(gen_mul_k163_plain(true))) {}

KernelVm::Mul163Result KernelVm::mul_k163(MulKernel kernel, const Fe163& x,
                                          const Fe163& y, bool reduce) {
  const armvm::Program& prog =
      kernel == MulKernel::kFixedRegisters
          ? (reduce ? mul163_fixed_mod_ : mul163_fixed_raw_)
          : (reduce ? mul163_plain_mod_ : mul163_plain_raw_);
  armvm::Memory mem(kRamSize);
  mem.write_words(armvm::kRamBase + kXOff,
                  std::span<const std::uint32_t>(x.data(), x.size()));
  mem.write_words(armvm::kRamBase + kYOff,
                  std::span<const std::uint32_t>(y.data(), y.size()));
  armvm::Cpu cpu(prog.code, mem);
  Mul163Result r;
  r.stats = cpu.call(prog.entry("entry"), {});
  if (reduce) {
    const auto words = mem.read_words(armvm::kRamBase + kVOff, 6);
    for (std::size_t i = 0; i < 6; ++i) r.reduced[i] = words[i];
  } else {
    const auto words = mem.read_words(armvm::kRamBase + kVOff, 12);
    for (std::size_t i = 0; i < 12; ++i) r.product[i] = words[i];
  }
  return r;
}

KernelVm::FeResult KernelVm::inv(const Fe& a) {
  armvm::Memory mem(kRamSize);
  write_fe(mem, kInOff, a);
  armvm::Cpu cpu(inv_.code, mem);
  FeResult r;
  r.stats = cpu.call(inv_.entry("entry"), {});
  const auto words = mem.read_words(armvm::kRamBase + kOutOff, 8);
  for (std::size_t i = 0; i < 8; ++i) r.value[i] = words[i];
  return r;
}

std::uint64_t KernelVm::lut_cycles(const Fe& y) {
  armvm::Memory mem(kRamSize);
  write_fe(mem, kYOff, y);
  armvm::Cpu cpu(lut_only_.code, mem);
  return cpu.call(lut_only_.entry("entry"), {}).cycles;
}

KernelVm::MulResult KernelVm::mul(MulKernel kernel, const Fe& x, const Fe& y,
                                  bool reduce) {
  const armvm::Program& prog =
      kernel == MulKernel::kFixedRegisters
          ? (reduce ? mul_fixed_mod_ : mul_fixed_raw_)
          : (reduce ? mul_plain_mod_ : mul_plain_raw_);
  armvm::Memory mem(kRamSize);
  write_fe(mem, kXOff, x);
  write_fe(mem, kYOff, y);
  armvm::Cpu cpu(prog.code, mem);
  MulResult r;
  r.stats = cpu.call(prog.entry("entry"), {});
  if (reduce) {
    const auto words = mem.read_words(armvm::kRamBase + kVOff, 8);
    for (std::size_t i = 0; i < 8; ++i) r.reduced[i] = words[i];
  } else {
    const auto words = mem.read_words(armvm::kRamBase + kVOff, 16);
    for (std::size_t i = 0; i < 16; ++i) r.product[i] = words[i];
  }
  return r;
}

KernelVm::FeResult KernelVm::sqr(const Fe& a) {
  armvm::Memory mem(kRamSize);
  write_sqr_table(mem);
  write_fe(mem, kInOff, a);
  armvm::Cpu cpu(sqr_.code, mem);
  FeResult r;
  r.stats = cpu.call(sqr_.entry("entry"), {});
  const auto words = mem.read_words(armvm::kRamBase + kOutOff, 8);
  for (std::size_t i = 0; i < 8; ++i) r.value[i] = words[i];
  return r;
}

KernelVm::FeResult KernelVm::reduce(const Prod& wide) {
  armvm::Memory mem(kRamSize);
  mem.write_words(armvm::kRamBase + kWideOff,
                  std::span<const std::uint32_t>(wide.data(), wide.size()));
  armvm::Cpu cpu(reduce_.code, mem);
  FeResult r;
  r.stats = cpu.call(reduce_.entry("entry"), {});
  const auto words = mem.read_words(armvm::kRamBase + kOutOff, 8);
  for (std::size_t i = 0; i < 8; ++i) r.value[i] = words[i];
  return r;
}

std::size_t KernelVm::code_bytes_mul_fixed() const {
  return 2 * mul_fixed_mod_.code.size();
}

std::size_t KernelVm::code_bytes_sqr() const {
  return 2 * sqr_.code.size();
}

}  // namespace eccm0::asmkernels
