#include "asmkernels/gen.h"

#include <array>

#include "armvm/cpu.h"

namespace eccm0::asmkernels {
namespace {

/// Where each product word v[i] lives in the fixed-register layout for an
/// n-word field: the n+1-word window v[(n-1)/2 .. (n-1)/2 + n] is pinned;
/// within it the four hottest words v[n-3..n] take the lo registers
/// r4-r7 (EORS directly), the remainder take hi registers r8.. (MOV
/// shuttle); everything else lives in RAM at r3 + 4*i.
/// For n = 8 this reproduces the paper's layout exactly:
/// v[5..8] -> r4-r7, v[3],v[4],v[9],v[10],v[11] -> r8-r12.
struct Residence {
  enum Kind { kLo, kHi, kMem } kind;
  unsigned reg = 0;  // for kLo/kHi
};

Residence fixed_residence_n(unsigned n, unsigned i) {
  const unsigned w0 = (n - 1) / 2;
  if (i < w0 || i > w0 + n) return {Residence::kMem, 0};
  if (i >= n - 3 && i <= n) {
    return {Residence::kLo, 4 + (i - (n - 3))};
  }
  // Remaining window words, ascending, into r8, r9, ...
  unsigned hi = 8;
  for (unsigned w = w0; w <= w0 + n; ++w) {
    if (w >= n - 3 && w <= n) continue;
    if (w == i) return {Residence::kHi, hi};
    ++hi;
  }
  return {Residence::kMem, 0};  // unreachable
}

Residence fixed_residence(unsigned i) { return fixed_residence_n(8, i); }

Residence mem_residence(unsigned) { return {Residence::kMem, 0}; }

class Emitter {
 public:
  void line(const std::string& s) {
    out_ += "    ";
    out_ += s;
    out_ += "\n";
  }
  void label(const std::string& s) { out_ += s + ":\n"; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

std::string off(unsigned bytes) { return "#" + std::to_string(bytes); }

/// Load r<reg> = kRamBase + byte_off without a literal pool (the unrolled
/// kernels are longer than the 1 KiB LDR-literal reach). kRamBase is
/// 1 << 29; offsets used here are all multiples of 8 below 2 KiB.
void emit_load_base(Emitter& e, unsigned reg, std::uint32_t byte_off,
                    const std::string& base_reg = "") {
  const std::string r = "r" + std::to_string(reg);
  if (byte_off == 0) {
    e.line("movs " + r + ", #1");
    e.line("lsls " + r + ", " + r + ", #29");
    return;
  }
  // byte_off = imm8 << 3 for all our offsets.
  e.line("movs " + r + ", #" + std::to_string(byte_off >> 3));
  e.line("lsls " + r + ", " + r + ", #3");
  e.line("add " + r + ", " + base_reg);
}

/// Emit LUT generation: T[u] = u(z)*y(z) at r3+kLutOff, y at r3+kYOff.
/// Clobbers r0..r2, r4..r7 (v registers are initialised afterwards).
void emit_lut_gen(Emitter& e, unsigned n) {
  // r1 = LUT base
  e.line("movs r1, #" + std::to_string(kLutOff));
  e.line("add r1, r3");
  // T[0] = 0; T[1] = y.
  e.line("movs r0, #0");
  for (unsigned i = 0; i < n; ++i) e.line("str r0, [r1, " + off(4 * i) + "]");
  for (unsigned i = 0; i < n; ++i) {
    e.line("ldr r0, [r3, " + off(kYOff + 4 * i) + "]");
    e.line("str r0, [r1, " + off(32 + 4 * i) + "]");
  }
  // Pairs: T[u] = T[u/2] << 1 (even), T[u+1] = T[u] ^ y (odd).
  for (unsigned u = 2; u < 16; u += 2) {
    // r2 = src = &T[u/2]; r4 = dst = &T[u].
    e.line("movs r2, #" + std::to_string((u / 2) * 32));
    e.line("add r2, r1");
    e.line("movs r4, #" + std::to_string(u));
    e.line("lsls r4, r4, #5");
    e.line("add r4, r1");
    // r5/r0 alternate as the source-word register so the previous word is
    // still live for the carry without a copy.
    for (unsigned i = 0; i < n; ++i) {
      const char* cur = (i % 2 == 0) ? "r5" : "r0";
      const char* prev = (i % 2 == 0) ? "r0" : "r5";
      e.line(std::string("ldr ") + cur + ", [r2, " + off(4 * i) + "]");
      e.line(std::string("lsls r6, ") + cur + ", #1");
      if (i > 0) {
        e.line(std::string("lsrs ") + prev + ", " + prev + ", #31");
        e.line(std::string("orrs r6, ") + prev);
      }
      e.line("str r6, [r4, " + off(4 * i) + "]");
      e.line("ldr r7, [r3, " + off(kYOff + 4 * i) + "]");
      e.line("eors r7, r6");
      e.line("str r7, [r4, " + off(32 + 4 * i) + "]");
    }
  }
}

/// XOR the T-entry word in r0 into product word `idx` under `res`.
template <typename ResFn>
void emit_xor_into_v(Emitter& e, unsigned idx, ResFn res) {
  const Residence r = res(idx);
  switch (r.kind) {
    case Residence::kLo:
      e.line("eors r" + std::to_string(r.reg) + ", r0");
      break;
    case Residence::kHi:
      e.line("mov r2, r" + std::to_string(r.reg));
      e.line("eors r2, r0");
      e.line("mov r" + std::to_string(r.reg) + ", r2");
      break;
    case Residence::kMem:
      e.line("ldr r2, [r3, " + off(kVOff + 4 * idx) + "]");
      e.line("eors r2, r0");
      e.line("str r2, [r3, " + off(kVOff + 4 * idx) + "]");
      break;
  }
}

/// Emit the whole-product shift left by 4 over words 0..15, top down,
/// respecting residences. Uses r0 (carry) and r2 (hi shuttle).
template <typename ResFn>
void emit_shl4(Emitter& e, unsigned n, ResFn res) {
  for (int i = static_cast<int>(2 * n) - 1; i >= 0; --i) {
    // r0 = carry = v[i-1] >> 28 (i > 0).
    if (i > 0) {
      const Residence below = res(static_cast<unsigned>(i - 1));
      switch (below.kind) {
        case Residence::kLo:
          e.line("lsrs r0, r" + std::to_string(below.reg) + ", #28");
          break;
        case Residence::kHi:
          e.line("mov r0, r" + std::to_string(below.reg));
          e.line("lsrs r0, r0, #28");
          break;
        case Residence::kMem:
          e.line("ldr r0, [r3, " + off(kVOff + 4 * (i - 1)) + "]");
          e.line("lsrs r0, r0, #28");
          break;
      }
    }
    const Residence cur = res(static_cast<unsigned>(i));
    switch (cur.kind) {
      case Residence::kLo: {
        const std::string rv = "r" + std::to_string(cur.reg);
        e.line("lsls " + rv + ", " + rv + ", #4");
        if (i > 0) e.line("orrs " + rv + ", r0");
        break;
      }
      case Residence::kHi:
        e.line("mov r2, r" + std::to_string(cur.reg));
        e.line("lsls r2, r2, #4");
        if (i > 0) e.line("orrs r2, r0");
        e.line("mov r" + std::to_string(cur.reg) + ", r2");
        break;
      case Residence::kMem:
        e.line("ldr r2, [r3, " + off(kVOff + 4 * i) + "]");
        e.line("lsls r2, r2, #4");
        if (i > 0) e.line("orrs r2, r0");
        e.line("str r2, [r3, " + off(kVOff + 4 * i) + "]");
        break;
    }
  }
}

/// Word-at-a-time fold of the 16-word buffer at `base_reg` modulo
/// z^233 + z^74 + 1, in place, including the top partial word and mask.
void emit_reduce_body(Emitter& e, const std::string& base_reg) {
  auto rmw = [&](unsigned word, const std::string& shifted) {
    e.line(shifted);  // r1 = t shifted appropriately
    e.line("ldr r2, [" + base_reg + ", " + off(4 * word) + "]");
    e.line("eors r2, r1");
    e.line("str r2, [" + base_reg + ", " + off(4 * word) + "]");
  };
  for (int i = 15; i >= 8; --i) {
    e.line("ldr r0, [" + base_reg + ", " + off(4 * i) + "]");
    rmw(static_cast<unsigned>(i - 8), "lsls r1, r0, #23");
    rmw(static_cast<unsigned>(i - 7), "lsrs r1, r0, #9");
    rmw(static_cast<unsigned>(i - 5), "lsls r1, r0, #1");
    rmw(static_cast<unsigned>(i - 4), "lsrs r1, r0, #31");
  }
  // t = v[7] >> 9 folds to bits 0.. and 74..
  e.line("ldr r0, [" + base_reg + ", #28]");
  e.line("lsrs r0, r0, #9");
  rmw(0, "movs r1, r0");
  rmw(2, "lsls r1, r0, #10");
  rmw(3, "lsrs r1, r0, #22");
  // v[7] &= 0x1FF
  e.line("ldr r2, [" + base_reg + ", #28]");
  e.line("lsls r2, r2, #23");
  e.line("lsrs r2, r2, #23");
  e.line("str r2, [" + base_reg + ", #28]");
}

/// Generic word-at-a-time fold of a 2n-word buffer at `base_reg` modulo
/// x^m + sum x^t (terms below m given in `terms`, descending, ending in
/// 0), in place, including the partial boundary word and mask. Mirrors
/// gf2::GF2Field::reduce_wide, fully unrolled.
void emit_reduce_generic(Emitter& e, const std::string& base_reg, unsigned m,
                         const std::vector<unsigned>& terms, unsigned n) {
  const unsigned mw = m / 32;
  const unsigned mb = m % 32;
  auto rmw = [&](unsigned word, const std::string& shifted) {
    e.line(shifted);  // r1 = t shifted
    e.line("ldr r2, [" + base_reg + ", " + off(4 * word) + "]");
    e.line("eors r2, r1");
    e.line("str r2, [" + base_reg + ", " + off(4 * word) + "]");
  };
  for (int i = static_cast<int>(2 * n) - 1; i > static_cast<int>(mw); --i) {
    e.line("ldr r0, [" + base_reg + ", " + off(4 * i) + "]");
    // The source word is consumed entirely; clear it first so fold
    // targets can alias it safely (they cannot here, but stay uniform).
    e.line("movs r1, #0");
    e.line("str r1, [" + base_reg + ", " + off(4 * i) + "]");
    for (std::size_t k = 1; k < terms.size(); ++k) {
      const unsigned q =
          static_cast<unsigned>(i) * 32 - (m - terms[k]);
      const unsigned b = q % 32;
      if (b == 0) {
        rmw(q / 32, "movs r1, r0");
      } else {
        rmw(q / 32, "lsls r1, r0, #" + std::to_string(b));
        rmw(q / 32 + 1, "lsrs r1, r0, #" + std::to_string(32 - b));
      }
    }
  }
  // Partial boundary word: t = c[mw] >> mb.
  e.line("ldr r0, [" + base_reg + ", " + off(4 * mw) + "]");
  e.line("lsrs r0, r0, #" + std::to_string(mb));
  for (std::size_t k = 1; k < terms.size(); ++k) {
    const unsigned tm = terms[k];
    const unsigned b = tm % 32;
    if (b == 0) {
      rmw(tm / 32, "movs r1, r0");
    } else {
      rmw(tm / 32, "lsls r1, r0, #" + std::to_string(b));
      if (mb + b > 32) {
        // Only spill when t's high bits actually cross the word boundary.
        rmw(tm / 32 + 1, "lsrs r1, r0, #" + std::to_string(32 - b));
      } else {
        rmw(tm / 32 + 1, "lsrs r1, r0, #" + std::to_string(32 - b));
      }
    }
  }
  // Mask the boundary word.
  e.line("ldr r2, [" + base_reg + ", " + off(4 * mw) + "]");
  e.line("lsls r2, r2, #" + std::to_string(32 - mb));
  e.line("lsrs r2, r2, #" + std::to_string(32 - mb));
  e.line("str r2, [" + base_reg + ", " + off(4 * mw) + "]");
}

/// Reduction interleaved with the fixed-register state (paper section
/// 3.2.1: "the field multiplication algorithm can be interleaved with the
/// reduction algorithm"): folds words 15..8 directly from/into their
/// residences — most fold targets are register-resident, so the flush +
/// memory-pass round trip of a standalone reduction disappears. Result is
/// written to v[0..7] in RAM.
void emit_reduce_fixed_state(Emitter& e) {
  // r0 = t (source word), r1 = shifted value, r2 = hi shuttle.
  auto fold = [&e](unsigned target, const std::string& shifted) {
    e.line(shifted);  // r1 = t shifted
    const Residence r = fixed_residence(target);
    switch (r.kind) {
      case Residence::kLo:
        e.line("eors r" + std::to_string(r.reg) + ", r1");
        break;
      case Residence::kHi:
        e.line("mov r2, r" + std::to_string(r.reg));
        e.line("eors r2, r1");
        e.line("mov r" + std::to_string(r.reg) + ", r2");
        break;
      case Residence::kMem:
        e.line("ldr r2, [r3, " + off(kVOff + 4 * target) + "]");
        e.line("eors r2, r1");
        e.line("str r2, [r3, " + off(kVOff + 4 * target) + "]");
        break;
    }
  };
  for (int i = 15; i >= 8; --i) {
    const Residence src = fixed_residence(static_cast<unsigned>(i));
    switch (src.kind) {
      case Residence::kLo:
        e.line("movs r0, r" + std::to_string(src.reg));
        break;
      case Residence::kHi:
        e.line("mov r0, r" + std::to_string(src.reg));
        break;
      case Residence::kMem:
        e.line("ldr r0, [r3, " + off(kVOff + 4 * i) + "]");
        break;
    }
    fold(static_cast<unsigned>(i - 8), "lsls r1, r0, #23");
    fold(static_cast<unsigned>(i - 7), "lsrs r1, r0, #9");
    fold(static_cast<unsigned>(i - 5), "lsls r1, r0, #1");
    fold(static_cast<unsigned>(i - 4), "lsrs r1, r0, #31");
  }
  // Top fold: t = v[7] >> 9 (v[7] lives in r6), then mask v[7].
  e.line("lsrs r0, r6, #9");
  fold(0, "movs r1, r0");
  fold(2, "lsls r1, r0, #10");
  fold(3, "lsrs r1, r0, #22");
  e.line("lsls r6, r6, #23");
  e.line("lsrs r6, r6, #23");
  // Write the reduced words 3..7 back to RAM (0..2 are already there).
  for (unsigned i = 3; i < 8; ++i) {
    const Residence r = fixed_residence(i);
    if (r.kind == Residence::kLo) {
      e.line("str r" + std::to_string(r.reg) + ", [r3, " +
             off(kVOff + 4 * i) + "]");
    } else {
      e.line("mov r2, r" + std::to_string(r.reg));
      e.line("str r2, [r3, " + off(kVOff + 4 * i) + "]");
    }
  }
}

/// Flush the pinned registers back to RAM so reduction can run in memory.
void emit_flush_fixed(Emitter& e, unsigned n) {
  const unsigned w0 = (n - 1) / 2;
  for (unsigned i = w0; i <= w0 + n; ++i) {
    const Residence r = fixed_residence_n(n, i);
    if (r.kind == Residence::kLo) {
      e.line("str r" + std::to_string(r.reg) + ", [r3, " +
             off(kVOff + 4 * i) + "]");
    } else {
      e.line("mov r2, r" + std::to_string(r.reg));
      e.line("str r2, [r3, " + off(kVOff + 4 * i) + "]");
    }
  }
}

template <typename ResFn>
std::string gen_mul(unsigned n, unsigned m,
                    const std::vector<unsigned>& terms, bool fixed,
                    bool reduce, ResFn res) {
  Emitter e;
  e.label("entry");
  emit_load_base(e, 3, 0);
  emit_lut_gen(e, n);
  // Zero the product vector.
  e.line("movs r0, #0");
  for (unsigned i = 0; i < 2 * n; ++i) {
    const Residence r = res(i);
    switch (r.kind) {
      case Residence::kLo:
        e.line("movs r" + std::to_string(r.reg) + ", #0");
        break;
      case Residence::kHi:
        e.line("mov r" + std::to_string(r.reg) + ", r0");
        break;
      case Residence::kMem:
        e.line("str r0, [r3, " + off(kVOff + 4 * i) + "]");
        break;
    }
  }
  // The kernel is a leaf (it ends in BKPT), so LR is a free register:
  // park the LUT base there and save an add per (j, k) block.
  e.line("movs r1, #" + std::to_string(kLutOff));
  e.line("add r1, r3");
  e.line("mov lr, r1");
  // Main left-to-right nibble scan, fully unrolled.
  for (int j = 7; j >= 0; --j) {
    for (unsigned k = 0; k < n; ++k) {
      e.line("ldr r2, [r3, " + off(kXOff + 4 * k) + "]");
      if (j == 7) {
        e.line("lsrs r2, r2, #28");
      } else {
        e.line("lsls r2, r2, #" + std::to_string(28 - 4 * j));
        e.line("lsrs r2, r2, #28");
      }
      e.line("lsls r1, r2, #5");
      e.line("add r1, lr");
      for (unsigned l = 0; l < n; ++l) {
        e.line("ldr r0, [r1, " + off(4 * l) + "]");
        emit_xor_into_v(e, k + l, res);
      }
    }
    if (j != 0) emit_shl4(e, n, res);
  }
  if (fixed && reduce && m == 233) {
    emit_reduce_fixed_state(e);  // interleaved with the register state
  } else {
    if (fixed) emit_flush_fixed(e, n);
    if (reduce) {
      if (m == 233) {
        emit_reduce_body(e, "r3");
      } else {
        emit_reduce_generic(e, "r3", m, terms, n);
      }
    }
  }
  e.line("bkpt");
  return e.take();
}

}  // namespace

std::string gen_mul_fixed(bool reduce) {
  return gen_mul(8, 233, {233, 74, 0}, true, reduce, fixed_residence);
}

std::string gen_mul_plain(bool reduce) {
  return gen_mul(8, 233, {233, 74, 0}, false, reduce, mem_residence);
}

std::string gen_mul_k163_fixed(bool reduce) {
  return gen_mul(6, 163, {163, 7, 6, 3, 0}, true, reduce,
                 [](unsigned i) { return fixed_residence_n(6, i); });
}

std::string gen_mul_k163_plain(bool reduce) {
  return gen_mul(6, 163, {163, 7, 6, 3, 0}, false, reduce, mem_residence);
}

std::string gen_lut_only() {
  Emitter e;
  e.label("entry");
  emit_load_base(e, 3, 0);
  emit_lut_gen(e, 8);
  e.line("bkpt");
  return e.take();
}

std::string gen_sqr() {
  Emitter e;
  e.label("entry");
  emit_load_base(e, 3, 0);
  emit_load_base(e, 4, kSqrTabOff, "r3");
  emit_load_base(e, 5, kInOff, "r3");
  emit_load_base(e, 6, kWideOff, "r3");
  emit_load_base(e, 7, kOutOff, "r3");
  // The low half of the expansion goes straight to the output buffer
  // (it is the part that survives reduction); the high half goes to the
  // wide scratch and is folded onto the output (paper section 3.2.4's
  // "the upper half is expanded and then immediately reduced").
  for (unsigned i = 0; i < 8; ++i) {
    const bool low_half = i < 4;
    const std::string base = low_half ? "r7" : "r6";
    const unsigned base_off = low_half ? 8 * i : 8 * (i - 4);
    e.line("ldr r0, [r5, " + off(4 * i) + "]");
    // low expansion word: spread(byte0) | spread(byte1) << 16
    e.line("lsls r1, r0, #24");
    e.line("lsrs r1, r1, #23");  // byte0 * 2 = halfword table index
    e.line("ldrh r2, [r4, r1]");
    e.line("lsls r1, r0, #16");
    e.line("lsrs r1, r1, #24");
    e.line("lsls r1, r1, #1");
    e.line("ldrh r1, [r4, r1]");
    e.line("lsls r1, r1, #16");
    e.line("orrs r2, r1");
    e.line("str r2, [" + base + ", " + off(base_off) + "]");
    // high expansion word
    e.line("lsls r1, r0, #8");
    e.line("lsrs r1, r1, #24");
    e.line("lsls r1, r1, #1");
    e.line("ldrh r2, [r4, r1]");
    e.line("lsrs r1, r0, #24");
    e.line("lsls r1, r1, #1");
    e.line("ldrh r1, [r4, r1]");
    e.line("lsls r1, r1, #16");
    e.line("orrs r2, r1");
    e.line("str r2, [" + base + ", " + off(base_off + 4) + "]");
  }
  // Fold the high words (wide[0..7] = product words 8..15) onto the
  // output, top down, then the partial top word. Fold targets >= 8 still
  // live in the wide buffer; lower targets in the output buffer.
  auto rmw = [&e](int target, const std::string& shifted) {
    e.line(shifted);
    const std::string base = target >= 8 ? "r6" : "r7";
    const unsigned o = target >= 8 ? 4 * (static_cast<unsigned>(target) - 8)
                                   : 4 * static_cast<unsigned>(target);
    e.line("ldr r2, [" + base + ", " + off(o) + "]");
    e.line("eors r2, r1");
    e.line("str r2, [" + base + ", " + off(o) + "]");
  };
  for (int i = 15; i >= 8; --i) {
    e.line("ldr r0, [r6, " + off(4 * (i - 8)) + "]");
    rmw(i - 8, "lsls r1, r0, #23");
    rmw(i - 7, "lsrs r1, r0, #9");
    rmw(i - 5, "lsls r1, r0, #1");
    rmw(i - 4, "lsrs r1, r0, #31");
  }
  e.line("ldr r0, [r7, #28]");
  e.line("lsrs r0, r0, #9");
  rmw(0, "movs r1, r0");
  rmw(2, "lsls r1, r0, #10");
  rmw(3, "lsrs r1, r0, #22");
  e.line("ldr r2, [r7, #28]");
  e.line("lsls r2, r2, #23");
  e.line("lsrs r2, r2, #23");
  e.line("str r2, [r7, #28]");
  e.line("bkpt");
  return e.take();
}

std::string gen_inv() {
  // Register convention in the main loop:
  //   r6 = vars block: [0]=du [4]=dv [8]=&u [12]=&v [16]=&g1 [20]=&g2
  //   everything else is scratch; subroutines preserve r4-r7.
  // xsh(dst=r0, src=r1, j=r2): dst ^= src << j  (8-word vectors)
  // deg(ptr=r0) -> r0: polynomial degree, -1 for zero.
  return R"(
entry:
    movs r0, #1
    lsls r0, r0, #29        ; r0 = RAM base
    movs r6, #216
    lsls r6, r6, #3
    add  r6, r0             ; r6 = vars block (base + 0x6C0)

    ; u = a (copy 8 words from 0x480 to 0x600)
    movs r1, #144
    lsls r1, r1, #3
    add  r1, r0             ; in ptr
    movs r2, #192
    lsls r2, r2, #3
    add  r2, r0             ; u ptr
    str  r2, [r6, #8]
    movs r4, #0
cp_u:
    ldr  r3, [r1, r4]
    str  r3, [r2, r4]
    adds r4, #4
    cmp  r4, #32
    blt  cp_u

    ; v = f = z^233 + z^74 + 1
    movs r2, #196
    lsls r2, r2, #3
    add  r2, r0             ; v ptr (0x620)
    str  r2, [r6, #12]
    movs r3, #0
    movs r4, #0
zf:
    str  r3, [r2, r4]
    adds r4, #4
    cmp  r4, #32
    blt  zf
    movs r3, #1
    str  r3, [r2, #0]       ; z^0
    lsls r3, r3, #10
    str  r3, [r2, #8]       ; z^74 = word 2 bit 10
    movs r3, #1
    lsls r3, r3, #9
    str  r3, [r2, #28]      ; z^233 = word 7 bit 9

    ; g1 = 1, g2 = 0
    movs r2, #200
    lsls r2, r2, #3
    add  r2, r0             ; g1 ptr (0x640)
    str  r2, [r6, #16]
    movs r3, #0
    movs r4, #0
zg1:
    str  r3, [r2, r4]
    adds r4, #4
    cmp  r4, #32
    blt  zg1
    movs r3, #1
    str  r3, [r2, #0]
    movs r2, #204
    lsls r2, r2, #3
    add  r2, r0             ; g2 ptr (0x660)
    str  r2, [r6, #20]
    movs r3, #0
    movs r4, #0
zg2:
    str  r3, [r2, r4]
    adds r4, #4
    cmp  r4, #32
    blt  zg2

    ; dv = 233; du = deg(u)
    movs r3, #233
    str  r3, [r6, #4]
    ldr  r0, [r6, #8]
    bl   deg
    str  r0, [r6, #0]

main_loop:
    ldr  r0, [r6, #0]       ; du
    cmp  r0, #0
    ble  done
    ldr  r1, [r6, #4]       ; dv
    subs r2, r0, r1         ; j = du - dv
    bge  noswap
    ; pointer swap u<->v, g1<->g2, du<->dv; j = -j
    ldr  r0, [r6, #8]
    ldr  r1, [r6, #12]
    str  r1, [r6, #8]
    str  r0, [r6, #12]
    ldr  r0, [r6, #16]
    ldr  r1, [r6, #20]
    str  r1, [r6, #16]
    str  r0, [r6, #20]
    ldr  r0, [r6, #0]
    ldr  r1, [r6, #4]
    str  r1, [r6, #0]
    str  r0, [r6, #4]
    rsbs r2, r2, #0
noswap:
    push {r2}
    ldr  r0, [r6, #8]       ; u ^= v << j
    ldr  r1, [r6, #12]
    bl   xsh
    pop  {r2}
    ldr  r0, [r6, #16]      ; g1 ^= g2 << j
    ldr  r1, [r6, #20]
    bl   xsh
    ldr  r0, [r6, #8]
    bl   deg
    str  r0, [r6, #0]
    b    main_loop

done:
    ; copy g1 to out (0x4C0)
    ldr  r1, [r6, #16]
    movs r0, #1
    lsls r0, r0, #29
    movs r2, #152
    lsls r2, r2, #3
    add  r2, r0
    movs r4, #0
cp_out:
    ldr  r3, [r1, r4]
    str  r3, [r2, r4]
    adds r4, #4
    cmp  r4, #32
    blt  cp_out
    bkpt

; --- xsh: dst(r0) ^= src(r1) << j(r2); clobbers r0-r3, preserves r4-r7.
xsh:
    push {r4-r7}
    lsrs r3, r2, #5         ; wj = j / 32
    lsls r4, r3, #2
    adds r0, r0, r4         ; dst' = dst + 4*wj
    movs r4, #31
    ands r2, r4             ; b = j & 31
    movs r4, #32
    subs r4, r4, r2         ; 32 - b (reg shift by 32 yields 0 when b=0)
    movs r5, #7
    subs r5, r5, r3         ; i = 7 - wj
xloop:
    lsls r6, r5, #2
    ldr  r7, [r1, r6]       ; src[i]
    movs r3, r7
    lsls r3, r2             ; src[i] << b
    cmp  r5, #0
    beq  xstore
    subs r6, #4
    ldr  r6, [r1, r6]       ; src[i-1]
    lsrs r6, r4             ; >> (32-b)
    orrs r3, r6
xstore:
    lsls r6, r5, #2
    ldr  r7, [r0, r6]
    eors r7, r3
    str  r7, [r0, r6]
    subs r5, #1
    bpl  xloop
    pop  {r4-r7}
    bx   lr

; --- deg: r0 = ptr -> r0 = degree of the 8-word polynomial, -1 if zero.
deg:
    movs r2, #28
dg_w:
    ldr  r3, [r0, r2]
    cmp  r3, #0
    bne  dg_f
    subs r2, #4
    bpl  dg_w
    movs r0, #0
    mvns r0, r0             ; -1
    bx   lr
dg_f:
    lsls r2, r2, #3         ; word_index * 32
    movs r1, #31
dg_b:
    cmp  r3, #0
    bmi  dg_d               ; bit 31 set
    lsls r3, r3, #1
    subs r1, #1
    b    dg_b
dg_d:
    adds r0, r2, r1
    bx   lr
)";
}

std::string gen_reduce() {
  Emitter e;
  e.label("entry");
  emit_load_base(e, 3, 0);
  emit_load_base(e, 6, kWideOff, "r3");
  emit_load_base(e, 7, kOutOff, "r3");
  emit_reduce_body(e, "r6");
  for (unsigned i = 0; i < 8; ++i) {
    e.line("ldr r0, [r6, " + off(4 * i) + "]");
    e.line("str r0, [r7, " + off(4 * i) + "]");
  }
  e.line("bkpt");
  return e.take();
}

}  // namespace eccm0::asmkernels
