// Short-Weierstrass prime curves y^2 = x^3 - 3x + b over F_p — the
// comparison targets of the paper's Table 4 (MIRACL / Micro ECC /
// Wenger et al. run secp192r1/secp224r1/secp256r1) and of the section 3.1
// curve-selection model.
#pragma once

#include <memory>
#include <string>

#include "mpint/montgomery.h"
#include "mpint/uint.h"

namespace eccm0::ecp {

struct PrimeCurve {
  mpint::UInt p;
  mpint::UInt b;   ///< a is fixed to -3 (all SEC2 r1 curves)
  mpint::UInt gx;
  mpint::UInt gy;
  mpint::UInt order;
  unsigned cofactor = 1;
  std::string name;
  std::shared_ptr<const mpint::Montgomery> mont;  ///< mod-p context

  std::size_t limbs() const { return mont->limbs(); }
  unsigned bits() const { return static_cast<unsigned>(p.bit_length()); }

  static const PrimeCurve& secp192r1();
  static const PrimeCurve& secp224r1();
  static const PrimeCurve& secp256r1();
};

}  // namespace eccm0::ecp
