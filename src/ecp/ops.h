// Prime-curve point arithmetic: Jacobian coordinates over the Montgomery
// domain, with field-operation counting mirroring ec::CurveOps so prime
// and binary implementations can be costed with the same machinery.
#pragma once

#include <cstdint>
#include <functional>

#include "ecp/curve.h"

namespace eccm0::ecp {

/// Affine point, coordinates in the Montgomery domain. `inf` marks the
/// identity.
struct AffinePointP {
  mpint::UInt x;
  mpint::UInt y;
  bool inf = true;

  static AffinePointP infinity() { return {}; }
};

/// Jacobian point: x = X/Z^2, y = Y/Z^3, in the Montgomery domain.
struct JacobianPoint {
  mpint::UInt X;
  mpint::UInt Y;
  mpint::UInt Z;  ///< zero = infinity

  bool is_inf() const { return Z.is_zero(); }
  static JacobianPoint infinity() { return {}; }
};

struct PrimeOpCounts {
  std::uint64_t mul = 0;
  std::uint64_t sqr = 0;
  std::uint64_t inv = 0;
  std::uint64_t add = 0;  ///< modular add/sub
};

class PrimeCurveOps {
 public:
  /// Fault-injection seam, mirroring ec::CurveOps::MulTamper: observes
  /// every counted Montgomery multiplication (0-based running index,
  /// both in-domain operands) and may overwrite the result in place.
  /// Installed only by fault campaigns; normal runs pay one branch per
  /// fmul.
  using MulTamper = std::function<void(
      std::uint64_t index, const mpint::UInt& a, const mpint::UInt& b,
      mpint::UInt& r)>;

  explicit PrimeCurveOps(const PrimeCurve& c) : c_(c) {}

  const PrimeCurve& curve() const { return c_; }
  const PrimeOpCounts& counts() const { return counts_; }
  void reset_counts() { counts_ = {}; }

  /// Install (or clear, with nullptr) the multiplication tamper hook.
  /// Resets the running multiplication index to 0.
  void set_mul_tamper(MulTamper t) {
    tamper_ = std::move(t);
    mul_index_ = 0;
  }

  /// Import/export between plain integers mod p and the Montgomery domain.
  AffinePointP import_point(const mpint::UInt& x, const mpint::UInt& y) const;
  void export_point(const AffinePointP& p, mpint::UInt* x,
                    mpint::UInt* y) const;
  /// The curve generator, imported.
  AffinePointP generator() const;

  mpint::UInt fmul(const mpint::UInt& a, const mpint::UInt& b) {
    ++counts_.mul;
    if (!tamper_) [[likely]] return c_.mont->mul(a, b);
    mpint::UInt r = c_.mont->mul(a, b);
    tamper_(mul_index_++, a, b, r);
    return r;
  }
  mpint::UInt fsqr(const mpint::UInt& a) {
    ++counts_.sqr;
    return c_.mont->mul(a, a);
  }
  mpint::UInt finv(const mpint::UInt& a) {
    ++counts_.inv;
    return c_.mont->inv(a);
  }
  mpint::UInt fadd(const mpint::UInt& a, const mpint::UInt& b) {
    ++counts_.add;
    return c_.mont->add(a, b);
  }
  mpint::UInt fsub(const mpint::UInt& a, const mpint::UInt& b) {
    ++counts_.add;
    return c_.mont->sub(a, b);
  }

  bool on_curve(const AffinePointP& p);
  AffinePointP neg(const AffinePointP& p) const;
  /// Affine oracle operations (one inversion each).
  AffinePointP add(const AffinePointP& p, const AffinePointP& q);
  AffinePointP dbl(const AffinePointP& p);

  JacobianPoint to_jacobian(const AffinePointP& p) const;
  AffinePointP to_affine(const JacobianPoint& p);
  /// Jacobian doubling with the a = -3 shortcut: 4M + 4S.
  void jac_double(JacobianPoint& p);
  /// Mixed Jacobian-affine addition: 8M + 3S.
  void jac_add_mixed(JacobianPoint& p, const AffinePointP& q);

  bool eq(const AffinePointP& p, const AffinePointP& q) const;

 private:
  const PrimeCurve& c_;
  PrimeOpCounts counts_;
  MulTamper tamper_;
  std::uint64_t mul_index_ = 0;
};

/// Width-w NAF scalar multiplication (the doubling-based path a prime
/// curve requires; no Frobenius shortcut exists).
AffinePointP mul_wnaf_p(PrimeCurveOps& ops, const AffinePointP& p,
                        const mpint::UInt& k, unsigned w);
/// Reference oracle: affine double-and-add.
AffinePointP mul_naive_p(PrimeCurveOps& ops, const AffinePointP& p,
                         const mpint::UInt& k);

}  // namespace eccm0::ecp
