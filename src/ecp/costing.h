// Cortex-M0+ cycle/energy model for prime-field ECC (the comparison side
// of Table 4 and of the section 3.1 curve-selection argument).
//
// The M0+ has only a 32x32->32 multiplier, so a full 32x32->64 product is
// four 16x16 MULS plus an ADD/ADC carry tree (~17 instructions). A Comba
// product is n^2 such MACs plus operand traffic; the constants below
// follow that mechanical count and land on MIRACL-class cycle numbers
// (e.g. ~2.9M cycles for a secp192r1 kP, matching MIRACL's 38 ms @ 80 MHz
// on the ARM7 in the paper's Table 4).
//
// The energy density is derived from the MAC instruction mix (MUL/ADD
// heavy), which is what makes prime arithmetic *hungrier per cycle* than
// the XOR/shift/load mix of binary fields — the paper's conclusion (2).
#pragma once

#include "costmodel/energy.h"
#include "ecp/ops.h"

namespace eccm0::ecp {

struct PrimeFieldCosts {
  std::uint64_t mul = 0;
  std::uint64_t sqr = 0;
  std::uint64_t inv = 0;
  std::uint64_t add = 0;
  double pj_per_cycle = 12.25;
  std::uint64_t call_overhead = 60;
  std::uint64_t per_bit = 40;  ///< scalar loop bookkeeping per bit
};

/// Model for an n-limb prime field on the M0+.
PrimeFieldCosts m0plus_prime_costs(std::size_t limbs);

/// Energy density of the Comba MAC instruction mix under the Table 3
/// energies (exposed for the section 3.1 bench).
double prime_mix_pj_per_cycle();

struct PrimeCostedRun {
  AffinePointP result;
  PrimeOpCounts ops;
  std::size_t bits = 0;
  std::uint64_t cycles = 0;

  double energy_uj(const PrimeFieldCosts& t) const {
    return static_cast<double>(cycles) * t.pj_per_cycle * 1e-6;
  }
  double time_ms() const {
    return static_cast<double>(cycles) / costmodel::kClockHz * 1e3;
  }
};

/// Execute and price k*G with width-w NAF on the given curve.
PrimeCostedRun cost_point_mul_p(const PrimeCurve& curve, const mpint::UInt& k,
                                unsigned w);

}  // namespace eccm0::ecp
