#include "ecp/curve.h"

namespace eccm0::ecp {
namespace {

PrimeCurve make(const char* name, const char* p, const char* b,
                const char* gx, const char* gy, const char* n) {
  PrimeCurve c;
  c.p = mpint::UInt::from_hex(p);
  c.b = mpint::UInt::from_hex(b);
  c.gx = mpint::UInt::from_hex(gx);
  c.gy = mpint::UInt::from_hex(gy);
  c.order = mpint::UInt::from_hex(n);
  c.name = name;
  c.mont = std::make_shared<mpint::Montgomery>(c.p);
  return c;
}

}  // namespace

const PrimeCurve& PrimeCurve::secp192r1() {
  static const PrimeCurve c = make(
      "secp192r1",
      "FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF",
      "64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1",
      "188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012",
      "07192B95FFC8DA78631011ED6B24CDD573F977A11E794811",
      "FFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831");
  return c;
}

const PrimeCurve& PrimeCurve::secp224r1() {
  static const PrimeCurve c = make(
      "secp224r1",
      "FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF000000000000000000000001",
      "B4050A850C04B3ABF54132565044B0B7D7BFD8BA270B39432355FFB4",
      "B70E0CBD6BB4BF7F321390B94A03C1D356C21122343280D6115C1D21",
      "BD376388B5F723FB4C22DFE6CD4375A05A07476444D5819985007E34",
      "FFFFFFFFFFFFFFFFFFFFFFFFFFFF16A2E0B8F03E13DD29455C5C2A3D");
  return c;
}

const PrimeCurve& PrimeCurve::secp256r1() {
  static const PrimeCurve c = make(
      "secp256r1",
      "FFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF",
      "5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B",
      "6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296",
      "4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5",
      "FFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551");
  return c;
}

}  // namespace eccm0::ecp
