#include "ecp/costing.h"

namespace eccm0::ecp {

double prime_mix_pj_per_cycle() {
  // One 32x32->64 MAC on the M0+: 4 MULS, 8 ADD/ADC, 3 shifts, 3 MOVs,
  // ~2.5 load cycles of operand traffic amortised per MAC.
  using costmodel::InstrClass;
  const auto& t = costmodel::kM0PlusEnergy;
  const double cycles = 4 + 8 + 3 + 3 + 2.5;
  const double pj = 4 * t.pj(InstrClass::kMul) + 8 * t.pj(InstrClass::kAdd) +
                    3 * t.pj(InstrClass::kLsl) + 3 * t.pj(InstrClass::kMov) +
                    2.5 * t.pj(InstrClass::kLdr);
  return pj / cycles;
}

PrimeFieldCosts m0plus_prime_costs(std::size_t limbs) {
  const auto n = static_cast<std::uint64_t>(limbs);
  PrimeFieldCosts c;
  // Comba multiply: n^2 MACs x ~28 cycles + linear operand/result traffic.
  c.mul = 30 * n * n + 40 * n + 80;
  // Comba squaring reuses cross products: ~2/3 of the MACs.
  c.sqr = 20 * n * n + 40 * n + 80;
  // Binary extended Euclid mod p: ~2*bits iterations of shift/sub passes.
  c.inv = 64 * n * n * 2;  // ~2*32n iterations x ~n words touched
  c.add = 5 * n + 16;
  c.pj_per_cycle = prime_mix_pj_per_cycle();
  return c;
}

PrimeCostedRun cost_point_mul_p(const PrimeCurve& curve, const mpint::UInt& k,
                                unsigned w) {
  PrimeCurveOps ops(curve);
  const PrimeFieldCosts t = m0plus_prime_costs(curve.limbs());

  PrimeCostedRun run;
  run.bits = curve.order.bit_length();
  run.result = mul_wnaf_p(ops, ops.generator(), k, w);
  run.ops = ops.counts();

  const auto& o = run.ops;
  const std::uint64_t calls = o.mul + o.sqr + o.inv + o.add;
  run.cycles = o.mul * t.mul + o.sqr * t.sqr + o.inv * t.inv + o.add * t.add +
               calls * t.call_overhead + run.bits * t.per_bit;
  return run;
}

}  // namespace eccm0::ecp
