#include "ecp/ops.h"

#include <vector>

#include "mpint/sint.h"

namespace eccm0::ecp {

using mpint::UInt;

AffinePointP PrimeCurveOps::import_point(const UInt& x, const UInt& y) const {
  return {c_.mont->to_mont(x), c_.mont->to_mont(y), false};
}

void PrimeCurveOps::export_point(const AffinePointP& p, UInt* x,
                                 UInt* y) const {
  *x = c_.mont->from_mont(p.x);
  *y = c_.mont->from_mont(p.y);
}

AffinePointP PrimeCurveOps::generator() const {
  return import_point(c_.gx, c_.gy);
}

bool PrimeCurveOps::on_curve(const AffinePointP& p) {
  if (p.inf) return true;
  // y^2 = x^3 - 3x + b
  const UInt y2 = fsqr(p.y);
  const UInt x3 = fmul(fsqr(p.x), p.x);
  const UInt three_x = fadd(fadd(p.x, p.x), p.x);
  const UInt rhs = fadd(fsub(x3, three_x), c_.mont->to_mont(c_.b));
  return y2 == rhs;
}

AffinePointP PrimeCurveOps::neg(const AffinePointP& p) const {
  if (p.inf) return p;
  return {p.x, c_.mont->sub(UInt{}, p.y), false};
}

bool PrimeCurveOps::eq(const AffinePointP& p, const AffinePointP& q) const {
  if (p.inf || q.inf) return p.inf == q.inf;
  return p.x == q.x && p.y == q.y;
}

AffinePointP PrimeCurveOps::dbl(const AffinePointP& p) {
  if (p.inf || p.y.is_zero()) return AffinePointP::infinity();
  const UInt one = c_.mont->one();
  // lambda = 3(x^2 - 1) / 2y   (a = -3)
  const UInt t = fsub(fsqr(p.x), one);
  const UInt num = fadd(fadd(t, t), t);
  const UInt lambda = fmul(num, finv(fadd(p.y, p.y)));
  const UInt x3 = fsub(fsub(fsqr(lambda), p.x), p.x);
  const UInt y3 = fsub(fmul(lambda, fsub(p.x, x3)), p.y);
  return {x3, y3, false};
}

AffinePointP PrimeCurveOps::add(const AffinePointP& p, const AffinePointP& q) {
  if (p.inf) return q;
  if (q.inf) return p;
  if (p.x == q.x) {
    if (p.y == q.y) return dbl(p);
    return AffinePointP::infinity();
  }
  const UInt lambda = fmul(fsub(q.y, p.y), finv(fsub(q.x, p.x)));
  const UInt x3 = fsub(fsub(fsqr(lambda), p.x), q.x);
  const UInt y3 = fsub(fmul(lambda, fsub(p.x, x3)), p.y);
  return {x3, y3, false};
}

JacobianPoint PrimeCurveOps::to_jacobian(const AffinePointP& p) const {
  if (p.inf) return JacobianPoint::infinity();
  return {p.x, p.y, c_.mont->one()};
}

AffinePointP PrimeCurveOps::to_affine(const JacobianPoint& p) {
  if (p.is_inf()) return AffinePointP::infinity();
  const UInt zi = finv(p.Z);
  const UInt zi2 = fsqr(zi);
  return {fmul(p.X, zi2), fmul(p.Y, fmul(zi2, zi)), false};
}

void PrimeCurveOps::jac_double(JacobianPoint& p) {
  if (p.is_inf()) return;
  if (p.Y.is_zero()) {
    p = JacobianPoint::infinity();
    return;
  }
  // dbl-2001-b with a = -3: 3M + 5S.
  const UInt delta = fsqr(p.Z);
  const UInt gamma = fsqr(p.Y);
  const UInt beta = fmul(p.X, gamma);
  const UInt t = fmul(fsub(p.X, delta), fadd(p.X, delta));
  const UInt alpha = fadd(fadd(t, t), t);
  const UInt beta4 = fadd(fadd(beta, beta), fadd(beta, beta));
  const UInt beta8 = fadd(beta4, beta4);
  const UInt x3 = fsub(fsqr(alpha), beta8);
  UInt z3 = fsqr(fadd(p.Y, p.Z));
  z3 = fsub(fsub(z3, gamma), delta);
  const UInt g2 = fsqr(gamma);
  const UInt g8 = fadd(fadd(fadd(g2, g2), fadd(g2, g2)),
                       fadd(fadd(g2, g2), fadd(g2, g2)));
  const UInt y3 = fsub(fmul(alpha, fsub(beta4, x3)), g8);
  p = {x3, y3, z3};
}

void PrimeCurveOps::jac_add_mixed(JacobianPoint& p, const AffinePointP& q) {
  if (q.inf) return;
  if (p.is_inf()) {
    p = to_jacobian(q);
    return;
  }
  // 8M + 3S mixed addition.
  const UInt z1z1 = fsqr(p.Z);
  const UInt u2 = fmul(q.x, z1z1);
  const UInt s2 = fmul(q.y, fmul(p.Z, z1z1));
  const UInt h = fsub(u2, p.X);
  const UInt r = fsub(s2, p.Y);
  if (h.is_zero()) {
    if (r.is_zero()) {
      jac_double(p);
    } else {
      p = JacobianPoint::infinity();
    }
    return;
  }
  const UInt hh = fsqr(h);
  const UInt hhh = fmul(h, hh);
  const UInt v = fmul(p.X, hh);
  UInt x3 = fsub(fsub(fsqr(r), hhh), fadd(v, v));
  const UInt y3 = fsub(fmul(r, fsub(v, x3)), fmul(p.Y, hhh));
  const UInt z3 = fmul(p.Z, h);
  p = {x3, y3, z3};
}

AffinePointP mul_naive_p(PrimeCurveOps& ops, const AffinePointP& p,
                         const UInt& k) {
  AffinePointP acc = AffinePointP::infinity();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = ops.dbl(acc);
    if (k.bit(i)) acc = ops.add(acc, p);
  }
  return acc;
}

AffinePointP mul_wnaf_p(PrimeCurveOps& ops, const AffinePointP& p,
                        const UInt& k, unsigned w) {
  std::vector<int> digits;
  mpint::SInt s{k, false};
  while (!s.is_zero()) {
    int u = 0;
    if (s.is_odd()) {
      u = static_cast<int>(s.mods_pow2(w));
      s = s - mpint::SInt{u};
    }
    digits.push_back(u);
    s = s.half();
  }
  std::vector<AffinePointP> odd{p};
  const AffinePointP p2 = ops.dbl(p);
  for (unsigned i = 1; i < (1u << (w - 2)); ++i) {
    odd.push_back(ops.add(odd.back(), p2));
  }
  JacobianPoint q = JacobianPoint::infinity();
  for (std::size_t i = digits.size(); i-- > 0;) {
    ops.jac_double(q);
    const int u = digits[i];
    if (u != 0) {
      const AffinePointP& pu = odd[static_cast<std::size_t>(std::abs(u)) / 2];
      ops.jac_add_mixed(q, u > 0 ? pu : ops.neg(pu));
    }
  }
  return ops.to_affine(q);
}

}  // namespace eccm0::ecp
