// Thumb-1 instruction encoder / decoder.
//
// Real 16-bit ARMv6-M encodings (BL is the classic two-halfword pair), so
// encode/decode round-trips are testable and programs are genuine Thumb
// images.
#pragma once

#include <cstdint>
#include <vector>

#include "armvm/isa.h"

namespace eccm0::armvm {

/// Encode one instruction to 1 (or, for BL, 2) halfwords.
/// Throws std::invalid_argument for unencodable operand combinations
/// (e.g. hi registers in lo-only forms, out-of-range immediates).
std::vector<std::uint16_t> encode(const Instr& ins);

/// Decoded instruction plus its size in halfwords.
struct Decoded {
  Instr ins;
  unsigned halfwords = 1;
};

/// Decode the instruction starting at code[idx] (idx in halfwords).
/// Throws std::invalid_argument on undefined/unsupported encodings.
Decoded decode(const std::vector<std::uint16_t>& code, std::size_t idx);

/// Human-readable disassembly of a single decoded instruction.
std::string disassemble(const Instr& ins);

}  // namespace eccm0::armvm
