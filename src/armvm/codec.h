// Thumb-1 instruction encoder / decoder.
//
// Real 16-bit ARMv6-M encodings (BL is the classic two-halfword pair), so
// encode/decode round-trips are testable and programs are genuine Thumb
// images.
#pragma once

#include <cstdint>
#include <vector>

#include "armvm/isa.h"

namespace eccm0::armvm {

/// Encode one instruction to 1 (or, for BL, 2) halfwords.
/// Throws std::invalid_argument for unencodable operand combinations
/// (e.g. hi registers in lo-only forms, out-of-range immediates).
std::vector<std::uint16_t> encode(const Instr& ins);

/// Decoded instruction plus its size in halfwords.
struct Decoded {
  Instr ins;
  unsigned halfwords = 1;
};

/// Decode the instruction starting at code[idx] (idx in halfwords).
/// Throws std::invalid_argument on undefined/unsupported encodings.
Decoded decode(const std::vector<std::uint16_t>& code, std::size_t idx);

/// One slot of a pre-decoded Thumb image. `valid` is false for halfword
/// positions that do not decode to an instruction — literal-pool data,
/// `.word` payloads, BL low halfwords, undefined encodings. Such slots
/// are harmless unless the PC lands on them, in which case the executor
/// re-runs `decode()` to raise the exact per-step decode error.
struct PredecodedSlot {
  Instr ins;
  std::uint8_t halfwords = 1;
  bool valid = false;
};

/// Decode every halfword position of `code` once, up front. This is the
/// construction-time pass behind the Cpu's pre-decoded execution engine:
/// executing from the returned cache retires the identical instruction
/// sequence as calling `decode()` per step (same Instr values, same
/// sizes, same errors on undecodable slots).
std::vector<PredecodedSlot> predecode(const std::vector<std::uint16_t>& code);

/// Human-readable disassembly of a single decoded instruction.
std::string disassemble(const Instr& ins);

}  // namespace eccm0::armvm
