// Basic-block superinstructions for the token-threaded execution engine.
//
// A `ThreadedImage` is the third pure-function-of-the-source artifact a
// `Program` freezes (next to the code image and the predecode cache): a
// basic-block discovery pass walks the predecoded slots once, splits the
// instruction stream at every symbol address and every static branch
// target, and fuses each remaining maximal straight-line run of simple
// (single-halfword, non-control-flow) instructions into one `SuperBlock`.
// The block carries everything the threaded dispatcher needs to retire
// the whole run in one host-level call: the decoded instructions with
// their per-instruction static cost pairs (for the fault replay path),
// and the precomputed accounting delta of the full block — total cycles
// plus a sparse per-class histogram delta — applied in a single step
// instead of per instruction.
//
// The fusion rules are conservative so fused execution is bit-identical
// to the per-step oracle (see tests/armvm/threaded_test.cpp):
//   - only valid, 1-halfword slots fuse (BL pairs and data words never do);
//   - no control flow (B/BCond/BL/BX/BLX/BKPT, POP with PC, hi-reg ops
//     writing PC) — a fused block has exactly one entry and one exit;
//   - no instruction that reads the raw PC register outside the
//     architectural pc+4 forms the block can precompute (CMP involving
//     PC is excluded; ADR/LDR-literal/ADD-hi/MOV-hi with rm=PC fuse,
//     because their pc+4 is a per-slot constant);
//   - runs shorter than `kMinFuseLength` stay per-instruction (the
//     dispatch overhead saved would not cover the block-entry checks).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "armvm/codec.h"
#include "armvm/isa.h"
#include "costmodel/energy.h"

namespace eccm0::armvm {

/// Minimum number of instructions a straight-line run must have to be
/// worth fusing into a SuperBlock.
inline constexpr std::uint32_t kMinFuseLength = 3;

/// Token byte of the terminator entry appended after the last real
/// instruction of every SuperBlock's code array. One past the last Op
/// value, so the computed-goto dispatcher can jump through a
/// (kNumOps + 1)-entry table straight to its block-exit label instead of
/// testing a loop counter after every instruction. Representable in Op's
/// std::uint8_t underlying type but never a real Op.
inline constexpr std::uint8_t kEndOfBlockToken =
    static_cast<std::uint8_t>(kNumOps);

/// One static cost pair an instruction contributes to the histogram
/// (LDM/STM/PUSH/POP contribute two: transfer + overhead).
struct InstrCost {
  costmodel::InstrClass cls{};
  std::uint8_t cycles = 0;
};

/// One fused instruction: the decoded form plus the per-slot constants
/// the handlers need (pc+4 for ADR/LDR-literal/hi-reg reads) and its
/// static cost pairs, kept so a fault interior to the block can replay
/// the accounting of the instructions that retired before it.
struct FusedInstr {
  Instr ins;
  std::uint32_t pc4 = 0;  ///< instruction address + 4
  std::uint8_t num_costs = 0;
  InstrCost costs[2];
};

/// A maximal fused straight-line run.
struct SuperBlock {
  std::uint32_t head_idx = 0;  ///< halfword index of the first instruction
  std::uint32_t count = 0;     ///< fused instructions (all 1 halfword)
  std::uint32_t end_pc = 0;    ///< byte PC after the last instruction
  std::uint64_t cycles = 0;    ///< total cycle cost of the whole block
  /// Sparse histogram delta of the whole block (class, cycles) — applied
  /// in one step on block completion.
  std::vector<std::pair<costmodel::InstrClass, std::uint64_t>> hist;
  /// `count` fused instructions followed by one terminator entry whose
  /// op byte is kEndOfBlockToken (so code.size() == count + 1).
  std::vector<FusedInstr> code;
};

/// The frozen fusion artifact: `block_at[idx]` is the index into
/// `blocks` when halfword `idx` is a block head, -1 otherwise (interior
/// slots are -1 too: entering a block anywhere but its head — e.g. after
/// a snapshot restore — executes per-instruction until the next head).
struct ThreadedImage {
  std::vector<std::int32_t> block_at;
  std::vector<SuperBlock> blocks;
  /// Static fusion census for the fusion report.
  std::uint64_t fused_slots = 0;  ///< instructions inside fused blocks
  std::uint64_t valid_slots = 0;  ///< all valid instruction slots
};

/// True when this (decoded, `halfwords`-sized) instruction may be part
/// of a fused block.
bool fusable(const Instr& ins, unsigned halfwords);

/// Static cost pairs of a fusable instruction, exactly mirroring the
/// account() calls Cpu::exec makes for it. Returns the pair count (1 or
/// 2). Precondition: fusable(ins, 1).
unsigned static_costs(const Instr& ins, InstrCost out[2]);

/// Run the discovery pass over a predecoded image. `symbols` contributes
/// extra split points: every label is a potential branch target (loop
/// heads are labels), so no block spans one.
ThreadedImage build_threaded_image(
    const std::vector<std::uint16_t>& code,
    const std::vector<PredecodedSlot>& cache,
    const std::map<std::string, std::uint32_t>& symbols);

/// True when halfword `idx` lies strictly inside a fused block (not at
/// its head). Test helper for the mid-block snapshot/fault coverage.
bool is_block_interior(const ThreadedImage& image, std::size_t idx);

}  // namespace eccm0::armvm
