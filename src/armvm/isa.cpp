#include "armvm/isa.h"

namespace eccm0::armvm {

const char* op_name(Op op) {
  switch (op) {
    case Op::kLslImm: case Op::kLslReg: return "lsls";
    case Op::kLsrImm: case Op::kLsrReg: return "lsrs";
    case Op::kAsrImm: case Op::kAsrReg: return "asrs";
    case Op::kRorReg: return "rors";
    case Op::kAddReg: case Op::kAddImm3: case Op::kAddImm8: return "adds";
    case Op::kSubReg: case Op::kSubImm3: case Op::kSubImm8: return "subs";
    case Op::kMovImm: return "movs";
    case Op::kCmpImm: case Op::kCmpReg: case Op::kCmpHi: return "cmp";
    case Op::kAnd: return "ands";
    case Op::kEor: return "eors";
    case Op::kAdc: return "adcs";
    case Op::kSbc: return "sbcs";
    case Op::kTst: return "tst";
    case Op::kRsb: return "rsbs";
    case Op::kCmn: return "cmn";
    case Op::kOrr: return "orrs";
    case Op::kMul: return "muls";
    case Op::kBic: return "bics";
    case Op::kMvn: return "mvns";
    case Op::kAddHi: return "add";
    case Op::kMovHi: return "mov";
    case Op::kBx: return "bx";
    case Op::kBlx: return "blx";
    case Op::kLdrLit: case Op::kLdrImm: case Op::kLdrReg: case Op::kLdrSp:
      return "ldr";
    case Op::kStrImm: case Op::kStrReg: case Op::kStrSp: return "str";
    case Op::kLdrbImm: case Op::kLdrbReg: return "ldrb";
    case Op::kStrbImm: case Op::kStrbReg: return "strb";
    case Op::kLdrhImm: case Op::kLdrhReg: return "ldrh";
    case Op::kLdrsbReg: return "ldrsb";
    case Op::kLdrshReg: return "ldrsh";
    case Op::kStrhImm: case Op::kStrhReg: return "strh";
    case Op::kAddSpImm7: case Op::kAddRdSp: return "add";
    case Op::kSubSpImm7: return "sub";
    case Op::kAdr: return "adr";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kLdm: return "ldmia";
    case Op::kStm: return "stmia";
    case Op::kBCond: return "b<cond>";
    case Op::kB: return "b";
    case Op::kBl: return "bl";
    case Op::kSxth: return "sxth";
    case Op::kSxtb: return "sxtb";
    case Op::kUxth: return "uxth";
    case Op::kUxtb: return "uxtb";
    case Op::kRev: return "rev";
    case Op::kRev16: return "rev16";
    case Op::kRevsh: return "revsh";
    case Op::kNop: return "nop";
    case Op::kBkpt: return "bkpt";
  }
  return "?";
}

const char* cond_name(Cond c) {
  static const char* names[] = {"eq", "ne", "cs", "cc", "mi", "pl", "vs",
                                "vc", "hi", "ls", "ge", "lt", "gt", "le"};
  return names[static_cast<unsigned>(c)];
}

std::string reg_name(unsigned r) {
  if (r == kSP) return "sp";
  if (r == kLR) return "lr";
  if (r == kPC) return "pc";
  return "r" + std::to_string(r);
}

}  // namespace eccm0::armvm
