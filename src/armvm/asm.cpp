#include "armvm/asm.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "armvm/codec.h"
#include "armvm/isa.h"

namespace eccm0::armvm {
namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize_operands(std::string_view s) {
  // Split on commas that are not inside brackets or braces.
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  for (auto& t : out) {
    const auto b = t.find_first_not_of(" \t");
    const auto e = t.find_last_not_of(" \t");
    t = b == std::string::npos ? "" : t.substr(b, e - b + 1);
  }
  std::erase(out, "");
  return out;
}

std::string lower(std::string_view s) {
  std::string r(s);
  std::transform(r.begin(), r.end(), r.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return r;
}

std::optional<unsigned> parse_reg(std::string_view t) {
  const std::string s = lower(t);
  if (s == "sp") return kSP;
  if (s == "lr") return kLR;
  if (s == "pc") return kPC;
  if (s.size() >= 2 && s[0] == 'r') {
    unsigned v = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) return std::nullopt;
      v = v * 10 + static_cast<unsigned>(s[i] - '0');
    }
    if (v < 16) return v;
  }
  return std::nullopt;
}

std::optional<std::int64_t> parse_int(std::string_view t) {
  std::string s(t);
  if (!s.empty() && s[0] == '#') s.erase(0, 1);
  if (s.empty()) return std::nullopt;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    s.erase(0, 1);
  }
  if (s.empty()) return std::nullopt;
  std::int64_t v = 0;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    for (std::size_t i = 2; i < s.size(); ++i) {
      const char c = static_cast<char>(std::tolower(s[i]));
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else {
        return std::nullopt;
      }
      v = v * 16 + d;
    }
  } else {
    for (char c : s) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      v = v * 10 + (c - '0');
    }
  }
  return neg ? -v : v;
}

std::uint16_t parse_reg_list(std::string_view t, bool allow_lr, bool allow_pc) {
  std::string s(t);
  if (s.size() < 2 || s.front() != '{' || s.back() != '}') {
    throw std::invalid_argument("expected register list {..}");
  }
  s = s.substr(1, s.size() - 2);
  std::uint16_t mask = 0;
  for (const std::string& part : tokenize_operands(s)) {
    const auto dash = part.find('-');
    if (dash != std::string::npos) {
      const auto lo = parse_reg(part.substr(0, dash));
      const auto hi = parse_reg(lower(part).substr(dash + 1));
      if (!lo || !hi || *lo > *hi || *hi > 7) {
        throw std::invalid_argument("bad register range: " + part);
      }
      for (unsigned r = *lo; r <= *hi; ++r) mask |= 1u << r;
    } else {
      const auto r = parse_reg(part);
      if (!r) throw std::invalid_argument("bad register: " + part);
      if (*r < 8) {
        mask |= 1u << *r;
      } else if (*r == kLR && allow_lr) {
        mask |= 0x100;
      } else if (*r == kPC && allow_pc) {
        mask |= 0x100;
      } else {
        throw std::invalid_argument("register not allowed in list: " + part);
      }
    }
  }
  return mask;
}

/// One source statement after pass 1: either a fully-formed instruction, a
/// label-dependent branch/adr, a literal-pool load, or raw data.
struct Item {
  enum class Kind { kInstr, kBranch, kLdrLit, kWordData } kind = Kind::kInstr;
  Instr ins;               // kInstr: complete; kBranch: op/cond set
  std::string label;       // kBranch target
  std::uint32_t literal = 0;  // kLdrLit constant / kWordData value
  std::uint32_t addr = 0;     // byte address of this item
  unsigned size_hw = 1;       // halfwords
  int line = 0;
};

const std::map<std::string, Cond>& cond_table() {
  static const std::map<std::string, Cond> t = {
      {"eq", Cond::kEq}, {"ne", Cond::kNe}, {"cs", Cond::kCs},
      {"hs", Cond::kCs}, {"cc", Cond::kCc}, {"lo", Cond::kCc},
      {"mi", Cond::kMi}, {"pl", Cond::kPl}, {"vs", Cond::kVs},
      {"vc", Cond::kVc}, {"hi", Cond::kHi}, {"ls", Cond::kLs},
      {"ge", Cond::kGe}, {"lt", Cond::kLt}, {"gt", Cond::kGt},
      {"le", Cond::kLe}};
  return t;
}

class Assembler {
 public:
  explicit Assembler(std::string_view source) : source_(source) {}

  ProgramRef run() {
    pass1();
    layout();
    return pass2();
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw std::invalid_argument("asm line " + std::to_string(line_) + ": " +
                                msg);
  }

  unsigned need_reg(const std::string& t) {
    const auto r = parse_reg(t);
    if (!r) fail("expected register, got '" + t + "'");
    return *r;
  }

  std::int32_t need_imm(const std::string& t) {
    const auto v = parse_int(t);
    if (!v) fail("expected immediate, got '" + t + "'");
    return static_cast<std::int32_t>(*v);
  }

  /// mem operand "[rn]", "[rn, #imm]" or "[rn, rm]".
  struct MemRef {
    unsigned rn;
    bool reg_offset;
    unsigned rm = 0;
    std::int32_t imm = 0;
  };
  MemRef parse_mem(const std::string& t) {
    if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
      fail("expected memory operand, got '" + t + "'");
    }
    const auto parts = tokenize_operands(t.substr(1, t.size() - 2));
    if (parts.empty() || parts.size() > 2) fail("bad memory operand");
    MemRef m{};
    m.rn = need_reg(parts[0]);
    if (parts.size() == 2) {
      if (const auto r = parse_reg(parts[1])) {
        m.reg_offset = true;
        m.rm = *r;
      } else {
        m.imm = need_imm(parts[1]);
      }
    }
    return m;
  }

  void emit(const Instr& ins, unsigned hw = 1) {
    Item it;
    it.ins = ins;
    it.size_hw = hw;
    it.line = line_;
    items_.push_back(it);
  }

  void emit_branch(Op op, Cond cond, const std::string& label) {
    Item it;
    it.kind = Item::Kind::kBranch;
    it.ins.op = op;
    it.ins.cond = cond;
    it.label = label;
    it.size_hw = op == Op::kBl ? 2 : 1;
    it.line = line_;
    items_.push_back(it);
  }

  void parse_line(std::string_view raw) {
    std::string s(raw);
    if (const auto sc = s.find_first_of(";@"); sc != std::string::npos) {
      // '@' and ';' start comments; "//" too.
      s = s.substr(0, sc);
    }
    if (const auto sl = s.find("//"); sl != std::string::npos) {
      s = s.substr(0, sl);
    }
    // Labels (possibly several on one line).
    for (;;) {
      const auto b = s.find_first_not_of(" \t");
      if (b == std::string::npos) return;
      const auto colon = s.find(':');
      const auto word_end = s.find_first_of(" \t", b);
      if (colon != std::string::npos &&
          (word_end == std::string::npos || colon < word_end)) {
        const std::string name = s.substr(b, colon - b);
        if (name.empty()) fail("empty label");
        if (labels_.count(name)) fail("duplicate label " + name);
        labels_[name] = items_.size();  // resolved to address in layout()
        label_at_item_[items_.size()].push_back(name);
        s = s.substr(colon + 1);
        continue;
      }
      break;
    }
    const auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return;
    const auto e = s.find_first_of(" \t", b);
    const std::string mnem = lower(s.substr(b, e == std::string::npos
                                                   ? std::string::npos
                                                   : e - b));
    const std::string rest = e == std::string::npos ? "" : s.substr(e);
    const auto ops = tokenize_operands(rest);
    handle(mnem, ops);
  }

  void handle(const std::string& mnem, const std::vector<std::string>& ops) {
    Instr i;
    auto req = [&](std::size_t n) {
      if (ops.size() != n) {
        fail(mnem + ": expected " + std::to_string(n) + " operands");
      }
    };
    // Directives.
    if (mnem == ".word") {
      req(1);
      Item it;
      it.kind = Item::Kind::kWordData;
      it.literal = static_cast<std::uint32_t>(need_imm(ops[0]));
      it.size_hw = 2;
      it.line = line_;
      items_.push_back(it);
      return;
    }
    if (mnem == ".align") return;  // items are halfword-aligned already

    if (mnem == "nop") { emit({}); return; }
    if (mnem == "bkpt") {
      i.op = Op::kBkpt;
      i.imm = ops.empty() ? 0 : need_imm(ops[0]);
      emit(i);
      return;
    }
    if (mnem == "bx" || mnem == "blx") {
      req(1);
      i.op = mnem == "bx" ? Op::kBx : Op::kBlx;
      i.rm = static_cast<std::uint8_t>(need_reg(ops[0]));
      emit(i);
      return;
    }
    if (mnem == "bl") {
      req(1);
      emit_branch(Op::kBl, Cond::kEq, ops[0]);
      return;
    }
    if (mnem == "b") {
      req(1);
      emit_branch(Op::kB, Cond::kEq, ops[0]);
      return;
    }
    if (mnem.size() == 3 && mnem[0] == 'b' && cond_table().count(mnem.substr(1))) {
      req(1);
      emit_branch(Op::kBCond, cond_table().at(mnem.substr(1)), ops[0]);
      return;
    }
    if (mnem == "push" || mnem == "pop") {
      req(1);
      i.op = mnem == "push" ? Op::kPush : Op::kPop;
      i.reg_list = parse_reg_list(ops[0], mnem == "push", mnem == "pop");
      emit(i);
      return;
    }
    if (mnem == "ldmia" || mnem == "stmia" || mnem == "ldm" || mnem == "stm") {
      req(2);
      std::string base = ops[0];
      if (!base.empty() && base.back() == '!') base.pop_back();
      i.op = mnem[0] == 'l' ? Op::kLdm : Op::kStm;
      i.rn = static_cast<std::uint8_t>(need_reg(base));
      i.reg_list = parse_reg_list(ops[1], false, false);
      emit(i);
      return;
    }
    if (mnem == "ldrsb" || mnem == "ldrsh") {
      req(2);
      i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
      const MemRef m2 = parse_mem(ops[1]);
      if (!m2.reg_offset) fail(mnem + " supports register offsets only");
      i.op = mnem == "ldrsb" ? Op::kLdrsbReg : Op::kLdrshReg;
      i.rn = static_cast<std::uint8_t>(m2.rn);
      i.rm = static_cast<std::uint8_t>(m2.rm);
      emit(i);
      return;
    }
    if (mnem == "ldr" || mnem == "str" || mnem == "ldrb" || mnem == "strb" ||
        mnem == "ldrh" || mnem == "strh") {
      req(2);
      i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
      if (mnem == "ldr" && !ops[1].empty() && ops[1][0] == '=') {
        // Literal-pool load.
        const auto v = parse_int(ops[1].substr(1));
        if (!v) fail("bad literal " + ops[1]);
        Item it;
        it.kind = Item::Kind::kLdrLit;
        it.ins = i;
        it.literal = static_cast<std::uint32_t>(*v);
        it.line = line_;
        items_.push_back(it);
        return;
      }
      const MemRef m = parse_mem(ops[1]);
      const bool load = mnem[0] == 'l';
      if (mnem == "ldr" || mnem == "str") {
        if (m.reg_offset) {
          i.op = load ? Op::kLdrReg : Op::kStrReg;
          i.rn = static_cast<std::uint8_t>(m.rn);
          i.rm = static_cast<std::uint8_t>(m.rm);
        } else if (m.rn == kSP) {
          i.op = load ? Op::kLdrSp : Op::kStrSp;
          i.imm = m.imm;
        } else if (m.rn == kPC) {
          if (!load) fail("str to pc-relative");
          i.op = Op::kLdrLit;
          i.imm = m.imm;
        } else {
          i.op = load ? Op::kLdrImm : Op::kStrImm;
          i.rn = static_cast<std::uint8_t>(m.rn);
          i.imm = m.imm;
        }
      } else if (mnem == "ldrb" || mnem == "strb") {
        if (m.reg_offset) {
          i.op = load ? Op::kLdrbReg : Op::kStrbReg;
          i.rn = static_cast<std::uint8_t>(m.rn);
          i.rm = static_cast<std::uint8_t>(m.rm);
        } else {
          i.op = load ? Op::kLdrbImm : Op::kStrbImm;
          i.rn = static_cast<std::uint8_t>(m.rn);
          i.imm = m.imm;
        }
      } else {
        if (m.reg_offset) {
          i.op = load ? Op::kLdrhReg : Op::kStrhReg;
          i.rn = static_cast<std::uint8_t>(m.rn);
          i.rm = static_cast<std::uint8_t>(m.rm);
        } else {
          i.op = load ? Op::kLdrhImm : Op::kStrhImm;
          i.rn = static_cast<std::uint8_t>(m.rn);
          i.imm = m.imm;
        }
      }
      emit(i);
      return;
    }
    if (mnem == "adr") {
      req(2);
      // adr rd, label — resolved like a branch.
      Item it;
      it.kind = Item::Kind::kBranch;
      it.ins.op = Op::kAdr;
      it.ins.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
      it.label = ops[1];
      it.line = line_;
      items_.push_back(it);
      return;
    }

    // Data-processing mnemonics.
    auto is_imm = [](const std::string& t) {
      return !t.empty() && (t[0] == '#' || t[0] == '-' ||
                            std::isdigit(static_cast<unsigned char>(t[0])));
    };
    if (mnem == "movs" || mnem == "mov") {
      req(2);
      i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
      if (is_imm(ops[1])) {
        i.op = Op::kMovImm;
        i.imm = need_imm(ops[1]);
      } else {
        const unsigned rm = need_reg(ops[1]);
        if (mnem == "movs" && i.rd < 8 && rm < 8) {
          i.op = Op::kLslImm;  // MOVS Rd, Rm == LSLS Rd, Rm, #0
          i.rm = static_cast<std::uint8_t>(rm);
          i.imm = 0;
        } else {
          i.op = Op::kMovHi;
          i.rm = static_cast<std::uint8_t>(rm);
        }
      }
      emit(i);
      return;
    }
    if (mnem == "adds" || mnem == "subs" || mnem == "add" || mnem == "sub") {
      const bool add = mnem[0] == 'a';
      if (ops.size() == 3) {
        i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
        if (lower(ops[1]) == "sp") {
          if (!add) fail("sub rd, sp, # unsupported");
          i.op = Op::kAddRdSp;
          i.imm = need_imm(ops[2]);
        } else {
          i.rn = static_cast<std::uint8_t>(need_reg(ops[1]));
          if (is_imm(ops[2])) {
            i.op = add ? Op::kAddImm3 : Op::kSubImm3;
            i.imm = need_imm(ops[2]);
          } else {
            i.op = add ? Op::kAddReg : Op::kSubReg;
            i.rm = static_cast<std::uint8_t>(need_reg(ops[2]));
          }
        }
        emit(i);
        return;
      }
      req(2);
      if (lower(ops[0]) == "sp") {
        i.op = add ? Op::kAddSpImm7 : Op::kSubSpImm7;
        i.imm = need_imm(ops[1]);
        emit(i);
        return;
      }
      i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
      if (is_imm(ops[1])) {
        i.op = add ? Op::kAddImm8 : Op::kSubImm8;
        i.imm = need_imm(ops[1]);
      } else if (mnem == "add") {
        i.op = Op::kAddHi;
        i.rm = static_cast<std::uint8_t>(need_reg(ops[1]));
      } else {
        // adds rd, rm -> adds rd, rd, rm
        i.op = add ? Op::kAddReg : Op::kSubReg;
        i.rn = i.rd;
        i.rm = static_cast<std::uint8_t>(need_reg(ops[1]));
      }
      emit(i);
      return;
    }
    if (mnem == "cmp" || mnem == "cmn") {
      req(2);
      i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
      if (is_imm(ops[1])) {
        if (mnem == "cmn") fail("cmn immediate unsupported");
        i.op = Op::kCmpImm;
        i.imm = need_imm(ops[1]);
      } else {
        const unsigned rm = need_reg(ops[1]);
        i.rm = static_cast<std::uint8_t>(rm);
        if (mnem == "cmn") {
          i.op = Op::kCmn;
        } else {
          i.op = (i.rd < 8 && rm < 8) ? Op::kCmpReg : Op::kCmpHi;
        }
      }
      emit(i);
      return;
    }
    if (mnem == "lsls" || mnem == "lsrs" || mnem == "asrs" || mnem == "rors") {
      i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
      if (ops.size() == 3) {
        if (mnem == "rors") fail("rors immediate does not exist in Thumb-1");
        i.rm = static_cast<std::uint8_t>(need_reg(ops[1]));
        i.imm = need_imm(ops[2]);
        i.op = mnem == "lsls" ? Op::kLslImm
               : mnem == "lsrs" ? Op::kLsrImm : Op::kAsrImm;
      } else {
        req(2);
        i.rm = static_cast<std::uint8_t>(need_reg(ops[1]));
        i.op = mnem == "lsls"   ? Op::kLslReg
               : mnem == "lsrs" ? Op::kLsrReg
               : mnem == "asrs" ? Op::kAsrReg
                                : Op::kRorReg;
      }
      emit(i);
      return;
    }
    static const std::map<std::string, Op> two_reg = {
        {"ands", Op::kAnd},   {"eors", Op::kEor},  {"adcs", Op::kAdc},
        {"sbcs", Op::kSbc},   {"tst", Op::kTst},   {"orrs", Op::kOrr},
        {"muls", Op::kMul},   {"bics", Op::kBic},  {"mvns", Op::kMvn},
        {"rsbs", Op::kRsb},   {"negs", Op::kRsb},  {"sxth", Op::kSxth},
        {"sxtb", Op::kSxtb},  {"uxth", Op::kUxth}, {"uxtb", Op::kUxtb},
        {"rev", Op::kRev},    {"rev16", Op::kRev16},
        {"revsh", Op::kRevsh}};
    if (const auto it = two_reg.find(mnem); it != two_reg.end()) {
      if (mnem == "muls" && ops.size() == 3) {
        // muls rd, rm, rd form
        i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
        i.rm = static_cast<std::uint8_t>(need_reg(ops[1]));
        if (need_reg(ops[2]) != i.rd) fail("muls rd, rm, rd required");
      } else if ((mnem == "rsbs" || mnem == "negs") && ops.size() == 3) {
        i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
        i.rm = static_cast<std::uint8_t>(need_reg(ops[1]));
        if (need_imm(ops[2]) != 0) fail("rsbs only supports #0");
      } else {
        req(2);
        i.rd = static_cast<std::uint8_t>(need_reg(ops[0]));
        i.rm = static_cast<std::uint8_t>(need_reg(ops[1]));
      }
      i.op = it->second;
      emit(i);
      return;
    }
    fail("unknown mnemonic '" + mnem + "'");
  }

  void pass1() {
    std::istringstream in{std::string(source_)};
    std::string line;
    line_ = 0;
    while (std::getline(in, line)) {
      ++line_;
      parse_line(line);
    }
  }

  void layout() {
    // Assign addresses; then place the literal pool (word-aligned) at the
    // end, deduplicating constants.
    std::uint32_t addr = 0;
    for (Item& it : items_) {
      it.addr = addr;
      addr += 2 * it.size_hw;
    }
    pool_base_ = (addr + 3u) & ~3u;
    // Resolve label item-indices to addresses.
    for (auto& [name, idx] : labels_) {
      label_addr_[name] =
          idx < items_.size() ? items_[idx].addr : pool_base_;
    }
    // Collect literals.
    for (const Item& it : items_) {
      if (it.kind == Item::Kind::kLdrLit &&
          std::find(pool_.begin(), pool_.end(), it.literal) == pool_.end()) {
        pool_.push_back(it.literal);
      }
    }
  }

  ProgramRef pass2() {
    std::vector<std::uint16_t> code;
    for (const Item& it : items_) {
      line_ = it.line;
      while (code.size() < it.addr / 2) code.push_back(0xBF00);  // pad
      switch (it.kind) {
        case Item::Kind::kInstr: {
          const auto hw = encode(it.ins);
          code.insert(code.end(), hw.begin(), hw.end());
          break;
        }
        case Item::Kind::kWordData: {
          if (it.addr % 4 != 0) fail(".word not word-aligned");
          code.push_back(static_cast<std::uint16_t>(it.literal));
          code.push_back(static_cast<std::uint16_t>(it.literal >> 16));
          break;
        }
        case Item::Kind::kBranch: {
          const auto target = label_addr_.find(it.label);
          if (target == label_addr_.end()) {
            fail("undefined label '" + it.label + "'");
          }
          Instr ins = it.ins;
          if (ins.op == Op::kAdr) {
            const std::uint32_t base = (it.addr + 4) & ~3u;
            const std::int64_t off =
                static_cast<std::int64_t>(target->second) - base;
            if (off < 0 || off % 4 != 0) fail("adr target not reachable");
            ins.imm = static_cast<std::int32_t>(off);
          } else {
            ins.imm = static_cast<std::int32_t>(target->second) -
                      static_cast<std::int32_t>(it.addr + 4);
          }
          const auto hw = encode(ins);
          code.insert(code.end(), hw.begin(), hw.end());
          break;
        }
        case Item::Kind::kLdrLit: {
          const std::size_t pi = static_cast<std::size_t>(
              std::find(pool_.begin(), pool_.end(), it.literal) -
              pool_.begin());
          const std::uint32_t lit_addr =
              pool_base_ + static_cast<std::uint32_t>(4 * pi);
          const std::uint32_t base = (it.addr + 4) & ~3u;
          if (lit_addr < base || lit_addr - base > 1020) {
            fail("literal pool out of range");
          }
          Instr ins = it.ins;
          ins.op = Op::kLdrLit;
          ins.imm = static_cast<std::int32_t>(lit_addr - base);
          const auto hw = encode(ins);
          code.insert(code.end(), hw.begin(), hw.end());
          break;
        }
      }
    }
    if (!pool_.empty()) {
      while (code.size() * 2 < pool_base_) code.push_back(0xBF00);
    }
    for (std::uint32_t v : pool_) {
      code.push_back(static_cast<std::uint16_t>(v));
      code.push_back(static_cast<std::uint16_t>(v >> 16));
    }
    return make_program(std::move(code), label_addr_);
  }

  std::string_view source_;
  int line_ = 0;
  std::vector<Item> items_;
  std::map<std::string, std::size_t> labels_;  // name -> item index
  std::map<std::size_t, std::vector<std::string>> label_at_item_;
  std::map<std::string, std::uint32_t> label_addr_;
  std::vector<std::uint32_t> pool_;
  std::uint32_t pool_base_ = 0;
};

}  // namespace

ProgramRef assemble(std::string_view source) { return Assembler(source).run(); }

}  // namespace eccm0::armvm
