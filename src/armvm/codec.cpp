#include "armvm/codec.h"

#include <stdexcept>

#include "armvm/fault.h"

namespace eccm0::armvm {
namespace {

void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}

// Decode errors are architectural (the core fetched something that is
// not an instruction), so they surface as typed DecodeFaults carrying
// the byte address of the offending halfword. Encoder errors above stay
// plain std::invalid_argument: they are API misuse, not machine faults.
[[noreturn]] void decode_fail(std::size_t idx, const char* msg) {
  throw DecodeFault(msg, static_cast<std::uint32_t>(2 * idx));
}

void lo_reg(unsigned r) { require(r < 8, "encode: hi register in lo form"); }

std::uint16_t dp(unsigned op4, unsigned rm, unsigned rd) {
  return static_cast<std::uint16_t>(0x4000u | (op4 << 6) | (rm << 3) | rd);
}

}  // namespace

std::vector<std::uint16_t> encode(const Instr& i) {
  auto one = [](std::uint16_t h) { return std::vector<std::uint16_t>{h}; };
  switch (i.op) {
    case Op::kLslImm:
    case Op::kLsrImm:
    case Op::kAsrImm: {
      lo_reg(i.rd);
      lo_reg(i.rm);
      require(i.imm >= 0 && i.imm < 32, "shift imm5 out of range");
      const unsigned op2 = i.op == Op::kLslImm ? 0 : i.op == Op::kLsrImm ? 1 : 2;
      return one(static_cast<std::uint16_t>(
          (op2 << 11) | (static_cast<unsigned>(i.imm) << 6) | (i.rm << 3) |
          i.rd));
    }
    case Op::kAddReg:
    case Op::kSubReg: {
      lo_reg(i.rd);
      lo_reg(i.rn);
      lo_reg(i.rm);
      const unsigned base = i.op == Op::kAddReg ? 0x1800u : 0x1A00u;
      return one(static_cast<std::uint16_t>(base | (i.rm << 6) | (i.rn << 3) |
                                            i.rd));
    }
    case Op::kAddImm3:
    case Op::kSubImm3: {
      lo_reg(i.rd);
      lo_reg(i.rn);
      require(i.imm >= 0 && i.imm < 8, "imm3 out of range");
      const unsigned base = i.op == Op::kAddImm3 ? 0x1C00u : 0x1E00u;
      return one(static_cast<std::uint16_t>(
          base | (static_cast<unsigned>(i.imm) << 6) | (i.rn << 3) | i.rd));
    }
    case Op::kMovImm:
    case Op::kCmpImm:
    case Op::kAddImm8:
    case Op::kSubImm8: {
      lo_reg(i.rd);
      require(i.imm >= 0 && i.imm < 256, "imm8 out of range");
      const unsigned op2 = i.op == Op::kMovImm   ? 0
                           : i.op == Op::kCmpImm ? 1
                           : i.op == Op::kAddImm8 ? 2
                                                  : 3;
      return one(static_cast<std::uint16_t>(
          0x2000u | (op2 << 11) | (i.rd << 8) | static_cast<unsigned>(i.imm)));
    }
    case Op::kAnd: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x0, i.rm, i.rd));
    case Op::kEor: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x1, i.rm, i.rd));
    case Op::kLslReg: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x2, i.rm, i.rd));
    case Op::kLsrReg: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x3, i.rm, i.rd));
    case Op::kAsrReg: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x4, i.rm, i.rd));
    case Op::kAdc: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x5, i.rm, i.rd));
    case Op::kSbc: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x6, i.rm, i.rd));
    case Op::kRorReg: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x7, i.rm, i.rd));
    case Op::kTst: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x8, i.rm, i.rd));
    case Op::kRsb: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0x9, i.rm, i.rd));
    case Op::kCmpReg: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0xA, i.rm, i.rd));
    case Op::kCmn: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0xB, i.rm, i.rd));
    case Op::kOrr: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0xC, i.rm, i.rd));
    case Op::kMul: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0xD, i.rm, i.rd));
    case Op::kBic: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0xE, i.rm, i.rd));
    case Op::kMvn: lo_reg(i.rd); lo_reg(i.rm); return one(dp(0xF, i.rm, i.rd));
    case Op::kAddHi:
    case Op::kCmpHi:
    case Op::kMovHi: {
      require(i.rd < 16 && i.rm < 16, "register out of range");
      const unsigned op2 = i.op == Op::kAddHi ? 0 : i.op == Op::kCmpHi ? 1 : 2;
      const unsigned dn = (i.rd >> 3) & 1;
      return one(static_cast<std::uint16_t>(0x4400u | (op2 << 8) | (dn << 7) |
                                            (i.rm << 3) | (i.rd & 7)));
    }
    case Op::kBx:
    case Op::kBlx: {
      require(i.rm < 16, "register out of range");
      const unsigned l = i.op == Op::kBlx ? 1 : 0;
      return one(static_cast<std::uint16_t>(0x4700u | (l << 7) | (i.rm << 3)));
    }
    case Op::kLdrLit: {
      lo_reg(i.rd);
      require(i.imm >= 0 && i.imm < 1024 && i.imm % 4 == 0,
              "literal offset out of range");
      return one(static_cast<std::uint16_t>(
          0x4800u | (i.rd << 8) | (static_cast<unsigned>(i.imm) >> 2)));
    }
    case Op::kStrReg: case Op::kStrhReg: case Op::kStrbReg:
    case Op::kLdrReg: case Op::kLdrhReg: case Op::kLdrbReg:
    case Op::kLdrsbReg: case Op::kLdrshReg: {
      lo_reg(i.rd);
      lo_reg(i.rn);
      lo_reg(i.rm);
      unsigned opb = 0;
      switch (i.op) {
        case Op::kStrReg: opb = 0; break;
        case Op::kStrhReg: opb = 1; break;
        case Op::kStrbReg: opb = 2; break;
        case Op::kLdrsbReg: opb = 3; break;
        case Op::kLdrReg: opb = 4; break;
        case Op::kLdrhReg: opb = 5; break;
        case Op::kLdrbReg: opb = 6; break;
        default: opb = 7; break;  // kLdrshReg
      }
      return one(static_cast<std::uint16_t>(0x5000u | (opb << 9) |
                                            (i.rm << 6) | (i.rn << 3) | i.rd));
    }
    case Op::kStrImm:
    case Op::kLdrImm: {
      lo_reg(i.rd);
      lo_reg(i.rn);
      require(i.imm >= 0 && i.imm < 128 && i.imm % 4 == 0,
              "word offset out of range");
      const unsigned l = i.op == Op::kLdrImm ? 1 : 0;
      return one(static_cast<std::uint16_t>(
          0x6000u | (l << 11) | ((static_cast<unsigned>(i.imm) >> 2) << 6) |
          (i.rn << 3) | i.rd));
    }
    case Op::kStrbImm:
    case Op::kLdrbImm: {
      lo_reg(i.rd);
      lo_reg(i.rn);
      require(i.imm >= 0 && i.imm < 32, "byte offset out of range");
      const unsigned l = i.op == Op::kLdrbImm ? 1 : 0;
      return one(static_cast<std::uint16_t>(
          0x7000u | (l << 11) | (static_cast<unsigned>(i.imm) << 6) |
          (i.rn << 3) | i.rd));
    }
    case Op::kStrhImm:
    case Op::kLdrhImm: {
      lo_reg(i.rd);
      lo_reg(i.rn);
      require(i.imm >= 0 && i.imm < 64 && i.imm % 2 == 0,
              "half offset out of range");
      const unsigned l = i.op == Op::kLdrhImm ? 1 : 0;
      return one(static_cast<std::uint16_t>(
          0x8000u | (l << 11) | ((static_cast<unsigned>(i.imm) >> 1) << 6) |
          (i.rn << 3) | i.rd));
    }
    case Op::kStrSp:
    case Op::kLdrSp: {
      lo_reg(i.rd);
      require(i.imm >= 0 && i.imm < 1024 && i.imm % 4 == 0,
              "sp offset out of range");
      const unsigned l = i.op == Op::kLdrSp ? 1 : 0;
      return one(static_cast<std::uint16_t>(
          0x9000u | (l << 11) | (i.rd << 8) |
          (static_cast<unsigned>(i.imm) >> 2)));
    }
    case Op::kAdr:
    case Op::kAddRdSp: {
      lo_reg(i.rd);
      require(i.imm >= 0 && i.imm < 1024 && i.imm % 4 == 0,
              "adr offset out of range");
      const unsigned sp = i.op == Op::kAddRdSp ? 1 : 0;
      return one(static_cast<std::uint16_t>(
          0xA000u | (sp << 11) | (i.rd << 8) |
          (static_cast<unsigned>(i.imm) >> 2)));
    }
    case Op::kAddSpImm7:
    case Op::kSubSpImm7: {
      require(i.imm >= 0 && i.imm < 512 && i.imm % 4 == 0,
              "sp adjust out of range");
      const unsigned s = i.op == Op::kSubSpImm7 ? 1 : 0;
      return one(static_cast<std::uint16_t>(
          0xB000u | (s << 7) | (static_cast<unsigned>(i.imm) >> 2)));
    }
    case Op::kPush: {
      require((i.reg_list & ~0x1FFu) == 0, "push list out of range");
      return one(static_cast<std::uint16_t>(0xB400u | (i.reg_list & 0x1FF)));
    }
    case Op::kPop: {
      require((i.reg_list & ~0x1FFu) == 0, "pop list out of range");
      return one(static_cast<std::uint16_t>(0xBC00u | (i.reg_list & 0x1FF)));
    }
    case Op::kSxth:
    case Op::kSxtb:
    case Op::kUxth:
    case Op::kUxtb: {
      lo_reg(i.rd);
      lo_reg(i.rm);
      const unsigned op2 = i.op == Op::kSxth ? 0
                           : i.op == Op::kSxtb ? 1
                           : i.op == Op::kUxth ? 2
                                               : 3;
      return one(static_cast<std::uint16_t>(0xB200u | (op2 << 6) |
                                            (i.rm << 3) | i.rd));
    }
    case Op::kRev:
    case Op::kRev16:
    case Op::kRevsh: {
      lo_reg(i.rd);
      lo_reg(i.rm);
      const unsigned op2 = i.op == Op::kRev ? 0 : i.op == Op::kRev16 ? 1 : 3;
      return one(static_cast<std::uint16_t>(0xBA00u | (op2 << 6) |
                                            (i.rm << 3) | i.rd));
    }
    case Op::kBkpt:
      require(i.imm >= 0 && i.imm < 256, "bkpt imm out of range");
      return one(static_cast<std::uint16_t>(0xBE00u |
                                            static_cast<unsigned>(i.imm)));
    case Op::kNop:
      return one(0xBF00u);
    case Op::kStm:
    case Op::kLdm: {
      lo_reg(i.rn);
      require((i.reg_list & ~0xFFu) == 0 && i.reg_list != 0,
              "ldm/stm list invalid");
      const unsigned l = i.op == Op::kLdm ? 1 : 0;
      return one(static_cast<std::uint16_t>(0xC000u | (l << 11) |
                                            (i.rn << 8) | i.reg_list));
    }
    case Op::kBCond: {
      require(i.imm >= -256 && i.imm < 256 && i.imm % 2 == 0,
              "conditional branch offset out of range");
      const unsigned off = static_cast<unsigned>(i.imm >> 1) & 0xFF;
      return one(static_cast<std::uint16_t>(
          0xD000u | (static_cast<unsigned>(i.cond) << 8) | off));
    }
    case Op::kB: {
      require(i.imm >= -2048 && i.imm < 2048 && i.imm % 2 == 0,
              "branch offset out of range");
      const unsigned off = static_cast<unsigned>(i.imm >> 1) & 0x7FF;
      return one(static_cast<std::uint16_t>(0xE000u | off));
    }
    case Op::kBl: {
      require(i.imm >= -(1 << 22) && i.imm < (1 << 22) && i.imm % 2 == 0,
              "bl offset out of range");
      const std::uint32_t off = static_cast<std::uint32_t>(i.imm);
      const std::uint16_t hi =
          static_cast<std::uint16_t>(0xF000u | ((off >> 12) & 0x7FF));
      const std::uint16_t lo =
          static_cast<std::uint16_t>(0xF800u | ((off >> 1) & 0x7FF));
      return {hi, lo};
    }
  }
  throw std::invalid_argument("encode: unsupported op");
}

Decoded decode(const std::vector<std::uint16_t>& code, std::size_t idx) {
  const std::uint16_t h = code.at(idx);
  Instr i;
  auto ret = [&](Op op) {
    i.op = op;
    return Decoded{i, 1};
  };

  switch (h >> 12) {
    case 0x0:
    case 0x1: {
      const unsigned top5 = h >> 11;
      i.rd = h & 7;
      i.rm = (h >> 3) & 7;
      if (top5 < 3) {
        i.imm = (h >> 6) & 31;
        return ret(top5 == 0 ? Op::kLslImm
                             : top5 == 1 ? Op::kLsrImm : Op::kAsrImm);
      }
      // 00011 xx
      i.rn = (h >> 3) & 7;
      i.rm = (h >> 6) & 7;
      const unsigned oi = (h >> 9) & 3;
      if (oi < 2) return ret(oi == 0 ? Op::kAddReg : Op::kSubReg);
      i.imm = static_cast<std::int32_t>((h >> 6) & 7);
      return ret(oi == 2 ? Op::kAddImm3 : Op::kSubImm3);
    }
    case 0x2:
    case 0x3: {
      i.rd = (h >> 8) & 7;
      i.imm = h & 0xFF;
      const unsigned op2 = (h >> 11) & 3;
      static constexpr Op ops[] = {Op::kMovImm, Op::kCmpImm, Op::kAddImm8,
                                   Op::kSubImm8};
      return ret(ops[op2]);
    }
    case 0x4: {
      if ((h & 0xFC00u) == 0x4000u) {
        i.rd = h & 7;
        i.rm = (h >> 3) & 7;
        static constexpr Op ops[] = {Op::kAnd, Op::kEor, Op::kLslReg,
                                     Op::kLsrReg, Op::kAsrReg, Op::kAdc,
                                     Op::kSbc, Op::kRorReg, Op::kTst,
                                     Op::kRsb, Op::kCmpReg, Op::kCmn,
                                     Op::kOrr, Op::kMul, Op::kBic, Op::kMvn};
        return ret(ops[(h >> 6) & 0xF]);
      }
      if ((h & 0xFC00u) == 0x4400u) {
        const unsigned op2 = (h >> 8) & 3;
        if (op2 == 3) {
          if ((h & 7) != 0) {
            decode_fail(idx, "decode: BX/BLX SBZ bits set");
          }
          i.rm = (h >> 3) & 0xF;
          return ret((h & 0x80) ? Op::kBlx : Op::kBx);
        }
        i.rd = static_cast<std::uint8_t>(((h >> 7) & 1) << 3 | (h & 7));
        i.rm = (h >> 3) & 0xF;
        static constexpr Op ops[] = {Op::kAddHi, Op::kCmpHi, Op::kMovHi};
        return ret(ops[op2]);
      }
      // 01001: LDR literal
      i.rd = (h >> 8) & 7;
      i.imm = (h & 0xFF) << 2;
      return ret(Op::kLdrLit);
    }
    case 0x5: {
      i.rd = h & 7;
      i.rn = (h >> 3) & 7;
      i.rm = (h >> 6) & 7;
      static constexpr Op ops[] = {Op::kStrReg,   Op::kStrhReg,
                                   Op::kStrbReg,  Op::kLdrsbReg,
                                   Op::kLdrReg,   Op::kLdrhReg,
                                   Op::kLdrbReg,  Op::kLdrshReg};
      return ret(ops[(h >> 9) & 7]);
    }
    case 0x6:
    case 0x7: {
      i.rd = h & 7;
      i.rn = (h >> 3) & 7;
      const bool byte = (h >> 12) == 0x7;
      const bool load = (h >> 11) & 1;
      i.imm = static_cast<std::int32_t>(((h >> 6) & 31) << (byte ? 0 : 2));
      if (byte) return ret(load ? Op::kLdrbImm : Op::kStrbImm);
      return ret(load ? Op::kLdrImm : Op::kStrImm);
    }
    case 0x8: {
      i.rd = h & 7;
      i.rn = (h >> 3) & 7;
      i.imm = static_cast<std::int32_t>(((h >> 6) & 31) << 1);
      return ret(((h >> 11) & 1) ? Op::kLdrhImm : Op::kStrhImm);
    }
    case 0x9: {
      i.rd = (h >> 8) & 7;
      i.imm = (h & 0xFF) << 2;
      return ret(((h >> 11) & 1) ? Op::kLdrSp : Op::kStrSp);
    }
    case 0xA: {
      i.rd = (h >> 8) & 7;
      i.imm = (h & 0xFF) << 2;
      return ret(((h >> 11) & 1) ? Op::kAddRdSp : Op::kAdr);
    }
    case 0xB: {
      if ((h & 0xFF00u) == 0xB000u) {
        i.imm = (h & 0x7F) << 2;
        return ret((h & 0x80) ? Op::kSubSpImm7 : Op::kAddSpImm7);
      }
      if ((h & 0xFE00u) == 0xB400u) {
        i.reg_list = h & 0x1FF;
        return ret(Op::kPush);
      }
      if ((h & 0xFE00u) == 0xBC00u) {
        i.reg_list = h & 0x1FF;
        return ret(Op::kPop);
      }
      if ((h & 0xFF00u) == 0xB200u) {
        i.rd = h & 7;
        i.rm = (h >> 3) & 7;
        static constexpr Op ops[] = {Op::kSxth, Op::kSxtb, Op::kUxth,
                                     Op::kUxtb};
        return ret(ops[(h >> 6) & 3]);
      }
      if ((h & 0xFF00u) == 0xBA00u) {
        i.rd = h & 7;
        i.rm = (h >> 3) & 7;
        const unsigned op2 = (h >> 6) & 3;
        if (op2 == 2) {
          decode_fail(idx, "decode: 0xBA80 undefined");
        }
        static constexpr Op ops[] = {Op::kRev, Op::kRev16, Op::kNop,
                                     Op::kRevsh};
        return ret(ops[op2]);
      }
      if ((h & 0xFF00u) == 0xBE00u) {
        i.imm = h & 0xFF;
        return ret(Op::kBkpt);
      }
      if (h == 0xBF00u) return ret(Op::kNop);
      decode_fail(idx, "decode: unsupported misc encoding");
    }
    case 0xC: {
      i.rn = (h >> 8) & 7;
      i.reg_list = h & 0xFF;
      if (i.reg_list == 0) {
        decode_fail(idx, "decode: empty ldm/stm list");
      }
      return ret(((h >> 11) & 1) ? Op::kLdm : Op::kStm);
    }
    case 0xD: {
      const unsigned cond = (h >> 8) & 0xF;
      if (cond >= 14) {
        decode_fail(idx, "decode: UDF/SVC unsupported");
      }
      i.cond = static_cast<Cond>(cond);
      i.imm = static_cast<std::int32_t>(static_cast<std::int8_t>(h & 0xFF))
              << 1;
      return ret(Op::kBCond);
    }
    case 0xE: {
      if (h & 0x0800u) {
        decode_fail(idx, "decode: 32-bit prefix E8-EF unsupported");
      }
      std::int32_t off = h & 0x7FF;
      if (off & 0x400) off -= 0x800;
      i.imm = off << 1;
      return ret(Op::kB);
    }
    case 0xF: {
      // Classic Thumb BL pair.
      if ((h & 0xF800u) != 0xF000u) {
        decode_fail(idx, "decode: stray BL low halfword");
      }
      if (idx + 1 >= code.size()) {
        decode_fail(idx, "decode: BL pair truncated");
      }
      const std::uint16_t h2 = code[idx + 1];
      if ((h2 & 0xF800u) != 0xF800u) {
        decode_fail(idx, "decode: BL pair malformed");
      }
      std::int32_t hi = h & 0x7FF;
      if (hi & 0x400) hi -= 0x800;
      const std::int32_t lo = h2 & 0x7FF;
      i.imm = (hi << 12) | (lo << 1);
      i.op = Op::kBl;
      return Decoded{i, 2};
    }
  }
  decode_fail(idx, "decode: unreachable");
}

std::vector<PredecodedSlot> predecode(const std::vector<std::uint16_t>& code) {
  std::vector<PredecodedSlot> slots(code.size());
  for (std::size_t i = 0; i < code.size(); ++i) {
    try {
      const Decoded d = decode(code, i);
      slots[i] = {d.ins, static_cast<std::uint8_t>(d.halfwords), true};
    } catch (const std::exception&) {
      // Not an instruction at this position (data word, BL low halfword,
      // undefined encoding). Left invalid; executing it traps.
    }
  }
  return slots;
}

std::string disassemble(const Instr& i) {
  std::string s = i.op == Op::kBCond
                      ? std::string("b") + cond_name(i.cond)
                      : std::string(op_name(i.op));
  auto r = [](unsigned x) { return reg_name(x); };
  auto imm = [](std::int32_t v) { return "#" + std::to_string(v); };
  switch (i.op) {
    case Op::kLslImm: case Op::kLsrImm: case Op::kAsrImm:
      return s + " " + r(i.rd) + ", " + r(i.rm) + ", " + imm(i.imm);
    case Op::kAddReg: case Op::kSubReg:
      return s + " " + r(i.rd) + ", " + r(i.rn) + ", " + r(i.rm);
    case Op::kAddImm3: case Op::kSubImm3:
      return s + " " + r(i.rd) + ", " + r(i.rn) + ", " + imm(i.imm);
    case Op::kMovImm: case Op::kCmpImm: case Op::kAddImm8: case Op::kSubImm8:
      return s + " " + r(i.rd) + ", " + imm(i.imm);
    case Op::kAnd: case Op::kEor: case Op::kLslReg: case Op::kLsrReg:
    case Op::kAsrReg: case Op::kAdc: case Op::kSbc: case Op::kRorReg:
    case Op::kTst: case Op::kRsb: case Op::kCmpReg: case Op::kCmn:
    case Op::kOrr: case Op::kMul: case Op::kBic: case Op::kMvn:
      return s + " " + r(i.rd) + ", " + r(i.rm);
    case Op::kAddHi: case Op::kCmpHi: case Op::kMovHi:
    case Op::kSxth: case Op::kSxtb: case Op::kUxth: case Op::kUxtb:
    case Op::kRev: case Op::kRev16: case Op::kRevsh:
      return s + " " + r(i.rd) + ", " + r(i.rm);
    case Op::kBx: case Op::kBlx:
      return s + " " + r(i.rm);
    case Op::kLdrLit:
      return s + " " + r(i.rd) + ", [pc, " + imm(i.imm) + "]";
    case Op::kLdrImm: case Op::kStrImm: case Op::kLdrbImm: case Op::kStrbImm:
    case Op::kLdrhImm: case Op::kStrhImm:
      return s + " " + r(i.rd) + ", [" + r(i.rn) + ", " + imm(i.imm) + "]";
    case Op::kLdrReg: case Op::kStrReg: case Op::kLdrbReg: case Op::kStrbReg:
    case Op::kLdrhReg: case Op::kStrhReg: case Op::kLdrsbReg:
    case Op::kLdrshReg:
      return s + " " + r(i.rd) + ", [" + r(i.rn) + ", " + r(i.rm) + "]";
    case Op::kLdrSp: case Op::kStrSp:
      return s + " " + r(i.rd) + ", [sp, " + imm(i.imm) + "]";
    case Op::kAdr:
      return s + " " + r(i.rd) + ", " + imm(i.imm);
    case Op::kAddRdSp:
      return s + " " + r(i.rd) + ", sp, " + imm(i.imm);
    case Op::kAddSpImm7: case Op::kSubSpImm7:
      return s + " sp, " + imm(i.imm);
    case Op::kPush: case Op::kPop: case Op::kLdm: case Op::kStm: {
      std::string list = "{";
      bool first = true;
      for (unsigned b = 0; b < 9; ++b) {
        if (i.reg_list & (1u << b)) {
          if (!first) list += ", ";
          first = false;
          if (b == 8) {
            list += i.op == Op::kPush ? "lr" : "pc";
          } else {
            list += r(b);
          }
        }
      }
      list += "}";
      if (i.op == Op::kLdm || i.op == Op::kStm) {
        return s + " " + r(i.rn) + "!, " + list;
      }
      return s + " " + list;
    }
    case Op::kBCond: case Op::kB: case Op::kBl:
      return s + " " + imm(i.imm);
    case Op::kBkpt:
      return s + " " + imm(i.imm);
    case Op::kNop:
      return s;
  }
  return s;
}

}  // namespace eccm0::armvm
