// Cortex-M0+ style execution core: Thumb-1 interpreter with the M0+
// cycle model (loads/stores 2 cycles, taken branches 2, LDM/STM 1+N,
// single-cycle multiplier) and per-instruction-class energy accounting
// against the paper's Table 3.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "costmodel/energy.h"

namespace eccm0::armvm {

/// Code lives at 0x0 (read-only), RAM at 0x20000000 — the Cortex-M0+
/// flash/SRAM split.
inline constexpr std::uint32_t kRamBase = 0x20000000u;
/// Writing this to PC (via BX LR) ends a `call`.
inline constexpr std::uint32_t kReturnSentinel = 0xFFFFFFFEu;

class Memory {
 public:
  explicit Memory(std::size_t size) : bytes_(size, 0) {}

  std::size_t size() const { return bytes_.size(); }
  std::uint8_t load8(std::uint32_t addr) const;
  std::uint16_t load16(std::uint32_t addr) const;
  std::uint32_t load32(std::uint32_t addr) const;
  void store8(std::uint32_t addr, std::uint8_t v);
  void store16(std::uint32_t addr, std::uint16_t v);
  void store32(std::uint32_t addr, std::uint32_t v);

  /// Bulk helpers for test/benchmark harnesses (RAM-relative address).
  void write_words(std::uint32_t addr, std::span<const std::uint32_t> w);
  std::vector<std::uint32_t> read_words(std::uint32_t addr,
                                        std::size_t count) const;

 private:
  std::size_t index(std::uint32_t addr, std::size_t bytes) const;
  std::vector<std::uint8_t> bytes_;
};

struct RunStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  costmodel::CycleHistogram histogram;

  costmodel::EnergyReport energy(const costmodel::InstructionEnergyTable& t =
                                     costmodel::kM0PlusEnergy) const {
    return costmodel::energy_of(histogram, t);
  }
};

class Cpu {
 public:
  /// `code` is the Thumb image at address 0; `ram` is the SRAM.
  Cpu(std::vector<std::uint16_t> code, Memory& ram);

  std::uint32_t reg(unsigned r) const { return r_[r]; }
  void set_reg(unsigned r, std::uint32_t v) { r_[r] = v; }
  bool flag_n() const { return n_; }
  bool flag_z() const { return z_; }
  bool flag_c() const { return c_; }
  bool flag_v() const { return v_; }

  /// Execute one instruction at PC. Returns false when halted (BKPT or
  /// return-sentinel reached).
  bool step();

  /// Standard AAPCS-ish call: r0..r3 = args, lr = sentinel, runs to
  /// completion (throws std::runtime_error after `max_instructions`).
  RunStats call(std::uint32_t entry, std::initializer_list<std::uint32_t> args,
                std::uint64_t max_instructions = 100'000'000);

  const RunStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Per-retired-cost callback (class, cycles) — lets a power-trace
  /// simulator observe the executed instruction stream.
  using TraceHook = std::function<void(costmodel::InstrClass, unsigned)>;
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

 private:
  void exec(const struct Instr& ins, unsigned halfwords);
  std::uint32_t add_with_carry(std::uint32_t a, std::uint32_t b, bool cin,
                               bool set_flags);
  void set_nz(std::uint32_t v);
  std::uint32_t read_mem(std::uint32_t addr, unsigned bytes);
  void write_mem(std::uint32_t addr, std::uint32_t v, unsigned bytes);
  void account(costmodel::InstrClass cls, unsigned cycles);

  std::vector<std::uint16_t> code_;
  Memory& ram_;
  std::uint32_t r_[16] = {};
  bool n_ = false, z_ = false, c_ = false, v_ = false;
  bool halted_ = false;
  RunStats stats_;
  TraceHook trace_;
};

}  // namespace eccm0::armvm
