// Cortex-M0+ style execution core: Thumb-1 interpreter with the M0+
// cycle model (loads/stores 2 cycles, taken branches 2, LDM/STM 1+N,
// single-cycle multiplier) and per-instruction-class energy accounting
// against the paper's Table 3.
//
// Execution engine: the Thumb image is decoded ONCE at Cpu construction
// into a flat cache indexed by halfword (`codec.h::predecode`), and
// `step()`/`call()` execute straight out of that cache — the interpreter
// never re-decodes a retired instruction. Slots that do not decode (data
// words, literal pools, BL low halfwords) trap to a fresh `decode()` when
// the PC actually lands on them, so error behavior is identical to
// decoding per step. `DecodeMode::kPerStep` keeps the original
// decode-every-instruction path alive as the reference engine for
// differential tests (`tests/armvm/predecode_test.cpp`) and the
// `bench_vm_throughput` speedup baseline; both modes retire the same
// instruction stream and produce bit-identical cycle counts, histograms
// and energy reports.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <vector>

#include "armvm/codec.h"
#include "armvm/fault.h"
#include "armvm/memmodel.h"
#include "armvm/program.h"
#include "costmodel/energy.h"

namespace eccm0::armvm {

/// Code lives at 0x0 (read-only), RAM at 0x20000000 — the Cortex-M0+
/// flash/SRAM split.
inline constexpr std::uint32_t kRamBase = 0x20000000u;
/// Writing this to PC (via BX LR) ends a `call`.
inline constexpr std::uint32_t kReturnSentinel = 0xFFFFFFFEu;

class Memory {
 public:
  /// Raw SRAM: every access completes in the base cycle model.
  explicit Memory(std::size_t size) : bytes_(size, 0), fast_size_(size) {}
  /// SRAM behind a protection codec (see armvm/memmodel.h). A kRaw
  /// config degenerates to the raw constructor. Protected sizes must be
  /// word multiples (the codecs operate on 32-bit words), and only the
  /// SECDED model accepts a scrub interval — scrubbing repairs words,
  /// which detect-only models cannot; std::invalid_argument otherwise.
  Memory(std::size_t size, const MemModelConfig& config);

  std::size_t size() const { return bytes_.size(); }
  bool is_protected() const { return model_ != nullptr; }
  const MemModelConfig& model_config() const { return config_; }
  MemModelKind model_kind() const { return config_.kind; }

  // Aligned, in-range accesses on *raw* memory take the inline fast
  // path below: one range/alignment test and a direct load/store at a
  // precomputed RAM-base offset, no per-access byte switch. Anything
  // else — misaligned, out of range, or any access on a protected
  // model — falls through to the out-of-line slow path, which raises
  // the typed armvm::Fault matching the condition (BusFault for
  // out-of-range, AlignmentFault for misaligned, MemoryIntegrityFault
  // for an uncorrectable codeword) with the pre-typed what() text.
  //
  // The gate is `fast_size_`, which equals bytes_.size() for raw memory
  // and 0 when a protection model is attached: the raw hot path is
  // exactly the seed comparison sequence (zero extra instructions), and
  // protected memory diverts every access to the codec without a
  // second branch.
  std::uint8_t load8(std::uint32_t addr) const {
    const std::uint32_t off = addr - kRamBase;
    if (addr >= kRamBase && off < fast_size_) [[likely]] {
      return bytes_[off];
    }
    return load8_slow(addr);
  }
  std::uint16_t load16(std::uint32_t addr) const {
    const std::uint32_t off = addr - kRamBase;
    if (addr >= kRamBase && (addr & 1) == 0 && off + 2 <= fast_size_)
        [[likely]] {
      return le16(&bytes_[off]);
    }
    return load16_slow(addr);
  }
  std::uint32_t load32(std::uint32_t addr) const {
    const std::uint32_t off = addr - kRamBase;
    if (addr >= kRamBase && (addr & 3) == 0 && off + 4 <= fast_size_)
        [[likely]] {
      return le32(&bytes_[off]);
    }
    return load32_slow(addr);
  }
  void store8(std::uint32_t addr, std::uint8_t v) {
    const std::uint32_t off = addr - kRamBase;
    if (addr >= kRamBase && off < fast_size_) [[likely]] {
      bytes_[off] = v;
      return;
    }
    store8_slow(addr, v);
  }
  void store16(std::uint32_t addr, std::uint16_t v) {
    const std::uint32_t off = addr - kRamBase;
    if (addr >= kRamBase && (addr & 1) == 0 && off + 2 <= fast_size_)
        [[likely]] {
      put_le16(&bytes_[off], v);
      return;
    }
    store16_slow(addr, v);
  }
  void store32(std::uint32_t addr, std::uint32_t v) {
    const std::uint32_t off = addr - kRamBase;
    if (addr >= kRamBase && (addr & 3) == 0 && off + 4 <= fast_size_)
        [[likely]] {
      put_le32(&bytes_[off], v);
      return;
    }
    store32_slow(addr, v);
  }

  // ---- Harness access (operand loading, result readout) --------------
  //
  // Full codec semantics — a peek decodes (and can raise
  // MemoryIntegrityFault), a poke re-encodes fresh check bits — but no
  // wait-state cycles are charged and the scrub clock does not advance:
  // the test bench talking to the SRAM is not the core paying bus
  // cycles.
  std::uint32_t peek32(std::uint32_t addr) const;
  void poke32(std::uint32_t addr, std::uint32_t v);
  void poke16(std::uint32_t addr, std::uint16_t v);

  /// Bulk helpers for test/benchmark harnesses; peek/poke semantics.
  void write_words(std::uint32_t addr, std::span<const std::uint32_t> w);
  std::vector<std::uint32_t> read_words(std::uint32_t addr,
                                        std::size_t count) const;

  /// Whole-RAM access for machine snapshots.
  std::span<const std::uint8_t> bytes() const { return bytes_; }
  /// Overwrite the full RAM image (size must match exactly; throws
  /// std::invalid_argument otherwise). Used by Cpu::restore(). On
  /// protected memory the image is treated as the *logical* content:
  /// every check byte is recomputed, i.e. the storage is clean
  /// afterwards. Restoring corrupted-storage state exactly additionally
  /// needs restore_protection() with the snapshot's check bits.
  void set_bytes(std::span<const std::uint8_t> image);

  // ---- Protection metadata, reliability counters, injection ----------

  /// The per-word check-byte sidecar (empty for raw memory).
  std::span<const std::uint8_t> check_bytes() const { return check_; }
  /// Restore the exact protection state a snapshot captured: the check
  /// bytes verbatim (overriding set_bytes' recomputation — this is what
  /// keeps deliberately-corrupt storage corrupt across a
  /// snapshot/restore round trip) and the scrub-clock phase. Raw memory
  /// accepts only an empty sidecar.
  void restore_protection(std::span<const std::uint8_t> check,
                          std::uint64_t accesses_since_scrub);

  /// Physical storage bits per word as the bit-error injector sees
  /// them: 32 data bits plus the model's check bits (32/33/39).
  unsigned storage_bits_per_word() const {
    return 32 + (model_ ? model_->check_bits() : 0);
  }
  /// Flip one physical storage bit: bits 0..31 are the data word,
  /// 32.. index into the check byte. Throws std::out_of_range outside
  /// [0, storage_bits_per_word()) or past the last word.
  void flip_storage_bit(std::uint32_t word, unsigned bit);

  /// Immediate scrubbing pass: decode every word, rewrite correctable
  /// ones with repaired data + fresh check bits, raise
  /// MemoryIntegrityFault on an uncorrectable word. Charges wait_states
  /// cycles per word swept. Also runs automatically every
  /// `scrub_interval` protected accesses. No-op on raw memory.
  void scrub();

  std::uint64_t protected_accesses() const { return protected_accesses_; }
  std::uint64_t accesses_since_scrub() const { return accesses_since_scrub_; }
  /// Single-bit errors repaired while serving accesses (SECDED decode).
  std::uint64_t corrections() const { return corrections_; }
  std::uint64_t scrub_passes() const { return scrub_passes_; }
  /// Words rewritten clean by scrubbing passes.
  std::uint64_t scrub_corrections() const { return scrub_corrections_; }

  /// Wait-state cycles accrued since the last drain. The Cpu drains
  /// this once per retired instruction into the kMemWait histogram
  /// class; harnesses never need to call it (peek/poke charge nothing).
  std::uint32_t take_pending_wait_cycles() {
    const std::uint32_t w = pending_wait_cycles_;
    pending_wait_cycles_ = 0;
    return w;
  }

 private:
  static std::uint16_t le16(const std::uint8_t* p) {
    if constexpr (std::endian::native == std::endian::little) {
      std::uint16_t v;
      std::memcpy(&v, p, 2);
      return v;
    } else {
      return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    }
  }
  static std::uint32_t le32(const std::uint8_t* p) {
    if constexpr (std::endian::native == std::endian::little) {
      std::uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    } else {
      return static_cast<std::uint32_t>(p[0]) | (p[1] << 8u) | (p[2] << 16u) |
             (static_cast<std::uint32_t>(p[3]) << 24u);
    }
  }
  static void put_le16(std::uint8_t* p, std::uint16_t v) {
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(p, &v, 2);
    } else {
      p[0] = static_cast<std::uint8_t>(v);
      p[1] = static_cast<std::uint8_t>(v >> 8);
    }
  }
  static void put_le32(std::uint8_t* p, std::uint32_t v) {
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(p, &v, 4);
    } else {
      p[0] = static_cast<std::uint8_t>(v);
      p[1] = static_cast<std::uint8_t>(v >> 8);
      p[2] = static_cast<std::uint8_t>(v >> 16);
      p[3] = static_cast<std::uint8_t>(v >> 24);
    }
  }

  /// The fused-block dispatcher hoists the RAM view into locals so the
  /// compiler can keep it in registers across byte stores (which may
  /// alias anything, including this vector's own bookkeeping).
  friend class Cpu;

  std::uint8_t load8_slow(std::uint32_t addr) const;
  std::uint16_t load16_slow(std::uint32_t addr) const;
  std::uint32_t load32_slow(std::uint32_t addr) const;
  void store8_slow(std::uint32_t addr, std::uint8_t v);
  void store16_slow(std::uint32_t addr, std::uint16_t v);
  void store32_slow(std::uint32_t addr, std::uint32_t v);
  std::size_t index(std::uint32_t addr, std::size_t bytes) const;

  // Protected-path helpers (model_ != nullptr). decode_word serves the
  // corrected value of word `word` (raising MemoryIntegrityFault at
  // `addr` when the codeword is rotten); loads deliberately do NOT
  // write the correction back — repair is the scrubbing pass's job,
  // which is what gives the scrub interval observable meaning.
  // charge_access accrues wait-states and ticks the scrub clock; it is
  // const because load paths are const, and the counters it touches are
  // logically non-observable (mutable).
  std::uint32_t decode_word(std::size_t word, std::uint32_t addr) const;
  void encode_word(std::size_t word, std::uint32_t data);
  void charge_access() const;

  std::vector<std::uint8_t> bytes_;
  /// bytes_.size() for raw memory, 0 when protected — the single gate
  /// that keeps the inline fast paths raw-only (see comment above).
  std::size_t fast_size_ = 0;
  MemModelConfig config_{};
  std::unique_ptr<MemoryModel> model_;
  std::vector<std::uint8_t> check_;  ///< one check byte per word

  mutable std::uint32_t pending_wait_cycles_ = 0;
  mutable std::uint64_t protected_accesses_ = 0;
  mutable std::uint64_t accesses_since_scrub_ = 0;
  mutable std::uint64_t corrections_ = 0;
  std::uint64_t scrub_passes_ = 0;
  std::uint64_t scrub_corrections_ = 0;
};

struct RunStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  costmodel::CycleHistogram histogram;

  costmodel::EnergyReport energy(const costmodel::InstructionEnergyTable& t =
                                     costmodel::kM0PlusEnergy) const {
    return costmodel::energy_of(histogram, t);
  }

  friend bool operator==(const RunStats&, const RunStats&) = default;
};

/// Complete checkpoint of one execution context: architectural state
/// (registers + flags, with the retired-work counters mirrored in
/// `arch`), the full RunStats including the cycle histogram, the halted
/// latch, and the entire RAM image. `Cpu::snapshot()` at an injection
/// point plus `Cpu::restore()` on any context over the same Program
/// forks the run instead of replaying it from reset — the continuation
/// is bit-identical to a straight-through execution.
struct MachineSnapshot {
  ArchState arch;
  RunStats stats;
  bool halted = false;
  std::vector<std::uint8_t> ram;
  /// Protection sidecar of a protected Memory (empty for raw): restored
  /// verbatim, so storage that held a latent (even deliberately
  /// injected) bit error stays bit-for-bit rotten across the round trip
  /// instead of being silently re-encoded clean.
  std::vector<std::uint8_t> check;
  /// Scrub-clock phase (accesses since the last scrubbing pass).
  std::uint64_t mem_accesses = 0;

  friend bool operator==(const MachineSnapshot&,
                         const MachineSnapshot&) = default;
};

/// One memory access performed by a retired instruction.
struct MemAccess {
  std::uint32_t addr = 0;
  std::uint8_t width = 0;  ///< bytes transferred: 1, 2 or 4
  bool store = false;

  friend bool operator==(const MemAccess&, const MemAccess&) = default;
};

/// Rich retired-instruction event: where the instruction was (PC), what
/// it was (decoded form), what it cost (the same cost pairs the cycle
/// histogram receives — LDM/STM/PUSH/POP carry two: transfer + overhead)
/// and which memory words it touched. `cycle` is the simulated clock at
/// issue, so a sink can reconstruct the full timeline; `next_pc` is the
/// PC after retirement (branch target, fallthrough, or the return
/// sentinel), which is what lets a profiler follow BL/BX control flow
/// without re-decoding anything.
struct TraceEvent {
  std::uint64_t cycle = 0;  ///< simulated clock when the instruction issued
  std::uint32_t pc = 0;      ///< address of the retired instruction
  std::uint32_t next_pc = 0; ///< PC after retirement
  Instr ins;

  struct Cost {
    costmodel::InstrClass cls{};
    /// 32-bit: a protected-memory instruction's kMemWait entry can carry
    /// a whole scrubbing pass (wait_states x every word in RAM).
    std::uint32_t cycles = 0;

    friend bool operator==(const Cost&, const Cost&) = default;
  };
  std::uint8_t num_costs = 0;
  std::uint8_t num_accesses = 0;
  /// At most three: transfer + overhead (LDM/STM/PUSH/POP) + one batched
  /// kMemWait entry when the memory model charges wait-states.
  Cost costs[3];
  /// LDM/STM/PUSH/POP transfer at most 8 lo registers + LR/PC.
  MemAccess accesses[9];

  unsigned cycles() const {
    unsigned t = 0;
    for (unsigned i = 0; i < num_costs; ++i) t += costs[i].cycles;
    return t;
  }

  /// Streams compare equal when every *populated* field matches (the
  /// scratch event is reused across instructions, so entries past the
  /// counts are stale).
  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    if (a.cycle != b.cycle || a.pc != b.pc || a.next_pc != b.next_pc ||
        !(a.ins == b.ins) || a.num_costs != b.num_costs ||
        a.num_accesses != b.num_accesses) {
      return false;
    }
    for (unsigned i = 0; i < a.num_costs; ++i) {
      if (!(a.costs[i] == b.costs[i])) return false;
    }
    for (unsigned i = 0; i < a.num_accesses; ++i) {
      if (!(a.accesses[i] == b.accesses[i])) return false;
    }
    return true;
  }
};

/// Observer of the retired instruction stream (power-trace simulators,
/// profilers, memory heatmaps). The interpreter is stamped out twice:
/// untraced runs execute a loop with NO tracing code in it at all (the
/// single `trace_` null-check selects the loop variant outside the hot
/// path), so attaching a sink costs the untraced path nothing.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// One retired instruction with its full cost and memory detail.
  virtual void on_retire(const TraceEvent& ev) = 0;
};

/// Fans one retired-instruction stream out to several sinks (e.g.
/// Profiler + PowerRig + MemHeatmap on the same run). Borrowed pointers,
/// like Cpu's sink: every registered sink must outlive the traced run.
class TeeSink final : public TraceSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}

  void add(TraceSink* s) { sinks_.push_back(s); }

  void on_retire(const TraceEvent& ev) override {
    for (TraceSink* s : sinks_) s->on_retire(ev);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

class Cpu {
 public:
  /// How the execution engine obtains decoded instructions.
  enum class DecodeMode {
    kPredecode,  ///< execute from the construction-time decode cache
    kPerStep,    ///< reference engine: fresh decode() every instruction
    kThreaded,   ///< token-threaded dispatch over the predecode cache,
                 ///< with fused basic-block superinstructions and
                 ///< batched accounting (see armvm/superinst.h). Falls
                 ///< back to per-instruction execution when a TraceSink
                 ///< is attached, when the budget would expire inside a
                 ///< block, or when the PC enters a block anywhere but
                 ///< its head. Bit-identical to the other engines.
  };

  /// A Cpu is a cheap per-run execution context over a shared immutable
  /// `Program` (code at address 0, predecode cache, symbols); `ram` is
  /// the SRAM. Any number of contexts — including on different threads —
  /// can execute the same ProgramRef concurrently, each with its own
  /// Memory.
  Cpu(ProgramRef prog, Memory& ram, DecodeMode mode = DecodeMode::kPredecode);
  /// Convenience: wrap raw halfwords into a fresh single-use Program.
  Cpu(std::vector<std::uint16_t> code, Memory& ram,
      DecodeMode mode = DecodeMode::kPredecode);

  const Program& program() const { return *prog_; }
  const ProgramRef& program_ref() const { return prog_; }

  std::uint32_t reg(unsigned r) const { return r_[r]; }
  void set_reg(unsigned r, std::uint32_t v) { r_[r] = v; }
  bool flag_n() const { return n_; }
  bool flag_z() const { return z_; }
  bool flag_c() const { return c_; }
  bool flag_v() const { return v_; }
  DecodeMode decode_mode() const { return mode_; }

  /// Execute one instruction at PC. Returns false when halted (BKPT or
  /// return-sentinel reached). Architectural errors surface as typed
  /// armvm::Fault exceptions annotated with the state at the fault.
  bool step();

  /// Standard AAPCS-ish call: r0..r3 = args, lr = sentinel, runs to
  /// completion (throws armvm::BudgetFault after `max_instructions`).
  RunStats call(std::uint32_t entry, std::initializer_list<std::uint32_t> args,
                std::uint64_t max_instructions = 100'000'000);

  /// Resume execution from the current architectural state (PC, flags,
  /// halted latch as-is) until the core halts — what `call()` does after
  /// setting up the calling convention. Lets a restored snapshot or a
  /// mid-run fault handoff continue under any engine; the PC may point
  /// anywhere, including into the middle of a fused block (the threaded
  /// engine then executes per-instruction until the next block head).
  /// Returns the stats delta of this resume.
  RunStats run(std::uint64_t max_instructions = 100'000'000);

  /// Snapshot of registers, flags and retired-work counters — the same
  /// structure a Fault carries. Used by fault-injection harnesses to
  /// hand execution between cores and by tests to compare engines.
  ArchState arch_state() const;
  /// Restore registers and flags from a snapshot. Deliberately
  /// asymmetric with arch_state(): the retired-work counters and the
  /// halted latch are NOT restored — they belong to this core's own
  /// execution history. `reset_stats()` + `set_arch_state()` (plus
  /// `clear_halted()` if the core already ran to completion) therefore
  /// give a clean re-run from the restored architectural state.
  void set_arch_state(const ArchState& s);

  /// Full machine checkpoint: architectural state, RunStats (histogram
  /// included), halted latch and the complete RAM image.
  MachineSnapshot snapshot() const;
  /// Restore every field a snapshot() captured — counters, latch and
  /// RAM included — so execution resumes bit-identically from the
  /// checkpoint. The snapshot's RAM size must match this context's RAM.
  void restore(const MachineSnapshot& s);

  /// True once a run ended (BKPT or return sentinel). `call()` clears
  /// the latch itself; `clear_halted()` re-arms a stepped or restored
  /// context so it can resume.
  bool halted() const { return halted_; }
  void clear_halted() { halted_ = false; }

  const RunStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = {};
    fused_retired_ = 0;
    fused_blocks_entered_ = 0;
  }

  /// Diagnostics of the threaded engine (fusion report): instructions
  /// retired inside fused superblocks, and blocks entered. Not part of
  /// RunStats or snapshots — purely observability, zero for the other
  /// engines.
  std::uint64_t fused_retired() const { return fused_retired_; }
  std::uint64_t fused_blocks_entered() const { return fused_blocks_entered_; }

  /// Attach an observer of retired cost events (nullptr detaches). The
  /// sink is borrowed, not owned; it must outlive the traced run.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

 private:
  bool step_impl();
  /// The interpreter core, stamped out twice: the untraced instantiation
  /// is bit-for-bit the seed hot path (no event assembly, no extra
  /// branches anywhere inside the flattened loop); the traced one
  /// records cost pairs and memory accesses into the scratch event.
  template <bool kTraced>
  void exec(const Instr& ins, unsigned halfwords);
  std::uint32_t add_with_carry(std::uint32_t a, std::uint32_t b, bool cin,
                               bool set_flags);
  void set_nz(std::uint32_t v);
  // Defined inline below so both interpreter translation units (cpu.cpp
  // and the threaded dispatcher in dispatch.cpp) flatten the memory
  // fast paths into their hot loops.
  template <bool kTraced>
  std::uint32_t read_mem(std::uint32_t addr, unsigned bytes);
  template <bool kTraced>
  void write_mem(std::uint32_t addr, std::uint32_t v, unsigned bytes);
  template <bool kTraced>
  void account(costmodel::InstrClass cls, unsigned cycles) {
    stats_.histogram.add(cls, cycles);
    stats_.cycles += cycles;
    if constexpr (kTraced) {
      ev_.costs[ev_.num_costs].cls = cls;
      ev_.costs[ev_.num_costs].cycles = cycles;
      ++ev_.num_costs;
    }
  }
  void note_access(std::uint32_t addr, unsigned bytes, bool store) {
    if (ev_.num_accesses < 9) {
      ev_.accesses[ev_.num_accesses] = {addr, static_cast<std::uint8_t>(bytes),
                                        store};
      ++ev_.num_accesses;
    }
  }
  /// Traced retirement: assemble the rich event around exec<true>() and
  /// deliver it to the sink.
  void exec_traced(std::uint32_t pc, const Instr& ins, unsigned halfwords);
  [[noreturn]] void trap_undecodable(std::size_t idx) const;
  std::uint64_t run_predecoded(std::uint64_t limit);
  /// kProt selects the protected-memory variant, which drains the
  /// Memory's pending wait-state cycles into the kMemWait class after
  /// every retired instruction. The untraced/raw instantiation stays
  /// bit-for-bit the seed hot path.
  template <bool kTraced, bool kProt>
  std::uint64_t run_predecoded_impl(std::uint64_t limit);
  /// Threaded-engine chunk runner (dispatch.cpp). Falls back to the
  /// traced predecoded loop when a sink is attached or the RAM is
  /// protected (fused blocks precompute cycle deltas and bypass the
  /// Memory accessors entirely, so they cannot see wait-states).
  std::uint64_t run_threaded(std::uint64_t limit);
  /// Retire one whole fused block (PC is at its head). On a Fault,
  /// replays the accounting of the instructions that retired before the
  /// faulting one and leaves the exact per-step architectural state.
  void run_fused_block(const SuperBlock& b);

  /// The shared immutable image, plus raw views into it so the hot loop
  /// pays no shared_ptr indirection.
  ProgramRef prog_;
  const std::uint16_t* code_ = nullptr;
  std::size_t code_size_ = 0;
  const PredecodedSlot* cache_ = nullptr;
  Memory& ram_;
  DecodeMode mode_;
  std::uint32_t r_[16] = {};
  bool n_ = false, z_ = false, c_ = false, v_ = false;
  bool halted_ = false;
  RunStats stats_;
  std::uint64_t fused_retired_ = 0;
  std::uint64_t fused_blocks_entered_ = 0;
  TraceSink* trace_ = nullptr;
  TraceEvent ev_;  ///< scratch event, populated only while trace_ is set
};

template <bool kTraced>
inline std::uint32_t Cpu::read_mem(std::uint32_t addr, unsigned bytes) {
  if constexpr (kTraced) note_access(addr, bytes, false);
  if (addr < kRamBase) {
    // Read-only code / literal-pool space.
    std::uint32_t v = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      const std::uint32_t byte_addr = addr + i;
      const std::size_t hw = byte_addr / 2;
      if (hw >= code_size_) {
        throw BusFault("Cpu: code-space read out of range", byte_addr);
      }
      const std::uint8_t byte =
          static_cast<std::uint8_t>(code_[hw] >> (8 * (byte_addr % 2)));
      v |= static_cast<std::uint32_t>(byte) << (8 * i);
    }
    return v;
  }
  switch (bytes) {
    case 1: return ram_.load8(addr);
    case 2: return ram_.load16(addr);
    default: return ram_.load32(addr);
  }
}

template <bool kTraced>
inline void Cpu::write_mem(std::uint32_t addr, std::uint32_t v,
                           unsigned bytes) {
  if constexpr (kTraced) note_access(addr, bytes, true);
  switch (bytes) {
    case 1: ram_.store8(addr, static_cast<std::uint8_t>(v)); break;
    case 2: ram_.store16(addr, static_cast<std::uint16_t>(v)); break;
    default: ram_.store32(addr, v); break;
  }
}

}  // namespace eccm0::armvm
