#include "armvm/fault.h"

namespace eccm0::armvm {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kBusFault: return "bus-fault";
    case FaultKind::kAlignmentFault: return "alignment-fault";
    case FaultKind::kDecodeFault: return "decode-fault";
    case FaultKind::kBudgetExhausted: return "budget-exhausted";
    case FaultKind::kMemoryIntegrity: return "memory-integrity";
  }
  return "unknown-fault";
}

}  // namespace eccm0::armvm
