// Pluggable protection codecs for the ARM VM's RAM.
//
// `armvm::Memory` stores a flat little-endian byte image. A MemoryModel
// adds a per-word *codeword* on top of that image: every 32-bit word
// carries extra check bits (a sidecar byte per word), every access pays
// configurable wait-state cycles, and decode can correct or detect
// storage bit errors. Three models:
//
//   kRaw     — no check bits, no wait-states: the original SRAM. Stays
//              on the inline fast path in cpu.h; the codec machinery is
//              never consulted.
//   kParity  — 1 even-parity bit per word (33 storage bits). Detect-only:
//              any odd number of flipped bits raises MemoryIntegrityFault;
//              an even number escapes. Mirrors a parity-protected SRAM
//              macro.
//   kSecded  — SECDED(39,32): a (38,32) extended Hamming code plus an
//              overall parity bit (39 storage bits, 7 check bits).
//              Single-bit errors are corrected silently, double-bit
//              errors raise MemoryIntegrityFault.
//
// Codeword layout (kSecded): the 38-bit Hamming codeword indexes
// positions 1..38; check bit i sits at position 2^i (i = 0..5) and the
// 32 data bits fill the non-power-of-two positions in ascending order
// (data bit 0 -> position 3, bit 1 -> position 5, ...). The stored
// check byte packs check bits c0..c5 into bits 0..5 and the overall
// parity bit into bit 6. The syndrome of a single-bit error is the
// flipped position itself, which is what makes correction a table walk.
//
// Models are pure codecs: stateless, no knowledge of addresses, wait
// states, or scrubbing. Memory (cpu.h) owns the sidecar array, the
// wait-state/scrub accounting, and the fault raising.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace eccm0::armvm {

enum class MemModelKind : std::uint8_t {
  kRaw,     ///< plain SRAM, no redundancy
  kParity,  ///< 1 parity bit per word, detect-only
  kSecded,  ///< SECDED(39,32) Hamming, correct 1 / detect 2
};
inline constexpr unsigned kNumMemModels = 3;

const char* mem_model_name(MemModelKind k);
/// Parse "raw" / "parity" / "secded"; throws std::invalid_argument on
/// anything else (the message lists the valid spellings).
MemModelKind mem_model_from_name(const std::string& name);

/// Construction-time configuration of a Memory's protection layer.
struct MemModelConfig {
  MemModelKind kind = MemModelKind::kRaw;
  /// Extra cycles charged per protected access (codeword fetch + syndrome
  /// check), priced at costmodel::InstrClass::kMemWait. Ignored for kRaw.
  unsigned wait_states = 0;
  /// Run a scrubbing pass every N protected accesses (0 = never). Only
  /// meaningful for kSecded — scrubbing *repairs* words, and only SECDED
  /// can repair; the Memory constructor rejects it elsewhere.
  std::uint64_t scrub_interval = 0;

  static MemModelConfig raw() { return {}; }
  static MemModelConfig parity(unsigned wait_states = 1) {
    return {MemModelKind::kParity, wait_states, 0};
  }
  static MemModelConfig secded(unsigned wait_states = 2,
                               std::uint64_t scrub_interval = 0) {
    return {MemModelKind::kSecded, wait_states, scrub_interval};
  }
  /// The default configuration for `kind` (raw / parity@1ws / secded@2ws).
  static MemModelConfig for_kind(MemModelKind kind,
                                 std::uint64_t scrub_interval = 0);

  friend bool operator==(const MemModelConfig&, const MemModelConfig&) =
      default;
};

/// Stateless per-word codec. One instance serves a whole Memory.
class MemoryModel {
 public:
  struct Decoded {
    std::uint32_t data = 0;   ///< corrected data word
    bool corrected = false;   ///< a single-bit error was repaired
    bool uncorrectable = false;  ///< the codeword is rotten; `data` invalid
  };

  virtual ~MemoryModel() = default;

  virtual MemModelKind kind() const = 0;
  /// Check bits stored per word (1 parity, 7 SECDED).
  virtual unsigned check_bits() const = 0;
  /// Compute the check byte for a clean data word.
  virtual std::uint8_t encode(std::uint32_t data) const = 0;
  /// Decode a (possibly corrupted) stored word + check byte.
  virtual Decoded decode(std::uint32_t data, std::uint8_t check) const = 0;
  /// Human text for the MemoryIntegrityFault this model raises.
  virtual const char* error_text() const = 0;
};

/// Factory for the protected kinds; kRaw has no model (Memory keeps a
/// null codec and the inline fast path).
std::unique_ptr<MemoryModel> make_memory_model(MemModelKind kind);

}  // namespace eccm0::armvm
