#include "armvm/program.h"

#include <stdexcept>
#include <utility>

namespace eccm0::armvm {

Program::Program(std::vector<std::uint16_t> code,
                 std::map<std::string, std::uint32_t> symbols)
    : code_(std::move(code)),
      symbols_(std::move(symbols)),
      cache_(predecode(code_)),
      threaded_(build_threaded_image(code_, cache_, symbols_)) {}

std::uint32_t Program::entry(const std::string& label) const {
  const auto it = symbols_.find(label);
  if (it == symbols_.end()) {
    throw std::out_of_range("Program: no symbol '" + label + "'");
  }
  return it->second;
}

ProgramRef make_program(std::vector<std::uint16_t> code,
                        std::map<std::string, std::uint32_t> symbols) {
  return std::make_shared<const Program>(std::move(code), std::move(symbols));
}

}  // namespace eccm0::armvm
