// The token-threaded execution engine (DecodeMode::kThreaded).
//
// Two layers:
//   Cpu::run_threaded   — the chunk runner. Same PC-validation contract
//     as the predecoded loop; additionally consults the Program's
//     ThreadedImage and, when the PC sits on a fused-block head and the
//     whole block fits in the remaining instruction budget, retires the
//     block in one call. Everything else (interior entry after a
//     snapshot restore, budget boundary, undecodable slot, control
//     flow) executes per-instruction from the predecode cache, and
//     traced runs delegate wholesale to the traced predecoded loop so
//     the rich TraceEvent stream is bit-identical by construction.
//   Cpu::run_fused_block — the superblock dispatcher. Executes the
//     fused instructions against local flag copies with NO per-
//     instruction accounting; on success applies the block's
//     precomputed cycle/histogram delta in one step, on a Fault replays
//     the static cost pairs of the instructions that retired before the
//     faulting one so the architectural state (PC, flags, stats) is
//     exactly what the per-step oracle leaves behind.
//
// Dispatch form: computed goto (&&label, the classic token-threading
// idiom) on GNU/Clang; a switch over the same handler bodies otherwise
// or when ECCM0_SWITCH_DISPATCH_ONLY is defined (CMake option
// ECCM0_SWITCH_DISPATCH — the CI portability leg). Both forms include
// exec_fused.inc, so there is exactly one copy of each handler's logic.
#include "armvm/dispatch.h"

#include <cstddef>
#include <iterator>
#include <stdexcept>
#include <string>

#include "armvm/superinst.h"

#if !defined(ECCM0_SWITCH_DISPATCH_ONLY) && \
    (defined(__GNUC__) || defined(__clang__))
#define ECCM0_USE_COMPUTED_GOTO 1
#else
#define ECCM0_USE_COMPUTED_GOTO 0
#endif

namespace eccm0::armvm {

Cpu::DecodeMode decode_mode_from_name(std::string_view name) {
  if (name == "perstep") return Cpu::DecodeMode::kPerStep;
  if (name == "predecode") return Cpu::DecodeMode::kPredecode;
  if (name == "threaded") return Cpu::DecodeMode::kThreaded;
  throw std::invalid_argument("unknown engine '" + std::string(name) +
                              "' (expected " + kEngineFlagValues + ")");
}

const char* decode_mode_name(Cpu::DecodeMode mode) {
  switch (mode) {
    case Cpu::DecodeMode::kPerStep: return "perstep";
    case Cpu::DecodeMode::kPredecode: return "predecode";
    case Cpu::DecodeMode::kThreaded: return "threaded";
  }
  return "?";
}

bool threaded_dispatch_uses_computed_goto() {
  return ECCM0_USE_COMPUTED_GOTO != 0;
}

// Every Op in isa.h declaration order — the token table of the
// computed-goto dispatcher is built from this list, and the
// static_asserts below pin it against the enum so a reordered or added
// Op fails the build here instead of mis-dispatching.
#define ECCM0_FOR_EACH_OP(X)                                                  \
  X(LslImm) X(LsrImm) X(AsrImm)                                               \
  X(LslReg) X(LsrReg) X(AsrReg) X(RorReg)                                     \
  X(AddReg) X(SubReg) X(AddImm3) X(SubImm3)                                   \
  X(MovImm) X(CmpImm) X(AddImm8) X(SubImm8)                                   \
  X(And) X(Eor) X(Adc) X(Sbc) X(Tst) X(Rsb) X(CmpReg) X(Cmn) X(Orr) X(Mul)   \
  X(Bic) X(Mvn)                                                               \
  X(AddHi) X(CmpHi) X(MovHi) X(Bx) X(Blx)                                     \
  X(LdrLit) X(LdrImm) X(StrImm) X(LdrbImm) X(StrbImm) X(LdrhImm) X(StrhImm)   \
  X(LdrReg) X(StrReg) X(LdrbReg) X(StrbReg) X(LdrhReg) X(StrhReg)             \
  X(LdrsbReg) X(LdrshReg) X(LdrSp) X(StrSp) X(AddSpImm7) X(SubSpImm7)         \
  X(AddRdSp) X(Adr) X(Push) X(Pop) X(Ldm) X(Stm)                              \
  X(BCond) X(B) X(Bl)                                                         \
  X(Sxth) X(Sxtb) X(Uxth) X(Uxtb) X(Rev) X(Rev16) X(Revsh) X(Nop) X(Bkpt)

namespace {

#define ECCM0_OP_ENTRY(name) Op::k##name,
constexpr Op kOpOrder[] = {ECCM0_FOR_EACH_OP(ECCM0_OP_ENTRY)};
#undef ECCM0_OP_ENTRY

constexpr bool op_order_consistent() {
  for (std::size_t i = 0; i < std::size(kOpOrder); ++i) {
    if (static_cast<std::size_t>(kOpOrder[i]) != i) return false;
  }
  return true;
}
static_assert(std::size(kOpOrder) == kNumOps,
              "ECCM0_FOR_EACH_OP out of sync with the Op enum");
static_assert(op_order_consistent(),
              "ECCM0_FOR_EACH_OP order out of sync with the Op enum");

[[noreturn]] void bad_fused_token() {
  throw std::logic_error("Cpu: control-flow op inside a fused block");
}

}  // namespace

void Cpu::run_fused_block(const SuperBlock& blk) {
  const FusedInstr* const code = blk.code.data();
  const std::uint32_t count = blk.count;
  std::uint32_t* const r = r_;
  // The RAM view is hoisted into locals for the whole block. Inside
  // Memory's own fast path every byte store forces the compiler to
  // reload the vector's data pointer and size (a std::uint8_t store may
  // legally alias anything, including the vector's bookkeeping); these
  // locals never have their address taken, so they stay in registers
  // across stores. Anything off the fast path — code/literal-pool
  // reads, out-of-range or misaligned accesses — falls back to the
  // canonical Cpu accessors, which raise the same typed Faults as the
  // per-step engine.
  std::uint8_t* const ram = ram_.bytes_.data();
  const std::size_t ram_size = ram_.bytes_.size();
  const auto mem_read = [&](std::uint32_t addr,
                            unsigned nbytes) -> std::uint32_t {
    const std::uint32_t off = addr - kRamBase;
    if (addr >= kRamBase && (nbytes == 1 || (addr & (nbytes - 1)) == 0) &&
        off + nbytes <= ram_size) [[likely]] {
      switch (nbytes) {
        case 1: return ram[off];
        case 2: return Memory::le16(ram + off);
        default: return Memory::le32(ram + off);
      }
    }
    return read_mem<false>(addr, nbytes);
  };
  const auto mem_write = [&](std::uint32_t addr, std::uint32_t v,
                             unsigned nbytes) {
    const std::uint32_t off = addr - kRamBase;
    if (addr >= kRamBase && (nbytes == 1 || (addr & (nbytes - 1)) == 0) &&
        off + nbytes <= ram_size) [[likely]] {
      switch (nbytes) {
        case 1: ram[off] = static_cast<std::uint8_t>(v); return;
        case 2: Memory::put_le16(ram + off, static_cast<std::uint16_t>(v));
                return;
        default: Memory::put_le32(ram + off, v); return;
      }
    }
    write_mem<false>(addr, v, nbytes);
  };
  // Flags live in locals for the whole block; written back on every
  // exit path (handlers never touch n_/z_/c_/v_ directly).
  bool ln = n_, lz = z_, lc = c_, lv = v_;
  const auto set_nzl = [&](std::uint32_t v) {
    ln = (v >> 31) != 0;
    lz = v == 0;
  };
  const auto adcl = [&](std::uint32_t a, std::uint32_t b, bool cin,
                        bool set_flags) {
    const std::uint64_t wide =
        static_cast<std::uint64_t>(a) + b + (cin ? 1 : 0);
    const auto result = static_cast<std::uint32_t>(wide);
    if (set_flags) {
      set_nzl(result);
      lc = (wide >> 32) != 0;
      lv = (~(a ^ b) & (a ^ result) & 0x80000000u) != 0;
    }
    return result;
  };
#if ECCM0_USE_COMPUTED_GOTO
  // The block cursor is the dispatcher's only loop variable: each
  // handler bumps it and jumps through the token table, and the
  // terminator entry the builder appended (token kEndOfBlockToken)
  // jumps straight to the block-exit label, so there is no count
  // compare after every instruction. Declared outside the try so the
  // fault path can recover the retired-instruction index from it.
  const FusedInstr* fp = code;
#else
  std::uint32_t j = 0;
#endif
  try {
#if ECCM0_USE_COMPUTED_GOTO
    // Token-threaded dispatch: the Op byte of the next fused
    // instruction indexes straight into the label table, so there is no
    // central dispatch branch for the host predictor to miss on. One
    // extra entry past the real Ops: the block terminator.
    static const void* const token_targets[] = {
#define ECCM0_TOKEN_ENTRY(name) &&handler_##name,
        ECCM0_FOR_EACH_OP(ECCM0_TOKEN_ENTRY)
#undef ECCM0_TOKEN_ENTRY
        &&block_done,
    };
    static_assert(sizeof(token_targets) / sizeof(token_targets[0]) ==
                  kNumOps + 1);
    goto* token_targets[static_cast<std::size_t>(fp->ins.op)];

#define ECCM0_FUSED_CASE(name) \
  handler_##name : {           \
    const FusedInstr& F = *fp;
#define ECCM0_FUSED_END \
  }                     \
  ++fp;                 \
  goto* token_targets[static_cast<std::size_t>(fp->ins.op)];
#include "armvm/exec_fused.inc"
#undef ECCM0_FUSED_CASE
#undef ECCM0_FUSED_END

  // Control-flow tokens never appear in a fused block (the builder
  // excludes them); their table entries land here.
  handler_Bx:
  handler_Blx:
  handler_BCond:
  handler_B:
  handler_Bl:
  handler_Bkpt:
    bad_fused_token();
  block_done:;
#else
    for (; j < count; ++j) {
      const FusedInstr* const fp = code + j;
      switch (fp->ins.op) {
#define ECCM0_FUSED_CASE(name) \
  case Op::k##name: {          \
    const FusedInstr& F = *fp;
#define ECCM0_FUSED_END \
  }                     \
  break;
#include "armvm/exec_fused.inc"
#undef ECCM0_FUSED_CASE
#undef ECCM0_FUSED_END
        default:
          bad_fused_token();
      }
    }
#endif
  } catch (...) {
    // Fault at fused instruction j: replay the static costs of the
    // instructions that retired before it (the faulting one contributes
    // nothing — exec() accounts after its memory accesses), sync the
    // flags, and leave the PC at the faulting instruction's
    // fallthrough, exactly as the per-step loop does before exec().
#if ECCM0_USE_COMPUTED_GOTO
    const auto j = static_cast<std::uint32_t>(fp - code);
#endif
    n_ = ln;
    z_ = lz;
    c_ = lc;
    v_ = lv;
    for (std::uint32_t k = 0; k < j; ++k) {
      for (unsigned c = 0; c < code[k].num_costs; ++c) {
        stats_.histogram.add(code[k].costs[c].cls, code[k].costs[c].cycles);
        stats_.cycles += code[k].costs[c].cycles;
      }
    }
    stats_.instructions += j;
    fused_retired_ += j;
    r_[kPC] = code[j].pc4 - 2;
    throw;
  }
  n_ = ln;
  z_ = lz;
  c_ = lc;
  v_ = lv;
  r_[kPC] = blk.end_pc;
  stats_.cycles += blk.cycles;
  for (const auto& [cls, cyc] : blk.hist) stats_.histogram.add(cls, cyc);
  fused_retired_ += count;
  ++fused_blocks_entered_;
}

std::uint64_t Cpu::run_threaded(std::uint64_t limit) {
  if (ram_.is_protected()) {
    // Protected-memory fallback: fused blocks hoist the raw RAM bytes
    // into locals and pre-batch their cycle totals, so they can neither
    // run the codec nor account wait-states. The protected predecoded
    // loop is bit-identical by construction; raw memory keeps the full
    // threaded speed.
    return run_predecoded(limit);
  }
  if (trace_ != nullptr) {
    // Traced fallback: the rich per-instruction event stream cannot be
    // batched, and the traced predecoded loop already produces it
    // bit-identically.
    return run_predecoded(limit);
  }
  const PredecodedSlot* const cache = cache_;
  const std::size_t code_halfwords = code_size_;
  const ThreadedImage& image = prog_->threaded();
  const std::int32_t* const block_at = image.block_at.data();
  const SuperBlock* const blocks = image.blocks.data();
  std::uint64_t done = 0;
  try {
    while (done < limit && !halted_) {
      const std::uint32_t pc = r_[kPC];
      if (pc == kReturnSentinel) {
        halted_ = true;
        break;
      }
      if (pc % 2 != 0) throw AlignmentFault("Cpu: odd PC", pc);
      const std::size_t idx = pc / 2;
      if (idx >= code_halfwords) {
        throw BusFault("Cpu: PC outside code", pc);
      }
      const std::int32_t blk = block_at[idx];
      if (blk >= 0) [[likely]] {
        const SuperBlock& sb = blocks[blk];
        // Enter the fused block only when the whole block fits in this
        // chunk's budget — otherwise retire per-instruction so the
        // budget trips at the engine-independent point.
        if (done + sb.count <= limit) [[likely]] {
          run_fused_block(sb);
          done += sb.count;
          continue;
        }
      }
      const PredecodedSlot& s = cache[idx];
      if (!s.valid) [[unlikely]] trap_undecodable(idx);
      r_[kPC] = pc + 2u * s.halfwords;  // default fallthrough
      exec<false>(s.ins, s.halfwords);
      ++done;
    }
  } catch (Fault& f) {
    stats_.instructions += done;
    f.attach_state(arch_state());
    throw;
  } catch (...) {
    stats_.instructions += done;
    throw;
  }
  stats_.instructions += done;
  return done;
}

}  // namespace eccm0::armvm
