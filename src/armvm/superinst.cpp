#include "armvm/superinst.h"

#include <stdexcept>

namespace eccm0::armvm {

using costmodel::InstrClass;

bool fusable(const Instr& ins, unsigned halfwords) {
  if (halfwords != 1) return false;  // BL pairs never fuse
  switch (ins.op) {
    // Control flow: one entry, one exit per block.
    case Op::kBCond:
    case Op::kB:
    case Op::kBl:
    case Op::kBx:
    case Op::kBlx:
    case Op::kBkpt:
      return false;
    // Hi-register forms may write PC (branch) or read the raw PC
    // register, which is stale inside a fused block. rm = PC reads the
    // architectural pc+4, which is a per-slot constant and fuses fine.
    case Op::kAddHi:
    case Op::kMovHi:
      return ins.rd != kPC;
    case Op::kCmpHi:
      return ins.rd != kPC && ins.rm != kPC;
    // POP {... pc} is a return.
    case Op::kPop:
      return (ins.reg_list & 0x100) == 0;
    default:
      return true;
  }
}

namespace {

unsigned popcount9(std::uint16_t reg_list) {
  unsigned n = 0;
  for (unsigned b = 0; b < 9; ++b) n += (reg_list >> b) & 1;
  return n;
}

unsigned popcount8(std::uint16_t reg_list) {
  unsigned n = 0;
  for (unsigned b = 0; b < 8; ++b) n += (reg_list >> b) & 1;
  return n;
}

}  // namespace

unsigned static_costs(const Instr& ins, InstrCost out[2]) {
  const auto one = [&](InstrClass cls, unsigned cycles) {
    out[0] = {cls, static_cast<std::uint8_t>(cycles)};
    return 1u;
  };
  const auto two = [&](InstrClass a, unsigned ca, InstrClass b, unsigned cb) {
    out[0] = {a, static_cast<std::uint8_t>(ca)};
    out[1] = {b, static_cast<std::uint8_t>(cb)};
    return 2u;
  };
  switch (ins.op) {
    case Op::kLslImm:
      return one(ins.imm == 0 ? InstrClass::kMov : InstrClass::kLsl, 1);
    case Op::kLsrImm:
    case Op::kAsrImm:
      return one(InstrClass::kLsr, 1);
    case Op::kLslReg:
      return one(InstrClass::kLsl, 1);
    case Op::kLsrReg:
    case Op::kAsrReg:
    case Op::kRorReg:
      return one(InstrClass::kLsr, 1);
    case Op::kAddReg:
    case Op::kSubReg:
    case Op::kAddImm3:
    case Op::kSubImm3:
    case Op::kCmpImm:
    case Op::kAddImm8:
    case Op::kSubImm8:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsb:
    case Op::kCmpReg:
    case Op::kCmn:
    case Op::kAddHi:
    case Op::kCmpHi:
    case Op::kAddSpImm7:
    case Op::kSubSpImm7:
    case Op::kAddRdSp:
    case Op::kAdr:
      return one(InstrClass::kAdd, 1);
    case Op::kAnd:
    case Op::kEor:
    case Op::kTst:
    case Op::kOrr:
    case Op::kBic:
    case Op::kMvn:
      return one(InstrClass::kEor, 1);
    case Op::kMul:
      return one(InstrClass::kMul, 1);
    case Op::kMovImm:
    case Op::kMovHi:
    case Op::kSxth:
    case Op::kSxtb:
    case Op::kUxth:
    case Op::kUxtb:
    case Op::kRev:
    case Op::kRev16:
    case Op::kRevsh:
      return one(InstrClass::kMov, 1);
    case Op::kLdrLit:
    case Op::kLdrImm:
    case Op::kLdrbImm:
    case Op::kLdrhImm:
    case Op::kLdrReg:
    case Op::kLdrbReg:
    case Op::kLdrhReg:
    case Op::kLdrsbReg:
    case Op::kLdrshReg:
    case Op::kLdrSp:
      return one(InstrClass::kLdr, 2);
    case Op::kStrImm:
    case Op::kStrbImm:
    case Op::kStrhImm:
    case Op::kStrReg:
    case Op::kStrbReg:
    case Op::kStrhReg:
    case Op::kStrSp:
      return one(InstrClass::kStr, 2);
    case Op::kPush:
      return two(InstrClass::kStr, popcount9(ins.reg_list),
                 InstrClass::kOther, 1);
    case Op::kPop:  // PC never in the list (not fusable otherwise)
      return two(InstrClass::kLdr, popcount9(ins.reg_list),
                 InstrClass::kOther, 1);
    case Op::kStm:
      return two(InstrClass::kStr, popcount8(ins.reg_list),
                 InstrClass::kOther, 1);
    case Op::kLdm:
      return two(InstrClass::kLdr, popcount8(ins.reg_list),
                 InstrClass::kOther, 1);
    case Op::kNop:
      return one(InstrClass::kOther, 1);
    default:
      throw std::logic_error("static_costs: non-fusable op");
  }
}

ThreadedImage build_threaded_image(
    const std::vector<std::uint16_t>& code,
    const std::vector<PredecodedSlot>& cache,
    const std::map<std::string, std::uint32_t>& symbols) {
  (void)code;
  const std::size_t n = cache.size();
  ThreadedImage img;
  img.block_at.assign(n, -1);

  // Split points: any halfword execution can branch to. Labels cover the
  // loop heads and call entries the assembler knows about; static branch
  // targets cover everything B/BCond/BL can reach. BX/BLX targets are
  // dynamic, but they can only land on a label or a computed address a
  // branch already points at in this ISA's assembled images — and an
  // interior entry is still correct, just unfused (block handlers only
  // fire at heads).
  std::vector<std::uint8_t> split(n, 0);
  for (const auto& [name, addr] : symbols) {
    const std::size_t idx = addr / 2;
    if (idx < n) split[idx] = 1;
  }
  for (std::size_t idx = 0; idx < n;) {
    const PredecodedSlot& s = cache[idx];
    if (!s.valid) {
      ++idx;
      continue;
    }
    ++img.valid_slots;
    if (s.ins.op == Op::kB || s.ins.op == Op::kBCond || s.ins.op == Op::kBl) {
      const std::int64_t target =
          static_cast<std::int64_t>(2 * idx) + 4 + s.ins.imm;
      if (target >= 0 && target % 2 == 0 &&
          static_cast<std::uint64_t>(target / 2) < n) {
        split[static_cast<std::size_t>(target / 2)] = 1;
      }
    }
    idx += s.halfwords;
  }

  std::size_t idx = 0;
  while (idx < n) {
    if (!cache[idx].valid) {
      ++idx;
      continue;
    }
    if (!fusable(cache[idx].ins, cache[idx].halfwords)) {
      idx += cache[idx].halfwords;
      continue;
    }
    // Maximal fusable run: extend while the next slot fuses and is not a
    // branch target / label (the run head itself may be one — that is
    // how a fused loop body gets re-entered every iteration).
    std::size_t j = idx;
    while (j < n && cache[j].valid && cache[j].halfwords == 1 &&
           fusable(cache[j].ins, 1) && (j == idx || !split[j])) {
      ++j;
    }
    const auto count = static_cast<std::uint32_t>(j - idx);
    if (count >= kMinFuseLength) {
      SuperBlock b;
      b.head_idx = static_cast<std::uint32_t>(idx);
      b.count = count;
      b.end_pc = static_cast<std::uint32_t>(2 * j);
      std::uint64_t by_class[static_cast<int>(InstrClass::kCount)] = {};
      b.code.reserve(count + 1);
      for (std::size_t k = idx; k < j; ++k) {
        FusedInstr f;
        f.ins = cache[k].ins;
        f.pc4 = static_cast<std::uint32_t>(2 * k + 4);
        f.num_costs = static_cast<std::uint8_t>(static_costs(f.ins, f.costs));
        for (unsigned c = 0; c < f.num_costs; ++c) {
          by_class[static_cast<int>(f.costs[c].cls)] += f.costs[c].cycles;
          b.cycles += f.costs[c].cycles;
        }
        b.code.push_back(f);
      }
      FusedInstr endf{};
      endf.ins.op = static_cast<Op>(kEndOfBlockToken);
      b.code.push_back(endf);
      for (int c = 0; c < static_cast<int>(InstrClass::kCount); ++c) {
        if (by_class[c] != 0) {
          b.hist.emplace_back(static_cast<InstrClass>(c), by_class[c]);
        }
      }
      img.block_at[idx] = static_cast<std::int32_t>(img.blocks.size());
      img.fused_slots += count;
      img.blocks.push_back(std::move(b));
    }
    idx = j;
  }
  return img;
}

bool is_block_interior(const ThreadedImage& image, std::size_t idx) {
  for (const SuperBlock& b : image.blocks) {
    if (idx > b.head_idx && idx < b.head_idx + b.count) return true;
  }
  return false;
}

}  // namespace eccm0::armvm
