#include "armvm/memmodel.h"

#include <array>
#include <bit>
#include <stdexcept>

namespace eccm0::armvm {
namespace {

// ---- SECDED(39,32) position tables -----------------------------------
//
// Codeword positions 1..38; powers of two hold check bits, everything
// else holds data bits in ascending order. kDataPos maps data bit ->
// position, kPosToData maps position -> data bit (0xFF for check/none).

constexpr bool is_pow2(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr std::array<std::uint8_t, 32> kDataPos = [] {
  std::array<std::uint8_t, 32> p{};
  unsigned n = 0;
  for (unsigned pos = 1; n < 32; ++pos) {
    if (!is_pow2(pos)) p[n++] = static_cast<std::uint8_t>(pos);
  }
  return p;
}();
static_assert(kDataPos[0] == 3 && kDataPos[31] == 38);

constexpr std::array<std::uint8_t, 39> kPosToData = [] {
  std::array<std::uint8_t, 39> m{};
  for (auto& e : m) e = 0xFF;
  for (unsigned j = 0; j < 32; ++j) m[kDataPos[j]] = static_cast<std::uint8_t>(j);
  return m;
}();

/// XOR of codeword positions of all set data bits. Bit i of the result
/// is exactly Hamming check bit c_i (parity over positions with bit i
/// set), so this one fold yields all six check bits at once.
constexpr unsigned data_syndrome(std::uint32_t data) {
  unsigned syn = 0;
  while (data != 0) {
    const int j = std::countr_zero(data);
    syn ^= kDataPos[j];
    data &= data - 1;
  }
  return syn;
}

class ParityModel final : public MemoryModel {
 public:
  MemModelKind kind() const override { return MemModelKind::kParity; }
  unsigned check_bits() const override { return 1; }
  std::uint8_t encode(std::uint32_t data) const override {
    return static_cast<std::uint8_t>(std::popcount(data) & 1);
  }
  Decoded decode(std::uint32_t data, std::uint8_t check) const override {
    Decoded d;
    d.data = data;
    d.uncorrectable = ((std::popcount(data) ^ check) & 1) != 0;
    return d;
  }
  const char* error_text() const override {
    return "Memory: parity error (detect-only model)";
  }
};

class SecdedModel final : public MemoryModel {
 public:
  MemModelKind kind() const override { return MemModelKind::kSecded; }
  unsigned check_bits() const override { return 7; }

  std::uint8_t encode(std::uint32_t data) const override {
    const unsigned c = data_syndrome(data) & 0x3F;
    const unsigned parity =
        (std::popcount(data) + std::popcount(c)) & 1;  // over all 38 bits
    return static_cast<std::uint8_t>(c | (parity << 6));
  }

  Decoded decode(std::uint32_t data, std::uint8_t check) const override {
    Decoded d;
    d.data = data;
    const unsigned stored_c = check & 0x3F;
    const unsigned stored_p = (check >> 6) & 1;
    // Syndrome: XOR of positions of every set bit in the received
    // 38-bit codeword. For data bits that is data_syndrome(); check bit
    // i contributes its own position 2^i, so the check field XORs in
    // verbatim. Zero syndrome = clean Hamming codeword.
    const unsigned syn = data_syndrome(data) ^ stored_c;
    const unsigned total_parity =
        (std::popcount(data) + std::popcount(stored_c) + stored_p) & 1;
    if (syn == 0 && total_parity == 0) return d;  // clean
    if (total_parity == 1) {
      // Odd overall parity: exactly one bit flipped (or an odd >1 burst,
      // which SECDED cannot distinguish — the standard decode). The
      // syndrome is the flipped position.
      d.corrected = true;
      if (syn == 0) return d;             // the overall parity bit itself
      if (is_pow2(syn) && syn <= 32) return d;  // a check bit; data intact
      if (syn <= 38 && kPosToData[syn] != 0xFF) {
        d.data = data ^ (std::uint32_t{1} << kPosToData[syn]);
        return d;
      }
      // Syndrome points outside the codeword: not a single-bit error.
      d.corrected = false;
      d.uncorrectable = true;
      return d;
    }
    // Even parity with nonzero syndrome: double-bit error. Detect only.
    d.uncorrectable = true;
    return d;
  }

  const char* error_text() const override {
    return "Memory: uncorrectable double-bit error (SECDED)";
  }
};

}  // namespace

const char* mem_model_name(MemModelKind k) {
  switch (k) {
    case MemModelKind::kRaw: return "raw";
    case MemModelKind::kParity: return "parity";
    case MemModelKind::kSecded: return "secded";
  }
  return "unknown";
}

MemModelKind mem_model_from_name(const std::string& name) {
  if (name == "raw") return MemModelKind::kRaw;
  if (name == "parity") return MemModelKind::kParity;
  if (name == "secded") return MemModelKind::kSecded;
  throw std::invalid_argument("unknown memory model '" + name +
                              "' (expected raw, parity or secded)");
}

MemModelConfig MemModelConfig::for_kind(MemModelKind kind,
                                        std::uint64_t scrub_interval) {
  switch (kind) {
    case MemModelKind::kRaw: return raw();
    case MemModelKind::kParity: return parity();
    case MemModelKind::kSecded: return secded(2, scrub_interval);
  }
  return raw();
}

std::unique_ptr<MemoryModel> make_memory_model(MemModelKind kind) {
  switch (kind) {
    case MemModelKind::kRaw: return nullptr;
    case MemModelKind::kParity: return std::make_unique<ParityModel>();
    case MemModelKind::kSecded: return std::make_unique<SecdedModel>();
  }
  return nullptr;
}

}  // namespace eccm0::armvm
