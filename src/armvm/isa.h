// ARMv6-M Thumb-1 subset: decoded instruction representation.
//
// The VM models the Cortex-M0+ the paper measures: 16-bit Thumb
// instructions (plus the 32-bit BL pair), thirteen general registers with
// the lo (r0-r7) / hi (r8-r12) split that constrains how many field words
// an implementation can keep register-resident — the architectural fact
// the paper's "fixed registers" method is built around.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace eccm0::armvm {

inline constexpr unsigned kNumRegs = 16;
inline constexpr unsigned kSP = 13;
inline constexpr unsigned kLR = 14;
inline constexpr unsigned kPC = 15;

/// Semantic operation of a decoded instruction.
enum class Op : std::uint8_t {
  // Shifts (immediate and register forms share the Op; form is implied by
  // the operand kinds recorded in Instr).
  kLslImm, kLsrImm, kAsrImm,
  kLslReg, kLsrReg, kAsrReg, kRorReg,
  // Add/sub three-operand
  kAddReg, kSubReg, kAddImm3, kSubImm3,
  // Immediate 8-bit forms
  kMovImm, kCmpImm, kAddImm8, kSubImm8,
  // Data processing (register)
  kAnd, kEor, kAdc, kSbc, kTst, kRsb, kCmpReg, kCmn, kOrr, kMul, kBic, kMvn,
  // Hi-register operations (no flags)
  kAddHi, kCmpHi, kMovHi, kBx, kBlx,
  // Memory
  kLdrLit,                     // LDR Rt, [PC, #imm]
  kLdrImm, kStrImm,            // word, imm5*4 offset
  kLdrbImm, kStrbImm,          // byte, imm5 offset
  kLdrhImm, kStrhImm,          // halfword, imm5*2 offset
  kLdrReg, kStrReg, kLdrbReg, kStrbReg, kLdrhReg, kStrhReg,
  kLdrsbReg, kLdrshReg,  // sign-extending loads (register offset only)
  kLdrSp, kStrSp,              // SP-relative word
  kAddSpImm7, kSubSpImm7,      // adjust SP
  kAddRdSp, kAdr,              // Rd = SP + imm8*4 / Rd = PC-aligned + imm8*4
  kPush, kPop, kLdm, kStm,
  // Control flow
  kBCond, kB, kBl,
  // Extend / byte-reverse (ARMv6-M data ops)
  kSxth, kSxtb, kUxth, kUxtb, kRev, kRev16, kRevsh,
  kNop, kBkpt,
};

/// Number of distinct Op values (kBkpt is last). Sizes per-opcode tables
/// such as the decode-cache opcode-mix statistics in bench_vm_throughput.
inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kBkpt) + 1;

/// Condition codes for kBCond.
enum class Cond : std::uint8_t {
  kEq = 0, kNe, kCs, kCc, kMi, kPl, kVs, kVc, kHi, kLs, kGe, kLt, kGt, kLe,
};

/// A decoded instruction. Fields are used according to `op`:
///   rd/rn/rm — registers; imm — immediate (pre-scaled to bytes where the
///   encoding scales); reg_list — LDM/STM/PUSH/POP bitmask (bit 8 = LR for
///   PUSH, PC for POP); cond — condition for kBCond; imm is the *signed*
///   branch offset in bytes for branches (relative to the instruction
///   address + 4).
struct Instr {
  Op op = Op::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rn = 0;
  std::uint8_t rm = 0;
  std::int32_t imm = 0;
  std::uint16_t reg_list = 0;
  Cond cond = Cond::kEq;

  friend bool operator==(const Instr&, const Instr&) = default;
};

const char* op_name(Op op);
const char* cond_name(Cond c);
/// "r0".."r12", "sp", "lr", "pc".
std::string reg_name(unsigned r);

}  // namespace eccm0::armvm
