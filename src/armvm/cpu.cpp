#include "armvm/cpu.h"

#include <algorithm>
#include <stdexcept>

#include "armvm/codec.h"
#include "armvm/isa.h"

// Force full inlining of the interpreter hot loop (exec + memory fast
// paths collapse into run_predecoded): ~20% more simulated MIPS on GCC.
#if defined(__GNUC__) || defined(__clang__)
#define ECCM0_FLATTEN __attribute__((flatten))
#else
#define ECCM0_FLATTEN
#endif

namespace eccm0::armvm {

using costmodel::InstrClass;

Memory::Memory(std::size_t size, const MemModelConfig& config)
    : bytes_(size, 0), config_(config) {
  if (config.kind == MemModelKind::kRaw) {
    if (config.scrub_interval != 0) {
      throw std::invalid_argument(
          "Memory: scrub interval requires the SECDED model (raw memory has "
          "nothing to scrub)");
    }
    config_.wait_states = 0;
    fast_size_ = size;
    return;
  }
  if (config.kind != MemModelKind::kSecded && config.scrub_interval != 0) {
    throw std::invalid_argument(
        "Memory: scrub interval requires the SECDED model (detect-only "
        "models cannot repair words)");
  }
  if (size % 4 != 0) {
    throw std::invalid_argument(
        "Memory: protected RAM size must be a multiple of 4");
  }
  model_ = make_memory_model(config.kind);
  check_.assign(size / 4, model_->encode(0));
  fast_size_ = 0;  // every access goes through the codec slow path
}

// Slow paths: reached for unaligned or out-of-range addresses, and for
// EVERY access on protected memory (fast_size_ == 0 diverts the inline
// fast paths here). They keep the original check order so the raised
// fault is unchanged: alignment faults on an in-principle-unaligned
// address are reported before range, and both before any codeword
// decode (the bus rejects the access before the SRAM array is read).
std::size_t Memory::index(std::uint32_t addr, std::size_t bytes) const {
  if (addr < kRamBase || addr - kRamBase + bytes > bytes_.size()) {
    throw BusFault("Memory: access outside RAM at " + std::to_string(addr),
                   addr);
  }
  return addr - kRamBase;
}

std::uint32_t Memory::decode_word(std::size_t word, std::uint32_t addr) const {
  const MemoryModel::Decoded d =
      model_->decode(le32(&bytes_[4 * word]), check_[word]);
  if (d.uncorrectable) {
    throw MemoryIntegrityFault(
        std::string(model_->error_text()) + " at " + std::to_string(addr),
        addr);
  }
  if (d.corrected) ++corrections_;
  return d.data;
}

void Memory::encode_word(std::size_t word, std::uint32_t data) {
  put_le32(&bytes_[4 * word], data);
  check_[word] = model_->encode(data);
}

void Memory::charge_access() const {
  pending_wait_cycles_ += config_.wait_states;
  ++protected_accesses_;
  if (config_.scrub_interval != 0 &&
      ++accesses_since_scrub_ >= config_.scrub_interval) {
    accesses_since_scrub_ = 0;
    // Logically const: scrubbing repairs the *storage representation* of
    // words without changing any value a load can observe (uncorrectable
    // words throw, from scrub and from direct access alike).
    const_cast<Memory*>(this)->scrub();
  }
}

void Memory::scrub() {
  if (model_ == nullptr) return;
  const std::size_t words = bytes_.size() / 4;
  for (std::size_t w = 0; w < words; ++w) {
    const MemoryModel::Decoded d =
        model_->decode(le32(&bytes_[4 * w]), check_[w]);
    if (d.uncorrectable) {
      const auto addr = kRamBase + static_cast<std::uint32_t>(4 * w);
      throw MemoryIntegrityFault(std::string(model_->error_text()) +
                                     " at " + std::to_string(addr) +
                                     " (scrub)",
                                 addr);
    }
    if (d.corrected) {
      encode_word(w, d.data);
      ++scrub_corrections_;
    }
  }
  ++scrub_passes_;
  accesses_since_scrub_ = 0;
  pending_wait_cycles_ += config_.wait_states * static_cast<std::uint32_t>(words);
}

std::uint8_t Memory::load8_slow(std::uint32_t addr) const {
  const std::size_t i = index(addr, 1);
  if (model_ == nullptr) return bytes_[i];
  const std::uint32_t w = decode_word(i / 4, addr);
  charge_access();
  return static_cast<std::uint8_t>(w >> (8 * (i % 4)));
}

std::uint16_t Memory::load16_slow(std::uint32_t addr) const {
  if (addr & 1) throw AlignmentFault("Memory: unaligned halfword load", addr);
  const std::size_t i = index(addr, 2);
  if (model_ == nullptr) {
    return static_cast<std::uint16_t>(bytes_[i] | (bytes_[i + 1] << 8));
  }
  const std::uint32_t w = decode_word(i / 4, addr);
  charge_access();
  return static_cast<std::uint16_t>(w >> (8 * (i % 4)));
}

std::uint32_t Memory::load32_slow(std::uint32_t addr) const {
  if (addr & 3) throw AlignmentFault("Memory: unaligned word load", addr);
  const std::size_t i = index(addr, 4);
  if (model_ == nullptr) {
    return static_cast<std::uint32_t>(bytes_[i]) |
           (static_cast<std::uint32_t>(bytes_[i + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes_[i + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes_[i + 3]) << 24);
  }
  const std::uint32_t w = decode_word(i / 4, addr);
  charge_access();
  return w;
}

void Memory::store8_slow(std::uint32_t addr, std::uint8_t v) {
  const std::size_t i = index(addr, 1);
  if (model_ == nullptr) {
    bytes_[i] = v;
    return;
  }
  // Sub-word store = read-modify-write of the codeword; decoding first
  // means a store into a rotten word faults rather than laundering it.
  const std::uint32_t shift = 8 * static_cast<std::uint32_t>(i % 4);
  const std::uint32_t old = decode_word(i / 4, addr);
  encode_word(i / 4,
              (old & ~(0xFFu << shift)) | (std::uint32_t{v} << shift));
  charge_access();
}

void Memory::store16_slow(std::uint32_t addr, std::uint16_t v) {
  if (addr & 1) throw AlignmentFault("Memory: unaligned halfword store", addr);
  const std::size_t i = index(addr, 2);
  if (model_ == nullptr) {
    bytes_[i] = static_cast<std::uint8_t>(v);
    bytes_[i + 1] = static_cast<std::uint8_t>(v >> 8);
    return;
  }
  const std::uint32_t shift = 8 * static_cast<std::uint32_t>(i % 4);
  const std::uint32_t old = decode_word(i / 4, addr);
  encode_word(i / 4,
              (old & ~(0xFFFFu << shift)) | (std::uint32_t{v} << shift));
  charge_access();
}

void Memory::store32_slow(std::uint32_t addr, std::uint32_t v) {
  if (addr & 3) throw AlignmentFault("Memory: unaligned word store", addr);
  const std::size_t i = index(addr, 4);
  if (model_ == nullptr) {
    bytes_[i] = static_cast<std::uint8_t>(v);
    bytes_[i + 1] = static_cast<std::uint8_t>(v >> 8);
    bytes_[i + 2] = static_cast<std::uint8_t>(v >> 16);
    bytes_[i + 3] = static_cast<std::uint8_t>(v >> 24);
    return;
  }
  // Full-word overwrite: fresh codeword, the stale one is irrelevant.
  encode_word(i / 4, v);
  charge_access();
}

std::uint32_t Memory::peek32(std::uint32_t addr) const {
  if (addr & 3) throw AlignmentFault("Memory: unaligned word load", addr);
  const std::size_t i = index(addr, 4);
  if (model_ == nullptr) return le32(&bytes_[i]);
  return decode_word(i / 4, addr);
}

void Memory::poke32(std::uint32_t addr, std::uint32_t v) {
  if (addr & 3) throw AlignmentFault("Memory: unaligned word store", addr);
  const std::size_t i = index(addr, 4);
  if (model_ == nullptr) {
    put_le32(&bytes_[i], v);
    return;
  }
  encode_word(i / 4, v);
}

void Memory::poke16(std::uint32_t addr, std::uint16_t v) {
  if (addr & 1) throw AlignmentFault("Memory: unaligned halfword store", addr);
  const std::size_t i = index(addr, 2);
  if (model_ == nullptr) {
    put_le16(&bytes_[i], v);
    return;
  }
  const std::uint32_t shift = 8 * static_cast<std::uint32_t>(i % 4);
  const std::uint32_t old = decode_word(i / 4, addr);
  encode_word(i / 4,
              (old & ~(0xFFFFu << shift)) | (std::uint32_t{v} << shift));
}

void Memory::set_bytes(std::span<const std::uint8_t> image) {
  if (image.size() != bytes_.size()) {
    throw std::invalid_argument("Memory::set_bytes: size mismatch");
  }
  std::copy(image.begin(), image.end(), bytes_.begin());
  if (model_ != nullptr) {
    // The image is the logical content; re-encode clean check bits.
    for (std::size_t w = 0; w < check_.size(); ++w) {
      check_[w] = model_->encode(le32(&bytes_[4 * w]));
    }
  }
}

void Memory::restore_protection(std::span<const std::uint8_t> check,
                                std::uint64_t accesses_since_scrub) {
  if (model_ == nullptr) {
    if (!check.empty()) {
      throw std::invalid_argument(
          "Memory::restore_protection: raw memory has no check bits");
    }
    return;
  }
  if (check.size() != check_.size()) {
    throw std::invalid_argument(
        "Memory::restore_protection: check-bit size mismatch");
  }
  std::copy(check.begin(), check.end(), check_.begin());
  accesses_since_scrub_ = accesses_since_scrub;
  pending_wait_cycles_ = 0;  // never nonzero at a legal snapshot point
}

void Memory::flip_storage_bit(std::uint32_t word, unsigned bit) {
  if (word >= bytes_.size() / 4) {
    throw std::out_of_range("Memory::flip_storage_bit: word out of range");
  }
  if (bit < 32) {
    bytes_[4 * word + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    return;
  }
  if (model_ == nullptr || bit >= storage_bits_per_word()) {
    throw std::out_of_range("Memory::flip_storage_bit: bit out of range");
  }
  check_[word] ^= static_cast<std::uint8_t>(1u << (bit - 32));
}

void Memory::write_words(std::uint32_t addr,
                         std::span<const std::uint32_t> w) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    poke32(addr + static_cast<std::uint32_t>(4 * i), w[i]);
  }
}

std::vector<std::uint32_t> Memory::read_words(std::uint32_t addr,
                                              std::size_t count) const {
  std::vector<std::uint32_t> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = peek32(addr + static_cast<std::uint32_t>(4 * i));
  }
  return out;
}

Cpu::Cpu(ProgramRef prog, Memory& ram, DecodeMode mode)
    : prog_(std::move(prog)),
      code_(prog_->code().data()),
      code_size_(prog_->code().size()),
      cache_(prog_->cache().data()),
      ram_(ram),
      mode_(mode) {
  r_[kSP] = kRamBase + static_cast<std::uint32_t>(ram_.size());
}

Cpu::Cpu(std::vector<std::uint16_t> code, Memory& ram, DecodeMode mode)
    : Cpu(make_program(std::move(code)), ram, mode) {}

void Cpu::trap_undecodable(std::size_t idx) const {
  // Re-run the fresh decoder so the caller sees the exact error a
  // per-step interpreter would have raised at this PC.
  (void)decode(prog_->code(), idx);
  throw std::logic_error("Cpu: predecode-invalid slot decoded cleanly");
}

void Cpu::set_nz(std::uint32_t v) {
  n_ = (v >> 31) != 0;
  z_ = v == 0;
}

std::uint32_t Cpu::add_with_carry(std::uint32_t a, std::uint32_t b, bool cin,
                                  bool set_flags) {
  const std::uint64_t wide =
      static_cast<std::uint64_t>(a) + b + (cin ? 1 : 0);
  const auto result = static_cast<std::uint32_t>(wide);
  if (set_flags) {
    set_nz(result);
    c_ = (wide >> 32) != 0;
    v_ = (~(a ^ b) & (a ^ result) & 0x80000000u) != 0;
  }
  return result;
}

ArchState Cpu::arch_state() const {
  ArchState s;
  for (unsigned i = 0; i < kNumRegs; ++i) s.r[i] = r_[i];
  s.n = n_;
  s.z = z_;
  s.c = c_;
  s.v = v_;
  s.instructions = stats_.instructions;
  s.cycles = stats_.cycles;
  return s;
}

void Cpu::set_arch_state(const ArchState& s) {
  for (unsigned i = 0; i < kNumRegs; ++i) r_[i] = s.r[i];
  n_ = s.n;
  z_ = s.z;
  c_ = s.c;
  v_ = s.v;
}

MachineSnapshot Cpu::snapshot() const {
  MachineSnapshot s;
  s.arch = arch_state();
  s.stats = stats_;
  s.halted = halted_;
  const auto ram = ram_.bytes();
  s.ram.assign(ram.begin(), ram.end());
  const auto check = ram_.check_bytes();
  s.check.assign(check.begin(), check.end());
  s.mem_accesses = ram_.accesses_since_scrub();
  return s;
}

void Cpu::restore(const MachineSnapshot& s) {
  set_arch_state(s.arch);
  stats_ = s.stats;
  halted_ = s.halted;
  // set_bytes re-encodes clean check bits from the logical image;
  // restore_protection then overlays the snapshot's exact sidecar, so a
  // word that held a latent bit error at snapshot time is restored
  // rotten, not spuriously "corrected".
  ram_.set_bytes(s.ram);
  ram_.restore_protection(s.check, s.mem_accesses);
}

void Cpu::exec_traced(std::uint32_t pc, const Instr& ins, unsigned halfwords) {
  ev_.cycle = stats_.cycles;
  ev_.pc = pc;
  ev_.ins = ins;
  ev_.num_costs = 0;
  ev_.num_accesses = 0;
  exec<true>(ins, halfwords);
  // Drain the wait-states this instruction's protected accesses accrued
  // as one batched kMemWait cost entry, INSIDE the event: traced streams
  // stay bit-identical across engines, and ev_.cycles() still equals the
  // instruction's true cycle cost.
  if (const std::uint32_t w = ram_.take_pending_wait_cycles(); w != 0) {
    account<true>(InstrClass::kMemWait, w);
  }
  ev_.next_pc = r_[kPC];
  trace_->on_retire(ev_);
}

bool Cpu::step() {
  try {
    return step_impl();
  } catch (Fault& f) {
    f.attach_state(arch_state());
    throw;
  }
}

bool Cpu::step_impl() {
  if (halted_) return false;
  const std::uint32_t pc = r_[kPC];
  if (pc == kReturnSentinel) {
    halted_ = true;
    return false;
  }
  if (pc % 2 != 0) throw AlignmentFault("Cpu: odd PC", pc);
  const std::size_t idx = pc / 2;
  if (idx >= code_size_) throw BusFault("Cpu: PC outside code", pc);
  // kThreaded steps exactly like kPredecode: fusion only kicks in inside
  // the bulk runner, single-stepping is always per-instruction.
  if (mode_ != DecodeMode::kPerStep) [[likely]] {
    const PredecodedSlot& s = cache_[idx];
    if (!s.valid) [[unlikely]] trap_undecodable(idx);
    r_[kPC] = pc + 2u * s.halfwords;  // default fallthrough
    if (trace_ == nullptr) [[likely]] {
      exec<false>(s.ins, s.halfwords);
    } else {
      exec_traced(pc, s.ins, s.halfwords);
    }
  } else {
    const Decoded d = decode(prog_->code(), idx);
    r_[kPC] = pc + 2 * d.halfwords;  // default fallthrough
    if (trace_ == nullptr) [[likely]] {
      exec<false>(d.ins, d.halfwords);
    } else {
      exec_traced(pc, d.ins, d.halfwords);
    }
  }
  // Untraced protected memory drains its wait-states here (traced runs
  // already drained inside exec_traced, so this reads zero). Raw memory
  // never accrues any: the load folds to a compare against 0.
  if (const std::uint32_t w = ram_.take_pending_wait_cycles(); w != 0)
      [[unlikely]] {
    account<false>(InstrClass::kMemWait, w);
  }
  ++stats_.instructions;
  return !halted_;
}

std::uint64_t Cpu::run_predecoded(std::uint64_t limit) {
  // Select the loop instantiation ONCE per chunk: the untraced/raw
  // variant contains no tracing or wait-state code at all, so an idle
  // sink pointer or an unprotected Memory costs the hot path nothing.
  // (Traced runs drain wait-states inside exec_traced, so the traced
  // loop needs no kProt variant.)
  if (trace_ != nullptr) return run_predecoded_impl<true, false>(limit);
  return ram_.is_protected() ? run_predecoded_impl<false, true>(limit)
                             : run_predecoded_impl<false, false>(limit);
}

template <bool kTraced, bool kProt>
ECCM0_FLATTEN std::uint64_t Cpu::run_predecoded_impl(std::uint64_t limit) {
  // Tight inner loop of the pre-decoded engine: no decode, no budget
  // check, and the retired-instruction counter is carried in a register
  // and flushed once per chunk (also on the exception path, so stats_
  // reflect exactly the instructions that retired before a fault — the
  // same state a step-at-a-time loop leaves behind).
  const PredecodedSlot* const cache = cache_;
  const std::size_t code_halfwords = code_size_;
  std::uint64_t done = 0;
  try {
    while (done < limit && !halted_) {
      const std::uint32_t pc = r_[kPC];
      if (pc == kReturnSentinel) {
        halted_ = true;
        break;
      }
      if (pc % 2 != 0) throw AlignmentFault("Cpu: odd PC", pc);
      const std::size_t idx = pc / 2;
      if (idx >= code_halfwords) {
        throw BusFault("Cpu: PC outside code", pc);
      }
      const PredecodedSlot& s = cache[idx];
      if (!s.valid) [[unlikely]] trap_undecodable(idx);
      r_[kPC] = pc + 2u * s.halfwords;  // default fallthrough
      if constexpr (kTraced) {
        exec_traced(pc, s.ins, s.halfwords);
      } else {
        exec<false>(s.ins, s.halfwords);
        if constexpr (kProt) {
          if (const std::uint32_t w = ram_.take_pending_wait_cycles(); w != 0) {
            account<false>(InstrClass::kMemWait, w);
          }
        }
      }
      ++done;
    }
  } catch (Fault& f) {
    // Flush the retired-count first so the state snapshot matches what a
    // step-at-a-time loop would have left behind at the same fault.
    stats_.instructions += done;
    f.attach_state(arch_state());
    throw;
  } catch (...) {
    stats_.instructions += done;
    throw;
  }
  stats_.instructions += done;
  return done;
}

RunStats Cpu::call(std::uint32_t entry,
                   std::initializer_list<std::uint32_t> args,
                   std::uint64_t max_instructions) {
  unsigned n = 0;
  for (std::uint32_t a : args) {
    if (n > 3) throw std::invalid_argument("Cpu::call: more than 4 args");
    r_[n++] = a;
  }
  r_[kLR] = kReturnSentinel;
  r_[kPC] = entry;
  halted_ = false;
  return run(max_instructions);
}

RunStats Cpu::run(std::uint64_t max_instructions) {
  const RunStats before = stats_;
  // Run in chunks: the instruction-budget check is hoisted out of the
  // per-instruction path and re-established every chunk. Chunks are
  // sized so that exactly max_instructions + 1 instructions can retire
  // before the budget trips — the same point at which a
  // check-every-step loop would have thrown. The threaded engine
  // additionally never enters a fused block whose retirement count
  // would overrun the chunk, so the trip point is engine-independent.
  constexpr std::uint64_t kBudgetCheckInterval = 16 * 1024;
  while (!halted_) {
    const std::uint64_t executed = stats_.instructions - before.instructions;
    if (executed > max_instructions) {
      BudgetFault f("Cpu::call: instruction budget exceeded", r_[kPC]);
      f.attach_state(arch_state());
      throw f;
    }
    std::uint64_t chunk = max_instructions - executed + 1;
    if (chunk > kBudgetCheckInterval) chunk = kBudgetCheckInterval;
    switch (mode_) {
      case DecodeMode::kPredecode:
        run_predecoded(chunk);
        break;
      case DecodeMode::kThreaded:
        run_threaded(chunk);
        break;
      case DecodeMode::kPerStep:
        for (std::uint64_t i = 0; i < chunk && step(); ++i) {
        }
        break;
    }
  }
  RunStats delta;
  delta.instructions = stats_.instructions - before.instructions;
  delta.cycles = stats_.cycles - before.cycles;
  delta.histogram = stats_.histogram;
  for (int i = 0; i < static_cast<int>(InstrClass::kCount); ++i) {
    delta.histogram.cycles[i] -= before.histogram.cycles[i];
  }
  return delta;
}

template <bool kTraced>
void Cpu::exec(const Instr& i, unsigned halfwords) {
  const std::uint32_t pc4 =
      r_[kPC] - 2 * halfwords + 4;  // instruction address + 4
  auto branch_to = [&](std::uint32_t target) {
    if (target == kReturnSentinel) {
      halted_ = true;
      r_[kPC] = kReturnSentinel;
      return;
    }
    r_[kPC] = target & ~1u;
  };

  switch (i.op) {
    case Op::kLslImm:
    case Op::kLsrImm:
    case Op::kAsrImm: {
      const std::uint32_t v = r_[i.rm];
      std::uint32_t res;
      unsigned amount = static_cast<unsigned>(i.imm);
      if (i.op == Op::kLslImm) {
        res = amount == 0 ? v : (v << amount);
        if (amount != 0) c_ = (v >> (32 - amount)) & 1;
      } else if (i.op == Op::kLsrImm) {
        if (amount == 0) amount = 32;
        res = amount == 32 ? 0 : (v >> amount);
        c_ = amount == 32 ? (v >> 31) & 1 : (v >> (amount - 1)) & 1;
      } else {
        if (amount == 0) amount = 32;
        if (amount == 32) {
          res = (v >> 31) ? ~0u : 0u;
          c_ = (v >> 31) & 1;
        } else {
          res = static_cast<std::uint32_t>(static_cast<std::int32_t>(v) >>
                                           amount);
          c_ = (v >> (amount - 1)) & 1;
        }
      }
      r_[i.rd] = res;
      set_nz(res);
      account<kTraced>(i.op == Op::kLslImm && i.imm == 0
                  ? InstrClass::kMov
                  : (i.op == Op::kLslImm ? InstrClass::kLsl
                                         : InstrClass::kLsr),
              1);
      break;
    }
    case Op::kLslReg:
    case Op::kLsrReg:
    case Op::kAsrReg:
    case Op::kRorReg: {
      const unsigned amount = r_[i.rm] & 0xFF;
      std::uint32_t v = r_[i.rd];
      if (amount != 0) {
        if (i.op == Op::kLslReg) {
          if (amount < 32) {
            c_ = (v >> (32 - amount)) & 1;
            v <<= amount;
          } else {
            c_ = amount == 32 ? (v & 1) : false;
            v = 0;
          }
        } else if (i.op == Op::kLsrReg) {
          if (amount < 32) {
            c_ = (v >> (amount - 1)) & 1;
            v >>= amount;
          } else {
            c_ = amount == 32 ? (v >> 31) & 1 : false;
            v = 0;
          }
        } else if (i.op == Op::kAsrReg) {
          if (amount < 32) {
            c_ = (v >> (amount - 1)) & 1;
            v = static_cast<std::uint32_t>(static_cast<std::int32_t>(v) >>
                                           amount);
          } else {
            c_ = (v >> 31) & 1;
            v = (v >> 31) ? ~0u : 0u;
          }
        } else {  // ROR
          const unsigned rot = amount % 32;
          if (rot != 0) v = (v >> rot) | (v << (32 - rot));
          c_ = (v >> 31) & 1;
        }
      }
      r_[i.rd] = v;
      set_nz(v);
      account<kTraced>(i.op == Op::kLslReg ? InstrClass::kLsl : InstrClass::kLsr, 1);
      break;
    }
    case Op::kAddReg:
      r_[i.rd] = add_with_carry(r_[i.rn], r_[i.rm], false, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kSubReg:
      r_[i.rd] = add_with_carry(r_[i.rn], ~r_[i.rm], true, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kAddImm3:
      r_[i.rd] = add_with_carry(r_[i.rn], static_cast<std::uint32_t>(i.imm),
                                false, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kSubImm3:
      r_[i.rd] = add_with_carry(r_[i.rn], ~static_cast<std::uint32_t>(i.imm),
                                true, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kMovImm:
      r_[i.rd] = static_cast<std::uint32_t>(i.imm);
      set_nz(r_[i.rd]);
      account<kTraced>(InstrClass::kMov, 1);
      break;
    case Op::kCmpImm:
      (void)add_with_carry(r_[i.rd], ~static_cast<std::uint32_t>(i.imm), true,
                           true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kAddImm8:
      r_[i.rd] = add_with_carry(r_[i.rd], static_cast<std::uint32_t>(i.imm),
                                false, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kSubImm8:
      r_[i.rd] = add_with_carry(r_[i.rd], ~static_cast<std::uint32_t>(i.imm),
                                true, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kAnd:
      r_[i.rd] &= r_[i.rm];
      set_nz(r_[i.rd]);
      account<kTraced>(InstrClass::kEor, 1);
      break;
    case Op::kEor:
      r_[i.rd] ^= r_[i.rm];
      set_nz(r_[i.rd]);
      account<kTraced>(InstrClass::kEor, 1);
      break;
    case Op::kAdc:
      r_[i.rd] = add_with_carry(r_[i.rd], r_[i.rm], c_, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kSbc:
      r_[i.rd] = add_with_carry(r_[i.rd], ~r_[i.rm], c_, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kTst:
      set_nz(r_[i.rd] & r_[i.rm]);
      account<kTraced>(InstrClass::kEor, 1);
      break;
    case Op::kRsb:
      r_[i.rd] = add_with_carry(~r_[i.rm], 0, true, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kCmpReg:
      (void)add_with_carry(r_[i.rd], ~r_[i.rm], true, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kCmn:
      (void)add_with_carry(r_[i.rd], r_[i.rm], false, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kOrr:
      r_[i.rd] |= r_[i.rm];
      set_nz(r_[i.rd]);
      account<kTraced>(InstrClass::kEor, 1);
      break;
    case Op::kMul:
      r_[i.rd] *= r_[i.rm];
      set_nz(r_[i.rd]);
      account<kTraced>(InstrClass::kMul, 1);  // single-cycle multiplier option
      break;
    case Op::kBic:
      r_[i.rd] &= ~r_[i.rm];
      set_nz(r_[i.rd]);
      account<kTraced>(InstrClass::kEor, 1);
      break;
    case Op::kMvn:
      r_[i.rd] = ~r_[i.rm];
      set_nz(r_[i.rd]);
      account<kTraced>(InstrClass::kEor, 1);
      break;
    case Op::kAddHi: {
      const std::uint32_t rm = i.rm == kPC ? pc4 : r_[i.rm];
      if (i.rd == kPC) {
        branch_to(r_[kPC] - 2 * halfwords + 4 + rm);  // rare; treated as branch
        account<kTraced>(InstrClass::kBranch, 2);
        break;
      }
      r_[i.rd] += rm;
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    }
    case Op::kCmpHi:
      (void)add_with_carry(r_[i.rd], ~r_[i.rm], true, true);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kMovHi: {
      const std::uint32_t v = i.rm == kPC ? pc4 : r_[i.rm];
      if (i.rd == kPC) {
        branch_to(v);
        account<kTraced>(InstrClass::kBranch, 2);
        break;
      }
      r_[i.rd] = v;
      account<kTraced>(InstrClass::kMov, 1);
      break;
    }
    case Op::kBx:
      branch_to(r_[i.rm]);
      account<kTraced>(InstrClass::kBranch, 2);
      break;
    case Op::kBlx: {
      const std::uint32_t target = r_[i.rm];
      r_[kLR] = (r_[kPC]) | 1u;  // next instruction
      branch_to(target);
      account<kTraced>(InstrClass::kBranch, 2);
      break;
    }
    case Op::kLdrLit: {
      const std::uint32_t base = pc4 & ~3u;
      r_[i.rd] = read_mem<kTraced>(base + static_cast<std::uint32_t>(i.imm), 4);
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    }
    case Op::kLdrImm:
      r_[i.rd] = read_mem<kTraced>(r_[i.rn] + static_cast<std::uint32_t>(i.imm), 4);
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    case Op::kStrImm:
      write_mem<kTraced>(r_[i.rn] + static_cast<std::uint32_t>(i.imm), r_[i.rd], 4);
      account<kTraced>(InstrClass::kStr, 2);
      break;
    case Op::kLdrbImm:
      r_[i.rd] = read_mem<kTraced>(r_[i.rn] + static_cast<std::uint32_t>(i.imm), 1);
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    case Op::kStrbImm:
      write_mem<kTraced>(r_[i.rn] + static_cast<std::uint32_t>(i.imm), r_[i.rd], 1);
      account<kTraced>(InstrClass::kStr, 2);
      break;
    case Op::kLdrhImm:
      r_[i.rd] = read_mem<kTraced>(r_[i.rn] + static_cast<std::uint32_t>(i.imm), 2);
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    case Op::kStrhImm:
      write_mem<kTraced>(r_[i.rn] + static_cast<std::uint32_t>(i.imm), r_[i.rd], 2);
      account<kTraced>(InstrClass::kStr, 2);
      break;
    case Op::kLdrReg:
      r_[i.rd] = read_mem<kTraced>(r_[i.rn] + r_[i.rm], 4);
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    case Op::kStrReg:
      write_mem<kTraced>(r_[i.rn] + r_[i.rm], r_[i.rd], 4);
      account<kTraced>(InstrClass::kStr, 2);
      break;
    case Op::kLdrbReg:
      r_[i.rd] = read_mem<kTraced>(r_[i.rn] + r_[i.rm], 1);
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    case Op::kStrbReg:
      write_mem<kTraced>(r_[i.rn] + r_[i.rm], r_[i.rd], 1);
      account<kTraced>(InstrClass::kStr, 2);
      break;
    case Op::kLdrhReg:
      r_[i.rd] = read_mem<kTraced>(r_[i.rn] + r_[i.rm], 2);
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    case Op::kLdrsbReg:
      r_[i.rd] = static_cast<std::uint32_t>(static_cast<std::int32_t>(
          static_cast<std::int8_t>(read_mem<kTraced>(r_[i.rn] + r_[i.rm], 1))));
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    case Op::kLdrshReg:
      r_[i.rd] = static_cast<std::uint32_t>(static_cast<std::int32_t>(
          static_cast<std::int16_t>(read_mem<kTraced>(r_[i.rn] + r_[i.rm], 2))));
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    case Op::kStrhReg:
      write_mem<kTraced>(r_[i.rn] + r_[i.rm], r_[i.rd], 2);
      account<kTraced>(InstrClass::kStr, 2);
      break;
    case Op::kLdrSp:
      r_[i.rd] = read_mem<kTraced>(r_[kSP] + static_cast<std::uint32_t>(i.imm), 4);
      account<kTraced>(InstrClass::kLdr, 2);
      break;
    case Op::kStrSp:
      write_mem<kTraced>(r_[kSP] + static_cast<std::uint32_t>(i.imm), r_[i.rd], 4);
      account<kTraced>(InstrClass::kStr, 2);
      break;
    case Op::kAddSpImm7:
      r_[kSP] += static_cast<std::uint32_t>(i.imm);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kSubSpImm7:
      r_[kSP] -= static_cast<std::uint32_t>(i.imm);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kAddRdSp:
      r_[i.rd] = r_[kSP] + static_cast<std::uint32_t>(i.imm);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kAdr:
      r_[i.rd] = (pc4 & ~3u) + static_cast<std::uint32_t>(i.imm);
      account<kTraced>(InstrClass::kAdd, 1);
      break;
    case Op::kPush: {
      unsigned n = 0;
      for (unsigned b = 0; b < 9; ++b) n += (i.reg_list >> b) & 1;
      std::uint32_t sp = r_[kSP] - 4 * n;
      r_[kSP] = sp;
      for (unsigned b = 0; b < 8; ++b) {
        if (i.reg_list & (1u << b)) {
          write_mem<kTraced>(sp, r_[b], 4);
          sp += 4;
        }
      }
      if (i.reg_list & 0x100) write_mem<kTraced>(sp, r_[kLR], 4);
      account<kTraced>(InstrClass::kStr, n);
      account<kTraced>(InstrClass::kOther, 1);
      break;
    }
    case Op::kPop: {
      unsigned n = 0;
      for (unsigned b = 0; b < 9; ++b) n += (i.reg_list >> b) & 1;
      std::uint32_t sp = r_[kSP];
      for (unsigned b = 0; b < 8; ++b) {
        if (i.reg_list & (1u << b)) {
          r_[b] = read_mem<kTraced>(sp, 4);
          sp += 4;
        }
      }
      bool to_pc = false;
      if (i.reg_list & 0x100) {
        branch_to(read_mem<kTraced>(sp, 4));
        sp += 4;
        to_pc = true;
      }
      r_[kSP] = sp;
      account<kTraced>(InstrClass::kLdr, n);
      account<kTraced>(InstrClass::kOther, to_pc ? 3 : 1);
      break;
    }
    case Op::kStm: {
      std::uint32_t addr = r_[i.rn];
      unsigned n = 0;
      for (unsigned b = 0; b < 8; ++b) {
        if (i.reg_list & (1u << b)) {
          write_mem<kTraced>(addr, r_[b], 4);
          addr += 4;
          ++n;
        }
      }
      r_[i.rn] = addr;
      account<kTraced>(InstrClass::kStr, n);
      account<kTraced>(InstrClass::kOther, 1);
      break;
    }
    case Op::kLdm: {
      std::uint32_t addr = r_[i.rn];
      unsigned n = 0;
      const bool base_in_list = (i.reg_list >> i.rn) & 1;
      for (unsigned b = 0; b < 8; ++b) {
        if (i.reg_list & (1u << b)) {
          r_[b] = read_mem<kTraced>(addr, 4);
          addr += 4;
          ++n;
        }
      }
      if (!base_in_list) r_[i.rn] = addr;
      account<kTraced>(InstrClass::kLdr, n);
      account<kTraced>(InstrClass::kOther, 1);
      break;
    }
    case Op::kBCond: {
      bool take = false;
      switch (i.cond) {
        case Cond::kEq: take = z_; break;
        case Cond::kNe: take = !z_; break;
        case Cond::kCs: take = c_; break;
        case Cond::kCc: take = !c_; break;
        case Cond::kMi: take = n_; break;
        case Cond::kPl: take = !n_; break;
        case Cond::kVs: take = v_; break;
        case Cond::kVc: take = !v_; break;
        case Cond::kHi: take = c_ && !z_; break;
        case Cond::kLs: take = !c_ || z_; break;
        case Cond::kGe: take = n_ == v_; break;
        case Cond::kLt: take = n_ != v_; break;
        case Cond::kGt: take = !z_ && n_ == v_; break;
        case Cond::kLe: take = z_ || n_ != v_; break;
      }
      if (take) {
        branch_to(pc4 + static_cast<std::uint32_t>(i.imm));
        account<kTraced>(InstrClass::kBranch, 2);
      } else {
        account<kTraced>(InstrClass::kBranch, 1);
      }
      break;
    }
    case Op::kB:
      branch_to(pc4 + static_cast<std::uint32_t>(i.imm));
      account<kTraced>(InstrClass::kBranch, 2);
      break;
    case Op::kBl:
      r_[kLR] = r_[kPC] | 1u;  // return address (past both halfwords)
      branch_to(pc4 + static_cast<std::uint32_t>(i.imm));
      account<kTraced>(InstrClass::kBranch, 3);
      break;
    case Op::kSxth:
      r_[i.rd] = static_cast<std::uint32_t>(static_cast<std::int32_t>(
          static_cast<std::int16_t>(r_[i.rm])));
      account<kTraced>(InstrClass::kMov, 1);
      break;
    case Op::kSxtb:
      r_[i.rd] = static_cast<std::uint32_t>(static_cast<std::int32_t>(
          static_cast<std::int8_t>(r_[i.rm])));
      account<kTraced>(InstrClass::kMov, 1);
      break;
    case Op::kUxth:
      r_[i.rd] = r_[i.rm] & 0xFFFFu;
      account<kTraced>(InstrClass::kMov, 1);
      break;
    case Op::kUxtb:
      r_[i.rd] = r_[i.rm] & 0xFFu;
      account<kTraced>(InstrClass::kMov, 1);
      break;
    case Op::kRev: {
      const std::uint32_t v = r_[i.rm];
      r_[i.rd] = (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) |
                 (v << 24);
      account<kTraced>(InstrClass::kMov, 1);
      break;
    }
    case Op::kRev16: {
      const std::uint32_t v = r_[i.rm];
      r_[i.rd] = ((v >> 8) & 0x00FF00FFu) | ((v << 8) & 0xFF00FF00u);
      account<kTraced>(InstrClass::kMov, 1);
      break;
    }
    case Op::kRevsh: {
      const std::uint32_t v = r_[i.rm];
      const std::uint16_t half =
          static_cast<std::uint16_t>(((v >> 8) & 0xFFu) | ((v & 0xFFu) << 8));
      r_[i.rd] = static_cast<std::uint32_t>(static_cast<std::int32_t>(
          static_cast<std::int16_t>(half)));
      account<kTraced>(InstrClass::kMov, 1);
      break;
    }
    case Op::kNop:
      account<kTraced>(InstrClass::kOther, 1);
      break;
    case Op::kBkpt:
      halted_ = true;
      account<kTraced>(InstrClass::kOther, 1);
      break;
  }
}

// The threaded dispatcher (dispatch.cpp) executes unfused slots through
// the same untraced exec; give it an out-of-line instantiation to link
// against.
template void Cpu::exec<false>(const Instr&, unsigned);

}  // namespace eccm0::armvm
