// Typed architectural fault hierarchy for the ARM VM.
//
// Every error the simulated core can raise while executing — bus faults,
// alignment faults, decode faults, instruction-budget exhaustion — is an
// instance of `armvm::Fault`, carrying a machine-readable kind, the
// faulting address, and (when raised through a running Cpu) a snapshot of
// the architectural state at the moment of the fault. Callers that need
// to distinguish fault classes programmatically (the faultsim campaign
// engine, differential tests) catch `armvm::Fault&`; legacy callers keep
// working because every concrete fault also inherits the std exception
// type the pre-typed implementation threw, with the same what() text.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace eccm0::armvm {

/// Machine-readable classification of an architectural fault.
enum class FaultKind : std::uint8_t {
  kBusFault,         ///< data/fetch access outside RAM or code space
  kAlignmentFault,   ///< unaligned data access or odd PC
  kDecodeFault,      ///< undefined/unsupported instruction encoding
  kBudgetExhausted,  ///< Cpu::call instruction budget tripped (watchdog)
  kMemoryIntegrity,  ///< codeword check failed on protected RAM (uncorrectable)
};

const char* fault_kind_name(FaultKind k);

/// Architectural state of the core at the moment a fault was raised:
/// registers, APSR flags and retired-work counters. r[15] is the
/// architectural PC at the time of the fault (already advanced to the
/// fallthrough address for faults raised mid-execution of an
/// instruction, exactly as a step-at-a-time interpreter leaves it).
struct ArchState {
  std::uint32_t r[16] = {};
  bool n = false, z = false, c = false, v = false;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;

  friend bool operator==(const ArchState&, const ArchState&) = default;
};

/// Base of the typed fault hierarchy. Deliberately NOT derived from
/// std::exception: each concrete fault inherits both Fault and the std
/// exception type the original implementation threw, so `catch
/// (std::exception&)` stays unambiguous and old catch clauses keep
/// matching.
class Fault {
 public:
  virtual ~Fault() = default;

  FaultKind kind() const { return kind_; }
  /// Faulting data address, or the offending PC for fetch/decode/budget
  /// faults.
  std::uint32_t address() const { return addr_; }
  /// Same text the std exception base reports via what().
  const std::string& message() const { return msg_; }

  /// True once a running Cpu annotated the fault with its state. Faults
  /// raised by a bare Memory (no Cpu in the call chain) carry none.
  bool has_state() const { return has_state_; }
  const ArchState& state() const { return state_; }

  /// First annotation wins: the innermost Cpu that observes the fault in
  /// flight records its state; outer frames must not overwrite it.
  void attach_state(const ArchState& s) {
    if (!has_state_) {
      state_ = s;
      has_state_ = true;
    }
  }

 protected:
  Fault(FaultKind kind, std::uint32_t addr, std::string msg)
      : kind_(kind), addr_(addr), msg_(std::move(msg)) {}

 private:
  FaultKind kind_;
  std::uint32_t addr_;
  std::string msg_;
  ArchState state_;
  bool has_state_ = false;
};

/// Access outside RAM or code space (was std::out_of_range).
class BusFault : public Fault, public std::out_of_range {
 public:
  BusFault(const std::string& msg, std::uint32_t addr)
      : Fault(FaultKind::kBusFault, addr, msg), std::out_of_range(msg) {}
};

/// Unaligned data access or odd PC (was std::runtime_error).
class AlignmentFault : public Fault, public std::runtime_error {
 public:
  AlignmentFault(const std::string& msg, std::uint32_t addr)
      : Fault(FaultKind::kAlignmentFault, addr, msg),
        std::runtime_error(msg) {}
};

/// Undefined or unsupported encoding (was std::invalid_argument).
class DecodeFault : public Fault, public std::invalid_argument {
 public:
  DecodeFault(const std::string& msg, std::uint32_t addr)
      : Fault(FaultKind::kDecodeFault, addr, msg),
        std::invalid_argument(msg) {}
};

/// Instruction budget exhausted in Cpu::call — the simulator's watchdog
/// (was std::runtime_error).
class BudgetFault : public Fault, public std::runtime_error {
 public:
  BudgetFault(const std::string& msg, std::uint32_t pc)
      : Fault(FaultKind::kBudgetExhausted, pc, msg), std::runtime_error(msg) {}
};

/// A protected memory model (parity / SECDED) found a codeword it could
/// not repair: a parity mismatch, or a SECDED double-bit error. Raised
/// from the access that observed the rotten word, or from a scrubbing
/// pass that swept over it. New in the memory-reliability layer, so it
/// has no legacy std exception contract to honour; std::runtime_error
/// keeps it visible to generic catch clauses.
class MemoryIntegrityFault : public Fault, public std::runtime_error {
 public:
  MemoryIntegrityFault(const std::string& msg, std::uint32_t addr)
      : Fault(FaultKind::kMemoryIntegrity, addr, msg),
        std::runtime_error(msg) {}
};

}  // namespace eccm0::armvm
