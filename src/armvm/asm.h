// Two-pass Thumb-1 text assembler.
//
// Accepts a GNU-as-flavoured subset: labels, the instruction forms the
// codec supports, `ldr rN, =constant` with an automatic end-of-program
// literal pool, `.word` data, and register lists with ranges. Enough to
// write the paper's field-arithmetic kernels as readable source.
#pragma once

#include <string_view>

#include "armvm/program.h"

namespace eccm0::armvm {

/// Assemble source text into a shared immutable Program (code + symbols
/// + predecode cache, built once). Throws std::invalid_argument with a
/// line-tagged message on syntax errors, unknown mnemonics, or
/// out-of-range operands.
ProgramRef assemble(std::string_view source);

}  // namespace eccm0::armvm
