// Two-pass Thumb-1 text assembler.
//
// Accepts a GNU-as-flavoured subset: labels, the instruction forms the
// codec supports, `ldr rN, =constant` with an automatic end-of-program
// literal pool, `.word` data, and register lists with ranges. Enough to
// write the paper's field-arithmetic kernels as readable source.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace eccm0::armvm {

struct Program {
  std::vector<std::uint16_t> code;
  /// Label name -> byte address within the image.
  std::map<std::string, std::uint32_t> symbols;

  std::uint32_t entry(const std::string& label) const;
};

/// Assemble source text. Throws std::invalid_argument with a line-tagged
/// message on syntax errors, unknown mnemonics, or out-of-range operands.
Program assemble(std::string_view source);

}  // namespace eccm0::armvm
