// Engine-selection helpers for the execution-engine hierarchy
// (perstep / predecode / threaded), shared by every harness that takes
// an `--engine=` flag, plus a build-configuration probe for the
// threaded dispatcher.
//
// The threaded engine itself lives in dispatch.cpp: Cpu::run_threaded
// (the chunk runner with block-head lookup and per-instruction
// fallback) and Cpu::run_fused_block (the token-threaded superblock
// dispatcher, instantiated from exec_fused.inc as computed-goto labels
// on GNU/Clang and as a switch on everything else — or everywhere when
// the ECCM0_SWITCH_DISPATCH CMake option forces the portable form).
#pragma once

#include <string_view>

#include "armvm/cpu.h"

namespace eccm0::armvm {

/// Engine spelling used by every `--engine=` flag.
inline constexpr const char* kEngineFlagValues = "perstep|predecode|threaded";

/// Map an `--engine=` value to a DecodeMode. Throws
/// std::invalid_argument on anything but perstep|predecode|threaded.
Cpu::DecodeMode decode_mode_from_name(std::string_view name);

/// Inverse of decode_mode_from_name (for reports and JSON rows).
const char* decode_mode_name(Cpu::DecodeMode mode);

/// True when this build dispatches fused blocks with computed goto;
/// false in the portable switch fallback (non-GNU compilers or
/// -DECCM0_SWITCH_DISPATCH=ON).
bool threaded_dispatch_uses_computed_goto();

}  // namespace eccm0::armvm
