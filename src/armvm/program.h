// Immutable, shareable Thumb image.
//
// A `Program` bundles everything that is a pure function of the source
// text — the halfword code image, the label symbol table, and the
// predecode cache — built exactly once and then frozen. Harnesses share
// one image across any number of execution contexts via `ProgramRef`
// (a shared_ptr-to-const): every `Cpu` is a cheap per-run context over
// the shared artifact, so campaigns and multi-threaded bench sweeps pay
// the assemble+predecode cost once instead of per run (and concurrent
// readers need no locking, because nothing here ever mutates).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "armvm/codec.h"
#include "armvm/superinst.h"

namespace eccm0::armvm {

class Program {
 public:
  Program() = default;
  /// Freeze `code` (+ optional label table), predecode it, and run the
  /// basic-block fusion pass for the threaded engine. The predecode
  /// pass is total — undecodable halfwords become invalid slots that
  /// trap only if the PC lands on them — so construction never throws
  /// on bad encodings.
  explicit Program(std::vector<std::uint16_t> code,
                   std::map<std::string, std::uint32_t> symbols = {});

  const std::vector<std::uint16_t>& code() const { return code_; }
  const std::map<std::string, std::uint32_t>& symbols() const {
    return symbols_;
  }
  const std::vector<PredecodedSlot>& cache() const { return cache_; }
  /// Fused superblocks for DecodeMode::kThreaded (see superinst.h).
  const ThreadedImage& threaded() const { return threaded_; }
  /// Static code size in bytes (for the Table-7 style reports).
  std::size_t code_bytes() const { return 2 * code_.size(); }

  /// Byte address of `label`. Throws std::out_of_range if undefined.
  std::uint32_t entry(const std::string& label) const;

 private:
  std::vector<std::uint16_t> code_;
  std::map<std::string, std::uint32_t> symbols_;
  std::vector<PredecodedSlot> cache_;
  ThreadedImage threaded_;
};

/// How every harness holds a program: immutable and shared.
using ProgramRef = std::shared_ptr<const Program>;

/// Wrap raw halfwords (tests, scratch images for opcode corruption) into
/// a shared immutable image.
ProgramRef make_program(std::vector<std::uint16_t> code,
                        std::map<std::string, std::uint32_t> symbols = {});

}  // namespace eccm0::armvm
