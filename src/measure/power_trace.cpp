#include "measure/power_trace.h"

#include <cmath>
#include <numbers>
#include <string>

#include "armvm/asm.h"
#include "armvm/cpu.h"

namespace eccm0::measure {

double PowerRig::gaussian() {
  // Box-Muller on the deterministic generator.
  const double u1 =
      (static_cast<double>(rng_.next_u64() >> 11) + 1.0) / 9007199254740993.0;
  const double u2 =
      static_cast<double>(rng_.next_u64() >> 11) / 9007199254740992.0;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

void PowerRig::on_retire(const armvm::TraceEvent& ev) {
  for (unsigned i = 0; i < ev.num_costs; ++i) {
    on_instruction(ev.costs[i].cls, ev.costs[i].cycles);
  }
}

void PowerRig::on_instruction(costmodel::InstrClass cls, unsigned cycles) {
  // Instantaneous power of this instruction class at 48 MHz:
  // P = E_per_cycle / T_cycle.
  const double pj = costmodel::kM0PlusEnergy.pj(cls);
  const double power_uw = pj * 1e-12 * costmodel::kClockHz * 1e6;
  for (unsigned i = 0; i < cycles; ++i) {
    trace_.push_back(power_uw + cfg_.bias_uw + cfg_.noise_uw * gaussian());
  }
}

double PowerRig::integrate_pj(std::size_t begin, std::size_t end) const {
  double uw_sum = 0.0;
  for (std::size_t i = begin; i < end && i < trace_.size(); ++i) {
    uw_sum += trace_[i];
  }
  // Each sample spans one clock period.
  return uw_sum * 1e-6 / costmodel::kClockHz * 1e12;
}

double PowerRig::average_power_uw() const {
  if (trace_.empty()) return 0.0;
  double s = 0.0;
  for (double v : trace_) s += v;
  return s / static_cast<double>(trace_.size());
}

double PowerRig::total_energy_uj() const {
  return integrate_pj(0, trace_.size()) * 1e-6;
}

namespace {

double run_loop_energy_pj(const std::string& body, unsigned loops,
                          const RigConfig& cfg) {
  std::string src;
  src += "entry:\n";
  src += "    movs r1, #1\n    lsls r1, r1, #29\n";  // r1 = RAM base
  src += "    movs r2, #85\n";                       // a data pattern
  src += "    ldr r7, =" + std::to_string(loops) + "\n";
  src += "loop:\n";
  src += body;
  src += "    subs r7, #1\n    bne loop\n    bkpt\n";
  const armvm::ProgramRef prog = armvm::assemble(src);
  armvm::Memory mem(0x400);
  armvm::Cpu cpu(prog, mem);
  PowerRig rig(cfg);
  cpu.set_trace_sink(&rig);
  (void)cpu.call(prog->entry("entry"), {});
  return rig.total_energy_uj() * 1e6;
}

}  // namespace

double measure_instruction_energy_pj(const std::string& instr_line,
                                     unsigned iterations, RigConfig cfg) {
  constexpr unsigned kLoops = 256;
  std::string body;
  for (unsigned i = 0; i < iterations; ++i) {
    body += "    " + instr_line + "\n";
  }
  RigConfig cfg_empty = cfg;
  cfg_empty.seed ^= 0xABCDEF;  // independent noise for the baseline run
  const double with = run_loop_energy_pj(body, kLoops, cfg);
  const double without = run_loop_energy_pj("", kLoops, cfg_empty);
  return (with - without) / (static_cast<double>(kLoops) * iterations);
}

}  // namespace eccm0::measure
