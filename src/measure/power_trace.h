// Simulated power-measurement setup (paper section 4.1).
//
// The paper measured instruction and point-multiplication energy with a
// physical rig (shunt + scope) on a real M0+ at 48 MHz. We have no
// hardware, so this module simulates the rig end-to-end: the executed
// instruction stream drives a per-cycle power waveform (from the Table 3
// energy table) with configurable Gaussian measurement noise; the
// "measurement" side integrates the waveform back into energy and average
// power. bench_table3 re-derives the per-instruction energies exactly the
// way the paper did: run an instruction in a long measured loop, subtract
// the loop overhead, divide by iteration count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "armvm/cpu.h"
#include "common/rng.h"
#include "costmodel/energy.h"

namespace eccm0::measure {

/// One power sample per CPU cycle, in microwatt.
using PowerTrace = std::vector<double>;

struct RigConfig {
  /// Gaussian noise added to every sample (1-sigma, microwatt).
  double noise_uw = 25.0;
  /// Scope offset error (constant bias, microwatt).
  double bias_uw = 0.0;
  std::uint64_t seed = 0x5EED;
};

/// Records the executed instruction stream of a Cpu (attach via
/// Cpu::set_trace_sink) and synthesizes the sampled waveform.
class PowerRig final : public armvm::TraceSink {
 public:
  explicit PowerRig(RigConfig cfg = {}) : cfg_(cfg), rng_(cfg.seed) {}

  /// TraceSink: one retired instruction from the Cpu. Expands the
  /// event's cost pairs into per-cycle waveform samples.
  void on_retire(const armvm::TraceEvent& ev) override;

  /// Append `cycles` samples at the power level of `cls` — the primitive
  /// on_retire feeds through, also used directly by calibration tests.
  void on_instruction(costmodel::InstrClass cls, unsigned cycles);

  const PowerTrace& trace() const { return trace_; }
  void clear() { trace_.clear(); }

  /// Integrate a window [begin, end) of the trace: energy in pJ.
  double integrate_pj(std::size_t begin, std::size_t end) const;
  /// Average power over the whole trace in microwatt.
  double average_power_uw() const;
  /// Total energy of the whole trace in microjoule.
  double total_energy_uj() const;

 private:
  double gaussian();

  RigConfig cfg_;
  Rng rng_;
  PowerTrace trace_;
};

/// Run `instr_line` (one Thumb instruction, may use r0-r2 freely) inside a
/// calibrated loop on the VM rig and return the measured energy per
/// execution in pJ — the paper's Table 3 methodology. `iterations` is the
/// unrolled count per loop body.
double measure_instruction_energy_pj(const std::string& instr_line,
                                     unsigned iterations = 64,
                                     RigConfig cfg = {});

}  // namespace eccm0::measure
