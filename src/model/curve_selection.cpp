#include "model/curve_selection.h"

#include <vector>

#include "common/rng.h"
#include "costmodel/energy.h"
#include "gf2/traced.h"

namespace eccm0::model {
namespace {

using costmodel::CycleModel;
using costmodel::InstrClass;
using costmodel::kM0PlusEnergy;

/// Energy density of the abstract binary-field operation mix (loads,
/// stores, XORs, shifts priced per Table 3).
double binary_mix_pj_per_cycle(const costmodel::OpCounts& c) {
  const auto h = costmodel::histogram_of(c);
  const auto e = costmodel::energy_of(h);
  return e.cycles == 0 ? 0.0 : e.energy_pj / static_cast<double>(e.cycles);
}

/// Prime MAC mix (mirrors ecp::prime_mix_pj_per_cycle; duplicated here so
/// the model layer has no dependency on the ecp implementation).
double prime_mix_pj_per_cycle() {
  const auto& t = kM0PlusEnergy;
  const double cycles = 4 + 8 + 3 + 3 + 2.5;
  const double pj = 4 * t.pj(InstrClass::kMul) + 8 * t.pj(InstrClass::kAdd) +
                    3 * t.pj(InstrClass::kLsl) + 3 * t.pj(InstrClass::kMov) +
                    2.5 * t.pj(InstrClass::kLdr);
  return pj / cycles;
}

void finish(CandidateEstimate& e) {
  e.time_ms = static_cast<double>(e.point_mul_cycles) /
              costmodel::kClockHz * 1e3;
  e.energy_uj = static_cast<double>(e.point_mul_cycles) * e.pj_per_cycle *
                1e-6;
  e.power_uw = e.energy_uj / e.time_ms * 1e3;
}

}  // namespace

CandidateEstimate estimate_koblitz(const std::string& name, unsigned m) {
  CandidateEstimate e;
  e.name = name;
  e.binary = true;
  e.field_bits = m;
  e.security_bits = (m - 2) / 2;  // cofactor 2-4 costs a couple of bits

  // Field multiplication: the traced LD-with-fixed-registers method at
  // this word count (the paper's Table 1/2 analysis generalised to n).
  const std::size_t n = words_for_bits(m);
  Rng rng(0xCA11 + m);
  std::vector<Word> x(n), y(n), v(2 * n);
  rng.fill(x);
  rng.fill(y);
  const unsigned top = m % kWordBits;
  x[n - 1] &= (Word{1} << top) - 1;
  y[n - 1] &= (Word{1} << top) - 1;
  costmodel::OpRecorder rec;
  gf2::traced::mul_ld_fixed(v, x, y, rec);
  const CycleModel cm;
  e.field_mul_cycles = cm.cycles(rec.counts());
  e.pj_per_cycle = binary_mix_pj_per_cycle(rec.counts());

  // Point multiplication (wTNAF, w = 4): ~m digits, density 1/(w+1);
  // Frobenius costs 3 squarings per digit, a mixed add 8M + 5S; one final
  // inversion ~ 10 multiplications in the EEA model; +10% support.
  const double digits = m;
  const double adds = digits / 5.0;
  // Squaring is ~1/8 of a multiplication (table method).
  const double sqr_cycles = static_cast<double>(e.field_mul_cycles) / 8.0;
  const double cycles = adds * (8.0 * static_cast<double>(e.field_mul_cycles) +
                                5.0 * sqr_cycles) +
                        digits * 3.0 * sqr_cycles +
                        10.0 * static_cast<double>(e.field_mul_cycles);
  e.point_mul_cycles = static_cast<std::uint64_t>(cycles * 1.10);
  finish(e);
  return e;
}

CandidateEstimate estimate_prime(const std::string& name, unsigned bits) {
  CandidateEstimate e;
  e.name = name;
  e.binary = false;
  e.field_bits = bits;
  e.security_bits = bits / 2;

  const auto n = static_cast<std::uint64_t>(words_for_bits(bits));
  e.field_mul_cycles = 30 * n * n + 40 * n + 80;  // Comba MAC model
  const double sqr_cycles = static_cast<double>(20 * n * n + 40 * n + 80);
  e.pj_per_cycle = prime_mix_pj_per_cycle();

  // wNAF w = 4: one Jacobian double (3M + 5S) per bit, density 1/5 mixed
  // adds (8M + 3S), one final inversion ~ 60 multiplications (binary EEA
  // mod p), +10% support.
  const double mulc = static_cast<double>(e.field_mul_cycles);
  const double cycles = bits * (3.0 * mulc + 5.0 * sqr_cycles) +
                        (bits / 5.0) * (8.0 * mulc + 3.0 * sqr_cycles) +
                        60.0 * mulc;
  e.point_mul_cycles = static_cast<std::uint64_t>(cycles * 1.10);
  finish(e);
  return e;
}

std::vector<CandidateEstimate> estimate_candidates() {
  return {
      estimate_koblitz("sect163k1", 163),
      estimate_koblitz("sect233k1", 233),
      estimate_koblitz("sect283k1", 283),
      estimate_prime("secp192r1", 192),
      estimate_prime("secp224r1", 224),
      estimate_prime("secp256r1", 256),
  };
}

SelectionConclusions evaluate(const std::vector<CandidateEstimate>& c) {
  SelectionConclusions out{true, true};
  // Pair candidates by position: binary i matches prime i+3.
  for (std::size_t i = 0; i + 3 < c.size() && i < 3; ++i) {
    const auto& k = c[i];
    const auto& p = c[i + 3];
    if (k.point_mul_cycles >= p.point_mul_cycles) {
      out.koblitz_faster_at_matched_security = false;
    }
    if (k.power_uw >= p.power_uw) out.binary_lower_power = false;
  }
  return out;
}

}  // namespace eccm0::model
