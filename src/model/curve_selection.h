// The paper's section 3.1 selection model: estimate instruction usage,
// cycle count and energy of a point multiplication for candidate curves
// (binary Koblitz vs prime at matched security) from an analysis of the
// dominant routine — field multiplication — and reach the paper's two
// conclusions:
//   (1) binary Koblitz curves give the faster point multiplication;
//   (2) binary curves draw less power, because XOR/shift/load mixes are
//       cheaper per cycle than MUL/ADD mixes (Table 3).
#pragma once

#include <string>
#include <vector>

#include "costmodel/opcount.h"

namespace eccm0::model {

struct CandidateEstimate {
  std::string name;
  bool binary = false;
  unsigned field_bits = 0;
  unsigned security_bits = 0;  ///< ~ group order bits / 2
  std::uint64_t field_mul_cycles = 0;
  std::uint64_t point_mul_cycles = 0;
  double pj_per_cycle = 0.0;
  double power_uw = 0.0;
  double time_ms = 0.0;
  double energy_uj = 0.0;
};

/// Estimate one binary Koblitz candidate (wTNAF w = 4, LD-with-fixed-
/// registers multiplication modelled by the traced implementation at the
/// candidate's word count).
CandidateEstimate estimate_koblitz(const std::string& name, unsigned m);

/// Estimate one prime candidate (wNAF w = 4, Comba/MAC model).
CandidateEstimate estimate_prime(const std::string& name, unsigned bits);

/// The paper's candidate set: K-163/233/283 and P-192/224/256.
std::vector<CandidateEstimate> estimate_candidates();

struct SelectionConclusions {
  bool koblitz_faster_at_matched_security = false;
  bool binary_lower_power = false;
};

/// Evaluate the two conclusions over security-matched pairs
/// (K-163, P-192), (K-233, P-224), (K-283, P-256).
SelectionConclusions evaluate(const std::vector<CandidateEstimate>& c);

}  // namespace eccm0::model
