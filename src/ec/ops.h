// Point arithmetic on binary curves, routed through a field-operation
// counter so scalar-multiplication experiments can decompose their cost by
// routine (paper Table 7).
//
// Coordinates follow the paper: Lopez-Dahab projective for the running
// point, affine for precomputed points, "mixed LD-affine" addition
// (Hankerson et al. Alg 3.24/3.25).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "ec/curve.h"
#include "ec/point.h"

namespace eccm0::ec {

/// Field-operation tallies; the currency Table 7 is priced in.
struct FieldOpCounts {
  std::uint64_t mul = 0;
  std::uint64_t sqr = 0;
  std::uint64_t inv = 0;
  std::uint64_t add = 0;

  friend FieldOpCounts operator-(const FieldOpCounts& a,
                                 const FieldOpCounts& b) {
    return {a.mul - b.mul, a.sqr - b.sqr, a.inv - b.inv, a.add - b.add};
  }
  friend FieldOpCounts operator+(const FieldOpCounts& a,
                                 const FieldOpCounts& b) {
    return {a.mul + b.mul, a.sqr + b.sqr, a.inv + b.inv, a.add + b.add};
  }
  friend bool operator==(const FieldOpCounts&, const FieldOpCounts&) = default;
};

class CurveOps {
 public:
  /// Fault-injection seam: observes every counted field multiplication
  /// (0-based running index, both operands) and may overwrite the result
  /// in place. Installed only by fault campaigns; normal runs pay one
  /// branch per fmul.
  using MulTamper = std::function<void(
      std::uint64_t index, const gf2::Elem& a, const gf2::Elem& b,
      gf2::Elem& r)>;

  explicit CurveOps(const BinaryCurve& c) : c_(c) {}

  const BinaryCurve& curve() const { return c_; }
  const gf2::GF2Field& f() const { return c_.f(); }
  const FieldOpCounts& counts() const { return counts_; }
  void reset_counts() { counts_ = {}; }

  /// Install (or clear, with nullptr) the multiplication tamper hook.
  /// Resets the running multiplication index to 0.
  void set_mul_tamper(MulTamper t) {
    tamper_ = std::move(t);
    mul_index_ = 0;
  }

  // Counted field operations.
  gf2::Elem fmul(const gf2::Elem& a, const gf2::Elem& b) {
    ++counts_.mul;
    if (!tamper_) [[likely]] return f().mul(a, b);
    gf2::Elem r = f().mul(a, b);
    tamper_(mul_index_++, a, b, r);
    return r;
  }
  gf2::Elem fsqr(const gf2::Elem& a) {
    ++counts_.sqr;
    return f().sqr(a);
  }
  gf2::Elem finv(const gf2::Elem& a) {
    ++counts_.inv;
    return f().inv(a);
  }
  gf2::Elem fadd(const gf2::Elem& a, const gf2::Elem& b) {
    ++counts_.add;
    return f().add(a, b);
  }

  /// y^2 + xy == x^3 + ax^2 + b (infinity counts as on-curve).
  bool on_curve(const AffinePoint& p);
  /// Curve equation in Lopez-Dahab coordinates without an inversion:
  /// Y^2 + XYZ == X^3 Z + a X^2 Z^2 + b Z^4. Lets the protected scalar
  /// multiplication verify its result BEFORE paying the LD->affine
  /// conversion (and before a faulted Z could corrupt it).
  bool on_curve_ld(const LDPoint& p);
  /// -(x, y) = (x, x + y).
  AffinePoint neg(const AffinePoint& p);
  /// Affine addition/doubling — the slow oracle path (one inversion each).
  AffinePoint add(const AffinePoint& p, const AffinePoint& q);
  AffinePoint dbl(const AffinePoint& p);

  LDPoint to_ld(const AffinePoint& p);
  AffinePoint to_affine(const LDPoint& p);

  /// In-place LD doubling (Alg 3.24): 5S + 3M for Koblitz curves.
  void ld_double(LDPoint& p);
  /// In-place mixed LD-affine addition (Alg 3.25): 8M + 5S for a in {0,1}.
  void ld_add_mixed(LDPoint& p, const AffinePoint& q);

  /// Frobenius endomorphism tau(x, y) = (x^2, y^2) — 2 squarings affine,
  /// 3 squarings projective. Koblitz curves only.
  AffinePoint frob(const AffinePoint& p);
  void frob_inplace(LDPoint& p);

 private:
  const BinaryCurve& c_;
  FieldOpCounts counts_;
  MulTamper tamper_;
  std::uint64_t mul_index_ = 0;
};

}  // namespace eccm0::ec
