// Fault-detecting scalar multiplication.
//
// A glitched multiplier, a skipped instruction or a flipped RAM bit
// inside kP silently yields a wrong point — the classic entry for
// fault attacks on ECC (Biehl-Meyer-Muller). This layer wraps the
// production wTNAF path with the standard algorithm-level
// countermeasures, each individually toggleable so the faultsim
// campaign can measure what every check buys:
//
//   validate_input  — reject P off-curve / at infinity and k out of
//                     range before any arithmetic (blocks invalid-curve
//                     injection at the entry).
//   recheck_result  — verify the result satisfies the curve equation in
//                     Lopez-Dahab coordinates BEFORE the LD->affine
//                     conversion (a corrupted accumulator almost never
//                     lands back on the curve), refuse impossible
//                     identity results, and refuse runs whose
//                     accumulator collapsed to the identity mid-loop —
//                     the one fault class (Z zeroed, loop silently
//                     restarts) that rebuilds a *valid* wrong point no
//                     end-of-run point check can see.
//   order_check     — additionally verify n*Q = infinity, catching
//                     faults that land on-curve but outside the
//                     prime-order subgroup (cofactor torsion).
//
// Detection surfaces as FaultDetectedError naming the tripped check.
#pragma once

#include <stdexcept>
#include <string>

#include "ec/scalarmul.h"

namespace eccm0::ec {

/// Which countermeasures scalarmul_protected runs. Default: everything
/// except the order check (which costs a second scalar multiplication).
struct ProtectOpts {
  bool validate_input = true;
  bool recheck_result = true;
  bool order_check = false;

  static ProtectOpts none() { return {false, false, false}; }
  static ProtectOpts all() { return {true, true, true}; }
};

/// A countermeasure tripped: the computation was about to emit a wrong
/// (or attacker-useful) result and refused to.
class FaultDetectedError : public std::runtime_error {
 public:
  enum class Check {
    kInputValidation,  ///< input point off-curve or at infinity
    kScalarRange,      ///< scalar zero or >= group order
    kResultOnCurve,    ///< result violates the curve equation (LD form)
    kResultOrder,      ///< result not killed by the group order
    kSignCoherence,    ///< signature failed verify-after-sign
    kAccumulatorCollapse,  ///< accumulator hit the identity mid-loop
  };

  FaultDetectedError(Check check, const std::string& msg)
      : std::runtime_error(msg), check_(check) {}

  Check check() const { return check_; }

 private:
  Check check_;
};

const char* check_name(FaultDetectedError::Check c);

/// Guarded wTNAF kP with a caller-supplied table (fixed-base shape).
/// Throws FaultDetectedError when an enabled check trips.
AffinePoint scalarmul_protected(CurveOps& ops, const WtnafTable& table,
                                const AffinePoint& p, const mpint::UInt& k,
                                const ProtectOpts& opts = {});

/// Guarded wTNAF kP, building the width-w table (random-point shape).
AffinePoint scalarmul_protected(CurveOps& ops, const AffinePoint& p,
                                const mpint::UInt& k, unsigned w,
                                const ProtectOpts& opts = {});

}  // namespace eccm0::ec
