// Scalar multiplication algorithms.
//
// The paper's production path is wTNAF (w = 4 for random points kP, w = 6
// for the fixed point kG) with mixed LD-affine additions and Frobenius in
// place of doubling. The reference double-and-add, generic wNAF (for
// non-Koblitz curves) and the Montgomery-Lopez-Dahab ladder (the paper's
// future-work item, section 5) are provided alongside.
#pragma once

#include <vector>

#include "ec/ops.h"
#include "ec/tnaf.h"
#include "mpint/uint.h"

namespace eccm0::ec {

/// Reference oracle: affine double-and-add, bit by bit.
AffinePoint mul_naive(CurveOps& ops, const AffinePoint& p,
                      const mpint::UInt& k);

/// Precomputed window-TNAF table: points[i] = alpha_{2i+1} * P (affine).
struct WtnafTable {
  unsigned w = 0;
  std::vector<AffinePoint> points;
};

/// Build the table for width w (2^(w-2) points). Runtime cost is the
/// paper's "TNAF Precomputation" row; for the fixed base point it is done
/// once offline.
///
/// `collapsed`, when non-null, is set if an accumulator ever returned to
/// the identity after leaving it. Honest evaluations never do this (every
/// partial tau-adic sum is a nonzero multiple of P); a corrupted field
/// operation that zeroes a Z coordinate does — and the loop would then
/// silently restart from the identity and rebuild a *valid but wrong*
/// point no end-of-run check can refuse. The flag is the detection seam
/// `scalarmul_protected` uses against that fault class.
WtnafTable make_wtnaf_table(CurveOps& ops, const AffinePoint& p, unsigned w,
                            bool* collapsed = nullptr);

/// Window-TNAF multiplication with an existing table (paper Alg 3.70
/// shape: Horner over Frobenius, mixed LD-affine additions).
AffinePoint mul_wtnaf(CurveOps& ops, const WtnafTable& table,
                      const mpint::UInt& k);

/// Same Horner loop, but returns the running point still in Lopez-Dahab
/// coordinates — the seam `scalarmul_protected` uses to verify the
/// result on-curve before the inversion-bearing affine conversion.
/// `collapsed` as in make_wtnaf_table.
LDPoint mul_wtnaf_ld(CurveOps& ops, const WtnafTable& table,
                     const mpint::UInt& k, bool* collapsed = nullptr);

/// Convenience: table build + multiply (the paper's random-point kP path).
AffinePoint mul_wtnaf(CurveOps& ops, const AffinePoint& p,
                      const mpint::UInt& k, unsigned w);

/// Generic width-w NAF double-and-add for any binary curve (the
/// doubling-based fallback a non-Koblitz curve is stuck with).
AffinePoint mul_wnaf(CurveOps& ops, const AffinePoint& p,
                     const mpint::UInt& k, unsigned w);

/// Montgomery-Lopez-Dahab ladder, x-coordinate only, uniform operation
/// sequence per bit (paper section 5's constant-time candidate).
AffinePoint mul_ladder(CurveOps& ops, const AffinePoint& p,
                       const mpint::UInt& k);

/// Same ladder with the per-iteration seam the leakage verifier uses:
/// `per_step` receives the CurveOps field-op delta of every ladder
/// iteration (one entry per processed bit, most significant first). A
/// uniform ladder yields identical entries for every bit of every
/// scalar; sca::check_ladder_op_mix asserts exactly that.
AffinePoint mul_ladder(CurveOps& ops, const AffinePoint& p,
                       const mpint::UInt& k,
                       std::vector<FieldOpCounts>* per_step);

/// Apply a small Z[tau] element: r = (a0 + a1*tau) * P. Used to build
/// wTNAF tables; |a0|, |a1| are tiny (a few bits).
AffinePoint ztau_apply(CurveOps& ops, const ZTau& z, const AffinePoint& p);

/// Convert a batch of projective points to affine with one field
/// inversion (Montgomery's simultaneous-inversion trick) — how the wTNAF
/// table is normalised without paying an inversion per point.
std::vector<AffinePoint> batch_to_affine(CurveOps& ops,
                                         std::span<const LDPoint> pts);

}  // namespace eccm0::ec
