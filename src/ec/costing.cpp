#include "ec/costing.h"

#include <stdexcept>

#include "ec/tnaf.h"

namespace eccm0::ec {
namespace {

/// Price a bag of field operations into Table 7 rows (multiply split into
/// its LUT and scan parts) plus the support share they generate.
void price_ops(const FieldOpCounts& ops, const FieldCostTable& t,
               std::uint64_t* multiply, std::uint64_t* multiply_precomp,
               std::uint64_t* square, std::uint64_t* inversion,
               std::uint64_t* support) {
  *multiply += ops.mul * (t.mul - t.mul_lut);
  *multiply_precomp += ops.mul * t.mul_lut;
  *square += ops.sqr * t.sqr;
  *inversion += ops.inv * t.inv;
  const std::uint64_t calls = ops.mul + ops.sqr + ops.inv + ops.add;
  *support += calls * t.call_overhead + ops.add * t.fadd;
}

}  // namespace

CostedRun cost_point_mul(const BinaryCurve& curve, const AffinePoint& p,
                         const mpint::UInt& k, unsigned w, bool fixed_base,
                         const FieldCostTable& prices) {
  if (!curve.koblitz) {
    throw std::invalid_argument("cost_point_mul: Koblitz curves only");
  }
  CurveOps ops(curve);
  CostedRun run;

  // Phase 1: scalar recoding (integer arithmetic, priced per digit).
  const ZTau rho = partmod(k, curve);
  const auto digits = wtnaf_digits(rho, curve.mu, w);
  run.digits = digits.size();
  for (int u : digits) {
    if (u != 0) ++run.adds;
  }
  run.cost.tnaf_repr =
      prices.tnaf_fixed + run.digits * prices.tnaf_per_digit;

  // Phase 2: point precomputation (field ops priced into their own row).
  const WtnafTable table = make_wtnaf_table(ops, p, w);
  run.precomp_ops = ops.counts();
  if (!fixed_base) {
    std::uint64_t mul = 0, mul_pre = 0, sqr = 0, inv = 0, support = 0;
    price_ops(run.precomp_ops, prices, &mul, &mul_pre, &sqr, &inv, &support);
    run.cost.tnaf_precomp = mul + mul_pre + sqr + inv + support;
  }

  // Phase 3: the Horner loop over Frobenius + mixed additions, then the
  // final conversion to affine.
  ops.reset_counts();
  LDPoint q = LDPoint::infinity();
  for (std::size_t i = digits.size(); i-- > 0;) {
    ops.frob_inplace(q);
    const int u = digits[i];
    if (u != 0) {
      const AffinePoint& pu =
          table.points[static_cast<std::size_t>(u > 0 ? u : -u) / 2];
      ops.ld_add_mixed(q, u > 0 ? pu : ops.neg(pu));
    }
  }
  run.result = ops.to_affine(q);
  run.main_ops = ops.counts();

  price_ops(run.main_ops, prices, &run.cost.multiply,
            &run.cost.multiply_precomp, &run.cost.square,
            &run.cost.inversion, &run.cost.support);
  run.cost.support += run.digits * prices.per_digit +
                      run.adds * prices.point_copy;
  return run;
}

}  // namespace eccm0::ec
