#include "ec/ops.h"

namespace eccm0::ec {

using gf2::Elem;
using gf2::GF2Field;

bool CurveOps::on_curve(const AffinePoint& p) {
  if (p.inf) return true;
  // y^2 + xy = x^3 + a x^2 + b
  const Elem y2 = fsqr(p.y);
  const Elem xy = fmul(p.x, p.y);
  const Elem x2 = fsqr(p.x);
  const Elem x3 = fmul(x2, p.x);
  const Elem lhs = fadd(y2, xy);
  Elem rhs = fadd(x3, c_.b);
  if (!GF2Field::is_zero(c_.a)) rhs = fadd(rhs, fmul(c_.a, x2));
  return lhs == rhs;
}

bool CurveOps::on_curve_ld(const LDPoint& p) {
  if (p.is_inf()) return true;
  // Y^2 + XYZ = X^3 Z + a X^2 Z^2 + b Z^4 (affine equation cleared of
  // denominators by Z^4).
  const Elem z2 = fsqr(p.Z);
  const Elem x2 = fsqr(p.X);
  const Elem lhs = fadd(fsqr(p.Y), fmul(fmul(p.X, p.Y), p.Z));
  Elem rhs = fadd(fmul(fmul(x2, p.X), p.Z), fmul(c_.b, fsqr(z2)));
  if (!GF2Field::is_zero(c_.a)) rhs = fadd(rhs, fmul(c_.a, fmul(x2, z2)));
  return lhs == rhs;
}

AffinePoint CurveOps::neg(const AffinePoint& p) {
  if (p.inf) return p;
  return AffinePoint::make(p.x, fadd(p.x, p.y));
}

AffinePoint CurveOps::dbl(const AffinePoint& p) {
  if (p.inf || GF2Field::is_zero(p.x)) return AffinePoint::infinity();
  // lambda = x + y/x; x3 = l^2 + l + a; y3 = x^2 + (l + 1) x3.
  const Elem l = fadd(p.x, fmul(p.y, finv(p.x)));
  Elem x3 = fadd(fadd(fsqr(l), l), c_.a);
  const Elem y3 =
      fadd(fsqr(p.x), fmul(fadd(l, f().one()), x3));
  return AffinePoint::make(x3, y3);
}

AffinePoint CurveOps::add(const AffinePoint& p, const AffinePoint& q) {
  if (p.inf) return q;
  if (q.inf) return p;
  if (p.x == q.x) {
    // Same x: either Q = -P (y2 = x1 + y1) or Q = P.
    if (q.y == fadd(p.x, p.y)) return AffinePoint::infinity();
    return dbl(p);
  }
  const Elem num = fadd(p.y, q.y);
  const Elem den = fadd(p.x, q.x);
  const Elem l = fmul(num, finv(den));
  Elem x3 = fadd(fadd(fsqr(l), l), fadd(den, c_.a));
  const Elem y3 = fadd(fadd(fmul(l, fadd(p.x, x3)), x3), p.y);
  return AffinePoint::make(x3, y3);
}

LDPoint CurveOps::to_ld(const AffinePoint& p) {
  if (p.inf) return LDPoint::infinity();
  return LDPoint{p.x, p.y, f().one()};
}

AffinePoint CurveOps::to_affine(const LDPoint& p) {
  if (p.is_inf()) return AffinePoint::infinity();
  const Elem zi = finv(p.Z);
  const Elem x = fmul(p.X, zi);
  const Elem y = fmul(p.Y, fsqr(zi));
  return AffinePoint::make(x, y);
}

void CurveOps::ld_double(LDPoint& p) {
  if (p.is_inf()) return;
  if (GF2Field::is_zero(p.X)) {
    // x = 0 is the self-inverse point: 2P = infinity.
    p = LDPoint::infinity();
    return;
  }
  // Hankerson Alg 3.24.
  const Elem t1 = fsqr(p.Z);     // Z1^2
  const Elem t2 = fsqr(p.X);     // X1^2
  const Elem z3 = fmul(t1, t2);
  Elem t3 = fsqr(t1);            // Z1^4
  if (!(c_.b == f().one())) t3 = fmul(t3, c_.b);  // b Z1^4
  const Elem x3 = fadd(fsqr(t2), t3);
  Elem inner = fadd(fsqr(p.Y), t3);
  if (c_.a == f().one()) {
    inner = fadd(inner, z3);
  } else if (!GF2Field::is_zero(c_.a)) {
    inner = fadd(inner, fmul(c_.a, z3));
  }
  const Elem y3 = fadd(fmul(t3, z3), fmul(x3, inner));
  p = LDPoint{x3, y3, z3};
}

void CurveOps::ld_add_mixed(LDPoint& p, const AffinePoint& q) {
  if (q.inf) return;
  if (p.is_inf()) {
    p = to_ld(q);
    return;
  }
  // Hankerson Alg 3.25.
  const Elem z1sq = fsqr(p.Z);
  const Elem a_ = fadd(fmul(q.y, z1sq), p.Y);      // A
  const Elem b_ = fadd(fmul(q.x, p.Z), p.X);       // B
  if (GF2Field::is_zero(b_)) {
    if (GF2Field::is_zero(a_)) {
      ld_double(p);
    } else {
      p = LDPoint::infinity();
    }
    return;
  }
  const Elem c = fmul(p.Z, b_);                    // C
  Elem d_in = c;
  if (c_.a == f().one()) {
    d_in = fadd(d_in, z1sq);
  } else if (!GF2Field::is_zero(c_.a)) {
    d_in = fadd(d_in, fmul(c_.a, z1sq));
  }
  const Elem d = fmul(fsqr(b_), d_in);             // D
  const Elem z3 = fsqr(c);                         // Z3
  const Elem e = fmul(a_, c);                      // E
  const Elem x3 = fadd(fadd(fsqr(a_), d), e);      // X3
  const Elem f_ = fadd(x3, fmul(q.x, z3));         // F
  const Elem g = fmul(fadd(q.x, q.y), fsqr(z3));   // G
  const Elem y3 = fadd(fmul(fadd(e, z3), f_), g);  // Y3
  p = LDPoint{x3, y3, z3};
}

AffinePoint CurveOps::frob(const AffinePoint& p) {
  if (p.inf) return p;
  return AffinePoint::make(fsqr(p.x), fsqr(p.y));
}

void CurveOps::frob_inplace(LDPoint& p) {
  if (p.is_inf()) return;
  p.X = fsqr(p.X);
  p.Y = fsqr(p.Y);
  p.Z = fsqr(p.Z);
}

}  // namespace eccm0::ec
