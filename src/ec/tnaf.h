// Solinas tau-adic arithmetic for Koblitz curves.
//
// The paper's point multiplication uses the left-to-right width-w TNAF
// ("wTNAF") with w = 4 for random points and w = 6 for the fixed point,
// and delegates the scalar recoding to RELIC; this module implements the
// whole recoding stack from scratch:
//   * the ring Z[tau] with tau^2 = mu*tau - 2 (mu = +-1),
//   * delta = (tau^m - 1)/(tau - 1) and partial reduction
//     rho = k partmod delta (Solinas / Hankerson Alg 3.61-3.63),
//   * width-w TNAF digit expansion (Alg 3.69) with the alpha_u = u mods
//     tau^w representative table computed, not hard-coded.
#pragma once

#include <cstdint>
#include <vector>

#include "ec/curve.h"
#include "mpint/sint.h"
#include "mpint/uint.h"

namespace eccm0::ec {

/// Element a0 + a1*tau of Z[tau].
struct ZTau {
  mpint::SInt a0;
  mpint::SInt a1;

  bool is_zero() const { return a0.is_zero() && a1.is_zero(); }
  friend bool operator==(const ZTau& x, const ZTau& y) {
    return x.a0 == y.a0 && x.a1 == y.a1;
  }
};

/// Arithmetic in Z[tau] for a fixed mu in {-1, +1}.
class TauRing {
 public:
  explicit TauRing(int mu);

  int mu() const { return mu_; }

  ZTau add(const ZTau& x, const ZTau& y) const;
  ZTau sub(const ZTau& x, const ZTau& y) const;
  ZTau mul(const ZTau& x, const ZTau& y) const;
  ZTau neg(const ZTau& x) const { return {-x.a0, -x.a1}; }

  /// Conjugate: a0 + mu*a1 - a1*tau.
  ZTau conj(const ZTau& x) const;
  /// Norm N(a0 + a1 tau) = a0^2 + mu a0 a1 + 2 a1^2 >= 0.
  mpint::SInt norm(const ZTau& x) const;

  /// Lucas-like sequence U_0=0, U_1=1, U_{i+1} = mu*U_i - 2*U_{i-1};
  /// tau^i = U_i * tau - 2 * U_{i-1}.
  mpint::SInt lucas_u(unsigned i) const;
  ZTau tau_pow(unsigned i) const;

  /// True iff tau divides x (iff a0 is even).
  bool divisible_by_tau(const ZTau& x) const { return !x.a0.is_odd(); }
  /// x / tau (precondition: divisible).
  ZTau div_tau(const ZTau& x) const;

  /// Exact division (throws std::domain_error if d does not divide x).
  ZTau div_exact(const ZTau& x, const ZTau& d) const;
  /// Rounded division: the q minimising N(x - q*d)
  /// (Solinas rounding, Hankerson Alg 3.61, done in exact arithmetic).
  ZTau div_round(const ZTau& x, const ZTau& d) const;

 private:
  int mu_;
};

/// delta = (tau^m - 1) / (tau - 1). N(delta) equals the prime group order
/// of the curve (cross-checked in tests against the SEC2 constants).
ZTau tnaf_delta(int mu, unsigned m);

/// rho = k partmod delta: an element of Z[tau] with rho = k (mod delta)
/// and N(rho) ~ sqrt(order), so its TNAF has length ~m instead of ~2m.
ZTau partmod(const mpint::UInt& k, const BinaryCurve& curve);

/// t_w: the image of tau in Z_{2^w} (tau = t_w mod tau^w on odd classes);
/// t_w = 2 * U_{w-1} * U_w^{-1} mod 2^w.
std::uint32_t tau_mod_2w(int mu, unsigned w);

/// alpha_u = u mods tau^w for odd u = 1, 3, ..., 2^(w-1) - 1;
/// returned indexed by (u-1)/2. alpha_1 is always 1.
std::vector<ZTau> alpha_reps(int mu, unsigned w);

/// Width-w TNAF digits of rho, little-endian (digit i weights tau^i).
/// A non-zero digit u (odd, |u| < 2^(w-1)) denotes sign(u) * alpha_|u|;
/// at most one non-zero digit appears in any w consecutive positions.
/// w must be in [2, 8].
std::vector<int> wtnaf_digits(const ZTau& rho, int mu, unsigned w);

/// Evaluate a digit string back to Z[tau] (test/verification helper):
/// sum_i digit_value(u_i) * tau^i with digit values alpha_u.
ZTau wtnaf_evaluate(const std::vector<int>& digits, int mu, unsigned w);

}  // namespace eccm0::ec
