// Point representations on binary curves.
#pragma once

#include "gf2/field.h"

namespace eccm0::ec {

/// Affine point; `inf` marks the identity.
struct AffinePoint {
  gf2::Elem x{};
  gf2::Elem y{};
  bool inf = true;

  static AffinePoint infinity() { return AffinePoint{}; }
  static AffinePoint make(const gf2::Elem& x, const gf2::Elem& y) {
    return AffinePoint{x, y, false};
  }
  friend bool operator==(const AffinePoint& p, const AffinePoint& q) {
    if (p.inf || q.inf) return p.inf == q.inf;
    return p.x == q.x && p.y == q.y;
  }
};

/// Lopez-Dahab projective point: x = X/Z, y = Y/Z^2; Z = 0 is the identity.
/// The paper's point additions are done in these "mixed LD-affine"
/// coordinates.
struct LDPoint {
  gf2::Elem X{};
  gf2::Elem Y{};
  gf2::Elem Z{};  ///< zero means infinity

  bool is_inf() const { return gf2::GF2Field::is_zero(Z); }
  static LDPoint infinity() { return LDPoint{}; }
};

}  // namespace eccm0::ec
