#include "ec/protect.h"

namespace eccm0::ec {

using mpint::UInt;

const char* check_name(FaultDetectedError::Check c) {
  switch (c) {
    case FaultDetectedError::Check::kInputValidation: return "input-validation";
    case FaultDetectedError::Check::kScalarRange: return "scalar-range";
    case FaultDetectedError::Check::kResultOnCurve: return "result-on-curve";
    case FaultDetectedError::Check::kResultOrder: return "result-order";
    case FaultDetectedError::Check::kSignCoherence: return "sign-coherence";
    case FaultDetectedError::Check::kAccumulatorCollapse:
      return "accumulator-collapse";
  }
  return "unknown-check";
}

namespace {

[[noreturn]] void detected(FaultDetectedError::Check c, const char* what) {
  throw FaultDetectedError(
      c, std::string("scalarmul_protected: ") + what + " (" + check_name(c) +
             ")");
}

}  // namespace

AffinePoint scalarmul_protected(CurveOps& ops, const WtnafTable& table,
                                const AffinePoint& p, const mpint::UInt& k,
                                const ProtectOpts& opts) {
  if (opts.validate_input) {
    if (p.inf) {
      detected(FaultDetectedError::Check::kInputValidation,
               "input point is the identity");
    }
    if (!ops.on_curve(p)) {
      detected(FaultDetectedError::Check::kInputValidation,
               "input point not on curve");
    }
    if (k.is_zero() || k >= ops.curve().order) {
      detected(FaultDetectedError::Check::kScalarRange,
               "scalar outside (0, n)");
    }
  }
  bool collapsed = false;
  const LDPoint q_ld =
      mul_wtnaf_ld(ops, table, k, opts.recheck_result ? &collapsed : nullptr);
  if (opts.recheck_result) {
    // Check the loop invariant first: a collapsed-and-rebuilt
    // accumulator ends on a valid point, so the checks below would pass.
    if (collapsed) {
      detected(FaultDetectedError::Check::kAccumulatorCollapse,
               "accumulator returned to the identity mid-loop");
    }
    if (!ops.on_curve_ld(q_ld)) {
      detected(FaultDetectedError::Check::kResultOnCurve,
               "result violates curve equation");
    }
    // kP = infinity is impossible for P != inf of prime order n and
    // 0 < k < n — a faulted accumulator that collapsed to Z = 0 is the
    // only way to get here with such inputs, so refuse it.
    const bool degenerate_inputs = p.inf || k.is_zero() ||
                                   k >= ops.curve().order;
    if (q_ld.is_inf() && !degenerate_inputs) {
      detected(FaultDetectedError::Check::kResultOnCurve,
               "result is the identity for non-degenerate inputs");
    }
  }
  const AffinePoint q = ops.to_affine(q_ld);
  if (opts.order_check) {
    // n*Q must die: Q on the curve but with a cofactor-torsion component
    // survives the on-curve recheck yet fails here. This must use the
    // doubling-based wNAF ladder: the tau-adic path reduces n modulo
    // (tau^m - 1)/(tau - 1) first, and n IS the norm of that element, so
    // its tau-digit expansion is identically zero and mul_wtnaf(Q, n)
    // returns the identity for every input — a vacuous check.
    if (!(mul_wnaf(ops, q, ops.curve().order, 4) == AffinePoint::infinity())) {
      detected(FaultDetectedError::Check::kResultOrder,
               "result not annihilated by the group order");
    }
  }
  return q;
}

AffinePoint scalarmul_protected(CurveOps& ops, const AffinePoint& p,
                                const mpint::UInt& k, unsigned w,
                                const ProtectOpts& opts) {
  // The table build runs the same accumulator loop per alpha_u; a
  // collapse there poisons a table slot with a valid wrong point, so it
  // is watched under the same invariant.
  bool collapsed = false;
  const WtnafTable table =
      make_wtnaf_table(ops, p, w, opts.recheck_result ? &collapsed : nullptr);
  if (collapsed) {
    detected(FaultDetectedError::Check::kAccumulatorCollapse,
             "table accumulator returned to the identity mid-loop");
  }
  return scalarmul_protected(ops, table, p, k, opts);
}

}  // namespace eccm0::ec

