// SEC1-style point encoding for binary curves, including point
// compression via the half-trace quadratic solver — what a WSN node
// actually puts on the radio (a compressed sect233k1 point is 31 bytes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ec/ops.h"

namespace eccm0::ec {

/// Octet length of one field element for this curve (ceil(m/8)).
std::size_t field_octets(const BinaryCurve& curve);

/// Encode a point:
///   infinity      -> { 0x00 }
///   uncompressed  -> 0x04 || X || Y     (big-endian, fixed length)
///   compressed    -> 0x02|0x03 || X     (low bit of y/x selects the root)
std::vector<std::uint8_t> encode_point(const BinaryCurve& curve,
                                       const AffinePoint& p,
                                       bool compressed);

/// Decode and validate. Throws std::invalid_argument on malformed input,
/// wrong length, points off the curve, or unsolvable compressed x.
AffinePoint decode_point(CurveOps& ops, std::span<const std::uint8_t> in);

/// Field element <-> big-endian octets (fixed curve width).
std::vector<std::uint8_t> elem_to_octets(const BinaryCurve& curve,
                                         const gf2::Elem& e);
gf2::Elem elem_from_octets(const BinaryCurve& curve,
                           std::span<const std::uint8_t> in);

}  // namespace eccm0::ec
