#include "ec/curve.h"

#include <stdexcept>

#include "common/rng.h"
#include "ec/ops.h"
#include "ec/tnaf.h"

namespace eccm0::ec {

const BinaryCurve& BinaryCurve::sect233k1() {
  static const BinaryCurve c = [] {
    const gf2::GF2Field& f = gf2::GF2Field::f233();
    BinaryCurve k;
    k.field = &f;
    k.a = f.zero();
    k.b = f.one();
    k.gx = f.from_hex(
        "17232BA853A7E731AF129F22FF4149563A419C26BF50A4C9D6EEFAD6126");
    k.gy = f.from_hex(
        "1DB537DECE819B7F70F555A67C427A8CD9BF18AEB9B56E0C11056FAE6A3");
    k.order = mpint::UInt::from_hex(
        "8000000000000000000000000000069D5BB915BCD46EFB1AD5F173ABDF");
    k.cofactor = 4;
    k.koblitz = true;
    k.mu = -1;
    k.name = "sect233k1";
    return k;
  }();
  return c;
}

const BinaryCurve& BinaryCurve::sect163k1() {
  static const BinaryCurve c = [] {
    const gf2::GF2Field& f = gf2::GF2Field::f163();
    BinaryCurve k;
    k.field = &f;
    k.a = f.one();
    k.b = f.one();
    k.gx = f.from_hex("2FE13C0537BBC11ACAA07D793DE4E6D5E5C94EEE8");
    k.gy = f.from_hex("289070FB05D38FF58321F2E800536D538CCDAA3D9");
    k.order =
        mpint::UInt::from_hex("4000000000000000000020108A2E0CC0D99F8A5EF");
    k.cofactor = 2;
    k.koblitz = true;
    k.mu = 1;
    k.name = "sect163k1";
    return k;
  }();
  return c;
}

const BinaryCurve& BinaryCurve::sect233r1() {
  static const BinaryCurve c = [] {
    const gf2::GF2Field& f = gf2::GF2Field::f233();
    BinaryCurve k;
    k.field = &f;
    k.a = f.one();
    k.b = f.from_hex(
        "66647EDE6C332C7F8C0923BB58213B333B20E9CE4281FE115F7D8F90AD");
    k.gx = f.from_hex(
        "FAC9DFCBAC8313BB2139F1BB755FEF65BC391F8B36F8F8EB7371FD558B");
    k.gy = f.from_hex(
        "1006A08A41903350678E58528BEBF8A0BEFF867A7CA36716F7E01F81052");
    k.order = mpint::UInt::from_hex(
        "1000000000000000000000000000013E974E72F8A6922031D2603CFE0D7");
    k.cofactor = 2;
    k.koblitz = false;
    k.mu = 0;
    k.name = "sect233r1";
    return k;
  }();
  return c;
}

BinaryCurve BinaryCurve::derive_koblitz(const gf2::GF2Field& field,
                                        unsigned a, std::uint64_t seed,
                                        std::string name) {
  if (a > 1) throw std::invalid_argument("derive_koblitz: a must be 0 or 1");
  BinaryCurve c;
  c.field = &field;
  c.a = a == 1 ? field.one() : field.zero();
  c.b = field.one();
  c.koblitz = true;
  c.mu = a == 1 ? 1 : -1;
  c.name = std::move(name);

  // Order and cofactor from the tau-adic norms — no transcription.
  const TauRing ring(c.mu);
  c.order = ring.norm(tnaf_delta(c.mu, field.m())).abs();
  const ZTau tau_minus_1{mpint::SInt{-1}, mpint::SInt{1}};
  c.cofactor =
      static_cast<unsigned>(ring.norm(tau_minus_1).abs().low_u64());

  // Generator: decompress the first solvable x from a seeded stream and
  // clear the cofactor. The result has exact order `order` (a nontrivial
  // point of the prime-order subgroup).
  CurveOps ops(c);
  Rng rng(seed);
  for (;;) {
    const gf2::Elem x = field.random(rng);
    if (gf2::GF2Field::is_zero(x)) continue;
    // y = x*z with z^2 + z = x + a + b/x^2 (b = 1).
    gf2::Elem q = field.add(x, field.inv(field.sqr(x)));
    q = field.add(q, c.a);
    if (field.trace(q) != 0) continue;
    const gf2::Elem z = field.half_trace(q);
    AffinePoint p = AffinePoint::make(x, field.mul(x, z));
    for (unsigned h = c.cofactor; h > 1; h >>= 1) p = ops.dbl(p);
    if (p.inf) continue;
    c.gx = p.x;
    c.gy = p.y;
    return c;
  }
}

const BinaryCurve& BinaryCurve::k409_derived() {
  static const BinaryCurve c =
      derive_koblitz(gf2::GF2Field::f409(), 0, 0x409409, "K-409 (derived)");
  return c;
}

}  // namespace eccm0::ec
