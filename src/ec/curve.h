// Binary elliptic curves y^2 + xy = x^3 + a*x^2 + b over F(2^m), with the
// named SEC2 instances the paper works with.
#pragma once

#include <string>

#include "gf2/field.h"
#include "mpint/uint.h"

namespace eccm0::ec {

struct BinaryCurve {
  const gf2::GF2Field* field;
  gf2::Elem a;
  gf2::Elem b;
  gf2::Elem gx;  ///< base point G
  gf2::Elem gy;
  mpint::UInt order;  ///< prime order n of G
  unsigned cofactor;
  bool koblitz;  ///< a in {0,1}, b = 1: Frobenius endomorphism usable
  int mu;        ///< Koblitz only: mu = (-1)^(1-a), so +1 for a=1, -1 for a=0
  std::string name;

  const gf2::GF2Field& f() const { return *field; }

  /// sect233k1 (NIST K-233) — the paper's curve. a=0, b=1, h=4, mu=-1.
  static const BinaryCurve& sect233k1();
  /// sect163k1 (NIST K-163). a=1, b=1, h=2, mu=+1.
  static const BinaryCurve& sect163k1();
  /// sect233r1 (NIST B-233): random curve over the same field, for the
  /// Koblitz-vs-generic comparison (doubling instead of Frobenius).
  static const BinaryCurve& sect233r1();

  /// K-409 (sect409k1's curve equation) with **derived** domain
  /// parameters: see derive_koblitz().
  static const BinaryCurve& k409_derived();

  /// Construct a Koblitz curve (b = 1, a in {0, 1}) over `field` with
  /// domain parameters computed from scratch rather than transcribed:
  /// the group order is N((tau^m - 1)/(tau - 1)) from the Lucas sequence,
  /// the cofactor N(tau - 1), and the generator is found by a seeded
  /// search (decompress the first solvable x, multiply by the cofactor,
  /// reject the identity). The resulting subgroup is the same
  /// prime-order group a standards document would pin a canonical
  /// generator in.
  static BinaryCurve derive_koblitz(const gf2::GF2Field& field, unsigned a,
                                    std::uint64_t seed, std::string name);
};

}  // namespace eccm0::ec
