#include "ec/tnaf.h"

#include <stdexcept>

namespace eccm0::ec {

using mpint::SInt;
using mpint::UInt;

TauRing::TauRing(int mu) : mu_(mu) {
  if (mu != 1 && mu != -1) throw std::invalid_argument("TauRing: mu != +-1");
}

ZTau TauRing::add(const ZTau& x, const ZTau& y) const {
  return {x.a0 + y.a0, x.a1 + y.a1};
}

ZTau TauRing::sub(const ZTau& x, const ZTau& y) const {
  return {x.a0 - y.a0, x.a1 - y.a1};
}

ZTau TauRing::mul(const ZTau& x, const ZTau& y) const {
  // (a0 + a1 t)(b0 + b1 t) with t^2 = mu t - 2.
  const SInt mu{mu_};
  const SInt cross = x.a1 * y.a1;
  return {x.a0 * y.a0 - (cross << 1),
          x.a0 * y.a1 + x.a1 * y.a0 + mu * cross};
}

ZTau TauRing::conj(const ZTau& x) const {
  return {x.a0 + SInt{mu_} * x.a1, -x.a1};
}

SInt TauRing::norm(const ZTau& x) const {
  return x.a0 * x.a0 + SInt{mu_} * x.a0 * x.a1 + ((x.a1 * x.a1) << 1);
}

SInt TauRing::lucas_u(unsigned i) const {
  SInt u0{0};
  SInt u1{1};
  if (i == 0) return u0;
  for (unsigned k = 1; k < i; ++k) {
    const SInt u2 = SInt{mu_} * u1 - (u0 << 1);
    u0 = u1;
    u1 = u2;
  }
  return u1;
}

ZTau TauRing::tau_pow(unsigned i) const {
  if (i == 0) return {SInt{1}, SInt{0}};
  // tau^i = U_i tau - 2 U_{i-1}.
  return {-(lucas_u(i - 1) << 1), lucas_u(i)};
}

ZTau TauRing::div_tau(const ZTau& x) const {
  if (x.a0.is_odd()) throw std::domain_error("div_tau: not divisible");
  const SInt half = x.a0.half();
  return {x.a1 + SInt{mu_} * half, -half};
}

ZTau TauRing::div_exact(const ZTau& x, const ZTau& d) const {
  const SInt n = norm(d);
  if (n.is_zero()) throw std::domain_error("div_exact: zero divisor");
  const ZTau num = mul(x, conj(d));
  const UInt nu = n.abs();
  const SInt q0 = SInt::div_floor(num.a0, nu);
  const SInt q1 = SInt::div_floor(num.a1, nu);
  if (!(q0 * SInt{nu} == num.a0) || !(q1 * SInt{nu} == num.a1)) {
    throw std::domain_error("div_exact: not divisible");
  }
  return {q0, q1};
}

ZTau TauRing::div_round(const ZTau& x, const ZTau& d) const {
  // lambda_i = num_i / N exactly; Solinas rounding with all comparisons
  // scaled by N so everything stays integral (Hankerson Alg 3.61).
  const SInt n = norm(d);
  if (n.is_zero()) throw std::domain_error("div_round: zero divisor");
  const ZTau num = mul(x, conj(d));
  const UInt nu = n.abs();
  const SInt N{nu};
  const SInt f0 = SInt::div_round(num.a0, nu);
  const SInt f1 = SInt::div_round(num.a1, nu);
  const SInt e0 = num.a0 - f0 * N;  // eta0 * N, |e0| <= N/2
  const SInt e1 = num.a1 - f1 * N;
  const SInt mu{mu_};
  SInt h0{0};
  SInt h1{0};
  const SInt eta = (e0 << 1) + mu * e1;  // (2 eta0 + mu eta1) * N
  if (eta >= N) {
    if (e0 - mu * e1 * SInt{3} < -N) {
      h1 = mu;
    } else {
      h0 = SInt{1};
    }
  } else {
    if (e0 + mu * e1 * SInt{4} >= (N << 1)) h1 = mu;
  }
  if (eta < -N) {
    if (e0 - mu * e1 * SInt{3} >= N) {
      h1 = -mu;
    } else {
      h0 = SInt{-1};
    }
  } else {
    if (e0 + mu * e1 * SInt{4} < -(N << 1)) h1 = -mu;
  }
  return {f0 + h0, f1 + h1};
}

ZTau tnaf_delta(int mu, unsigned m) {
  const TauRing ring(mu);
  const ZTau tm = ring.tau_pow(m);
  const ZTau tm_minus_1{tm.a0 - SInt{1}, tm.a1};
  const ZTau tau_minus_1{SInt{-1}, SInt{1}};
  return ring.div_exact(tm_minus_1, tau_minus_1);
}

ZTau partmod(const UInt& k, const BinaryCurve& curve) {
  if (!curve.koblitz) throw std::invalid_argument("partmod: not Koblitz");
  const TauRing ring(curve.mu);
  const ZTau delta = tnaf_delta(curve.mu, curve.f().m());
  const ZTau kz{SInt{k, false}, SInt{0}};
  const ZTau q = ring.div_round(kz, delta);
  return ring.sub(kz, ring.mul(q, delta));
}

std::uint32_t tau_mod_2w(int mu, unsigned w) {
  if (w < 2 || w > 8) throw std::invalid_argument("tau_mod_2w: w out of range");
  const TauRing ring(mu);
  const std::int64_t uw1 = ring.lucas_u(w - 1).to_i64();
  const std::int64_t uw = ring.lucas_u(w).to_i64();
  const std::int64_t mod = std::int64_t{1} << w;
  // U_w is odd; invert it mod 2^w by brute force (w <= 8).
  std::int64_t inv = 0;
  const std::int64_t uw_mod = ((uw % mod) + mod) % mod;
  for (std::int64_t cand = 1; cand < mod; cand += 2) {
    if ((uw_mod * cand) % mod == 1) {
      inv = cand;
      break;
    }
  }
  const std::int64_t t = ((2 * uw1 % mod) * inv % mod + mod) % mod;
  return static_cast<std::uint32_t>(t);
}

std::vector<ZTau> alpha_reps(int mu, unsigned w) {
  const TauRing ring(mu);
  const ZTau tw = ring.tau_pow(w);
  std::vector<ZTau> reps;
  for (std::uint32_t u = 1; u < (1u << (w - 1)); u += 2) {
    const ZTau uz{SInt{static_cast<std::int64_t>(u)}, SInt{0}};
    const ZTau q = ring.div_round(uz, tw);
    reps.push_back(ring.sub(uz, ring.mul(q, tw)));
  }
  return reps;
}

std::vector<int> wtnaf_digits(const ZTau& rho, int mu, unsigned w) {
  if (w < 2 || w > 8) {
    throw std::invalid_argument("wtnaf_digits: w out of range");
  }
  const TauRing ring(mu);
  const auto alphas = alpha_reps(mu, w);
  const std::int64_t tw = tau_mod_2w(mu, w);
  std::vector<int> digits;
  ZTau r = rho;
  while (!r.is_zero()) {
    int u = 0;
    if (r.a0.is_odd()) {
      const std::int64_t r0 = r.a0.mods_pow2(w + 1);  // enough low bits
      const std::int64_t r1 = r.a1.mods_pow2(w + 1);
      const std::int64_t mod = std::int64_t{1} << w;
      std::int64_t v = (r0 + r1 * tw) % mod;
      v = ((v % mod) + mod) % mod;
      if (v >= mod / 2) v -= mod;
      u = static_cast<int>(v);
      const ZTau& alpha = alphas[static_cast<std::size_t>(std::abs(u) / 2)];
      r = u > 0 ? ring.sub(r, alpha) : ring.add(r, alpha);
    }
    digits.push_back(u);
    r = ring.div_tau(r);
  }
  return digits;
}

ZTau wtnaf_evaluate(const std::vector<int>& digits, int mu, unsigned w) {
  const TauRing ring(mu);
  const auto alphas = alpha_reps(mu, w);
  // Horner from the top digit down: acc = acc*tau + digit.
  ZTau acc{SInt{0}, SInt{0}};
  const ZTau tau{SInt{0}, SInt{1}};
  for (std::size_t i = digits.size(); i-- > 0;) {
    acc = ring.mul(acc, tau);
    const int u = digits[i];
    if (u != 0) {
      const ZTau& alpha = alphas[static_cast<std::size_t>(std::abs(u) / 2)];
      acc = u > 0 ? ring.add(acc, alpha) : ring.sub(acc, alpha);
    }
  }
  return acc;
}

}  // namespace eccm0::ec
