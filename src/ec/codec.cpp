#include "ec/codec.h"

#include <stdexcept>

namespace eccm0::ec {

using gf2::Elem;
using gf2::GF2Field;

std::size_t field_octets(const BinaryCurve& curve) {
  return (curve.f().m() + 7) / 8;
}

std::vector<std::uint8_t> elem_to_octets(const BinaryCurve& curve,
                                         const Elem& e) {
  const std::size_t len = field_octets(curve);
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    // out[0] is the most significant byte.
    const std::size_t byte = len - 1 - i;
    out[i] = static_cast<std::uint8_t>(e[byte / 4] >> (8 * (byte % 4)));
  }
  return out;
}

Elem elem_from_octets(const BinaryCurve& curve,
                      std::span<const std::uint8_t> in) {
  if (in.size() != field_octets(curve)) {
    throw std::invalid_argument("elem_from_octets: wrong length");
  }
  Elem e{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::size_t byte = in.size() - 1 - i;
    e[byte / 4] |= static_cast<Word>(in[i]) << (8 * (byte % 4));
  }
  if (poly_degree(std::span<const Word>(e)) >=
      static_cast<int>(curve.f().m())) {
    throw std::invalid_argument("elem_from_octets: value exceeds the field");
  }
  return e;
}

std::vector<std::uint8_t> encode_point(const BinaryCurve& curve,
                                       const AffinePoint& p,
                                       bool compressed) {
  if (p.inf) return {0x00};
  std::vector<std::uint8_t> out;
  const auto x = elem_to_octets(curve, p.x);
  if (!compressed) {
    out.push_back(0x04);
    out.insert(out.end(), x.begin(), x.end());
    const auto y = elem_to_octets(curve, p.y);
    out.insert(out.end(), y.begin(), y.end());
    return out;
  }
  // y-tilde = low bit of y/x (0 when x = 0, by SEC1 convention).
  unsigned bit = 0;
  if (!GF2Field::is_zero(p.x)) {
    const Elem z = curve.f().div(p.y, p.x);
    bit = z[0] & 1u;
  }
  out.push_back(static_cast<std::uint8_t>(0x02 | bit));
  out.insert(out.end(), x.begin(), x.end());
  return out;
}

AffinePoint decode_point(CurveOps& ops, std::span<const std::uint8_t> in) {
  const auto& curve = ops.curve();
  const GF2Field& f = curve.f();
  if (in.empty()) throw std::invalid_argument("decode_point: empty");
  if (in[0] == 0x00) {
    if (in.size() != 1) throw std::invalid_argument("decode_point: trailing");
    return AffinePoint::infinity();
  }
  const std::size_t flen = field_octets(curve);
  if (in[0] == 0x04) {
    if (in.size() != 1 + 2 * flen) {
      throw std::invalid_argument("decode_point: bad uncompressed length");
    }
    const AffinePoint p = AffinePoint::make(
        elem_from_octets(curve, in.subspan(1, flen)),
        elem_from_octets(curve, in.subspan(1 + flen, flen)));
    if (!ops.on_curve(p)) {
      throw std::invalid_argument("decode_point: point not on curve");
    }
    return p;
  }
  if (in[0] != 0x02 && in[0] != 0x03) {
    throw std::invalid_argument("decode_point: bad prefix");
  }
  if (in.size() != 1 + flen) {
    throw std::invalid_argument("decode_point: bad compressed length");
  }
  const unsigned want_bit = in[0] & 1u;
  const Elem x = elem_from_octets(curve, in.subspan(1, flen));
  if (GF2Field::is_zero(x)) {
    // y^2 = b  ->  y = sqrt(b).
    if (want_bit != 0) {
      throw std::invalid_argument("decode_point: invalid y-tilde for x=0");
    }
    return AffinePoint::make(x, f.sqrt(curve.b));
  }
  // Substitute y = x z: z^2 + z = x + a + b / x^2 =: c, solvable iff
  // Tr(c) = 0; pick the root whose low bit matches.
  const Elem x2 = f.sqr(x);
  Elem c = f.add(x, f.div(curve.b, x2));
  c = f.add(c, curve.a);
  if (f.trace(c) != 0) {
    throw std::invalid_argument("decode_point: x has no point on the curve");
  }
  Elem z = f.half_trace(c);
  if ((z[0] & 1u) != want_bit) z = f.add(z, f.one());
  const AffinePoint p = AffinePoint::make(x, f.mul(x, z));
  if (!ops.on_curve(p)) {
    throw std::invalid_argument("decode_point: decompression failed");
  }
  return p;
}

}  // namespace eccm0::ec
