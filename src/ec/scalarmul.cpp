#include "ec/scalarmul.h"

#include <stdexcept>

namespace eccm0::ec {

using gf2::Elem;
using gf2::GF2Field;
using mpint::SInt;
using mpint::UInt;

AffinePoint mul_naive(CurveOps& ops, const AffinePoint& p, const UInt& k) {
  AffinePoint acc = AffinePoint::infinity();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = ops.dbl(acc);
    if (k.bit(i)) acc = ops.add(acc, p);
  }
  return acc;
}

AffinePoint ztau_apply(CurveOps& ops, const ZTau& z, const AffinePoint& p) {
  // (a0 + a1 tau) P = a0*P + a1*tau(P) with tiny |a0|, |a1|.
  auto small_mul = [&ops](const SInt& s, const AffinePoint& q) {
    const std::int64_t v = s.to_i64();
    const std::uint64_t a = static_cast<std::uint64_t>(v < 0 ? -v : v);
    AffinePoint acc = AffinePoint::infinity();
    for (int i = 63; i >= 0; --i) {
      acc = ops.dbl(acc);
      if ((a >> i) & 1u) acc = ops.add(acc, q);
    }
    return v < 0 ? ops.neg(acc) : acc;
  };
  const AffinePoint t0 = small_mul(z.a0, p);
  const AffinePoint t1 = small_mul(z.a1, ops.frob(p));
  return ops.add(t0, t1);
}

std::vector<AffinePoint> batch_to_affine(CurveOps& ops,
                                         std::span<const LDPoint> pts) {
  // Montgomery's trick: prefix-multiply the Z coordinates, invert the
  // total once, then walk back unwinding individual inverses.
  std::vector<AffinePoint> out(pts.size());
  std::vector<std::size_t> live;
  std::vector<gf2::Elem> prefix;  // prefix[i] = Z_{live[0]} * ... * Z_{live[i]}
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].is_inf()) continue;
    const gf2::Elem p = prefix.empty()
                            ? pts[i].Z
                            : ops.fmul(prefix.back(), pts[i].Z);
    prefix.push_back(p);
    live.push_back(i);
  }
  if (live.empty()) return out;
  gf2::Elem acc = ops.finv(prefix.back());
  for (std::size_t k = live.size(); k-- > 0;) {
    const std::size_t i = live[k];
    const gf2::Elem zi =
        k == 0 ? acc : ops.fmul(acc, prefix[k - 1]);  // 1/Z_i
    acc = k == 0 ? acc : ops.fmul(acc, pts[i].Z);     // strip Z_i
    out[i] = AffinePoint::make(ops.fmul(pts[i].X, zi),
                               ops.fmul(pts[i].Y, ops.fsqr(zi)));
  }
  return out;
}

namespace {

/// Mixed add plus the identity-collapse invariant: once an accumulator
/// has left the identity, an honest run can never bring it back (every
/// partial sum is a nonzero multiple of the base point).
void add_mixed_watched(CurveOps& ops, LDPoint& q, const AffinePoint& p,
                       bool* collapsed) {
  const bool was_inf = q.is_inf();
  ops.ld_add_mixed(q, p);
  if (collapsed != nullptr && !was_inf && q.is_inf()) *collapsed = true;
}

}  // namespace

WtnafTable make_wtnaf_table(CurveOps& ops, const AffinePoint& p, unsigned w,
                            bool* collapsed) {
  const auto& curve = ops.curve();
  if (!curve.koblitz) {
    throw std::invalid_argument("make_wtnaf_table: curve is not Koblitz");
  }
  WtnafTable t;
  t.w = w;
  if (p.inf) {
    t.points.assign(std::size_t{1} << (w - 2), AffinePoint::infinity());
    return t;
  }
  // alpha_u * P evaluated through the *tau-adic expansion of alpha_u*
  // itself: each alpha has tiny norm, so its width-2 TNAF is a handful of
  // +-1 digits — a few Frobenius maps and mixed additions of +-P, all in
  // projective coordinates. One simultaneous inversion normalises the
  // whole table (the paper's "TNAF Precomputation" stays around a single
  // inversion's cost).
  const auto alphas = alpha_reps(curve.mu, w);
  const AffinePoint neg_p = ops.neg(p);
  std::vector<LDPoint> proj;
  proj.reserve(alphas.size());
  for (const ZTau& a : alphas) {
    const auto digits = wtnaf_digits(a, curve.mu, 2);
    LDPoint q = LDPoint::infinity();
    for (std::size_t i = digits.size(); i-- > 0;) {
      ops.frob_inplace(q);
      if (digits[i] > 0) {
        add_mixed_watched(ops, q, p, collapsed);
      } else if (digits[i] < 0) {
        add_mixed_watched(ops, q, neg_p, collapsed);
      }
    }
    proj.push_back(q);
  }
  t.points = batch_to_affine(ops, proj);
  return t;
}

LDPoint mul_wtnaf_ld(CurveOps& ops, const WtnafTable& table, const UInt& k,
                     bool* collapsed) {
  const auto& curve = ops.curve();
  if (k.is_zero()) return LDPoint::infinity();
  const ZTau rho = partmod(k, curve);
  const auto digits = wtnaf_digits(rho, curve.mu, table.w);
  LDPoint q = LDPoint::infinity();
  for (std::size_t i = digits.size(); i-- > 0;) {
    ops.frob_inplace(q);
    const int u = digits[i];
    if (u != 0) {
      const AffinePoint& pu =
          table.points[static_cast<std::size_t>(u > 0 ? u : -u) / 2];
      add_mixed_watched(ops, q, u > 0 ? pu : ops.neg(pu), collapsed);
    }
  }
  return q;
}

AffinePoint mul_wtnaf(CurveOps& ops, const WtnafTable& table, const UInt& k) {
  return ops.to_affine(mul_wtnaf_ld(ops, table, k));
}

AffinePoint mul_wtnaf(CurveOps& ops, const AffinePoint& p, const UInt& k,
                      unsigned w) {
  const WtnafTable table = make_wtnaf_table(ops, p, w);
  return mul_wtnaf(ops, table, k);
}

AffinePoint mul_wnaf(CurveOps& ops, const AffinePoint& p, const UInt& k,
                     unsigned w) {
  // Recode k into width-w NAF digits (little-endian).
  std::vector<int> digits;
  SInt s{k, false};
  while (!s.is_zero()) {
    int u = 0;
    if (s.is_odd()) {
      u = static_cast<int>(s.mods_pow2(w));
      s = s - SInt{u};
    }
    digits.push_back(u);
    s = s.half();
  }
  // Precompute odd multiples 1P, 3P, ..., (2^(w-1)-1)P.
  std::vector<AffinePoint> odd;
  odd.push_back(p);
  const AffinePoint p2 = ops.dbl(p);
  for (unsigned i = 1; i < (1u << (w - 2)); ++i) {
    odd.push_back(ops.add(odd.back(), p2));
  }
  LDPoint q = LDPoint::infinity();
  for (std::size_t i = digits.size(); i-- > 0;) {
    ops.ld_double(q);
    const int u = digits[i];
    if (u != 0) {
      const AffinePoint& pu = odd[static_cast<std::size_t>(u > 0 ? u : -u) / 2];
      ops.ld_add_mixed(q, u > 0 ? pu : ops.neg(pu));
    }
  }
  return ops.to_affine(q);
}

AffinePoint mul_ladder(CurveOps& ops, const AffinePoint& p, const UInt& k) {
  return mul_ladder(ops, p, k, nullptr);
}

AffinePoint mul_ladder(CurveOps& ops, const AffinePoint& p, const UInt& k,
                       std::vector<FieldOpCounts>* per_step) {
  if (p.inf || k.is_zero()) return AffinePoint::infinity();
  if (k == UInt{1}) return p;
  const auto& f = ops.f();
  const Elem& b = ops.curve().b;
  // Hankerson Alg 3.40: x-only ladder. R1 tracks jP, R2 tracks (j+1)P.
  Elem x1 = p.x;
  Elem z1 = f.one();
  Elem x2 = ops.fadd(ops.fsqr(ops.fsqr(p.x)), b);  // x^4 + b
  Elem z2 = ops.fsqr(p.x);
  auto madd = [&](Elem& xa, Elem& za, const Elem& xb, const Elem& zb) {
    // (xa, za) <- add of the two ladder points (difference has x = p.x).
    const Elem t1 = ops.fmul(xa, zb);
    const Elem t2 = ops.fmul(xb, za);
    const Elem t3 = ops.fadd(t1, t2);
    za = ops.fsqr(t3);
    xa = ops.fadd(ops.fmul(p.x, za), ops.fmul(t1, t2));
  };
  auto mdouble = [&](Elem& x, Elem& z) {
    const Elem xx = ops.fsqr(x);
    const Elem zz = ops.fsqr(z);
    x = ops.fadd(ops.fsqr(xx), ops.fmul(b, ops.fsqr(zz)));
    z = ops.fmul(xx, zz);
  };
  for (std::size_t i = k.bit_length() - 1; i-- > 0;) {
    const FieldOpCounts before = ops.counts();
    if (k.bit(i)) {
      madd(x1, z1, x2, z2);
      mdouble(x2, z2);
    } else {
      madd(x2, z2, x1, z1);
      mdouble(x1, z1);
    }
    if (per_step != nullptr) per_step->push_back(ops.counts() - before);
  }
  if (GF2Field::is_zero(z1)) return AffinePoint::infinity();
  if (GF2Field::is_zero(z2)) return ops.neg(p);  // kP = -P when (k+1)P = inf
  // y-recovery (Alg 3.41).
  const Elem xa = ops.fmul(x1, ops.finv(z1));
  const Elem xb = ops.fmul(x2, ops.finv(z2));
  const Elem t1 = ops.fadd(xa, p.x);
  const Elem t2 = ops.fadd(xb, p.x);
  Elem y = ops.fmul(t1, t2);
  y = ops.fadd(y, ops.fsqr(p.x));
  y = ops.fadd(y, p.y);
  y = ops.fmul(y, t1);
  y = ops.fmul(y, ops.finv(p.x));
  y = ops.fadd(y, p.y);
  return AffinePoint::make(xa, y);
}

}  // namespace eccm0::ec
