// Cycle/energy costing of point multiplications (paper Tables 4 and 7).
//
// A real wTNAF scalar multiplication is executed (so digit counts, adds,
// and field-op tallies are exact, not estimated) and then priced with a
// FieldCostTable holding the per-routine cycle costs. The field-routine
// prices come from VM measurements (asmkernels) or the traced C models;
// the small bookkeeping constants (call overhead, loop cost, recoding
// cost per digit) are documented calibration parameters.
#pragma once

#include <string>

#include "costmodel/energy.h"
#include "ec/ops.h"
#include "ec/scalarmul.h"

namespace eccm0::ec {

/// Per-routine cycle prices + overhead model for one implementation.
struct FieldCostTable {
  std::string name;
  std::uint64_t mul = 0;      ///< full modular multiplication
  std::uint64_t mul_lut = 0;  ///< LUT-generation share of `mul`
  std::uint64_t sqr = 0;
  std::uint64_t inv = 0;
  /// Average energy density of the implementation's instruction mix.
  double pj_per_cycle = 11.9;

  // Calibrated bookkeeping constants (cycles).
  std::uint64_t fadd = 48;            ///< n-word XOR through memory
  std::uint64_t call_overhead = 28;   ///< per field-op call (push/pop, bl/bx)
  std::uint64_t per_digit = 42;       ///< scalar-mult loop body bookkeeping
  std::uint64_t point_copy = 60;      ///< LD point move
  std::uint64_t tnaf_per_digit = 600; ///< recoding: one tau-division step
  std::uint64_t tnaf_fixed = 38000;   ///< recoding: partmod + setup
};

/// The paper's Table 7 rows.
struct PointMulCost {
  std::uint64_t tnaf_repr = 0;
  std::uint64_t tnaf_precomp = 0;
  std::uint64_t multiply = 0;
  std::uint64_t multiply_precomp = 0;
  std::uint64_t square = 0;
  std::uint64_t inversion = 0;
  std::uint64_t support = 0;

  std::uint64_t total() const {
    return tnaf_repr + tnaf_precomp + multiply + multiply_precomp + square +
           inversion + support;
  }
};

/// Result of one costed point multiplication.
struct CostedRun {
  AffinePoint result;
  PointMulCost cost;
  std::size_t digits = 0;     ///< wTNAF length
  std::size_t adds = 0;       ///< non-zero digits (point additions)
  FieldOpCounts main_ops;     ///< field ops in the Horner loop + finish
  FieldOpCounts precomp_ops;  ///< field ops building the table

  double energy_uj(const FieldCostTable& t) const {
    return static_cast<double>(cost.total()) * t.pj_per_cycle * 1e-6;
  }
  double time_ms() const {
    return static_cast<double>(cost.total()) / costmodel::kClockHz * 1e3;
  }
  double avg_power_uw(const FieldCostTable& t) const {
    return energy_uj(t) / time_ms() * 1e3;  // uJ/ms = mW
  }
};

/// Execute and price k*P. `fixed_base` models the paper's kG path: the
/// wTNAF table is precomputed offline, so the precomputation row is zero.
CostedRun cost_point_mul(const BinaryCurve& curve, const AffinePoint& p,
                         const mpint::UInt& k, unsigned w, bool fixed_base,
                         const FieldCostTable& prices);

}  // namespace eccm0::ec
