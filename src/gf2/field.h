// Runtime-parameterised binary field F(2^m) with fixed-capacity elements.
//
// One class serves every curve in the repo: it dispatches to the optimised
// K-233 kernel when constructed with the sect233k1/sect233r1 modulus and
// falls back to generic comb multiplication + word-at-a-time reduction for
// the other NIST binary fields (163, 283, ...).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/words.h"
#include "gf2/poly.h"

namespace eccm0::gf2 {

/// Capacity of a field element in words; supports m <= 415.
inline constexpr std::size_t kMaxFieldWords = 13;

/// A field element. Words beyond the field's width are always zero, so
/// plain == compares correctly regardless of the owning field's size.
using Elem = std::array<Word, kMaxFieldWords>;

struct GF2FieldParams {
  unsigned m;                   ///< extension degree
  std::vector<unsigned> terms;  ///< modulus exponents, descending, incl m, 0
  std::string name;
};

class GF2Field {
 public:
  explicit GF2Field(GF2FieldParams p);

  /// F(2^233) with z^233 + z^74 + 1 (sect233k1 / sect233r1).
  static const GF2Field& f233();
  /// F(2^163) with z^163 + z^7 + z^6 + z^3 + 1 (sect163k1 / sect163r2).
  static const GF2Field& f163();
  /// F(2^283) with z^283 + z^12 + z^7 + z^5 + 1 (sect283k1).
  static const GF2Field& f283();
  /// F(2^409) with z^409 + z^87 + 1 (sect409k1).
  static const GF2Field& f409();

  const std::string& name() const { return params_.name; }
  unsigned m() const { return params_.m; }
  std::size_t words() const { return n_; }
  const std::vector<unsigned>& modulus_terms() const { return params_.terms; }

  Elem zero() const { return Elem{}; }
  Elem one() const {
    Elem e{};
    e[0] = 1;
    return e;
  }
  static bool is_zero(const Elem& a);
  static bool eq(const Elem& a, const Elem& b) { return a == b; }

  Elem add(const Elem& a, const Elem& b) const;
  Elem mul(const Elem& a, const Elem& b) const;
  Elem sqr(const Elem& a) const;
  /// Inverse via the Extended Euclidean Algorithm. Precondition: a != 0.
  Elem inv(const Elem& a) const;
  Elem div(const Elem& a, const Elem& b) const { return mul(a, inv(b)); }

  /// Square root: a^(2^(m-1)), i.e. m-1 modular squarings.
  Elem sqrt(const Elem& a) const;
  /// Trace map Tr(a) in {0, 1}.
  unsigned trace(const Elem& a) const;
  /// Half-trace (m odd): H(a) solves z^2 + z = a when Tr(a) = 0.
  Elem half_trace(const Elem& a) const;

  /// a^(2^k) by repeated squaring.
  Elem frob(const Elem& a, unsigned k) const;

  Elem from_hex(std::string_view hex) const;
  std::string to_hex(const Elem& a) const;
  Elem from_poly(const Poly& p) const;
  Poly to_poly(const Elem& a) const;
  /// Uniform random field element.
  Elem random(Rng& rng) const;

  /// Reduce a 2n-word raw product in place; result in the first n words.
  void reduce_wide(std::span<Word> c) const;

 private:
  GF2FieldParams params_;
  std::size_t n_;      ///< words per element
  Word top_mask_;      ///< mask of used bits in the top word
  bool fast233_;       ///< dispatch to the k233 kernel
  Poly modulus_poly_;
};

}  // namespace eccm0::gf2
