#include "gf2/poly.h"

#include <algorithm>
#include <stdexcept>

#include "common/hex.h"

namespace eccm0::gf2 {

Poly::Poly(std::vector<Word> words) : w_(std::move(words)) { normalize(); }

void Poly::normalize() {
  while (!w_.empty() && w_.back() == 0) w_.pop_back();
}

Poly Poly::one() { return Poly{{1}}; }

Poly Poly::monomial(std::size_t e) {
  std::vector<Word> w(e / kWordBits + 1, 0);
  w[e / kWordBits] = Word{1} << (e % kWordBits);
  return Poly{std::move(w)};
}

Poly Poly::from_exponents(std::span<const unsigned> exps) {
  Poly p;
  for (unsigned e : exps) p ^= monomial(e);
  return p;
}

Poly Poly::from_hex(std::string_view hex) { return Poly{words_from_hex(hex)}; }

int Poly::degree() const { return poly_degree(w_); }

bool Poly::bit(std::size_t i) const {
  if (i / kWordBits >= w_.size()) return false;
  return get_bit(w_, i);
}

std::string Poly::to_hex() const { return words_to_hex(w_); }

Poly& Poly::operator^=(const Poly& o) {
  if (o.w_.size() > w_.size()) w_.resize(o.w_.size(), 0);
  for (std::size_t i = 0; i < o.w_.size(); ++i) w_[i] ^= o.w_[i];
  normalize();
  return *this;
}

Poly Poly::shifted_left(std::size_t bits) const {
  if (is_zero()) return {};
  const std::size_t wj = bits / kWordBits;
  const unsigned b = bits % kWordBits;
  std::vector<Word> r(w_.size() + wj + 1, 0);
  for (std::size_t i = 0; i < w_.size(); ++i) {
    r[i + wj] |= b == 0 ? w_[i] : (w_[i] << b);
    if (b != 0) r[i + wj + 1] |= w_[i] >> (kWordBits - b);
  }
  return Poly{std::move(r)};
}

Poly Poly::shifted_right(std::size_t bits) const {
  const std::size_t wj = bits / kWordBits;
  const unsigned b = bits % kWordBits;
  if (wj >= w_.size()) return {};
  std::vector<Word> r(w_.size() - wj, 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = b == 0 ? w_[i + wj] : (w_[i + wj] >> b);
    if (b != 0 && i + wj + 1 < w_.size()) {
      r[i] |= w_[i + wj + 1] << (kWordBits - b);
    }
  }
  return Poly{std::move(r)};
}

Poly Poly::mul(const Poly& a, const Poly& b) {
  Poly acc;
  const int da = a.degree();
  for (int i = 0; i <= da; ++i) {
    if (a.bit(static_cast<std::size_t>(i))) {
      acc ^= b.shifted_left(static_cast<std::size_t>(i));
    }
  }
  return acc;
}

Poly Poly::mod(const Poly& a, const Poly& f) {
  if (f.is_zero()) throw std::domain_error("Poly::mod by zero");
  Poly r = a;
  const int df = f.degree();
  for (int dr = r.degree(); dr >= df; dr = r.degree()) {
    r ^= f.shifted_left(static_cast<std::size_t>(dr - df));
  }
  return r;
}

Poly Poly::mulmod(const Poly& a, const Poly& b, const Poly& f) {
  return mod(mul(a, b), f);
}

Poly Poly::sqr(const Poly& a) { return mul(a, a); }

Poly Poly::gcd(Poly a, Poly b) {
  while (!b.is_zero()) {
    Poly r = mod(a, b);
    a = b;
    b = r;
  }
  return a;
}

Poly Poly::inv_mod(const Poly& a, const Poly& f) {
  // Extended Euclid: maintain g1*a = u, g2*a = v (mod f).
  Poly u = mod(a, f);
  Poly v = f;
  Poly g1 = one();
  Poly g2 = zero();
  if (u.is_zero()) throw std::domain_error("Poly::inv_mod of zero");
  while (u.degree() > 0) {
    int j = u.degree() - v.degree();
    if (j < 0) {
      std::swap(u, v);
      std::swap(g1, g2);
      j = -j;
    }
    u ^= v.shifted_left(static_cast<std::size_t>(j));
    g1 ^= g2.shifted_left(static_cast<std::size_t>(j));
  }
  if (u.is_zero()) throw std::domain_error("Poly::inv_mod: not invertible");
  return mod(g1, f);
}

}  // namespace eccm0::gf2
