#include "gf2/traced.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "gf2/sqr_table.h"

namespace eccm0::gf2::traced {
namespace {

using costmodel::OpRecorder;

/// Top non-zero word index of v, or -1 if v is zero. Used for live-range
/// tracking: words above this are known zero, so optimised methods skip
/// loading/shifting them.
int top_nonzero(std::span<const Word> v) {
  for (std::size_t i = v.size(); i-- > 0;) {
    if (v[i] != 0) return static_cast<int>(i);
  }
  return -1;
}

/// Build the 16-entry LUT T[u] = u(z) * y(z), deg(u) < 4. Entries are n
/// words (callers guarantee deg(y) <= n*W - 4, true for all our fields).
/// Counting: y is loaded once and stays register-resident; even entries are
/// made by shifting the just-read previous half entry; odd entries xor the
/// just-computed even entry (register-resident) with y.
std::vector<Word> make_lut(std::span<const Word> y, OpRecorder& rec) {
  const std::size_t n = y.size();
  std::vector<Word> t(16 * n, 0);
  rec.read(n);  // load y
  std::copy(y.begin(), y.end(), t.begin() + n);
  rec.write(n);  // store T[1]
  for (unsigned u = 2; u < 16; u += 2) {
    const Word* h = t.data() + (u / 2) * n;
    Word* e = t.data() + u * n;
    rec.read(n);  // load T[u/2]
    for (std::size_t i = n; i-- > 1;) {
      e[i] = (h[i] << 1) | (h[i - 1] >> (kWordBits - 1));
    }
    e[0] = h[0] << 1;
    rec.shift(2 * n);
    rec.xor_op(n);  // the OR combining the two shifted halves
    rec.write(n);   // store T[u]
    Word* o = t.data() + (u + 1) * n;
    for (std::size_t i = 0; i < n; ++i) o[i] = e[i] ^ y[i];
    rec.xor_op(n);  // T[u] still register-resident, y register-resident
    rec.write(n);   // store T[u+1]
  }
  return t;
}

/// One whole-vector shift left by 4 over words [0, hi], rolling the carry
/// in a register. Returns the new top index. `count_mem` selects whether a
/// word's read-modify-write hits memory (true) or registers (false),
/// per-index, letting methods B/C shift their register segment for free
/// memory-wise.
template <typename MemPredicate>
int shl4_counted(std::span<Word> v, int hi, MemPredicate in_memory,
                 OpRecorder& rec) {
  if (hi < 0) return hi;
  const int new_hi =
      (hi + 1 < static_cast<int>(v.size()) && (v[hi] >> 28) != 0) ? hi + 1
                                                                  : hi;
  for (int i = new_hi; i > 0; --i) {
    const Word x = v[i];
    v[i] = (x << 4) | (v[i - 1] >> 28);
    if (in_memory(i)) {
      if (i <= hi) rec.read(1);
      rec.write(1);
    }
    rec.shift(2);
    rec.xor_op(1);  // OR of the two parts
  }
  v[0] <<= 4;
  if (in_memory(0)) {
    rec.read(1);
    rec.write(1);
  }
  rec.shift(1);
  return new_hi;
}

void check_sizes(std::span<Word> v, std::span<const Word> x,
                 std::span<const Word> y) {
  assert(x.size() == y.size());
  assert(v.size() == 2 * x.size());
  (void)v;
  (void)x;
  (void)y;
}

}  // namespace

void mul_ld_plain(std::span<Word> v, std::span<const Word> x,
                  std::span<const Word> y, OpRecorder& rec) {
  check_sizes(v, x, y);
  const std::size_t n = x.size();
  const auto lut = make_lut(y, rec);

  std::fill(v.begin(), v.end(), 0);
  rec.write(2 * n);  // naive method zeroes the vector in memory

  for (int j = kWordBits / kWindow - 1; j >= 0; --j) {
    for (std::size_t k = 0; k < n; ++k) {
      rec.read(1);   // x[k]
      rec.other(2);  // extract + mask of the nibble
      const unsigned u = (x[k] >> (kWindow * j)) & 0xFu;
      const Word* e = lut.data() + u * n;
      for (std::size_t l = 0; l < n; ++l) {
        rec.read(2);  // T[u][l] and v[l+k]
        v[l + k] ^= e[l];
        rec.xor_op(1);
        rec.write(1);  // v[l+k]
      }
    }
    if (j != 0) {
      // Whole-product shift; the naive method still only touches words
      // that can be non-zero (zero high words need no shifting).
      shl4_counted(v, top_nonzero(v), [](int) { return true; }, rec);
    }
  }
}

void mul_ld_rotating(std::span<Word> v, std::span<const Word> x,
                     std::span<const Word> y, OpRecorder& rec) {
  check_sizes(v, x, y);
  const std::size_t n = x.size();
  const auto lut = make_lut(y, rec);
  std::fill(v.begin(), v.end(), 0);
  rec.write(2 * n);  // static code zeroes the vector in memory
  int hi = -1;       // top non-zero index (used for the shared shift trim)

  for (int j = kWordBits / kWindow - 1; j >= 0; --j) {
    // Load the initial window v[0..n] into the n+1 rotating registers.
    // The rotation schedule is static straight-line code, so loads are
    // unconditional (no data-dependent trimming).
    rec.read(n + 1);
    for (std::size_t k = 0; k < n; ++k) {
      rec.read(1);
      rec.other(2);
      const unsigned u = (x[k] >> (kWindow * j)) & 0xFu;
      const Word* e = lut.data() + u * n;
      for (std::size_t l = 0; l < n; ++l) {
        rec.read(1);  // T[u][l]; v[l+k] is in the window
        v[l + k] ^= e[l];
        rec.xor_op(1);
      }
      // v[k] is finished for this pass: retire it, slide the window.
      rec.write(1);
      if (k + 1 < n) rec.read(1);  // incoming v[k+1+n]
    }
    hi = top_nonzero(v);
    if (j != 0) {
      // Registers hold v[n..2n-1]; shift them in place, shift the memory
      // half with read-modify-write.
      hi = shl4_counted(
          v, hi, [n](int i) { return i < static_cast<int>(n); }, rec);
    }
    // Flush the register half so the next pass can reload from v[0]
    // (static code: all n words, every pass).
    rec.write(n);
  }
}

void mul_ld_fixed(std::span<Word> v, std::span<const Word> x,
                  std::span<const Word> y, OpRecorder& rec) {
  check_sizes(v, x, y);
  const std::size_t n = x.size();
  const std::size_t w0 = fixed_window_base(n);  // v[w0 .. w0+n] pinned
  const auto in_regs = [w0, n](std::size_t i) {
    return i >= w0 && i <= w0 + n;
  };
  const auto lut = make_lut(y, rec);

  std::fill(v.begin(), v.end(), 0);
  rec.mov(n + 1);      // zero the pinned registers
  rec.write(n - 1);    // zero the memory-resident words
  int hi = -1;

  for (int j = kWordBits / kWindow - 1; j >= 0; --j) {
    for (std::size_t k = 0; k < n; ++k) {
      rec.read(1);
      rec.other(2);
      const unsigned u = (x[k] >> (kWindow * j)) & 0xFu;
      const Word* e = lut.data() + u * n;
      for (std::size_t l = 0; l < n; ++l) {
        rec.read(1);  // T[u][l]
        const std::size_t idx = l + k;
        if (!in_regs(idx)) {
          rec.read(1);  // read-modify-write of the memory word
          rec.write(1);
        }
        v[idx] ^= e[l];
        rec.xor_op(1);
      }
    }
    hi = top_nonzero(v);
    if (j != 0) {
      hi = shl4_counted(
          v, hi, [&](int i) { return !in_regs(static_cast<std::size_t>(i)); },
          rec);
    }
  }
  // Flush the pinned registers once at the end.
  for (std::size_t i = w0; i <= w0 + n && i < 2 * n; ++i) rec.write(1);
}

costmodel::OpCounts paper_ld_plain(std::uint64_t n) {
  costmodel::OpCounts c;
  c.mem_read = 16 * n * n + 23 * n;
  c.mem_write = 8 * n * n + 30 * n;
  c.xor_ops = 8 * n * n + 30 * n - 7;
  c.shift = 42 * n - 21;
  return c;
}

costmodel::OpCounts paper_ld_rotating(std::uint64_t n) {
  costmodel::OpCounts c;
  c.mem_read = 8 * n * n + 39 * n - 8;
  c.mem_write = 46 * n;
  c.xor_ops = 8 * n * n + 38 * n - 7;
  c.shift = 42 * n - 21;
  return c;
}

costmodel::OpCounts paper_ld_fixed(std::uint64_t n) {
  costmodel::OpCounts c;
  c.mem_read = 8 * n * n + 24 * n + 1;
  c.mem_write = 31 * n + 1;
  c.xor_ops = 8 * n * n + 30 * n - 7;
  c.shift = 42 * n - 21;
  return c;
}

void reduce_traced(k233::Fe& r, const k233::Prod& c0, OpRecorder& rec) {
  k233::Prod c = c0;
  for (int i = 15; i >= 8; --i) {
    const Word t = c[i];
    rec.read(1);
    // Four fold targets; two of them are adjacent so a tight loop keeps
    // one rolling, but we charge the plain read-modify-write for each.
    c[i - 8] ^= t << 23;
    c[i - 7] ^= t >> 9;
    c[i - 5] ^= t << 1;
    c[i - 4] ^= t >> 31;
    rec.shift(4);
    rec.xor_op(4);
    rec.read(4);
    rec.write(4);
  }
  const Word t = c[7] >> 9;
  rec.read(1);
  rec.shift(1);
  c[0] ^= t;
  c[2] ^= t << 10;
  c[3] ^= t >> 22;
  c[7] &= k233::kTopMask;
  rec.shift(2);
  rec.xor_op(3);
  rec.read(3);
  rec.write(4);
  rec.other(1);  // mask
  for (std::size_t i = 0; i < k233::kWords; ++i) r[i] = c[i];
}

void sqr_traced(k233::Fe& r, const k233::Fe& a, OpRecorder& rec) {
  // Model of the paper's interleaved squaring: expand word-by-word; the
  // low half of the expansion stays in registers; each high word is folded
  // into the register-resident low half the moment it is produced.
  k233::Prod wide;
  k233::sqr_expand(wide, a);
  for (std::size_t i = 0; i < k233::kWords; ++i) {
    rec.read(1);    // a[i]
    rec.shift(3);   // extract bytes 1..3
    rec.read(4);    // four table lookups
    rec.shift(2);   // position the 16-bit halves
    rec.xor_op(3);  // combine into two 32-bit words
  }
  // Fold the eight high words (word indices 8..15): four shifted xors each
  // onto register-resident targets; no stores of unreduced data.
  rec.shift(4 * 8);
  rec.xor_op(4 * 8);
  // Final fold of bits 233..255 of word 7 plus mask.
  rec.shift(3);
  rec.xor_op(3);
  rec.other(1);
  // Store the reduced result.
  rec.write(k233::kWords);
  k233::reduce(r, wide);
}

k233::Fe inv_traced(const k233::Fe& a, OpRecorder& rec) {
  assert(!k233::is_zero(a));
  k233::Fe u = a;
  k233::Fe v = k233::modulus();
  k233::Fe g1 = k233::one();
  k233::Fe g2 = k233::zero();

  // The paper's optimisation: the top-word indices of u and v are cached so
  // degree computation reads one word instead of scanning, and the u<->v
  // swap is free (two mirrored code segments instead of memory swaps).
  auto deg = [&rec](const k233::Fe& e) {
    rec.read(1);   // top word (index cached)
    rec.other(2);  // normalise within the word
    return poly_degree(std::span<const Word>(e));
  };
  // xor-shift of a full n-word vector: the paper's "variable field shift
  // function". Full width (the compiled C the paper measured does not trim
  // to the live degree).
  auto xor_shifted = [&rec](k233::Fe& dst, const k233::Fe& src,
                            unsigned bits) {
    const unsigned wj = bits / kWordBits;
    const unsigned b = bits % kWordBits;
    for (std::size_t i = 0; i + wj < k233::kWords; ++i) {
      dst[i + wj] ^= b == 0 ? (src[i] << b) : (src[i] << b);
      if (b != 0 && i + wj + 1 < k233::kWords) {
        dst[i + wj + 1] ^= src[i] >> (kWordBits - b);
      }
    }
    rec.read(2 * k233::kWords);  // src word + dst word
    rec.write(k233::kWords);
    rec.shift(2 * k233::kWords);
    rec.xor_op(2 * k233::kWords);
    rec.other(8);  // call + loop bookkeeping of the shift function
  };

  int du = deg(u);
  int dv = static_cast<int>(k233::kDegree);
  while (du > 0) {
    int j = du - dv;
    if (j < 0) {
      std::swap(u, v);
      std::swap(g1, g2);
      std::swap(du, dv);
      j = -j;
      // swap-free by construction: no operations recorded
    }
    xor_shifted(u, v, static_cast<unsigned>(j));
    xor_shifted(g1, g2, static_cast<unsigned>(j));
    rec.other(6);  // loop control, branch, index updates
    du = deg(u);
  }
  return g1;
}

k233::Fe mul_traced(const k233::Fe& a, const k233::Fe& b, OpRecorder& rec) {
  k233::Prod p;
  mul_ld_fixed(std::span<Word>(p), std::span<const Word>(a),
               std::span<const Word>(b), rec);
  k233::Fe r;
  reduce_traced(r, p, rec);
  return r;
}

}  // namespace eccm0::gf2::traced
