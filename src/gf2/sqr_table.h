// Byte-expansion table for binary-field squaring (paper section 3.2.4).
//
// Squaring a binary polynomial interleaves zero bits between its
// coefficients; the table maps a byte b7..b0 to the 16-bit value
// 0b0 b7 0 b6 ... 0 b0. The paper uses a 256-entry 16-bit table
// ("requiring 4 kB" counts the expanded working storage; the table itself
// is 512 bytes).
#pragma once

#include <array>
#include <cstdint>

namespace eccm0::gf2 {

constexpr std::array<std::uint16_t, 256> make_square_table() {
  std::array<std::uint16_t, 256> t{};
  for (unsigned b = 0; b < 256; ++b) {
    std::uint16_t r = 0;
    for (unsigned i = 0; i < 8; ++i) {
      if ((b >> i) & 1u) r |= static_cast<std::uint16_t>(1u << (2 * i));
    }
    t[b] = r;
  }
  return t;
}

inline constexpr std::array<std::uint16_t, 256> kSquareTable =
    make_square_table();

/// Expand one 32-bit word into its 64-bit square (bits spread).
constexpr std::uint64_t square_spread(std::uint32_t w) {
  return static_cast<std::uint64_t>(kSquareTable[w & 0xFF]) |
         static_cast<std::uint64_t>(kSquareTable[(w >> 8) & 0xFF]) << 16 |
         static_cast<std::uint64_t>(kSquareTable[(w >> 16) & 0xFF]) << 32 |
         static_cast<std::uint64_t>(kSquareTable[(w >> 24) & 0xFF]) << 48;
}

}  // namespace eccm0::gf2
