// Operation-traced implementations of the three field multipliers the
// paper compares (Tables 1 and 2), plus traced squaring, reduction and
// inversion used for the Table 6/7 cost accounting.
//
//   Method A  mul_ld_plain     — plain Lopez-Dahab: the whole 2n-word
//                                partial-product vector lives in memory.
//   Method B  mul_ld_rotating  — Aranha et al.: a window of n+1 registers
//                                slides over the partial product; one word
//                                retires / one loads per column.
//   Method C  mul_ld_fixed     — the paper's proposal: the n+1 most
//                                frequently used words v[(n-1)/2 ..
//                                (n-1)/2 + n] are pinned in registers for
//                                the whole multiplication.
//
// Every traced routine computes the true product (differentially tested
// against the comb oracle) while ticking an OpRecorder with the abstract
// operation mix the paper's model counts: memory reads/writes, XORs and
// single-word shifts. Register-to-register traffic is counted as `mov`,
// which the paper's cycle model prices like any 1-cycle ALU op.
//
// Accounting policy (uniform across methods so the comparison is fair):
//   * the multiplicand y is loaded into registers once for LUT generation;
//   * LUT entries are built even-by-shift / odd-by-xor and stored;
//   * a value just read or computed is register-resident and free to reuse;
//   * the inter-pass shift by w touches only words that can be non-zero
//     (live-range tracked), reading/writing memory-resident words and
//     shifting register-resident words in place;
//   * loads of words known to be zero are skipped (the vector starts
//     zeroed; zeroing a register is a mov).
// The header of each bench prints the paper's closed-form Table 1 counts
// next to these measured counts; residual differences (~10%) come from
// bookkeeping the paper's formulas elide and are discussed in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/words.h"
#include "costmodel/opcount.h"
#include "gf2/k233.h"

namespace eccm0::gf2::traced {

/// Window size used throughout (the paper fixes w = 4).
inline constexpr unsigned kWindow = 4;

/// Multiply two n-word polynomials into the 2n-word v, counting
/// operations. v.size() must be 2 * x.size() and x.size() == y.size().
void mul_ld_plain(std::span<Word> v, std::span<const Word> x,
                  std::span<const Word> y, costmodel::OpRecorder& rec);
void mul_ld_rotating(std::span<Word> v, std::span<const Word> x,
                     std::span<const Word> y, costmodel::OpRecorder& rec);
void mul_ld_fixed(std::span<Word> v, std::span<const Word> x,
                  std::span<const Word> y, costmodel::OpRecorder& rec);

/// First register-resident word index for method C at a given n.
constexpr std::size_t fixed_window_base(std::size_t n) { return (n - 1) / 2; }

/// Paper Table 1 closed-form operation counts.
costmodel::OpCounts paper_ld_plain(std::uint64_t n);
costmodel::OpCounts paper_ld_rotating(std::uint64_t n);
costmodel::OpCounts paper_ld_fixed(std::uint64_t n);

/// Traced K-233 word-at-a-time reduction of a 16-word product.
void reduce_traced(k233::Fe& r, const k233::Prod& c,
                   costmodel::OpRecorder& rec);

/// Traced K-233 modular squaring, modelling the paper's interleaving: the
/// lower half of the expansion stays in registers, each upper word is
/// folded immediately and never stored.
void sqr_traced(k233::Fe& r, const k233::Fe& a, costmodel::OpRecorder& rec);

/// Traced K-233 inversion (EEA) with the paper's optimisations modelled:
/// swap-free dual code segments (a swap costs nothing) and cached
/// top-word indices for fast degree computation.
k233::Fe inv_traced(const k233::Fe& a, costmodel::OpRecorder& rec);

/// Full traced modular multiplication (method C + traced reduction).
k233::Fe mul_traced(const k233::Fe& a, const k233::Fe& b,
                    costmodel::OpRecorder& rec);

}  // namespace eccm0::gf2::traced
