#include "gf2/field.h"

#include <cassert>
#include <stdexcept>

#include "common/hex.h"
#include "gf2/k233.h"
#include "gf2/sqr_table.h"

namespace eccm0::gf2 {
namespace {

k233::Fe to233(const Elem& a) {
  k233::Fe f;
  for (std::size_t i = 0; i < k233::kWords; ++i) f[i] = a[i];
  return f;
}

Elem from233(const k233::Fe& f) {
  Elem e{};
  for (std::size_t i = 0; i < k233::kWords; ++i) e[i] = f[i];
  return e;
}

}  // namespace

GF2Field::GF2Field(GF2FieldParams p) : params_(std::move(p)) {
  const unsigned m = params_.m;
  if (params_.terms.empty() || params_.terms.front() != m ||
      params_.terms.back() != 0) {
    throw std::invalid_argument("GF2Field: modulus must span x^m .. 1");
  }
  if (m % kWordBits == 0) {
    throw std::invalid_argument("GF2Field: m must not be a word multiple");
  }
  // Word-at-a-time reduction needs all lower terms at least two words
  // below the leading one (true for every NIST binary field).
  const unsigned t2 = params_.terms.size() > 1 ? params_.terms[1] : 0;
  if (t2 != 0 && m - t2 < 2 * kWordBits) {
    throw std::invalid_argument("GF2Field: modulus tail too close to x^m");
  }
  n_ = words_for_bits(m);
  if (n_ > kMaxFieldWords) throw std::invalid_argument("GF2Field: m too big");
  top_mask_ = (Word{1} << (m % kWordBits)) - 1;
  fast233_ = (m == 233 && params_.terms == std::vector<unsigned>{233, 74, 0});
  modulus_poly_ = Poly::from_exponents(params_.terms);
}

const GF2Field& GF2Field::f233() {
  static const GF2Field f{GF2FieldParams{233, {233, 74, 0}, "F(2^233)"}};
  return f;
}

const GF2Field& GF2Field::f163() {
  static const GF2Field f{GF2FieldParams{163, {163, 7, 6, 3, 0}, "F(2^163)"}};
  return f;
}

const GF2Field& GF2Field::f283() {
  static const GF2Field f{GF2FieldParams{283, {283, 12, 7, 5, 0}, "F(2^283)"}};
  return f;
}

const GF2Field& GF2Field::f409() {
  static const GF2Field f{GF2FieldParams{409, {409, 87, 0}, "F(2^409)"}};
  return f;
}

bool GF2Field::is_zero(const Elem& a) {
  Word acc = 0;
  for (Word w : a) acc |= w;
  return acc == 0;
}

Elem GF2Field::add(const Elem& a, const Elem& b) const {
  Elem r;
  for (std::size_t i = 0; i < kMaxFieldWords; ++i) r[i] = a[i] ^ b[i];
  return r;
}

void GF2Field::reduce_wide(std::span<Word> c) const {
  const unsigned m = params_.m;
  const std::size_t mw = m / kWordBits;
  const unsigned mb = m % kWordBits;
  // Fold whole words above the one containing bit m, top-down. Bit 32*i+j
  // (j in [0,32)) of word i reduces to bit 32*i+j - (m - t) for every
  // lower modulus term t (including t = 0).
  for (std::size_t i = c.size() - 1; i > mw; --i) {
    const Word t = c[i];
    if (t == 0) continue;
    c[i] = 0;
    for (std::size_t k = 1; k < params_.terms.size(); ++k) {
      const std::size_t q = i * kWordBits - (m - params_.terms[k]);
      const unsigned b = q % kWordBits;
      c[q / kWordBits] ^= t << b;
      if (b != 0) c[q / kWordBits + 1] ^= t >> (kWordBits - b);
    }
  }
  // Fold the bits of the boundary word that sit at or above bit m.
  const Word t = c[mw] >> mb;
  if (t != 0) {
    for (std::size_t k = 1; k < params_.terms.size(); ++k) {
      const unsigned tm = params_.terms[k];
      const unsigned b = tm % kWordBits;
      c[tm / kWordBits] ^= t << b;
      if (b != 0) c[tm / kWordBits + 1] ^= t >> (kWordBits - b);
    }
  }
  c[mw] &= top_mask_;
}

Elem GF2Field::mul(const Elem& a, const Elem& b) const {
  if (fast233_) {
    return from233(k233::mul(to233(a), to233(b)));
  }
  // Generic right-to-left comb (Hankerson Alg 2.34) into a wide buffer.
  std::array<Word, 2 * kMaxFieldWords> v{};
  std::array<Word, kMaxFieldWords + 1> sh{};  // b << bit
  for (std::size_t i = 0; i < n_; ++i) sh[i] = b[i];
  for (unsigned bit = 0; bit < kWordBits; ++bit) {
    for (std::size_t k = 0; k < n_; ++k) {
      if ((a[k] >> bit) & 1u) {
        for (std::size_t l = 0; l <= n_; ++l) v[k + l] ^= sh[l];
      }
    }
    if (bit + 1 < kWordBits) {
      for (std::size_t i = n_; i > 0; --i) {
        sh[i] = (sh[i] << 1) | (sh[i - 1] >> (kWordBits - 1));
      }
      sh[0] <<= 1;
    }
  }
  reduce_wide(std::span<Word>(v.data(), 2 * n_));
  Elem r{};
  for (std::size_t i = 0; i < n_; ++i) r[i] = v[i];
  return r;
}

Elem GF2Field::sqr(const Elem& a) const {
  if (fast233_) {
    k233::Fe r;
    k233::sqr(r, to233(a));
    return from233(r);
  }
  std::array<Word, 2 * kMaxFieldWords> v{};
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t s = square_spread(a[i]);
    v[2 * i] = static_cast<Word>(s);
    v[2 * i + 1] = static_cast<Word>(s >> 32);
  }
  reduce_wide(std::span<Word>(v.data(), 2 * n_));
  Elem r{};
  for (std::size_t i = 0; i < n_; ++i) r[i] = v[i];
  return r;
}

Elem GF2Field::inv(const Elem& a) const {
  assert(!is_zero(a));
  if (fast233_) {
    return from233(k233::inv(to233(a)));
  }
  // Extended Euclidean Algorithm over n_-word polynomials.
  Elem u = a;
  Elem v{};
  for (unsigned e : params_.terms) set_bit(v, e);
  Elem g1 = one();
  Elem g2 = zero();
  auto deg = [](const Elem& x) { return poly_degree(std::span<const Word>(x)); };
  auto xor_shifted = [this](Elem& dst, const Elem& src, unsigned bits) {
    const unsigned wj = bits / kWordBits;
    const unsigned b = bits % kWordBits;
    for (std::size_t i = 0; i + wj < kMaxFieldWords; ++i) {
      dst[i + wj] ^= b == 0 ? src[i] : (src[i] << b);
      if (b != 0 && i + wj + 1 < kMaxFieldWords) {
        dst[i + wj + 1] ^= src[i] >> (kWordBits - b);
      }
    }
    (void)this;
  };
  int du = deg(u);
  int dv = static_cast<int>(params_.m);
  while (du > 0) {
    int j = du - dv;
    if (j < 0) {
      std::swap(u, v);
      std::swap(g1, g2);
      std::swap(du, dv);
      j = -j;
    }
    xor_shifted(u, v, static_cast<unsigned>(j));
    xor_shifted(g1, g2, static_cast<unsigned>(j));
    du = deg(u);
  }
  return g1;
}

Elem GF2Field::sqrt(const Elem& a) const {
  Elem r = a;
  for (unsigned i = 0; i + 1 < params_.m; ++i) r = sqr(r);
  return r;
}

unsigned GF2Field::trace(const Elem& a) const {
  Elem t = a;
  Elem acc = a;
  for (unsigned i = 1; i < params_.m; ++i) {
    t = sqr(t);
    acc = add(acc, t);
  }
  // acc is 0 or 1 by theory.
  return static_cast<unsigned>(acc[0] & 1u);
}

Elem GF2Field::half_trace(const Elem& a) const {
  assert(params_.m % 2 == 1);
  Elem acc = a;
  for (unsigned i = 1; i <= (params_.m - 1) / 2; ++i) {
    acc = sqr(sqr(acc));
    acc = add(acc, a);
  }
  return acc;
}

Elem GF2Field::frob(const Elem& a, unsigned k) const {
  Elem r = a;
  for (unsigned i = 0; i < k; ++i) r = sqr(r);
  return r;
}

Elem GF2Field::from_hex(std::string_view hex) const {
  Elem e{};
  words_from_hex(hex, std::span<Word>(e.data(), n_));
  return e;
}

std::string GF2Field::to_hex(const Elem& a) const {
  return words_to_hex(std::span<const Word>(a.data(), n_));
}

Elem GF2Field::from_poly(const Poly& p) const {
  if (p.degree() >= static_cast<int>(params_.m)) {
    return from_poly(Poly::mod(p, modulus_poly_));
  }
  Elem e{};
  auto w = p.words();
  for (std::size_t i = 0; i < w.size(); ++i) e[i] = w[i];
  return e;
}

Poly GF2Field::to_poly(const Elem& a) const {
  return Poly{std::vector<Word>(a.begin(), a.begin() + n_)};
}

Elem GF2Field::random(Rng& rng) const {
  Elem e{};
  rng.fill(std::span<Word>(e.data(), n_));
  e[n_ - 1] &= top_mask_;
  return e;
}

}  // namespace eccm0::gf2
