#include "gf2/k233.h"

#include <cassert>
#include <span>

#include "gf2/sqr_table.h"

namespace eccm0::gf2::k233 {
namespace {

/// dst ^= src << bits, for bits in [0, 255 - degree(src)]. Words of the
/// shifted value that fall outside dst are discarded (callers guarantee
/// they are zero).
void xor_shifted(Fe& dst, const Fe& src, unsigned bits) {
  const unsigned wj = bits / kWordBits;
  const unsigned b = bits % kWordBits;
  if (b == 0) {
    for (std::size_t i = 0; i + wj < kWords; ++i) dst[i + wj] ^= src[i];
    return;
  }
  for (std::size_t i = 0; i + wj < kWords; ++i) {
    dst[i + wj] ^= src[i] << b;
    if (i + wj + 1 < kWords) dst[i + wj + 1] ^= src[i] >> (kWordBits - b);
  }
}

/// Whole-product left shift by 4 bits (the inter-pass shift of LD w = 4).
void shl4(Prod& v) {
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    v[i] = (v[i] << 4) | (v[i - 1] >> (kWordBits - 4));
  }
  v[0] <<= 4;
}

/// Comb multiplication of two N-word operands into a 2N-word product
/// (Hankerson et al. Alg 2.34 right-to-left comb). Base case for
/// Karatsuba and generally useful for sub-width products.
template <std::size_t N>
void mul_comb(std::array<Word, 2 * N>& v, const std::array<Word, N>& x,
              const std::array<Word, N>& y) {
  v = {};
  // b holds y << bit; one extra word catches the overflow.
  std::array<Word, N + 1> b{};
  for (std::size_t i = 0; i < N; ++i) b[i] = y[i];
  for (unsigned bit = 0; bit < kWordBits; ++bit) {
    for (std::size_t k = 0; k < N; ++k) {
      if ((x[k] >> bit) & 1u) {
        for (std::size_t l = 0; l <= N; ++l) {
          if (k + l < 2 * N) v[k + l] ^= b[l];
        }
      }
    }
    if (bit + 1 < kWordBits) {
      for (std::size_t i = N; i > 0; --i) {
        b[i] = (b[i] << 1) | (b[i - 1] >> (kWordBits - 1));
      }
      b[0] <<= 1;
    }
  }
}

}  // namespace

int degree(const Fe& a) { return poly_degree(std::span<const Word>(a)); }

void mul_shift_add(Prod& v, const Fe& x, const Fe& y) {
  v = {};
  // Accumulate y << i for every set bit i of x, via a sliding copy of y.
  std::array<Word, 2 * kWords> b{};
  for (std::size_t i = 0; i < kWords; ++i) b[i] = y[i];
  for (unsigned i = 0; i < kWords * kWordBits; ++i) {
    if (get_bit(std::span<const Word>(x), i)) {
      for (std::size_t w = 0; w < b.size(); ++w) v[w] ^= b[w];
    }
    for (std::size_t w = b.size() - 1; w > 0; --w) {
      b[w] = (b[w] << 1) | (b[w - 1] >> (kWordBits - 1));
    }
    b[0] <<= 1;
  }
}

void mul_ld(Prod& v, const Fe& x, const Fe& y) {
  // T[u] = u(z) * y(z) for deg(u) < 4. deg(y) <= 232 <= n*W - (w-1) = 253,
  // so by the paper's eq. (1) each entry fits in n = 8 words.
  std::array<Fe, 16> t;
  t[0] = Fe{};
  t[1] = y;
  for (unsigned u = 2; u < 16; u += 2) {
    const Fe& h = t[u / 2];
    Fe& e = t[u];
    for (std::size_t i = kWords - 1; i > 0; --i) {
      e[i] = (h[i] << 1) | (h[i - 1] >> (kWordBits - 1));
    }
    e[0] = h[0] << 1;
    t[u + 1] = add(e, y);
  }

  v = {};
  for (int j = kWordBits / 4 - 1; j >= 0; --j) {
    for (std::size_t k = 0; k < kWords; ++k) {
      const unsigned u = (x[k] >> (4 * j)) & 0xFu;
      const Fe& e = t[u];
      for (std::size_t l = 0; l < kWords; ++l) v[l + k] ^= e[l];
    }
    if (j != 0) shl4(v);
  }
}

void mul_karatsuba(Prod& v, const Fe& x, const Fe& y) {
  using Half = std::array<Word, 4>;
  auto lo = [](const Fe& a) { return Half{a[0], a[1], a[2], a[3]}; };
  auto hi = [](const Fe& a) { return Half{a[4], a[5], a[6], a[7]}; };
  auto hxor = [](const Half& a, const Half& b) {
    return Half{a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]};
  };

  std::array<Word, 8> z0, z1, z2;
  mul_comb<4>(z0, lo(x), lo(y));
  mul_comb<4>(z2, hi(x), hi(y));
  mul_comb<4>(z1, hxor(lo(x), hi(x)), hxor(lo(y), hi(y)));

  v = {};
  for (std::size_t i = 0; i < 8; ++i) {
    v[i] ^= z0[i];
    v[i + 8] ^= z2[i];
    v[i + 4] ^= z1[i] ^ z0[i] ^ z2[i];
  }
}

void reduce(Fe& r, const Prod& c0) {
  // Bit 233+k folds to bits k+74 and k. Word i >= 8 sits 23 bits above the
  // 233 boundary of word i-8 (256 - 233 = 23) and 97 = 3*32 + 1 bits above
  // word i-5's base for the z^74 term.
  Prod c = c0;
  for (int i = 15; i >= 8; --i) {
    const Word t = c[i];
    c[i - 8] ^= t << 23;
    c[i - 7] ^= t >> 9;
    c[i - 5] ^= t << 1;
    c[i - 4] ^= t >> 31;
  }
  const Word t = c[7] >> 9;  // bits 233..255 of the low half
  c[0] ^= t;
  c[2] ^= t << 10;
  c[3] ^= t >> 22;
  c[7] &= kTopMask;
  for (std::size_t i = 0; i < kWords; ++i) r[i] = c[i];
}

void sqr_expand(Prod& v, const Fe& a) {
  for (std::size_t i = 0; i < kWords; ++i) {
    const std::uint64_t s = square_spread(a[i]);
    v[2 * i] = static_cast<Word>(s);
    v[2 * i + 1] = static_cast<Word>(s >> 32);
  }
}

void sqr(Fe& r, const Fe& a) {
  // The expansion's upper half never reaches memory on the target: the
  // paper folds each upper word as it is produced. On the host we express
  // the same computation as expand + top-down fold; the memory behaviour
  // of the interleaved form is modelled by the traced variant.
  Prod v;
  sqr_expand(v, a);
  reduce(r, v);
}

Fe mul(const Fe& a, const Fe& b) {
  Prod p;
  mul_ld(p, a, b);
  Fe r;
  reduce(r, p);
  return r;
}

Fe inv_itoh_tsujii(const Fe& a) {
  assert(!is_zero(a));
  // beta_k = a^(2^k - 1); beta_{i+j} = beta_i^(2^j) * beta_j.
  auto sqr_n = [](Fe x, unsigned n) {
    for (unsigned i = 0; i < n; ++i) sqr(x, x);
    return x;
  };
  auto step = [&](const Fe& bi, const Fe& bj, unsigned j) {
    return mul(sqr_n(bi, j), bj);
  };
  const Fe b1 = a;
  const Fe b2 = step(b1, b1, 1);
  const Fe b3 = step(b2, b1, 1);
  const Fe b6 = step(b3, b3, 3);
  const Fe b7 = step(b6, b1, 1);
  const Fe b14 = step(b7, b7, 7);
  const Fe b28 = step(b14, b14, 14);
  const Fe b29 = step(b28, b1, 1);
  const Fe b58 = step(b29, b29, 29);
  const Fe b116 = step(b58, b58, 58);
  const Fe b232 = step(b116, b116, 116);
  // a^-1 = (a^(2^232 - 1))^2.
  Fe r;
  sqr(r, b232);
  return r;
}

Fe inv(const Fe& a) {
  assert(!is_zero(a));
  // Extended Euclidean Algorithm for binary polynomials
  // (Hankerson et al. Alg 2.48). Invariants: g1*a = u, g2*a = v (mod f).
  Fe u = a;
  Fe v = modulus();
  Fe g1 = one();
  Fe g2 = zero();
  int du = degree(u);
  int dv = static_cast<int>(kDegree);
  while (du > 0) {
    int j = du - dv;
    if (j < 0) {
      std::swap(u, v);
      std::swap(g1, g2);
      std::swap(du, dv);
      j = -j;
    }
    xor_shifted(u, v, static_cast<unsigned>(j));
    xor_shifted(g1, g2, static_cast<unsigned>(j));
    du = degree(u);
  }
  return g1;
}

}  // namespace eccm0::gf2::k233
