// Optimised arithmetic kernel for F(2^233) with the NIST/SEC2 trinomial
// f(z) = z^233 + z^74 + 1 — the field under the paper's sect233k1 curve.
//
// Elements are 8 little-endian 32-bit words (n = 8, the paper's parameter);
// raw products are 16 words. The multipliers mirror the algorithms the
// paper compares:
//   * mul_shift_add  — bit-serial reference (test oracle)
//   * mul_ld         — plain Lopez-Dahab, window w = 4 (paper method A)
//   * mul_karatsuba  — Karatsuba-Ofman over two 4-word halves (related work)
// All produce identical 16-word products; `mul` composes the fast LD path
// with the word-at-a-time trinomial reduction.
#pragma once

#include <array>

#include "common/words.h"

namespace eccm0::gf2::k233 {

inline constexpr unsigned kDegree = 233;
inline constexpr std::size_t kWords = 8;  ///< the paper's n
/// Mask for the 9 used bits of the top word (233 - 7*32 = 9).
inline constexpr Word kTopMask = 0x1FF;

using Fe = std::array<Word, kWords>;        ///< reduced field element
using Prod = std::array<Word, 2 * kWords>;  ///< unreduced product

/// The reduction polynomial f(z) = z^233 + z^74 + 1 as a field element
/// image (used by the inversion loop, where v starts as f).
constexpr Fe modulus() {
  Fe f{};
  f[0] = 1u;            // z^0
  f[2] = 1u << 10;      // z^74 = bit 74 = word 2, bit 10
  f[7] = 1u << 9;       // z^233 = bit 233 = word 7, bit 9
  return f;
}

constexpr Fe zero() { return Fe{}; }
constexpr Fe one() {
  Fe f{};
  f[0] = 1;
  return f;
}

constexpr bool is_zero(const Fe& a) {
  Word acc = 0;
  for (Word w : a) acc |= w;
  return acc == 0;
}

constexpr Fe add(const Fe& a, const Fe& b) {
  Fe r;
  for (std::size_t i = 0; i < kWords; ++i) r[i] = a[i] ^ b[i];
  return r;
}

/// Degree of the polynomial in `a` (-1 for zero).
int degree(const Fe& a);

/// Bit-serial multiplication: the independent reference oracle.
void mul_shift_add(Prod& v, const Fe& x, const Fe& y);

/// Plain Lopez-Dahab multiplication, w = 4 (the paper's method A data
/// flow): 16-entry lookup table of u(z)*y(z), left-to-right nibble scan of
/// x, whole-product shift by 4 between passes.
void mul_ld(Prod& v, const Fe& x, const Fe& y);

/// Karatsuba-Ofman over 4-word halves with comb base multiplication.
void mul_karatsuba(Prod& v, const Fe& x, const Fe& y);

/// Word-at-a-time reduction modulo z^233 + z^74 + 1 (paper section 3.2.2).
void reduce(Fe& r, const Prod& c);

/// Table-based squaring expansion (no reduction): v = a(z)^2.
void sqr_expand(Prod& v, const Fe& a);

/// Modular squaring, expansion interleaved with reduction so the upper
/// half is folded as it is produced (paper section 3.2.4).
void sqr(Fe& r, const Fe& a);

/// Modular multiplication (LD w = 4 + trinomial reduction).
Fe mul(const Fe& a, const Fe& b);

/// Inversion by the Extended Euclidean Algorithm for binary polynomials
/// (paper section 3.2.3). Precondition: a != 0.
Fe inv(const Fe& a);

/// Inversion by Itoh-Tsujii (Fermat): a^(2^233 - 2) via the addition
/// chain 1-2-3-6-7-14-28-29-58-116-232 — 10 multiplications and 231
/// squarings. The multiplication-based alternative the EEA competes
/// against on this platform. Precondition: a != 0.
Fe inv_itoh_tsujii(const Fe& a);

/// r = a / b = a * inv(b). Precondition: b != 0.
inline Fe div(const Fe& a, const Fe& b) { return mul(a, inv(b)); }

}  // namespace eccm0::gf2::k233
