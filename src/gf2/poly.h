// Arbitrary-degree binary polynomials. This is the slow, obviously-correct
// reference implementation used as the differential-test oracle for every
// optimised kernel, and as scaffolding for generic-field setup.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/words.h"

namespace eccm0::gf2 {

/// Binary polynomial, little-endian words, always normalised (no trailing
/// zero words; the zero polynomial has an empty word vector).
class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<Word> words);

  static Poly zero() { return Poly{}; }
  static Poly one();
  /// The monomial z^e.
  static Poly monomial(std::size_t e);
  /// Sum of monomials, e.g. from_exponents({233, 74, 0}) is the K-233 modulus.
  static Poly from_exponents(std::span<const unsigned> exps);
  static Poly from_hex(std::string_view hex);

  int degree() const;  ///< -1 for zero
  bool is_zero() const { return w_.empty(); }
  bool bit(std::size_t i) const;
  std::span<const Word> words() const { return w_; }
  std::string to_hex() const;

  Poly& operator^=(const Poly& o);
  friend Poly operator^(Poly a, const Poly& b) { return a ^= b; }
  friend bool operator==(const Poly&, const Poly&) = default;

  Poly shifted_left(std::size_t bits) const;
  Poly shifted_right(std::size_t bits) const;

  /// Bit-serial product.
  static Poly mul(const Poly& a, const Poly& b);
  /// Remainder of a modulo f (deg f >= 0).
  static Poly mod(const Poly& a, const Poly& f);
  static Poly mulmod(const Poly& a, const Poly& b, const Poly& f);
  static Poly sqr(const Poly& a);
  /// Polynomial GCD.
  static Poly gcd(Poly a, Poly b);
  /// Inverse of a modulo f; throws std::domain_error if gcd(a, f) != 1.
  static Poly inv_mod(const Poly& a, const Poly& f);

 private:
  void normalize();
  std::vector<Word> w_;
};

}  // namespace eccm0::gf2
