// Deterministic parallel batch executor for campaigns and bench sweeps.
//
// The repo's statistical experiments (fault campaigns, throughput
// sweeps) are embarrassingly parallel once each task is a pure function
// of its index: every worker gets its own execution context (Cpu +
// Memory) over the shared immutable armvm::Program images, and its own
// RNG stream split from the campaign seed (Rng::split). The executor's
// only job is to hand out indices and collect results into per-index
// slots — aggregation then happens in index order, so the merged result
// is bit-identical to a serial run regardless of thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace eccm0::telemetry {
class MetricsRegistry;
}

namespace eccm0::sim {

class BatchExecutor {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency(); 1 runs
  /// everything inline on the calling thread (no pool, no locking).
  explicit BatchExecutor(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Opt into telemetry (nullptr = off, the default). When set, every
  /// for_each records `batch.batches` / `batch.tasks` counters and
  /// per-task `batch.queue_wait_ns` / `batch.run_ns` wall histograms.
  /// Workers record into private shards merged in worker-index order
  /// after the join, so the registry mutex is touched once per batch,
  /// not once per task. The counters (and any deterministic metrics the
  /// tasks tally themselves) are thread-count-invariant; the _ns
  /// histograms are wall-clock and therefore excluded from manifest
  /// snapshots by their Unit. With no registry the dispatch loop takes
  /// no clock reads and no locks — same cost as before telemetry
  /// existed.
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }
  telemetry::MetricsRegistry* metrics() const { return metrics_; }

  /// Invoke fn(i) exactly once for every i in [0, n), distributed over
  /// the pool. fn must be safe to call concurrently from different
  /// threads for different indices (tasks share only immutable state).
  /// If tasks throw, the exception of the lowest-throwing index is
  /// rethrown after every worker has drained — again independent of
  /// thread count.
  void for_each(std::uint64_t n,
                const std::function<void(std::uint64_t)>& fn) const;

  /// for_each with one result slot per index, returned in index order.
  template <typename R>
  std::vector<R> map(std::uint64_t n,
                     const std::function<R(std::uint64_t)>& fn) const {
    std::vector<R> out(static_cast<std::size_t>(n));
    for_each(n, [&](std::uint64_t i) {
      out[static_cast<std::size_t>(i)] = fn(i);
    });
    return out;
  }

  /// Long-running form for services: spawn exactly threads() workers,
  /// each running fn(worker_index) until it returns (a service worker
  /// loops on its queue until the queue closes), and join them all.
  /// Unlike for_each there is no index space and no shard telemetry —
  /// the service owns its own per-request metrics. Exceptions escaping
  /// a worker rethrow (lowest worker index wins) after every worker has
  /// drained, mirroring the for_each contract.
  void run_workers(const std::function<void(unsigned)>& fn) const;

 private:
  unsigned threads_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace eccm0::sim
