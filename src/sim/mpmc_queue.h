// Lock-free bounded multi-producer/multi-consumer ring.
//
// The serve front-end needs a work queue that many session threads can
// push into and many BatchExecutor workers can pop from without a
// mutex on the request hot path. This is the count/value-pair ring
// design (Vyukov's bounded MPMC queue, the same scheme the joernblog
// atomic_queue notes describe): each cell carries a sequence count next
// to its value, producers and consumers claim tickets from two shared
// counters, and the per-cell count tells a claimant when its cell is
// ready — full/empty detection and slot hand-off need no lock and no
// CAS loop over shared state beyond the ticket claim itself.
//
// Guarantees:
//   * try_push/try_pop are lock-free; a full queue fails the push
//     immediately (that failure is the server's backpressure signal,
//     turned into a typed `busy` response upstream).
//   * Items pushed by one producer are delivered in that producer's
//     push order (tickets are claimed in order), and nothing is lost
//     or duplicated — the MPMC stress test pins both properties.
//   * pop_wait blocks on a C++20 atomic wait (no spinning) until an
//     item arrives or close() is called; after close the queue drains
//     remaining items before reporting exhaustion.
//   * close() is a barrier for producers: a try_push that starts after
//     close fails, and every try_push that returned true is guaranteed
//     to be drained by pop_wait before it reports exhaustion — no
//     admitted item is ever silently destroyed with the queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

namespace eccm0::sim {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to a power of two, minimum 2: the count
  /// discipline needs a cell's post-push count (pos + 1) to differ from
  /// the cell's next producer ticket (pos + capacity), which a 1-cell
  /// ring cannot do — a push could then overwrite an unconsumed item.
  /// The bound is the backpressure contract: once `capacity()` items
  /// sit unclaimed, try_push fails until a consumer makes room.
  explicit MpmcQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].count.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Items currently enqueued (racy snapshot, for stats/gauges only).
  std::size_t size_approx() const {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

  /// False when the queue is full or closed (never blocks). The
  /// pending_ bracket around the ticket claim is what lets close()
  /// promise "true means drained": a consumer in pop_wait's closed
  /// path will not report exhaustion while any push is in flight.
  bool try_push(T v) {
    pending_.fetch_add(1, std::memory_order_seq_cst);
    if (closed_.load(std::memory_order_seq_cst)) {
      pending_.fetch_sub(1, std::memory_order_release);
      return false;
    }
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t count = cell->count.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(count) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        pending_.fetch_sub(1, std::memory_order_release);
        return false;  // the cell still holds an unconsumed value: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(v);
    cell->count.store(pos + 1, std::memory_order_release);
    pending_.fetch_sub(1, std::memory_order_release);
    version_.fetch_add(1, std::memory_order_release);
    version_.notify_one();
    return true;
  }

  /// False when the queue is empty (never blocks).
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t count = cell->count.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(count) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // nothing published at this ticket yet: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->count.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Block until an item is available (true) or the queue was closed
  /// and fully drained (false). Safe for any number of consumers.
  bool pop_wait(T& out) {
    for (;;) {
      // Snapshot the version BEFORE attempting the pop: a push that
      // completes between the failed try_pop and the wait then differs
      // from `seen`, so wait() returns immediately instead of sleeping
      // through the only notify (the lost-wakeup race).
      const std::uint64_t seen = version_.load(std::memory_order_acquire);
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_seq_cst)) {
        // Drain path: a producer that claimed its ticket before close
        // may not have published its cell yet, and one mid-try_push may
        // not even have claimed. Report exhaustion only once no push is
        // in flight (pending_ == 0) and every claimed ticket has been
        // consumed (head_ == tail_) — otherwise spin until the racing
        // item becomes poppable (shutdown-only path, never hot).
        for (;;) {
          if (try_pop(out)) return true;
          if (pending_.load(std::memory_order_seq_cst) == 0 &&
              head_.load(std::memory_order_seq_cst) ==
                  tail_.load(std::memory_order_seq_cst)) {
            return false;
          }
          std::this_thread::yield();
        }
      }
      version_.wait(seen, std::memory_order_acquire);
    }
  }

  /// Wake every pop_wait; subsequent pop_wait calls drain what is left
  /// and then return false. Pushes that start after close fail, so a
  /// producer observing try_push == false on a closed queue knows its
  /// item was rejected, and a producer that got true knows a consumer
  /// will drain it.
  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    version_.fetch_add(1, std::memory_order_release);
    version_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  struct Cell {
    std::atomic<std::size_t> count{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer ticket
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer ticket
  /// Change signal for pop_wait (bumped by push and close); not a size.
  alignas(64) std::atomic<std::uint64_t> version_{0};
  /// Producers currently inside try_push (between entry and their
  /// publish/abort); pop_wait's closed drain waits for it to hit zero.
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace eccm0::sim
