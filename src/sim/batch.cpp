#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace eccm0::sim {

BatchExecutor::BatchExecutor(unsigned threads)
    : threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())) {}

void BatchExecutor::for_each(
    std::uint64_t n, const std::function<void(std::uint64_t)>& fn) const {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1) {
    for (std::uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Work-stealing by atomic counter: indices are claimed in order but
  // may complete in any order. Determinism is the tasks' property (pure
  // functions of the index), not the scheduler's.
  std::atomic<std::uint64_t> next{0};
  std::mutex err_mutex;
  std::exception_ptr first_error;
  std::uint64_t first_error_index = ~std::uint64_t{0};

  auto worker = [&] {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        // Keep the lowest-index exception so the error surfaced is the
        // same one a serial run would have hit first.
        std::lock_guard<std::mutex> lock(err_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  const unsigned nthreads =
      static_cast<unsigned>(std::min<std::uint64_t>(threads_, n));
  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  for (unsigned t = 1; t < nthreads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace eccm0::sim
