#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "telemetry/metrics.h"

namespace eccm0::sim {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Per-worker metric shard: recorded lock-free by one worker, merged
/// into the registry in worker-index order after the join.
struct Shard {
  telemetry::Histogram queue_wait;
  telemetry::Histogram run;
};

void merge_shards(telemetry::MetricsRegistry& m, std::uint64_t n,
                  const std::vector<Shard>& shards) {
  m.counter("batch.batches").add(1);
  m.counter("batch.tasks").add(n);
  for (const Shard& s : shards) {
    m.merge_histogram("batch.queue_wait_ns", telemetry::Unit::kNanos,
                      s.queue_wait);
    m.merge_histogram("batch.run_ns", telemetry::Unit::kNanos, s.run);
  }
}

}  // namespace

BatchExecutor::BatchExecutor(unsigned threads)
    : threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())) {}

void BatchExecutor::for_each(
    std::uint64_t n, const std::function<void(std::uint64_t)>& fn) const {
  if (n == 0) return;
  telemetry::MetricsRegistry* metrics = metrics_;

  if (threads_ <= 1 || n == 1) {
    if (metrics == nullptr) {
      for (std::uint64_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::vector<Shard> shards(1);
    const Clock::time_point start = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
      const Clock::time_point t0 = Clock::now();
      shards[0].queue_wait.record(ns_between(start, t0));
      fn(i);
      shards[0].run.record(ns_between(t0, Clock::now()));
    }
    merge_shards(*metrics, n, shards);
    return;
  }

  // Work-stealing by atomic counter: indices are claimed in order but
  // may complete in any order. Determinism is the tasks' property (pure
  // functions of the index), not the scheduler's.
  std::atomic<std::uint64_t> next{0};
  std::mutex err_mutex;
  std::exception_ptr first_error;
  std::uint64_t first_error_index = ~std::uint64_t{0};

  const unsigned nthreads =
      static_cast<unsigned>(std::min<std::uint64_t>(threads_, n));
  std::vector<Shard> shards(metrics != nullptr ? nthreads : 0);
  const Clock::time_point start = Clock::now();

  auto worker = [&](unsigned w) {
    Shard* shard = metrics != nullptr ? &shards[w] : nullptr;
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      Clock::time_point t0;
      if (shard != nullptr) {
        t0 = Clock::now();
        shard->queue_wait.record(ns_between(start, t0));
      }
      try {
        fn(i);
      } catch (...) {
        // Keep the lowest-index exception so the error surfaced is the
        // same one a serial run would have hit first.
        std::lock_guard<std::mutex> lock(err_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
      if (shard != nullptr) shard->run.record(ns_between(t0, Clock::now()));
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  for (unsigned t = 1; t < nthreads; ++t) pool.emplace_back(worker, t);
  worker(0);  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  if (metrics != nullptr) merge_shards(*metrics, n, shards);

  if (first_error) std::rethrow_exception(first_error);
}

void BatchExecutor::run_workers(
    const std::function<void(unsigned)>& fn) const {
  std::mutex err_mutex;
  std::exception_ptr first_error;
  unsigned first_error_worker = ~0u;

  auto worker = [&](unsigned w) {
    try {
      fn(w);
    } catch (...) {
      std::lock_guard<std::mutex> lock(err_mutex);
      if (w < first_error_worker) {
        first_error_worker = w;
        first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace eccm0::sim
