// Basic machine-word definitions and bit utilities shared by every module.
//
// The whole library models a 32-bit target (the ARM Cortex-M0+), so the
// canonical limb type is a 32-bit word even though the host is 64-bit.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace eccm0 {

/// Machine word of the modelled target (Cortex-M0+ is a 32-bit core).
using Word = std::uint32_t;
/// Double-width word used for carries and 32x32 -> 64 products.
using DWord = std::uint64_t;

/// Word size in bits (the paper's `W`).
inline constexpr unsigned kWordBits = 32;

/// Number of words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

/// Index of the most significant set bit of a non-zero word (0..31).
constexpr unsigned top_bit(Word w) {
  return kWordBits - 1 - static_cast<unsigned>(std::countl_zero(w));
}

/// Degree of the binary polynomial stored little-endian in `w`
/// (-1 for the zero polynomial).
constexpr int poly_degree(std::span<const Word> w) {
  for (std::size_t i = w.size(); i-- > 0;) {
    if (w[i] != 0) {
      return static_cast<int>(i * kWordBits + top_bit(w[i]));
    }
  }
  return -1;
}

/// Test bit `i` of the little-endian word array `w`.
constexpr bool get_bit(std::span<const Word> w, std::size_t i) {
  return (w[i / kWordBits] >> (i % kWordBits)) & 1u;
}

/// Set bit `i` of the little-endian word array `w`.
constexpr void set_bit(std::span<Word> w, std::size_t i) {
  w[i / kWordBits] |= Word{1} << (i % kWordBits);
}

/// Flip bit `i` of the little-endian word array `w`.
constexpr void flip_bit(std::span<Word> w, std::size_t i) {
  w[i / kWordBits] ^= Word{1} << (i % kWordBits);
}

}  // namespace eccm0
