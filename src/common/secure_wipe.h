// Best-effort secret zeroization.
//
// `memset` before free is legal for a compiler to elide (the store is
// dead); these helpers write through a volatile pointer and fence with a
// compiler barrier so the wipe survives optimization. This is the
// hygiene layer for ECDSA nonces, DRBG seeds and ECDH shared-secret
// temporaries: a fault or a later out-of-bounds read must not find key
// material lingering in freed heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace eccm0::common {

/// Overwrite n bytes at p with zeros; the write is not elidable.
inline void secure_wipe(void* p, std::size_t n) {
  volatile std::uint8_t* b = static_cast<volatile std::uint8_t*>(p);
  for (std::size_t i = 0; i < n; ++i) b[i] = 0;
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : : "r"(p) : "memory");
#endif
}

/// Wipe a vector's elements, then release the storage.
template <typename T>
void secure_wipe(std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "secure_wipe only handles flat element types");
  if (!v.empty()) secure_wipe(v.data(), v.size() * sizeof(T));
  v.clear();
  v.shrink_to_fit();
}

/// Wipe a string's characters, then release the storage.
inline void secure_wipe(std::string& s) {
  if (!s.empty()) secure_wipe(s.data(), s.size());
  s.clear();
  s.shrink_to_fit();
}

}  // namespace eccm0::common
