#include "common/hex.h"

#include <stdexcept>

namespace eccm0 {
namespace {

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string_view strip_prefix(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  return hex;
}

}  // namespace

std::vector<Word> words_from_hex(std::string_view hex) {
  hex = strip_prefix(hex);
  std::vector<Word> out(words_for_bits(hex.size() * 4));
  if (out.empty()) out.resize(1);
  words_from_hex(hex, out);
  return out;
}

void words_from_hex(std::string_view hex, std::span<Word> out) {
  hex = strip_prefix(hex);
  for (Word& w : out) w = 0;
  std::size_t bit = 0;  // next bit position (little-endian)
  for (std::size_t i = hex.size(); i-- > 0;) {
    int v = nibble(hex[i]);
    if (v < 0) throw std::invalid_argument("words_from_hex: non-hex digit");
    if (v != 0 && bit + 4 > out.size() * kWordBits) {
      throw std::length_error("words_from_hex: value does not fit");
    }
    if (bit + 4 <= out.size() * kWordBits) {
      out[bit / kWordBits] |=
          static_cast<Word>(v) << (bit % kWordBits);
    }
    bit += 4;
  }
}

std::string words_to_hex(std::span<const Word> w) {
  static constexpr char kDigits[] = "0123456789ABCDEF";
  std::string s;
  bool leading = true;
  for (std::size_t i = w.size(); i-- > 0;) {
    for (int shift = kWordBits - 4; shift >= 0; shift -= 4) {
      unsigned v = (w[i] >> shift) & 0xFu;
      if (leading && v == 0) continue;
      leading = false;
      s.push_back(kDigits[v]);
    }
  }
  if (s.empty()) s.push_back('0');
  return s;
}

}  // namespace eccm0
