// Hex codec between big-endian hex strings (the notation used by SEC2 /
// NIST parameter listings and the paper) and little-endian word arrays
// (the in-memory representation used by all arithmetic).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/words.h"

namespace eccm0 {

/// Parse a big-endian hex string (optionally "0x"-prefixed) into
/// little-endian words. Throws std::invalid_argument on non-hex input.
std::vector<Word> words_from_hex(std::string_view hex);

/// Parse into a caller-provided little-endian buffer (zero padded).
/// Throws std::length_error if the value does not fit.
void words_from_hex(std::string_view hex, std::span<Word> out);

/// Render little-endian words as a big-endian hex string without leading
/// zeros ("0" for zero).
std::string words_to_hex(std::span<const Word> w);

}  // namespace eccm0
