// Deterministic pseudo-random generator for tests, benches and examples.
//
// Everything in this repo that needs randomness takes an explicit Rng so
// experiments are reproducible run to run (no hidden global state).
#pragma once

#include <cstdint>
#include <span>

#include "common/words.h"

namespace eccm0 {

/// SplitMix64: tiny, high-quality, deterministic. Not cryptographic; the
/// crypto module layers an HMAC-DRBG on top when key material is needed.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  constexpr Word next_word() { return static_cast<Word>(next_u64()); }

  /// Uniform value in [0, bound) for bound > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;
  }

  constexpr void fill(std::span<Word> out) {
    for (Word& w : out) w = next_word();
  }

  constexpr void fill_bytes(std::span<std::uint8_t> out) {
    for (auto& b : out) b = static_cast<std::uint8_t>(next_u64());
  }

  /// Derive an independent child stream as a pure function of the
  /// current state and `id`; the parent is not advanced. Child streams
  /// for distinct ids are decorrelated from each other and from the
  /// parent's own output sequence. Parallel campaigns split one child
  /// per task from the campaign seed, so every task's randomness is a
  /// function of (seed, task index) alone — never of scheduling order
  /// or thread count.
  constexpr Rng split(std::uint64_t id) const {
    // SplitMix64 finalizer over the state perturbed by a golden-ratio
    // multiple of the id (id 0 must not alias the parent state).
    std::uint64_t z = state_ + 0x9E3779B97F4A7C15ull * (id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

 private:
  std::uint64_t state_;
};

}  // namespace eccm0
