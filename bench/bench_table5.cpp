// Reproduces paper Table 5: average cycle counts for modular squaring and
// modular multiplication across platforms. Literature rows are quoted;
// the Cortex-M0+ F(2^233) row is measured by running the Thumb kernels on
// the ISA simulator.
#include <cstdio>

#include "workloads/runner.h"
#include "common/rng.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;
using gf2::k233::Fe;

int main(int argc, char** argv) {
  bench::banner(
      "Table 5 - average cycles for modular squaring / multiplication");

  asmkernels::KernelVm vm;
  Rng rng(0x7AB1E5);
  Fe a, b;
  rng.fill(a);
  rng.fill(b);
  a[7] &= gf2::k233::kTopMask;
  b[7] &= gf2::k233::kTopMask;

  // Average over a few operands (cycle counts are data-independent for
  // these straight-line kernels; the average documents that).
  std::uint64_t sqr_sum = 0, mul_sum = 0;
  constexpr int kReps = 8;
  for (int i = 0; i < kReps; ++i) {
    rng.fill(a);
    rng.fill(b);
    a[7] &= gf2::k233::kTopMask;
    b[7] &= gf2::k233::kTopMask;
    sqr_sum += vm.sqr(a).stats.cycles;
    mul_sum += vm.mul(asmkernels::MulKernel::kFixedRegisters, a, b, true)
                   .stats.cycles;
  }
  // K-163 instantiation of the same kernel generator.
  asmkernels::KernelVm::Fe163 x163{}, y163{};
  for (auto& w : x163) w = rng.next_word();
  for (auto& w : y163) w = rng.next_word();
  x163[5] &= 7;
  y163[5] &= 7;
  const auto mul163 =
      vm.mul_k163(asmkernels::MulKernel::kFixedRegisters, x163, y163, true)
          .stats.cycles;

  bench::Table t({"Author", "Platform", "Word", "Sqr", "Mul", "Field",
                  "Source"});
  t.add_row({"S. Erdem", "ARM7TDMI", "32", "348", "4359", "F(2^228)",
             "paper"});
  t.add_row({"S. Erdem", "ARM7TDMI", "32", "389", "5398", "F(2^256)",
             "paper"});
  t.add_row({"Aranha et al.", "ATMega128L", "8", "570", "4508", "F(2^163)",
             "paper"});
  t.add_row({"Aranha et al.", "ATMega128L", "8", "956", "8314", "F(2^233)",
             "paper"});
  t.add_row({"Kargl et al.", "ATMega128L", "8", "663", "5490", "F(2^167)",
             "paper"});
  t.add_row({"Szczechowiak", "ATMega128L", "8", "1581", "13557",
             "F(2^271)", "paper"});
  t.add_row({"Gouvea", "MSP430X", "16", "199", "3585", "F(2^163)",
             "paper"});
  t.add_row({"Gouvea", "MSP430X", "16", "325", "8166", "F(2^283)",
             "paper"});
  t.add_row({"TinyPBC", "PXA271", "32", "187", "2025", "F(2^271)",
             "paper"});
  t.add_row({"This work (paper)", "Cortex-M0+", "32", "395", "3672",
             "F(2^233)", "paper"});
  t.add_row({"This repro (VM)", "Cortex-M0+", "32",
             bench::fmt_u64(sqr_sum / kReps), bench::fmt_u64(mul_sum / kReps),
             "F(2^233)", "this repro"});
  t.add_row({"This repro (VM)", "Cortex-M0+", "32", "-",
             bench::fmt_u64(mul163), "F(2^163)", "this repro"});
  t.print();

  std::printf(
      "\nThe reproduced kernels implement the paper's algorithms without\n"
      "its final hand-tuning (reduction is a separate pass, LUT\n"
      "generation is unoptimised); the ~25%% cycle overhead is analysed\n"
      "in EXPERIMENTS.md. The 32-bit-word advantage over the 8/16-bit\n"
      "platforms (the table's point) reproduces cleanly.\n");

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_table5.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_table5");
    w.field("bench", "table5");
    w.raw("rows", t.to_json());
    w.field("sqr_cycles", sqr_sum / kReps);
    w.field("mul_cycles", mul_sum / kReps);
    w.field("mul163_cycles", mul163);
    bench::manifest_end(w);
    w.write_file(json_path);
  }
  return 0;
}
