// Fault-injection campaign: detection coverage of the hardened kP path.
//
// Runs seeded fault injections (register flips, RAM flips, instruction
// skips, opcode flips) against the armvm field-multiplication kernel
// inside a live sect233k1 wTNAF scalar multiplication, classifies every
// run under each countermeasure profile of ec::scalarmul_protected, and
// prints the coverage matrix: countermeasure set x fault model -> %
// silent corruption. The overhead table prices what each profile costs
// on a clean run (cycles and uJ, proposed-asm prices), and a final demo
// shows ECDSA verify-after-sign refusing a faulted signature.
//
// Flags (bench::Args): --runs=N (default 1000 per model), --quick (25
//        per model), --seed=S, --curve=NAME (sect233k1 default; the
//        secp curves fault the Montgomery-mul kernel inside a Jacobian
//        wNAF ladder instead), --threads=N (batch-executor workers,
//        default 1, 0 = hardware concurrency; tallies identical for any
//        value), --json[=PATH] (default BENCH_fault_campaign.json).
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/ecdsa.h"
#include "faultsim/campaign.h"
#include "manifest.h"
#include "relic_like/costs.h"
#include "report.h"
#include "telemetry/metrics.h"
#include "telemetry/progress.h"
#include "workloads/spec.h"

namespace {

using namespace eccm0;

std::string pct(double rate) { return bench::fmt_f(rate * 100.0, 1) + "%"; }

/// Coherence demo: one deterministic fault in the nonce multiplication
/// k*G. Returns {caught_with_check, escaped_without_check}.
std::pair<bool, bool> ecdsa_coherence_demo() {
  crypto::Ecdsa ecdsa;
  std::vector<std::uint8_t> seed(32, 0x5A);
  crypto::HmacDrbg drbg(seed);
  const crypto::KeyPair kp = ecdsa.generate(drbg);
  const char* msg = "fault campaign coherence demo";
  ecdsa.set_mul_tamper([](std::uint64_t idx, const gf2::Elem&,
                          const gf2::Elem&, gf2::Elem& r) {
    if (idx == 100) r[0] ^= 1u;  // one flipped bit inside k*G
  });
  bool caught = false;
  try {
    (void)ecdsa.sign(kp.d, msg, {.coherence_check = true});
  } catch (const ec::FaultDetectedError&) {
    caught = true;
  }
  bool escaped = false;
  try {
    const crypto::Signature sig = ecdsa.sign(kp.d, msg, {});
    // Without the check the faulty signature leaves the node; it cannot
    // verify, so a peer would reject it — but the node never knows.
    escaped = !ecdsa.verify(kp.q, msg, sig);
  } catch (const ec::FaultDetectedError&) {
  }
  return {caught, escaped};
}

}  // namespace

int main(int argc, char** argv) {
  faultsim::CampaignConfig cfg;
  bool quick = false;
  bench::Args args;
  args.seed = cfg.seed;
  args.threads = cfg.threads;
  args.add_flag("--quick", &quick);
  args.add_u64("--runs", &cfg.runs_per_model);
  if (!args.parse(argc - 1, argv + 1, "BENCH_fault_campaign.json") ||
      !args.positionals().empty()) {
    return 2;
  }
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  try {
    (void)workloads::curve_from_name(args.curve);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  cfg.curve = args.curve;
  if (quick) cfg.runs_per_model = 25;
  const std::string json_path = args.json_path;

  telemetry::MetricsRegistry metrics;
  telemetry::ProgressMeter progress(
      telemetry::progress_mode_from_name(args.progress), "fault campaign",
      cfg.runs_per_model * faultsim::kNumFaultModels);
  cfg.metrics = &metrics;
  cfg.progress = &progress;

  const std::string title =
      "Fault-injection campaign: hardened kP on " + cfg.curve;
  bench::banner(title.c_str());
  std::printf("seed 0x%llx, %llu injections per fault model, %u thread(s)"
              "\n\n",
              static_cast<unsigned long long>(cfg.seed),
              static_cast<unsigned long long>(cfg.runs_per_model),
              cfg.threads);

  const auto t0 = std::chrono::steady_clock::now();
  const faultsim::CampaignResult res = faultsim::run_kp_campaign(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  const auto& profiles = faultsim::protection_profiles();

  // Coverage matrix: % of injections that escape as silent corruption.
  std::vector<std::string> model_names;
  for (const auto& m : res.models) {
    model_names.push_back(faultsim::fault_model_name(m.model));
  }
  bench::Matrix coverage("silent corruption", model_names);
  for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
    std::vector<std::string> cells;
    for (const auto& m : res.models) {
      cells.push_back(pct(m.per_profile[p].silent_rate()));
    }
    coverage.add_row(profiles[p].name, std::move(cells));
  }
  coverage.print();

  // Outcome detail per fault model.
  for (const auto& m : res.models) {
    bench::banner(faultsim::fault_model_name(m.model));
    bench::Table t({"profile", "correct", "detected", "crashed", "silent"});
    for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
      const auto& o = m.per_profile[p];
      t.add_row({profiles[p].name, bench::fmt_u64(o.correct),
                 bench::fmt_u64(o.detected), bench::fmt_u64(o.crashed),
                 bench::fmt_u64(o.silent)});
    }
    t.print();
  }

  // What the countermeasures cost when nothing goes wrong.
  bench::banner("clean-run overhead (proposed-asm prices)");
  bench::Table cost({"profile", "Fmul", "Fsqr", "Finv", "cycles", "overhead",
                     "energy uJ"});
  const std::uint64_t base_cycles = res.costs[0].cycles;
  for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
    const auto& c = res.costs[p];
    const double over =
        100.0 * (static_cast<double>(c.cycles) / base_cycles - 1.0);
    cost.add_row({profiles[p].name, bench::fmt_u64(c.ops.mul),
                  bench::fmt_u64(c.ops.sqr), bench::fmt_u64(c.ops.inv),
                  bench::fmt_u64(c.cycles), bench::fmt_f(over, 2) + "%",
                  bench::fmt_f(c.energy_uj, 2)});
  }
  cost.print();

  // ECDSA verify-after-sign.
  bench::banner("ECDSA sign coherence check");
  const auto [caught, escaped] = ecdsa_coherence_demo();
  std::printf("faulted k*G with coherence check : %s\n",
              caught ? "FaultDetectedError (sign refused)" : "NOT DETECTED");
  std::printf("same fault, no coherence check   : %s\n",
              escaped ? "invalid signature released silently"
                      : "signature unexpectedly fine");
  std::printf("\ncampaign wall time: %.2f s (%u thread(s))\n", wall_seconds,
              cfg.threads);

  bench::banner("telemetry");
  metrics.print(stdout);

  if (!json_path.empty()) {
    bench::JsonWriter w;
    // Wall time and thread count stay out of the persisted payload: the
    // manifest must be byte-identical for a fixed seed (CI compares the
    // parallel rerun's payload against the committed serial baseline).
    bench::manifest_begin(w, "bench_fault_campaign", &args);
    w.field("bench", "fault_campaign");
    w.field("curve", cfg.curve);
    w.field("seed", cfg.seed);
    w.field("runs_per_model", cfg.runs_per_model);
    w.raw("silent_rate_matrix", coverage.to_json());
    w.begin_array("models");
    for (const auto& m : res.models) {
      w.begin_object();
      w.field("model", faultsim::fault_model_name(m.model));
      w.field("runs", m.runs);
      w.field("injected", m.injected);
      w.begin_array("profiles");
      for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
        const auto& o = m.per_profile[p];
        w.begin_object();
        w.field("profile", profiles[p].name);
        w.field("correct", o.correct);
        w.field("detected", o.detected);
        w.field("crashed", o.crashed);
        w.field("silent", o.silent);
        w.field("silent_rate", o.silent_rate());
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.begin_array("overhead");
    for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
      const auto& c = res.costs[p];
      w.begin_object();
      w.field("profile", profiles[p].name);
      w.field("fmul", c.ops.mul);
      w.field("fsqr", c.ops.sqr);
      w.field("finv", c.ops.inv);
      w.field("fadd", c.ops.add);
      w.field("cycles", c.cycles);
      w.field("energy_uj", c.energy_uj);
      w.end_object();
    }
    w.end_array();
    w.field("ecdsa_coherence_detected", caught);
    w.field("ecdsa_unchecked_escape", escaped);
    bench::manifest_end(w, &metrics);
    if (w.write_file(json_path)) {
      std::printf("\nJSON written to %s\n", json_path.c_str());
    }
  }

  // The bench doubles as an assertion: with every countermeasure on,
  // nothing silent may survive, and without them faults must be visible.
  bool unprotected_sees_silent = false;
  for (const auto& m : res.models) {
    if (m.per_profile[0].silent > 0) unprotected_sees_silent = true;
    if (m.per_profile[faultsim::kNumProfiles - 1].silent != 0) {
      std::fprintf(stderr, "FAIL: silent corruption under full protection\n");
      return 1;
    }
  }
  if (!unprotected_sees_silent) {
    std::fprintf(stderr, "FAIL: no silent corruption without protection?\n");
    return 1;
  }
  if (!caught || !escaped) {
    std::fprintf(stderr, "FAIL: ECDSA coherence demo inconclusive\n");
    return 1;
  }
  return 0;
}
