// Reproduces paper Table 2: concrete operation counts and the cycle
// estimate (memory op = 2 cycles, rest 1) for the three LD variants at
// n = 8 (F(2^233)), plus the headline performance ratios.
#include <cstdio>

#include "common/rng.h"
#include "gf2/traced.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;
using costmodel::CycleModel;
using costmodel::OpCounts;
using costmodel::OpRecorder;

namespace {

struct Method {
  const char* name;
  void (*fn)(std::span<Word>, std::span<const Word>, std::span<const Word>,
             OpRecorder&);
  OpCounts (*paper)(std::uint64_t);
  std::uint64_t paper_cycles;
};

OpCounts measure(const Method& m) {
  constexpr std::size_t n = 8;
  Rng rng(7);
  std::vector<Word> x(n), y(n), v(2 * n);
  rng.fill(x);
  rng.fill(y);
  x[n - 1] &= 0x1FF;
  y[n - 1] &= 0x1FF;
  OpRecorder rec;
  m.fn(v, x, y, rec);
  return rec.counts();
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Table 2 - operations and cycle estimate for multiplication in "
      "F(2^233), n = 8, w = 4");

  const Method methods[] = {
      {"A: LD", &gf2::traced::mul_ld_plain, &gf2::traced::paper_ld_plain,
       4980},
      {"B: LD rotating regs", &gf2::traced::mul_ld_rotating,
       &gf2::traced::paper_ld_rotating, 3492},
      {"C: LD fixed regs", &gf2::traced::mul_ld_fixed,
       &gf2::traced::paper_ld_fixed, 2968},
  };

  const CycleModel cm;
  bench::Table t({"Method", "Read", "Write", "XOR", "Shift", "Cycles",
                  "Cycles(paper)"});
  std::uint64_t cycles_a = 0, cycles_b = 0, cycles_c = 0;
  for (const auto& m : methods) {
    const OpCounts c = measure(m);
    const std::uint64_t cy = cm.cycles(c);
    if (m.name[0] == 'A') cycles_a = cy;
    if (m.name[0] == 'B') cycles_b = cy;
    if (m.name[0] == 'C') cycles_c = cy;
    t.add_row({m.name, bench::fmt_u64(c.mem_read),
               bench::fmt_u64(c.mem_write), bench::fmt_u64(c.xor_ops),
               bench::fmt_u64(c.shift), bench::fmt_u64(cy),
               bench::fmt_u64(m.paper_cycles)});
  }
  t.print();

  std::printf(
      "\nPaper: C is 15%% faster than B and 40%% faster than A.\n"
      "Measured: C vs B: %.1f%% faster; C vs A: %.1f%% faster.\n",
      100.0 * (1.0 - static_cast<double>(cycles_c) /
                         static_cast<double>(cycles_b)),
      100.0 * (1.0 - static_cast<double>(cycles_c) /
                         static_cast<double>(cycles_a)));

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_table2.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_table2");
    w.field("bench", "table2");
    w.raw("rows", t.to_json());
    w.field("c_vs_b_speedup",
            static_cast<double>(cycles_b) / static_cast<double>(cycles_c));
    w.field("c_vs_a_speedup",
            static_cast<double>(cycles_a) / static_cast<double>(cycles_c));
    bench::manifest_end(w);
    w.write_file(json_path);
  }
  return 0;
}
