// Prime-vs-binary workload comparison: the same VM, the same Table-3
// energy prices, every curve the workload layer knows.
//
// For each curve the bench replays the kP field-op mix as one VM
// workload (workloads::replay — mul/sqr/inv kernel calls in mix order)
// on all three execution engines and reports instructions, cycles and
// Table-3 energy per kP. The engines must be bit-identical: any
// divergence in retired work or in the output digest fails the bench.
// A second table replays the full protocol transactions (kP, ECDH
// agreement, ECDSA sign+verify) per curve on the predecode engine, and
// a third characterises the mpint Karatsuba threshold: recursive
// 32x32 limb-product counts vs school-book for growing operand sizes,
// with the crossover that justifies kKaratsubaThreshold sitting above
// every ECC operand size this repo uses.
//
// The JSON mirror is fully deterministic (no wall-clock numbers) and
// single-threaded by construction, so the committed
// BENCH_prime_vs_binary.json reproduces byte for byte for any
// --threads value.
//
// Flags (bench::Args): --quick (kP table only, sect233k1 + secp192r1,
//        predecode engine), --curve=NAME (restrict to one curve),
//        --json[=PATH] (default BENCH_prime_vs_binary.json).
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "armvm/dispatch.h"
#include "common/rng.h"
#include "manifest.h"
#include "mpint/uint.h"
#include "report.h"
#include "workloads/spec.h"

namespace {

using namespace eccm0;

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// 32x32 limb products of one n-limb school-book multiplication.
std::uint64_t schoolbook_products(std::uint64_t n) { return n * n; }

/// 32x32 limb products of mpint::operator* at `n` limbs: Karatsuba
/// recursion above the threshold (three half-size products, the middle
/// one on sums that can carry into one extra limb), school-book below.
std::uint64_t operator_products(std::uint64_t n) {
  if (n < mpint::kKaratsubaThreshold) return schoolbook_products(n);
  const std::uint64_t h = (n + 1) / 2;
  return operator_products(n - h) + operator_products(h) +
         operator_products(h + 1);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bench::Args args;
  args.curve = "";  // default: every curve the workload layer knows
  args.add_flag("--quick", &quick);
  if (!args.parse(argc - 1, argv + 1, "BENCH_prime_vs_binary.json") ||
      !args.positionals().empty()) {
    return 2;
  }
  std::vector<std::string> curves;
  try {
    if (!args.curve.empty()) {
      curves = {workloads::curve_from_name(args.curve).name};
    } else if (quick) {
      curves = {"sect233k1", "secp192r1"};
    } else {
      curves = workloads::workload_curve_names();
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const struct {
    const char* name;
    armvm::Cpu::DecodeMode mode;
  } kEngines[] = {
      {"perstep", armvm::Cpu::DecodeMode::kPerStep},
      {"predecode", armvm::Cpu::DecodeMode::kPredecode},
      {"threaded", armvm::Cpu::DecodeMode::kThreaded},
  };
  const unsigned engines = quick ? 1 : 3;
  const unsigned engine0 = quick ? 1 : 0;  // quick: predecode only

  bool ok = true;
  bench::JsonWriter w;
  bench::manifest_begin(w, "bench_prime_vs_binary", &args);
  w.field("bench", "prime_vs_binary");

  // ---- 1. kP per curve per engine --------------------------------------
  bench::banner("kP workload: cycles + Table-3 energy, per curve per engine");
  bench::Table kp({"curve", "field", "engine", "Fmul", "Fsqr", "Finv",
                   "instructions", "cycles", "energy uJ", "fused", "digest"});
  w.begin_array("kp");
  for (const std::string& cname : curves) {
    const workloads::WorkloadSpec spec = workloads::kp_workload(cname);
    std::uint64_t ref_cycles = 0, ref_digest = 0, ref_instr = 0;
    for (unsigned e = engine0; e < engine0 + engines; ++e) {
      const workloads::ReplayResult r = workloads::replay(spec, kEngines[e].mode);
      const double uj = r.stats.energy().energy_uj();
      kp.add_row({cname, spec.curve.binary_field ? "GF(2^m)" : "GF(p)",
                  kEngines[e].name, bench::fmt_u64(spec.ops.mul),
                  bench::fmt_u64(spec.ops.sqr), bench::fmt_u64(spec.ops.inv),
                  bench::fmt_u64(r.stats.instructions),
                  bench::fmt_u64(r.stats.cycles), bench::fmt_f(uj, 2),
                  bench::fmt_u64(r.fused_retired), hex64(r.output_digest)});
      if (e == engine0) {
        ref_instr = r.stats.instructions;
        ref_cycles = r.stats.cycles;
        ref_digest = r.output_digest;
      } else if (r.stats.instructions != ref_instr ||
                 r.stats.cycles != ref_cycles ||
                 r.output_digest != ref_digest) {
        std::fprintf(stderr,
                     "FAIL: %s kP diverges on engine %s (cycles %llu vs "
                     "%llu, digest %s vs %s)\n",
                     cname.c_str(), kEngines[e].name,
                     static_cast<unsigned long long>(r.stats.cycles),
                     static_cast<unsigned long long>(ref_cycles),
                     hex64(r.output_digest).c_str(), hex64(ref_digest).c_str());
        ok = false;
      }
      w.begin_object();
      w.field("curve", cname);
      w.field("engine", kEngines[e].name);
      w.field("fmul", spec.ops.mul);
      w.field("fsqr", spec.ops.sqr);
      w.field("finv", spec.ops.inv);
      w.field("instructions", r.stats.instructions);
      w.field("cycles", r.stats.cycles);
      w.field("energy_uj", uj);
      w.field("fused_retired", r.fused_retired);
      w.field("digest", hex64(r.output_digest));
      w.end_object();
    }
  }
  kp.print();
  w.end_array();
  std::printf("\nEvery engine must retire identical work and produce the\n"
              "same output digest; the table doubles as the differential\n"
              "harness over the prime kernels.\n");

  // ---- 2. Protocol transactions per curve (predecode) ------------------
  if (!quick) {
    bench::banner("protocol transactions (predecode engine)");
    bench::Table tx({"curve", "transaction", "kP count", "Fmul", "Fsqr",
                     "Finv", "cycles", "energy uJ", "digest"});
    w.begin_array("transactions");
    for (const std::string& cname : curves) {
      for (const char* t : {"kp", "ecdh", "ecdsa"}) {
        const workloads::WorkloadSpec spec = workloads::make_workload(t, cname);
        const workloads::ReplayResult r =
            workloads::replay(spec, armvm::Cpu::DecodeMode::kPredecode);
        const double uj = r.stats.energy().energy_uj();
        tx.add_row({cname, t, std::to_string(spec.point_muls),
                    bench::fmt_u64(spec.ops.mul), bench::fmt_u64(spec.ops.sqr),
                    bench::fmt_u64(spec.ops.inv),
                    bench::fmt_u64(r.stats.cycles), bench::fmt_f(uj, 2),
                    hex64(r.output_digest)});
        w.begin_object();
        w.field("curve", cname);
        w.field("transaction", t);
        w.field("point_muls", static_cast<std::uint64_t>(spec.point_muls));
        w.field("fmul", spec.ops.mul);
        w.field("fsqr", spec.ops.sqr);
        w.field("finv", spec.ops.inv);
        w.field("cycles", r.stats.cycles);
        w.field("energy_uj", uj);
        w.field("digest", hex64(r.output_digest));
        w.end_object();
      }
    }
    tx.print();
    w.end_array();
  }

  // ---- 3. Karatsuba-threshold ablation ---------------------------------
  // Deterministic limb-product counts (what the host mpint multiplier
  // actually executes), plus a correctness cross-check of operator*
  // against an independent limb-by-limb school-book at each size.
  bench::banner("mpint Karatsuba-threshold ablation (32x32 limb products)");
  std::printf("kKaratsubaThreshold = %zu limbs; ECC operands here are "
              "6-8 limbs (field) and up to 16 (raw products)\n\n",
              mpint::kKaratsubaThreshold);
  bench::Table ka({"limbs", "school-book", "operator*", "ratio",
                   "path", "cross-check"});
  w.begin_array("karatsuba_ablation");
  for (std::uint64_t n : {6, 8, 12, 16, 24, 32, 48, 64, 96, 128}) {
    const std::uint64_t sb = schoolbook_products(n);
    const std::uint64_t op = operator_products(n);
    const bool karatsuba = n >= mpint::kKaratsubaThreshold;
    // Cross-check: operator* against single-limb accumulation.
    Rng rng(0xABA7E + n);
    mpint::UInt a = 0, b = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      a = (a << 32) + mpint::UInt(rng.next_u64() >> 32);
      b = (b << 32) + mpint::UInt(rng.next_u64() >> 32);
    }
    mpint::UInt expect = 0;
    const auto bl = b.limbs();
    for (std::size_t i = 0; i < bl.size(); ++i) {
      expect = expect +
               ((a * mpint::UInt(bl[i])) << static_cast<unsigned>(32 * i));
    }
    const bool match = a * b == expect;
    if (!match) {
      std::fprintf(stderr, "FAIL: operator* mismatch at %llu limbs\n",
                   static_cast<unsigned long long>(n));
      ok = false;
    }
    ka.add_row({bench::fmt_u64(n), bench::fmt_u64(sb), bench::fmt_u64(op),
                bench::fmt_f(static_cast<double>(op) /
                                 static_cast<double>(sb),
                             3),
                karatsuba ? "karatsuba" : "school-book",
                match ? "ok" : "MISMATCH"});
    w.begin_object();
    w.field("limbs", n);
    w.field("schoolbook_products", sb);
    w.field("operator_products", op);
    w.field("path", karatsuba ? "karatsuba" : "school-book");
    w.end_object();
  }
  ka.print();
  w.end_array();
  std::printf("\nThe recursion only wins once the 3x half-size products\n"
              "amortise the extra additions; below the threshold (every\n"
              "ECC size in this repo) school-book keeps the committed\n"
              "cycle baselines and op counts exact.\n");

  w.field("self_check", ok ? "pass" : "fail");
  bench::manifest_end(w);
  if (args.json) {
    if (w.write_file(args.json_path)) {
      std::printf("\nJSON written to %s\n", args.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "\nself-check FAILED\n");
    return 1;
  }
  return 0;
}
