// Ablations around the paper's design choices and its future-work item:
//
//  (a) Koblitz vs generic binary curve over the same field: wTNAF with
//      Frobenius (3 squarings) vs wNAF with true doublings (4M + 5S) —
//      the implementation-level counterpart of the section 3.1 model's
//      conclusion (1).
//  (b) The Montgomery-Lopez-Dahab ladder (section 5's constant-time
//      candidate): uniform per-bit work, priced with the same tables —
//      the energy premium of side-channel-hardened point multiplication.
#include <cstdio>

#include "common/rng.h"
#include "ec/costing.h"
#include "ec/scalarmul.h"
#include "relic_like/costs.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;
using mpint::UInt;

namespace {

/// Price a bag of field ops with a cost table (no TNAF rows).
std::uint64_t price(const ec::FieldOpCounts& o,
                    const ec::FieldCostTable& t) {
  const std::uint64_t calls = o.mul + o.sqr + o.inv + o.add;
  return o.mul * t.mul + o.sqr * t.sqr + o.inv * t.inv + o.add * t.fadd +
         calls * t.call_overhead;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation - Frobenius vs doubling, and the constant-time ladder");

  const auto& prices = relic_like::proposed_asm_costs();
  Rng rng(0x1ADDE6);

  // (a) K-233 wTNAF vs B-233 wNAF (same field, same security class).
  const auto& k233 = ec::BinaryCurve::sect233k1();
  const auto& b233 = ec::BinaryCurve::sect233r1();
  const auto gk = ec::AffinePoint::make(k233.gx, k233.gy);
  const auto gb = ec::AffinePoint::make(b233.gx, b233.gy);
  const UInt kk = UInt::random_below(rng, k233.order);
  const UInt kb = UInt::random_below(rng, b233.order);

  const auto kob = ec::cost_point_mul(k233, gk, kk, 4, false, prices);

  ec::CurveOps ops_b(b233);
  (void)ec::mul_wnaf(ops_b, gb, kb, 4);
  const std::uint64_t wnaf_cycles = price(ops_b.counts(), prices);

  ec::CurveOps ops_l(k233);
  (void)ec::mul_ladder(ops_l, gk, kk);
  const std::uint64_t ladder_cycles = price(ops_l.counts(), prices);

  bench::Table t({"Configuration", "Curve", "cycles", "uJ", "vs kP"});
  const double kp_cycles = static_cast<double>(kob.cost.total());
  auto uj = [&](std::uint64_t cy) {
    return bench::fmt_f(static_cast<double>(cy) * prices.pj_per_cycle * 1e-6,
                        2);
  };
  t.add_row({"wTNAF w=4 (this work, kP)", "sect233k1",
             bench::fmt_u64(kob.cost.total()), uj(kob.cost.total()),
             "1.00x"});
  t.add_row({"wNAF w=4 with doublings", "sect233r1",
             bench::fmt_u64(wnaf_cycles), uj(wnaf_cycles),
             bench::fmt_f(static_cast<double>(wnaf_cycles) / kp_cycles, 2) +
                 "x"});
  t.add_row({"Montgomery-LD ladder", "sect233k1",
             bench::fmt_u64(ladder_cycles), uj(ladder_cycles),
             bench::fmt_f(static_cast<double>(ladder_cycles) / kp_cycles,
                          2) +
                 "x"});
  t.print();

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_ladder.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_ladder");
    w.field("bench", "ladder");
    w.raw("rows", t.to_json());
    w.field("wtnaf_kp_cycles", kob.cost.total());
    w.field("wnaf_doubling_cycles", wnaf_cycles);
    w.field("ladder_cycles", ladder_cycles);
    bench::manifest_end(w);
    w.write_file(json_path);
  }

  std::printf(
      "\n(a) Replacing Frobenius (3S) with true doublings (~4M+5S) costs\n"
      "    ~2x — the reason the paper picks a Koblitz curve.\n"
      "(b) The ladder executes an identical 6M+5S+y-recovery schedule\n"
      "    per scalar bit regardless of the key (verified by test), at\n"
      "    the premium shown — the paper's future-work trade-off,\n"
      "    quantified.\n");
  return 0;
}
