// Host-side throughput of the armvm interpreter (simulated MIPS), on the
// workload every reproduction number in this repo is made of: the K-233
// field kernels in the mix a real wTNAF w=4 `kP` executes them.
//
// Two engines run the exact same instruction stream:
//   reference  — DecodeMode::kPerStep, the seed interpreter's
//                decode-every-retired-instruction loop
//   predecoded — DecodeMode::kPredecode, the construction-time decode
//                cache + tight run loop
// The bench asserts their cycle counts, per-class histograms, energy
// reports and kernel outputs are bit-identical, then reports the host
// speedup. `--json[=PATH]` (default BENCH_vm_throughput.json) mirrors
// the result machine-readably; `--reps N` scales the workload.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "armvm/asm.h"
#include "armvm/cpu.h"
#include "asmkernels/gen.h"
#include "common/rng.h"
#include "ec/costing.h"
#include "ec/curve.h"
#include "gf2/sqr_table.h"
#include "report.h"

using namespace eccm0;
using armvm::Cpu;

namespace {

constexpr std::size_t kRamSize = 0x800;

struct WorkloadResult {
  armvm::RunStats stats;
  double seconds = 0.0;
  // Digest of every kernel-output word, to prove both engines computed
  // the same values (not just the same costs).
  std::uint64_t output_digest = 0;

  double mips() const {
    return static_cast<double>(stats.instructions) / seconds / 1e6;
  }
};

void mix64(std::uint64_t& h, std::uint32_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
}

/// One `kP`'s worth of field-kernel executions (counts taken from a real
/// wTNAF w=4 sect233k1 run), repeated `reps` times on one engine.
WorkloadResult run_workload(Cpu::DecodeMode mode, const ec::FieldOpCounts& ops,
                            unsigned reps) {
  const armvm::Program mul_prog =
      armvm::assemble(asmkernels::gen_mul_fixed(true));
  const armvm::Program sqr_prog = armvm::assemble(asmkernels::gen_sqr());
  const armvm::Program inv_prog = armvm::assemble(asmkernels::gen_inv());

  // Deterministic operands, same for both engines.
  Rng rng(0x7151CA7);
  std::uint32_t x[8], y[8], a[8];
  for (int w = 0; w < 8; ++w) {
    x[w] = static_cast<std::uint32_t>(rng.next_u64());
    y[w] = static_cast<std::uint32_t>(rng.next_u64());
    a[w] = static_cast<std::uint32_t>(rng.next_u64());
  }
  x[7] &= 0x1FF;  // keep operands in-field (233 bits)
  y[7] &= 0x1FF;
  a[7] &= 0x1FF;
  a[0] |= 1;  // inversion input must be nonzero

  armvm::Memory mul_mem(kRamSize), sqr_mem(kRamSize), inv_mem(kRamSize);
  for (int w = 0; w < 8; ++w) {
    mul_mem.store32(armvm::kRamBase + asmkernels::kXOff + 4 * w, x[w]);
    mul_mem.store32(armvm::kRamBase + asmkernels::kYOff + 4 * w, y[w]);
    sqr_mem.store32(armvm::kRamBase + asmkernels::kInOff + 4 * w, a[w]);
  }
  for (unsigned i = 0; i < 256; ++i) {
    sqr_mem.store16(armvm::kRamBase + asmkernels::kSqrTabOff + 2 * i,
                    gf2::kSquareTable[i]);
  }

  Cpu mul_cpu(mul_prog.code, mul_mem, mode);
  Cpu sqr_cpu(sqr_prog.code, sqr_mem, mode);
  Cpu inv_cpu(inv_prog.code, inv_mem, mode);

  WorkloadResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned rep = 0; rep < reps; ++rep) {
    for (std::uint64_t i = 0; i < ops.mul; ++i) {
      mul_cpu.call(mul_prog.entry("entry"), {});
    }
    for (std::uint64_t i = 0; i < ops.sqr; ++i) {
      sqr_cpu.call(sqr_prog.entry("entry"), {});
    }
    for (std::uint64_t i = 0; i < ops.inv; ++i) {
      // The EEA kernel consumes its scratch state; re-seed the input so
      // every inversion runs the same (data-dependent) trace.
      for (int w = 0; w < 8; ++w) {
        inv_mem.store32(armvm::kRamBase + asmkernels::kInOff + 4 * w, a[w]);
      }
      inv_cpu.call(inv_prog.entry("entry"), {});
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.stats = mul_cpu.stats();
  r.stats.instructions += sqr_cpu.stats().instructions;
  r.stats.instructions += inv_cpu.stats().instructions;
  r.stats.cycles += sqr_cpu.stats().cycles + inv_cpu.stats().cycles;
  r.stats.histogram += sqr_cpu.stats().histogram;
  r.stats.histogram += inv_cpu.stats().histogram;
  for (int w = 0; w < 8; ++w) {
    mix64(r.output_digest,
          mul_mem.load32(armvm::kRamBase + asmkernels::kVOff + 4 * w));
    mix64(r.output_digest,
          sqr_mem.load32(armvm::kRamBase + asmkernels::kOutOff + 4 * w));
    mix64(r.output_digest,
          inv_mem.load32(armvm::kRamBase + asmkernels::kOutOff + 4 * w));
  }
  return r;
}

bool identical(const armvm::RunStats& a, const armvm::RunStats& b) {
  if (a.instructions != b.instructions || a.cycles != b.cycles) return false;
  for (int i = 0; i < static_cast<int>(costmodel::InstrClass::kCount); ++i) {
    if (a.histogram.cycles[i] != b.histogram.cycles[i]) return false;
  }
  const auto ea = a.energy(), eb = b.energy();
  return ea.energy_uj() == eb.energy_uj() && ea.time_ms() == eb.time_ms();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned reps = 3;
  unsigned rounds = 3;
  bool enforce = false;  // --enforce: exit nonzero when speedup < 3x
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
      if (reps == 0) reps = 1;  // zero work would make every rate NaN
    } else if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
    }
  }

  bench::banner("VM host throughput - pre-decoded engine vs per-step decode");

  // Field-op mix of one real wTNAF w=4 kP on sect233k1.
  Rng rng(0x7AB1E4);
  const auto& k233 = ec::BinaryCurve::sect233k1();
  const ec::AffinePoint g = ec::AffinePoint::make(k233.gx, k233.gy);
  const mpint::UInt k = mpint::UInt::random_below(rng, k233.order);
  const ec::CostedRun costed =
      ec::cost_point_mul(k233, g, k, 4, false, ec::FieldCostTable{});
  const ec::FieldOpCounts ops = costed.main_ops + costed.precomp_ops;
  std::printf("kP workload (wTNAF w=4, sect233k1): %llu mul, %llu sqr, "
              "%llu inv per rep; %u rep(s), best of %u rounds\n\n",
              static_cast<unsigned long long>(ops.mul),
              static_cast<unsigned long long>(ops.sqr),
              static_cast<unsigned long long>(ops.inv), reps, rounds);

  WorkloadResult ref, pre;
  for (unsigned round = 0; round < rounds; ++round) {
    WorkloadResult a = run_workload(Cpu::DecodeMode::kPerStep, ops, reps);
    WorkloadResult b = run_workload(Cpu::DecodeMode::kPredecode, ops, reps);
    if (!identical(a.stats, b.stats) || a.output_digest != b.output_digest) {
      std::fprintf(stderr,
                   "FAIL: engines diverged (cycles %llu vs %llu, "
                   "digest %llx vs %llx)\n",
                   static_cast<unsigned long long>(a.stats.cycles),
                   static_cast<unsigned long long>(b.stats.cycles),
                   static_cast<unsigned long long>(a.output_digest),
                   static_cast<unsigned long long>(b.output_digest));
      return 1;
    }
    if (round == 0 || a.mips() > ref.mips()) ref = a;
    if (round == 0 || b.mips() > pre.mips()) pre = b;
  }

  const double speedup = pre.mips() / ref.mips();

  bench::Table t({"Engine", "sim instructions", "sim cycles", "host s",
                  "sim MIPS"});
  t.add_row({"per-step decode (seed)", bench::fmt_u64(ref.stats.instructions),
             bench::fmt_u64(ref.stats.cycles), bench::fmt_f(ref.seconds, 4),
             bench::fmt_f(ref.mips(), 1)});
  t.add_row({"pre-decoded cache", bench::fmt_u64(pre.stats.instructions),
             bench::fmt_u64(pre.stats.cycles), bench::fmt_f(pre.seconds, 4),
             bench::fmt_f(pre.mips(), 1)});
  t.print();
  std::printf("\nSpeedup: %.2fx (target >= 3x); cycle counts, histograms and "
              "energy reports bit-identical across engines\n",
              speedup);

  std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_vm_throughput.json");
  if (json_path.empty()) json_path = "BENCH_vm_throughput.json";
  bench::JsonWriter w;
  w.begin_object();
  w.field("bench", "vm_throughput");
  w.begin_object("workload");
  w.field("kind", "wTNAF w=4 kP field-kernel mix, sect233k1");
  w.field("mul", ops.mul);
  w.field("sqr", ops.sqr);
  w.field("inv", ops.inv);
  w.field("reps", static_cast<std::uint64_t>(reps));
  w.end_object();
  w.begin_object("reference");
  w.field("engine", "per-step decode");
  w.field("instructions", ref.stats.instructions);
  w.field("cycles", ref.stats.cycles);
  w.field("host_seconds", ref.seconds);
  w.field("sim_mips", ref.mips());
  w.end_object();
  w.begin_object("predecoded");
  w.field("engine", "pre-decoded cache");
  w.field("instructions", pre.stats.instructions);
  w.field("cycles", pre.stats.cycles);
  w.field("host_seconds", pre.seconds);
  w.field("sim_mips", pre.mips());
  w.end_object();
  w.field("speedup", speedup);
  w.field("bit_identical", true);
  w.end_object();
  if (!w.write_file(json_path)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return (enforce && speedup < 3.0) ? 2 : 0;
}
