// Host-side throughput of the armvm interpreter (simulated MIPS), on the
// workload every reproduction number in this repo is made of: the K-233
// field kernels in the mix a real wTNAF w=4 `kP` executes them.
//
// Two engines run the exact same instruction stream:
//   reference  — DecodeMode::kPerStep, the seed interpreter's
//                decode-every-retired-instruction loop
//   predecoded — DecodeMode::kPredecode, the construction-time decode
//                cache + tight run loop
// The bench asserts their cycle counts, per-class histograms, energy
// reports and kernel outputs are bit-identical, then reports the host
// speedup. A third section fans the predecoded workload across a
// sim::BatchExecutor (`--threads N`, default hardware concurrency) —
// one execution context per worker over the same shared images — and
// asserts the batched digest matches the serial one. Flags follow the
// shared bench::Args convention: `--json[=PATH]` (default
// BENCH_vm_throughput.json) picks the mirror path, `--iters=N` scales
// the workload (reps), `--threads=N` sizes the batched section and
// `--enforce` turns the 3x speedup target into the exit code.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "armvm/cpu.h"
#include "asmkernels/gen.h"
#include "ec/costing.h"
#include "report.h"
#include "sim/batch.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"

using namespace eccm0;
using armvm::Cpu;

namespace {

struct WorkloadResult {
  armvm::RunStats stats;
  double seconds = 0.0;
  // Digest of every kernel-output word, to prove both engines computed
  // the same values (not just the same costs).
  std::uint64_t output_digest = 0;

  double mips() const {
    return static_cast<double>(stats.instructions) / seconds / 1e6;
  }
};

void mix64(std::uint64_t& h, std::uint32_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
}

/// One `kP`'s worth of field-kernel executions (counts taken from a real
/// wTNAF w=4 sect233k1 run), repeated `reps` times on one engine.
WorkloadResult run_workload(Cpu::DecodeMode mode, const ec::FieldOpCounts& ops,
                            unsigned reps) {
  workloads::KernelMachine mul(workloads::kernel("mul"), mode);
  workloads::KernelMachine sqr(workloads::kernel("sqr"), mode);
  workloads::KernelMachine inv(workloads::kernel("inv"), mode);

  // Deterministic operands, same for both engines.
  const workloads::KernelOperands& od = workloads::KernelOperands::standard();
  workloads::load_mul_inputs(mul.mem(), od.x, od.y);
  workloads::load_sqr_table(sqr.mem());
  workloads::load_sqr_input(sqr.mem(), od.a);

  WorkloadResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned rep = 0; rep < reps; ++rep) {
    for (std::uint64_t i = 0; i < ops.mul; ++i) mul.call();
    for (std::uint64_t i = 0; i < ops.sqr; ++i) sqr.call();
    for (std::uint64_t i = 0; i < ops.inv; ++i) {
      // The EEA kernel consumes its scratch state; re-seed the input so
      // every inversion runs the same (data-dependent) trace.
      workloads::load_inv_input(inv.mem(), od.a);
      inv.call();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.stats = mul.cpu().stats();
  r.stats.instructions += sqr.cpu().stats().instructions;
  r.stats.instructions += inv.cpu().stats().instructions;
  r.stats.cycles += sqr.cpu().stats().cycles + inv.cpu().stats().cycles;
  r.stats.histogram += sqr.cpu().stats().histogram;
  r.stats.histogram += inv.cpu().stats().histogram;
  for (int w = 0; w < 8; ++w) {
    mix64(r.output_digest,
          mul.mem().load32(armvm::kRamBase + asmkernels::kVOff + 4 * w));
    mix64(r.output_digest,
          sqr.mem().load32(armvm::kRamBase + asmkernels::kOutOff + 4 * w));
    mix64(r.output_digest,
          inv.mem().load32(armvm::kRamBase + asmkernels::kOutOff + 4 * w));
  }
  return r;
}

/// `reps` independent workload units fanned across the batch executor:
/// each task builds its own execution contexts over the registry's
/// shared predecoded images and runs one kP mix. Returns the combined
/// digest (order-independent by construction: serial fold over the
/// per-task digests in index order).
WorkloadResult run_batched(const ec::FieldOpCounts& ops, unsigned reps,
                           unsigned threads) {
  sim::BatchExecutor pool(threads);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<WorkloadResult> parts = pool.map<WorkloadResult>(
      reps, [&](std::size_t) {
        return run_workload(Cpu::DecodeMode::kPredecode, ops, 1);
      });
  const auto t1 = std::chrono::steady_clock::now();
  WorkloadResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const WorkloadResult& p : parts) {
    r.stats.instructions += p.stats.instructions;
    r.stats.cycles += p.stats.cycles;
    r.stats.histogram += p.stats.histogram;
    mix64(r.output_digest, static_cast<std::uint32_t>(p.output_digest));
    mix64(r.output_digest, static_cast<std::uint32_t>(p.output_digest >> 32));
  }
  return r;
}

bool identical(const armvm::RunStats& a, const armvm::RunStats& b) {
  if (a.instructions != b.instructions || a.cycles != b.cycles) return false;
  for (int i = 0; i < static_cast<int>(costmodel::InstrClass::kCount); ++i) {
    if (a.histogram.cycles[i] != b.histogram.cycles[i]) return false;
  }
  const auto ea = a.energy(), eb = b.energy();
  return ea.energy_uj() == eb.energy_uj() && ea.time_ms() == eb.time_ms();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned rounds = 3;
  bool enforce = false;  // --enforce: exit nonzero when speedup < 3x
  bench::Args args;
  args.iters = 3;    // reps
  args.threads = 0;  // 0 = hardware concurrency
  args.add_flag("--enforce", &enforce);
  if (!args.parse(argc - 1, argv + 1, "BENCH_vm_throughput.json") ||
      !args.positionals().empty()) {
    return 2;
  }
  // Zero work would make every rate NaN.
  const unsigned reps = args.iters == 0 ? 1 : static_cast<unsigned>(args.iters);
  const unsigned threads = args.threads;

  bench::banner("VM host throughput - pre-decoded engine vs per-step decode");

  // Field-op mix of one real wTNAF w=4 kP on sect233k1.
  const ec::FieldOpCounts& ops = workloads::kp_mix_sect233k1();
  std::printf("kP workload (wTNAF w=4, sect233k1): %llu mul, %llu sqr, "
              "%llu inv per rep; %u rep(s), best of %u rounds\n\n",
              static_cast<unsigned long long>(ops.mul),
              static_cast<unsigned long long>(ops.sqr),
              static_cast<unsigned long long>(ops.inv), reps, rounds);

  WorkloadResult ref, pre;
  for (unsigned round = 0; round < rounds; ++round) {
    WorkloadResult a = run_workload(Cpu::DecodeMode::kPerStep, ops, reps);
    WorkloadResult b = run_workload(Cpu::DecodeMode::kPredecode, ops, reps);
    if (!identical(a.stats, b.stats) || a.output_digest != b.output_digest) {
      std::fprintf(stderr,
                   "FAIL: engines diverged (cycles %llu vs %llu, "
                   "digest %llx vs %llx)\n",
                   static_cast<unsigned long long>(a.stats.cycles),
                   static_cast<unsigned long long>(b.stats.cycles),
                   static_cast<unsigned long long>(a.output_digest),
                   static_cast<unsigned long long>(b.output_digest));
      return 1;
    }
    if (round == 0 || a.mips() > ref.mips()) ref = a;
    if (round == 0 || b.mips() > pre.mips()) pre = b;
  }

  const double speedup = pre.mips() / ref.mips();

  // Batched section: same predecoded workload fanned across the batch
  // executor. The one-thread digest is the determinism reference.
  const WorkloadResult serial1 = run_batched(ops, reps, 1);
  const WorkloadResult batched = run_batched(ops, reps, threads);
  if (batched.output_digest != serial1.output_digest ||
      batched.stats.instructions != serial1.stats.instructions ||
      batched.stats.cycles != serial1.stats.cycles) {
    std::fprintf(stderr, "FAIL: batch executor diverged from serial\n");
    return 1;
  }
  const double batch_speedup = serial1.seconds / batched.seconds;

  bench::Table t({"Engine", "sim instructions", "sim cycles", "host s",
                  "sim MIPS"});
  t.add_row({"per-step decode (seed)", bench::fmt_u64(ref.stats.instructions),
             bench::fmt_u64(ref.stats.cycles), bench::fmt_f(ref.seconds, 4),
             bench::fmt_f(ref.mips(), 1)});
  t.add_row({"pre-decoded cache", bench::fmt_u64(pre.stats.instructions),
             bench::fmt_u64(pre.stats.cycles), bench::fmt_f(pre.seconds, 4),
             bench::fmt_f(pre.mips(), 1)});
  t.add_row({"pre-decoded, batched", bench::fmt_u64(batched.stats.instructions),
             bench::fmt_u64(batched.stats.cycles),
             bench::fmt_f(batched.seconds, 4),
             bench::fmt_f(batched.mips(), 1)});
  t.print();
  std::printf("\nSpeedup: %.2fx (target >= 3x); cycle counts, histograms and "
              "energy reports bit-identical across engines\n",
              speedup);
  std::printf("Batch executor: %.2fx over 1-thread serial, digest "
              "bit-identical\n",
              batch_speedup);

  // The committed baseline is load-bearing for the CI regression gate,
  // so this bench writes its JSON unconditionally; --json=PATH still
  // redirects it.
  std::string json_path = args.json_path;
  if (json_path.empty()) json_path = "BENCH_vm_throughput.json";
  bench::JsonWriter w;
  w.begin_object();
  w.field("bench", "vm_throughput");
  w.begin_object("workload");
  w.field("kind", "wTNAF w=4 kP field-kernel mix, sect233k1");
  w.field("mul", ops.mul);
  w.field("sqr", ops.sqr);
  w.field("inv", ops.inv);
  w.field("reps", static_cast<std::uint64_t>(reps));
  w.end_object();
  w.begin_object("reference");
  w.field("engine", "per-step decode");
  w.field("instructions", ref.stats.instructions);
  w.field("cycles", ref.stats.cycles);
  w.field("host_seconds", ref.seconds);
  w.field("sim_mips", ref.mips());
  w.end_object();
  w.begin_object("predecoded");
  w.field("engine", "pre-decoded cache");
  w.field("instructions", pre.stats.instructions);
  w.field("cycles", pre.stats.cycles);
  w.field("host_seconds", pre.seconds);
  w.field("sim_mips", pre.mips());
  w.end_object();
  w.begin_object("batched");
  w.field("engine", "pre-decoded cache, batch executor");
  w.field("threads",
          static_cast<std::uint64_t>(sim::BatchExecutor(threads).threads()));
  w.field("instructions", batched.stats.instructions);
  w.field("cycles", batched.stats.cycles);
  w.field("host_seconds", batched.seconds);
  w.field("batch_speedup", batch_speedup);
  w.end_object();
  w.field("speedup", speedup);
  w.field("bit_identical", true);
  w.end_object();
  if (!w.write_file(json_path)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return (enforce && speedup < 3.0) ? 2 : 0;
}
