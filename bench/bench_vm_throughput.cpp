// Host-side throughput of the armvm interpreter (simulated MIPS), on the
// workload every reproduction number in this repo is made of: the K-233
// field kernels in the mix a real wTNAF w=4 `kP` executes them.
//
// Three engines run the exact same instruction stream:
//   reference  — DecodeMode::kPerStep, the seed interpreter's
//                decode-every-retired-instruction loop
//   predecoded — DecodeMode::kPredecode, the construction-time decode
//                cache + tight run loop
//   threaded   — DecodeMode::kThreaded, token-threaded dispatch over the
//                same cache with basic-block superinstructions and
//                batched accounting (armvm/superinst.h)
// The bench asserts their cycle counts, per-class histograms, energy
// reports and kernel outputs are bit-identical, then reports the host
// speedups. A fourth section fans the threaded workload across a
// sim::BatchExecutor (`--threads N`, default hardware concurrency) —
// one execution context per worker over the same shared images — and
// asserts the batched digest matches the serial one (when the executor
// resolves to one worker the serial measurement IS the batched one, so
// batch_speedup is 1.0 by construction instead of measuring the same
// loop twice). Flags follow the shared bench::Args convention:
// `--json[=PATH]` (default BENCH_vm_throughput.json) picks the mirror
// path, `--iters=N` scales the workload (reps), `--threads=N` sizes the
// batched section and `--enforce` turns the speedup targets (predecoded
// >= 3x reference, threaded >= 2.5x predecoded) into the exit code.
// The static+dynamic fusion census is mirrored to fusion_report.json
// (the CI bench job uploads it as an artifact).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "armvm/cpu.h"
#include "armvm/dispatch.h"
#include "armvm/superinst.h"
#include "asmkernels/gen.h"
#include "ec/costing.h"
#include "manifest.h"
#include "report.h"
#include "sim/batch.h"
#include "telemetry/metrics.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"

using namespace eccm0;
using armvm::Cpu;

namespace {

struct WorkloadResult {
  armvm::RunStats stats;
  double seconds = 0.0;
  // Digest of every kernel-output word, to prove the engines computed
  // the same values (not just the same costs).
  std::uint64_t output_digest = 0;
  // Threaded-engine fusion census (zero on the other engines).
  std::uint64_t fused_retired = 0;
  std::uint64_t fused_blocks = 0;

  double mips() const {
    return static_cast<double>(stats.instructions) / seconds / 1e6;
  }
  double fused_fraction() const {
    return stats.instructions == 0
               ? 0.0
               : static_cast<double>(fused_retired) /
                     static_cast<double>(stats.instructions);
  }
};

void mix64(std::uint64_t& h, std::uint32_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
}

/// One `kP`'s worth of field-kernel executions (counts taken from a real
/// wTNAF w=4 sect233k1 run), repeated `reps` times on one engine.
WorkloadResult run_workload(Cpu::DecodeMode mode, const ec::FieldOpCounts& ops,
                            unsigned reps) {
  workloads::KernelMachine mul(workloads::kernel("mul"), mode);
  workloads::KernelMachine sqr(workloads::kernel("sqr"), mode);
  workloads::KernelMachine inv(workloads::kernel("inv"), mode);

  // Deterministic operands, same for every engine.
  const workloads::KernelOperands& od = workloads::KernelOperands::standard();
  workloads::load_mul_inputs(mul.mem(), od.x, od.y);
  workloads::load_sqr_table(sqr.mem());
  workloads::load_sqr_input(sqr.mem(), od.a);

  WorkloadResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned rep = 0; rep < reps; ++rep) {
    for (std::uint64_t i = 0; i < ops.mul; ++i) mul.call();
    for (std::uint64_t i = 0; i < ops.sqr; ++i) sqr.call();
    for (std::uint64_t i = 0; i < ops.inv; ++i) {
      // The EEA kernel consumes its scratch state; re-seed the input so
      // every inversion runs the same (data-dependent) trace.
      workloads::load_inv_input(inv.mem(), od.a);
      inv.call();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.stats = mul.cpu().stats();
  r.stats.instructions += sqr.cpu().stats().instructions;
  r.stats.instructions += inv.cpu().stats().instructions;
  r.stats.cycles += sqr.cpu().stats().cycles + inv.cpu().stats().cycles;
  r.stats.histogram += sqr.cpu().stats().histogram;
  r.stats.histogram += inv.cpu().stats().histogram;
  r.fused_retired = mul.cpu().fused_retired() + sqr.cpu().fused_retired() +
                    inv.cpu().fused_retired();
  r.fused_blocks = mul.cpu().fused_blocks_entered() +
                   sqr.cpu().fused_blocks_entered() +
                   inv.cpu().fused_blocks_entered();
  for (int w = 0; w < 8; ++w) {
    mix64(r.output_digest,
          mul.mem().load32(armvm::kRamBase + asmkernels::kVOff + 4 * w));
    mix64(r.output_digest,
          sqr.mem().load32(armvm::kRamBase + asmkernels::kOutOff + 4 * w));
    mix64(r.output_digest,
          inv.mem().load32(armvm::kRamBase + asmkernels::kOutOff + 4 * w));
  }
  return r;
}

/// `reps` independent workload units fanned across the batch executor:
/// each task builds its own execution contexts over the registry's
/// shared images and runs one kP mix on the threaded engine. Returns the
/// combined digest (order-independent by construction: serial fold over
/// the per-task digests in index order).
WorkloadResult run_batched(const ec::FieldOpCounts& ops, unsigned reps,
                           unsigned threads,
                           telemetry::MetricsRegistry* metrics) {
  sim::BatchExecutor pool(threads);
  pool.set_metrics(metrics);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<WorkloadResult> parts = pool.map<WorkloadResult>(
      reps, [&](std::size_t) {
        return run_workload(Cpu::DecodeMode::kThreaded, ops, 1);
      });
  const auto t1 = std::chrono::steady_clock::now();
  WorkloadResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const WorkloadResult& p : parts) {
    r.stats.instructions += p.stats.instructions;
    r.stats.cycles += p.stats.cycles;
    r.stats.histogram += p.stats.histogram;
    r.fused_retired += p.fused_retired;
    r.fused_blocks += p.fused_blocks;
    mix64(r.output_digest, static_cast<std::uint32_t>(p.output_digest));
    mix64(r.output_digest, static_cast<std::uint32_t>(p.output_digest >> 32));
  }
  return r;
}

bool identical(const armvm::RunStats& a, const armvm::RunStats& b) {
  if (a.instructions != b.instructions || a.cycles != b.cycles) return false;
  for (int i = 0; i < static_cast<int>(costmodel::InstrClass::kCount); ++i) {
    if (a.histogram.cycles[i] != b.histogram.cycles[i]) return false;
  }
  const auto ea = a.energy(), eb = b.energy();
  return ea.energy_uj() == eb.energy_uj() && ea.time_ms() == eb.time_ms();
}

/// Static + dynamic fusion census: per-kernel block counts and coverage
/// from the frozen ThreadedImages, plus the dynamic coverage the
/// threaded workload run actually saw.
void write_fusion_report(const std::string& path, const WorkloadResult& thr) {
  bench::JsonWriter w;
  bench::manifest_begin(w, "bench_vm_throughput:fusion");
  w.field("report", "superinstruction_fusion");
  w.field("dispatch", armvm::threaded_dispatch_uses_computed_goto()
                          ? "computed-goto"
                          : "switch");
  w.field("min_fuse_length",
          static_cast<std::uint64_t>(armvm::kMinFuseLength));
  w.begin_object("static");
  for (const std::string& name : workloads::KernelRegistry::instance().names()) {
    const armvm::ThreadedImage& img = workloads::kernel(name)->threaded();
    std::uint64_t longest = 0;
    for (const armvm::SuperBlock& b : img.blocks) {
      if (b.count > longest) longest = b.count;
    }
    w.begin_object(name.c_str());
    w.field("blocks", static_cast<std::uint64_t>(img.blocks.size()));
    w.field("fused_slots", img.fused_slots);
    w.field("valid_slots", img.valid_slots);
    w.field("longest_block", longest);
    w.field("coverage", img.valid_slots == 0
                            ? 0.0
                            : static_cast<double>(img.fused_slots) /
                                  static_cast<double>(img.valid_slots));
    w.end_object();
  }
  w.end_object();
  w.begin_object("dynamic");
  w.field("workload", "wTNAF w=4 kP field-kernel mix");
  w.field("instructions", thr.stats.instructions);
  w.field("fused_retired", thr.fused_retired);
  w.field("fused_blocks_entered", thr.fused_blocks);
  w.field("fused_fraction", thr.fused_fraction());
  w.end_object();
  bench::manifest_end(w);
  if (!w.write_file(path)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  unsigned rounds = 3;
  bool enforce = false;  // --enforce: exit nonzero when a target is missed
  bench::Args args;
  args.iters = 3;    // reps
  args.threads = 0;  // 0 = hardware concurrency
  args.add_flag("--enforce", &enforce);
  if (!args.parse(argc - 1, argv + 1, "BENCH_vm_throughput.json") ||
      !args.positionals().empty()) {
    return 2;
  }
  // Zero work would make every rate NaN.
  const unsigned reps = args.iters == 0 ? 1 : static_cast<unsigned>(args.iters);
  const unsigned threads = args.threads;

  bench::banner("VM host throughput - threaded / pre-decoded / per-step");

  // Field-op mix of one real wTNAF w=4 kP on sect233k1.
  const ec::FieldOpCounts& ops = workloads::kp_mix_sect233k1();
  std::printf("kP workload (wTNAF w=4, sect233k1): %llu mul, %llu sqr, "
              "%llu inv per rep; %u rep(s), best of %u rounds\n"
              "threaded dispatch: %s\n\n",
              static_cast<unsigned long long>(ops.mul),
              static_cast<unsigned long long>(ops.sqr),
              static_cast<unsigned long long>(ops.inv), reps, rounds,
              armvm::threaded_dispatch_uses_computed_goto() ? "computed goto"
                                                            : "switch");

  WorkloadResult ref, pre, thr;
  for (unsigned round = 0; round < rounds; ++round) {
    WorkloadResult a = run_workload(Cpu::DecodeMode::kPerStep, ops, reps);
    WorkloadResult b = run_workload(Cpu::DecodeMode::kPredecode, ops, reps);
    WorkloadResult c = run_workload(Cpu::DecodeMode::kThreaded, ops, reps);
    if (!identical(a.stats, b.stats) || a.output_digest != b.output_digest ||
        !identical(a.stats, c.stats) || a.output_digest != c.output_digest) {
      std::fprintf(stderr,
                   "FAIL: engines diverged (cycles %llu / %llu / %llu, "
                   "digest %llx / %llx / %llx)\n",
                   static_cast<unsigned long long>(a.stats.cycles),
                   static_cast<unsigned long long>(b.stats.cycles),
                   static_cast<unsigned long long>(c.stats.cycles),
                   static_cast<unsigned long long>(a.output_digest),
                   static_cast<unsigned long long>(b.output_digest),
                   static_cast<unsigned long long>(c.output_digest));
      return 1;
    }
    if (round == 0 || a.mips() > ref.mips()) ref = a;
    if (round == 0 || b.mips() > pre.mips()) pre = b;
    if (round == 0 || c.mips() > thr.mips()) thr = c;
  }

  const double speedup = pre.mips() / ref.mips();
  const double threaded_speedup = thr.mips() / pre.mips();

  // Batched section: the same threaded workload fanned across the batch
  // executor. The one-thread digest is the determinism reference; when
  // the pool resolves to a single worker, the serial run IS the batched
  // run (measuring the identical loop twice only reports host noise).
  const unsigned pool_threads = sim::BatchExecutor(threads).threads();
  telemetry::MetricsRegistry metrics;
  const WorkloadResult serial1 = run_batched(ops, reps, 1, &metrics);
  const WorkloadResult batched =
      pool_threads <= 1 ? serial1 : run_batched(ops, reps, threads, &metrics);
  if (batched.output_digest != serial1.output_digest ||
      batched.stats.instructions != serial1.stats.instructions ||
      batched.stats.cycles != serial1.stats.cycles) {
    std::fprintf(stderr, "FAIL: batch executor diverged from serial\n");
    return 1;
  }
  const double batch_speedup = serial1.seconds / batched.seconds;
  // The single-worker regression gate: a one-worker pool must never pay
  // pool overhead (it runs the serial loop directly, so this is exact).
  // Multi-worker speedups are reported but not gated — they measure host
  // scheduling noise as much as the executor.
  if (pool_threads <= 1 && batch_speedup < 0.99) {
    std::fprintf(stderr,
                 "FAIL: batch executor slower than serial (%.3fx) at "
                 "%u thread(s)\n",
                 batch_speedup, pool_threads);
    return 1;
  }

  bench::Table t({"Engine", "sim instructions", "sim cycles", "host s",
                  "sim MIPS"});
  t.add_row({"per-step decode (seed)", bench::fmt_u64(ref.stats.instructions),
             bench::fmt_u64(ref.stats.cycles), bench::fmt_f(ref.seconds, 4),
             bench::fmt_f(ref.mips(), 1)});
  t.add_row({"pre-decoded cache", bench::fmt_u64(pre.stats.instructions),
             bench::fmt_u64(pre.stats.cycles), bench::fmt_f(pre.seconds, 4),
             bench::fmt_f(pre.mips(), 1)});
  t.add_row({"threaded + superinstructions",
             bench::fmt_u64(thr.stats.instructions),
             bench::fmt_u64(thr.stats.cycles), bench::fmt_f(thr.seconds, 4),
             bench::fmt_f(thr.mips(), 1)});
  t.add_row({"threaded, batched", bench::fmt_u64(batched.stats.instructions),
             bench::fmt_u64(batched.stats.cycles),
             bench::fmt_f(batched.seconds, 4),
             bench::fmt_f(batched.mips(), 1)});
  t.print();
  std::printf("\nSpeedups: pre-decoded %.2fx over per-step (target >= 3x), "
              "threaded %.2fx over pre-decoded (target >= 2.5x);\n"
              "cycle counts, histograms and energy reports bit-identical "
              "across all engines\n",
              speedup, threaded_speedup);
  std::printf("Fusion: %.1f%% of retirements inside superblocks "
              "(%llu blocks entered)\n",
              100.0 * thr.fused_fraction(),
              static_cast<unsigned long long>(thr.fused_blocks));
  std::printf("Batch executor: %.2fx over 1-thread serial (%u worker(s)), "
              "digest bit-identical\n",
              batch_speedup, pool_threads);

  // The committed baseline is load-bearing for the CI regression gate,
  // so this bench writes its JSON unconditionally; --json=PATH still
  // redirects it.
  std::string json_path = args.json_path;
  if (json_path.empty()) json_path = "BENCH_vm_throughput.json";
  bench::JsonWriter w;
  bench::manifest_begin(w, "bench_vm_throughput", &args);
  w.field("bench", "vm_throughput");
  w.begin_object("workload");
  w.field("kind", "wTNAF w=4 kP field-kernel mix, sect233k1");
  w.field("mul", ops.mul);
  w.field("sqr", ops.sqr);
  w.field("inv", ops.inv);
  w.field("reps", static_cast<std::uint64_t>(reps));
  w.end_object();
  w.begin_object("reference");
  w.field("engine", "per-step decode");
  w.field("instructions", ref.stats.instructions);
  w.field("cycles", ref.stats.cycles);
  w.field("host_seconds", ref.seconds);
  w.field("sim_mips", ref.mips());
  w.end_object();
  w.begin_object("predecoded");
  w.field("engine", "pre-decoded cache");
  w.field("instructions", pre.stats.instructions);
  w.field("cycles", pre.stats.cycles);
  w.field("host_seconds", pre.seconds);
  w.field("sim_mips", pre.mips());
  w.end_object();
  w.begin_object("threaded");
  w.field("engine", "token-threaded + superinstructions");
  w.field("dispatch", armvm::threaded_dispatch_uses_computed_goto()
                          ? "computed-goto"
                          : "switch");
  w.field("instructions", thr.stats.instructions);
  w.field("cycles", thr.stats.cycles);
  w.field("host_seconds", thr.seconds);
  w.field("sim_mips", thr.mips());
  w.field("fused_retired", thr.fused_retired);
  w.field("fused_blocks_entered", thr.fused_blocks);
  w.field("fused_fraction", thr.fused_fraction());
  w.end_object();
  w.begin_object("batched");
  w.field("engine", "threaded, batch executor");
  w.field("threads", static_cast<std::uint64_t>(pool_threads));
  w.field("instructions", batched.stats.instructions);
  w.field("cycles", batched.stats.cycles);
  w.field("host_seconds", batched.seconds);
  w.field("batch_speedup", batch_speedup);
  w.end_object();
  w.field("speedup", speedup);
  w.field("threaded_speedup", threaded_speedup);
  w.field("bit_identical", true);
  bench::manifest_end(w, &metrics);
  if (!w.write_file(json_path)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  write_fusion_report("fusion_report.json", thr);
  return (enforce && (speedup < 3.0 || threaded_speedup < 2.5)) ? 2 : 0;
}
