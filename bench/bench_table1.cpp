// Reproduces paper Table 1: operation-count formulas for field
// multiplication in F(2^233) — plain LD (A), LD with rotating registers
// (B), LD with fixed registers (C) — evaluated as closed forms and as
// measured counts from the traced implementations, across a sweep of
// word counts n.
#include <cstdio>

#include "common/rng.h"
#include "gf2/traced.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;
using costmodel::OpCounts;
using costmodel::OpRecorder;

namespace {

OpCounts measure(void (*fn)(std::span<Word>, std::span<const Word>,
                            std::span<const Word>, OpRecorder&),
                 std::size_t n) {
  Rng rng(42 + n);
  std::vector<Word> x(n), y(n), v(2 * n);
  rng.fill(x);
  rng.fill(y);
  x[n - 1] &= 0x1FF;  // emulate a 9-bit top word like K-233's
  y[n - 1] &= 0x1FF;
  OpRecorder rec;
  fn(v, x, y, rec);
  return rec.counts();
}

std::string triple(const OpCounts& c) {
  return bench::fmt_u64(c.mem_read) + "/" + bench::fmt_u64(c.mem_write) +
         "/" + bench::fmt_u64(c.xor_ops);
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Table 1 - operation counts (read/write/xor) for LD multiplication "
      "methods");
  std::printf("Method A: plain Lopez-Dahab (w=4)\n");
  std::printf("Method B: LD with rotating registers\n");
  std::printf("Method C: LD with fixed registers (this paper)\n\n");

  bench::Table t({"n", "A paper", "A measured", "B paper", "B measured",
                  "C paper", "C measured"});
  for (std::size_t n : {4u, 6u, 8u, 9u}) {
    t.add_row({std::to_string(n),
               triple(gf2::traced::paper_ld_plain(n)),
               triple(measure(&gf2::traced::mul_ld_plain, n)),
               triple(gf2::traced::paper_ld_rotating(n)),
               triple(measure(&gf2::traced::mul_ld_rotating, n)),
               triple(gf2::traced::paper_ld_fixed(n)),
               triple(measure(&gf2::traced::mul_ld_fixed, n))});
  }
  t.print();

  std::printf(
      "\nPaper formulas: A = 16n^2+23n / 8n^2+30n / 8n^2+30n-7\n"
      "                B = 8n^2+39n-8 / 46n / 8n^2+38n-7\n"
      "                C = 8n^2+24n+1 / 31n+1 / 8n^2+30n-7\n"
      "Shift count: paper 42n-21 for all methods; measured values track\n"
      "the same linear form (LUT generation + inter-pass shifts).\n"
      "Residual deltas on the linear terms come from LUT-generation\n"
      "bookkeeping the paper's closed forms elide; the quadratic terms\n"
      "(the memory-traffic mechanism) match exactly.\n");

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_table1.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_table1");
    w.field("bench", "table1");
    w.raw("rows", t.to_json());
    bench::manifest_end(w);
    w.write_file(json_path);
  }
  return 0;
}
