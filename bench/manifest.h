// The run-manifest envelope for bench mains (telemetry/manifest.h holds
// the schema; ecctool builds the same shape through telemetry::RunManifest).
//
// Benches keep their incremental bench::JsonWriter payloads; this header
// just brackets them:
//
//   bench::JsonWriter w;
//   bench::manifest_begin(w, "bench_table1", &args);  // or nullptr
//   w.field(...);                                     // the payload, as before
//   bench::manifest_end(w, &metrics);                 // or nullptr
//   w.write_file(path);
//
// manifest_begin writes schema/tool/build and the "run" config object
// (the shared Args flags, when given) and leaves "payload" open;
// manifest_end closes it and appends the metrics snapshot — which
// excludes wall-clock units, so a fixed seed + thread count reproduces
// the file byte for byte.
#pragma once

#include "report.h"
#include "telemetry/manifest.h"
#include "telemetry/metrics.h"

namespace eccm0::bench {

inline void manifest_begin(JsonWriter& w, const char* tool,
                           const Args* args = nullptr) {
  w.begin_object();
  w.field("schema", telemetry::kManifestSchema);
  w.field("tool", tool);
  const telemetry::BuildInfo b = telemetry::build_info();
  w.begin_object("build");
  w.field("compiler", b.compiler);
  w.field("build_type", b.build_type);
  w.end_object();
  w.begin_object("run");
  if (args != nullptr) {
    w.field("seed", args->seed);
    w.field("iters", args->iters);
    w.field("threads", static_cast<std::uint64_t>(args->threads));
    w.field("engine", args->engine);
    w.field("mem", args->mem);
    w.field("curve", args->curve);
  }
  w.end_object();
  w.begin_object("payload");
}

inline void manifest_end(JsonWriter& w,
                         const telemetry::MetricsRegistry* metrics = nullptr) {
  w.end_object();  // payload
  w.raw("metrics",
        metrics != nullptr ? metrics->snapshot_json().dump() : "{}");
  w.end_object();  // envelope
}

/// Wrap an already-written JSON file in the manifest envelope, in place
/// (for reporters we don't control, e.g. google-benchmark's --benchmark_out).
inline bool wrap_file_in_manifest(const std::string& path, const char* tool) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  telemetry::RunManifest man(tool);
  man.set_payload_raw(std::move(text));
  return man.write_file(path);
}

}  // namespace eccm0::bench
