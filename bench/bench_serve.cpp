// Serve front-end benchmark + acceptance gate (DESIGN.md §14).
//
// Three sections over an in-process service::Server on the loopback:
//
//   identity   — every served kp / ecdh / ecdsa payload is byte-compared
//                against workload_payload() over the direct library
//                replay, at 1 worker and again at 4 workers. Any
//                mismatch exits nonzero: the service must add nothing
//                and lose nothing, for any worker count. This section is
//                deterministic (digests, cycles, instruction counts) and
//                is the part CI diffs against the committed
//                BENCH_serve.json.
//   wall       — per-endpoint throughput: `--iters` requests per
//                connection from 4 concurrent connections, reporting
//                sustained requests/s and p50/p99 latency from a
//                telemetry::Histogram of per-call microseconds. Wall
//                numbers are reported but never byte-compared; CI only
//                enforces a generous regression floor on kp rps.
//   coalesce   — the A/B behind the batching claim: the same pipelined
//                blast of identical kp requests against a coalescing
//                server and a `coalesce=false` server, one worker each.
//                The coalescing server must actually group requests
//                (serve.coalesced > 0) and, under --enforce, beat the
//                one-replay-per-request server by >= 1.2x.
//
// Flags follow the shared bench::Args convention; tool flags are
// `--quick` (tiny sizes for the ctest smoke run), `--enforce` (turn the
// coalesce speedup target into the exit code) and `--conns=N` (client
// connections in the wall/coalesce sections).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "armvm/dispatch.h"
#include "manifest.h"
#include "report.h"
#include "service/client.h"
#include "service/server.h"
#include "telemetry/metrics.h"
#include "workloads/spec.h"

using namespace eccm0;

namespace {

const char* const kOps[] = {"kp", "ecdh", "ecdsa"};

telemetry::Json workload_params(const std::string& curve) {
  telemetry::Json p = telemetry::Json::object();
  p.set("curve", telemetry::Json::str(curve));
  p.set("reps", telemetry::Json::number(std::uint64_t{1}));
  return p;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One op's identity record: the direct-library payload fields CI diffs.
struct IdentityRow {
  std::string op;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t output_digest = 0;
  bool match = false;
};

/// Byte-compare the served payload against the direct library call, on a
/// server with `workers` workers. Fills `rows` (same values for every
/// worker count — that is the point) and returns false on any mismatch.
bool check_identity(unsigned workers, const std::string& curve,
                    armvm::Cpu::DecodeMode engine,
                    telemetry::MetricsRegistry* metrics,
                    std::vector<IdentityRow>& rows) {
  service::ServerConfig cfg;
  cfg.workers = workers;
  cfg.metrics = metrics;
  cfg.engine = engine;
  service::Server server(cfg);
  server.start();
  service::Client client;
  client.connect_to(server.port());

  bool ok = true;
  rows.clear();
  for (const char* op : kOps) {
    const workloads::WorkloadSpec spec = workloads::make_workload(op, curve);
    const workloads::ReplayResult direct = workloads::replay(spec, engine);
    const std::string want =
        service::workload_payload(spec, 1, direct, engine, {}).dump();

    const telemetry::Json resp = client.call(op, workload_params(curve));
    const std::string got = resp.get("ok")->as_bool()
                                ? resp.get("payload")->dump()
                                : resp.get("error")->dump();
    IdentityRow row;
    row.op = op;
    row.cycles = direct.stats.cycles;
    row.instructions = direct.stats.instructions;
    row.output_digest = direct.output_digest;
    row.match = got == want;
    rows.push_back(row);
    if (!row.match) {
      std::fprintf(stderr,
                   "FAIL: %s payload diverged from the direct call at "
                   "%u worker(s)\n  served: %s\n  direct: %s\n",
                   op, workers, got.c_str(), want.c_str());
      ok = false;
    }
  }
  server.stop();
  return ok;
}

struct WallResult {
  std::uint64_t requests = 0;
  double seconds = 0.0;
  telemetry::Histogram latency_us;
  bool ok = true;

  double rps() const { return seconds > 0 ? requests / seconds : 0.0; }
};

/// `conns` concurrent connections, each issuing `per_conn` sequential
/// requests; per-call latency lands in a per-thread histogram shard.
WallResult blast(std::uint16_t port, const std::string& op,
                 const telemetry::Json& params, unsigned conns,
                 std::uint64_t per_conn) {
  std::vector<telemetry::Histogram> shards(conns);
  std::vector<char> thread_ok(conns, 1);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      try {
        service::Client client;
        client.connect_to(port);
        for (std::uint64_t i = 0; i < per_conn; ++i) {
          const auto s = std::chrono::steady_clock::now();
          const telemetry::Json resp = client.call(op, params);
          const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - s)
                              .count();
          shards[c].record(static_cast<std::uint64_t>(us));
          if (!resp.get("ok")->as_bool()) thread_ok[c] = 0;
        }
      } catch (const std::exception&) {
        thread_ok[c] = 0;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  WallResult r;
  r.seconds = seconds_since(t0);
  for (unsigned c = 0; c < conns; ++c) {
    r.latency_us.merge(shards[c]);
    if (thread_ok[c] == 0) r.ok = false;
  }
  r.requests = r.latency_us.count();
  return r;
}

/// The coalesce A/B load: every connection pipelines `per_conn`
/// identical requests (write all frames, then read all responses), so
/// the queue actually holds duplicates for the worker to group.
WallResult blast_pipelined(std::uint16_t port, const std::string& op,
                           const telemetry::Json& params, unsigned conns,
                           std::uint64_t per_conn) {
  std::vector<char> thread_ok(conns, 1);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      try {
        service::Client client;
        client.connect_to(port);
        for (std::uint64_t i = 0; i < per_conn; ++i) {
          const telemetry::Json req =
              service::wire::make_request(i + 1, op, params);
          if (!service::wire::write_frame(client.fd(), req.dump())) {
            thread_ok[c] = 0;
            return;
          }
        }
        for (std::uint64_t i = 0; i < per_conn; ++i) {
          std::string body;
          if (!service::wire::read_frame(client.fd(), body) ||
              !telemetry::Json::parse(body).get("ok")->as_bool()) {
            thread_ok[c] = 0;
            return;
          }
        }
      } catch (const std::exception&) {
        thread_ok[c] = 0;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  WallResult r;
  r.seconds = seconds_since(t0);
  r.requests = conns * per_conn;
  for (unsigned c = 0; c < conns; ++c) {
    if (thread_ok[c] == 0) r.ok = false;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool enforce = false;
  std::uint64_t conns64 = 4;
  bench::Args args;
  args.iters = 8;    // requests per connection in the wall section
  args.threads = 0;  // serve workers in the wall section (0 = hw)
  args.add_flag("--quick", &quick);
  args.add_flag("--enforce", &enforce);
  args.add_u64("--conns", &conns64);
  if (!args.parse(argc - 1, argv + 1, "BENCH_serve.json") ||
      !args.positionals().empty()) {
    return 2;
  }
  armvm::Cpu::DecodeMode engine;
  try {
    engine = armvm::decode_mode_from_name(args.engine);
    workloads::curve_from_name(args.curve);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const unsigned conns = quick ? 2 : static_cast<unsigned>(conns64);
  const std::uint64_t per_conn =
      quick ? 1 : (args.iters == 0 ? 1 : args.iters);
  const std::uint64_t coalesce_per_conn = quick ? 2 : 2 * per_conn;
  const unsigned id_workers[2] = {1u, quick ? 2u : 4u};

  bench::banner("serve front-end - identity, throughput, coalescing");

  // ---- identity (deterministic; the CI diff section) -----------------
  telemetry::MetricsRegistry id_metrics;
  std::vector<IdentityRow> rows, rows_again;
  if (!check_identity(id_workers[0], args.curve, engine, &id_metrics, rows) ||
      !check_identity(id_workers[1], args.curve, engine, nullptr,
                      rows_again)) {
    return 1;
  }
  bench::Table id_table({"op", "sim cycles", "sim instr", "output digest",
                         "served == direct"});
  for (const IdentityRow& r : rows) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(r.output_digest));
    id_table.add_row({r.op + "-" + args.curve, bench::fmt_u64(r.cycles),
                      bench::fmt_u64(r.instructions), digest,
                      r.match ? "yes" : "NO"});
  }
  id_table.print();
  std::printf("payloads byte-identical at %u and %u worker(s)\n\n",
              id_workers[0], id_workers[1]);

  // ---- wall: per-endpoint sustained throughput -----------------------
  service::ServerConfig wall_cfg;
  wall_cfg.workers = args.threads;
  wall_cfg.engine = engine;
  service::Server wall_server(wall_cfg);
  wall_server.start();
  const unsigned wall_workers = wall_server.config().workers == 0
                                    ? sim::BatchExecutor(0).threads()
                                    : wall_server.config().workers;

  const telemetry::Json params = workload_params(args.curve);
  bench::Table wall_table(
      {"op", "requests", "rps", "p50 ms", "p99 ms", "all ok"});
  struct WallRow {
    std::string op;
    WallResult r;
  };
  std::vector<WallRow> wall_rows;
  bool wall_ok = true;
  for (const char* op : kOps) {
    WallResult r = blast(wall_server.port(), op, params, conns, per_conn);
    wall_ok = wall_ok && r.ok;
    wall_table.add_row(
        {op, bench::fmt_u64(r.requests), bench::fmt_f(r.rps(), 1),
         bench::fmt_f(r.latency_us.quantile(0.5) / 1000.0, 2),
         bench::fmt_f(r.latency_us.quantile(0.99) / 1000.0, 2),
         r.ok ? "yes" : "NO"});
    wall_rows.push_back({op, std::move(r)});
  }
  wall_server.stop();
  wall_table.print();
  std::printf("%u connection(s) x %llu request(s), %u worker(s)\n\n", conns,
              static_cast<unsigned long long>(per_conn), wall_workers);
  if (!wall_ok) {
    std::fprintf(stderr, "FAIL: wall section saw errored requests\n");
    return 1;
  }

  // ---- coalesce A/B: one worker, identical pipelined kp requests -----
  const std::uint64_t coalesce_total = conns * coalesce_per_conn;
  service::ServerConfig ab_cfg;
  ab_cfg.workers = 1;
  ab_cfg.engine = engine;
  ab_cfg.queue_depth = coalesce_total + 8;  // backpressure off: measure work

  ab_cfg.coalesce = false;
  service::Server plain(ab_cfg);
  plain.start();
  const WallResult plain_r =
      blast_pipelined(plain.port(), "kp", params, conns, coalesce_per_conn);
  plain.stop();

  ab_cfg.coalesce = true;
  service::Server batched(ab_cfg);
  batched.start();
  const WallResult batched_r =
      blast_pipelined(batched.port(), "kp", params, conns, coalesce_per_conn);
  const std::uint64_t coalesced =
      batched.metrics().counter_value("serve.coalesced");
  batched.stop();

  if (!plain_r.ok || !batched_r.ok) {
    std::fprintf(stderr, "FAIL: coalesce A/B saw errored requests\n");
    return 1;
  }
  if (coalesced == 0) {
    std::fprintf(stderr,
                 "FAIL: coalescing server never grouped identical "
                 "requests (serve.coalesced == 0)\n");
    return 1;
  }
  const double coalesce_speedup = batched_r.rps() / plain_r.rps();
  std::printf("coalesce A/B (%llu identical kp, 1 worker): "
              "one-per-run %.1f rps, coalesced %.1f rps (%.2fx, "
              "%llu request(s) coalesced away%s)\n",
              static_cast<unsigned long long>(coalesce_total), plain_r.rps(),
              batched_r.rps(), coalesce_speedup,
              static_cast<unsigned long long>(coalesced),
              enforce ? ", target >= 1.2x" : "");

  // The committed baseline is load-bearing for the CI identity diff and
  // the throughput floor, so the JSON mirror is written unconditionally.
  std::string json_path = args.json_path;
  if (json_path.empty()) json_path = "BENCH_serve.json";
  bench::JsonWriter w;
  bench::manifest_begin(w, "bench_serve", &args);
  w.field("bench", "serve");
  // Deterministic section: CI byte-diffs this object against the
  // committed baseline (jq .payload.identity).
  w.begin_object("identity");
  w.field("engine", args.engine);
  w.field("curve", args.curve);
  w.begin_array("workers_checked");
  w.begin_object();
  w.field("workers", static_cast<std::uint64_t>(id_workers[0]));
  w.end_object();
  w.begin_object();
  w.field("workers", static_cast<std::uint64_t>(id_workers[1]));
  w.end_object();
  w.end_array();
  for (const IdentityRow& r : rows) {
    w.begin_object(r.op.c_str());
    w.field("cycles", r.cycles);
    w.field("instructions", r.instructions);
    w.field("output_digest", r.output_digest);
    w.field("served_equals_direct", r.match);
    w.end_object();
  }
  w.field("bit_identical", true);
  w.end_object();
  // Wall section: reported, never byte-compared (CI only floors kp rps).
  w.begin_object("wall");
  w.field("connections", static_cast<std::uint64_t>(conns));
  w.field("per_connection", per_conn);
  w.field("workers", static_cast<std::uint64_t>(wall_workers));
  for (const WallRow& row : wall_rows) {
    w.begin_object(row.op.c_str());
    w.field("requests", row.r.requests);
    w.field("rps", row.r.rps());
    w.field("p50_us", row.r.latency_us.quantile(0.5));
    w.field("p99_us", row.r.latency_us.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.begin_object("coalesce");
  w.field("requests", coalesce_total);
  w.field("plain_rps", plain_r.rps());
  w.field("coalesced_rps", batched_r.rps());
  w.field("speedup", coalesce_speedup);
  w.field("coalesced_requests", coalesced);
  w.end_object();
  bench::manifest_end(w, &id_metrics);
  if (!w.write_file(json_path)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return (enforce && coalesce_speedup < 1.2) ? 2 : 0;
}
