// Native-host micro-benchmarks of the curve layer: scalar-multiplication
// algorithm comparison and protocol round trips.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/ecdh.h"
#include "crypto/ecdsa.h"
#include "ec/scalarmul.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;
using ec::AffinePoint;
using ec::BinaryCurve;
using mpint::UInt;

namespace {

const BinaryCurve& curve() { return BinaryCurve::sect233k1(); }
AffinePoint gen() { return AffinePoint::make(curve().gx, curve().gy); }

UInt scalar(std::uint64_t seed) {
  Rng rng(seed);
  return UInt::random_below(rng, curve().order);
}

void BM_Wtnaf(benchmark::State& state) {
  ec::CurveOps ops(curve());
  const auto w = static_cast<unsigned>(state.range(0));
  const UInt k = scalar(1);
  const auto table = ec::make_wtnaf_table(ops, gen(), w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::mul_wtnaf(ops, table, k));
  }
}
BENCHMARK(BM_Wtnaf)->Arg(2)->Arg(4)->Arg(6);

void BM_WtnafWithPrecomp(benchmark::State& state) {
  ec::CurveOps ops(curve());
  const UInt k = scalar(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::mul_wtnaf(ops, gen(), k, 4));
  }
}
BENCHMARK(BM_WtnafWithPrecomp);

void BM_Wnaf(benchmark::State& state) {
  ec::CurveOps ops(curve());
  const UInt k = scalar(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::mul_wnaf(ops, gen(), k, 4));
  }
}
BENCHMARK(BM_Wnaf);

void BM_Ladder(benchmark::State& state) {
  ec::CurveOps ops(curve());
  const UInt k = scalar(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::mul_ladder(ops, gen(), k));
  }
}
BENCHMARK(BM_Ladder);

void BM_Naive(benchmark::State& state) {
  ec::CurveOps ops(curve());
  const UInt k = scalar(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::mul_naive(ops, gen(), k));
  }
}
BENCHMARK(BM_Naive);

void BM_TnafRecode(benchmark::State& state) {
  const UInt k = scalar(6);
  for (auto _ : state) {
    const auto rho = ec::partmod(k, curve());
    benchmark::DoNotOptimize(ec::wtnaf_digits(rho, curve().mu, 4));
  }
}
BENCHMARK(BM_TnafRecode);

void BM_EcdhAgreement(benchmark::State& state) {
  const crypto::Ecdh ecdh;
  std::vector<std::uint8_t> seed{1, 2, 3};
  crypto::HmacDrbg rng(seed);
  const auto alice = ecdh.generate(rng);
  const auto bob = ecdh.generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdh.shared_secret(alice.d, bob.q));
  }
}
BENCHMARK(BM_EcdhAgreement);

void BM_EcdsaSign(benchmark::State& state) {
  const crypto::Ecdsa ecdsa;
  std::vector<std::uint8_t> seed{4, 5, 6};
  crypto::HmacDrbg rng(seed);
  const auto kp = ecdsa.generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa.sign(kp.d, "benchmark message"));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const crypto::Ecdsa ecdsa;
  std::vector<std::uint8_t> seed{7, 8, 9};
  crypto::HmacDrbg rng(seed);
  const auto kp = ecdsa.generate(rng);
  const auto sig = ecdsa.sign(kp.d, "benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa.verify(kp.q, "benchmark message", sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

}  // namespace

// Accepts the repo-wide `--json[=PATH]` flag by translating it into
// google-benchmark's JSON reporter before handing over the argv.
int main(int argc, char** argv) {
  const std::string json_path =
      eccm0::bench::json_flag_path(argc, argv, "BENCH_host_point.json");
  std::vector<char*> args;
  std::string out_flag, fmt_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0) continue;
    args.push_back(argv[i]);
  }
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Re-wrap the reporter file in the repo's manifest envelope (the
  // google-benchmark payload is wall-clock data, so the envelope's
  // metrics section stays empty).
  if (!json_path.empty() &&
      !eccm0::bench::wrap_file_in_manifest(json_path, "bench_host_point")) {
    std::fprintf(stderr, "failed to rewrite %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
