// Ablation: why w = 4 for kP and w = 6 for kG?
//
// Sweeps the wTNAF window width for both configurations under the
// measured cost tables. Wider windows cut the addition density 1/(w+1)
// but square the precomputation (2^(w-2) points); for a random point the
// precomputation is paid online, for the fixed base it is free — which is
// exactly why the paper picks different widths for the two cases.
#include <cstdio>

#include "common/rng.h"
#include "ec/costing.h"
#include "relic_like/costs.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;
using mpint::UInt;

int main(int argc, char** argv) {
  bench::banner("Ablation - wTNAF window width (measured cost tables)");

  const auto& curve = ec::BinaryCurve::sect233k1();
  const auto g = ec::AffinePoint::make(curve.gx, curve.gy);
  const auto& prices = relic_like::proposed_asm_costs();
  Rng rng(0xAB1A7E);
  const UInt k = UInt::random_below(rng, curve.order);

  bench::Table t({"w", "table", "adds", "kP cycles", "kP uJ", "kG cycles",
                  "kG uJ"});
  std::uint64_t best_kp = ~0ull, best_kg = ~0ull;
  unsigned best_kp_w = 0, best_kg_w = 0;
  for (unsigned w = 2; w <= 8; ++w) {
    const auto kp = ec::cost_point_mul(curve, g, k, w, false, prices);
    const auto kg = ec::cost_point_mul(curve, g, k, w, true, prices);
    if (kp.cost.total() < best_kp) {
      best_kp = kp.cost.total();
      best_kp_w = w;
    }
    if (kg.cost.total() < best_kg) {
      best_kg = kg.cost.total();
      best_kg_w = w;
    }
    t.add_row({std::to_string(w),
               std::to_string(std::size_t{1} << (w - 2)) + " pts",
               bench::fmt_u64(kp.adds), bench::fmt_u64(kp.cost.total()),
               bench::fmt_f(kp.energy_uj(prices), 2),
               bench::fmt_u64(kg.cost.total()),
               bench::fmt_f(kg.energy_uj(prices), 2)});
  }
  t.print();

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_ablation_window.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_ablation_window");
    w.field("bench", "ablation_window");
    w.field("curve", "sect233k1");
    w.raw("rows", t.to_json());
    w.field("best_kp_w", static_cast<std::uint64_t>(best_kp_w));
    w.field("best_kg_w", static_cast<std::uint64_t>(best_kg_w));
    bench::manifest_end(w);
    w.write_file(json_path);
  }

  std::printf(
      "\nCycle-optimal width: kP w = %u, kG w = %u (paper chose 4 and 6).\n"
      "For kP the online precomputation (2^(w-2) points, one batched\n"
      "inversion) eats the density win beyond w=4 — the paper's choice\n"
      "is cycle-optimal. For the fixed base the table is free at run\n"
      "time, so cycles keep improving slowly past w=6; but the return\n"
      "from w=6 to w=8 is ~10%% while the static table quadruples\n"
      "(16 -> 64 points, ~0.9 -> 3.8 KB of the M0+'s few KB of RAM) —\n"
      "w=6 is the RAM-constrained knee the paper sits on.\n",
      best_kp_w, best_kg_w);
  return 0;
}
