// Reproduces paper Table 6: cycle counts for the field-arithmetic
// routines in "C" and assembly, plus full kP / kG totals.
//
// Column mapping:
//   "C"        — the compiler-shaped variants: plain-memory multiply
//                (a compiler cannot pin 9 words in registers) measured on
//                the VM; inversion from the traced C model; squaring from
//                the VM kernel (shape survives compilation); the rotating-
//                registers row from the traced rotating model.
//   "Assembly" — the hand-scheduled kernels measured on the VM.
#include <cstdio>

#include "workloads/runner.h"
#include "common/rng.h"
#include "gf2/traced.h"
#include "relic_like/costs.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;
using gf2::k233::Fe;

int main(int argc, char** argv) {
  bench::banner("Table 6 - field arithmetic cycle counts (C vs assembly)");

  asmkernels::KernelVm vm;
  Rng rng(0x7AB1E6);
  Fe a, b;
  rng.fill(a);
  rng.fill(b);
  a[7] &= gf2::k233::kTopMask;
  b[7] &= gf2::k233::kTopMask;

  const auto sqr_vm = vm.sqr(a).stats.cycles;
  const auto mul_fixed =
      vm.mul(asmkernels::MulKernel::kFixedRegisters, a, b, true).stats.cycles;
  const auto mul_plain =
      vm.mul(asmkernels::MulKernel::kPlainMemory, a, b, true).stats.cycles;

  costmodel::OpRecorder rec;
  (void)gf2::traced::inv_traced(a, rec);
  const auto inv_model = costmodel::CycleModel{}.cycles(rec.counts());
  const auto inv_vm = vm.inv(a).stats.cycles;

  rec.reset();
  {
    std::vector<Word> x(a.begin(), a.end()), y(b.begin(), b.end()),
        v(2 * a.size());
    gf2::traced::mul_ld_rotating(v, x, y, rec);
  }
  const auto rot_model = costmodel::CycleModel{}.cycles(rec.counts());

  bench::Table t({"Operation", "C [cy]", "C paper", "Asm [cy]",
                  "Asm paper"});
  t.add_row({"Modular squaring", bench::fmt_u64(sqr_vm), "419",
             bench::fmt_u64(sqr_vm), "395"});
  t.add_row({"Inversion (EEA)", bench::fmt_u64(inv_vm), "141916",
             bench::fmt_u64(inv_model), "-"});
  t.add_row({"LD rotating registers (model)", bench::fmt_u64(rot_model),
             "5592", "-", "-"});
  t.add_row({"LD fixed registers", bench::fmt_u64(mul_plain), "5964",
             bench::fmt_u64(mul_fixed), "3672"});

  // Full point multiplications with the two cost tables.
  using mpint::UInt;
  const auto& k233 = ec::BinaryCurve::sect233k1();
  const auto g = ec::AffinePoint::make(k233.gx, k233.gy);
  Rng krng(99);
  const UInt k = UInt::random_below(krng, k233.order);
  const auto kp_c = ec::cost_point_mul(k233, g, k, 4, false,
                                       relic_like::proposed_c_costs());
  const auto kp_a = ec::cost_point_mul(k233, g, k, 4, false,
                                       relic_like::proposed_asm_costs());
  const auto kg_c = ec::cost_point_mul(k233, g, k, 6, true,
                                       relic_like::proposed_c_costs());
  const auto kg_a = ec::cost_point_mul(k233, g, k, 6, true,
                                       relic_like::proposed_asm_costs());
  t.add_row({"kP (random point, w=4)", bench::fmt_u64(kp_c.cost.total()),
             "3516295", bench::fmt_u64(kp_a.cost.total()), "2761640"});
  t.add_row({"kG (fixed point, w=6)", bench::fmt_u64(kg_c.cost.total()),
             "2494757", bench::fmt_u64(kg_a.cost.total()), "1864470"});
  t.print();

  std::printf(
      "\nRegister pinning (C -> asm on the multiply): paper 5964 -> 3672 "
      "(-38%%),\nmeasured %llu -> %llu (-%.0f%%).\n",
      static_cast<unsigned long long>(mul_plain),
      static_cast<unsigned long long>(mul_fixed),
      100.0 * (1.0 - static_cast<double>(mul_fixed) /
                         static_cast<double>(mul_plain)));
  std::printf(
      "Inversion: the C column is the looping EEA Thumb routine measured\n"
      "on the VM (the paper kept inversion in C); the Asm column shows\n"
      "the idealised traced model for contrast. See EXPERIMENTS.md.\n");

  // Ablation: Itoh-Tsujii (10 mul + 231 sqr + 1 sqr) vs the EEA, priced
  // with this repo's measured kernels and with the paper's.
  const auto it_ours = 10 * mul_fixed + 232 * sqr_vm;
  const auto it_paper = 10 * 3672 + 232 * 395;
  std::printf(
      "\nInversion ablation: Itoh-Tsujii costs %llu cycles with our\n"
      "kernels (EEA: %llu) and %u with the paper's (their EEA: 141916) —\n"
      "the EEA/IT crossover sits exactly at this paper's kernel speeds.\n",
      static_cast<unsigned long long>(it_ours),
      static_cast<unsigned long long>(inv_vm),
      static_cast<unsigned>(it_paper));

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_table6.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_table6");
    w.field("bench", "table6");
    w.raw("rows", t.to_json());
    w.field("mul_plain_cycles", mul_plain);
    w.field("mul_fixed_cycles", mul_fixed);
    w.field("pinning_gain_pct",
            100.0 * (1.0 - static_cast<double>(mul_fixed) /
                               static_cast<double>(mul_plain)));
    w.field("itoh_tsujii_cycles", it_ours);
    w.field("eea_cycles", inv_vm);
    bench::manifest_end(w);
    w.write_file(json_path);
  }
  return 0;
}
