// Native-host micro-benchmarks (google-benchmark) of the field layer:
// how fast the portable kernels actually run on this machine, plus the
// cost of the instrumented and VM-executed paths.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "workloads/runner.h"
#include "common/rng.h"
#include "gf2/field.h"
#include "gf2/k233.h"
#include "gf2/traced.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;
using gf2::k233::Fe;
using gf2::k233::Prod;

namespace {

Fe random_fe(Rng& rng) {
  Fe f;
  rng.fill(f);
  f[7] &= gf2::k233::kTopMask;
  return f;
}

void BM_K233_MulLd(benchmark::State& state) {
  Rng rng(1);
  const Fe a = random_fe(rng), b = random_fe(rng);
  Prod v;
  for (auto _ : state) {
    gf2::k233::mul_ld(v, a, b);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_K233_MulLd);

void BM_K233_MulKaratsuba(benchmark::State& state) {
  Rng rng(2);
  const Fe a = random_fe(rng), b = random_fe(rng);
  Prod v;
  for (auto _ : state) {
    gf2::k233::mul_karatsuba(v, a, b);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_K233_MulKaratsuba);

void BM_K233_MulModular(benchmark::State& state) {
  Rng rng(3);
  const Fe a = random_fe(rng), b = random_fe(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf2::k233::mul(a, b));
  }
}
BENCHMARK(BM_K233_MulModular);

void BM_K233_Sqr(benchmark::State& state) {
  Rng rng(4);
  const Fe a = random_fe(rng);
  Fe r;
  for (auto _ : state) {
    gf2::k233::sqr(r, a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_K233_Sqr);

void BM_K233_Reduce(benchmark::State& state) {
  Rng rng(5);
  Prod p;
  rng.fill(p);
  p[15] = 0;
  Fe r;
  for (auto _ : state) {
    gf2::k233::reduce(r, p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_K233_Reduce);

void BM_K233_Inv(benchmark::State& state) {
  Rng rng(6);
  const Fe a = random_fe(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf2::k233::inv(a));
  }
}
BENCHMARK(BM_K233_Inv);

void BM_GenericField_Mul(benchmark::State& state) {
  const auto& f = state.range(0) == 163 ? gf2::GF2Field::f163()
                                        : gf2::GF2Field::f283();
  Rng rng(7);
  const auto a = f.random(rng);
  const auto b = f.random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.mul(a, b));
  }
}
BENCHMARK(BM_GenericField_Mul)->Arg(163)->Arg(283);

void BM_Traced_MulFixed(benchmark::State& state) {
  Rng rng(8);
  std::vector<Word> x(8), y(8), v(16);
  rng.fill(x);
  rng.fill(y);
  for (auto _ : state) {
    costmodel::OpRecorder rec;
    gf2::traced::mul_ld_fixed(v, x, y, rec);
    benchmark::DoNotOptimize(rec.counts().mem_read);
  }
}
BENCHMARK(BM_Traced_MulFixed);

void BM_Vm_MulFixedKernel(benchmark::State& state) {
  static asmkernels::KernelVm vm;
  Rng rng(9);
  const Fe a = random_fe(rng), b = random_fe(rng);
  for (auto _ : state) {
    auto r = vm.mul(asmkernels::MulKernel::kFixedRegisters, a, b, true);
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.SetLabel("simulated M0+ cycles per op: ~4500");
}
BENCHMARK(BM_Vm_MulFixedKernel);

}  // namespace

// Accepts the repo-wide `--json[=PATH]` flag by translating it into
// google-benchmark's JSON reporter before handing over the argv.
int main(int argc, char** argv) {
  const std::string json_path =
      eccm0::bench::json_flag_path(argc, argv, "BENCH_host_field.json");
  std::vector<char*> args;
  std::string out_flag, fmt_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0) continue;
    args.push_back(argv[i]);
  }
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Re-wrap the reporter file in the repo's manifest envelope (the
  // google-benchmark payload is wall-clock data, so the envelope's
  // metrics section stays empty).
  if (!json_path.empty() &&
      !eccm0::bench::wrap_file_in_manifest(json_path, "bench_host_field")) {
    std::fprintf(stderr, "failed to rewrite %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
