// Reproduces paper Table 3: energy per cycle for the instructions
// relevant to field arithmetic, re-measured the way the paper did it —
// each instruction in a long loop on the (simulated) M0+ with the
// (simulated) power rig, loop overhead subtracted.
#include <cstdio>

#include "measure/power_trace.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;

int main(int argc, char** argv) {
  bench::banner(
      "Table 3 - energy per cycle per instruction at 48 MHz (measured on "
      "the simulated rig, 25 uW gaussian noise)");

  struct Row {
    const char* name;
    const char* instr;
    unsigned cycles;
    double paper_pj;
  };
  const Row rows[] = {
      {"LDR", "ldr r0, [r1]", 2, 10.98},
      {"LSR", "lsrs r0, r2, #3", 1, 12.05},
      {"MUL", "muls r0, r2", 1, 12.14},
      {"LSL", "lsls r0, r2, #3", 1, 12.21},
      {"XOR", "eors r0, r2", 1, 12.43},
      {"ADD", "adds r0, r2", 1, 13.45},
  };

  const measure::RigConfig cfg{.noise_uw = 25.0, .seed = 0xDAC2014};
  bench::Table t({"Instruction", "Measured [pJ/cycle]", "Paper [pJ/cycle]",
                  "Delta [%]"});
  double min_pj = 1e9, max_pj = 0;
  for (const Row& r : rows) {
    const double pj =
        measure::measure_instruction_energy_pj(r.instr, 64, cfg) / r.cycles;
    min_pj = std::min(min_pj, pj);
    max_pj = std::max(max_pj, pj);
    t.add_row({r.name, bench::fmt_f(pj), bench::fmt_f(r.paper_pj),
               bench::fmt_f(100.0 * (pj - r.paper_pj) / r.paper_pj, 1)});
  }
  t.print();

  std::printf(
      "\nVariation across instructions: %.1f%% (paper reports up to "
      "22.5%%).\nADD is the hungriest instruction; LDR per cycle the "
      "cheapest —\nthe instruction-mix fact behind the binary-curve "
      "choice.\n",
      100.0 * (max_pj - min_pj) / min_pj);

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_table3.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_table3");
    w.field("bench", "table3");
    w.raw("rows", t.to_json());
    w.field("variation_pct", 100.0 * (max_pj - min_pj) / min_pj);
    bench::manifest_end(w);
    w.write_file(json_path);
  }
  return 0;
}
