// Symbol-attributed profile of the paper's core workload: the K-233
// field-kernel mix of one wTNAF w=4 `kP` (the same schedule as
// bench_vm_throughput), run traced with a Profiler + MemHeatmap attached
// to each kernel machine.
//
// Outputs:
//   - per-function flat/inclusive cycle, instruction and Table-3 energy
//     attribution for every machine (mul_fixed, sqr, inv), self-checked
//     to match the Cpu's own RunStats *exactly*;
//   - a per-word RAM heatmap of the product vector v[0..15], fixed-
//     register vs plain-memory multiplication — the observational proof
//     of the paper's register-pinning claim (v[3..11] near-zero traffic);
//   - with --json[=PATH] (bench::Args convention, opt-in) a
//     BENCH_profile.json mirror, plus profile_trace.json (Chrome
//     trace-event / Perfetto, simulated 48 MHz clock) and
//     profile_flame.txt (collapsed stacks for flamegraph.pl).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "armvm/cpu.h"
#include "asmkernels/gen.h"
#include "manifest.h"
#include "ec/costing.h"
#include "profile/heatmap.h"
#include "profile/profiler.h"
#include "profile/trace_export.h"
#include "report.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"
#include "workloads/spec.h"

using namespace eccm0;
using armvm::Cpu;

namespace {

constexpr std::size_t kRamSize = workloads::kKernelRamSize;

/// One registry kernel with a per-context Profiler + MemHeatmap fanned
/// in via a TeeSink — the image is shared, the sinks are private.
struct Machine {
  std::string name;
  workloads::KernelMachine km;
  profile::Profiler prof;
  profile::MemHeatmap heat;
  armvm::TeeSink tee;
  armvm::Memory& mem;
  Cpu& cpu;

  explicit Machine(const std::string& kernel_name)
      : name(kernel_name),
        km(workloads::kernel(kernel_name)),
        prof(km.prog()),
        heat(kRamSize),
        mem(km.mem()),
        cpu(km.cpu()) {
    tee.add(&prof);
    tee.add(&heat);
    cpu.set_trace_sink(&tee);
  }

  void call() { km.call(); }
};

bool check_totals(Machine& m) {
  const armvm::RunStats s = m.cpu.stats();
  const double model_pj = s.energy().energy_pj;
  const double prof_pj = m.prof.total_energy_pj();
  if (m.prof.total_cycles() != s.cycles ||
      m.prof.total_instructions() != s.instructions || prof_pj != model_pj) {
    std::fprintf(stderr,
                 "FAIL [%s]: profiler totals diverge from RunStats "
                 "(cycles %llu vs %llu, instr %llu vs %llu, "
                 "energy %.3f vs %.3f pJ)\n",
                 m.name.c_str(),
                 static_cast<unsigned long long>(m.prof.total_cycles()),
                 static_cast<unsigned long long>(s.cycles),
                 static_cast<unsigned long long>(m.prof.total_instructions()),
                 static_cast<unsigned long long>(s.instructions), prof_pj,
                 model_pj);
    return false;
  }
  // The root frame's inclusive cost must also be the whole run.
  for (const auto& f : m.prof.functions()) {
    if (f.name == "entry" && f.inclusive_cycles != s.cycles) {
      std::fprintf(stderr,
                   "FAIL [%s]: root inclusive cycles %llu != RunStats %llu\n",
                   m.name.c_str(),
                   static_cast<unsigned long long>(f.inclusive_cycles),
                   static_cast<unsigned long long>(s.cycles));
      return false;
    }
  }
  return true;
}

void print_functions(Machine& m) {
  const armvm::RunStats s = m.cpu.stats();
  std::printf("[%s] %llu instructions, %llu cycles, %.3f uJ\n",
              m.name.c_str(), static_cast<unsigned long long>(s.instructions),
              static_cast<unsigned long long>(s.cycles),
              s.energy().energy_uj());
  bench::Table t({"function", "calls", "instrs", "self cyc", "incl cyc",
                  "self uJ", "self %"});
  for (const auto& f : m.prof.functions()) {
    t.add_row({f.name, bench::fmt_u64(f.calls), bench::fmt_u64(f.instructions),
               bench::fmt_u64(f.self_cycles),
               bench::fmt_u64(f.inclusive_cycles),
               bench::fmt_f(f.self_energy_pj() * 1e-6, 4),
               bench::fmt_f(100.0 * static_cast<double>(f.self_cycles) /
                                static_cast<double>(s.cycles),
                            1)});
  }
  t.print();
  std::printf("\n");
}

/// `--curve=secpNNNr1` profile: the curve's Montgomery kernel mix of one
/// Jacobian wNAF w=4 kP. The register-pinning heatmap comparison is a
/// sect233k1 claim (there is no "plain" comparator kernel on GF(p)), so
/// this path reports attribution + the Montgomery operand regions only.
int run_prime_profile(const bench::Args& args,
                      const workloads::CurveRef& curve) {
  bench::banner("kP field-kernel profile - symbol attribution (GF(p))");

  const ec::FieldOpCounts& ops = workloads::op_mix(curve);
  std::printf("kP workload (Jacobian wNAF w=4, %s): %llu mul, %llu sqr, "
              "%llu inv\n\n",
              curve.name.c_str(), static_cast<unsigned long long>(ops.mul),
              static_cast<unsigned long long>(ops.sqr),
              static_cast<unsigned long long>(ops.inv));

  Machine mont(curve.kernel_tag + "-mont");
  Machine sqr(curve.kernel_tag + "-sqr");
  Machine inv(curve.kernel_tag + "-inv");

  const workloads::PrimeOperands& od = workloads::PrimeOperands::standard(curve);
  for (Machine* m : {&mont, &sqr, &inv}) {
    workloads::load_prime_modulus(m->mem, curve);
  }
  workloads::load_prime_mul_inputs(mont.mem, od.x, od.y);
  workloads::load_prime_mul_inputs(sqr.mem, od.x, od.y);
  workloads::load_prime_inv_input(inv.mem, od.a);

  // All three prime kernels are rerunnable without an operand reload.
  for (std::uint64_t i = 0; i < ops.mul; ++i) mont.call();
  for (std::uint64_t i = 0; i < ops.sqr; ++i) sqr.call();
  for (std::uint64_t i = 0; i < ops.inv; ++i) inv.call();

  bool ok = true;
  for (Machine* m : {&mont, &sqr, &inv}) ok = check_totals(*m) && ok;
  if (!ok) return 1;
  for (Machine* m : {&mont, &sqr, &inv}) print_functions(*m);

  const unsigned n = curve.limbs;
  const profile::MemHeatmap::Region kMontRegions[] = {
      {"t (wide)", asmkernels::kWideOff, 2 * n},
      {"out (reduced)", asmkernels::kOutOff, n},
      {"x (multiplier)", asmkernels::kXOff, n},
      {"y (multiplicand)", asmkernels::kYOff, n},
      {"modulus", asmkernels::kPModOff, n},
  };
  std::printf("%s-mont RAM regions:\n", curve.kernel_tag.c_str());
  bench::Table rt({"region", "loads", "stores", "peak word"});
  for (const auto& rep : mont.heat.summarize(kMontRegions)) {
    rt.add_row({rep.name, bench::fmt_u64(rep.loads),
                bench::fmt_u64(rep.stores),
                bench::fmt_u64(rep.peak_word_traffic)});
  }
  rt.print();

  const profile::NamedProfile tracks[] = {
      {curve.kernel_tag + "-mont", &mont.prof},
      {curve.kernel_tag + "-sqr", &sqr.prof},
      {curve.kernel_tag + "-inv", &inv.prof}};
  if (profile::write_text_file("profile_trace.json",
                               profile::chrome_trace_json(tracks)) &&
      profile::write_text_file("profile_flame.txt",
                               profile::collapsed_stack_text(tracks))) {
    std::printf("\nwrote profile_trace.json (Perfetto / chrome://tracing) "
                "and profile_flame.txt (flamegraph.pl)\n");
  }

  if (!args.json) return 0;
  bench::JsonWriter w;
  bench::manifest_begin(w, "bench_profile", &args);
  w.field("bench", "profile");
  w.begin_object("workload");
  w.field("kind", "Jacobian wNAF w=4 kP field-kernel mix, " + curve.name);
  w.field("mul", ops.mul);
  w.field("sqr", ops.sqr);
  w.field("inv", ops.inv);
  w.end_object();
  w.begin_object("machines");
  for (Machine* m : {&mont, &sqr, &inv}) {
    const armvm::RunStats s = m->cpu.stats();
    w.begin_object(m->name.c_str());
    w.field("instructions", s.instructions);
    w.field("cycles", s.cycles);
    w.field("energy_uj", s.energy().energy_uj());
    w.field("totals_match_runstats", true);
    w.begin_array("functions");
    for (const auto& f : m->prof.functions()) {
      w.begin_object();
      w.field("name", f.name);
      w.field("calls", f.calls);
      w.field("instructions", f.instructions);
      w.field("self_cycles", f.self_cycles);
      w.field("inclusive_cycles", f.inclusive_cycles);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  bench::manifest_end(w);
  if (!w.write_file(args.json_path)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 args.json_path.c_str());
  } else {
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args;
  if (!args.parse(argc - 1, argv + 1, "BENCH_profile.json") ||
      !args.positionals().empty()) {
    return 2;
  }
  try {
    const workloads::CurveRef& curve = workloads::curve_from_name(args.curve);
    if (!curve.binary_field) return run_prime_profile(args, curve);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  bench::banner(
      "kP field-kernel profile - symbol attribution + RAM heatmap");

  // Field-op mix of one real wTNAF w=4 kP on sect233k1 (same schedule
  // as bench_vm_throughput, one shared definition in workloads).
  const ec::FieldOpCounts& ops = workloads::kp_mix_sect233k1();
  std::printf("kP workload (wTNAF w=4, sect233k1): %llu mul, %llu sqr, "
              "%llu inv\n\n",
              static_cast<unsigned long long>(ops.mul),
              static_cast<unsigned long long>(ops.sqr),
              static_cast<unsigned long long>(ops.inv));

  // Registry names: "mul" is the fixed-register multiplier, "mul-plain"
  // the memory-resident comparator for the heatmap claim only — same
  // operands, same call count as the fixed machine.
  Machine mul("mul");
  mul.name = "mul_fixed";
  Machine sqr("sqr");
  Machine inv("inv");
  Machine plain("mul-plain");
  plain.name = "mul_plain";

  const workloads::KernelOperands& od = workloads::KernelOperands::standard();
  workloads::load_mul_inputs(mul.mem, od.x, od.y);
  workloads::load_mul_inputs(plain.mem, od.x, od.y);
  workloads::load_sqr_table(sqr.mem);
  workloads::load_sqr_input(sqr.mem, od.a);

  for (std::uint64_t i = 0; i < ops.mul; ++i) {
    mul.call();
    plain.call();
  }
  for (std::uint64_t i = 0; i < ops.sqr; ++i) sqr.call();
  for (std::uint64_t i = 0; i < ops.inv; ++i) {
    workloads::load_inv_input(inv.mem, od.a);
    inv.call();
  }

  // --- Self-check: attribution totals equal RunStats exactly. ---------
  bool ok = true;
  for (Machine* m : {&mul, &sqr, &inv, &plain}) ok = check_totals(*m) && ok;
  if (!ok) return 1;

  for (Machine* m : {&mul, &sqr, &inv}) print_functions(*m);

  // --- Heatmap: the fixed-register claim, per product word. ----------
  std::printf("product-word RAM traffic per multiplication "
              "(%llu calls each):\n",
              static_cast<unsigned long long>(ops.mul));
  bench::Table ht({"v word", "fixed loads", "fixed stores", "plain loads",
                   "plain stores", "pinned"});
  std::uint64_t fixed_pinned = 0, plain_pinned = 0;
  for (std::size_t w = 0; w < 16; ++w) {
    const std::size_t idx = asmkernels::kVOff / 4 + w;
    const bool pinned = w >= 3 && w <= 11;
    if (pinned) {
      fixed_pinned += mul.heat.traffic_at(idx);
      plain_pinned += plain.heat.traffic_at(idx);
    }
    ht.add_row({"v[" + std::to_string(w) + "]",
                bench::fmt_u64(mul.heat.loads_at(idx)),
                bench::fmt_u64(mul.heat.stores_at(idx)),
                bench::fmt_u64(plain.heat.loads_at(idx)),
                bench::fmt_u64(plain.heat.stores_at(idx)),
                pinned ? "yes" : ""});
  }
  ht.print();
  std::printf("\npinned words v[3..11] traffic: fixed %llu vs plain %llu "
              "(%.1fx)\n\n",
              static_cast<unsigned long long>(fixed_pinned),
              static_cast<unsigned long long>(plain_pinned),
              static_cast<double>(plain_pinned) /
                  static_cast<double>(fixed_pinned == 0 ? 1 : fixed_pinned));
  if (plain_pinned <= 10 * fixed_pinned) {
    std::fprintf(stderr,
                 "FAIL: fixed-register claim not observed (plain %llu <= "
                 "10x fixed %llu)\n",
                 static_cast<unsigned long long>(plain_pinned),
                 static_cast<unsigned long long>(fixed_pinned));
    return 1;
  }

  const profile::MemHeatmap::Region kMulRegions[] = {
      {"v (product)", asmkernels::kVOff, 16},
      {"x (multiplier)", asmkernels::kXOff, 8},
      {"y (multiplicand)", asmkernels::kYOff, 8},
      {"LUT (16x8)", asmkernels::kLutOff, 16 * 8},
  };
  std::printf("mul_fixed RAM regions:\n");
  bench::Table rt({"region", "loads", "stores", "peak word"});
  for (const auto& rep : mul.heat.summarize(kMulRegions)) {
    rt.add_row({rep.name, bench::fmt_u64(rep.loads),
                bench::fmt_u64(rep.stores),
                bench::fmt_u64(rep.peak_word_traffic)});
  }
  rt.print();

  // --- Exports. ------------------------------------------------------
  const profile::NamedProfile tracks[] = {
      {"mul_fixed", &mul.prof}, {"sqr", &sqr.prof}, {"inv", &inv.prof}};
  if (!profile::write_text_file("profile_trace.json",
                                profile::chrome_trace_json(tracks)) ||
      !profile::write_text_file("profile_flame.txt",
                                profile::collapsed_stack_text(tracks))) {
    std::fprintf(stderr, "warning: could not write trace exports\n");
  } else {
    std::printf("\nwrote profile_trace.json (Perfetto / chrome://tracing) "
                "and profile_flame.txt (flamegraph.pl)\n");
  }

  // JSON is opt-in (the standard --json convention); the smoke run under
  // ctest exercises only the self-checks above.
  if (!args.json) return 0;
  const std::string& json_path = args.json_path;
  bench::JsonWriter w;
  bench::manifest_begin(w, "bench_profile", &args);
  w.field("bench", "profile");
  w.begin_object("workload");
  w.field("kind", "wTNAF w=4 kP field-kernel mix, sect233k1");
  w.field("mul", ops.mul);
  w.field("sqr", ops.sqr);
  w.field("inv", ops.inv);
  w.end_object();
  w.begin_object("machines");
  for (Machine* m : {&mul, &sqr, &inv}) {
    const armvm::RunStats s = m->cpu.stats();
    w.begin_object(m->name.c_str());
    w.field("instructions", s.instructions);
    w.field("cycles", s.cycles);
    w.field("energy_uj", s.energy().energy_uj());
    w.field("totals_match_runstats", true);
    w.begin_array("functions");
    for (const auto& f : m->prof.functions()) {
      w.begin_object();
      w.field("name", f.name);
      w.field("calls", f.calls);
      w.field("instructions", f.instructions);
      w.field("self_cycles", f.self_cycles);
      w.field("inclusive_cycles", f.inclusive_cycles);
      w.field("self_energy_pj", f.self_energy_pj());
      w.field("inclusive_energy_pj", f.inclusive_energy_pj());
      w.end_object();
    }
    w.end_array();
    w.begin_array("call_sites");
    for (const auto& cs : m->prof.call_sites()) {
      w.begin_object();
      w.field("site_pc", static_cast<std::uint64_t>(cs.site_pc));
      w.field("caller", cs.caller);
      w.field("callee", cs.callee);
      w.field("count", cs.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.begin_object("heatmap");
  w.field("pinned_words", "v[3..11]");
  w.field("fixed_pinned_traffic", fixed_pinned);
  w.field("plain_pinned_traffic", plain_pinned);
  w.field("claim_observed", true);
  w.begin_array("v_words");
  for (std::size_t word = 0; word < 16; ++word) {
    const std::size_t idx = asmkernels::kVOff / 4 + word;
    w.begin_object();
    w.field("word", static_cast<std::uint64_t>(word));
    w.field("fixed_loads", mul.heat.loads_at(idx));
    w.field("fixed_stores", mul.heat.stores_at(idx));
    w.field("plain_loads", plain.heat.loads_at(idx));
    w.field("plain_stores", plain.heat.stores_at(idx));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  bench::manifest_end(w);
  if (!w.write_file(json_path)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
