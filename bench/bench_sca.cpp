// Leakage assessment of the reproduced implementation, both detectors:
//
//   1. Constant-trace verification of the K-233 VM kernels under the two
//      criteria (timing = pc/class/cycle stream; addresses = timing +
//      memory-address stream), plus the host-level op-mix checks
//      (Montgomery ladder exact; wTNAF expected-leaky; gf2::traced
//      pricing spread).
//   2. Fixed-vs-random TVLA over the simulated power rig, fanned out
//      through sim::BatchExecutor — bit-identical for any --threads.
//
// The bench is self-checking: it exits nonzero if the paper's
// constant-time story does not reproduce (mul/sqr/reduce/lut must verify
// timing-constant and TVLA-clean, the EEA inversion and wTNAF must be
// flagged). `--json[=PATH]` mirrors the verdicts and digests into
// BENCH_sca.json; CI regenerates it with --threads=4 and diffs the
// digests against the committed serial baseline.
//
// Flags: --json[=PATH] --threads=N --seed=S --iters=N (traces per class)
//        --curve=NAME (sect233k1 default; a secp curve swaps in its
//        prime kernel set: the raw school-book product must verify
//        constant and TVLA-clean, while the Montgomery kernels' REDC
//        carry loop and the EEA inverse must be flagged; the host-level
//        op-mix checks stay sect233k1-scoped and are skipped).
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "manifest.h"
#include "report.h"
#include "sca/campaign.h"
#include "sca/ct_check.h"
#include "telemetry/metrics.h"
#include "telemetry/progress.h"
#include "workloads/spec.h"

namespace {

using namespace eccm0;

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const char* verdict(bool ok, const char* pass = "PASS",
                    const char* fail = "FLAG") {
  return ok ? pass : fail;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args;
  args.seed = 0x5CA;
  args.iters = 40;  // TVLA traces per class
  if (!args.parse(argc - 1, argv + 1, "BENCH_sca.json") ||
      !args.positionals().empty()) {
    return 2;
  }
  const workloads::CurveRef* curve = nullptr;
  try {
    curve = &workloads::curve_from_name(args.curve);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  bool ok = true;
  telemetry::MetricsRegistry metrics;
  telemetry::ProgressMeter progress(
      telemetry::progress_mode_from_name(args.progress), "tvla traces",
      3 * 2 * args.iters);
  bench::JsonWriter json;
  bench::manifest_begin(json, "bench_sca", &args);
  json.field("bench", "sca");
  json.field("curve", curve->name);
  json.field("seed", args.seed);
  json.field("traces_per_class", args.iters);

  // ---- 1. VM-level constant-trace verification -------------------------
  bench::banner("Constant-trace verification (16 random operand draws)");
  bench::Table ct({"kernel", "timing", "addresses", "instrs", "cycles",
                   "digest", "first divergence"});
  json.begin_array("constant_trace");
  struct KernelExpect {
    std::string kernel;
    bool expect_timing;  // the paper's constant-time story
  };
  std::vector<KernelExpect> kKernels;
  if (curve->binary_field) {
    kKernels = {{"mul", true},  {"sqr", true}, {"reduce", true},
                {"lut", true},  {"inv", false}};
  } else {
    // Only the raw school-book product is straight-line. Every
    // Montgomery-reduced kernel carries the operand-dependent REDC
    // carry-propagation loop plus the final conditional subtract, and
    // the EEA inverse branches on operand bits.
    const std::string& t = curve->kernel_tag;
    kKernels = {{t + "-mul", true},   {t + "-mont", false},
                {t + "-sqr", false},  {t + "-redc", false},
                {t + "-inv", false}};
  }
  for (const auto& [kernel, expect_timing] : kKernels) {
    sca::CtConfig cfg;
    cfg.kernel = kernel;
    cfg.seed = args.seed;
    cfg.metrics = &metrics;
    const sca::CtReport rep = sca::check_kernel_constant_trace(cfg);
    std::string where = "-";
    if (rep.first.diverged) {
      where = "#" + std::to_string(rep.first.index) + " " +
              rep.first.symbol_a + " (" + rep.first.reason + ")";
    }
    std::string cycles = std::to_string(rep.ref_cycles);
    if (rep.min_cycles != rep.max_cycles) {
      cycles = std::to_string(rep.min_cycles) + ".." +
               std::to_string(rep.max_cycles);
    }
    ct.add_row({kernel, verdict(rep.constant),
                verdict(rep.constant_addresses), bench::fmt_u64(rep.trace_len),
                cycles, hex64(rep.digest), where});
    if (rep.constant != expect_timing) {
      std::fprintf(stderr, "FAIL: kernel '%s' timing verdict %d, expected %d\n",
                   kernel.c_str(), rep.constant, expect_timing);
      ok = false;
    }
    json.begin_object();
    json.field("kernel", kernel);
    json.field("timing_constant", rep.constant);
    json.field("addr_constant", rep.constant_addresses);
    json.field("instructions", rep.trace_len);
    json.field("min_cycles", rep.min_cycles);
    json.field("max_cycles", rep.max_cycles);
    json.field("digest", hex64(rep.digest));
    json.end_object();
  }
  ct.print();
  json.end_array();
  if (curve->binary_field) {
    std::printf(
        "\nmul and sqr FLAG on 'addresses': their lookup tables are indexed\n"
        "by operand nibbles/bytes. On the cacheless M0+ that stream costs\n"
        "the same cycles and energy regardless, so 'timing' is the paper's\n"
        "constant-time claim; 'addresses' is what a cache-bearing host\n"
        "would additionally need.\n");
  } else {
    std::printf(
        "\nOnly the raw school-book product is straight-line on GF(p):\n"
        "the Montgomery kernels' REDC carry loop and conditional subtract\n"
        "retire an operand-dependent cycle count, and the EEA inverse\n"
        "branches on operand bits — a constant-time port would need a\n"
        "carry-save REDC and a Fermat ladder inverse.\n");
  }

  // ---- 2. Host-level op-mix checks (sect233k1 scope) -------------------
  // The op-mix auditors target the paper's binary-field reproduction
  // (ladder uniformity, wTNAF scalar dependence, gf2::traced pricing);
  // the prime stack's cost accounting is audited by the campaign cost
  // profiles instead.
  if (!curve->binary_field) {
    bench::banner("Host-level operation-mix checks: skipped (sect233k1 scope)");
  } else {
  bench::banner("Host-level operation-mix checks");
  const sca::LadderReport lad = sca::check_ladder_op_mix(8, args.seed);
  std::printf("ladder  per-step mix %lluM %lluS %lluA over %llu steps: %s\n",
              static_cast<unsigned long long>(lad.step_mix.mul),
              static_cast<unsigned long long>(lad.step_mix.sqr),
              static_cast<unsigned long long>(lad.step_mix.add),
              static_cast<unsigned long long>(lad.steps),
              verdict(lad.uniform, "UNIFORM", "NON-UNIFORM"));
  if (!lad.uniform) ok = false;

  const sca::WtnafReport wt = sca::check_wtnaf_op_mix(8, args.seed, 4);
  std::printf("wTNAF   total field ops per kP in [%llu, %llu]: %s\n",
              static_cast<unsigned long long>(wt.min_total),
              static_cast<unsigned long long>(wt.max_total),
              verdict(!wt.uniform, "FLAGGED (scalar-dependent)", "uniform?!"));
  if (wt.uniform) ok = false;

  const sca::TracedMixReport tm = sca::check_traced_op_mix(64, args.seed);
  std::printf(
      "traced  sqr %s, mul spread %.3f%% (live-range trim, tol %.1f%%), "
      "inv spread %.1f%% %s\n",
      verdict(tm.sqr_uniform, "exact", "NON-UNIFORM"), 100.0 * tm.mul_spread,
      100.0 * tm.tolerance, 100.0 * tm.inv_spread,
      verdict(tm.inv_flagged, "FLAGGED", "uniform?!"));
  if (!tm.sqr_uniform || !tm.mul_within_tolerance || !tm.inv_flagged) {
    ok = false;
  }
  json.begin_object("ladder");
  json.field("uniform", lad.uniform);
  json.field("steps", lad.steps);
  json.field("mul", lad.step_mix.mul);
  json.field("sqr", lad.step_mix.sqr);
  json.field("add", lad.step_mix.add);
  json.end_object();
  json.begin_object("wtnaf");
  json.field("uniform", wt.uniform);
  json.field("min_total", wt.min_total);
  json.field("max_total", wt.max_total);
  json.end_object();
  json.begin_object("traced_mix");
  json.field("sqr_uniform", tm.sqr_uniform);
  json.field("mul_spread", tm.mul_spread);
  json.field("inv_spread", tm.inv_spread);
  json.end_object();
  }

  // ---- 3. TVLA fixed-vs-random on the power rig ------------------------
  bench::banner("TVLA fixed-vs-random (Welch t, |t| > 4.5)");
  bench::Table tv({"kernel", "traces", "cycles", "max|t|", "raw>thr",
                   "confirmed", "len-leak", "verdict", "t-digest"});
  json.begin_array("tvla");
  struct TvlaExpect {
    std::string kernel;
    bool expect_leaky;
  };
  std::vector<TvlaExpect> kTargets;
  if (curve->binary_field) {
    kTargets = {{"mul", false}, {"sqr", false}, {"inv", true}};
  } else {
    const std::string& t = curve->kernel_tag;
    kTargets = {{t + "-mul", false}, {t + "-mont", true}, {t + "-inv", true}};
  }
  for (const auto& [kernel, expect_leaky] : kTargets) {
    sca::TvlaCampaignConfig cfg;
    cfg.kernel = kernel;
    cfg.traces_per_class = static_cast<unsigned>(args.iters);
    cfg.seed = args.seed;
    cfg.threads = args.threads;
    cfg.metrics = &metrics;
    cfg.progress = &progress;
    const sca::TvlaCampaignResult res = sca::run_tvla_campaign(cfg);
    const sca::TvlaSummary& s = res.summary;
    tv.add_row({kernel, bench::fmt_u64(res.traces),
                bench::fmt_u64(s.compared_cycles), bench::fmt_f(s.max_abs_t),
                bench::fmt_u64(s.cycles_over_raw),
                bench::fmt_u64(s.cycles_over), s.length_leak ? "yes" : "no",
                verdict(!s.leaky, "CLEAN", "LEAKY"), hex64(res.t_digest)});
    if (s.leaky != expect_leaky) {
      std::fprintf(stderr, "FAIL: kernel '%s' TVLA leaky=%d, expected %d\n",
                   kernel.c_str(), s.leaky, expect_leaky);
      ok = false;
    }
    json.begin_object();
    json.field("kernel", kernel);
    json.field("traces", res.traces);
    json.field("compared_cycles", static_cast<std::uint64_t>(s.compared_cycles));
    json.field("max_abs_t", s.max_abs_t);
    json.field("cycles_over_raw", static_cast<std::uint64_t>(s.cycles_over_raw));
    json.field("cycles_over", static_cast<std::uint64_t>(s.cycles_over));
    json.field("length_leak", s.length_leak);
    json.field("leaky", s.leaky);
    json.field("t_digest", hex64(res.t_digest));
    json.end_object();
  }
  tv.print();
  json.end_array();
  std::printf(
      "\nThe rig's power model is class-based, so TVLA here detects\n"
      "operand-dependent control flow: the straight-line kernels are\n"
      "CLEAN, the EEA inversion's data-dependent loop is LEAKY (plus a\n"
      "trace-length leak). 'confirmed' counts cycles over threshold in\n"
      "both independent halves with the same sign (duplicated test);\n"
      "'raw' excursions alone are small-sample noise. The t-digest is\n"
      "invariant under --threads.\n");

  bench::banner("telemetry");
  metrics.print(stdout);

  json.field("self_check", ok ? "pass" : "fail");
  bench::manifest_end(json, &metrics);
  if (args.json && !json.write_file(args.json_path)) {
    std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "\nself-check FAILED\n");
    return 1;
  }
  return 0;
}
