// Minimal fixed-width table printer shared by the reproduction benches,
// plus the `--json` output convention: every bench main may accept
// `--json[=PATH]` and mirror its regenerated numbers into a
// machine-readable JSON file (default: BENCH_<name>.json in the CWD) so
// perf trajectories can be tracked across commits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace eccm0::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : widths_(headers.size(), 0) {
    add_row(std::move(headers));
  }

  void add_row(std::vector<std::string> cells) {
    if (cells.size() > widths_.size()) widths_.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print() const {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::string line;
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        std::string cell = rows_[r][c];
        cell.resize(widths_[c], ' ');
        line += cell;
        line += "  ";
      }
      while (!line.empty() && line.back() == ' ') line.pop_back();
      std::printf("%s\n", line.c_str());
      if (r == 0) {
        std::string rule;
        for (std::size_t c = 0; c < widths_.size(); ++c) {
          rule += std::string(widths_[c], '-') + "  ";
        }
        while (!rule.empty() && rule.back() == ' ') rule.pop_back();
        std::printf("%s\n", rule.c_str());
      }
    }
  }

  /// Serialize the body rows as a JSON array of objects keyed by the
  /// header row (row cells beyond the header count are dropped).
  std::string to_json() const;

 private:
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

/// Labeled 2-D grid (row label x column label -> cell) for cross-product
/// reports like the fault campaign's coverage matrix. Prints through the
/// Table layout; serializes as an object of row objects, so a consumer
/// can index `matrix[profile][fault_model]` directly.
class Matrix {
 public:
  Matrix(std::string corner, std::vector<std::string> cols)
      : cols_(std::move(cols)) {
    std::vector<std::string> hdr;
    hdr.push_back(std::move(corner));
    for (const std::string& c : cols_) hdr.push_back(c);
    table_ = Table(std::move(hdr));
  }

  /// One row; `cells` must line up with the column labels.
  void add_row(std::string label, std::vector<std::string> cells) {
    row_labels_.push_back(label);
    cells_.push_back(cells);
    std::vector<std::string> row;
    row.push_back(std::move(label));
    for (std::string& c : cells) row.push_back(std::move(c));
    table_.add_row(std::move(row));
  }

  void print() const { table_.print(); }

  std::string to_json() const;

 private:
  std::vector<std::string> cols_;
  std::vector<std::string> row_labels_;
  std::vector<std::vector<std::string>> cells_;
  Table table_{{}};
};

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

inline std::string fmt_f(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline void banner(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

/// Escape a string for embedding in JSON output.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Incremental writer for flat/nested JSON objects — enough structure for
/// bench outputs without a JSON dependency.
class JsonWriter {
 public:
  void begin_object(const char* key = nullptr) { open('{', key); }
  void end_object() { close('}'); }
  void begin_array(const char* key = nullptr) { open('[', key); }
  void end_array() { close(']'); }

  void field(const char* key, const std::string& v) {
    prefix(key);
    out_ += '"' + json_escape(v) + '"';
  }
  void field(const char* key, const char* v) { field(key, std::string(v)); }
  void field(const char* key, double v) {
    prefix(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
  }
  void field(const char* key, std::uint64_t v) {
    prefix(key);
    out_ += std::to_string(v);
  }
  void field(const char* key, int v) {
    field(key, static_cast<std::uint64_t>(v));
  }
  void field(const char* key, bool v) {
    prefix(key);
    out_ += v ? "true" : "false";
  }
  /// Splice pre-serialized JSON (e.g. Table::to_json()) as a value.
  void raw(const char* key, const std::string& json) {
    prefix(key);
    out_ += json;
  }

  const std::string& str() const { return out_; }

  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs(out_.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  void prefix(const char* key) {
    if (need_comma_) out_ += ',';
    if (key != nullptr) out_ += '"' + json_escape(key) + "\":";
    need_comma_ = true;
  }
  void open(char c, const char* key) {
    prefix(key);
    out_ += c;
    need_comma_ = false;
  }
  void close(char c) {
    out_ += c;
    need_comma_ = true;
  }

  std::string out_;
  bool need_comma_ = false;
};

inline std::string Table::to_json() const {
  JsonWriter w;
  w.begin_array();
  for (std::size_t r = 1; r < rows_.size(); ++r) {
    w.begin_object();
    const std::vector<std::string>& hdr = rows_[0];
    for (std::size_t c = 0; c < rows_[r].size() && c < hdr.size(); ++c) {
      w.field(hdr[c].c_str(), rows_[r][c]);
    }
    w.end_object();
  }
  w.end_array();
  return w.str();
}

inline std::string Matrix::to_json() const {
  JsonWriter w;
  w.begin_object();
  for (std::size_t r = 0; r < row_labels_.size(); ++r) {
    w.begin_object(row_labels_[r].c_str());
    for (std::size_t c = 0; c < cells_[r].size() && c < cols_.size(); ++c) {
      w.field(cols_[c].c_str(), cells_[r][c]);
    }
    w.end_object();
  }
  w.end_object();
  return w.str();
}

/// The `--json` flag convention for bench mains: returns the output path
/// if `--json` (use `default_path`) or `--json=PATH` was passed, empty
/// string when JSON output was not requested.
inline std::string json_flag_path(int argc, char** argv,
                                  const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return default_path;
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return {};
}

/// One-pass argv parser for the flag conventions every bench main (and
/// the ecctool subcommands) share:
///
///   --json[=PATH]  opt into the JSON mirror (bare form uses the default
///                  path handed to parse())
///   --threads=N    batch-executor worker count (0 = hardware concurrency)
///   --seed=S       campaign seed, 0x.. accepted
///   --iters=N      workload scale (reps / runs / calls / traces)
///   --engine=E     execution engine: perstep|predecode|threaded
///                  (armvm::decode_mode_from_name validates the value)
///   --mem=M        RAM protection model: raw|parity|secded
///                  (armvm::mem_model_from_name validates the value)
///   --curve=C      workload curve: sect233k1|secp192r1|secp224r1|secp256r1
///                  (workloads::curve_from_name validates the value)
///
/// Field values set before parse() act as the defaults; a flag only
/// overwrites its field when actually present. Benches register their
/// extra flags with add_flag()/add_u64() before parsing; anything else
/// that starts with `--` is rejected (parse() reports it on stderr and
/// returns false), and bare tokens are collected as positionals for the
/// caller to validate.
class Args {
 public:
  unsigned threads = 1;
  std::uint64_t seed = 0;
  std::uint64_t iters = 0;
  /// Engine name for `--engine=` (see armvm/dispatch.h). Kept as the
  /// flag spelling so this header stays armvm-free; harnesses convert
  /// with armvm::decode_mode_from_name, which throws on a bad value.
  std::string engine = "predecode";
  /// Memory model name for `--mem=` (see armvm/memmodel.h). Same
  /// convention as `engine`: kept as the flag spelling, converted by
  /// harnesses with armvm::mem_model_from_name (which throws on a bad
  /// value). Harnesses that sweep all models may set "" as the default
  /// to mean "no restriction".
  std::string mem = "raw";
  /// Curve name for `--curve=` (see workloads/spec.h). Kept as the flag
  /// spelling so this header stays workloads-free; harnesses convert
  /// with workloads::curve_from_name, which throws on an unknown name —
  /// bench mains catch that and exit 2.
  std::string curve = "sect233k1";
  bool json = false;          ///< --json[=PATH] was passed
  std::string json_path;      ///< resolved output path (empty until then)
  /// Live-progress mode for `--progress[=off|plain]` (bare form means
  /// "plain"). Kept as the flag spelling so this header stays
  /// telemetry-free; harnesses convert with
  /// telemetry::progress_mode_from_name, which throws on a bad value.
  /// Progress lines go to stderr, so `--json` output stays clean.
  std::string progress = "off";

  /// Register a bench-specific boolean flag, e.g. "--quick".
  void add_flag(const char* name, bool* dst) { flags_.push_back({name, dst}); }
  /// Register a bench-specific "--name=N" integer flag, e.g. "--runs".
  void add_u64(const char* name, std::uint64_t* dst) {
    u64s_.push_back({name, dst});
  }
  /// Register a bench-specific "--name=STR" string flag, e.g. "--ber".
  void add_str(const char* name, std::string* dst) {
    strs_.push_back({name, dst});
  }

  bool parse(int argc, char** argv, const std::string& default_json_path) {
    for (int i = 0; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--json") == 0) {
        json = true;
        json_path = default_json_path;
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        json = true;
        json_path = a + 7;
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        threads = static_cast<unsigned>(std::strtoul(a + 10, nullptr, 10));
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        seed = std::strtoull(a + 7, nullptr, 0);
      } else if (std::strncmp(a, "--iters=", 8) == 0) {
        iters = std::strtoull(a + 8, nullptr, 10);
      } else if (std::strncmp(a, "--engine=", 9) == 0) {
        engine = a + 9;
      } else if (std::strncmp(a, "--mem=", 6) == 0) {
        mem = a + 6;
      } else if (std::strncmp(a, "--curve=", 8) == 0) {
        curve = a + 8;
      } else if (std::strcmp(a, "--progress") == 0) {
        progress = "plain";
      } else if (std::strncmp(a, "--progress=", 11) == 0) {
        progress = a + 11;
      } else if (a[0] == '-') {
        if (!match_extra(a)) {
          std::fprintf(stderr, "unknown flag '%s'%s\n", a,
                       usage_suffix().c_str());
          return false;
        }
      } else {
        positionals_.push_back(a);
      }
    }
    return true;
  }

  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  bool match_extra(const char* a) {
    for (const auto& [name, dst] : flags_) {
      if (std::strcmp(a, name) == 0) {
        *dst = true;
        return true;
      }
    }
    for (const auto& [name, dst] : u64s_) {
      const std::size_t n = std::strlen(name);
      if (std::strncmp(a, name, n) == 0 && a[n] == '=') {
        *dst = std::strtoull(a + n + 1, nullptr, 0);
        return true;
      }
    }
    for (const auto& [name, dst] : strs_) {
      const std::size_t n = std::strlen(name);
      if (std::strncmp(a, name, n) == 0 && a[n] == '=') {
        *dst = a + n + 1;
        return true;
      }
    }
    return false;
  }

  /// The rejection message lists the tool's registered flags alongside
  /// the standard set, so `unknown flag` output is self-documenting for
  /// every bench/subcommand without each main owning a usage string.
  std::string usage_suffix() const {
    std::string s =
        " (standard flags: --json[=PATH] --threads=N --seed=S --iters=N"
        " --engine=perstep|predecode|threaded --mem=raw|parity|secded"
        " --curve=NAME --progress[=off|plain]";
    std::string extra;
    for (const auto& [name, dst] : flags_) {
      extra += std::string(" ") + name;
    }
    for (const auto& [name, dst] : u64s_) {
      extra += std::string(" ") + name + "=N";
    }
    for (const auto& [name, dst] : strs_) {
      extra += std::string(" ") + name + "=STR";
    }
    if (!extra.empty()) s += "; tool flags:" + extra;
    s += ")";
    return s;
  }

  std::vector<std::pair<const char*, bool*>> flags_;
  std::vector<std::pair<const char*, std::uint64_t*>> u64s_;
  std::vector<std::pair<const char*, std::string*>> strs_;
  std::vector<std::string> positionals_;
};

}  // namespace eccm0::bench
