// Minimal fixed-width table printer shared by the reproduction benches.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace eccm0::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : widths_(headers.size(), 0) {
    add_row(std::move(headers));
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print() const {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::string line;
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        std::string cell = rows_[r][c];
        cell.resize(widths_[c], ' ');
        line += cell;
        line += "  ";
      }
      std::printf("%s\n", line.c_str());
      if (r == 0) {
        std::string rule;
        for (std::size_t c = 0; c < widths_.size(); ++c) {
          rule += std::string(widths_[c], '-') + "  ";
        }
        std::printf("%s\n", rule.c_str());
      }
    }
  }

 private:
  std::vector<std::string> widths_helper_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

inline std::string fmt_f(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline void banner(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

}  // namespace eccm0::bench
