// Reproduces paper Table 7: total accumulated cycles per operation class
// for a random-point multiplication (kP, w = 4) and a fixed-point
// multiplication (kG, w = 6) on sect233k1, averaged over several scalars.
#include <cstdio>

#include "common/rng.h"
#include "ec/costing.h"
#include "relic_like/costs.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;
using ec::PointMulCost;
using mpint::UInt;

int main(int argc, char** argv) {
  bench::banner(
      "Table 7 - accumulated cycles per operation class (kP w=4, kG w=6)");

  const auto& curve = ec::BinaryCurve::sect233k1();
  const auto g = ec::AffinePoint::make(curve.gx, curve.gy);
  const auto& prices = relic_like::proposed_asm_costs();

  constexpr int kReps = 5;
  Rng rng(0x7AB1E7);
  PointMulCost kp{}, kg{};
  auto acc = [](PointMulCost& into, const PointMulCost& c) {
    into.tnaf_repr += c.tnaf_repr;
    into.tnaf_precomp += c.tnaf_precomp;
    into.multiply += c.multiply;
    into.multiply_precomp += c.multiply_precomp;
    into.square += c.square;
    into.inversion += c.inversion;
    into.support += c.support;
  };
  for (int i = 0; i < kReps; ++i) {
    const UInt k = UInt::random_below(rng, curve.order);
    acc(kp, ec::cost_point_mul(curve, g, k, 4, false, prices).cost);
    acc(kg, ec::cost_point_mul(curve, g, k, 6, true, prices).cost);
  }
  auto avg = [](std::uint64_t v) { return v / kReps; };

  struct Row {
    const char* name;
    std::uint64_t kp, kg;
    std::uint64_t paper_kp, paper_kg;
  };
  const Row rows[] = {
      {"TNAF Representation", avg(kp.tnaf_repr), avg(kg.tnaf_repr), 178135,
       185926},
      {"TNAF Precomputation", avg(kp.tnaf_precomp), avg(kg.tnaf_precomp),
       398387, 0},
      {"Multiply", avg(kp.multiply), avg(kg.multiply), 1108890, 821178},
      {"Multiply Precomputation", avg(kp.multiply_precomp),
       avg(kg.multiply_precomp), 249750, 184950},
      {"Square", avg(kp.square), avg(kg.square), 362379, 342294},
      {"Inversion", avg(kp.inversion), avg(kg.inversion), 139936, 139656},
      {"Support functions", avg(kp.support), avg(kg.support), 377350,
       376392},
  };

  bench::Table t({"Operation", "kP", "kP paper", "kG", "kG paper"});
  std::uint64_t tot_kp = 0, tot_kg = 0;
  for (const Row& r : rows) {
    t.add_row({r.name, bench::fmt_u64(r.kp), bench::fmt_u64(r.paper_kp),
               bench::fmt_u64(r.kg), bench::fmt_u64(r.paper_kg)});
    tot_kp += r.kp;
    tot_kg += r.kg;
  }
  t.add_row({"Total", bench::fmt_u64(tot_kp), "2814827",
             bench::fmt_u64(tot_kg), "1864470"});
  t.print();

  std::printf(
      "\nShape checks: Multiply dominates both columns; kG has zero\n"
      "TNAF Precomputation (offline table) and a smaller Multiply row\n"
      "(w = 6 halves the addition density); Square and Inversion are\n"
      "nearly identical across kP/kG, as in the paper.\n");

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_table7.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_table7");
    w.field("bench", "table7");
    w.raw("rows", t.to_json());
    w.field("total_kp", tot_kp);
    w.field("total_kg", tot_kg);
    bench::manifest_end(w);
    w.write_file(json_path);
  }
  return 0;
}
