// Memory-reliability campaign: SRAM bit errors vs codeword protection.
//
// Sweeps raw storage bit-error rates against the three armvm memory
// models (raw SRAM, parity-per-word, SECDED(39,32)) with the VM field
// multiplication spliced into a live sect233k1 wTNAF kP, classifying
// every run as correct / corrected / detected / crashed / silent-wrong
// under each PR-2 software countermeasure profile. Headlines: the BER
// at which each scheme's silent-wrong rate leaves 0%, and the
// cycle/energy overhead each codeword scheme charges on a clean kernel
// run (wait-states priced at the Table-3 kMemWait rate).
//
// The JSON mirror is fully deterministic — classification counts and
// simulated costs only, no wall-clock numbers — so CI can require the
// parallel re-run to be byte-identical to the committed baseline.
//
// Flags (bench::Args): --runs=N (default 200 per cell), --quick (40),
//        --seed=S, --curve=NAME (sect233k1 default; secp curves splice
//        the Montgomery-mul kernel into a Jacobian wNAF kP), --threads=N
//        (0 = hardware concurrency; tallies identical for any value),
//        --engine=E, --scrub=N (SECDED scrub period in accesses,
//        default 1024, 0 = off),
//        --json[=PATH] (default BENCH_memfault.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "armvm/dispatch.h"
#include "faultsim/campaign.h"
#include "manifest.h"
#include "report.h"
#include "telemetry/metrics.h"
#include "telemetry/progress.h"
#include "workloads/spec.h"

namespace {

using namespace eccm0;

std::string pct(double rate) { return bench::fmt_f(rate * 100.0, 1) + "%"; }

std::string fmt_ber(double ber) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0e", ber);
  return buf;
}

/// First swept BER at which `profile` leaks silent-wrong results under
/// this model, or "none-in-sweep".
std::string first_silent_ber(const faultsim::MemModelReport& rep,
                             unsigned profile) {
  for (const faultsim::MemCell& cell : rep.cells) {
    if (cell.per_profile[profile].silent > 0) return fmt_ber(cell.ber);
  }
  return "none-in-sweep";
}

}  // namespace

int main(int argc, char** argv) {
  faultsim::MemCampaignConfig cfg;
  cfg.scrub_interval = 1024;
  bool quick = false;
  bench::Args args;
  args.seed = cfg.seed;
  args.threads = cfg.threads;
  args.add_flag("--quick", &quick);
  args.add_u64("--runs", &cfg.runs_per_cell);
  args.add_u64("--scrub", &cfg.scrub_interval);
  if (!args.parse(argc - 1, argv + 1, "BENCH_memfault.json") ||
      !args.positionals().empty()) {
    return 2;
  }
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  cfg.engine = armvm::decode_mode_from_name(args.engine);
  try {
    (void)workloads::curve_from_name(args.curve);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  cfg.curve = args.curve;
  if (quick) cfg.runs_per_cell = 40;
  const std::string json_path = args.json_path;

  telemetry::MetricsRegistry metrics;
  telemetry::ProgressMeter progress(
      telemetry::progress_mode_from_name(args.progress), "mem campaign",
      cfg.runs_per_cell * cfg.bers.size() * cfg.models.size());
  cfg.metrics = &metrics;
  cfg.progress = &progress;

  bench::banner("Memory-fault campaign: SRAM bit errors vs codeword models");
  std::printf("seed 0x%llx, curve %s, %llu runs per (model x BER) cell, "
              "%u thread(s), engine %s, SECDED scrub every %llu accesses\n\n",
              static_cast<unsigned long long>(cfg.seed), cfg.curve.c_str(),
              static_cast<unsigned long long>(cfg.runs_per_cell), cfg.threads,
              args.engine.c_str(),
              static_cast<unsigned long long>(cfg.scrub_interval));

  const auto t0 = std::chrono::steady_clock::now();
  const faultsim::MemCampaignResult res = faultsim::run_mem_campaign(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  const auto& profiles = faultsim::protection_profiles();

  // Silent-corruption matrices: model x BER, weakest and strongest
  // software profile. The strongest row is the paper-level claim: what
  // leaks through scalarmul_protected when the SRAM itself goes bad.
  std::vector<std::string> ber_names;
  for (double b : cfg.bers) ber_names.push_back(fmt_ber(b));
  for (unsigned p : {0u, faultsim::kNumProfiles - 1}) {
    bench::banner(("silent corruption, software profile '" +
                   std::string(profiles[p].name) + "'")
                      .c_str());
    bench::Matrix m("model \\ BER", ber_names);
    for (const auto& rep : res.models) {
      std::vector<std::string> cells;
      for (const auto& cell : rep.cells) {
        cells.push_back(pct(cell.per_profile[p].silent_rate()));
      }
      m.add_row(armvm::mem_model_name(rep.config.kind), std::move(cells));
    }
    m.print();
  }

  // Outcome detail per model.
  for (const auto& rep : res.models) {
    bench::banner(armvm::mem_model_name(rep.config.kind));
    bench::Table t({"BER", "profile", "correct", "corrected", "detected",
                    "crashed", "silent", "hw-fix", "scrub-fix"});
    for (const auto& cell : rep.cells) {
      for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
        const auto& o = cell.per_profile[p];
        t.add_row({fmt_ber(cell.ber), profiles[p].name,
                   bench::fmt_u64(o.correct), bench::fmt_u64(o.corrected),
                   bench::fmt_u64(o.detected), bench::fmt_u64(o.crashed),
                   bench::fmt_u64(o.silent), bench::fmt_u64(cell.hw_corrections),
                   bench::fmt_u64(cell.scrub_corrections)});
      }
    }
    t.print();
  }

  // What each codeword scheme costs when nothing goes wrong: one clean
  // VM mul kernel call, wait-states included (Table-3 kMemWait pricing).
  bench::banner("clean-run codeword overhead (one VM mul kernel call)");
  bench::Table cost({"model", "wait-states", "cycles", "cycle overhead",
                     "energy pJ", "energy overhead"});
  const std::uint64_t base_cycles = res.models.front().clean_cycles;
  const double base_pj = res.models.front().clean_energy_pj;
  for (const auto& rep : res.models) {
    const double cyc_over =
        100.0 * (static_cast<double>(rep.clean_cycles) /
                     static_cast<double>(base_cycles) -
                 1.0);
    const double pj_over = 100.0 * (rep.clean_energy_pj / base_pj - 1.0);
    cost.add_row({armvm::mem_model_name(rep.config.kind),
                  std::to_string(rep.config.wait_states),
                  bench::fmt_u64(rep.clean_cycles),
                  bench::fmt_f(cyc_over, 2) + "%",
                  bench::fmt_f(rep.clean_energy_pj, 0),
                  bench::fmt_f(pj_over, 2) + "%"});
  }
  cost.print();

  // Headline: where does each scheme start leaking silent corruption?
  bench::banner("silent-wrong onset (first BER in sweep with silent > 0)");
  bench::Table onset({"model", "unprotected kP", "scalarmul_protected"});
  for (const auto& rep : res.models) {
    onset.add_row({armvm::mem_model_name(rep.config.kind),
                   first_silent_ber(rep, 0),
                   first_silent_ber(rep, faultsim::kNumProfiles - 1)});
  }
  onset.print();
  std::printf("\ncampaign wall time: %.2f s (%u thread(s))\n", wall_seconds,
              cfg.threads);

  bench::banner("telemetry");
  metrics.print(stdout);

  if (!json_path.empty()) {
    // Deterministic payload only: byte-identical for any --threads, so
    // the CI gate can strict-compare against the committed baseline.
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_memfault", &args);
    w.field("bench", "memfault");
    w.field("curve", cfg.curve);
    w.field("seed", cfg.seed);
    w.field("runs_per_cell", cfg.runs_per_cell);
    w.field("engine", args.engine);
    w.field("scrub_interval", cfg.scrub_interval);
    w.begin_array("bers");
    for (double b : cfg.bers) {
      w.begin_object();
      w.field("ber", b);
      w.end_object();
    }
    w.end_array();
    w.begin_array("overhead");
    for (const auto& rep : res.models) {
      w.begin_object();
      w.field("model", armvm::mem_model_name(rep.config.kind));
      w.field("wait_states", static_cast<std::uint64_t>(rep.config.wait_states));
      w.field("storage_bits_per_word",
              static_cast<std::uint64_t>(
                  rep.config.kind == armvm::MemModelKind::kRaw ? 32
                  : rep.config.kind == armvm::MemModelKind::kParity ? 33
                                                                    : 39));
      w.field("clean_cycles", rep.clean_cycles);
      w.field("clean_energy_pj", rep.clean_energy_pj);
      w.end_object();
    }
    w.end_array();
    w.begin_array("models");
    for (const auto& rep : res.models) {
      w.begin_object();
      w.field("model", armvm::mem_model_name(rep.config.kind));
      w.begin_array("cells");
      for (const auto& cell : rep.cells) {
        w.begin_object();
        w.field("ber", cell.ber);
        w.field("flipped_bits", cell.flipped_bits);
        w.field("hw_corrections", cell.hw_corrections);
        w.field("scrub_corrections", cell.scrub_corrections);
        w.begin_array("profiles");
        for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
          const auto& o = cell.per_profile[p];
          w.begin_object();
          w.field("profile", profiles[p].name);
          w.field("correct", o.correct);
          w.field("corrected", o.corrected);
          w.field("detected", o.detected);
          w.field("crashed", o.crashed);
          w.field("silent", o.silent);
          w.field("silent_rate", o.silent_rate());
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.begin_array("headline");
    for (const auto& rep : res.models) {
      w.begin_object();
      w.field("model", armvm::mem_model_name(rep.config.kind));
      w.field("first_silent_ber_unprotected", first_silent_ber(rep, 0));
      w.field("first_silent_ber_protected",
              first_silent_ber(rep, faultsim::kNumProfiles - 1));
      w.end_object();
    }
    w.end_array();
    bench::manifest_end(w, &metrics);
    if (w.write_file(json_path)) {
      std::printf("\nJSON written to %s\n", json_path.c_str());
    }
  }

  // The bench doubles as an assertion of the acceptance criterion:
  // there must be a swept BER at which raw RAM leaks silent-wrong
  // results while SECDED holds silent-wrong at exactly 0 — the
  // codeword scheme has to buy measurable integrity, not just cycles.
  const faultsim::MemModelReport* raw = nullptr;
  const faultsim::MemModelReport* secded = nullptr;
  for (const auto& rep : res.models) {
    if (rep.config.kind == armvm::MemModelKind::kRaw) raw = &rep;
    if (rep.config.kind == armvm::MemModelKind::kSecded) secded = &rep;
  }
  if (raw != nullptr && secded != nullptr) {
    bool separated = false;
    for (std::size_t c = 0; c < raw->cells.size(); ++c) {
      for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
        if (raw->cells[c].per_profile[p].silent > 0 &&
            secded->cells[c].per_profile[p].silent == 0) {
          separated = true;
        }
      }
    }
    if (!separated) {
      std::fprintf(stderr,
                   "FAIL: no swept BER separates raw (silent > 0) from "
                   "SECDED (silent == 0)\n");
      return 1;
    }
    if (secded->clean_cycles <= raw->clean_cycles) {
      std::fprintf(stderr,
                   "FAIL: SECDED charged no wait-state overhead over raw\n");
      return 1;
    }
  }
  return 0;
}
