// Reproduces paper Figure 1: the data layout of the LD-with-fixed-
// registers multiplication for n = 8 — which words of the partial-product
// vector C live in registers vs memory, how often the inner loop touches
// each word, and the per-pass structure (8 LUT lookups + add, then the
// 4-bit shift).
#include <cstdio>

#include "gf2/traced.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;

int main(int argc, char** argv) {
  constexpr std::size_t n = 8;
  const std::size_t w0 = gf2::traced::fixed_window_base(n);

  bench::banner(
      "Figure 1 - LD with fixed registers, n = 8: residency and access "
      "map of the partial-product vector C");

  // Inner-loop touch counts: word s is hit once per pass for every (k, l)
  // pair with k + l = s; multiplicity 8 - |s - 7|, times 8 passes.
  std::printf("word      ");
  for (std::size_t i = 0; i < 2 * n; ++i) std::printf("C%-4zu", i);
  std::printf("\nresidency ");
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const bool reg = i >= w0 && i <= w0 + n;
    std::printf("%-5s", reg ? "REG" : "mem");
  }
  std::printf("\ntouches   ");
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const int mult =
        static_cast<int>(n) - std::abs(static_cast<int>(i) - 7);
    std::printf("%-5d", 8 * std::max(0, mult));
  }
  std::printf("\n\n");

  std::printf(
      "The n+1 = 9 most frequently used words C[%zu..%zu] are pinned in\n"
      "registers (r4-r7 hold C5..C8, r8-r12 hold C3,C4,C9,C10,C11 in the\n"
      "Thumb kernel); C[0..%zu] and C[%zu..15] stay in RAM.\n\n",
      w0, w0 + n, w0 - 1, w0 + n + 1);

  std::printf("Per outer pass (j = 7..0):\n");
  std::printf("  y nibble -> LUT index u; 8 words of T[u] are read and\n");
  std::printf("  XOR-accumulated into C at offset k (k = 0..7);\n");
  std::printf("  then C <<= 4 (skipped on the final pass).\n\n");

  // Demonstrate on live data that out-of-window accesses are the minority.
  const std::size_t in_window = []() {
    std::size_t cnt = 0;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t l = 0; l < n; ++l) {
        const std::size_t idx = k + l;
        if (idx >= gf2::traced::fixed_window_base(n) &&
            idx <= gf2::traced::fixed_window_base(n) + n) {
          ++cnt;
        }
      }
    }
    return cnt;
  }();
  std::printf(
      "Inner-loop accumulations hitting registers: %zu/64 per pass "
      "(%.0f%%)\n",
      in_window, 100.0 * static_cast<double>(in_window) / 64.0);

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_fig1.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_fig1");
    w.field("bench", "fig1");
    w.field("n", static_cast<std::uint64_t>(n));
    w.field("window_base", static_cast<std::uint64_t>(w0));
    w.begin_array("words");
    for (std::size_t i = 0; i < 2 * n; ++i) {
      const bool reg = i >= w0 && i <= w0 + n;
      const int mult =
          static_cast<int>(n) - std::abs(static_cast<int>(i) - 7);
      w.begin_object();
      w.field("word", static_cast<std::uint64_t>(i));
      w.field("residency", reg ? "REG" : "mem");
      w.field("touches", static_cast<std::uint64_t>(8 * std::max(0, mult)));
      w.end_object();
    }
    w.end_array();
    w.field("in_window_per_pass", static_cast<std::uint64_t>(in_window));
    w.field("accumulations_per_pass", static_cast<std::uint64_t>(64));
    bench::manifest_end(w);
    w.write_file(json_path);
  }
  return 0;
}
