// Reproduces the paper's section 3.1 curve-selection study: estimated
// cycle count, power and energy of a point multiplication for binary
// Koblitz vs prime candidates, leading to the paper's conclusions (1)
// and (2).
//
// The estimates are then validated in silicon (well, in the VM): for
// every curve the workload layer can drive end-to-end — sect233k1 plus
// the three prime candidates secp192r1/224r1/256r1 — the bench replays
// the real kP field-op mix through workloads::WorkloadSpec on the
// cycle-accurate VM and puts measured cycles and Table-3 energy next
// to the model's prediction. Conclusion (1) must hold in the measured
// numbers too, not just the model; the bench exits nonzero otherwise.
#include <cstdio>
#include <map>
#include <string>

#include "armvm/cpu.h"
#include "model/curve_selection.h"
#include "manifest.h"
#include "report.h"
#include "workloads/spec.h"

using namespace eccm0;

int main(int argc, char** argv) {
  bench::banner(
      "Section 3.1 - matching a curve to the architecture (model)");

  bench::Table t({"Candidate", "Type", "Security", "FieldMul [cy]",
                  "PointMul [cy]", "Power [uW]", "Time [ms]",
                  "Energy [uJ]"});
  const auto candidates = model::estimate_candidates();
  for (const auto& e : candidates) {
    t.add_row({e.name, e.binary ? "binary Koblitz" : "prime",
               std::to_string(e.security_bits) + "b",
               bench::fmt_u64(e.field_mul_cycles),
               bench::fmt_u64(e.point_mul_cycles),
               bench::fmt_f(e.power_uw, 1), bench::fmt_f(e.time_ms, 2),
               bench::fmt_f(e.energy_uj, 2)});
  }
  t.print();

  const auto conclusions = model::evaluate(candidates);
  std::printf(
      "\nConclusion (1): binary Koblitz faster at matched security: %s "
      "(paper: yes)\n",
      conclusions.koblitz_faster_at_matched_security ? "YES" : "NO");
  std::printf(
      "Conclusion (2): binary curves draw less power (XOR/shift mix vs "
      "MUL/ADD): %s (paper: yes)\n",
      conclusions.binary_lower_power ? "YES" : "NO");

  // ---- Model vs measured VM replay ------------------------------------
  // Every candidate the workload layer covers gets its kP mix replayed
  // on the VM (predecode engine); the model's point-mul estimate sits
  // next to the measured cycles. The measured binary/prime ordering is
  // the executable form of conclusion (1).
  bench::banner("model vs measured (workloads::replay, predecode engine)");
  bench::Table mt({"Curve", "Model [cy]", "Measured [cy]", "Model/Meas",
                   "Measured [uJ]"});
  std::map<std::string, const model::CandidateEstimate*> by_name;
  for (const auto& e : candidates) by_name[e.name] = &e;
  std::map<std::string, std::pair<std::uint64_t, double>> measured;
  for (const std::string& cname : workloads::workload_curve_names()) {
    const workloads::WorkloadSpec spec = workloads::kp_workload(cname);
    const workloads::ReplayResult r =
        workloads::replay(spec, armvm::Cpu::DecodeMode::kPredecode);
    const double uj = r.stats.energy().energy_uj();
    measured[cname] = {r.stats.cycles, uj};
    const auto it = by_name.find(cname);
    const std::uint64_t est = it != by_name.end()
                                  ? it->second->point_mul_cycles
                                  : 0;
    mt.add_row({cname, est ? bench::fmt_u64(est) : "-",
                bench::fmt_u64(r.stats.cycles),
                est ? bench::fmt_f(static_cast<double>(est) /
                                       static_cast<double>(r.stats.cycles),
                                   2)
                    : "-",
                bench::fmt_f(uj, 2)});
  }
  mt.print();
  // sect233k1 (115b) vs secp192r1 (96b): the binary curve must beat
  // even the weaker prime candidate on measured cycles AND energy for
  // conclusion (1) to survive contact with the VM.
  const bool measured_ok =
      measured["sect233k1"].first < measured["secp192r1"].first &&
      measured["sect233k1"].second < measured["secp192r1"].second;
  std::printf(
      "\nMeasured: sect233k1 beats secp192r1 on cycles and energy: %s\n"
      "(model estimates and VM replay agree on the paper's ordering;\n"
      "full per-engine numbers in bench_prime_vs_binary)\n",
      measured_ok ? "YES" : "NO");

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_curve_selection.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_curve_selection");
    w.field("bench", "curve_selection");
    w.raw("rows", t.to_json());
    w.field("koblitz_faster_at_matched_security",
            conclusions.koblitz_faster_at_matched_security);
    w.field("binary_lower_power", conclusions.binary_lower_power);
    w.begin_array("measured_kp");
    for (const auto& [cname, m] : measured) {
      w.begin_object();
      w.field("curve", cname);
      const auto it = by_name.find(cname);
      if (it != by_name.end()) {
        w.field("model_cycles", it->second->point_mul_cycles);
      }
      w.field("measured_cycles", m.first);
      w.field("measured_energy_uj", m.second);
      w.end_object();
    }
    w.end_array();
    w.field("measured_binary_beats_prime", measured_ok);
    bench::manifest_end(w);
    w.write_file(json_path);
  }
  if (!conclusions.koblitz_faster_at_matched_security ||
      !conclusions.binary_lower_power || !measured_ok) {
    std::fprintf(stderr, "\nself-check FAILED\n");
    return 1;
  }
  return 0;
}
