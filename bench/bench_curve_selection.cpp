// Reproduces the paper's section 3.1 curve-selection study: estimated
// cycle count, power and energy of a point multiplication for binary
// Koblitz vs prime candidates, leading to the paper's conclusions (1) and
// (2).
#include <cstdio>

#include "model/curve_selection.h"
#include "manifest.h"
#include "report.h"

using namespace eccm0;

int main(int argc, char** argv) {
  bench::banner(
      "Section 3.1 - matching a curve to the architecture (model)");

  bench::Table t({"Candidate", "Type", "Security", "FieldMul [cy]",
                  "PointMul [cy]", "Power [uW]", "Time [ms]",
                  "Energy [uJ]"});
  const auto candidates = model::estimate_candidates();
  for (const auto& e : candidates) {
    t.add_row({e.name, e.binary ? "binary Koblitz" : "prime",
               std::to_string(e.security_bits) + "b",
               bench::fmt_u64(e.field_mul_cycles),
               bench::fmt_u64(e.point_mul_cycles),
               bench::fmt_f(e.power_uw, 1), bench::fmt_f(e.time_ms, 2),
               bench::fmt_f(e.energy_uj, 2)});
  }
  t.print();

  const auto conclusions = model::evaluate(candidates);
  std::printf(
      "\nConclusion (1): binary Koblitz faster at matched security: %s "
      "(paper: yes)\n",
      conclusions.koblitz_faster_at_matched_security ? "YES" : "NO");
  std::printf(
      "Conclusion (2): binary curves draw less power (XOR/shift mix vs "
      "MUL/ADD): %s (paper: yes)\n",
      conclusions.binary_lower_power ? "YES" : "NO");

  const std::string json_path =
      bench::json_flag_path(argc, argv, "BENCH_curve_selection.json");
  if (!json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "bench_curve_selection");
    w.field("bench", "curve_selection");
    w.raw("rows", t.to_json());
    w.field("koblitz_faster_at_matched_security",
            conclusions.koblitz_faster_at_matched_security);
    w.field("binary_lower_power", conclusions.binary_lower_power);
    bench::manifest_end(w);
    w.write_file(json_path);
  }
  return 0;
}
