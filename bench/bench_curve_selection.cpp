// Reproduces the paper's section 3.1 curve-selection study: estimated
// cycle count, power and energy of a point multiplication for binary
// Koblitz vs prime candidates, leading to the paper's conclusions (1) and
// (2).
#include <cstdio>

#include "model/curve_selection.h"
#include "report.h"

using namespace eccm0;

int main() {
  bench::banner(
      "Section 3.1 - matching a curve to the architecture (model)");

  bench::Table t({"Candidate", "Type", "Security", "FieldMul [cy]",
                  "PointMul [cy]", "Power [uW]", "Time [ms]",
                  "Energy [uJ]"});
  const auto candidates = model::estimate_candidates();
  for (const auto& e : candidates) {
    t.add_row({e.name, e.binary ? "binary Koblitz" : "prime",
               std::to_string(e.security_bits) + "b",
               bench::fmt_u64(e.field_mul_cycles),
               bench::fmt_u64(e.point_mul_cycles),
               bench::fmt_f(e.power_uw, 1), bench::fmt_f(e.time_ms, 2),
               bench::fmt_f(e.energy_uj, 2)});
  }
  t.print();

  const auto conclusions = model::evaluate(candidates);
  std::printf(
      "\nConclusion (1): binary Koblitz faster at matched security: %s "
      "(paper: yes)\n",
      conclusions.koblitz_faster_at_matched_security ? "YES" : "NO");
  std::printf(
      "Conclusion (2): binary curves draw less power (XOR/shift mix vs "
      "MUL/ADD): %s (paper: yes)\n",
      conclusions.binary_lower_power ? "YES" : "NO");
  return 0;
}
