// Section 3.1 model tests: the candidate estimates must reach the
// paper's conclusions and be internally consistent.
#include "model/curve_selection.h"

#include <gtest/gtest.h>

namespace eccm0::model {
namespace {

TEST(CurveSelection, ProducesAllSixCandidates) {
  const auto c = estimate_candidates();
  ASSERT_EQ(c.size(), 6u);
  for (const auto& e : c) {
    EXPECT_GT(e.field_mul_cycles, 0u) << e.name;
    EXPECT_GT(e.point_mul_cycles, e.field_mul_cycles) << e.name;
    EXPECT_GT(e.pj_per_cycle, 10.0) << e.name;
    EXPECT_LT(e.pj_per_cycle, 13.45) << e.name;
    EXPECT_GT(e.energy_uj, 0.0) << e.name;
  }
}

TEST(CurveSelection, CostGrowsWithFieldSize) {
  const auto c = estimate_candidates();
  EXPECT_LT(c[0].point_mul_cycles, c[1].point_mul_cycles);  // K163 < K233
  EXPECT_LT(c[1].point_mul_cycles, c[2].point_mul_cycles);  // K233 < K283
  EXPECT_LT(c[3].point_mul_cycles, c[4].point_mul_cycles);  // P192 < P224
  EXPECT_LT(c[4].point_mul_cycles, c[5].point_mul_cycles);
}

TEST(CurveSelection, PaperConclusionsHold) {
  const auto conclusions = evaluate(estimate_candidates());
  EXPECT_TRUE(conclusions.koblitz_faster_at_matched_security);
  EXPECT_TRUE(conclusions.binary_lower_power);
}

TEST(CurveSelection, K233EstimateNearMeasuredImplementation) {
  // The model should predict the same order of magnitude the paper (and
  // our costed implementation) later measures: kP on K-233 is a few
  // million cycles.
  const auto k233 = estimate_koblitz("sect233k1", 233);
  EXPECT_GT(k233.point_mul_cycles, 1'000'000u);
  EXPECT_LT(k233.point_mul_cycles, 6'000'000u);
  // Average power in the 500-620 uW band at 48 MHz.
  EXPECT_GT(k233.power_uw, 500.0);
  EXPECT_LT(k233.power_uw, 620.0);
}

TEST(CurveSelection, BinaryMixBeatsPrimeMixPerCycle) {
  const auto k = estimate_koblitz("sect233k1", 233);
  const auto p = estimate_prime("secp224r1", 224);
  EXPECT_LT(k.pj_per_cycle, p.pj_per_cycle);
}

}  // namespace
}  // namespace eccm0::model
