#include "mpint/barrett.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eccm0::mpint {
namespace {

TEST(Barrett, MatchesDivmodForRandomProducts) {
  Rng rng(1);
  const UInt n = UInt::from_hex(
      "8000000000000000000000000000069D5BB915BCD46EFB1AD5F173ABDF");
  const Barrett ctx(n);
  for (int i = 0; i < 100; ++i) {
    const UInt a = UInt::random_below(rng, n);
    const UInt b = UInt::random_below(rng, n);
    EXPECT_EQ(ctx.mul(a, b), mulmod(a, b, n));
    EXPECT_EQ(ctx.reduce(a * b), (a * b) % n);
  }
}

TEST(Barrett, WorksForEvenModulus) {
  // Montgomery cannot do this; Barrett can.
  Rng rng(2);
  const UInt m = UInt::from_hex("1000000000000000000000000000000000000002");
  const Barrett ctx(m);
  for (int i = 0; i < 30; ++i) {
    const UInt a = UInt::random_below(rng, m);
    const UInt b = UInt::random_below(rng, m);
    EXPECT_EQ(ctx.mul(a, b), mulmod(a, b, m));
  }
}

TEST(Barrett, EdgeValues) {
  const UInt m{1000003};
  const Barrett ctx(m);
  EXPECT_EQ(ctx.reduce(UInt{0}), UInt{0});
  EXPECT_EQ(ctx.reduce(UInt{1000002}), UInt{1000002});
  EXPECT_EQ(ctx.reduce(UInt{1000003}), UInt{0});
  EXPECT_EQ(ctx.reduce(UInt{1000004}), UInt{1});
  EXPECT_EQ(ctx.reduce(m * m - UInt{1}), (m * m - UInt{1}) % m);
}

TEST(Barrett, PowMatchesPowmod) {
  Rng rng(3);
  const UInt p{1000003};
  const Barrett ctx(p);
  const UInt base = UInt::random_below(rng, p);
  EXPECT_EQ(ctx.pow(base, p - UInt{1}), powmod(base, p - UInt{1}, p));
}

TEST(Barrett, RejectsTrivialModulus) {
  EXPECT_THROW(Barrett(UInt{1}), std::invalid_argument);
  EXPECT_THROW(Barrett(UInt{0}), std::invalid_argument);
}

}  // namespace
}  // namespace eccm0::mpint
