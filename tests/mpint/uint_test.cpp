#include "mpint/uint.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eccm0::mpint {
namespace {

UInt random_uint(Rng& rng, std::size_t max_words) {
  std::vector<Word> w(1 + rng.next_below(max_words));
  rng.fill(w);
  return UInt{std::move(w)};
}

TEST(UInt, SmallValueConstruction) {
  EXPECT_TRUE(UInt{}.is_zero());
  EXPECT_TRUE(UInt{0}.is_zero());
  EXPECT_EQ(UInt{1}.bit_length(), 1u);
  EXPECT_EQ(UInt{0xFFFFFFFFFFFFFFFFull}.bit_length(), 64u);
  EXPECT_EQ(UInt{0x100000000ull}.to_hex(), "100000000");
}

TEST(UInt, HexRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const UInt a = random_uint(rng, 10);
    EXPECT_EQ(UInt::from_hex(a.to_hex()), a);
  }
}

TEST(UInt, CompareBasic) {
  EXPECT_LT(UInt{3}, UInt{5});
  EXPECT_GT(UInt::pow2(64), UInt{0xFFFFFFFFFFFFFFFFull});
  EXPECT_EQ(UInt{7}, UInt{7});
  EXPECT_LT(UInt{}, UInt{1});
}

TEST(UInt, AddSubRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const UInt a = random_uint(rng, 8);
    const UInt b = random_uint(rng, 8);
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a - a, UInt{});
  }
}

TEST(UInt, SubUnderflowThrows) {
  EXPECT_THROW(UInt{1} - UInt{2}, std::underflow_error);
}

TEST(UInt, MulBasicIdentities) {
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const UInt a = random_uint(rng, 6);
    const UInt b = random_uint(rng, 6);
    const UInt c = random_uint(rng, 6);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * UInt{1}, a);
    EXPECT_EQ(a * UInt{}, UInt{});
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(UInt, MulMatchesShiftForPow2) {
  Rng rng(4);
  const UInt a = random_uint(rng, 5);
  for (std::size_t e : {1u, 31u, 32u, 33u, 64u, 95u}) {
    EXPECT_EQ(a * UInt::pow2(e), a << e);
  }
}

TEST(UInt, ShiftRoundTrip) {
  Rng rng(5);
  for (std::size_t bits : {1u, 31u, 32u, 33u, 100u}) {
    const UInt a = random_uint(rng, 5);
    EXPECT_EQ((a << bits) >> bits, a);
  }
}

TEST(UInt, DivmodReconstruction) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const UInt a = random_uint(rng, 12);
    UInt b = random_uint(rng, 1 + rng.next_below(10));
    if (b.is_zero()) b = UInt{1};
    const auto [q, r] = UInt::divmod(a, b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(UInt, DivmodEdgeCases) {
  EXPECT_THROW(UInt::divmod(UInt{1}, UInt{}), std::domain_error);
  const auto [q1, r1] = UInt::divmod(UInt{5}, UInt{7});
  EXPECT_EQ(q1, UInt{});
  EXPECT_EQ(r1, UInt{5});
  const auto [q2, r2] = UInt::divmod(UInt{7}, UInt{7});
  EXPECT_EQ(q2, UInt{1});
  EXPECT_TRUE(r2.is_zero());
}

TEST(UInt, DivmodKnuthAddBackCase) {
  // Crafted operands that exercise the rare add-back branch: divisor with
  // high limb 0x80000000 and dividend just below a multiple.
  const UInt b = (UInt::pow2(63) + UInt{1});
  const UInt a = (b * UInt::from_hex("FFFFFFFFFFFFFFFF")) - UInt{1};
  const auto [q, r] = UInt::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(UInt, BitAccess) {
  const UInt a = UInt::from_hex("8000000000000000000000000000069D5BB915BCD46EFB1AD5F173ABDF");
  EXPECT_TRUE(a.bit(0));
  EXPECT_TRUE(a.bit(231));
  EXPECT_FALSE(a.bit(230));
  EXPECT_EQ(a.bit_length(), 232u);
}

TEST(UInt, RandomBelowIsUniformish) {
  Rng rng(7);
  const UInt bound = UInt::from_hex("10000000000000001");
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(UInt::random_below(rng, bound), bound);
  }
}

TEST(ModArith, AddSubMod) {
  Rng rng(8);
  const UInt m = UInt::from_hex("FFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF6955817183995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF");
  for (int i = 0; i < 10; ++i) {
    const UInt a = UInt::random_below(rng, m);
    const UInt b = UInt::random_below(rng, m);
    EXPECT_EQ(addmod(a, b, m), (a + b) % m);
    EXPECT_EQ(submod(addmod(a, b, m), b, m), a);
  }
}

TEST(ModArith, PowmodSmall) {
  // 3^10 = 59049; mod 1000 = 49
  EXPECT_EQ(powmod(UInt{3}, UInt{10}, UInt{1000}), UInt{49});
  // Fermat: a^(p-1) = 1 mod p
  const UInt p{1000003};
  EXPECT_EQ(powmod(UInt{2}, p - UInt{1}, p), UInt{1});
}

TEST(ModArith, InvmodRoundTrip) {
  Rng rng(9);
  const UInt p = UInt::from_hex("FFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF");
  for (int i = 0; i < 20; ++i) {
    UInt a = UInt::random_below(rng, p);
    if (a.is_zero()) a = UInt{2};
    const UInt ai = invmod(a, p);
    EXPECT_EQ(mulmod(a, ai, p), UInt{1});
  }
}

TEST(ModArith, InvmodNotInvertibleThrows) {
  EXPECT_THROW(invmod(UInt{6}, UInt{9}), std::domain_error);
  EXPECT_THROW(invmod(UInt{0}, UInt{7}), std::domain_error);
}

TEST(UInt, KaratsubaMatchesSchoolbookAcrossThreshold) {
  // Products straddling kKaratsubaThreshold must agree with an
  // independently computed schoolbook product, including the lopsided
  // and carry-heavy shapes the recursion's split produces.
  const auto schoolbook = [](const UInt& a, const UInt& b) {
    UInt acc;
    const auto bw = b.limbs();
    for (std::size_t i = 0; i < bw.size(); ++i) {
      acc += (a * UInt{bw[i]}) << (32 * i);  // 1-limb rhs stays schoolbook
    }
    return acc;
  };
  Rng rng(10);
  const std::size_t t = kKaratsubaThreshold;
  const std::size_t shapes[][2] = {{t - 1, t - 1}, {t, t},       {t + 1, t},
                                   {2 * t, t},     {3 * t, t + 3}, {2 * t, 2 * t}};
  for (const auto& s : shapes) {
    std::vector<Word> aw(s[0]), bw(s[1]);
    rng.fill(aw);
    rng.fill(bw);
    const UInt a{std::move(aw)}, b{std::move(bw)};
    EXPECT_EQ(a * b, schoolbook(a, b)) << s[0] << "x" << s[1] << " limbs";
    // All-ones operands maximise carry chains through the z1 recombine.
    const UInt ones_a = UInt::pow2(32 * s[0]) - UInt{1};
    const UInt ones_b = UInt::pow2(32 * s[1]) - UInt{1};
    EXPECT_EQ(ones_a * ones_b, schoolbook(ones_a, ones_b));
  }
}

}  // namespace
}  // namespace eccm0::mpint
