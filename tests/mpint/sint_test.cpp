#include "mpint/sint.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eccm0::mpint {
namespace {

TEST(SInt, ConstructionFromI64) {
  EXPECT_TRUE(SInt{0}.is_zero());
  EXPECT_EQ(SInt{-5}.sign(), -1);
  EXPECT_EQ(SInt{5}.sign(), 1);
  EXPECT_EQ(SInt{-5}.to_i64(), -5);
  EXPECT_EQ(SInt{INT64_MIN + 1}.to_i64(), INT64_MIN + 1);
}

TEST(SInt, SignedArithmetic) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::int64_t>(rng.next_u64() >> 34) -
                   (1ll << 29);
    const auto b = static_cast<std::int64_t>(rng.next_u64() >> 34) -
                   (1ll << 29);
    EXPECT_EQ((SInt{a} + SInt{b}).to_i64(), a + b);
    EXPECT_EQ((SInt{a} - SInt{b}).to_i64(), a - b);
    EXPECT_EQ((SInt{a} * SInt{b}).to_i64(), a * b);
    EXPECT_EQ(SInt{a} < SInt{b}, a < b);
    EXPECT_EQ(SInt{a} == SInt{b}, a == b);
  }
}

TEST(SInt, NegationAndZero) {
  EXPECT_EQ(-SInt{0}, SInt{0});
  EXPECT_EQ((-SInt{7}).to_i64(), -7);
  const SInt neg_zero{UInt{}, true};
  EXPECT_FALSE(neg_zero.is_neg());  // -0 normalised to +0
}

TEST(SInt, DivFloor) {
  // Floor semantics for negative dividends.
  EXPECT_EQ(SInt::div_floor(SInt{7}, UInt{2}).to_i64(), 3);
  EXPECT_EQ(SInt::div_floor(SInt{-7}, UInt{2}).to_i64(), -4);
  EXPECT_EQ(SInt::div_floor(SInt{-8}, UInt{2}).to_i64(), -4);
  EXPECT_EQ(SInt::div_floor(SInt{0}, UInt{5}).to_i64(), 0);
}

TEST(SInt, DivRound) {
  EXPECT_EQ(SInt::div_round(SInt{7}, UInt{2}).to_i64(), 4);   // 3.5 -> 4
  EXPECT_EQ(SInt::div_round(SInt{-7}, UInt{2}).to_i64(), -3); // -3.5 -> -3
  EXPECT_EQ(SInt::div_round(SInt{9}, UInt{4}).to_i64(), 2);   // 2.25 -> 2
  EXPECT_EQ(SInt::div_round(SInt{-9}, UInt{4}).to_i64(), -2);
  EXPECT_EQ(SInt::div_round(SInt{11}, UInt{4}).to_i64(), 3);  // 2.75 -> 3
  EXPECT_EQ(SInt::div_round(SInt{-11}, UInt{4}).to_i64(), -3);
}

TEST(SInt, DivRoundPropertyHalfUlp) {
  // |a - q*b| <= b/2 for q = div_round(a, b).
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::int64_t>(rng.next_u64() >> 20) -
                   (1ll << 43);
    const auto b = 1 + static_cast<std::int64_t>(rng.next_below(1 << 20));
    const SInt q = SInt::div_round(SInt{a}, UInt{static_cast<std::uint64_t>(b)});
    const SInt diff = SInt{a} - q * SInt{b};
    EXPECT_LE((diff * SInt{2}).abs(), UInt{static_cast<std::uint64_t>(b)})
        << a << "/" << b;
  }
}

TEST(SInt, ModEuclid) {
  EXPECT_EQ(SInt::mod_euclid(SInt{7}, UInt{3}), UInt{1});
  EXPECT_EQ(SInt::mod_euclid(SInt{-7}, UInt{3}), UInt{2});
  EXPECT_EQ(SInt::mod_euclid(SInt{-6}, UInt{3}), UInt{0});
}

TEST(SInt, ModsPow2) {
  // Signed residues in [-2^(w-1), 2^(w-1)).
  EXPECT_EQ(SInt{7}.mods_pow2(4), 7);
  EXPECT_EQ(SInt{9}.mods_pow2(4), -7);   // 9 mod 16 = 9 -> 9-16
  EXPECT_EQ(SInt{8}.mods_pow2(4), -8);
  EXPECT_EQ(SInt{-1}.mods_pow2(4), -1);
  EXPECT_EQ(SInt{-9}.mods_pow2(4), 7);   // -9 mod 16 = 7
  EXPECT_EQ(SInt{16}.mods_pow2(4), 0);
}

TEST(SInt, ModsPow2Property) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::int64_t>(rng.next_u64() >> 30) -
                   (1ll << 33);
    for (unsigned w : {2u, 4u, 6u}) {
      const std::int64_t r = SInt{a}.mods_pow2(w);
      EXPECT_GE(r, -(1ll << (w - 1)));
      EXPECT_LT(r, 1ll << (w - 1));
      EXPECT_EQ(((a - r) % (1ll << w) + (1ll << w)) % (1ll << w), 0)
          << a << " w=" << w;
    }
  }
}

TEST(SInt, Half) {
  EXPECT_EQ(SInt{-8}.half().to_i64(), -4);
  EXPECT_EQ(SInt{8}.half().to_i64(), 4);
  EXPECT_THROW(SInt{7}.half(), std::domain_error);
}

TEST(SInt, ShiftLeft) {
  EXPECT_EQ((SInt{-3} << 4).to_i64(), -48);
}

}  // namespace
}  // namespace eccm0::mpint
