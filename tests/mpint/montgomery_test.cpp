#include "mpint/montgomery.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eccm0::mpint {
namespace {

// NIST P-256 and P-192 primes.
const char* kP256 =
    "FFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF";
const char* kP192 = "FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF";

class MontgomeryTest : public ::testing::TestWithParam<const char*> {
 protected:
  MontgomeryTest() : p_(UInt::from_hex(GetParam())), mont_(p_) {}
  UInt p_;
  Montgomery mont_;
};

TEST_P(MontgomeryTest, ToFromRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const UInt a = UInt::random_below(rng, p_);
    EXPECT_EQ(mont_.from_mont(mont_.to_mont(a)), a);
  }
}

TEST_P(MontgomeryTest, MulMatchesPlainModmul) {
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const UInt a = UInt::random_below(rng, p_);
    const UInt b = UInt::random_below(rng, p_);
    const UInt got =
        mont_.from_mont(mont_.mul(mont_.to_mont(a), mont_.to_mont(b)));
    EXPECT_EQ(got, mulmod(a, b, p_));
  }
}

TEST_P(MontgomeryTest, OneIsMultiplicativeIdentity) {
  Rng rng(3);
  const UInt a = mont_.to_mont(UInt::random_below(rng, p_));
  EXPECT_EQ(mont_.mul(a, mont_.one()), a);
}

TEST_P(MontgomeryTest, PowMatchesPowmod) {
  Rng rng(4);
  const UInt a = UInt::random_below(rng, p_);
  const UInt e{65537};
  const UInt got = mont_.from_mont(mont_.pow(mont_.to_mont(a), e));
  EXPECT_EQ(got, powmod(a, e, p_));
}

TEST_P(MontgomeryTest, InvRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    UInt a = UInt::random_below(rng, p_);
    if (a.is_zero()) a = UInt{3};
    const UInt am = mont_.to_mont(a);
    EXPECT_EQ(mont_.mul(am, mont_.inv(am)), mont_.one());
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, MontgomeryTest,
                         ::testing::Values(kP256, kP192),
                         [](const auto& info) {
                           return info.index == 0 ? "P256" : "P192";
                         });

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery(UInt{100}), std::invalid_argument);
  EXPECT_THROW(Montgomery(UInt{1}), std::invalid_argument);
}

}  // namespace
}  // namespace eccm0::mpint
