#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hex.h"
#include "common/rng.h"
#include "common/secure_wipe.h"
#include "common/words.h"

namespace eccm0 {
namespace {

TEST(Words, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(32), 1u);
  EXPECT_EQ(words_for_bits(33), 2u);
  EXPECT_EQ(words_for_bits(233), 8u);
  EXPECT_EQ(words_for_bits(256), 8u);
  EXPECT_EQ(words_for_bits(257), 9u);
}

TEST(Words, TopBit) {
  EXPECT_EQ(top_bit(1), 0u);
  EXPECT_EQ(top_bit(2), 1u);
  EXPECT_EQ(top_bit(0x80000000u), 31u);
  EXPECT_EQ(top_bit(0x1FF), 8u);
}

TEST(Words, PolyDegree) {
  std::array<Word, 3> w{0, 0, 0};
  EXPECT_EQ(poly_degree(w), -1);
  w[0] = 1;
  EXPECT_EQ(poly_degree(w), 0);
  w[2] = 0x200;
  EXPECT_EQ(poly_degree(w), 64 + 9);
}

TEST(Words, BitOps) {
  std::array<Word, 4> w{};
  set_bit(w, 74);
  EXPECT_TRUE(get_bit(w, 74));
  EXPECT_FALSE(get_bit(w, 73));
  EXPECT_EQ(w[2], 1u << 10);
  flip_bit(w, 74);
  EXPECT_FALSE(get_bit(w, 74));
  EXPECT_EQ(poly_degree(w), -1);
}

TEST(Hex, RoundTrip) {
  const std::string h = "17232BA853A7E731AF129F22FF4149563A419C26BF50A4C9D6EEFAD6126";
  auto w = words_from_hex(h);
  EXPECT_EQ(words_to_hex(w), h);
}

TEST(Hex, PrefixAndCase) {
  auto a = words_from_hex("0xDEADbeef");
  auto b = words_from_hex("DEADBEEF");
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[0], 0xDEADBEEFu);
}

TEST(Hex, Zero) {
  auto w = words_from_hex("0");
  EXPECT_EQ(words_to_hex(w), "0");
}

TEST(Hex, FixedBufferOverflowThrows) {
  std::array<Word, 1> buf;
  EXPECT_THROW(words_from_hex("123456789AB", buf), std::length_error);
  EXPECT_NO_THROW(words_from_hex("00000000FFFFFFFF", buf));
  EXPECT_EQ(buf[0], 0xFFFFFFFFu);
}

TEST(Hex, BadDigitThrows) {
  EXPECT_THROW(words_from_hex("12G4"), std::invalid_argument);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, FillsDistinctWords) {
  Rng rng(7);
  std::array<Word, 8> w{};
  rng.fill(w);
  // Not all equal (overwhelmingly likely for a working generator).
  bool all_same = true;
  for (auto x : w) all_same &= (x == w[0]);
  EXPECT_FALSE(all_same);
}

TEST(SecureWipe, ZeroesRawBuffer) {
  std::array<std::uint8_t, 32> buf;
  buf.fill(0xA5);
  common::secure_wipe(buf.data(), buf.size());
  for (const std::uint8_t b : buf) EXPECT_EQ(b, 0u);
}

TEST(SecureWipe, ClearsAndReleasesVector) {
  std::vector<Word> v(8, 0xDEADBEEFu);
  common::secure_wipe(v);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 0u);  // shrink_to_fit released the heap block
}

TEST(SecureWipe, ClearsString) {
  std::string s = "this hex image held a shared secret";
  common::secure_wipe(s);
  EXPECT_TRUE(s.empty());
}

TEST(SecureWipe, EmptyInputsAreNoOps) {
  std::vector<std::uint8_t> v;
  std::string s;
  common::secure_wipe(v);
  common::secure_wipe(s);
  common::secure_wipe(nullptr, 0);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(s.empty());
}

TEST(Rng, NextBelow) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

}  // namespace
}  // namespace eccm0
