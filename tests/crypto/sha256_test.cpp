// FIPS 180-4 / RFC test vectors for SHA-256 and RFC 4231 vectors for
// HMAC-SHA256, plus DRBG behaviour tests.
#include "crypto/hmac.h"
#include "crypto/sha256.h"

#include <gtest/gtest.h>

namespace eccm0::crypto {
namespace {

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      to_hex(Sha256::hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 s;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) s.update(chunk);
  EXPECT_EQ(to_hex(s.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog multiple times to cross "
      "block boundaries in interesting ways 0123456789.";
  for (std::size_t split = 0; split <= msg.size(); split += 13) {
    Sha256 s;
    s.update(std::string_view(msg).substr(0, split));
    s.update(std::string_view(msg).substr(split));
    EXPECT_EQ(s.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256, BoundaryLengths) {
  // 55/56/63/64/65 bytes exercise the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const std::string m(len, 'x');
    Sha256 a;
    a.update(m);
    const Digest d1 = a.finish();
    Sha256 b;
    for (char c : m) b.update(std::string_view(&c, 1));
    EXPECT_EQ(b.finish(), d1) << len;
  }
}

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> r;
  for (int x : v) r.push_back(static_cast<std::uint8_t>(x));
  return r;
}

TEST(Hmac, Rfc4231Case1) {
  const auto key = std::vector<std::uint8_t>(20, 0x0b);
  const std::string msg = "Hi There";
  const Digest d = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(to_hex(d),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const Digest d = hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(to_hex(d),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const auto key = std::vector<std::uint8_t>(20, 0xaa);
  const auto msg = std::vector<std::uint8_t>(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const auto key = std::vector<std::uint8_t>(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest d = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(to_hex(d),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacDrbg, DeterministicAndSeedSensitive) {
  const auto seed1 = bytes({1, 2, 3});
  const auto seed2 = bytes({1, 2, 4});
  HmacDrbg a(seed1), b(seed1), c(seed2);
  std::array<std::uint8_t, 48> oa{}, ob{}, oc{};
  a.generate(oa);
  b.generate(ob);
  c.generate(oc);
  EXPECT_EQ(oa, ob);
  EXPECT_NE(oa, oc);
}

TEST(HmacDrbg, StreamAdvances) {
  HmacDrbg a(bytes({9}));
  std::array<std::uint8_t, 32> first{}, second{};
  a.generate(first);
  a.generate(second);
  EXPECT_NE(first, second);
}

TEST(HmacDrbg, ReseedChangesStream) {
  HmacDrbg a(bytes({7}));
  HmacDrbg b(bytes({7}));
  std::array<std::uint8_t, 32> oa{}, ob{};
  b.reseed(bytes({42}));
  a.generate(oa);
  b.generate(ob);
  EXPECT_NE(oa, ob);
}

}  // namespace
}  // namespace eccm0::crypto
