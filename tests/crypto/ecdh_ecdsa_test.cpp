// Protocol-level tests: ECDH agreement and ECDSA sign/verify on the
// paper's curve, including negative cases (tampered messages, wrong keys,
// malformed signatures, invalid public keys).
#include "crypto/ecdh.h"
#include "crypto/ecdsa.h"

#include "ec/codec.h"
#include "ec/protect.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace eccm0::crypto {
namespace {

std::vector<std::uint8_t> seed_bytes(std::uint8_t tag) {
  return std::vector<std::uint8_t>{tag, 0x42, 0x99};
}

TEST(Ecdh, AgreementMatchesOnBothSides) {
  const Ecdh ecdh;
  HmacDrbg rng_a(seed_bytes(1)), rng_b(seed_bytes(2));
  const KeyPair alice = ecdh.generate(rng_a);
  const KeyPair bob = ecdh.generate(rng_b);
  EXPECT_EQ(ecdh.shared_secret(alice.d, bob.q),
            ecdh.shared_secret(bob.d, alice.q));
}

TEST(Ecdh, DifferentPeersGiveDifferentSecrets) {
  const Ecdh ecdh;
  HmacDrbg r1(seed_bytes(3)), r2(seed_bytes(4)), r3(seed_bytes(5));
  const KeyPair a = ecdh.generate(r1);
  const KeyPair b = ecdh.generate(r2);
  const KeyPair c = ecdh.generate(r3);
  EXPECT_NE(ecdh.shared_secret(a.d, b.q), ecdh.shared_secret(a.d, c.q));
}

TEST(Ecdh, PublicKeysAreValid) {
  const Ecdh ecdh;
  HmacDrbg rng(seed_bytes(6));
  const KeyPair kp = ecdh.generate(rng);
  EXPECT_TRUE(ecdh.valid_public_key(kp.q));
  EXPECT_FALSE(ecdh.valid_public_key(ec::AffinePoint::infinity()));
  // A corrupted point must be rejected.
  ec::AffinePoint bad = kp.q;
  bad.x[0] ^= 1;
  EXPECT_FALSE(ecdh.valid_public_key(bad));
}

TEST(Ecdh, WorksOnK163Too) {
  const Ecdh ecdh(ec::BinaryCurve::sect163k1());
  HmacDrbg r1(seed_bytes(7)), r2(seed_bytes(8));
  const KeyPair a = ecdh.generate(r1);
  const KeyPair b = ecdh.generate(r2);
  EXPECT_EQ(ecdh.shared_secret(a.d, b.q), ecdh.shared_secret(b.d, a.q));
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  const Ecdsa ecdsa;
  HmacDrbg rng(seed_bytes(9));
  const KeyPair kp = ecdsa.generate(rng);
  const Signature sig = ecdsa.sign(kp.d, "attack at dawn");
  EXPECT_TRUE(ecdsa.verify(kp.q, "attack at dawn", sig));
}

TEST(Ecdsa, DeterministicSignatures) {
  const Ecdsa ecdsa;
  HmacDrbg rng(seed_bytes(10));
  const KeyPair kp = ecdsa.generate(rng);
  const Signature s1 = ecdsa.sign(kp.d, "message");
  const Signature s2 = ecdsa.sign(kp.d, "message");
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
  // Different message -> different nonce -> different r.
  const Signature s3 = ecdsa.sign(kp.d, "messagf");
  EXPECT_NE(s1.r, s3.r);
}

TEST(Ecdsa, RejectsTamperedMessage) {
  const Ecdsa ecdsa;
  HmacDrbg rng(seed_bytes(11));
  const KeyPair kp = ecdsa.generate(rng);
  const Signature sig = ecdsa.sign(kp.d, "pay Bob 10");
  EXPECT_FALSE(ecdsa.verify(kp.q, "pay Bob 99", sig));
}

TEST(Ecdsa, RejectsWrongKey) {
  const Ecdsa ecdsa;
  HmacDrbg r1(seed_bytes(12)), r2(seed_bytes(13));
  const KeyPair a = ecdsa.generate(r1);
  const KeyPair b = ecdsa.generate(r2);
  const Signature sig = ecdsa.sign(a.d, "hello");
  EXPECT_FALSE(ecdsa.verify(b.q, "hello", sig));
}

TEST(Ecdsa, RejectsMalformedSignatures) {
  const Ecdsa ecdsa;
  HmacDrbg rng(seed_bytes(14));
  const KeyPair kp = ecdsa.generate(rng);
  const Signature sig = ecdsa.sign(kp.d, "hello");
  EXPECT_FALSE(ecdsa.verify(kp.q, "hello", {mpint::UInt{0}, sig.s}));
  EXPECT_FALSE(ecdsa.verify(kp.q, "hello", {sig.r, mpint::UInt{0}}));
  EXPECT_FALSE(
      ecdsa.verify(kp.q, "hello", {ecdsa.curve().order, sig.s}));
  Signature twisted = sig;
  twisted.s = addmod(twisted.s, mpint::UInt{1}, ecdsa.curve().order);
  EXPECT_FALSE(ecdsa.verify(kp.q, "hello", twisted));
}

// Parameterized negative suite: every structured mutation of a valid
// (r, s) pair must be rejected by ecdsa_verify — range violations and
// value corruptions alike.
struct SigMutation {
  const char* name;
  void (*apply)(Signature&, const mpint::UInt& order);
};

class MutatedSignatureTest : public ::testing::TestWithParam<SigMutation> {};

TEST_P(MutatedSignatureTest, VerifyRejects) {
  const Ecdsa ecdsa;
  HmacDrbg rng(seed_bytes(30));
  const KeyPair kp = ecdsa.generate(rng);
  const Signature good = ecdsa.sign(kp.d, "mutate me");
  ASSERT_TRUE(ecdsa.verify(kp.q, "mutate me", good));
  Signature bad = good;
  GetParam().apply(bad, ecdsa.curve().order);
  ASSERT_FALSE(bad.r == good.r && bad.s == good.s)
      << GetParam().name << " mutated nothing";
  EXPECT_FALSE(ecdsa.verify(kp.q, "mutate me", bad)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Mutations, MutatedSignatureTest,
    ::testing::Values(
        SigMutation{"r-zero",
                    [](Signature& s, const mpint::UInt&) {
                      s.r = mpint::UInt{0};
                    }},
        SigMutation{"s-zero",
                    [](Signature& s, const mpint::UInt&) {
                      s.s = mpint::UInt{0};
                    }},
        SigMutation{"r-equals-order",
                    [](Signature& s, const mpint::UInt& n) { s.r = n; }},
        SigMutation{"s-equals-order",
                    [](Signature& s, const mpint::UInt& n) { s.s = n; }},
        SigMutation{"r-plus-one",
                    [](Signature& s, const mpint::UInt& n) {
                      s.r = addmod(s.r, mpint::UInt{1}, n);
                    }},
        SigMutation{"s-plus-one",
                    [](Signature& s, const mpint::UInt& n) {
                      s.s = addmod(s.s, mpint::UInt{1}, n);
                    }},
        SigMutation{"r-low-bit-flip",
                    [](Signature& s, const mpint::UInt&) {
                      // XOR of bit 0 via +-1 (keeps the value in range).
                      s.r = s.r.is_odd() ? s.r - mpint::UInt{1}
                                         : s.r + mpint::UInt{1};
                    }},
        SigMutation{"s-top-bit-flip",
                    [](Signature& s, const mpint::UInt&) {
                      s.s = s.s - mpint::UInt::pow2(s.s.bit_length() - 1);
                    }},
        SigMutation{"r-s-swapped",
                    [](Signature& s, const mpint::UInt&) {
                      std::swap(s.r, s.s);
                    }},
        SigMutation{"both-doubled",
                    [](Signature& s, const mpint::UInt& n) {
                      s.r = addmod(s.r, s.r, n);
                      s.s = addmod(s.s, s.s, n);
                    }}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Ecdsa, SignCoherenceCheckPassesHonestSigner) {
  const Ecdsa ecdsa;
  HmacDrbg rng(seed_bytes(31));
  const KeyPair kp = ecdsa.generate(rng);
  SignOpts opts;
  opts.coherence_check = true;
  const Signature sig = ecdsa.sign(kp.d, "guarded", opts);
  EXPECT_TRUE(ecdsa.verify(kp.q, "guarded", sig));
}

TEST(Ecdsa, SignCoherenceCheckCatchesFaultedScalarMul) {
  // Corrupt one field multiplication inside the k*G of sign(): with the
  // coherence check on, the bad signature must never leave sign().
  Ecdsa ecdsa;
  HmacDrbg rng(seed_bytes(32));
  const KeyPair kp = ecdsa.generate(rng);
  ecdsa.set_mul_tamper([](std::uint64_t idx, const gf2::Elem&,
                          const gf2::Elem&, gf2::Elem& r) {
    if (idx == 100) r[0] ^= 1u;
  });
  SignOpts opts;
  opts.coherence_check = true;
  try {
    (void)ecdsa.sign(kp.d, "faulted", opts);
    FAIL() << "expected FaultDetectedError";
  } catch (const ec::FaultDetectedError& e) {
    EXPECT_EQ(e.check(), ec::FaultDetectedError::Check::kSignCoherence);
  }
  // Without the check the corrupted signature escapes — and is invalid.
  Ecdsa unguarded;
  unguarded.set_mul_tamper([](std::uint64_t idx, const gf2::Elem&,
                              const gf2::Elem&, gf2::Elem& r) {
    if (idx == 100) r[0] ^= 1u;
  });
  const Signature bad = unguarded.sign(kp.d, "faulted");
  EXPECT_FALSE(ecdsa.verify(kp.q, "faulted", bad));
}

TEST(Ecdsa, RejectsInvalidPublicKey) {
  const Ecdsa ecdsa;
  HmacDrbg rng(seed_bytes(15));
  const KeyPair kp = ecdsa.generate(rng);
  const Signature sig = ecdsa.sign(kp.d, "hello");
  ec::AffinePoint off_curve = kp.q;
  off_curve.y[1] ^= 4;
  EXPECT_FALSE(ecdsa.verify(off_curve, "hello", sig));
  EXPECT_FALSE(ecdsa.verify(ec::AffinePoint::infinity(), "hello", sig));
}

TEST(Ecdsa, CrossCurveSignatures) {
  const Ecdsa e233;
  const Ecdsa e163(ec::BinaryCurve::sect163k1());
  HmacDrbg rng(seed_bytes(16));
  const KeyPair kp = e163.generate(rng);
  const Signature sig = e163.sign(kp.d, "hello");
  EXPECT_TRUE(e163.verify(kp.q, "hello", sig));
}

TEST(Ecdh, WireProtocolWithCompressedPoints) {
  // Full over-the-air flow: each side serialises its public key as a
  // 31-byte compressed point, the peer decodes + validates it, and both
  // derive the same secret — the actual WSN handshake the paper's energy
  // numbers price out.
  const Ecdh ecdh;
  ec::CurveOps ops(ecdh.curve());
  HmacDrbg rng_a(seed_bytes(20)), rng_b(seed_bytes(21));
  const KeyPair alice = ecdh.generate(rng_a);
  const KeyPair bob = ecdh.generate(rng_b);

  const auto wire_a = ec::encode_point(ecdh.curve(), alice.q, true);
  const auto wire_b = ec::encode_point(ecdh.curve(), bob.q, true);
  EXPECT_EQ(wire_a.size(), 31u);

  const ec::AffinePoint a_at_bob = ec::decode_point(ops, wire_a);
  const ec::AffinePoint b_at_alice = ec::decode_point(ops, wire_b);
  ASSERT_TRUE(ecdh.valid_public_key(a_at_bob));
  ASSERT_TRUE(ecdh.valid_public_key(b_at_alice));
  EXPECT_EQ(ecdh.shared_secret(alice.d, b_at_alice),
            ecdh.shared_secret(bob.d, a_at_bob));

  // A flipped bit on the wire is caught at decode or validation time.
  auto corrupted = wire_a;
  corrupted[10] ^= 0x40;
  bool rejected = false;
  try {
    const ec::AffinePoint p = ec::decode_point(ops, corrupted);
    rejected = !ecdh.valid_public_key(p) || !(p == a_at_bob);
  } catch (const std::invalid_argument&) {
    rejected = true;
  }
  EXPECT_TRUE(rejected);
}

TEST(Ecdh, WorksOnDerivedK409) {
  // The whole protocol stack on a curve whose parameters were computed,
  // not transcribed.
  const Ecdh ecdh(ec::BinaryCurve::k409_derived());
  HmacDrbg r1(seed_bytes(22)), r2(seed_bytes(23));
  const KeyPair a = ecdh.generate(r1);
  const KeyPair b = ecdh.generate(r2);
  EXPECT_EQ(ecdh.shared_secret(a.d, b.q), ecdh.shared_secret(b.d, a.q));
}

}  // namespace
}  // namespace eccm0::crypto
