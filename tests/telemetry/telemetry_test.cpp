// Telemetry layer: histogram math (bucket boundaries, exact-rank
// quantiles, merge algebra), registry snapshots, JSON round trips,
// manifest envelope, progress meter, and the thread-count invariance
// of metrics merged out of sim::BatchExecutor worker shards.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sim/batch.h"
#include "telemetry/json.h"
#include "telemetry/manifest.h"
#include "telemetry/metrics.h"
#include "telemetry/progress.h"

namespace eccm0::telemetry {
namespace {

// ---- Histogram bucketing -----------------------------------------------

TEST(HistogramTest, SmallValuesAreExactBuckets) {
  // Below 2*kSubBuckets every value is its own bucket.
  for (std::uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::index_of(v), v);
    EXPECT_EQ(Histogram::bucket_floor(Histogram::index_of(v)), v);
  }
}

TEST(HistogramTest, BucketFloorIsSmallestValueInBucket) {
  // floor(index_of(v)) <= v, and floor maps back to its own bucket.
  for (std::uint64_t v : {64ull, 65ull, 100ull, 127ull, 128ull, 1000ull,
                          4096ull, 123456789ull, (1ull << 40) + 12345ull,
                          ~0ull}) {
    const std::size_t idx = Histogram::index_of(v);
    const std::uint64_t floor = Histogram::bucket_floor(idx);
    EXPECT_LE(floor, v);
    EXPECT_EQ(Histogram::index_of(floor), idx);
  }
}

TEST(HistogramTest, PowerOfTwoBoundaries) {
  // At every octave boundary the bucket index must step by exactly one:
  // 2^k-1 and 2^k never share a bucket, and nothing is skipped.
  for (unsigned k = 6; k < 63; ++k) {
    const std::uint64_t p = 1ull << k;
    EXPECT_EQ(Histogram::index_of(p), Histogram::index_of(p - 1) + 1)
        << "at 2^" << k;
    EXPECT_EQ(Histogram::bucket_floor(Histogram::index_of(p)), p);
  }
}

TEST(HistogramTest, RelativeErrorBounded) {
  // Bucket width / floor <= 2^-kSubBucketBits for values past the exact
  // range: the advertised 3.125% resolution.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng() >> (rng() % 40);
    if (v < 2 * Histogram::kSubBuckets) continue;
    const std::size_t idx = Histogram::index_of(v);
    const std::uint64_t lo = Histogram::bucket_floor(idx);
    const std::uint64_t hi = Histogram::bucket_floor(idx + 1);
    EXPECT_LE(static_cast<double>(hi - lo),
              static_cast<double>(lo) / Histogram::kSubBuckets * 1.0001);
  }
}

// ---- Quantiles ---------------------------------------------------------

TEST(HistogramTest, ExactQuantilesInExactRange) {
  // All values below 2*kSubBuckets: quantiles are exact order statistics
  // at rank ceil(q*n).
  Histogram h;
  for (std::uint64_t v = 1; v <= 50; ++v) h.record(v);
  EXPECT_EQ(h.count(), 50u);
  EXPECT_EQ(h.quantile(0.50), 25u);  // ceil(0.5*50) = rank 25
  EXPECT_EQ(h.quantile(0.90), 45u);
  EXPECT_EQ(h.quantile(0.99), 50u);  // ceil(49.5) = 50
  EXPECT_EQ(h.quantile(0.0), 1u);    // rank clamps to 1
  EXPECT_EQ(h.quantile(1.0), 50u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 50u);
  EXPECT_EQ(h.sum(), 50u * 51u / 2);
}

TEST(HistogramTest, QuantileClampsToRecordedRange) {
  Histogram h;
  h.record(1000);  // one sample: every quantile is that sample's bucket
  EXPECT_GE(h.quantile(0.5), h.min());
  EXPECT_LE(h.quantile(0.5), h.max());
  EXPECT_EQ(h.quantile(0.99), h.quantile(0.01));
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.min(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
}

TEST(HistogramTest, QuantileWithinRelativeErrorOfTrueRank) {
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> vals;
  Histogram h;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const std::size_t rank =
        static_cast<std::size_t>(std::ceil(q * vals.size()));
    const double truth = static_cast<double>(vals[rank - 1]);
    const double est = static_cast<double>(h.quantile(q));
    EXPECT_LE(est, truth * 1.0001);
    EXPECT_GE(est, truth * (1.0 - 1.0 / Histogram::kSubBuckets) - 1.0);
  }
}

// ---- Merge algebra -----------------------------------------------------

TEST(HistogramTest, MergeIsCommutativeAndAssociative) {
  std::mt19937_64 rng(3);
  Histogram a, b, c;
  for (int i = 0; i < 300; ++i) a.record(rng() % 100000);
  for (int i = 0; i < 200; ++i) b.record(rng() >> 30);
  for (int i = 0; i < 100; ++i) c.record(rng() % 64);

  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);

  Histogram ab_c = ab;
  ab_c.merge(c);
  Histogram bc = b;
  bc.merge(c);
  Histogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
}

TEST(HistogramTest, MergeEqualsSerialRecording) {
  // Shard-and-merge must equal recording the union serially, whatever
  // the split — the property BatchExecutor's per-worker shards rely on.
  std::mt19937_64 rng(5);
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(rng() % 500000);

  Histogram serial;
  for (std::uint64_t v : vals) serial.record(v);

  for (std::size_t parts : {2u, 3u, 7u}) {
    std::vector<Histogram> shards(parts);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      shards[i % parts].record(vals[i]);
    }
    Histogram merged;
    for (const Histogram& s : shards) merged.merge(s);
    EXPECT_EQ(merged, serial) << parts << " shards";
  }

  Histogram onto_empty;
  onto_empty.merge(serial);
  EXPECT_EQ(onto_empty, serial);
}

TEST(HistogramTest, NonzeroBucketsCoverEveryCount) {
  Histogram h;
  for (std::uint64_t v : {1ull, 1ull, 70ull, 5000ull}) h.record(v);
  std::uint64_t total = 0;
  std::uint64_t prev_floor = 0;
  bool first = true;
  for (const auto& [floor, count] : h.nonzero_buckets()) {
    if (!first) EXPECT_GT(floor, prev_floor);
    prev_floor = floor;
    first = false;
    total += count;
  }
  EXPECT_EQ(total, h.count());
}

// ---- Registry ----------------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.counter("a.runs").add(3);
  reg.counter("a.runs").add(2);
  reg.gauge("depth").set(7);
  reg.record("lat", Unit::kCycles, 10);
  reg.record("lat", Unit::kCycles, 20);
  EXPECT_EQ(reg.counter_value("a.runs"), 5u);
  EXPECT_EQ(reg.gauge_value("depth"), 7u);
  EXPECT_EQ(reg.histogram_copy("lat").count(), 2u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
  EXPECT_EQ(reg.histogram_copy("absent").count(), 0u);
}

TEST(MetricsRegistryTest, SnapshotSortedAndWallExcluded) {
  MetricsRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(1);
  reg.record("wall", Unit::kNanos, 123);  // wall-clock: keep out
  reg.record("cyc", Unit::kCycles, 42);

  const Json snap = reg.snapshot_json();
  const Json* counters = snap.get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->size(), 2u);
  EXPECT_EQ(counters->members()[0].first, "a.first");  // sorted, not
  EXPECT_EQ(counters->members()[1].first, "z.last");   // insertion order
  const Json* hists = snap.get("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_EQ(hists->get("wall"), nullptr);
  ASSERT_NE(hists->get("cyc"), nullptr);
  EXPECT_EQ(hists->get("cyc")->get("unit")->as_string(), "cycles");

  // include_wall=true is the printable superset.
  const Json full = reg.snapshot_json(true);
  EXPECT_NE(full.get("histograms")->get("wall"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicBytes) {
  auto build = [](bool reverse) {
    MetricsRegistry reg;
    if (reverse) {
      reg.counter("b").add(2);
      reg.counter("a").add(1);
    } else {
      reg.counter("a").add(1);
      reg.counter("b").add(2);
    }
    reg.record("h", Unit::kCycles, 99);
    return reg.snapshot_json().dump();
  };
  EXPECT_EQ(build(false), build(true));
}

// ---- BatchExecutor shard merging ---------------------------------------

TEST(BatchMetricsTest, MergedMetricsInvariantToThreadCount) {
  // Same work fanned across 1, 2, and 8 workers: the deterministic
  // metric sections must be identical (wall-clock histograms are
  // recorded but excluded from snapshots by design).
  auto run = [](unsigned threads) {
    MetricsRegistry reg;
    sim::BatchExecutor pool(threads);
    pool.set_metrics(&reg);
    const std::vector<int> out = pool.map<int>(64, [](std::size_t i) {
      volatile int x = 0;
      for (std::size_t k = 0; k < 1000 * (i % 5 + 1); ++k) x += int(k);
      return int(i);
    });
    EXPECT_EQ(out.size(), 64u);
    return reg.snapshot_json().dump();
  };
  const std::string serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(BatchMetricsTest, CountsTasksAndBatches) {
  MetricsRegistry reg;
  sim::BatchExecutor pool(4);
  pool.set_metrics(&reg);
  (void)pool.map<int>(10, [](std::size_t i) { return int(i); });
  (void)pool.map<int>(5, [](std::size_t i) { return int(i); });
  EXPECT_EQ(reg.counter_value("batch.batches"), 2u);
  EXPECT_EQ(reg.counter_value("batch.tasks"), 15u);
  // Wall-clock latency histograms exist (printable) but are excluded
  // from the deterministic snapshot.
  EXPECT_EQ(reg.histogram_copy("batch.run_ns").count(), 15u);
  EXPECT_EQ(reg.snapshot_json().get("histograms"), nullptr);
}

TEST(BatchMetricsTest, NullRegistryRunsBare) {
  sim::BatchExecutor pool(4);
  const std::vector<int> out =
      pool.map<int>(8, [](std::size_t i) { return int(i) * 2; });
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[7], 14);
}

// ---- Json round trip ---------------------------------------------------

TEST(JsonTest, ParseDumpRoundTripIsIdentity) {
  const std::string doc =
      R"({"a":1,"b":-2.5,"c":"x\"y","d":[1,2,{"e":null}],"f":true,)"
      R"("g":1e-06,"h":{},"i":[]})";
  EXPECT_EQ(Json::parse(doc).dump(), doc);
}

TEST(JsonTest, NumbersKeepSourceSpelling) {
  // 1e-06 vs 1e-6 vs 0.000001 are the same value but different bytes;
  // the round-trip identity is what keeps re-wrapped manifests stable.
  for (const std::string n : {"1e-06", "1E-6", "0.000001", "123",
                              "-0.25", "18446744073709551615"}) {
    EXPECT_EQ(Json::parse(n).dump(), n);
  }
}

TEST(JsonTest, RejectsMalformed) {
  for (const std::string bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "nan"}) {
    EXPECT_THROW((void)Json::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonTest, BuiltNumbersMatchJsonWriterFormat) {
  EXPECT_EQ(Json::number(std::uint64_t{42}).dump(), "42");
  EXPECT_EQ(Json::number(0.5).dump(), "0.5");  // "%.6g"
  EXPECT_EQ(Json::number(1e-6).dump(), "1e-06");
  Json obj = Json::object();
  obj.set("k", Json::str("v"));
  EXPECT_EQ(obj.dump(), "{\"k\":\"v\"}");
}

// ---- Manifest ----------------------------------------------------------

TEST(ManifestTest, EnvelopeShapeAndPredicate) {
  RunManifest man("unit-test");
  man.run().set("seed", Json::number(std::uint64_t{7}));
  Json payload = Json::object();
  payload.set("answer", Json::number(std::uint64_t{42}));
  man.set_payload(std::move(payload));
  MetricsRegistry reg;
  reg.counter("n").add(1);
  man.set_metrics(reg);

  const std::string text = man.dump();
  const Json doc = Json::parse(text);
  EXPECT_TRUE(is_manifest(doc));
  EXPECT_EQ(doc.get("schema")->as_string(), kManifestSchema);
  EXPECT_EQ(doc.get("tool")->as_string(), "unit-test");
  // Fixed section order: the envelope must stream the same way from
  // RunManifest and from bench::manifest_begin/end.
  ASSERT_EQ(doc.members().size(), 6u);
  EXPECT_EQ(doc.members()[0].first, "schema");
  EXPECT_EQ(doc.members()[1].first, "tool");
  EXPECT_EQ(doc.members()[2].first, "build");
  EXPECT_EQ(doc.members()[3].first, "run");
  EXPECT_EQ(doc.members()[4].first, "payload");
  EXPECT_EQ(doc.members()[5].first, "metrics");
  EXPECT_EQ(doc.get("payload")->get("answer")->as_u64(), 42u);
  EXPECT_EQ(doc.get("metrics")->get("counters")->get("n")->as_u64(), 1u);

  EXPECT_FALSE(is_manifest(Json::parse("{\"schema\":\"other\"}")));
  EXPECT_FALSE(is_manifest(Json::parse("[]")));
}

// ---- Progress ----------------------------------------------------------

TEST(ProgressTest, ModeParsingAndCounting) {
  EXPECT_EQ(progress_mode_from_name("off"), ProgressMode::kOff);
  EXPECT_EQ(progress_mode_from_name("plain"), ProgressMode::kPlain);
  EXPECT_THROW((void)progress_mode_from_name("fancy"),
               std::invalid_argument);

  ProgressMeter off(ProgressMode::kOff, "t", 10);
  for (int i = 0; i < 10; ++i) off.tick();
  EXPECT_EQ(off.done(), 10u);

  ProgressMeter plain(ProgressMode::kPlain, "t", 4);  // stderr chatter ok
  plain.tick(4);
  EXPECT_EQ(plain.done(), 4u);
}

}  // namespace
}  // namespace eccm0::telemetry
