// The fault-injection engine: deterministic seeded injection on the
// armvm core, and the kP campaign's classification invariants.
#include <gtest/gtest.h>

#include <string>

#include "armvm/asm.h"
#include "asmkernels/gen.h"
#include "faultsim/campaign.h"
#include "faultsim/inject.h"
#include "gf2/k233.h"

namespace eccm0::faultsim {
namespace {

constexpr std::size_t kRamSize = 0x800;

armvm::ProgramRef mul_program() {
  return armvm::assemble(asmkernels::gen_mul_fixed(true));
}

void write_operands(armvm::Memory& mem) {
  gf2::k233::Fe x{}, y{};
  Rng rng(0xFEED);
  for (auto& w : x) w = rng.next_word();
  for (auto& w : y) w = rng.next_word();
  x[7] &= 0x1FF;
  y[7] &= 0x1FF;
  mem.write_words(armvm::kRamBase + asmkernels::kXOff,
                  std::span<const std::uint32_t>(x.data(), x.size()));
  mem.write_words(armvm::kRamBase + asmkernels::kYOff,
                  std::span<const std::uint32_t>(y.data(), y.size()));
}

TEST(Inject, NoFaultWhenIndexBeyondRetirement) {
  const armvm::ProgramRef prog = mul_program();
  armvm::Memory mem(kRamSize);
  write_operands(mem);
  FaultSpec never;
  never.index = ~std::uint64_t{0};
  const InjectedRun run = run_with_fault(prog, mem, never);
  EXPECT_EQ(run.outcome, RunOutcome::kCompleted);
  EXPECT_FALSE(run.injected);
  EXPECT_GT(run.instructions, 100u);
}

TEST(Inject, SameSpecSameOutcomeBitForBit) {
  const armvm::ProgramRef prog = mul_program();
  auto run_once = [&](const FaultSpec& spec) {
    armvm::Memory mem(kRamSize);
    write_operands(mem);
    const InjectedRun run = run_with_fault(prog, mem, spec);
    // Fold the result words in so value corruption is part of the
    // fingerprint, not just control flow.
    std::string fp = std::to_string(static_cast<int>(run.outcome)) + ":" +
                     std::to_string(run.instructions) + ":" +
                     std::to_string(run.cycles) + ":" + run.fault_message;
    if (run.outcome == RunOutcome::kCompleted) {
      for (std::uint32_t w :
           mem.read_words(armvm::kRamBase + asmkernels::kVOff, 8)) {
        fp += "," + std::to_string(w);
      }
    }
    return fp;
  };
  Rng rng(123);
  for (const FaultModel m :
       {FaultModel::kRegisterFlip, FaultModel::kRamFlip,
        FaultModel::kInstructionSkip, FaultModel::kOpcodeFlip}) {
    for (int i = 0; i < 10; ++i) {
      const FaultSpec spec = sample_spec(rng, m, 1500, 0xA0);
      EXPECT_EQ(run_once(spec), run_once(spec))
          << fault_model_name(m) << " spec not deterministic";
    }
  }
}

TEST(Inject, SampleSpecIsSeedDeterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 50; ++i) {
    const FaultSpec sa = sample_spec(a, FaultModel::kRamFlip, 1000, 160);
    const FaultSpec sb = sample_spec(b, FaultModel::kRamFlip, 1000, 160);
    EXPECT_EQ(sa.index, sb.index);
    EXPECT_EQ(sa.ram_word, sb.ram_word);
    EXPECT_EQ(sa.bit, sb.bit);
    EXPECT_LT(sa.index, 1000u);
    EXPECT_LT(sa.ram_word, 160u);
    EXPECT_LT(sa.bit, 32u);
  }
}

TEST(Inject, RegisterFlipOfPcCrashesWithTypedFault) {
  const armvm::ProgramRef prog = mul_program();
  armvm::Memory mem(kRamSize);
  write_operands(mem);
  FaultSpec spec;
  spec.model = FaultModel::kRegisterFlip;
  spec.index = 10;
  spec.reg = 15;  // PC
  spec.bit = 0;   // odd PC => alignment fault
  const InjectedRun run = run_with_fault(prog, mem, spec);
  ASSERT_EQ(run.outcome, RunOutcome::kCrashed);
  EXPECT_TRUE(run.injected);
  EXPECT_EQ(run.fault_kind, armvm::FaultKind::kAlignmentFault);
  EXPECT_EQ(run.fault_message, "Cpu: odd PC");
}

TEST(Inject, ForkFromCheckpointMatchesReplayFromReset) {
  // For many specs at the same trigger index, a campaign can pay the
  // clean prefix once (checkpoint_at) and fork — the forked run must be
  // bit-identical to replaying from reset: outcome, instruction and
  // cycle counts, crash details, and the result words.
  const armvm::ProgramRef prog = mul_program();
  Rng rng(0xF02C);
  for (const FaultModel model :
       {FaultModel::kRegisterFlip, FaultModel::kRamFlip,
        FaultModel::kInstructionSkip, FaultModel::kOpcodeFlip}) {
    for (int i = 0; i < 6; ++i) {
      const FaultSpec spec = sample_spec(rng, model, 1500, 0xA0);

      armvm::Memory replay_mem(kRamSize);
      write_operands(replay_mem);
      const InjectedRun replay = run_with_fault(prog, replay_mem, spec);

      armvm::Memory fork_mem(kRamSize);
      write_operands(fork_mem);
      const armvm::MachineSnapshot at =
          checkpoint_at(prog, fork_mem, spec.index);
      const InjectedRun forked =
          run_with_fault_forked(prog, fork_mem, at, spec);

      EXPECT_EQ(forked.outcome, replay.outcome) << fault_model_name(model);
      EXPECT_EQ(forked.injected, replay.injected);
      EXPECT_EQ(forked.instructions, replay.instructions);
      EXPECT_EQ(forked.cycles, replay.cycles);
      EXPECT_EQ(forked.fault_message, replay.fault_message);
      if (replay.outcome == RunOutcome::kCompleted) {
        EXPECT_EQ(fork_mem.read_words(armvm::kRamBase + asmkernels::kVOff, 8),
                  replay_mem.read_words(armvm::kRamBase + asmkernels::kVOff,
                                        8));
      }
    }
  }
}

TEST(Inject, OneCheckpointServesManySpecs) {
  // The point of forking: one prefix, several different faults.
  const armvm::ProgramRef prog = mul_program();
  constexpr std::uint64_t kIndex = 700;
  armvm::Memory mem(kRamSize);
  write_operands(mem);
  const armvm::MachineSnapshot at = checkpoint_at(prog, mem, kIndex);

  Rng rng(0xA11);
  for (int i = 0; i < 4; ++i) {
    FaultSpec spec = sample_spec(rng, FaultModel::kRegisterFlip, 1, 0xA0);
    spec.index = kIndex;

    armvm::Memory fork_mem(kRamSize);
    const InjectedRun forked = run_with_fault_forked(prog, fork_mem, at, spec);

    armvm::Memory replay_mem(kRamSize);
    write_operands(replay_mem);
    const InjectedRun replay = run_with_fault(prog, replay_mem, spec);

    EXPECT_EQ(forked.outcome, replay.outcome);
    EXPECT_EQ(forked.instructions, replay.instructions);
    EXPECT_EQ(forked.cycles, replay.cycles);
  }
}

TEST(Campaign, ThreadCountDoesNotChangeTheTally) {
  CampaignConfig cfg;
  cfg.seed = 0x7E57;
  cfg.runs_per_model = 8;
  cfg.threads = 1;
  const CampaignResult serial = run_kp_campaign(cfg);
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const CampaignResult par = run_kp_campaign(cfg);
    for (unsigned m = 0; m < kNumFaultModels; ++m) {
      EXPECT_EQ(par.models[m].injected, serial.models[m].injected)
          << threads << " threads";
      for (unsigned p = 0; p < kNumProfiles; ++p) {
        const OutcomeTally& ts = serial.models[m].per_profile[p];
        const OutcomeTally& tp = par.models[m].per_profile[p];
        EXPECT_EQ(tp.correct, ts.correct);
        EXPECT_EQ(tp.detected, ts.detected);
        EXPECT_EQ(tp.crashed, ts.crashed);
        EXPECT_EQ(tp.silent, ts.silent);
      }
    }
  }
}

TEST(Campaign, DeterministicAcrossRuns) {
  CampaignConfig cfg;
  cfg.seed = 0xD5EED;
  cfg.runs_per_model = 12;
  const CampaignResult a = run_kp_campaign(cfg);
  const CampaignResult b = run_kp_campaign(cfg);
  for (unsigned m = 0; m < kNumFaultModels; ++m) {
    EXPECT_EQ(a.models[m].injected, b.models[m].injected);
    for (unsigned p = 0; p < kNumProfiles; ++p) {
      const OutcomeTally& ta = a.models[m].per_profile[p];
      const OutcomeTally& tb = b.models[m].per_profile[p];
      EXPECT_EQ(ta.correct, tb.correct);
      EXPECT_EQ(ta.detected, tb.detected);
      EXPECT_EQ(ta.crashed, tb.crashed);
      EXPECT_EQ(ta.silent, tb.silent);
    }
  }
}

TEST(Campaign, ProtectionEliminatesSilentCorruption) {
  CampaignConfig cfg;
  cfg.runs_per_model = 20;
  const CampaignResult res = run_kp_campaign(cfg);
  bool saw_silent_unprotected = false;
  for (unsigned m = 0; m < kNumFaultModels; ++m) {
    const auto& profiles = res.models[m].per_profile;
    // Every run lands in exactly one bucket, for every profile.
    for (unsigned p = 0; p < kNumProfiles; ++p) {
      EXPECT_EQ(profiles[p].total(), res.models[m].runs);
    }
    // Crash/correct classification is profile-independent.
    for (unsigned p = 1; p < kNumProfiles; ++p) {
      EXPECT_EQ(profiles[p].crashed, profiles[0].crashed);
      EXPECT_EQ(profiles[p].correct, profiles[0].correct);
    }
    if (profiles[0].silent > 0) saw_silent_unprotected = true;
    // Full protection: nothing silent.
    EXPECT_EQ(profiles[kNumProfiles - 1].silent, 0u)
        << fault_model_name(res.models[m].model);
  }
  EXPECT_TRUE(saw_silent_unprotected);
}

TEST(Campaign, ProfileCostsAreMonotone) {
  CampaignConfig cfg;
  cfg.runs_per_model = 1;
  const CampaignResult res = run_kp_campaign(cfg);
  for (unsigned p = 1; p < kNumProfiles; ++p) {
    EXPECT_GE(res.costs[p].cycles, res.costs[p - 1].cycles);
    EXPECT_GE(res.costs[p].energy_uj, res.costs[p - 1].energy_uj);
  }
  // The order check costs a second scalar multiplication, clearly more
  // than the polynomial-evaluation rechecks.
  EXPECT_GT(res.costs[3].cycles, res.costs[2].cycles);
  EXPECT_GT(res.costs[0].cycles, 1'000'000u);  // a real kP, not a stub
}

}  // namespace
}  // namespace eccm0::faultsim
