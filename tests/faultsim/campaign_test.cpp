// The fault-injection engine: deterministic seeded injection on the
// armvm core, and the kP campaign's classification invariants.
#include <gtest/gtest.h>

#include <string>

#include "armvm/asm.h"
#include "asmkernels/gen.h"
#include "faultsim/biterr.h"
#include "faultsim/campaign.h"
#include "faultsim/inject.h"
#include "gf2/k233.h"

namespace eccm0::faultsim {
namespace {

constexpr std::size_t kRamSize = 0x800;

armvm::ProgramRef mul_program() {
  return armvm::assemble(asmkernels::gen_mul_fixed(true));
}

void write_operands(armvm::Memory& mem) {
  gf2::k233::Fe x{}, y{};
  Rng rng(0xFEED);
  for (auto& w : x) w = rng.next_word();
  for (auto& w : y) w = rng.next_word();
  x[7] &= 0x1FF;
  y[7] &= 0x1FF;
  mem.write_words(armvm::kRamBase + asmkernels::kXOff,
                  std::span<const std::uint32_t>(x.data(), x.size()));
  mem.write_words(armvm::kRamBase + asmkernels::kYOff,
                  std::span<const std::uint32_t>(y.data(), y.size()));
}

TEST(Inject, NoFaultWhenIndexBeyondRetirement) {
  const armvm::ProgramRef prog = mul_program();
  armvm::Memory mem(kRamSize);
  write_operands(mem);
  FaultSpec never;
  never.index = ~std::uint64_t{0};
  const InjectedRun run = run_with_fault(prog, mem, never);
  EXPECT_EQ(run.outcome, RunOutcome::kCompleted);
  EXPECT_FALSE(run.injected);
  EXPECT_GT(run.instructions, 100u);
}

TEST(Inject, SameSpecSameOutcomeBitForBit) {
  const armvm::ProgramRef prog = mul_program();
  auto run_once = [&](const FaultSpec& spec) {
    armvm::Memory mem(kRamSize);
    write_operands(mem);
    const InjectedRun run = run_with_fault(prog, mem, spec);
    // Fold the result words in so value corruption is part of the
    // fingerprint, not just control flow.
    std::string fp = std::to_string(static_cast<int>(run.outcome)) + ":" +
                     std::to_string(run.instructions) + ":" +
                     std::to_string(run.cycles) + ":" + run.fault_message;
    if (run.outcome == RunOutcome::kCompleted) {
      for (std::uint32_t w :
           mem.read_words(armvm::kRamBase + asmkernels::kVOff, 8)) {
        fp += "," + std::to_string(w);
      }
    }
    return fp;
  };
  Rng rng(123);
  for (const FaultModel m :
       {FaultModel::kRegisterFlip, FaultModel::kRamFlip,
        FaultModel::kInstructionSkip, FaultModel::kOpcodeFlip}) {
    for (int i = 0; i < 10; ++i) {
      const FaultSpec spec = sample_spec(rng, m, 1500, 0xA0);
      EXPECT_EQ(run_once(spec), run_once(spec))
          << fault_model_name(m) << " spec not deterministic";
    }
  }
}

TEST(Inject, SampleSpecIsSeedDeterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 50; ++i) {
    const FaultSpec sa = sample_spec(a, FaultModel::kRamFlip, 1000, 160);
    const FaultSpec sb = sample_spec(b, FaultModel::kRamFlip, 1000, 160);
    EXPECT_EQ(sa.index, sb.index);
    EXPECT_EQ(sa.ram_word, sb.ram_word);
    EXPECT_EQ(sa.bit, sb.bit);
    EXPECT_LT(sa.index, 1000u);
    EXPECT_LT(sa.ram_word, 160u);
    EXPECT_LT(sa.bit, 32u);
  }
}

TEST(Inject, RegisterFlipOfPcCrashesWithTypedFault) {
  const armvm::ProgramRef prog = mul_program();
  armvm::Memory mem(kRamSize);
  write_operands(mem);
  FaultSpec spec;
  spec.model = FaultModel::kRegisterFlip;
  spec.index = 10;
  spec.reg = 15;  // PC
  spec.bit = 0;   // odd PC => alignment fault
  const InjectedRun run = run_with_fault(prog, mem, spec);
  ASSERT_EQ(run.outcome, RunOutcome::kCrashed);
  EXPECT_TRUE(run.injected);
  EXPECT_EQ(run.fault_kind, armvm::FaultKind::kAlignmentFault);
  EXPECT_EQ(run.fault_message, "Cpu: odd PC");
}

TEST(Inject, ForkFromCheckpointMatchesReplayFromReset) {
  // For many specs at the same trigger index, a campaign can pay the
  // clean prefix once (checkpoint_at) and fork — the forked run must be
  // bit-identical to replaying from reset: outcome, instruction and
  // cycle counts, crash details, and the result words.
  const armvm::ProgramRef prog = mul_program();
  Rng rng(0xF02C);
  for (const FaultModel model :
       {FaultModel::kRegisterFlip, FaultModel::kRamFlip,
        FaultModel::kInstructionSkip, FaultModel::kOpcodeFlip}) {
    for (int i = 0; i < 6; ++i) {
      const FaultSpec spec = sample_spec(rng, model, 1500, 0xA0);

      armvm::Memory replay_mem(kRamSize);
      write_operands(replay_mem);
      const InjectedRun replay = run_with_fault(prog, replay_mem, spec);

      armvm::Memory fork_mem(kRamSize);
      write_operands(fork_mem);
      const armvm::MachineSnapshot at =
          checkpoint_at(prog, fork_mem, spec.index);
      const InjectedRun forked =
          run_with_fault_forked(prog, fork_mem, at, spec);

      EXPECT_EQ(forked.outcome, replay.outcome) << fault_model_name(model);
      EXPECT_EQ(forked.injected, replay.injected);
      EXPECT_EQ(forked.instructions, replay.instructions);
      EXPECT_EQ(forked.cycles, replay.cycles);
      EXPECT_EQ(forked.fault_message, replay.fault_message);
      if (replay.outcome == RunOutcome::kCompleted) {
        EXPECT_EQ(fork_mem.read_words(armvm::kRamBase + asmkernels::kVOff, 8),
                  replay_mem.read_words(armvm::kRamBase + asmkernels::kVOff,
                                        8));
      }
    }
  }
}

TEST(Inject, OneCheckpointServesManySpecs) {
  // The point of forking: one prefix, several different faults.
  const armvm::ProgramRef prog = mul_program();
  constexpr std::uint64_t kIndex = 700;
  armvm::Memory mem(kRamSize);
  write_operands(mem);
  const armvm::MachineSnapshot at = checkpoint_at(prog, mem, kIndex);

  Rng rng(0xA11);
  for (int i = 0; i < 4; ++i) {
    FaultSpec spec = sample_spec(rng, FaultModel::kRegisterFlip, 1, 0xA0);
    spec.index = kIndex;

    armvm::Memory fork_mem(kRamSize);
    const InjectedRun forked = run_with_fault_forked(prog, fork_mem, at, spec);

    armvm::Memory replay_mem(kRamSize);
    write_operands(replay_mem);
    const InjectedRun replay = run_with_fault(prog, replay_mem, spec);

    EXPECT_EQ(forked.outcome, replay.outcome);
    EXPECT_EQ(forked.instructions, replay.instructions);
    EXPECT_EQ(forked.cycles, replay.cycles);
  }
}

TEST(Campaign, ThreadCountDoesNotChangeTheTally) {
  CampaignConfig cfg;
  cfg.seed = 0x7E57;
  cfg.runs_per_model = 8;
  cfg.threads = 1;
  const CampaignResult serial = run_kp_campaign(cfg);
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const CampaignResult par = run_kp_campaign(cfg);
    for (unsigned m = 0; m < kNumFaultModels; ++m) {
      EXPECT_EQ(par.models[m].injected, serial.models[m].injected)
          << threads << " threads";
      for (unsigned p = 0; p < kNumProfiles; ++p) {
        const OutcomeTally& ts = serial.models[m].per_profile[p];
        const OutcomeTally& tp = par.models[m].per_profile[p];
        EXPECT_EQ(tp.correct, ts.correct);
        EXPECT_EQ(tp.detected, ts.detected);
        EXPECT_EQ(tp.crashed, ts.crashed);
        EXPECT_EQ(tp.silent, ts.silent);
      }
    }
  }
}

TEST(Campaign, DeterministicAcrossRuns) {
  CampaignConfig cfg;
  cfg.seed = 0xD5EED;
  cfg.runs_per_model = 12;
  const CampaignResult a = run_kp_campaign(cfg);
  const CampaignResult b = run_kp_campaign(cfg);
  for (unsigned m = 0; m < kNumFaultModels; ++m) {
    EXPECT_EQ(a.models[m].injected, b.models[m].injected);
    for (unsigned p = 0; p < kNumProfiles; ++p) {
      const OutcomeTally& ta = a.models[m].per_profile[p];
      const OutcomeTally& tb = b.models[m].per_profile[p];
      EXPECT_EQ(ta.correct, tb.correct);
      EXPECT_EQ(ta.detected, tb.detected);
      EXPECT_EQ(ta.crashed, tb.crashed);
      EXPECT_EQ(ta.silent, tb.silent);
    }
  }
}

TEST(Campaign, ProtectionEliminatesSilentCorruption) {
  CampaignConfig cfg;
  cfg.runs_per_model = 20;
  const CampaignResult res = run_kp_campaign(cfg);
  bool saw_silent_unprotected = false;
  for (unsigned m = 0; m < kNumFaultModels; ++m) {
    const auto& profiles = res.models[m].per_profile;
    // Every run lands in exactly one bucket, for every profile.
    for (unsigned p = 0; p < kNumProfiles; ++p) {
      EXPECT_EQ(profiles[p].total(), res.models[m].runs);
    }
    // Crash/correct classification is profile-independent.
    for (unsigned p = 1; p < kNumProfiles; ++p) {
      EXPECT_EQ(profiles[p].crashed, profiles[0].crashed);
      EXPECT_EQ(profiles[p].correct, profiles[0].correct);
    }
    if (profiles[0].silent > 0) saw_silent_unprotected = true;
    // Full protection: nothing silent.
    EXPECT_EQ(profiles[kNumProfiles - 1].silent, 0u)
        << fault_model_name(res.models[m].model);
  }
  EXPECT_TRUE(saw_silent_unprotected);
}

TEST(BitErrors, InjectionIsSeedDeterministic) {
  auto storage_fingerprint = [](const armvm::Memory& mem) {
    std::string fp;
    for (std::uint8_t b : mem.bytes()) fp += static_cast<char>(b);
    for (std::uint8_t b : mem.check_bytes()) fp += static_cast<char>(b);
    return fp;
  };
  for (const auto kind : {armvm::MemModelKind::kRaw,
                          armvm::MemModelKind::kParity,
                          armvm::MemModelKind::kSecded}) {
    armvm::Memory a(kRamSize, armvm::MemModelConfig::for_kind(kind));
    armvm::Memory b(kRamSize, armvm::MemModelConfig::for_kind(kind));
    write_operands(a);
    write_operands(b);
    Rng ra(0xB17E44), rb(0xB17E44);
    const BitErrorStats sa = inject_bit_errors(a, 1e-3, ra);
    const BitErrorStats sb = inject_bit_errors(b, 1e-3, rb);
    EXPECT_EQ(sa.flipped_bits, sb.flipped_bits);
    EXPECT_EQ(sa.words_touched, sb.words_touched);
    EXPECT_EQ(storage_fingerprint(a), storage_fingerprint(b))
        << armvm::mem_model_name(kind);
    // The injector sees the model's physical storage width.
    EXPECT_EQ(sa.storage_bits,
              (kRamSize / 4) * a.storage_bits_per_word());
    EXPECT_GT(sa.flipped_bits, 0u);
  }
  // Every storage bit is an independent draw, so the seed consumption
  // is fixed: two different BERs flip different bits but leave the RNG
  // at the same position.
  Rng r1(7), r2(7);
  armvm::Memory m1(kRamSize, armvm::MemModelConfig::secded());
  armvm::Memory m2(kRamSize, armvm::MemModelConfig::secded());
  (void)inject_bit_errors(m1, 1e-5, r1);
  (void)inject_bit_errors(m2, 1e-2, r2);
  EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

TEST(MemCampaign, ThreadCountDoesNotChangeTheTally) {
  MemCampaignConfig cfg;
  cfg.seed = 0x5EC0;
  cfg.runs_per_cell = 6;
  cfg.bers = {1e-4, 1e-3};
  cfg.scrub_interval = 64;
  cfg.threads = 1;
  const MemCampaignResult serial = run_mem_campaign(cfg);
  cfg.threads = 3;
  const MemCampaignResult par = run_mem_campaign(cfg);
  ASSERT_EQ(serial.models.size(), par.models.size());
  for (std::size_t m = 0; m < serial.models.size(); ++m) {
    const MemModelReport& s = serial.models[m];
    const MemModelReport& p = par.models[m];
    EXPECT_EQ(s.clean_cycles, p.clean_cycles);
    ASSERT_EQ(s.cells.size(), p.cells.size());
    for (std::size_t c = 0; c < s.cells.size(); ++c) {
      EXPECT_EQ(s.cells[c].flipped_bits, p.cells[c].flipped_bits);
      EXPECT_EQ(s.cells[c].hw_corrections, p.cells[c].hw_corrections);
      EXPECT_EQ(s.cells[c].scrub_corrections, p.cells[c].scrub_corrections);
      EXPECT_EQ(s.cells[c].per_profile, p.cells[c].per_profile);
    }
  }
}

TEST(MemCampaign, ClassificationInvariants) {
  MemCampaignConfig cfg;
  cfg.runs_per_cell = 12;
  cfg.bers = {1e-4, 1e-3};
  cfg.scrub_interval = 1024;
  const MemCampaignResult res = run_mem_campaign(cfg);
  ASSERT_EQ(res.models.size(), 3u);
  const MemModelReport& raw = res.models[0];
  const MemModelReport& parity = res.models[1];
  const MemModelReport& secded = res.models[2];

  for (const MemModelReport& rep : res.models) {
    for (const MemCell& cell : rep.cells) {
      for (unsigned p = 0; p < kNumProfiles; ++p) {
        // Every run lands in exactly one bucket, for every profile.
        EXPECT_EQ(cell.per_profile[p].total(), cfg.runs_per_cell);
        // Stronger software profiles never increase silent corruption.
        if (p > 0) {
          EXPECT_LE(cell.per_profile[p].silent, cell.per_profile[0].silent);
        }
      }
    }
  }
  // Raw storage cannot correct or hardware-detect anything.
  for (const MemCell& cell : raw.cells) {
    EXPECT_EQ(cell.hw_corrections, 0u);
    EXPECT_EQ(cell.scrub_corrections, 0u);
    EXPECT_EQ(cell.per_profile[0].corrected, 0u);
  }
  // Parity detects but never repairs.
  for (const MemCell& cell : parity.cells) {
    EXPECT_EQ(cell.hw_corrections, 0u);
    EXPECT_EQ(cell.per_profile[0].corrected, 0u);
  }
  // SECDED at these BERs: corrections happen, nothing slips through
  // silently even with no software countermeasures.
  std::uint64_t secded_fixes = 0;
  for (const MemCell& cell : secded.cells) {
    secded_fixes += cell.hw_corrections + cell.scrub_corrections;
    EXPECT_EQ(cell.per_profile[0].silent, 0u);
  }
  EXPECT_GT(secded_fixes, 0u);
  // The codeword overhead is real and ordered raw < parity < secded.
  EXPECT_LT(raw.clean_cycles, parity.clean_cycles);
  EXPECT_LT(parity.clean_cycles, secded.clean_cycles);
}

TEST(Campaign, PrimeCurveCampaignClassifiesAndIsThreadInvariant) {
  // The same campaign machinery on a prime-curve kP workload (Jacobian
  // wNAF on secp192r1, the VM Montgomery multiplier spliced in): every
  // run classified, tallies thread-count invariant, injections firing.
  CampaignConfig cfg;
  cfg.curve = "secp192r1";
  cfg.seed = 0x7E57;
  cfg.runs_per_model = 4;
  cfg.threads = 1;
  const CampaignResult serial = run_kp_campaign(cfg);
  std::uint64_t injected = 0;
  for (unsigned m = 0; m < kNumFaultModels; ++m) {
    injected += serial.models[m].injected;
    for (unsigned p = 0; p < kNumProfiles; ++p) {
      EXPECT_EQ(serial.models[m].per_profile[p].total(),
                serial.models[m].runs);
    }
  }
  EXPECT_GT(injected, 0u);
  // The profile-overhead column is priced with the prime cost model.
  EXPECT_GT(serial.costs[0].cycles, 0u);
  EXPECT_GT(serial.costs[kNumProfiles - 1].cycles, serial.costs[0].cycles);

  cfg.threads = 4;
  const CampaignResult par = run_kp_campaign(cfg);
  for (unsigned m = 0; m < kNumFaultModels; ++m) {
    EXPECT_EQ(par.models[m].injected, serial.models[m].injected);
    for (unsigned p = 0; p < kNumProfiles; ++p) {
      const OutcomeTally& ts = serial.models[m].per_profile[p];
      const OutcomeTally& tp = par.models[m].per_profile[p];
      EXPECT_EQ(tp.correct, ts.correct);
      EXPECT_EQ(tp.detected, ts.detected);
      EXPECT_EQ(tp.crashed, ts.crashed);
      EXPECT_EQ(tp.silent, ts.silent);
    }
  }
}

TEST(Campaign, UnknownCurveThrows) {
  CampaignConfig cfg;
  cfg.curve = "secp521r1";
  cfg.runs_per_model = 1;
  EXPECT_THROW(run_kp_campaign(cfg), std::invalid_argument);
  MemCampaignConfig mcfg;
  mcfg.curve = "sect571k1";
  EXPECT_THROW(run_mem_campaign(mcfg), std::invalid_argument);
}

TEST(MemCampaign, PrimeCurveSweepClassifiesEveryRun) {
  MemCampaignConfig cfg;
  cfg.curve = "secp192r1";
  cfg.runs_per_cell = 3;
  cfg.bers = {1e-4};
  cfg.models = {armvm::MemModelKind::kRaw, armvm::MemModelKind::kParity};
  const MemCampaignResult res = run_mem_campaign(cfg);
  ASSERT_EQ(res.models.size(), 2u);
  for (const MemModelReport& rep : res.models) {
    EXPECT_GT(rep.clean_cycles, 0u);
    ASSERT_EQ(rep.cells.size(), 1u);
    for (unsigned p = 0; p < kNumProfiles; ++p) {
      EXPECT_EQ(rep.cells[0].per_profile[p].total(), cfg.runs_per_cell);
    }
  }
  // Parity charges wait states the raw model does not.
  EXPECT_GT(res.models[1].clean_cycles, res.models[0].clean_cycles);
}

TEST(Campaign, ProfileCostsAreMonotone) {
  CampaignConfig cfg;
  cfg.runs_per_model = 1;
  const CampaignResult res = run_kp_campaign(cfg);
  for (unsigned p = 1; p < kNumProfiles; ++p) {
    EXPECT_GE(res.costs[p].cycles, res.costs[p - 1].cycles);
    EXPECT_GE(res.costs[p].energy_uj, res.costs[p - 1].energy_uj);
  }
  // The order check costs a second scalar multiplication, clearly more
  // than the polynomial-evaluation rechecks.
  EXPECT_GT(res.costs[3].cycles, res.costs[2].cycles);
  EXPECT_GT(res.costs[0].cycles, 1'000'000u);  // a real kP, not a stub
}

}  // namespace
}  // namespace eccm0::faultsim
