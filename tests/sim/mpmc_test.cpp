// MpmcQueue invariants: capacity rounding, bounded full/empty behavior,
// FIFO per producer, no lost or duplicated items under multi-producer/
// multi-consumer stress, and close() waking blocked consumers. The
// stress tests are the TSan targets for the serve queue (ci.yml runs
// this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "sim/mpmc_queue.h"

namespace eccm0::sim {
namespace {

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwoMinimumTwo) {
  // Minimum 2: a 1-cell ring cannot tell "pushed, unconsumed" (count
  // pos+1) apart from "ready for the next producer ticket" (pos+cap).
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(MpmcQueue<int>(65).capacity(), 128u);
}

TEST(MpmcQueue, EmptyPopFailsFullPushFails) {
  MpmcQueue<int> q(4);
  int v = -1;
  EXPECT_FALSE(q.try_pop(v));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99)) << "queue at capacity must refuse";
  EXPECT_EQ(q.size_approx(), 4u);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_push(4)) << "pop must free a slot";
}

// Regression: on the smallest ring, a push into the slot just freed by
// a pop must not overwrite the still-unconsumed neighbor (the failure
// mode that forced the minimum capacity to 2).
TEST(MpmcQueue, SmallestRingInterleavedPushPop) {
  MpmcQueue<int> q(1);
  int v = -1;
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(q.try_push(3 * round));
    ASSERT_TRUE(q.try_pop(v));
    ASSERT_EQ(v, 3 * round);
    ASSERT_TRUE(q.try_push(3 * round + 1));
    ASSERT_TRUE(q.try_push(3 * round + 2));
    ASSERT_FALSE(q.try_push(-1)) << "capacity 2 must refuse a third";
    ASSERT_TRUE(q.try_pop(v));
    ASSERT_EQ(v, 3 * round + 1);
    ASSERT_TRUE(q.try_pop(v));
    ASSERT_EQ(v, 3 * round + 2);
    ASSERT_FALSE(q.try_pop(v));
  }
}

TEST(MpmcQueue, SerialFifo) {
  MpmcQueue<int> q(8);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(round * 8 + i));
    for (int i = 0; i < 8; ++i) {
      int v = -1;
      EXPECT_TRUE(q.try_pop(v));
      EXPECT_EQ(v, round * 8 + i);
    }
  }
}

// Each producer pushes an increasing sequence tagged with its id; a
// single consumer must see every producer's items in their push order.
TEST(MpmcQueue, FifoPerProducer) {
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MpmcQueue<std::uint64_t> q(64);

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t item = (std::uint64_t{p} << 32) | i;
        while (!q.try_push(item)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next(kProducers, 0);
  for (std::uint64_t seen = 0; seen < kProducers * kPerProducer; ++seen) {
    std::uint64_t item = 0;
    while (!q.try_pop(item)) std::this_thread::yield();
    const unsigned p = static_cast<unsigned>(item >> 32);
    const std::uint64_t seq = item & 0xFFFFFFFFu;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next[p]) << "producer " << p << " reordered";
    next[p] = seq + 1;
  }
  for (std::thread& t : producers) t.join();
  std::uint64_t leftover;
  EXPECT_FALSE(q.try_pop(leftover));
}

// Full MPMC stress through pop_wait: every pushed item arrives at
// exactly one consumer — nothing lost, nothing duplicated.
TEST(MpmcQueue, MpmcStressNoLossNoDuplication) {
  constexpr unsigned kProducers = 4;
  constexpr unsigned kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  MpmcQueue<std::uint64_t> q(32);

  std::vector<std::vector<std::uint64_t>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (unsigned c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &received, c] {
      std::uint64_t item;
      while (q.pop_wait(item)) received[c].push_back(item);
    });
  }
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        while (!q.try_push((std::uint64_t{p} << 32) | i)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.close();
  for (std::thread& t : consumers) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), kTotal);
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
      << "duplicated item";
  // Sorted and unique with the right count == exactly the pushed set.
  for (unsigned p = 0; p < kProducers; ++p) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(all[p * kPerProducer + i], (std::uint64_t{p} << 32) | i);
    }
  }
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  MpmcQueue<int> q(4);
  std::atomic<int> done{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&q, &done] {
      int v;
      while (q.pop_wait(v)) {
      }
      done.fetch_add(1);
    });
  }
  // Give the consumers a moment to block in pop_wait, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(done.load(), 3);
  EXPECT_TRUE(q.closed());
}

TEST(MpmcQueue, CloseDrainsRemainingItems) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  q.close();
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.pop_wait(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop_wait(v)) << "closed and drained must report false";
}

// close() is the producer barrier: a push that starts after close must
// fail (so the server's session thread can answer `shutting_down`),
// while items admitted before close are still drained.
TEST(MpmcQueue, PushAfterCloseFails) {
  MpmcQueue<int> q(4);
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8)) << "closed queue must reject new work";
  int v = -1;
  EXPECT_TRUE(q.pop_wait(v)) << "pre-close item must still drain";
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(q.pop_wait(v));
}

// Regression for the pop_wait lost-wakeup race: with exactly one
// request outstanding at a time, a push that lands between the
// consumer's failed try_pop and its version wait must still wake it.
// Before the fix (version snapshot taken AFTER the failed pop), the
// consumer could sleep through the only notify and this test would
// hang: the producer never pushes again until the item is consumed.
TEST(MpmcQueue, SingleOutstandingHandoffNeverLosesWakeup) {
  MpmcQueue<int> q(2);
  constexpr int kRounds = 5000;
  std::atomic<int> popped{0};
  std::thread consumer([&q, &popped] {
    int v;
    while (q.pop_wait(v)) popped.fetch_add(1);
  });
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(q.try_push(i));
    while (popped.load() <= i) std::this_thread::yield();
  }
  q.close();
  consumer.join();
  EXPECT_EQ(popped.load(), kRounds);
}

}  // namespace
}  // namespace eccm0::sim
