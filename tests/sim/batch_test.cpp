// BatchExecutor invariants: full coverage of the index space, results
// independent of thread count, and serial-equivalent error reporting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "sim/batch.h"

namespace eccm0::sim {
namespace {

TEST(BatchExecutor, ForEachCoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    BatchExecutor pool(threads);
    constexpr std::uint64_t kN = 257;  // deliberately not a multiple
    std::vector<std::atomic<int>> hits(kN);
    pool.for_each(kN, [&](std::uint64_t i) { ++hits[i]; });
    for (std::uint64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(BatchExecutor, MapIsThreadCountInvariant) {
  // Each task derives its value purely from its index via a split RNG
  // stream — the executor must return identical vectors for any pool.
  const Rng base(0xBA7C4);
  auto task = [&](std::uint64_t i) { return Rng(base).split(i).next_u64(); };
  const std::vector<std::uint64_t> serial =
      BatchExecutor(1).map<std::uint64_t>(100, task);
  for (unsigned threads : {2u, 3u, 8u}) {
    EXPECT_EQ(BatchExecutor(threads).map<std::uint64_t>(100, task), serial)
        << threads << " threads";
  }
}

TEST(BatchExecutor, ZeroThreadsMeansHardwareConcurrency) {
  EXPECT_GE(BatchExecutor(0).threads(), 1u);
  EXPECT_EQ(BatchExecutor(1).threads(), 1u);
  EXPECT_EQ(BatchExecutor(5).threads(), 5u);
}

TEST(BatchExecutor, EmptyBatchIsANoop) {
  BatchExecutor pool(4);
  pool.for_each(0, [](std::uint64_t) { FAIL() << "no tasks expected"; });
  EXPECT_TRUE(pool.map<int>(0, [](std::uint64_t) { return 1; }).empty());
}

TEST(BatchExecutor, RethrowsLowestIndexException) {
  // Several tasks throw; the surfaced error must be the lowest index's,
  // exactly what a serial loop would have hit first.
  for (unsigned threads : {1u, 4u}) {
    BatchExecutor pool(threads);
    try {
      pool.for_each(64, [](std::uint64_t i) {
        if (i % 10 == 3) {  // 3, 13, 23, ...
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3");
    }
  }
}

TEST(BatchExecutor, RngSplitStreamsAreDecorrelatedAndStable) {
  // split(i) is a pure function of (state, i): same child twice, and
  // distinct children for distinct ids.
  const Rng parent(0x5EED);
  const std::uint64_t a0 = Rng(parent).split(0).next_u64();
  const std::uint64_t a0_again = Rng(parent).split(0).next_u64();
  EXPECT_EQ(a0, a0_again);
  const std::uint64_t a1 = Rng(parent).split(1).next_u64();
  EXPECT_NE(a0, a1);
  // Child streams must not collide with the parent's own sequence.
  Rng p2(parent);
  EXPECT_NE(p2.next_u64(), a0);
}

}  // namespace
}  // namespace eccm0::sim
