// The workloads layer: registry caching/sharing semantics, the shared
// kP kernel mix, and KernelMachine contexts over shared images.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "asmkernels/gen.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"
#include "workloads/spec.h"

namespace eccm0::workloads {
namespace {

TEST(Registry, CachesOneImagePerKernel) {
  // Two lookups return the SAME shared image, not two assemblies.
  const armvm::ProgramRef a = kernel("mul");
  const armvm::ProgramRef b = kernel("mul");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GT(a->code().size(), 100u);
  EXPECT_NO_THROW(a->entry("entry"));
}

TEST(Registry, KnowsTheBuiltinKernels) {
  auto& reg = KernelRegistry::instance();
  for (const char* name : {"mul", "mul-raw", "mul-plain", "mul-plain-raw",
                           "sqr", "reduce", "lut", "inv", "mul163",
                           "mul163-raw", "mul163-plain", "mul163-plain-raw"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
  EXPECT_FALSE(reg.contains("nonesuch"));
  EXPECT_THROW(kernel("nonesuch"), std::out_of_range);
  // names() lists every builtin (and any registered extras).
  const auto names = reg.names();
  const std::set<std::string> set(names.begin(), names.end());
  EXPECT_TRUE(set.count("mul"));
  EXPECT_TRUE(set.count("inv"));
}

TEST(Registry, RejectsDuplicateRegistration) {
  EXPECT_THROW(
      KernelRegistry::instance().add("mul", [] { return std::string(); }),
      std::invalid_argument);
  // Prime entries are just as protected as the historical binary names.
  EXPECT_THROW(
      KernelRegistry::instance().add("p192-mont",
                                     [] { return std::string(); }),
      std::invalid_argument);
}

TEST(Registry, NamesAreSortedAndCurveTagged) {
  auto& reg = KernelRegistry::instance();
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // 12 binary + 15 prime builtins (plus any test-registered extras).
  EXPECT_GE(names.size(), 27u);
  for (const auto& [tag, limbs] : std::vector<std::pair<std::string, unsigned>>{
           {"p192", 6u}, {"p224", 7u}, {"p256", 8u}}) {
    for (const char* suffix : {"-mul", "-mont", "-sqr", "-redc", "-inv"}) {
      const std::string name = tag + suffix;
      ASSERT_TRUE(reg.contains(name)) << name;
      const KernelInfo info = reg.info(name);
      EXPECT_FALSE(info.binary_field) << name;
      EXPECT_EQ(info.limbs, limbs) << name;
      EXPECT_EQ(info.curve.substr(0, 4), "secp") << name;
    }
  }
  EXPECT_TRUE(reg.info("mul").binary_field);
  EXPECT_EQ(reg.info("mul").curve, "sect233k1");
  EXPECT_THROW(reg.info("nonesuch"), std::out_of_range);
}

TEST(Registry, ConcurrentLookupsShareOneImage) {
  // Hammer the lazy-build path from several threads; every thread must
  // see the same pointer.
  std::vector<std::thread> threads;
  std::vector<const armvm::Program*> seen(8, nullptr);
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back([t, &seen] { seen[t] = kernel("mul163").get(); });
  }
  for (auto& th : threads) th.join();
  for (unsigned t = 1; t < 8; ++t) EXPECT_EQ(seen[t], seen[0]);
}

TEST(Registry, ConcurrentColdGetBuildsExactlyOnce) {
  // A freshly registered kernel is guaranteed cold (no other test can
  // have resolved it), so every thread races the first build. The
  // builder must run exactly once and all threads must see one image.
  static std::atomic<int> builds{0};
  KernelRegistry::instance().add(
      "test-cold-p192",
      [] {
        builds.fetch_add(1);
        return asmkernels::gen_prime_mul(6);
      },
      {"secp192r1", false, 6});
  std::vector<std::thread> threads;
  std::vector<const armvm::Program*> seen(8, nullptr);
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back(
        [t, &seen] { seen[t] = kernel("test-cold-p192").get(); });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  for (unsigned t = 0; t < 8; ++t) {
    ASSERT_NE(seen[t], nullptr);
    EXPECT_EQ(seen[t], seen[0]);
  }
}

TEST(Spec, CurveFromNameKnowsAllFourAndRejectsTheRest) {
  const auto names = workload_curve_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names.size(), 4u);
  for (const char* n :
       {"secp192r1", "secp224r1", "secp256r1", "sect233k1"}) {
    const CurveRef& c = curve_from_name(n);
    EXPECT_EQ(c.name, n);
    EXPECT_GE(c.limbs, 6u);
  }
  EXPECT_FALSE(curve_from_name("secp256r1").binary_field);
  EXPECT_TRUE(curve_from_name("sect233k1").binary_field);
  try {
    (void)curve_from_name("secp521r1");
    FAIL() << "unknown curve accepted";
  } catch (const std::invalid_argument& e) {
    // The message must list the accepted names (the exit-2 usage text).
    EXPECT_NE(std::string(e.what()).find("sect233k1"), std::string::npos);
  }
  EXPECT_THROW(make_workload("keygen", "sect233k1"), std::invalid_argument);
}

TEST(KpMix, IsCachedAndPlausible) {
  const ec::FieldOpCounts& ops = kp_mix_sect233k1();
  EXPECT_EQ(&ops, &kp_mix_sect233k1());  // one cached derivation
  // One wTNAF w=4 kP on a 233-bit scalar: hundreds of muls, hundreds of
  // sqrs, a single final inversion (plus the table build's).
  EXPECT_GT(ops.mul, 100u);
  EXPECT_GT(ops.sqr, 100u);
  EXPECT_GE(ops.inv, 1u);
  EXPECT_LT(ops.inv, 10u);
}

TEST(KpMix, StandardOperandsAreInField) {
  const KernelOperands& od = KernelOperands::standard();
  EXPECT_EQ(&od, &KernelOperands::standard());
  EXPECT_LE(od.x[7], 0x1FFu);
  EXPECT_LE(od.y[7], 0x1FFu);
  EXPECT_LE(od.a[7], 0x1FFu);
  EXPECT_EQ(od.a[0] & 1u, 1u);  // nonzero inversion input
}

TEST(KernelMachine, ContextsOverOneImageAreIndependent) {
  KernelMachine m1("mul");
  KernelMachine m2("mul");
  EXPECT_EQ(&m1.prog(), &m2.prog());  // shared image

  const KernelOperands& od = KernelOperands::standard();
  load_mul_inputs(m1.mem(), od.x, od.y);
  load_mul_inputs(m2.mem(), od.x, od.y);
  const armvm::RunStats s1 = m1.call();
  const armvm::RunStats s2 = m2.call();
  EXPECT_EQ(s1.cycles, s2.cycles);
  EXPECT_EQ(s1.instructions, s2.instructions);
  // Same inputs, same outputs, in private RAMs.
  for (int w = 0; w < 8; ++w) {
    EXPECT_EQ(m1.mem().load32(armvm::kRamBase + asmkernels::kVOff + 4 * w),
              m2.mem().load32(armvm::kRamBase + asmkernels::kVOff + 4 * w));
  }
}

}  // namespace
}  // namespace eccm0::workloads
