// Point-arithmetic laws, and consistency of the projective (LD) formulas
// with the affine oracle, across all named curves.
#include "ec/ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ec/scalarmul.h"

namespace eccm0::ec {
namespace {

class OpsTest : public ::testing::TestWithParam<const BinaryCurve*> {
 protected:
  OpsTest() : ops_(*GetParam()), g_(AffinePoint::make(GetParam()->gx, GetParam()->gy)) {}

  /// A pseudorandom curve point: small multiple of G.
  AffinePoint random_point(Rng& rng) {
    return mul_naive(ops_, g_, mpint::UInt{1 + rng.next_below(1000)});
  }

  CurveOps ops_;
  AffinePoint g_;
};

TEST_P(OpsTest, NegationInvolutive) {
  Rng rng(1);
  const AffinePoint p = random_point(rng);
  EXPECT_EQ(ops_.neg(ops_.neg(p)), p);
  EXPECT_TRUE(ops_.on_curve(ops_.neg(p)));
}

TEST_P(OpsTest, AddNegGivesInfinity) {
  Rng rng(2);
  const AffinePoint p = random_point(rng);
  EXPECT_TRUE(ops_.add(p, ops_.neg(p)).inf);
}

TEST_P(OpsTest, InfinityIsIdentity) {
  Rng rng(3);
  const AffinePoint p = random_point(rng);
  const AffinePoint inf = AffinePoint::infinity();
  EXPECT_EQ(ops_.add(p, inf), p);
  EXPECT_EQ(ops_.add(inf, p), p);
  EXPECT_TRUE(ops_.dbl(inf).inf);
  EXPECT_TRUE(ops_.neg(inf).inf);
}

TEST_P(OpsTest, AdditionCommutative) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const AffinePoint p = random_point(rng);
    const AffinePoint q = random_point(rng);
    EXPECT_EQ(ops_.add(p, q), ops_.add(q, p));
  }
}

TEST_P(OpsTest, AdditionAssociative) {
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const AffinePoint p = random_point(rng);
    const AffinePoint q = random_point(rng);
    const AffinePoint r = random_point(rng);
    EXPECT_EQ(ops_.add(ops_.add(p, q), r), ops_.add(p, ops_.add(q, r)));
  }
}

TEST_P(OpsTest, ClosureUnderAddAndDouble) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const AffinePoint p = random_point(rng);
    const AffinePoint q = random_point(rng);
    EXPECT_TRUE(ops_.on_curve(ops_.add(p, q)));
    EXPECT_TRUE(ops_.on_curve(ops_.dbl(p)));
  }
}

TEST_P(OpsTest, DoubleEqualsSelfAdd) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const AffinePoint p = random_point(rng);
    EXPECT_EQ(ops_.dbl(p), ops_.add(p, p));
  }
}

TEST_P(OpsTest, LdRoundTrip) {
  Rng rng(8);
  const AffinePoint p = random_point(rng);
  EXPECT_EQ(ops_.to_affine(ops_.to_ld(p)), p);
  EXPECT_TRUE(ops_.to_affine(LDPoint::infinity()).inf);
}

TEST_P(OpsTest, LdDoubleMatchesAffine) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    const AffinePoint p = random_point(rng);
    LDPoint q = ops_.to_ld(p);
    ops_.ld_double(q);
    EXPECT_EQ(ops_.to_affine(q), ops_.dbl(p));
  }
}

TEST_P(OpsTest, LdDoubleWithNonTrivialZ) {
  // Exercise doubling where Z != 1 by chaining two doublings.
  Rng rng(10);
  const AffinePoint p = random_point(rng);
  LDPoint q = ops_.to_ld(p);
  ops_.ld_double(q);
  ops_.ld_double(q);
  EXPECT_EQ(ops_.to_affine(q), ops_.dbl(ops_.dbl(p)));
}

TEST_P(OpsTest, MixedAddMatchesAffine) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const AffinePoint p = random_point(rng);
    const AffinePoint q = random_point(rng);
    LDPoint acc = ops_.to_ld(p);
    ops_.ld_double(acc);  // make Z non-trivial
    ops_.ld_add_mixed(acc, q);
    EXPECT_EQ(ops_.to_affine(acc), ops_.add(ops_.dbl(p), q));
  }
}

TEST_P(OpsTest, MixedAddSpecialCases) {
  Rng rng(12);
  const AffinePoint p = random_point(rng);
  // P + (-P) = infinity through the projective path.
  LDPoint acc = ops_.to_ld(p);
  ops_.ld_double(acc);
  const AffinePoint d = ops_.dbl(p);
  ops_.ld_add_mixed(acc, ops_.neg(d));
  EXPECT_TRUE(ops_.to_affine(acc).inf);
  // P + P = 2P through the projective path (B == 0, A == 0 branch).
  acc = ops_.to_ld(p);
  ops_.ld_add_mixed(acc, p);
  EXPECT_EQ(ops_.to_affine(acc), d);
  // infinity + Q
  acc = LDPoint::infinity();
  ops_.ld_add_mixed(acc, p);
  EXPECT_EQ(ops_.to_affine(acc), p);
  // Q + infinity
  acc = ops_.to_ld(p);
  ops_.ld_add_mixed(acc, AffinePoint::infinity());
  EXPECT_EQ(ops_.to_affine(acc), p);
}

TEST_P(OpsTest, OpCountsOfLdFormulas) {
  // The paper's coordinate choice is motivated by these costs: mixed add
  // is 8M + 5S and doubling 3-4M + 5S for a in {0,1}.
  Rng rng(13);
  const AffinePoint p = random_point(rng);
  const AffinePoint q = random_point(rng);
  LDPoint acc = ops_.to_ld(p);
  ops_.ld_double(acc);  // non-trivial Z
  ops_.reset_counts();
  ops_.ld_add_mixed(acc, q);
  EXPECT_EQ(ops_.counts().mul, 8u);
  EXPECT_EQ(ops_.counts().sqr, 5u);
  EXPECT_EQ(ops_.counts().inv, 0u);
  ops_.reset_counts();
  ops_.ld_double(acc);
  EXPECT_LE(ops_.counts().mul, 4u);
  EXPECT_EQ(ops_.counts().sqr, 5u);
}

INSTANTIATE_TEST_SUITE_P(Curves, OpsTest,
                         ::testing::Values(&BinaryCurve::sect233k1(),
                                           &BinaryCurve::sect163k1(),
                                           &BinaryCurve::sect233r1()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

class KoblitzOpsTest : public ::testing::TestWithParam<const BinaryCurve*> {
 protected:
  KoblitzOpsTest()
      : ops_(*GetParam()),
        g_(AffinePoint::make(GetParam()->gx, GetParam()->gy)) {}
  CurveOps ops_;
  AffinePoint g_;
};

TEST_P(KoblitzOpsTest, FrobeniusStaysOnCurve) {
  EXPECT_TRUE(ops_.on_curve(ops_.frob(g_)));
}

TEST_P(KoblitzOpsTest, FrobeniusCharacteristicEquation) {
  // tau^2(P) - mu*tau(P) + 2P = infinity, i.e.
  // tau^2(P) + 2P = mu * tau(P).
  Rng rng(14);
  for (int i = 0; i < 5; ++i) {
    const AffinePoint p =
        mul_naive(ops_, g_, mpint::UInt{1 + rng.next_below(1000)});
    const AffinePoint t = ops_.frob(p);
    const AffinePoint t2 = ops_.frob(t);
    const AffinePoint lhs = ops_.add(t2, ops_.dbl(p));
    const AffinePoint rhs = ops_.curve().mu == 1 ? t : ops_.neg(t);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_P(KoblitzOpsTest, ProjectiveFrobeniusMatchesAffine) {
  LDPoint q = ops_.to_ld(g_);
  ops_.ld_double(q);
  const AffinePoint affine_before = ops_.to_affine(q);
  ops_.frob_inplace(q);
  EXPECT_EQ(ops_.to_affine(q), ops_.frob(affine_before));
}

INSTANTIATE_TEST_SUITE_P(Koblitz, KoblitzOpsTest,
                         ::testing::Values(&BinaryCurve::sect233k1(),
                                           &BinaryCurve::sect163k1()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

}  // namespace
}  // namespace eccm0::ec
