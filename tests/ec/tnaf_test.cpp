// Tau-adic ring laws, Solinas rounding, partial reduction and window-TNAF
// digit expansion.
#include "ec/tnaf.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eccm0::ec {
namespace {

using mpint::SInt;
using mpint::UInt;

ZTau random_ztau(Rng& rng, unsigned bits) {
  const UInt a = UInt::random_below(rng, UInt::pow2(bits));
  const UInt b = UInt::random_below(rng, UInt::pow2(bits));
  return {SInt{a, rng.next_below(2) == 0}, SInt{b, rng.next_below(2) == 0}};
}

class TauRingTest : public ::testing::TestWithParam<int> {
 protected:
  TauRingTest() : ring_(GetParam()) {}
  TauRing ring_;
};

TEST_P(TauRingTest, RingLaws) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const ZTau x = random_ztau(rng, 64);
    const ZTau y = random_ztau(rng, 64);
    const ZTau z = random_ztau(rng, 64);
    EXPECT_EQ(ring_.add(x, y), ring_.add(y, x));
    EXPECT_EQ(ring_.mul(x, y), ring_.mul(y, x));
    EXPECT_EQ(ring_.mul(ring_.mul(x, y), z), ring_.mul(x, ring_.mul(y, z)));
    EXPECT_EQ(ring_.mul(x, ring_.add(y, z)),
              ring_.add(ring_.mul(x, y), ring_.mul(x, z)));
    EXPECT_TRUE(ring_.sub(x, x).is_zero());
  }
}

TEST_P(TauRingTest, TauSatisfiesCharacteristicEquation) {
  // tau^2 - mu*tau + 2 = 0.
  const ZTau tau{SInt{0}, SInt{1}};
  const ZTau t2 = ring_.mul(tau, tau);
  const ZTau lhs =
      ring_.add(ring_.sub(t2, ring_.mul({SInt{GetParam()}, SInt{0}}, tau)),
                {SInt{2}, SInt{0}});
  EXPECT_TRUE(lhs.is_zero());
}

TEST_P(TauRingTest, NormIsMultiplicative) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const ZTau x = random_ztau(rng, 48);
    const ZTau y = random_ztau(rng, 48);
    EXPECT_EQ(ring_.norm(ring_.mul(x, y)), ring_.norm(x) * ring_.norm(y));
  }
}

TEST_P(TauRingTest, NormMatchesConjProduct) {
  Rng rng(3);
  const ZTau x = random_ztau(rng, 48);
  const ZTau p = ring_.mul(x, ring_.conj(x));
  EXPECT_EQ(p.a0, ring_.norm(x));
  EXPECT_TRUE(p.a1.is_zero());
}

TEST_P(TauRingTest, TauPowMatchesRepeatedMul) {
  const ZTau tau{SInt{0}, SInt{1}};
  ZTau acc{SInt{1}, SInt{0}};
  for (unsigned i = 0; i <= 12; ++i) {
    EXPECT_EQ(ring_.tau_pow(i), acc) << "i=" << i;
    acc = ring_.mul(acc, tau);
  }
}

TEST_P(TauRingTest, DivTauRoundTrip) {
  Rng rng(4);
  const ZTau tau{SInt{0}, SInt{1}};
  for (int i = 0; i < 20; ++i) {
    const ZTau x = random_ztau(rng, 64);
    const ZTau xt = ring_.mul(x, tau);
    EXPECT_TRUE(ring_.divisible_by_tau(xt));
    EXPECT_EQ(ring_.div_tau(xt), x);
  }
}

TEST_P(TauRingTest, DivExactRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const ZTau x = random_ztau(rng, 64);
    ZTau d = random_ztau(rng, 32);
    if (d.is_zero()) d = {SInt{1}, SInt{1}};
    EXPECT_EQ(ring_.div_exact(ring_.mul(x, d), d), x);
  }
}

TEST_P(TauRingTest, DivExactThrowsOnNonDivisible) {
  // tau does not divide 1.
  const ZTau one{SInt{1}, SInt{0}};
  const ZTau tau{SInt{0}, SInt{1}};
  EXPECT_THROW(ring_.div_exact(one, tau), std::domain_error);
}

TEST_P(TauRingTest, DivRoundRemainderHasSmallNorm) {
  // For q = round(x/d): N(x - q*d) < N(d) (in fact <= 4/7 N(d) with true
  // Voronoi rounding; we assert the division property that makes TNAF
  // terminate).
  Rng rng(6);
  for (int i = 0; i < 40; ++i) {
    const ZTau x = random_ztau(rng, 96);
    ZTau d = random_ztau(rng, 40);
    if (d.is_zero()) d = {SInt{3}, SInt{1}};
    const ZTau q = ring_.div_round(x, d);
    const ZTau r = ring_.sub(x, ring_.mul(q, d));
    EXPECT_TRUE(ring_.norm(r) < ring_.norm(d))
        << "remainder norm not reduced, i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Mus, TauRingTest, ::testing::Values(-1, 1),
                         [](const auto& info) {
                           return info.param == -1 ? "MuMinus1" : "MuPlus1";
                         });

TEST(TnafDelta, NormEqualsGroupOrderK233) {
  const TauRing ring(-1);
  const ZTau d = tnaf_delta(-1, 233);
  EXPECT_EQ(ring.norm(d).abs(),
            UInt::from_hex(
                "8000000000000000000000000000069D5BB915BCD46EFB1AD5F173ABDF"));
}

TEST(TauMod2w, SatisfiesCharacteristicCongruence) {
  // t_w^2 + 2 = mu * t_w (mod 2^w).
  for (int mu : {-1, 1}) {
    for (unsigned w : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
      const std::int64_t t = tau_mod_2w(mu, w);
      const std::int64_t mod = 1ll << w;
      EXPECT_EQ(((t * t + 2 - mu * t) % mod + mod) % mod, 0)
          << "mu=" << mu << " w=" << w;
      EXPECT_EQ(t % 2, 0) << "t_w must be even";
    }
  }
}

TEST(TauMod2w, KnownValueW4MuMinus1) { EXPECT_EQ(tau_mod_2w(-1, 4), 10u); }

TEST(AlphaReps, CongruentToUModTauW) {
  for (int mu : {-1, 1}) {
    for (unsigned w : {3u, 4u, 5u, 6u}) {
      const TauRing ring(mu);
      const ZTau tw = ring.tau_pow(w);
      const auto reps = alpha_reps(mu, w);
      ASSERT_EQ(reps.size(), std::size_t{1} << (w - 2));
      for (std::size_t i = 0; i < reps.size(); ++i) {
        const std::int64_t u = 2 * static_cast<std::int64_t>(i) + 1;
        // (u - alpha_u) must be divisible by tau^w.
        const ZTau diff = ring.sub({SInt{u}, SInt{0}}, reps[i]);
        EXPECT_NO_THROW((void)ring.div_exact(diff, tw))
            << "mu=" << mu << " w=" << w << " u=" << u;
        // alpha_u should be small: N(alpha) < N(tau^w) = 2^w.
        EXPECT_TRUE(ring.norm(reps[i]) < ring.norm(tw));
      }
      // alpha_1 = 1 always.
      EXPECT_EQ(reps[0], (ZTau{SInt{1}, SInt{0}}));
    }
  }
}

class WtnafDigitTest
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(WtnafDigitTest, RoundTripAndDigitShape) {
  const auto [mu, w] = GetParam();
  Rng rng(100 + static_cast<unsigned>(mu) + w);
  for (int i = 0; i < 15; ++i) {
    const ZTau rho = random_ztau(rng, 60);
    const auto digits = wtnaf_digits(rho, mu, w);
    // Reconstruction.
    EXPECT_EQ(wtnaf_evaluate(digits, mu, w), rho);
    for (std::size_t j = 0; j < digits.size(); ++j) {
      const int u = digits[j];
      EXPECT_LT(std::abs(u), 1 << (w - 1));
      if (u != 0) {
        EXPECT_EQ(std::abs(u) % 2, 1) << "non-zero digits must be odd";
        // Window property: next w-1 digits are zero.
        for (std::size_t l = 1; l < w && j + l < digits.size(); ++l) {
          EXPECT_EQ(digits[j + l], 0) << "window violation at " << j;
        }
      }
    }
  }
}

TEST_P(WtnafDigitTest, ZeroHasEmptyDigits) {
  const auto [mu, w] = GetParam();
  EXPECT_TRUE(wtnaf_digits({SInt{0}, SInt{0}}, mu, w).empty());
}

INSTANTIATE_TEST_SUITE_P(
    MuW, WtnafDigitTest,
    ::testing::Combine(::testing::Values(-1, 1),
                       ::testing::Values(2u, 3u, 4u, 5u, 6u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == -1 ? "MuM1" : "MuP1") +
             "W" + std::to_string(std::get<1>(info.param));
    });

TEST(WtnafDigits, NegativeAndMixedSignInputs) {
  // rho with negative coordinates (the partmod output's general case).
  for (int mu : {-1, 1}) {
    const TauRing ring(mu);
    for (auto [a0, a1] : {std::pair<int, int>{-12345, 678},
                          {9876, -54321},
                          {-1, -1},
                          {-(1 << 20), (1 << 19) + 3}}) {
      const ZTau rho{SInt{a0}, SInt{a1}};
      for (unsigned w : {2u, 4u, 5u}) {
        const auto digits = wtnaf_digits(rho, mu, w);
        EXPECT_EQ(wtnaf_evaluate(digits, mu, w), rho)
            << "mu=" << mu << " w=" << w << " a0=" << a0 << " a1=" << a1;
      }
    }
  }
}

TEST(AlphaReps, WideWindowsStayConsistent) {
  // w = 7 and 8 are beyond what the paper uses but must still satisfy the
  // congruence (the recoding loop supports them).
  for (int mu : {-1, 1}) {
    for (unsigned w : {7u, 8u}) {
      const TauRing ring(mu);
      const ZTau tw = ring.tau_pow(w);
      const auto reps = alpha_reps(mu, w);
      ASSERT_EQ(reps.size(), std::size_t{1} << (w - 2));
      for (std::size_t i = 0; i < reps.size(); i += 7) {
        const std::int64_t u = 2 * static_cast<std::int64_t>(i) + 1;
        const ZTau diff = ring.sub({SInt{u}, SInt{0}}, reps[i]);
        EXPECT_NO_THROW((void)ring.div_exact(diff, tw));
      }
    }
  }
}

TEST(Partmod, ResultIsCongruentAndShort) {
  const auto& curve = BinaryCurve::sect233k1();
  const TauRing ring(curve.mu);
  const ZTau delta = tnaf_delta(curve.mu, curve.f().m());
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const UInt k = UInt::random_below(rng, curve.order);
    const ZTau rho = partmod(k, curve);
    // rho = k (mod delta).
    const ZTau diff = ring.sub({SInt{k, false}, SInt{0}}, rho);
    EXPECT_NO_THROW((void)ring.div_exact(diff, delta));
    // rho is short: TNAF length about m, so components ~ 2^(m/2).
    EXPECT_LE(rho.a0.abs().bit_length(), 120u);
    EXPECT_LE(rho.a1.abs().bit_length(), 120u);
    // And the resulting digit string is not much longer than m.
    const auto digits = wtnaf_digits(rho, curve.mu, 4);
    EXPECT_LE(digits.size(), 240u);
  }
}

TEST(Partmod, WtnafLengthHalvedVsNoReduction) {
  const auto& curve = BinaryCurve::sect233k1();
  Rng rng(8);
  const UInt k = UInt::random_below(rng, curve.order);
  const ZTau raw{SInt{k, false}, SInt{0}};
  const auto raw_digits = wtnaf_digits(raw, curve.mu, 4);
  const auto red_digits = wtnaf_digits(partmod(k, curve), curve.mu, 4);
  EXPECT_GT(raw_digits.size(), 440u);  // ~2m without reduction
  EXPECT_LE(red_digits.size(), 240u);  // ~m with partmod
}

}  // namespace
}  // namespace eccm0::ec
