// Named-curve parameter validation: the SEC2 constants must satisfy the
// curve equation and the group-order relations, cross-checked against the
// tau-adic norm computation (an independent derivation of the order).
#include "ec/curve.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ec/ops.h"
#include "ec/scalarmul.h"
#include "ec/tnaf.h"

namespace eccm0::ec {
namespace {

class CurveTest : public ::testing::TestWithParam<const BinaryCurve*> {
 protected:
  const BinaryCurve& c() const { return *GetParam(); }
};

TEST_P(CurveTest, GeneratorIsOnCurve) {
  CurveOps ops(c());
  EXPECT_TRUE(ops.on_curve(AffinePoint::make(c().gx, c().gy)));
}

TEST_P(CurveTest, GeneratorOrderIsLarge) {
  EXPECT_GE(c().order.bit_length(), c().f().m() - 2);
}

TEST_P(CurveTest, OrderTimesGeneratorIsInfinity) {
  CurveOps ops(c());
  const AffinePoint g = AffinePoint::make(c().gx, c().gy);
  // n*G = infinity, and (n-1)*G = -G (cheap full-order check via naive
  // double-and-add, independent of the TNAF machinery).
  const AffinePoint ng = mul_naive(ops, g, c().order);
  EXPECT_TRUE(ng.inf);
  const AffinePoint n1g = mul_naive(ops, g, c().order - mpint::UInt{1});
  EXPECT_EQ(n1g, ops.neg(g));
}

TEST_P(CurveTest, KoblitzOrderMatchesTauNorm) {
  if (!c().koblitz) GTEST_SKIP() << "not a Koblitz curve";
  // N((tau^m - 1)/(tau - 1)) must equal the SEC2 group order — this
  // derives the order from scratch via the Lucas sequence.
  const TauRing ring(c().mu);
  const ZTau delta = tnaf_delta(c().mu, c().f().m());
  const mpint::SInt norm = ring.norm(delta);
  EXPECT_FALSE(norm.is_neg());
  EXPECT_EQ(norm.abs(), c().order);
}

TEST_P(CurveTest, CurveCardinalityMatchesOrderTimesCofactor) {
  if (!c().koblitz) GTEST_SKIP() << "not a Koblitz curve";
  const TauRing ring(c().mu);
  const ZTau tm = ring.tau_pow(c().f().m());
  const ZTau tm1{tm.a0 - mpint::SInt{1}, tm.a1};
  const mpint::SInt card = ring.norm(tm1);  // #E(F_2^m) = N(tau^m - 1)
  EXPECT_EQ(card.abs(), c().order * mpint::UInt{c().cofactor});
}

INSTANTIATE_TEST_SUITE_P(Curves, CurveTest,
                         ::testing::Values(&BinaryCurve::sect233k1(),
                                           &BinaryCurve::sect163k1(),
                                           &BinaryCurve::sect233r1()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

TEST(CurveParams, K233Specifics) {
  const auto& c = BinaryCurve::sect233k1();
  EXPECT_TRUE(c.koblitz);
  EXPECT_EQ(c.mu, -1);
  EXPECT_EQ(c.cofactor, 4u);
  EXPECT_TRUE(gf2::GF2Field::is_zero(c.a));
  EXPECT_EQ(c.b, c.f().one());
  EXPECT_EQ(c.order.bit_length(), 232u);
}

TEST(DerivedCurve, K409HasConsistentParameters) {
  const auto& c = BinaryCurve::k409_derived();
  EXPECT_TRUE(c.koblitz);
  EXPECT_EQ(c.mu, -1);
  EXPECT_EQ(c.cofactor, 4u);  // N(tau - 1) = 3 - mu
  EXPECT_EQ(c.f().m(), 409u);
  // order ~ 2^407 (cofactor 4 off 2^409; trace sign decides 407 vs 408).
  EXPECT_GE(c.order.bit_length(), 407u);
  EXPECT_LE(c.order.bit_length(), 408u);
  CurveOps ops(c);
  const AffinePoint g = AffinePoint::make(c.gx, c.gy);
  EXPECT_TRUE(ops.on_curve(g));
}

TEST(DerivedCurve, K409GeneratorHasPrimeOrder) {
  const auto& c = BinaryCurve::k409_derived();
  CurveOps ops(c);
  const AffinePoint g = AffinePoint::make(c.gx, c.gy);
  // n*G = infinity via wTNAF (also exercising the TNAF machinery at a
  // third field size); (n-1)*G = -G.
  EXPECT_TRUE(mul_wtnaf(ops, g, c.order, 4).inf);
  EXPECT_EQ(mul_wtnaf(ops, g, c.order - mpint::UInt{1}, 4), ops.neg(g));
}

TEST(DerivedCurve, K409ScalarMulConsistency) {
  const auto& c = BinaryCurve::k409_derived();
  CurveOps ops(c);
  const AffinePoint g = AffinePoint::make(c.gx, c.gy);
  Rng rng(0x409);
  const mpint::UInt k = mpint::UInt::random_below(rng, c.order);
  EXPECT_EQ(mul_wtnaf(ops, g, k, 4), mul_naive(ops, g, k));
  EXPECT_EQ(mul_wtnaf(ops, g, k, 6), mul_naive(ops, g, k));
}

TEST(DerivedCurve, DerivationIsDeterministic) {
  const auto a = BinaryCurve::derive_koblitz(gf2::GF2Field::f409(), 0, 42,
                                             "t1");
  const auto b = BinaryCurve::derive_koblitz(gf2::GF2Field::f409(), 0, 42,
                                             "t2");
  EXPECT_EQ(a.gx, b.gx);
  EXPECT_EQ(a.gy, b.gy);
  EXPECT_EQ(a.order, b.order);
}

TEST(DerivedCurve, MatchesStandardCurveWhenDerivedOverK233Field) {
  // Deriving over F(2^233) with a = 0 must re-discover sect233k1's group
  // order and cofactor (the generator differs, but the group is the same).
  const auto d = BinaryCurve::derive_koblitz(gf2::GF2Field::f233(), 0, 7,
                                             "k233-derived");
  const auto& std_curve = BinaryCurve::sect233k1();
  EXPECT_EQ(d.order, std_curve.order);
  EXPECT_EQ(d.cofactor, std_curve.cofactor);
  CurveOps ops(d);
  EXPECT_TRUE(ops.on_curve(AffinePoint::make(d.gx, d.gy)));
}

TEST(DerivedCurve, RejectsBadA) {
  EXPECT_THROW(
      BinaryCurve::derive_koblitz(gf2::GF2Field::f233(), 2, 1, "bad"),
      std::invalid_argument);
}

TEST(CurveParams, K163Specifics) {
  const auto& c = BinaryCurve::sect163k1();
  EXPECT_EQ(c.mu, 1);
  EXPECT_EQ(c.cofactor, 2u);
  EXPECT_EQ(c.a, c.f().one());
}

}  // namespace
}  // namespace eccm0::ec
