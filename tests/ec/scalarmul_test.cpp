// Cross-algorithm scalar-multiplication consistency: every optimised path
// (wTNAF, wNAF, Montgomery ladder) must agree with the affine
// double-and-add oracle, across curves, window widths and edge scalars.
#include "ec/scalarmul.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eccm0::ec {
namespace {

using mpint::UInt;

AffinePoint generator(const BinaryCurve& c) {
  return AffinePoint::make(c.gx, c.gy);
}

TEST(MulNaive, SmallMultiplesChain) {
  const auto& c = BinaryCurve::sect233k1();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  AffinePoint acc = AffinePoint::infinity();
  for (std::uint64_t k = 0; k <= 20; ++k) {
    EXPECT_EQ(mul_naive(ops, g, UInt{k}), acc) << "k=" << k;
    acc = ops.add(acc, g);
  }
}

class WtnafCurveTest : public ::testing::TestWithParam<const BinaryCurve*> {};

TEST_P(WtnafCurveTest, MatchesNaiveForRandomScalars) {
  const auto& c = *GetParam();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  Rng rng(1);
  for (unsigned w : {2u, 3u, 4u, 5u, 6u}) {
    const WtnafTable table = make_wtnaf_table(ops, g, w);
    for (int i = 0; i < 4; ++i) {
      const UInt k = UInt::random_below(rng, c.order);
      EXPECT_EQ(mul_wtnaf(ops, table, k), mul_naive(ops, g, k))
          << c.name << " w=" << w;
    }
  }
}

TEST_P(WtnafCurveTest, EdgeScalars) {
  const auto& c = *GetParam();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  const WtnafTable table = make_wtnaf_table(ops, g, 4);
  EXPECT_TRUE(mul_wtnaf(ops, table, UInt{0}).inf);
  EXPECT_EQ(mul_wtnaf(ops, table, UInt{1}), g);
  EXPECT_EQ(mul_wtnaf(ops, table, UInt{2}), ops.dbl(g));
  EXPECT_EQ(mul_wtnaf(ops, table, c.order - UInt{1}), ops.neg(g));
  EXPECT_TRUE(mul_wtnaf(ops, table, c.order).inf);
  EXPECT_EQ(mul_wtnaf(ops, table, c.order + UInt{1}), g);
}

TEST_P(WtnafCurveTest, DistributesOverScalarAddition)  {
  const auto& c = *GetParam();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  Rng rng(2);
  const UInt a = UInt::random_below(rng, c.order);
  const UInt b = UInt::random_below(rng, c.order);
  const AffinePoint lhs = mul_wtnaf(ops, g, (a + b) % c.order, 4);
  const AffinePoint rhs =
      ops.add(mul_wtnaf(ops, g, a, 4), mul_wtnaf(ops, g, b, 4));
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Koblitz, WtnafCurveTest,
                         ::testing::Values(&BinaryCurve::sect233k1(),
                                           &BinaryCurve::sect163k1()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

TEST(Wtnaf, RejectsNonKoblitzCurve) {
  const auto& c = BinaryCurve::sect233r1();
  CurveOps ops(c);
  EXPECT_THROW(make_wtnaf_table(ops, generator(c), 4), std::invalid_argument);
}

TEST(Wtnaf, DiffieHellmanConsistency) {
  // (a*b)G == a*(b*G) — the hybrid-cryptosystem use case from the intro.
  const auto& c = BinaryCurve::sect233k1();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  Rng rng(3);
  const UInt a = UInt::random_below(rng, c.order);
  const UInt b = UInt::random_below(rng, c.order);
  const AffinePoint bg = mul_wtnaf(ops, g, b, 4);
  const AffinePoint abg = mul_wtnaf(ops, bg, a, 4);
  const AffinePoint ab_g = mul_wtnaf(ops, g, mulmod(a, b, c.order), 6);
  EXPECT_EQ(abg, ab_g);
}

class WnafCurveTest : public ::testing::TestWithParam<const BinaryCurve*> {};

TEST_P(WnafCurveTest, MatchesNaive) {
  const auto& c = *GetParam();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  Rng rng(4);
  for (unsigned w : {2u, 3u, 4u, 5u}) {
    for (int i = 0; i < 3; ++i) {
      const UInt k = UInt::random_below(rng, c.order);
      EXPECT_EQ(mul_wnaf(ops, g, k, w), mul_naive(ops, g, k))
          << c.name << " w=" << w;
    }
  }
}

TEST_P(WnafCurveTest, EdgeScalars) {
  const auto& c = *GetParam();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  EXPECT_TRUE(mul_wnaf(ops, g, UInt{0}, 4).inf);
  EXPECT_EQ(mul_wnaf(ops, g, UInt{1}, 4), g);
  EXPECT_EQ(mul_wnaf(ops, g, c.order - UInt{1}, 4), ops.neg(g));
  EXPECT_TRUE(mul_wnaf(ops, g, c.order, 4).inf);
}

INSTANTIATE_TEST_SUITE_P(AllCurves, WnafCurveTest,
                         ::testing::Values(&BinaryCurve::sect233k1(),
                                           &BinaryCurve::sect163k1(),
                                           &BinaryCurve::sect233r1()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

class LadderCurveTest : public ::testing::TestWithParam<const BinaryCurve*> {};

TEST_P(LadderCurveTest, MatchesNaive) {
  const auto& c = *GetParam();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const UInt k = UInt::random_below(rng, c.order);
    EXPECT_EQ(mul_ladder(ops, g, k), mul_naive(ops, g, k)) << c.name;
  }
}

TEST_P(LadderCurveTest, EdgeScalars) {
  const auto& c = *GetParam();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  EXPECT_TRUE(mul_ladder(ops, g, UInt{0}).inf);
  EXPECT_EQ(mul_ladder(ops, g, UInt{1}), g);
  EXPECT_EQ(mul_ladder(ops, g, UInt{2}), ops.dbl(g));
  EXPECT_EQ(mul_ladder(ops, g, UInt{3}), ops.add(ops.dbl(g), g));
  EXPECT_EQ(mul_ladder(ops, g, c.order - UInt{1}), ops.neg(g));
}

TEST_P(LadderCurveTest, UniformFieldOpCountPerBit) {
  // The ladder's selling point (paper section 5): identical operation
  // sequence whatever the key bits. Two same-length scalars must yield
  // identical field-op counts.
  const auto& c = *GetParam();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  const UInt k1 = (UInt::pow2(150) + UInt{0x5555});
  const UInt k2 = (UInt::pow2(150) + UInt{0x10001});
  ops.reset_counts();
  (void)mul_ladder(ops, g, k1);
  const FieldOpCounts c1 = ops.counts();
  ops.reset_counts();
  (void)mul_ladder(ops, g, k2);
  const FieldOpCounts c2 = ops.counts();
  EXPECT_EQ(c1, c2);
}

INSTANTIATE_TEST_SUITE_P(AllCurves, LadderCurveTest,
                         ::testing::Values(&BinaryCurve::sect233k1(),
                                           &BinaryCurve::sect163k1(),
                                           &BinaryCurve::sect233r1()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

TEST(ZtauApply, MatchesExpandedForm) {
  const auto& c = BinaryCurve::sect233k1();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  // (3 - 2 tau) G = 3G - 2 tau(G)
  const ZTau z{mpint::SInt{3}, mpint::SInt{-2}};
  const AffinePoint got = ztau_apply(ops, z, g);
  const AffinePoint tg = ops.frob(g);
  const AffinePoint want = ops.add(
      mul_naive(ops, g, UInt{3}),
      ops.neg(mul_naive(ops, tg, UInt{2})));
  EXPECT_EQ(got, want);
}

TEST(BatchToAffine, MatchesIndividualConversion) {
  const auto& c = BinaryCurve::sect233k1();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  Rng rng(6);
  std::vector<LDPoint> pts;
  std::vector<AffinePoint> want;
  for (int i = 0; i < 6; ++i) {
    LDPoint q = ops.to_ld(mul_naive(ops, g, UInt{1 + rng.next_below(500)}));
    ops.ld_double(q);  // non-trivial Z
    pts.push_back(q);
    want.push_back(ops.to_affine(q));
  }
  // Sprinkle in points at infinity.
  pts.insert(pts.begin() + 2, LDPoint::infinity());
  want.insert(want.begin() + 2, AffinePoint::infinity());
  pts.push_back(LDPoint::infinity());
  want.push_back(AffinePoint::infinity());
  const auto got = batch_to_affine(ops, pts);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << i;
  }
}

TEST(BatchToAffine, UsesExactlyOneInversion) {
  const auto& c = BinaryCurve::sect233k1();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  std::vector<LDPoint> pts;
  for (int i = 0; i < 8; ++i) {
    LDPoint q = ops.to_ld(g);
    for (int d = 0; d <= i; ++d) ops.ld_double(q);
    pts.push_back(q);
  }
  ops.reset_counts();
  (void)batch_to_affine(ops, pts);
  EXPECT_EQ(ops.counts().inv, 1u);
}

TEST(BatchToAffine, EmptyAndAllInfinity) {
  const auto& c = BinaryCurve::sect233k1();
  CurveOps ops(c);
  EXPECT_TRUE(batch_to_affine(ops, std::vector<LDPoint>{}).empty());
  ops.reset_counts();
  const auto got =
      batch_to_affine(ops, std::vector<LDPoint>(3, LDPoint::infinity()));
  ASSERT_EQ(got.size(), 3u);
  for (const auto& p : got) EXPECT_TRUE(p.inf);
  EXPECT_EQ(ops.counts().inv, 0u);
}

TEST(WtnafTable, PointsMatchZtauApplyOracle) {
  const auto& c = BinaryCurve::sect233k1();
  CurveOps ops(c);
  const AffinePoint g = generator(c);
  for (unsigned w : {3u, 4u, 6u}) {
    const WtnafTable table = make_wtnaf_table(ops, g, w);
    const auto alphas = alpha_reps(c.mu, w);
    ASSERT_EQ(table.points.size(), alphas.size());
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      EXPECT_EQ(table.points[i], ztau_apply(ops, alphas[i], g))
          << "w=" << w << " i=" << i;
    }
  }
}

TEST(WtnafTable, InfinityBaseGivesInfinityTable)  {
  const auto& c = BinaryCurve::sect233k1();
  CurveOps ops(c);
  const WtnafTable table =
      make_wtnaf_table(ops, AffinePoint::infinity(), 4);
  for (const auto& p : table.points) EXPECT_TRUE(p.inf);
}

}  // namespace
}  // namespace eccm0::ec
