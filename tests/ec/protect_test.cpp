// Fault-detecting scalar multiplication: the protected path must agree
// with the plain path on honest inputs and refuse corrupted ones.
#include <gtest/gtest.h>

#include "ec/protect.h"

namespace eccm0::ec {
namespace {

using mpint::UInt;

class ProtectTest : public ::testing::Test {
 protected:
  ProtectTest()
      : curve_(BinaryCurve::sect233k1()),
        ops_(curve_),
        g_(AffinePoint::make(curve_.gx, curve_.gy)) {}

  const BinaryCurve& curve_;
  CurveOps ops_;
  AffinePoint g_;
};

TEST_F(ProtectTest, AgreesWithPlainWtnafOnHonestInputs) {
  const UInt k = UInt::from_hex("1B2C3D4E5F60718293A4B5C6D7E8F90012");
  const AffinePoint plain = mul_wtnaf(ops_, g_, k, 4);
  const AffinePoint guarded =
      scalarmul_protected(ops_, g_, k, 4, ProtectOpts::all());
  EXPECT_EQ(plain, guarded);
}

TEST_F(ProtectTest, RejectsOffCurveInputPoint) {
  AffinePoint bad = g_;
  bad.x[0] ^= 1;  // knock it off the curve
  try {
    (void)scalarmul_protected(ops_, bad, UInt{12345}, 4);
    FAIL() << "expected FaultDetectedError";
  } catch (const FaultDetectedError& e) {
    EXPECT_EQ(e.check(), FaultDetectedError::Check::kInputValidation);
  }
}

TEST_F(ProtectTest, RejectsInfinityInputAndBadScalars) {
  EXPECT_THROW(
      (void)scalarmul_protected(ops_, AffinePoint::infinity(), UInt{5}, 4),
      FaultDetectedError);
  try {
    (void)scalarmul_protected(ops_, g_, UInt{0}, 4);
    FAIL() << "expected scalar-range rejection";
  } catch (const FaultDetectedError& e) {
    EXPECT_EQ(e.check(), FaultDetectedError::Check::kScalarRange);
  }
  EXPECT_THROW((void)scalarmul_protected(ops_, g_, curve_.order, 4),
               FaultDetectedError);
}

TEST_F(ProtectTest, ChecksCanBeDisabled) {
  // With validation off, the degenerate scalar is simply computed.
  const AffinePoint q =
      scalarmul_protected(ops_, g_, UInt{0}, 4, ProtectOpts::none());
  EXPECT_TRUE(q.inf);
}

TEST_F(ProtectTest, TamperedMultiplicationIsCaughtByRecheck) {
  // Corrupt one field multiplication mid-kP through the tamper seam: the
  // LD-coordinate recheck must refuse the result.
  const UInt k = UInt::from_hex("0FEDCBA9876543210123456789ABCDEF");
  CurveOps tampered(curve_);
  tampered.set_mul_tamper([](std::uint64_t idx, const gf2::Elem&,
                             const gf2::Elem&, gf2::Elem& r) {
    if (idx == 57) r[0] ^= 0x40u;
  });
  try {
    (void)scalarmul_protected(tampered, g_, k, 4, ProtectOpts::all());
    FAIL() << "expected FaultDetectedError";
  } catch (const FaultDetectedError& e) {
    EXPECT_EQ(e.check(), FaultDetectedError::Check::kResultOnCurve);
  }
}

TEST_F(ProtectTest, ZeroedProductCollapseIsCaught) {
  // The nastiest single-fault class: a product forced to zero kills the
  // accumulator's Z, the Horner loop reads the point as the identity and
  // silently restarts, and the run ends on a VALID but wrong subgroup
  // point — invisible to both the curve-equation recheck and the order
  // check. The mid-loop collapse invariant must refuse it. Index 101 is
  // a Z-feeding multiplication inside a mixed addition for this (P, k)
  // counted in the ProtectOpts::all() frame, where input validation
  // spends 2 multiplications before the kP loop starts.
  const UInt k = UInt::from_hex("0FEDCBA9876543210123456789ABCDEF");
  CurveOps tampered(curve_);
  tampered.set_mul_tamper([](std::uint64_t idx, const gf2::Elem&,
                             const gf2::Elem&, gf2::Elem& r) {
    if (idx == 101) r = gf2::Elem{};
  });
  try {
    (void)scalarmul_protected(tampered, g_, k, 4, ProtectOpts::all());
    FAIL() << "expected FaultDetectedError";
  } catch (const FaultDetectedError& e) {
    EXPECT_EQ(e.check(), FaultDetectedError::Check::kAccumulatorCollapse);
  }
  // Unprotected, the same fault flows straight through to a wrong
  // result that still satisfies every end-of-run validity property.
  // ProtectOpts::none() skips the input on-curve check and its 2 field
  // multiplications, so the same physical multiplication sits at index
  // 99 in this frame.
  CurveOps unprotected(curve_);
  unprotected.set_mul_tamper([](std::uint64_t idx, const gf2::Elem&,
                                const gf2::Elem&, gf2::Elem& r) {
    if (idx == 99) r = gf2::Elem{};
  });
  const AffinePoint q =
      scalarmul_protected(unprotected, g_, k, 4, ProtectOpts::none());
  CurveOps clean(curve_);
  EXPECT_FALSE(q == mul_wtnaf(clean, g_, k, 4));
  EXPECT_TRUE(clean.on_curve(q));
  // Sound (doubling-based) order check: the wrong point is still a
  // genuine subgroup element, which is what makes this class nasty.
  EXPECT_EQ(mul_wnaf(clean, q, curve_.order, 4), AffinePoint::infinity());
}

TEST_F(ProtectTest, OnCurveLdMatchesAffineCheck) {
  const UInt k = UInt{97};
  const AffinePoint q = mul_wtnaf(ops_, g_, k, 4);
  LDPoint ld = ops_.to_ld(q);
  EXPECT_TRUE(ops_.on_curve_ld(ld));
  // Re-scale to a non-trivial Z: X' = X*Z, Y' = Y*Z^2 keeps the point.
  const gf2::Elem z = ops_.fadd(q.x, q.y);
  LDPoint scaled{ops_.fmul(ld.X, z), ops_.fmul(ld.Y, ops_.fsqr(z)), z};
  EXPECT_TRUE(ops_.on_curve_ld(scaled));
  scaled.Y[0] ^= 2;
  EXPECT_FALSE(ops_.on_curve_ld(scaled));
  EXPECT_TRUE(ops_.on_curve_ld(LDPoint::infinity()));
}

TEST_F(ProtectTest, OrderCheckPassesForSubgroupPoints) {
  const UInt k = UInt{1234567};
  const AffinePoint q = scalarmul_protected(ops_, g_, k, 4,
                                            ProtectOpts::all());
  EXPECT_TRUE(ops_.on_curve(q));
}

TEST_F(ProtectTest, CheckNamesAreStable) {
  EXPECT_STREQ(check_name(FaultDetectedError::Check::kInputValidation),
               "input-validation");
  EXPECT_STREQ(check_name(FaultDetectedError::Check::kSignCoherence),
               "sign-coherence");
  EXPECT_STREQ(check_name(FaultDetectedError::Check::kAccumulatorCollapse),
               "accumulator-collapse");
}

TEST_F(ProtectTest, MulWtnafLdSeamMatchesAffineResult) {
  const UInt k = UInt::from_hex("ABCDEF0123456789");
  const WtnafTable t = make_wtnaf_table(ops_, g_, 4);
  const LDPoint ld = mul_wtnaf_ld(ops_, t, k);
  EXPECT_TRUE(ops_.on_curve_ld(ld));
  EXPECT_EQ(ops_.to_affine(ld), mul_wtnaf(ops_, t, k));
}

}  // namespace
}  // namespace eccm0::ec
