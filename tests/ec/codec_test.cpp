// Point-encoding tests: SEC1 round trips (compressed + uncompressed),
// malformed-input rejection, and the half-trace decompression math.
#include "ec/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ec/scalarmul.h"

namespace eccm0::ec {
namespace {

class CodecTest : public ::testing::TestWithParam<const BinaryCurve*> {
 protected:
  CodecTest() : ops_(*GetParam()) {}
  AffinePoint random_point(Rng& rng) {
    const AffinePoint g =
        AffinePoint::make(GetParam()->gx, GetParam()->gy);
    return mul_naive(ops_, g, mpint::UInt{1 + rng.next_below(5000)});
  }
  CurveOps ops_;
};

TEST_P(CodecTest, UncompressedRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const AffinePoint p = random_point(rng);
    const auto bytes = encode_point(*GetParam(), p, false);
    EXPECT_EQ(bytes.size(), 1 + 2 * field_octets(*GetParam()));
    EXPECT_EQ(decode_point(ops_, bytes), p);
  }
}

TEST_P(CodecTest, CompressedRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const AffinePoint p = random_point(rng);
    const auto bytes = encode_point(*GetParam(), p, true);
    EXPECT_EQ(bytes.size(), 1 + field_octets(*GetParam()));
    EXPECT_EQ(decode_point(ops_, bytes), p);
  }
}

TEST_P(CodecTest, CompressionDistinguishesConjugatePoints) {
  Rng rng(3);
  const AffinePoint p = random_point(rng);
  const AffinePoint np = ops_.neg(p);
  const auto bp = encode_point(*GetParam(), p, true);
  const auto bn = encode_point(*GetParam(), np, true);
  ASSERT_NE(p, np);
  EXPECT_NE(bp[0], bn[0]);  // same x, opposite y-tilde
  EXPECT_EQ(decode_point(ops_, bp), p);
  EXPECT_EQ(decode_point(ops_, bn), np);
}

TEST_P(CodecTest, InfinityEncoding) {
  const auto bytes =
      encode_point(*GetParam(), AffinePoint::infinity(), true);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_TRUE(decode_point(ops_, bytes).inf);
}

TEST_P(CodecTest, RejectsMalformedInput) {
  Rng rng(4);
  const AffinePoint p = random_point(rng);
  auto good = encode_point(*GetParam(), p, false);
  // Bad prefix.
  auto bad = good;
  bad[0] = 0x07;
  EXPECT_THROW(decode_point(ops_, bad), std::invalid_argument);
  // Truncated.
  bad = good;
  bad.pop_back();
  EXPECT_THROW(decode_point(ops_, bad), std::invalid_argument);
  // Off-curve (flip a y bit).
  bad = good;
  bad.back() ^= 1;
  EXPECT_THROW(decode_point(ops_, bad), std::invalid_argument);
  // Empty.
  EXPECT_THROW(decode_point(ops_, std::vector<std::uint8_t>{}),
               std::invalid_argument);
}

TEST_P(CodecTest, RejectsCorruptedSec1Matrix) {
  // Table-driven corruption sweep, applied to both the compressed and
  // the uncompressed encoding of the same point on every curve under
  // test: each mutation must either fail to decode or decode to a point
  // that is NOT the original (never a silent pass-through).
  struct Corruption {
    const char* name;
    void (*apply)(std::vector<std::uint8_t>&);
  };
  static constexpr Corruption kCorruptions[] = {
      {"prefix-zeroed", [](std::vector<std::uint8_t>& b) { b[0] = 0x00; }},
      {"prefix-hybrid", [](std::vector<std::uint8_t>& b) { b[0] = 0x06; }},
      {"prefix-flipped-bit",
       [](std::vector<std::uint8_t>& b) { b[0] ^= 0x01; }},
      {"first-payload-byte",
       [](std::vector<std::uint8_t>& b) { b[1] ^= 0x80; }},
      {"last-byte", [](std::vector<std::uint8_t>& b) { b.back() ^= 0x01; }},
      {"truncated-1", [](std::vector<std::uint8_t>& b) { b.pop_back(); }},
      {"truncated-half",
       [](std::vector<std::uint8_t>& b) { b.resize(b.size() / 2); }},
      {"extended-1", [](std::vector<std::uint8_t>& b) { b.push_back(0); }},
      {"high-bits-beyond-field",
       // Set bits above the field degree in the leading x octet; the
       // decoder must refuse out-of-field elements.
       [](std::vector<std::uint8_t>& b) { b[1] = 0xFF; }},
  };
  Rng rng(7);
  const AffinePoint p = random_point(rng);
  for (const bool compressed : {false, true}) {
    const auto good = encode_point(*GetParam(), p, compressed);
    ASSERT_EQ(decode_point(ops_, good), p);
    for (const Corruption& c : kCorruptions) {
      auto bad = good;
      c.apply(bad);
      if (bad == good) continue;  // mutation was a no-op for this encoding
      SCOPED_TRACE(std::string(c.name) +
                   (compressed ? " (compressed)" : " (uncompressed)"));
      try {
        const AffinePoint q = decode_point(ops_, bad);
        // Decoded without throwing (e.g. a y-tilde flip selects the
        // conjugate): it must not silently equal the original point.
        EXPECT_FALSE(q == p) << "corruption silently accepted";
      } catch (const std::invalid_argument&) {
        // rejected: good
      }
    }
  }
}

TEST_P(CodecTest, RejectsUnsolvableCompressedX) {
  // Roughly half of all x values have no curve point; find one by search.
  Rng rng(5);
  const auto& curve = *GetParam();
  int rejected = 0;
  for (int i = 0; i < 40 && rejected == 0; ++i) {
    const gf2::Elem x = curve.f().random(rng);
    std::vector<std::uint8_t> enc{0x02};
    const auto oct = elem_to_octets(curve, x);
    enc.insert(enc.end(), oct.begin(), oct.end());
    try {
      (void)decode_point(ops_, enc);
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST_P(CodecTest, ElemOctetsRoundTrip) {
  Rng rng(6);
  const auto& curve = *GetParam();
  for (int i = 0; i < 10; ++i) {
    const gf2::Elem e = curve.f().random(rng);
    EXPECT_EQ(elem_from_octets(curve, elem_to_octets(curve, e)), e);
  }
  EXPECT_THROW(
      elem_from_octets(curve, std::vector<std::uint8_t>(3, 0)),
      std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Curves, CodecTest,
                         ::testing::Values(&BinaryCurve::sect233k1(),
                                           &BinaryCurve::sect163k1(),
                                           &BinaryCurve::sect233r1()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

TEST(Codec, K233CompressedSizeIs31Bytes) {
  // ceil(233/8) = 30 bytes of x + 1 prefix byte: the WSN radio payload.
  EXPECT_EQ(field_octets(BinaryCurve::sect233k1()), 30u);
}

}  // namespace
}  // namespace eccm0::ec
