// The simulated measurement rig must recover the ground-truth energy
// model within noise — i.e. the paper's section 4.1 methodology works on
// our simulated hardware.
#include "measure/power_trace.h"

#include <gtest/gtest.h>

#include "armvm/asm.h"
#include "armvm/cpu.h"

namespace eccm0::measure {
namespace {

using costmodel::InstrClass;
using costmodel::kM0PlusEnergy;

TEST(PowerRig, NoiselessTraceMatchesEnergyModelExactly) {
  PowerRig rig(RigConfig{.noise_uw = 0.0, .bias_uw = 0.0});
  rig.on_instruction(InstrClass::kLdr, 2);
  rig.on_instruction(InstrClass::kEor, 1);
  ASSERT_EQ(rig.trace().size(), 3u);
  const double expect_pj =
      2 * kM0PlusEnergy.pj(InstrClass::kLdr) + kM0PlusEnergy.pj(InstrClass::kEor);
  EXPECT_NEAR(rig.integrate_pj(0, 3), expect_pj, 1e-9);
}

TEST(PowerRig, NoisyTraceIntegratesToTruthOnAverage) {
  PowerRig rig(RigConfig{.noise_uw = 50.0, .seed = 7});
  for (int i = 0; i < 20000; ++i) rig.on_instruction(InstrClass::kAdd, 1);
  const double truth = 20000.0 * kM0PlusEnergy.pj(InstrClass::kAdd);
  const double got = rig.integrate_pj(0, rig.trace().size());
  EXPECT_NEAR(got / truth, 1.0, 0.01);  // noise averages out
}

TEST(PowerRig, BiasShiftsAveragePower) {
  PowerRig a(RigConfig{.noise_uw = 0.0, .bias_uw = 0.0});
  PowerRig b(RigConfig{.noise_uw = 0.0, .bias_uw = 100.0});
  for (int i = 0; i < 100; ++i) {
    a.on_instruction(InstrClass::kMul, 1);
    b.on_instruction(InstrClass::kMul, 1);
  }
  EXPECT_NEAR(b.average_power_uw() - a.average_power_uw(), 100.0, 1e-9);
}

TEST(PowerRig, SameSeedGivesBitIdenticalTrace) {
  const RigConfig cfg{.noise_uw = 25.0, .bias_uw = 3.0, .seed = 0xD5EED};
  PowerRig a(cfg), b(cfg);
  for (int i = 0; i < 500; ++i) {
    a.on_instruction(InstrClass::kLdr, 2);
    a.on_instruction(InstrClass::kEor, 1);
    b.on_instruction(InstrClass::kLdr, 2);
    b.on_instruction(InstrClass::kEor, 1);
  }
  ASSERT_EQ(a.trace().size(), b.trace().size());
  // Bit-identical, not just close: the TVLA campaign's thread-count
  // invariance rests on the rig being a pure function of (config, stream).
  EXPECT_EQ(a.trace(), b.trace());
}

TEST(PowerRig, WindowPartitionSumsToTotalEnergy) {
  PowerRig rig(RigConfig{.noise_uw = 25.0, .seed = 11});
  for (int i = 0; i < 300; ++i) {
    rig.on_instruction(InstrClass::kStr, 2);
    rig.on_instruction(InstrClass::kAdd, 1);
  }
  const std::size_t n = rig.trace().size();
  // Any partition of [0, n) must integrate to the whole-trace energy.
  const double parts = rig.integrate_pj(0, n / 3) +
                       rig.integrate_pj(n / 3, n / 2) +
                       rig.integrate_pj(n / 2, n);
  EXPECT_NEAR(parts, rig.integrate_pj(0, n), 1e-9);
  EXPECT_NEAR(parts * 1e-6, rig.total_energy_uj(), 1e-12);
}

TEST(MeasureInstructionEnergy, RecoversTable3Ordering) {
  // The measured energies must reproduce Table 3's ordering:
  // LDR (per cycle) < LSR < MUL < LSL < XOR < ADD.
  const RigConfig cfg{.noise_uw = 25.0, .seed = 42};
  const double ldr =
      measure_instruction_energy_pj("ldr r0, [r1]", 64, cfg) / 2.0;
  const double lsr = measure_instruction_energy_pj("lsrs r0, r2, #3", 64, cfg);
  const double mul = measure_instruction_energy_pj("muls r0, r2", 64, cfg);
  const double lsl = measure_instruction_energy_pj("lsls r0, r2, #3", 64, cfg);
  const double eor = measure_instruction_energy_pj("eors r0, r2", 64, cfg);
  const double add = measure_instruction_energy_pj("adds r0, r2", 64, cfg);
  EXPECT_LT(ldr, lsr);
  EXPECT_LT(lsr, mul);
  EXPECT_LT(mul, lsl);
  EXPECT_LT(lsl, eor);
  EXPECT_LT(eor, add);
  // And the absolute values within ~4% of the table.
  EXPECT_NEAR(ldr, 10.98, 0.45);
  EXPECT_NEAR(lsr, 12.05, 0.5);
  EXPECT_NEAR(mul, 12.14, 0.5);
  EXPECT_NEAR(lsl, 12.21, 0.5);
  EXPECT_NEAR(eor, 12.43, 0.5);
  EXPECT_NEAR(add, 13.45, 0.55);
}

TEST(MeasureInstructionEnergy, VariationBandMatchesPaper) {
  // Paper: "A variation in energy consumption of up to 22.5% was observed
  // between different instructions" (LDR per-cycle vs ADD).
  const RigConfig cfg{.noise_uw = 10.0, .seed = 9};
  const double ldr =
      measure_instruction_energy_pj("ldr r0, [r1]", 64, cfg) / 2.0;
  const double add = measure_instruction_energy_pj("adds r0, r2", 64, cfg);
  const double variation = (add - ldr) / ldr;
  EXPECT_NEAR(variation, 0.225, 0.05);
}

TEST(PowerRig, WholeKernelAveragePowerNearPaper) {
  // Average power of a XOR/shift/load-heavy stream should sit in the
  // 500-600 uW band the paper reports for binary-field work at 48 MHz.
  PowerRig rig(RigConfig{.noise_uw = 0.0});
  for (int i = 0; i < 1000; ++i) {
    rig.on_instruction(InstrClass::kLdr, 2);
    rig.on_instruction(InstrClass::kEor, 1);
    rig.on_instruction(InstrClass::kLsl, 1);
    rig.on_instruction(InstrClass::kStr, 2);
  }
  EXPECT_GT(rig.average_power_uw(), 500.0);
  EXPECT_LT(rig.average_power_uw(), 620.0);
}

}  // namespace
}  // namespace eccm0::measure
